//! Randomized property tests of the orbital substrate: frame conversions,
//! Kepler-equation residuals, propagation invariants, and constellation
//! generators, over wide parameter ranges.
//!
//! Cases are drawn from a seeded [`SimRng`] stream, so every run explores
//! the same 256 points per property — deterministic, dependency-free
//! property testing.

use openspace_orbit::prelude::*;
use openspace_sim::rng::SimRng;

const CASES: u64 = 256;

/// Run `f` over `CASES` deterministic substreams of `seed`.
fn for_cases(seed: u64, mut f: impl FnMut(&mut SimRng)) {
    for case in 0..CASES {
        let mut rng = SimRng::substream(seed, case);
        f(&mut rng);
    }
}

#[test]
fn geodetic_ecef_round_trip() {
    for_cases(0xA1, |rng| {
        let lat = rng.uniform_range(-89.9, 89.9);
        let lon = rng.uniform_range(-179.9, 179.9);
        let alt = rng.uniform_range(0.0, 2_000_000.0);
        let g = Geodetic::from_degrees(lat, lon, alt);
        let back = ecef_to_geodetic(geodetic_to_ecef(g));
        assert!(
            (back.lat_deg() - lat).abs() < 1e-6,
            "lat {} vs {}",
            back.lat_deg(),
            lat
        );
        assert!(
            (back.lon_deg() - lon).abs() < 1e-6,
            "lon {} vs {}",
            back.lon_deg(),
            lon
        );
        assert!(
            (back.alt_m - alt).abs() < 1e-2,
            "alt {} vs {}",
            back.alt_m,
            alt
        );
    });
}

#[test]
fn eci_ecef_round_trip_preserves_norm() {
    for_cases(0xA2, |rng| {
        let p = Vec3::new(
            rng.uniform_range(-1e7, 1e7),
            rng.uniform_range(-1e7, 1e7),
            rng.uniform_range(-1e7, 1e7),
        );
        let t = rng.uniform_range(0.0, 1e6);
        let q = eci_to_ecef(p, t);
        // Rotation preserves length…
        assert!((q.norm() - p.norm()).abs() < 1e-6);
        // …and inverts cleanly.
        assert!(ecef_to_eci(q, t).distance(p) < 1e-6);
    });
}

#[test]
fn kepler_solver_residual_is_tiny() {
    for_cases(0xA3, |rng| {
        let m = rng.uniform_range(0.0, std::f64::consts::TAU);
        let e = rng.uniform_range(0.0, 0.95);
        let big_e = openspace_orbit::kepler::solve_kepler(m, e);
        let residual = big_e - e * big_e.sin() - m;
        assert!(residual.abs() < 1e-9, "residual {residual}");
    });
}

#[test]
fn circular_orbit_radius_is_invariant_under_propagation() {
    for_cases(0xA4, |rng| {
        let alt_km = rng.uniform_range(400.0, 2_000.0);
        let inc = rng.uniform_range(0.0, 180.0);
        let raan = rng.uniform_range(0.0, 360.0);
        let ma = rng.uniform_range(0.0, 360.0);
        let t = rng.uniform_range(0.0, 100_000.0);
        let el = OrbitalElements::circular(km_to_m(alt_km), inc, raan, ma).unwrap();
        let prop = Propagator::new(el, PerturbationModel::SecularJ2);
        let r = prop.position_eci(t).norm();
        let expect = EARTH_RADIUS_M + km_to_m(alt_km);
        assert!((r - expect).abs() < 1.0, "radius {r} vs {expect}");
    });
}

#[test]
fn orbital_energy_is_conserved() {
    for_cases(0xA5, |rng| {
        let alt_km = rng.uniform_range(400.0, 2_000.0);
        let ecc = rng.uniform_range(0.0, 0.05);
        let inc = rng.uniform_range(0.0, 180.0);
        let t = rng.uniform_range(0.0, 50_000.0);
        let a = EARTH_RADIUS_M + km_to_m(alt_km) + ecc * 1e6; // keep perigee up
        let Ok(el) = OrbitalElements::new(a, ecc, inc.to_radians(), 1.0, 0.5, 0.1) else {
            return; // perigee below surface: not a valid case
        };
        let prop = Propagator::new(el, PerturbationModel::TwoBody);
        let (r, v) = prop.state_eci(t);
        let mu = openspace_orbit::constants::EARTH_MU_M3_PER_S2;
        let energy = v.norm_sq() / 2.0 - mu / r.norm();
        let expect = -mu / (2.0 * a);
        assert!(((energy - expect) / expect).abs() < 1e-9);
    });
}

#[test]
fn walker_constellations_have_exact_size_and_valid_elements() {
    for_cases(0xA6, |rng| {
        let planes = 1 + rng.index(11);
        let per_plane = 1 + rng.index(11);
        let phasing = rng.index(planes);
        let alt_km = rng.uniform_range(400.0, 2_000.0);
        let inc = rng.uniform_range(1.0, 179.0);
        let total = planes * per_plane;
        let params = WalkerParams {
            total_satellites: total,
            planes,
            phasing,
            altitude_m: km_to_m(alt_km),
            inclination_deg: inc,
        };
        for els in [
            walker_star(&params).unwrap(),
            walker_delta(&params).unwrap(),
        ] {
            assert_eq!(els.len(), total);
            for el in &els {
                assert!((el.altitude_m() - km_to_m(alt_km)).abs() < 1e-6);
            }
        }
    });
}

#[test]
fn coverage_estimators_stay_in_unit_interval() {
    for_cases(0xA7, |rng| {
        let n = 1 + rng.index(79);
        let seed = rng.next_u64();
        let sats: Vec<Propagator> = random_constellation(n, km_to_m(780.0), 86.4, seed)
            .unwrap()
            .into_iter()
            .map(|e| Propagator::new(e, PerturbationModel::TwoBody))
            .collect();
        let wc = worst_case_coverage_fraction(&sats, 0.0, 0.0);
        let pk = disjoint_packing_coverage_fraction(&sats, 0.0, 0.0);
        assert!((0.0..=1.0).contains(&wc));
        assert!((0.0..=1.0).contains(&pk));
        assert!(
            pk <= wc + 1e-9,
            "packing {pk} must not exceed pairwise {wc}"
        );
    });
}

#[test]
fn line_of_sight_is_symmetric() {
    for_cases(0xA8, |rng| {
        let a = Vec3::new(
            rng.uniform_range(-8e6, 8e6),
            rng.uniform_range(-8e6, 8e6),
            rng.uniform_range(-8e6, 8e6),
        );
        let b = Vec3::new(
            rng.uniform_range(-8e6, 8e6),
            rng.uniform_range(-8e6, 8e6),
            rng.uniform_range(-8e6, 8e6),
        );
        assert_eq!(line_of_sight(a, b), line_of_sight(b, a));
    });
}

#[test]
fn elevation_bounded_by_quarter_turn() {
    for_cases(0xA9, |rng| {
        let lat = rng.uniform_range(-89.0, 89.0);
        let lon = rng.uniform_range(-179.0, 179.0);
        let g = geodetic_to_ecef(Geodetic::from_degrees(lat, lon, 0.0));
        let s = Vec3::new(
            rng.uniform_range(-8e6, 8e6),
            rng.uniform_range(-8e6, 8e6),
            rng.uniform_range(-8e6, 8e6),
        );
        if s.distance(g) > 1.0 {
            let e = elevation_angle_rad(g, s);
            assert!((-std::f64::consts::FRAC_PI_2..=std::f64::consts::FRAC_PI_2).contains(&e));
        }
    });
}
