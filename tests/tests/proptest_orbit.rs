//! Property-based tests of the orbital substrate: frame conversions,
//! Kepler-equation residuals, propagation invariants, and constellation
//! generators, over wide parameter ranges.

use openspace_orbit::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn geodetic_ecef_round_trip(
        lat in -89.9..89.9f64,
        lon in -179.9..179.9f64,
        alt in 0.0..2_000_000.0f64,
    ) {
        let g = Geodetic::from_degrees(lat, lon, alt);
        let back = ecef_to_geodetic(geodetic_to_ecef(g));
        prop_assert!((back.lat_deg() - lat).abs() < 1e-6, "lat {} vs {}", back.lat_deg(), lat);
        prop_assert!((back.lon_deg() - lon).abs() < 1e-6, "lon {} vs {}", back.lon_deg(), lon);
        prop_assert!((back.alt_m - alt).abs() < 1e-2, "alt {} vs {}", back.alt_m, alt);
    }

    #[test]
    fn eci_ecef_round_trip_preserves_norm(
        x in -1e7..1e7f64,
        y in -1e7..1e7f64,
        z in -1e7..1e7f64,
        t in 0.0..1e6f64,
    ) {
        let p = Vec3::new(x, y, z);
        let q = eci_to_ecef(p, t);
        // Rotation preserves length…
        prop_assert!((q.norm() - p.norm()).abs() < 1e-6);
        // …and inverts cleanly.
        prop_assert!(ecef_to_eci(q, t).distance(p) < 1e-6);
    }

    #[test]
    fn kepler_solver_residual_is_tiny(
        m in 0.0..std::f64::consts::TAU,
        e in 0.0..0.95f64,
    ) {
        let big_e = openspace_orbit::kepler::solve_kepler(m, e);
        let residual = big_e - e * big_e.sin() - m;
        prop_assert!(residual.abs() < 1e-9, "residual {residual}");
    }

    #[test]
    fn circular_orbit_radius_is_invariant_under_propagation(
        alt_km in 400.0..2_000.0f64,
        inc in 0.0..180.0f64,
        raan in 0.0..360.0f64,
        ma in 0.0..360.0f64,
        t in 0.0..100_000.0f64,
    ) {
        let el = OrbitalElements::circular(km_to_m(alt_km), inc, raan, ma).unwrap();
        let prop = Propagator::new(el, PerturbationModel::SecularJ2);
        let r = prop.position_eci(t).norm();
        let expect = EARTH_RADIUS_M + km_to_m(alt_km);
        prop_assert!((r - expect).abs() < 1.0, "radius {r} vs {expect}");
    }

    #[test]
    fn orbital_energy_is_conserved(
        alt_km in 400.0..2_000.0f64,
        ecc in 0.0..0.05f64,
        inc in 0.0..180.0f64,
        t in 0.0..50_000.0f64,
    ) {
        let a = EARTH_RADIUS_M + km_to_m(alt_km) + ecc * 1e6; // keep perigee up
        let Ok(el) = OrbitalElements::new(a, ecc, inc.to_radians(), 1.0, 0.5, 0.1) else {
            return Ok(()); // perigee below surface: not a valid case
        };
        let prop = Propagator::new(el, PerturbationModel::TwoBody);
        let (r, v) = prop.state_eci(t);
        let mu = openspace_orbit::constants::EARTH_MU_M3_PER_S2;
        let energy = v.norm_sq() / 2.0 - mu / r.norm();
        let expect = -mu / (2.0 * a);
        prop_assert!(((energy - expect) / expect).abs() < 1e-9);
    }

    #[test]
    fn walker_constellations_have_exact_size_and_valid_elements(
        planes in 1usize..12,
        per_plane in 1usize..12,
        phasing_seed in any::<usize>(),
        alt_km in 400.0..2_000.0f64,
        inc in 1.0..179.0f64,
    ) {
        let total = planes * per_plane;
        let params = WalkerParams {
            total_satellites: total,
            planes,
            phasing: phasing_seed % planes,
            altitude_m: km_to_m(alt_km),
            inclination_deg: inc,
        };
        for els in [walker_star(&params).unwrap(), walker_delta(&params).unwrap()] {
            prop_assert_eq!(els.len(), total);
            for el in &els {
                prop_assert!((el.altitude_m() - km_to_m(alt_km)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn coverage_estimators_stay_in_unit_interval(
        n in 1usize..80,
        seed in any::<u64>(),
    ) {
        let sats: Vec<Propagator> = random_constellation(n, km_to_m(780.0), 86.4, seed)
            .unwrap()
            .into_iter()
            .map(|e| Propagator::new(e, PerturbationModel::TwoBody))
            .collect();
        let wc = worst_case_coverage_fraction(&sats, 0.0, 0.0);
        let pk = disjoint_packing_coverage_fraction(&sats, 0.0, 0.0);
        prop_assert!((0.0..=1.0).contains(&wc));
        prop_assert!((0.0..=1.0).contains(&pk));
        prop_assert!(pk <= wc + 1e-9, "packing {pk} must not exceed pairwise {wc}");
    }

    #[test]
    fn line_of_sight_is_symmetric(
        ax in -8e6..8e6f64, ay in -8e6..8e6f64, az in -8e6..8e6f64,
        bx in -8e6..8e6f64, by in -8e6..8e6f64, bz in -8e6..8e6f64,
    ) {
        let a = Vec3::new(ax, ay, az);
        let b = Vec3::new(bx, by, bz);
        prop_assert_eq!(line_of_sight(a, b), line_of_sight(b, a));
    }

    #[test]
    fn elevation_bounded_by_quarter_turn(
        lat in -89.0..89.0f64,
        lon in -179.0..179.0f64,
        sx in -8e6..8e6f64, sy in -8e6..8e6f64, sz in -8e6..8e6f64,
    ) {
        let g = geodetic_to_ecef(Geodetic::from_degrees(lat, lon, 0.0));
        let s = Vec3::new(sx, sy, sz);
        if s.distance(g) > 1.0 {
            let e = elevation_angle_rad(g, s);
            prop_assert!((-std::f64::consts::FRAC_PI_2..=std::f64::consts::FRAC_PI_2).contains(&e));
        }
    }
}
