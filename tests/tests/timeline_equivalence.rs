//! Property tests pinning the [`TopologyTimeline`] contract: a base
//! snapshot plus per-tick [`GraphDelta`]s replays the provider's fresh
//! snapshot sequence **bitwise** — same edge order, same float bits —
//! and the parallel build is indistinguishable from the serial one.
//!
//! The delta-equivalence argument (see `crates/net/src/timeline.rs` and
//! DESIGN.md) rests on deltas storing whole adjacency rows verbatim, so
//! replay cannot drift from the builder's row order or last-ulp float
//! values. These cases exercise that claim over seeded random evolving
//! topologies: chords that flip on random periods, latencies and loads
//! that drift with time, isolated nodes, and ground stations.

use openspace_net::prelude::*;
use openspace_net::topology::{GraphDelta, LinkTech};
use openspace_sim::prelude::SimRng;

const CASES: u64 = 128;

/// One seeded evolving topology: a fixed roster whose link set and link
/// parameters are a pure function of `t`. Chord `i` exists only while
/// `floor(t / period_i)` is even; every latency drifts linearly in `t`.
struct EvolvingTopology {
    n_sats: usize,
    n_stations: usize,
    spine: Vec<(usize, usize, f64, f64)>,
    chords: Vec<(usize, usize, f64, f64, f64)>,
}

impl EvolvingTopology {
    fn random(rng: &mut SimRng) -> Self {
        let n_sats = 3 + rng.index(20);
        let n_stations = rng.index(3);
        let n = n_sats + n_stations;
        let mut taken: Vec<(usize, usize)> = Vec::new();
        let spine_len = 1 + rng.index(n - 1);
        let spine: Vec<(usize, usize, f64, f64)> = (0..spine_len)
            .map(|i| {
                taken.push((i, i + 1));
                (
                    i,
                    i + 1,
                    rng.uniform_range(1e-4, 2e-2),
                    rng.uniform_range(1e6, 1e9),
                )
            })
            .collect();
        let mut chords = Vec::new();
        for _ in 0..rng.index(2 * n) {
            let u = rng.index(n);
            let v = rng.index(n);
            if u == v || taken.contains(&(u, v)) || taken.contains(&(v, u)) {
                continue;
            }
            taken.push((u, v));
            chords.push((
                u,
                v,
                rng.uniform_range(1e-4, 2e-2),
                rng.uniform_range(1e6, 1e9),
                // Flip period; some chords flip within any horizon, some
                // never do.
                rng.uniform_range(5.0, 200.0),
            ));
        }
        Self {
            n_sats,
            n_stations,
            spine,
            chords,
        }
    }

    fn at(&self, t: f64) -> Graph {
        let mut g = Graph::new(self.n_sats, self.n_stations);
        for &(u, v, lat, cap) in &self.spine {
            // Latency drift makes almost every delta non-empty.
            g.add_bidirectional(u, v, lat + t * 1e-7, cap, 0u32, 0u32, LinkTech::Rf);
        }
        for &(u, v, lat, cap, period) in &self.chords {
            if (t / period).floor() as i64 % 2 == 0 {
                g.add_bidirectional(u, v, lat + t * 1e-7, cap, 0u32, 0u32, LinkTech::Optical);
            }
        }
        g
    }
}

fn graphs_bitwise_equal(a: &Graph, b: &Graph) -> bool {
    GraphDelta::between(a, b)
        .map(|d| d.is_empty())
        .unwrap_or(false)
}

#[test]
fn delta_replay_matches_fresh_snapshots_bitwise() {
    for case in 0..CASES {
        let mut rng = SimRng::substream(0x7110, case);
        let topo = EvolvingTopology::random(&mut rng);
        let step = rng.uniform_range(1.0, 30.0);
        let horizon = step * (1 + rng.index(12)) as f64;
        let provider = |t: f64| topo.at(t);
        let tl = TopologyTimeline::build(&provider, 0.0, step, horizon, 1)
            .expect("valid build parameters");
        // Replay every tick and compare against a fresh snapshot.
        for &t in tl.tick_times() {
            assert!(
                graphs_bitwise_equal(&topo.at(t), &tl.graph_at(t)),
                "case {case}: replay diverged at t={t}"
            );
        }
        // Sequential application of the raw deltas reproduces the last
        // tick too (graph_at() composes internally; this checks the
        // public delta list).
        let mut g = tl.base().clone();
        for k in 0..tl.delta_count() {
            g.apply_delta(tl.delta(k).expect("k in range"))
                .expect("delta applies in order");
        }
        let last = *tl.tick_times().last().expect("at least one tick");
        assert!(
            graphs_bitwise_equal(&topo.at(last), &g),
            "case {case}: sequential delta application diverged"
        );
    }
}

#[test]
fn timeline_build_is_thread_count_invariant() {
    for case in 0..24 {
        let mut rng = SimRng::substream(0x7111, case);
        let topo = EvolvingTopology::random(&mut rng);
        let provider = |t: f64| topo.at(t);
        let reference = TopologyTimeline::build(&provider, 0.0, 7.5, 90.0, 1).expect("serial");
        for threads in [2usize, 4, 8] {
            let parallel =
                TopologyTimeline::build(&provider, 0.0, 7.5, 90.0, threads).expect("parallel");
            assert_eq!(parallel.tick_count(), reference.tick_count());
            assert_eq!(
                parallel.total_changed_rows(),
                reference.total_changed_rows(),
                "case {case}: {threads}-thread build changed different rows"
            );
            for &t in reference.tick_times() {
                assert!(
                    graphs_bitwise_equal(&reference.graph_at(t), &parallel.graph_at(t)),
                    "case {case}: {threads}-thread build diverged at t={t}"
                );
            }
        }
    }
}

#[test]
fn delta_between_jumps_match_step_by_step_replay() {
    for case in 0..48 {
        let mut rng = SimRng::substream(0x7112, case);
        let topo = EvolvingTopology::random(&mut rng);
        let provider = |t: f64| topo.at(t);
        let tl = TopologyTimeline::build(&provider, 0.0, 5.0, 100.0, 2).expect("valid build");
        let times = tl.tick_times();
        for _ in 0..6 {
            let i = rng.index(times.len());
            let j = rng.index(times.len());
            let (t0, t1) = (times[i], times[j]);
            let jump = tl.delta_between(t0, t1);
            let mut g = tl.graph_at(t0);
            g.apply_delta(&jump).expect("jump applies to its base");
            assert!(
                graphs_bitwise_equal(&tl.graph_at(t1), &g),
                "case {case}: delta_between({t0}, {t1}) diverged"
            );
        }
    }
}

#[test]
fn isl_snapshot_delta_replays_real_constellation_motion() {
    // The same property on a real Iridium-derived constellation via
    // [`snapshot_delta`]: patching the t=0 snapshot forward reproduces
    // every fresh build bitwise.
    use openspace_orbit::propagator::{PerturbationModel, Propagator};
    use openspace_orbit::walker::{iridium_params, walker_star};

    let elements = walker_star(&iridium_params()).expect("valid walker parameters");
    let sats: Vec<SatNode> = elements
        .into_iter()
        .take(22)
        .enumerate()
        .map(|(i, el)| SatNode {
            propagator: Propagator::new(el, PerturbationModel::TwoBody),
            operator: (i % 3) as u32,
            has_optical: true,
        })
        .collect();
    let stations: Vec<GroundNode> = Vec::new();
    let params = SnapshotParams::default();
    let mut g = build_snapshot(0.0, &sats, &stations, &params);
    for k in 1..=10 {
        let t = k as f64 * 60.0;
        let delta = snapshot_delta(t, &g, &sats, &stations, &params).expect("roster matches");
        g.apply_delta(&delta).expect("delta applies");
        assert!(
            graphs_bitwise_equal(&build_snapshot(t, &sats, &stations, &params), &g),
            "patched snapshot diverged from fresh build at t={t}"
        );
    }
}
