//! Randomized property tests of the wire protocol: round trips,
//! corruption detection, and tamper resistance, over arbitrary field
//! values.
//!
//! Cases are drawn from a seeded [`SimRng`] stream — deterministic,
//! dependency-free property testing.

use openspace_protocol::prelude::*;
use openspace_sim::rng::SimRng;

const CASES: u64 = 256;

fn for_cases(seed: u64, mut f: impl FnMut(&mut SimRng)) {
    for case in 0..CASES {
        let mut rng = SimRng::substream(seed, case);
        f(&mut rng);
    }
}

fn arb_capabilities(rng: &mut SimRng) -> Capabilities {
    // Always include the mandatory RF bit (beacons without it are
    // rejected by design).
    Capabilities::from_bits(rng.next_u64() as u16 | 1)
}

fn arb_beacon(rng: &mut SimRng) -> Beacon {
    Beacon {
        satellite: SatelliteId(rng.next_u64()),
        operator: OperatorId(rng.next_u64() as u32),
        capabilities: arb_capabilities(rng),
        timestamp_ms: rng.next_u64(),
        semi_major_axis_m: rng.uniform_range(6_878_137.0, 8_378_137.0), // 500..2000 km class
        eccentricity: rng.uniform_range(0.0, 0.1),
        inclination_rad: rng.uniform_range(0.0, std::f64::consts::PI),
        raan_rad: rng.uniform_range(0.0, std::f64::consts::TAU),
        arg_perigee_rad: rng.uniform_range(0.0, std::f64::consts::TAU),
        mean_anomaly_rad: rng.uniform_range(0.0, std::f64::consts::TAU),
    }
}

fn arb_message(rng: &mut SimRng) -> Message {
    match rng.index(4) {
        0 => Message::Beacon(arb_beacon(rng)),
        1 => {
            let a = rng.next_u64();
            let b = rng.next_u64();
            Message::PairRequest(PairRequest {
                requester: SatelliteId(a),
                target: SatelliteId(a.wrapping_add(b.max(1))),
                capabilities: arb_capabilities(rng),
                laser_azimuth_rad: 0.5,
                laser_elevation_rad: -0.25,
                available_bandwidth_fraction: rng.uniform(),
            })
        }
        2 => {
            let mut tag = [0u8; 16];
            for byte in tag.iter_mut() {
                *byte = rng.below(256) as u8;
            }
            Message::HandoverCommit(HandoverCommit {
                user: UserId(rng.next_u64()),
                from: SatelliteId(rng.next_u64()),
                session_token: Tag(tag),
            })
        }
        _ => {
            let mut proof = [0u8; 16];
            for byte in proof.iter_mut() {
                *byte = rng.below(256) as u8;
            }
            Message::AccessRequest(AccessRequest {
                user: UserId(rng.next_u64()),
                home_operator: OperatorId(rng.next_u64() as u32),
                nonce: rng.next_u64(),
                proof: Tag(proof),
            })
        }
    }
}

#[test]
fn frame_round_trip() {
    for_cases(0xD1, |rng| {
        let frame = Frame {
            sender: rng.next_u64(),
            message: arb_message(rng),
        };
        let bytes = frame.encode();
        let decoded = Frame::decode(&bytes).expect("round trip");
        assert_eq!(decoded, frame);
    });
}

#[test]
fn any_single_byte_corruption_is_detected() {
    for_cases(0xD2, |rng| {
        let frame = Frame {
            sender: 1,
            message: Message::Beacon(arb_beacon(rng)),
        };
        let mut bytes = frame.encode();
        let i = rng.index(bytes.len());
        let flip = 1 + rng.below(255) as u8;
        bytes[i] ^= flip;
        // Either the decode fails, or (vanishingly unlikely with a
        // checksum) it must not silently produce a different frame.
        if let Ok(decoded) = Frame::decode(&bytes) {
            assert_eq!(decoded, frame);
        }
    });
}

#[test]
fn any_truncation_is_detected() {
    for_cases(0xD3, |rng| {
        let frame = Frame {
            sender: 9,
            message: Message::Beacon(arb_beacon(rng)),
        };
        let bytes = frame.encode();
        let n = rng.index(bytes.len()); // 0..len-1: always a strict prefix
        assert!(Frame::decode(&bytes[..n]).is_err());
    });
}

#[test]
fn tag_verification_rejects_any_other_message() {
    for_cases(0xD4, |rng| {
        let key_id = rng.next_u64();
        let len = rng.index(256);
        let data: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let secret = SharedSecret::derive(key_id, "prop");
        let tag = compute_tag(&secret, &data);
        assert!(verify_tag(&secret, &data, &tag));
        if !data.is_empty() {
            let mut other = data.clone();
            let i = rng.index(other.len());
            other[i] ^= 1 + rng.below(255) as u8;
            assert!(!verify_tag(&secret, &other, &tag));
        }
    });
}

#[test]
fn certificates_never_verify_outside_their_window() {
    for_cases(0xD5, |rng| {
        let user = rng.next_u64();
        let op = rng.next_u64() as u32;
        let start = rng.below(1_000_000);
        let len = 1 + rng.below(999_999);
        let probe = rng.next_u64();
        let secret = SharedSecret::derive(op as u64, "fed");
        let cert = Certificate::issue(UserId(user), OperatorId(op), start, start + len, &secret);
        let now = probe % (start + 2 * len + 1);
        let inside = now >= start && now < start + len;
        assert_eq!(cert.verify(&secret, now), inside);
    });
}

#[test]
fn reader_never_panics_on_arbitrary_bytes() {
    for_cases(0xD6, |rng| {
        let len = rng.index(512);
        let data: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        // Decoding arbitrary garbage must return an error, never panic.
        let _ = Frame::decode(&data);
    });
}
