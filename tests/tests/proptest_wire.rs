//! Property-based tests of the wire protocol: round trips, corruption
//! detection, and tamper resistance, over arbitrary field values.

use openspace_protocol::prelude::*;
use proptest::prelude::*;

fn arb_capabilities() -> impl Strategy<Value = Capabilities> {
    // Always include the mandatory RF bit (beacons without it are
    // rejected by design).
    any::<u16>().prop_map(|bits| Capabilities::from_bits(bits | 1))
}

fn arb_beacon() -> impl Strategy<Value = Beacon> {
    (
        any::<u64>(),
        any::<u32>(),
        arb_capabilities(),
        any::<u64>(),
        6_878_137.0..8_378_137.0f64, // 500..2000 km altitude class
        0.0..0.1f64,
        0.0..std::f64::consts::PI,
        0.0..std::f64::consts::TAU,
        0.0..std::f64::consts::TAU,
        0.0..std::f64::consts::TAU,
    )
        .prop_map(
            |(sat, op, caps, ts, sma, ecc, inc, raan, argp, ma)| Beacon {
                satellite: SatelliteId(sat),
                operator: OperatorId(op),
                capabilities: caps,
                timestamp_ms: ts,
                semi_major_axis_m: sma,
                eccentricity: ecc,
                inclination_rad: inc,
                raan_rad: raan,
                arg_perigee_rad: argp,
                mean_anomaly_rad: ma,
            },
        )
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        arb_beacon().prop_map(Message::Beacon),
        (any::<u64>(), any::<u64>(), arb_capabilities(), 0.0..1.0f64).prop_map(
            |(a, b, caps, bw)| {
                Message::PairRequest(PairRequest {
                    requester: SatelliteId(a),
                    target: SatelliteId(a.wrapping_add(b.max(1))),
                    capabilities: caps,
                    laser_azimuth_rad: 0.5,
                    laser_elevation_rad: -0.25,
                    available_bandwidth_fraction: bw,
                })
            }
        ),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<[u8; 16]>()).prop_map(
            |(u, from, _ts, tag)| {
                Message::HandoverCommit(HandoverCommit {
                    user: UserId(u),
                    from: SatelliteId(from),
                    session_token: Tag(tag),
                })
            }
        ),
        (any::<u64>(), any::<u32>(), any::<u64>(), any::<[u8; 16]>()).prop_map(
            |(u, op, nonce, proof)| {
                Message::AccessRequest(AccessRequest {
                    user: UserId(u),
                    home_operator: OperatorId(op),
                    nonce,
                    proof: Tag(proof),
                })
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn frame_round_trip(sender in any::<u64>(), msg in arb_message()) {
        let frame = Frame { sender, message: msg };
        let bytes = frame.encode();
        let decoded = Frame::decode(&bytes).expect("round trip");
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn any_single_byte_corruption_is_detected(
        msg in arb_beacon(),
        byte_idx in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let frame = Frame { sender: 1, message: Message::Beacon(msg) };
        let mut bytes = frame.encode();
        let i = byte_idx.index(bytes.len());
        bytes[i] ^= flip;
        // Either the decode fails, or (vanishingly unlikely with a
        // checksum) it must not silently produce a different frame.
        if let Ok(decoded) = Frame::decode(&bytes) {
            prop_assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn any_truncation_is_detected(msg in arb_beacon(), cut in any::<prop::sample::Index>()) {
        let frame = Frame { sender: 9, message: Message::Beacon(msg) };
        let bytes = frame.encode();
        let n = cut.index(bytes.len()); // 0..len-1: always a strict prefix
        prop_assert!(Frame::decode(&bytes[..n]).is_err());
    }

    #[test]
    fn tag_verification_rejects_any_other_message(
        key_id in any::<u64>(),
        data in prop::collection::vec(any::<u8>(), 0..256),
        mutation in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let secret = SharedSecret::derive(key_id, "prop");
        let tag = compute_tag(&secret, &data);
        prop_assert!(verify_tag(&secret, &data, &tag));
        if !data.is_empty() {
            let mut other = data.clone();
            let i = mutation.index(other.len());
            other[i] ^= flip;
            prop_assert!(!verify_tag(&secret, &other, &tag));
        }
    }

    #[test]
    fn certificates_never_verify_outside_their_window(
        user in any::<u64>(),
        op in any::<u32>(),
        start in 0u64..1_000_000,
        len in 1u64..1_000_000,
        probe in any::<u64>(),
    ) {
        let secret = SharedSecret::derive(op as u64, "fed");
        let cert = Certificate::issue(UserId(user), OperatorId(op), start, start + len, &secret);
        let now = probe % (start + 2 * len + 1);
        let inside = now >= start && now < start + len;
        prop_assert_eq!(cert.verify(&secret, now), inside);
    }

    #[test]
    fn reader_never_panics_on_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..512)) {
        // Decoding arbitrary garbage must return an error, never panic.
        let _ = Frame::decode(&data);
    }
}
