//! Cross-crate governance loop: accounting disputes → reputation →
//! quarantine → policy routing, plus DTN fallback for the solo case.
//! Exercises §3, §5(3), §5(6), and the §2 disconnection claim together.

use openspace_core::prelude::*;
use openspace_core::security::{ReputationPolicy, ReputationTracker, TrustState};
use openspace_economics::ledger::{reconcile, BillingKey, TrafficLedger};
use openspace_net::dtn::{earliest_arrival, sample_contacts};
use openspace_net::policy::{
    policy_route, DownlinkLicense, Jurisdiction, PolicyRoute, RoutePolicy, StationAttrs,
};
use openspace_net::routing::latency_weight;
use openspace_orbit::frames::{geodetic_to_ecef, Geodetic};
use openspace_phy::hardware::SatelliteClass;
use openspace_protocol::types::OperatorId;

/// Build ledgers where `cheater` systematically over-reports.
fn ledgers_with_cheater(honest: OperatorId, cheater: OperatorId) -> (TrafficLedger, TrafficLedger) {
    let mut origin = TrafficLedger::new();
    let mut carrier = TrafficLedger::new();
    for flow in 0..40u64 {
        let key = BillingKey {
            flow_id: flow,
            origin: honest,
            carrier: cheater,
            interval_start_ms: flow * 1000,
        };
        origin.record_raw(key, 10_000);
        // The cheater inflates every fourth record by 50%.
        let claim = if flow % 4 == 0 { 15_000 } else { 10_000 };
        carrier.record_raw(key, claim);
    }
    (origin, carrier)
}

#[test]
fn dispute_to_quarantine_to_rerouting_loop() {
    let fed = iridium_federation(4, &[SatelliteClass::SmallSat], &default_station_sites());
    let graph = fed.snapshot(0.0);
    let ops = fed.operator_ids();
    let (honest, cheater) = (ops[0], ops[1]);

    // 1. Accounting reveals the cheating.
    let (origin_ledger, carrier_ledger) = ledgers_with_cheater(honest, cheater);
    let recon = reconcile(&origin_ledger, &carrier_ledger, honest, cheater);
    assert_eq!(recon.disputes.len(), 10);

    // 2. Reputation quarantines the carrier.
    let mut tracker = ReputationTracker::new(ReputationPolicy::default());
    tracker.record_reconciliation(cheater, &recon);
    assert_eq!(tracker.state(cheater), TrustState::Quarantined);

    // 3. Routing avoids the quarantined carrier's hops.
    let attrs: Vec<StationAttrs> = fed
        .stations()
        .iter()
        .map(|_| StationAttrs {
            jurisdiction: Jurisdiction(1),
        })
        .collect();
    let licenses: Vec<DownlinkLicense> = ops
        .iter()
        .map(|op| DownlinkLicense {
            operator: op.0,
            jurisdiction: Jurisdiction(1),
        })
        .collect();
    let pos = geodetic_to_ecef(Geodetic::from_degrees(-1.3, 36.8, 0.0));
    let (sat, _) = openspace_net::isl::best_access_satellite(
        pos,
        &fed.sat_nodes(),
        0.0,
        fed.snapshot_params.min_elevation_rad,
    )
    .unwrap();
    let policy = RoutePolicy {
        allowed_exit: vec![],
        blocked_carriers: tracker.quarantined_operators(),
    };
    match policy_route(
        &graph,
        &attrs,
        &licenses,
        graph.sat_node(sat),
        &policy,
        latency_weight,
    ) {
        PolicyRoute::Compliant { path, .. } => {
            // No hop may be carried by the cheater.
            for w in path.nodes.windows(2) {
                let e = graph.find_edge(w[0], w[1]).unwrap();
                assert_ne!(e.operator, cheater, "route crossed the quarantined carrier");
            }
        }
        other => panic!("a compliant route should exist around one operator: {other:?}"),
    }
}

#[test]
fn rehabilitated_operator_routes_again() {
    let mut tracker = ReputationTracker::new(ReputationPolicy::default());
    let op = OperatorId(2);
    tracker.record_outcome(op, 60, 40);
    assert_eq!(tracker.state(op), TrustState::Quarantined);
    tracker.record_outcome(op, 60, 0); // clean streak past the bar
    assert_eq!(tracker.state(op), TrustState::Trusted);
    assert!(tracker.quarantined_operators().is_empty());
}

#[test]
fn solo_operator_falls_back_to_dtn_when_cut_off() {
    // An operator distrusted by everyone (or refusing to collaborate)
    // still reaches its own ground segment — via store-and-forward.
    let fed = iridium_federation(4, &[SatelliteClass::SmallSat], &default_station_sites());
    let op = fed.operator_ids()[2];
    let sats = fed.sat_nodes_of(op);
    let stations = fed.ground_nodes_of(op);
    assert!(!stations.is_empty(), "operator owns at least one station");
    let contacts = sample_contacts(
        &sats,
        &stations,
        0.0,
        6.0 * 3600.0,
        20.0,
        &fed.snapshot_params,
    );
    let n = sats.len() + stations.len();
    let route = (0..stations.len())
        .filter_map(|gi| earliest_arrival(&contacts, n, 0, sats.len() + gi, 0.0, 1e6).ok())
        .min_by(|a, b| a.arrival_s.partial_cmp(&b.arrival_s).unwrap());
    let route = route.expect("a pass happens within six hours");
    assert!(
        route.arrival_s < 6.0 * 3600.0,
        "bundle delivered within the horizon: {}",
        route.arrival_s
    );
    // And the delay is macroscopic — the cost of not collaborating.
    assert!(
        route.arrival_s > 1.0,
        "solo delivery should not be instantaneous: {}",
        route.arrival_s
    );
}
