//! Cross-crate properties of the fault-injection subsystem: outage
//! apply/revert is lossless on the snapshot graph, an empty fault plan
//! is invisible to the packet simulator bit-for-bit, faulted sweeps are
//! bitwise-deterministic across thread counts, and the federation's
//! graceful-degradation claim holds on the real Iridium topology.
//!
//! Cases are drawn from a seeded [`SimRng`] stream — deterministic,
//! dependency-free property testing.

use openspace_core::netsim::{FlowSpec, NetSim, NetSimConfig, NetSimReport, TrafficKind};
use openspace_core::prelude::*;
use openspace_net::outage::OutageTracker;
use openspace_net::topology::{Graph, LinkTech};
use openspace_phy::hardware::SatelliteClass;
use openspace_sim::exec::parallel_map_seeded;
use openspace_sim::fault::{FaultPlan, FaultTopology};
use openspace_sim::ids::OperatorId;
use openspace_sim::rng::SimRng;

const CASES: u64 = 128;

fn for_cases(seed: u64, mut f: impl FnMut(&mut SimRng)) {
    for case in 0..CASES {
        let mut rng = SimRng::substream(seed, case);
        f(&mut rng);
    }
}

/// A random small constellation snapshot: a satellite ring plus stations
/// hanging off random satellites.
fn arb_graph(rng: &mut SimRng, n_sats: usize, n_stations: usize) -> Graph {
    let mut g = Graph::new(n_sats, n_stations);
    for i in 0..n_sats {
        let j = (i + 1) % n_sats;
        g.add_bidirectional(
            i,
            j,
            rng.uniform_range(0.001, 0.02),
            rng.uniform_range(1e6, 1e9),
            0,
            0,
            LinkTech::Rf,
        );
    }
    // A few random chords.
    for _ in 0..rng.index(4) {
        let a = rng.index(n_sats);
        let b = rng.index(n_sats);
        if a != b && g.find_edge(a, b).is_none() {
            g.add_bidirectional(a, b, 0.005, 1e8, 0, 0, LinkTech::Optical);
        }
    }
    for s in 0..n_stations {
        let up = rng.index(n_sats);
        g.add_bidirectional(
            n_sats + s,
            up,
            rng.uniform_range(0.002, 0.01),
            rng.uniform_range(1e6, 1e8),
            0,
            0,
            LinkTech::Rf,
        );
    }
    g
}

#[test]
fn apply_then_revert_restores_the_exact_pre_fault_graph() {
    for_cases(0xFA01, |rng| {
        let n_sats = 4 + rng.index(8);
        let n_stations = 1 + rng.index(3);
        let mut graph = arb_graph(rng, n_sats, n_stations);
        let pristine = graph.clone();

        // A busy random plan: stochastic sat outages, a scheduled station
        // outage, and a flap on one ring link.
        let flap_a = rng.index(n_sats);
        let flap_b = (flap_a + 1) % n_sats;
        let plan = FaultPlan::builder()
            .seed(rng.next_u64())
            .random_sat_outages(2_000.0, 40.0, 0.0, 300.0)
            .station_outage(0usize, rng.uniform_range(0.0, 200.0), 50.0)
            .link_flap(flap_a, flap_b, rng.uniform_range(0.0, 100.0), 20.0, 15.0, 3)
            .sat_failure(rng.index(n_sats), rng.uniform_range(0.0, 300.0))
            .build()
            .expect("valid plan");
        let events = plan
            .compile(&FaultTopology::homogeneous(
                n_sats,
                n_stations,
                OperatorId(0),
            ))
            .expect("plan fits topology");
        assert!(!events.is_empty(), "the plan should generate events");

        let mut tracker = OutageTracker::new();
        let mut touched = 0usize;
        for ev in &events {
            let delta = tracker.apply(&mut graph, ev).expect("in-range event");
            touched += delta.removed_links.len() + delta.restored_links.len();
        }
        assert!(touched > 0, "faults should actually change the graph");

        // Whatever is still down comes back, and the graph — edge order,
        // loads, capacities, everything — is exactly the pre-fault one.
        tracker.revert_all(&mut graph);
        assert_eq!(graph, pristine);
        assert_eq!(tracker.open_outages(), 0);
    });
}

#[test]
fn empty_fault_plan_is_invisible_on_a_real_snapshot() {
    let fed = iridium_federation(3, &[SatelliteClass::SmallSat], &default_station_sites());
    let graph = fed.snapshot(0.0);
    let flows = vec![
        FlowSpec::new(
            graph.sat_node(5),
            graph.station_node(1),
            1.0e6,
            1_500,
            TrafficKind::Poisson,
        ),
        FlowSpec::new(
            graph.sat_node(40),
            graph.station_node(4),
            5.0e5,
            1_500,
            TrafficKind::Cbr,
        ),
    ];
    let cfg = NetSimConfig {
        duration_s: 20.0,
        ..Default::default()
    };
    let sim = NetSim::new(cfg).with_snapshot(&graph);
    let plain = sim.run(&flows).expect("valid config");
    let events = FaultPlan::empty()
        .compile(&fed.fault_topology())
        .expect("empty plan compiles");
    assert!(events.is_empty());
    let faulted = sim.with_faults(&events).run(&flows).expect("valid config");
    // Bit-for-bit: same floats, same counters, untouched fault block.
    assert_eq!(plain, faulted);
    assert_eq!(faulted.fault.node_availability.to_bits(), 1.0f64.to_bits());
    assert_eq!(
        plain.mean_latency_s.to_bits(),
        faulted.mean_latency_s.to_bits()
    );
}

#[test]
fn faulted_sweep_is_bitwise_deterministic_across_thread_counts() {
    let fed = iridium_federation(3, &[SatelliteClass::SmallSat], &default_station_sites());
    let graph = fed.snapshot(0.0);
    let plan = FaultPlan::builder()
        .seed(9)
        .random_sat_outages(8.0, 10.0, 0.0, 30.0)
        .operator_withdrawal(fed.operator_ids()[0], 12.0)
        .build()
        .expect("valid plan");
    let events = plan
        .compile(&fed.fault_topology())
        .expect("plan fits topology");
    let seeds: Vec<u64> = (0..6).collect();
    let run_seed = |&s: &u64| -> NetSimReport {
        let cfg = NetSimConfig {
            duration_s: 30.0,
            seed: s,
            ..Default::default()
        };
        let flows = vec![FlowSpec::new(
            graph.sat_node(30),
            graph.station_node(2),
            2.0e6,
            1_500,
            TrafficKind::Poisson,
        )];
        NetSim::new(cfg)
            .with_snapshot(&graph)
            .with_faults(&events)
            .run(&flows)
            .expect("valid config")
    };
    let serial: Vec<NetSimReport> = seeds.iter().map(run_seed).collect();
    for threads in [2usize, 5] {
        let par = parallel_map_seeded(&seeds, threads, 77, |s, _rng| run_seed(s));
        assert_eq!(serial, par, "threads={threads} must match serial bitwise");
    }
}

#[test]
fn federation_degrades_more_gracefully_than_the_monolith() {
    // The exp_fault claim as a regression test: same fault plan (operator
    // 1 withdraws mid-run), plane-contiguous ownership, and the 3-member
    // federation keeps delivering while the monolith goes dark.
    let elements = openspace_orbit::walker::walker_star(&openspace_orbit::walker::iridium_params())
        .expect("iridium parameters are valid");
    let build = |members: usize| -> Federation {
        let mut fed = Federation::new();
        let ops: Vec<_> = (0..members)
            .map(|i| fed.add_operator(format!("m{i}")))
            .collect();
        let planes_per_member = 6 / members;
        for (i, el) in elements.iter().enumerate() {
            fed.add_satellite(
                ops[(i / 11) / planes_per_member],
                SatelliteClass::SmallSat,
                *el,
            )
            .expect("member operator");
        }
        for (i, site) in default_station_sites().into_iter().enumerate() {
            fed.add_ground_station(ops[i % members], site)
                .expect("member operator");
        }
        fed
    };
    let run = |members: usize| -> NetSimReport {
        let fed = build(members);
        let plan = FaultPlan::builder()
            .operator_withdrawal(fed.operator_ids()[0], 10.0)
            .build()
            .expect("valid plan");
        let events = plan
            .compile(&fed.fault_topology())
            .expect("plan fits topology");
        let graph = fed.snapshot(0.0);
        // Sources in the last plane (the last member's), stations 1 and 5
        // (never member 1's when members > 1).
        let flows = vec![
            FlowSpec::new(56usize, 66usize + 1, 5.0e5, 1_500, TrafficKind::Poisson),
            FlowSpec::new(61usize, 66usize + 5, 5.0e5, 1_500, TrafficKind::Poisson),
        ];
        let cfg = NetSimConfig {
            duration_s: 30.0,
            seed: 4,
            ..Default::default()
        };
        NetSim::new(cfg)
            .with_snapshot(&graph)
            .with_faults(&events)
            .run(&flows)
            .expect("valid config")
    };
    let monolith = run(1);
    let federated = run(3);
    assert!(
        monolith.delivery_ratio < 0.6,
        "the withdrawal must cripple the monolith: {}",
        monolith.delivery_ratio
    );
    assert!(
        federated.delivery_ratio > monolith.delivery_ratio + 0.2,
        "federation {} vs monolith {}",
        federated.delivery_ratio,
        monolith.delivery_ratio
    );
    assert!(federated.fault.node_availability > monolith.fault.node_availability);
}
