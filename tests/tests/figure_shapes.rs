//! Shape tests for the paper's Figure 2: the bench binaries regenerate
//! the full curves; these tests pin the qualitative claims so a
//! regression in any underlying crate is caught by `cargo test`.

use openspace_core::study::{
    coverage_vs_satellites, latency_vs_satellites, StudyConfig, StudyModel,
};

fn cfg() -> StudyConfig {
    StudyConfig {
        trials: 8,
        epochs_per_trial: 6,
        ..Default::default()
    }
}

#[test]
fn fig2b_latency_decreases_dramatically_then_plateaus_around_30ms() {
    let pts = latency_vs_satellites(&cfg(), &[4, 12, 25, 50, 100]);

    // The paper's simplified model always connects ("a minimum of about
    // four satellites guarantees a satellite in range").
    for p in &pts {
        assert_eq!(p.reachability, 1.0, "n={}", p.n_satellites);
    }

    let lat: Vec<f64> = pts.iter().map(|p| p.mean_latency_ms.unwrap()).collect();

    // Monotone decreasing (within a small noise margin).
    for w in lat.windows(2) {
        assert!(
            w[1] <= w[0] + 2.0,
            "latency should not rise with density: {} then {}",
            w[0],
            w[1]
        );
    }

    // Dramatic early decline: 4 → 50 satellites cuts latency by ≥25%.
    assert!(
        lat[3] < lat[0] * 0.75,
        "drop from {} to {} is not dramatic",
        lat[0],
        lat[3]
    );

    // Plateau near the paper's ~30 ms: 50 and 100 satellites within a
    // tight band of each other and inside 20..50 ms for this geometry.
    assert!(
        (lat[3] - lat[4]).abs() / lat[3] < 0.25,
        "curve should flatten: {} vs {}",
        lat[3],
        lat[4]
    );
    assert!(
        (20.0..50.0).contains(&lat[4]),
        "plateau latency {} ms outside the expected band",
        lat[4]
    );
}

#[test]
fn fig2b_physical_model_reachability_rises_with_density() {
    // The honest counterpart: with elevation-masked pickup and
    // line-of-sight ISLs, availability — not latency — is what a small
    // constellation lacks.
    let cfg = StudyConfig {
        model: StudyModel::Physical,
        ..cfg()
    };
    let pts = latency_vs_satellites(&cfg, &[3, 25, 100]);
    assert!(
        pts[0].reachability < 0.5,
        "3 satellites: {}",
        pts[0].reachability
    );
    assert!(
        pts[2].reachability > 0.9,
        "100 satellites: {}",
        pts[2].reachability
    );
    assert!(pts[0].reachability <= pts[1].reachability + 0.1);
    assert!(pts[1].reachability <= pts[2].reachability + 0.1);
}

#[test]
fn fig2c_total_coverage_reached_near_fifty_sats() {
    let pts = coverage_vs_satellites(&cfg(), &[10, 25, 50, 70]);

    // Monotone increasing (within noise).
    for w in pts.windows(2) {
        assert!(
            w[1].worst_case >= w[0].worst_case - 0.05,
            "coverage should rise: {} then {}",
            w[0].worst_case,
            w[1].worst_case
        );
    }
    // The paper's claim: total Earth coverage by about 50 satellites.
    assert!(
        pts[2].worst_case > 0.9,
        "50 sats should approach total coverage: {}",
        pts[2].worst_case
    );
    assert!(
        pts[3].worst_case > 0.97,
        "70 sats should saturate: {}",
        pts[3].worst_case
    );
    // And 10 satellites are nowhere near.
    assert!(pts[0].worst_case < 0.7, "10 sats: {}", pts[0].worst_case);
}

#[test]
fn fig2c_estimator_ordering() {
    // packing ≤ worst-case everywhere; all estimators stay in [0, 1].
    let pts = coverage_vs_satellites(&cfg(), &[15, 35, 60]);
    for p in &pts {
        assert!(
            p.packing <= p.worst_case + 1e-9,
            "n={}: packing {} > worst-case {}",
            p.n_satellites,
            p.packing,
            p.worst_case
        );
        assert!(p.grid <= 1.0 && p.worst_case <= 1.0 && p.packing <= 1.0);
    }
}

#[test]
fn cbo_72_sat_estimate_holds_on_grid_coverage() {
    // §4 cites the CBO: 72 satellites at 80° inclination give ≈95% global
    // coverage. Check the honest estimator against the CBO's own
    // configuration (Walker star, 12/plane).
    use openspace_orbit::prelude::*;
    let els = walker_star(&cbo_params()).unwrap();
    let sats: Vec<Propagator> = els
        .into_iter()
        .map(|e| Propagator::new(e, PerturbationModel::TwoBody))
        .collect();
    let grid = SphereGrid::new(3000);
    let frac = grid_coverage_fraction(&grid, &sats, 0.0, 0.0);
    assert!(
        frac > 0.93,
        "CBO 72-sat configuration should give ~95% coverage, got {frac}"
    );
}
