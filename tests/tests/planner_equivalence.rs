//! Property test pinning the batched [`RoutePlanner`]'s contract: every
//! answer is **bitwise-identical** to the per-flow search it replaces.
//!
//! The planner's whole correctness argument (see
//! `crates/net/src/routing/planner.rs`) is that a shortest-path tree
//! grown for many destinations is an exact prefix of each per-flow
//! Dijkstra run, so paths and costs cannot drift — not even in the last
//! ulp. These cases exercise that claim over seeded random topologies
//! with random loads, for both the latency and the congestion/QoS cost
//! functions, including unreachable destinations and repeated sources.

use openspace_net::prelude::*;
use openspace_net::routing::RoutePlanner;
use openspace_net::topology::LinkTech;
use openspace_sim::prelude::SimRng;

const CASES: u64 = 128;

/// A random connected-ish graph: a scrambled spine plus random chords,
/// with random per-direction loads. Some cases leave isolated nodes so
/// unreachable destinations are exercised too.
fn random_graph(rng: &mut SimRng) -> Graph {
    let n = 2 + rng.index(38);
    let mut g = Graph::new(n, 0);
    // Spine over a prefix of the nodes (the rest stay isolated).
    let spine = 1 + rng.index(n - 1);
    for i in 0..spine {
        let latency = rng.uniform_range(1e-4, 2e-2);
        let cap = rng.uniform_range(1e6, 1e9);
        g.add_bidirectional(i, i + 1, latency, cap, 0u32, 0u32, LinkTech::Rf);
    }
    // Random chords.
    for _ in 0..rng.index(2 * n) {
        let u = rng.index(n);
        let v = rng.index(n);
        if u == v || g.find_edge(u, v).is_some() {
            continue;
        }
        let latency = rng.uniform_range(1e-4, 2e-2);
        let cap = rng.uniform_range(1e6, 1e9);
        g.add_bidirectional(u, v, latency, cap, 0u32, 0u32, LinkTech::Rf);
    }
    // Random loads (strictly below 1.0: the congestion weight's domain).
    for u in 0..n {
        let targets: Vec<NodeId> = g.edges(u).iter().map(|e| e.to).collect();
        for v in targets {
            if rng.uniform() < 0.5 {
                let load = rng.uniform_range(0.0, 0.99);
                g.set_load(u, v, load).unwrap();
            }
        }
    }
    g
}

#[test]
fn planner_batch_is_bitwise_equal_to_per_flow_shortest_path() {
    for case in 0..CASES {
        let mut rng = SimRng::substream(0x9E37, case);
        let g = random_graph(&mut rng);
        let n = g.node_count();
        let requests: Vec<(NodeId, NodeId)> = (0..1 + rng.index(12))
            .map(|_| (NodeId(rng.index(n)), NodeId(rng.index(n))))
            .collect();
        let mut planner = RoutePlanner::new();
        let batched = planner.plan(&g, &requests, latency_weight);
        for (&(s, d), got) in requests.iter().zip(&batched) {
            let solo = shortest_path(&g, s, d, latency_weight);
            match (got, solo) {
                (None, None) => {}
                (Some(got), Some(solo)) => {
                    assert_eq!(got.nodes, solo.nodes, "case {case}: path for {s:?}->{d:?}");
                    assert_eq!(
                        got.total_cost.to_bits(),
                        solo.total_cost.to_bits(),
                        "case {case}: cost bits for {s:?}->{d:?}"
                    );
                }
                (got, solo) => {
                    panic!("case {case}: reachability disagrees for {s:?}->{d:?}: batched {got:?} vs solo {solo:?}")
                }
            }
        }
    }
}

#[test]
fn planner_qos_batch_is_bitwise_equal_to_qos_route() {
    use openspace_telemetry::NullRecorder;
    const PKT_BITS: f64 = 12_000.0;
    for case in 0..CASES {
        let mut rng = SimRng::substream(0x9E38, case);
        let g = random_graph(&mut rng);
        let n = g.node_count();
        // Random requirement: sometimes filtering, sometimes best-effort.
        let req = QosRequirement {
            min_bandwidth_bps: if rng.uniform() < 0.5 {
                rng.uniform_range(0.0, 5e8)
            } else {
                0.0
            },
            max_latency_s: if rng.uniform() < 0.3 {
                rng.uniform_range(1e-3, 5e-2)
            } else {
                f64::INFINITY
            },
        };
        let requests: Vec<(NodeId, NodeId)> = (0..1 + rng.index(12))
            .map(|_| (NodeId(rng.index(n)), NodeId(rng.index(n))))
            .collect();
        let mut planner = RoutePlanner::new();
        let batched = planner.plan_qos_recorded(&g, &requests, &req, PKT_BITS, &mut NullRecorder);
        for (&(s, d), got) in requests.iter().zip(&batched) {
            let solo = qos_route(&g, s, d, &req, PKT_BITS);
            match (got, solo) {
                (None, None) => {}
                (Some(got), Some(solo)) => {
                    assert_eq!(got.nodes, solo.nodes, "case {case}: path for {s:?}->{d:?}");
                    assert_eq!(
                        got.total_cost.to_bits(),
                        solo.total_cost.to_bits(),
                        "case {case}: cost bits for {s:?}->{d:?}"
                    );
                }
                (got, solo) => {
                    panic!("case {case}: QoS answers disagree for {s:?}->{d:?}: batched {got:?} vs solo {solo:?}")
                }
            }
        }
    }
}

#[test]
fn cached_trees_stay_correct_across_repeated_batches() {
    // Replan-style usage: the same planner answers several batches over
    // one topology generation; every batch must still match solo search.
    for case in 0..32 {
        let mut rng = SimRng::substream(0x9E39, case);
        let g = random_graph(&mut rng);
        let n = g.node_count();
        let mut planner = RoutePlanner::new();
        for _batch in 0..3 {
            let requests: Vec<(NodeId, NodeId)> = (0..1 + rng.index(8))
                .map(|_| (NodeId(rng.index(n)), NodeId(rng.index(n))))
                .collect();
            let batched = planner.plan(&g, &requests, latency_weight);
            for (&(s, d), got) in requests.iter().zip(&batched) {
                let solo = shortest_path(&g, s, d, latency_weight);
                assert_eq!(
                    got.as_ref()
                        .map(|p| (p.nodes.clone(), p.total_cost.to_bits())),
                    solo.map(|p| (p.nodes, p.total_cost.to_bits())),
                    "case {case}: {s:?}->{d:?}"
                );
            }
        }
    }
}
