//! Cross-crate determinism guarantees of the demand subsystem.
//!
//! The demand model is the input to every federation-vs-solo claim the
//! experiments make, so its output must be a pure function of the seed:
//! bitwise-stable across runs, across worker-thread counts, and exactly
//! decomposable (the per-cell aggregate replays as the in-order sum of
//! the per-class loads, with no tolerance).

use openspace_core::prelude::*;
use openspace_demand::prelude::*;
use openspace_phy::hardware::SatelliteClass;

fn grid(seed: u64) -> PopulationGrid {
    PopulationGrid::build(&PopulationConfig {
        lat_cells: 18,
        lon_cells: 36,
        total_users: 250_000,
        cities: 64,
        seed,
        ..Default::default()
    })
    .expect("valid population config")
}

fn model(seed: u64) -> DemandModel {
    DemandModel::new(grid(seed), AppMix::broadband(), DemandConfig::default())
        .expect("valid demand config")
}

fn assert_ticks_bitwise_eq(a: &[DemandTick], b: &[DemandTick]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.t_s.to_bits(), y.t_s.to_bits());
        assert_eq!(x.offered_bps.to_bits(), y.offered_bps.to_bits());
        assert_eq!(x.active_users.to_bits(), y.active_users.to_bits());
        assert_eq!(x.active_cells, y.active_cells);
        assert_eq!(x.flows.len(), y.flows.len());
        for (f, g) in x.flows.iter().zip(&y.flows) {
            assert_eq!(f.cell, g.cell);
            assert_eq!(f.class, g.class);
            assert_eq!(f.offered_bps.to_bits(), g.offered_bps.to_bits());
            assert_eq!(f.rate_bps.to_bits(), g.rate_bps.to_bits());
        }
    }
}

#[test]
fn same_seed_rebuild_is_bitwise_identical() {
    let (a, b) = (grid(7), grid(7));
    assert_eq!(a.total_users(), b.total_users());
    assert_eq!(a.populated_cell_count(), b.populated_cell_count());
    for idx in 0..a.cell_count() {
        assert_eq!(a.users(idx), b.users(idx), "cell {idx}");
    }
    let ta = model(7).demand_timeline(7_200.0, 86_400.0, 2).unwrap();
    let tb = model(7).demand_timeline(7_200.0, 86_400.0, 2).unwrap();
    assert_ticks_bitwise_eq(&ta, &tb);
}

#[test]
fn different_seeds_diverge() {
    let (a, b) = (grid(7), grid(8));
    assert_eq!(a.total_users(), b.total_users(), "users are conserved");
    let differing = (0..a.cell_count())
        .filter(|&i| a.users(i) != b.users(i))
        .count();
    assert!(
        differing > a.cell_count() / 16,
        "seeds must reshape the population ({differing} cells differ)"
    );
}

#[test]
fn timeline_is_worker_count_invariant() {
    let m = model(11);
    let reference = m.demand_timeline(3_600.0, 43_200.0, 1).unwrap();
    for threads in [2, 4, 8] {
        let t = m.demand_timeline(3_600.0, 43_200.0, threads).unwrap();
        assert_ticks_bitwise_eq(&reference, &t);
    }
}

#[test]
fn cell_aggregate_replays_as_class_sum_exactly() {
    let m = model(13);
    for t in [0.0, 3_600.0, 45_000.0, 86_399.0] {
        for (cell, _) in m.grid().populated_cells() {
            let total = m.cell_offered_bps(cell, t);
            let by_class: f64 = m
                .cell_class_offered(cell, t)
                .iter()
                .map(|&(_, _, bps)| bps)
                .sum();
            assert_eq!(
                total.to_bits(),
                by_class.to_bits(),
                "cell {cell} at t={t}: aggregate must replay bitwise"
            );
        }
    }
}

#[test]
fn apportionment_conserves_users_exactly() {
    for seed in [1, 5, 9, 42] {
        let g = grid(seed);
        let sum: u64 = (0..g.cell_count()).map(|i| g.users(i)).sum();
        assert_eq!(sum, g.total_users(), "seed {seed}");
    }
}

#[test]
fn attachment_and_flows_are_stable_end_to_end() {
    // The full pipeline — grid, attach, flow mapping — replayed twice
    // against the same federation must agree on every node index.
    let fed = iridium_federation(4, &[SatelliteClass::SmallSat], &default_station_sites());
    let g = grid(3);
    let m = DemandModel::new(g.clone(), AppMix::broadband(), DemandConfig::default()).unwrap();
    let graph = fed.snapshot(300.0);
    let run = || {
        let cov = fed.attach_demand_cells(&g, 300.0);
        let tick = m.flows_at(20.0 * 3_600.0);
        demand_flows_for(&cov, &tick, &graph)
    };
    let (fa, sa) = run();
    let (fb, sb) = run();
    assert_eq!(sa, sb);
    assert_eq!(fa.len(), fb.len());
    for (x, y) in fa.iter().zip(&fb) {
        assert_eq!(x.src, y.src);
        assert_eq!(x.dst, y.dst);
        assert_eq!(x.rate_bps.to_bits(), y.rate_bps.to_bits());
    }
}
