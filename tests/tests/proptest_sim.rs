//! Randomized property tests of the simulation engine and queues: event
//! ordering, conservation laws, and statistics invariants.
//!
//! Cases are drawn from a seeded [`SimRng`] stream (see
//! `proptest_orbit.rs` for the scheme) — deterministic, dependency-free
//! property testing.

use openspace_sim::prelude::*;

const CASES: u64 = 256;

fn for_cases(seed: u64, mut f: impl FnMut(&mut SimRng)) {
    for case in 0..CASES {
        let mut rng = SimRng::substream(seed, case);
        f(&mut rng);
    }
}

#[test]
fn events_always_pop_in_nondecreasing_time_order() {
    for_cases(0xB1, |rng| {
        let n = 1 + rng.index(199);
        let times: Vec<f64> = (0..n).map(|_| rng.uniform_range(0.0, 1e6)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut last = f64::NEG_INFINITY;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(q.processed(), times.len() as u64);
    });
}

#[test]
fn equal_times_preserve_insertion_order() {
    for_cases(0xB2, |rng| {
        let n = 1 + rng.index(99);
        let t = rng.uniform_range(0.0, 1e3);
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(t, i);
        }
        let mut expect = 0;
        while let Some((_, i)) = q.pop() {
            assert_eq!(i, expect);
            expect += 1;
        }
    });
}

#[test]
fn queue_conserves_packets() {
    for_cases(0xB3, |rng| {
        let n = 1 + rng.index(99);
        let sizes: Vec<u32> = (0..n).map(|_| 1 + rng.below(4_999) as u32).collect();
        let capacity = 5_000 + rng.below(45_000);
        let drains = rng.index(50);
        let mut q = DropTailQueue::new(capacity);
        for (i, &s) in sizes.iter().enumerate() {
            q.enqueue(Packet {
                flow_id: i as u64,
                size_bytes: s,
                created_at_s: 0.0,
                is_native: true,
            });
        }
        for _ in 0..drains {
            q.dequeue();
        }
        let st = q.stats();
        // Conservation: everything offered is accounted for.
        assert_eq!(st.enqueued + st.dropped, sizes.len() as u64);
        assert_eq!(st.enqueued - st.dequeued, q.len() as u64);
        // Occupancy never exceeds capacity.
        assert!(q.occupancy_bytes() <= capacity);
    });
}

#[test]
fn priority_queue_never_serves_visitor_before_native() {
    for_cases(0xB4, |rng| {
        let native: Vec<u32> = (0..rng.index(30))
            .map(|_| 1 + rng.below(499) as u32)
            .collect();
        let visitor: Vec<u32> = (0..rng.index(30))
            .map(|_| 1 + rng.below(499) as u32)
            .collect();
        let mut q = PriorityQueue::new(1_000_000, 0.5);
        for &s in &visitor {
            q.enqueue(Packet {
                flow_id: 0,
                size_bytes: s,
                created_at_s: 0.0,
                is_native: false,
            });
        }
        for &s in &native {
            q.enqueue(Packet {
                flow_id: 1,
                size_bytes: s,
                created_at_s: 0.0,
                is_native: true,
            });
        }
        let mut seen_visitor = false;
        while let Some(p) = q.dequeue() {
            if p.is_native {
                assert!(!seen_visitor, "native packet after a visitor one");
            } else {
                seen_visitor = true;
            }
        }
    });
}

#[test]
fn priority_queue_split_never_exceeds_physical_capacity() {
    // The class split must partition the buffer exactly: filling both
    // classes with 1-byte packets until drop can never admit more bytes
    // than the physical capacity, whatever the share. (The old rounding
    // gave each class an independent 1-byte floor, so tiny buffers and
    // extreme shares could oversubscribe.)
    for_cases(0xB6, |rng| {
        let capacity = 2 + rng.below(9_998);
        let share = rng.uniform_range(0.01, 0.99);
        let mut q = PriorityQueue::new(capacity, share);
        let mut admitted = 0u64;
        loop {
            let before = admitted;
            if q.enqueue(Packet {
                flow_id: 0,
                size_bytes: 1,
                created_at_s: 0.0,
                is_native: true,
            }) {
                admitted += 1;
            }
            if q.enqueue(Packet {
                flow_id: 1,
                size_bytes: 1,
                created_at_s: 0.0,
                is_native: false,
            }) {
                admitted += 1;
            }
            if admitted == before {
                break;
            }
        }
        assert!(
            admitted <= capacity,
            "capacity {capacity} share {share}: admitted {admitted}"
        );
        // Both classes must still be usable: at least one byte each.
        assert!(admitted >= 2);
    });
}

#[test]
fn summary_quantiles_are_monotone_and_bounded() {
    for_cases(0xB5, |rng| {
        let n = 2 + rng.index(498);
        let samples: Vec<f64> = (0..n).map(|_| rng.uniform_range(-1e9, 1e9)).collect();
        let q1 = rng.uniform();
        let q2 = rng.uniform();
        let mut s = Summary::new();
        for &x in &samples {
            s.add(x);
        }
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let v_lo = s.quantile(lo);
        let v_hi = s.quantile(hi);
        assert!(v_lo <= v_hi + 1e-9);
        assert!(v_lo >= s.min() - 1e-9 && v_hi <= s.max() + 1e-9);
        assert!(s.mean() >= s.min() - 1e-9 && s.mean() <= s.max() + 1e-9);
    });
}

#[test]
fn rng_streams_are_reproducible() {
    for_cases(0xB6, |rng| {
        let seed = rng.next_u64();
        let stream = rng.next_u64();
        let mut a = SimRng::substream(seed, stream);
        let mut b = SimRng::substream(seed, stream);
        for _ in 0..32 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    });
}

#[test]
fn cbr_arrivals_are_exactly_periodic() {
    for_cases(0xB7, |rng| {
        let rate = rng.uniform_range(1_000.0, 1e7);
        let bytes = 64 + rng.below(8_936) as u32;
        let mut src = CbrSource::new(rate, bytes, 0.0);
        let period = bytes as f64 * 8.0 / rate;
        let mut last: Option<f64> = None;
        for _ in 0..50 {
            let a = src.next_arrival().unwrap();
            if let Some(prev) = last {
                assert!((a.at_s - prev - period).abs() < 1e-9);
            }
            last = Some(a.at_s);
        }
    });
}

#[test]
fn poisson_arrivals_are_strictly_increasing() {
    for_cases(0xB8, |rng| {
        let seed = rng.next_u64();
        let rate = rng.uniform_range(1_000.0, 1e6);
        let mut src = PoissonSource::new(rate, 1_000, 0.0, seed);
        let mut last = 0.0;
        for _ in 0..100 {
            let a = src.next_arrival().unwrap();
            assert!(a.at_s >= last);
            last = a.at_s;
        }
    });
}
