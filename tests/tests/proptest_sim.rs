//! Property-based tests of the simulation engine and queues: event
//! ordering, conservation laws, and statistics invariants.

use openspace_sim::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn events_always_pop_in_nondecreasing_time_order(
        times in prop::collection::vec(0.0..1e6f64, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut last = f64::NEG_INFINITY;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
        prop_assert_eq!(q.processed(), times.len() as u64);
    }

    #[test]
    fn equal_times_preserve_insertion_order(
        n in 1usize..100,
        t in 0.0..1e3f64,
    ) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(t, i);
        }
        let mut expect = 0;
        while let Some((_, i)) = q.pop() {
            prop_assert_eq!(i, expect);
            expect += 1;
        }
    }

    #[test]
    fn queue_conserves_packets(
        sizes in prop::collection::vec(1u32..5_000, 1..100),
        capacity in 5_000u64..50_000,
        drains in 0usize..50,
    ) {
        let mut q = DropTailQueue::new(capacity);
        for (i, &s) in sizes.iter().enumerate() {
            q.enqueue(Packet {
                flow_id: i as u64,
                size_bytes: s,
                created_at_s: 0.0,
                is_native: true,
            });
        }
        for _ in 0..drains {
            q.dequeue();
        }
        let st = q.stats();
        // Conservation: everything offered is accounted for.
        prop_assert_eq!(st.enqueued + st.dropped, sizes.len() as u64);
        prop_assert_eq!(st.enqueued - st.dequeued, q.len() as u64);
        // Occupancy never exceeds capacity.
        prop_assert!(q.occupancy_bytes() <= capacity);
    }

    #[test]
    fn priority_queue_never_serves_visitor_before_native(
        native_sizes in prop::collection::vec(1u32..500, 0..30),
        visitor_sizes in prop::collection::vec(1u32..500, 0..30),
    ) {
        let mut q = PriorityQueue::new(1_000_000, 0.5);
        for &s in &visitor_sizes {
            q.enqueue(Packet { flow_id: 0, size_bytes: s, created_at_s: 0.0, is_native: false });
        }
        for &s in &native_sizes {
            q.enqueue(Packet { flow_id: 1, size_bytes: s, created_at_s: 0.0, is_native: true });
        }
        let mut seen_visitor = false;
        while let Some(p) = q.dequeue() {
            if p.is_native {
                prop_assert!(!seen_visitor, "native packet after a visitor one");
            } else {
                seen_visitor = true;
            }
        }
    }

    #[test]
    fn summary_quantiles_are_monotone_and_bounded(
        samples in prop::collection::vec(-1e9..1e9f64, 2..500),
        q1 in 0.0..1.0f64,
        q2 in 0.0..1.0f64,
    ) {
        let mut s = Summary::new();
        for &x in &samples {
            s.add(x);
        }
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let v_lo = s.quantile(lo);
        let v_hi = s.quantile(hi);
        prop_assert!(v_lo <= v_hi + 1e-9);
        prop_assert!(v_lo >= s.min() - 1e-9 && v_hi <= s.max() + 1e-9);
        prop_assert!(s.mean() >= s.min() - 1e-9 && s.mean() <= s.max() + 1e-9);
    }

    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>(), stream in any::<u64>()) {
        let mut a = SimRng::substream(seed, stream);
        let mut b = SimRng::substream(seed, stream);
        for _ in 0..32 {
            prop_assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn cbr_arrivals_are_exactly_periodic(
        rate in 1_000.0..1e7f64,
        bytes in 64u32..9_000,
    ) {
        let mut src = CbrSource::new(rate, bytes, 0.0);
        let period = bytes as f64 * 8.0 / rate;
        let mut last: Option<f64> = None;
        for _ in 0..50 {
            let a = src.next_arrival().unwrap();
            if let Some(prev) = last {
                prop_assert!((a.at_s - prev - period).abs() < 1e-9);
            }
            last = Some(a.at_s);
        }
    }

    #[test]
    fn poisson_arrivals_are_strictly_increasing(
        seed in any::<u64>(),
        rate in 1_000.0..1e6f64,
    ) {
        let mut src = PoissonSource::new(rate, 1_000, 0.0, seed);
        let mut last = 0.0;
        for _ in 0..100 {
            let a = src.next_arrival().unwrap();
            prop_assert!(a.at_s >= last);
            last = a.at_s;
        }
    }
}
