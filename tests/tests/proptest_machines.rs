//! Randomized property tests over state machines and the newer
//! subsystems: the pairing machine never panics or regresses under
//! arbitrary event sequences, DTN routing respects causality, MAC
//! simulations conserve work, and the Shapley division is always
//! efficient.
//!
//! Cases are drawn from a seeded [`SimRng`] stream — deterministic,
//! dependency-free property testing.

use openspace_economics::incentives::shapley_shares;
use openspace_mac::prelude::*;
use openspace_net::dtn::{earliest_arrival, Contact};
use openspace_protocol::prelude::*;
use openspace_sim::rng::SimRng;

const CASES: u64 = 256;

fn for_cases(seed: u64, mut f: impl FnMut(&mut SimRng)) {
    for case in 0..CASES {
        let mut rng = SimRng::substream(seed, case);
        f(&mut rng);
    }
}

#[derive(Debug, Clone)]
enum MachineEvent {
    RequestSent {
        timeout_s: f64,
    },
    Response {
        accept: bool,
        optical: bool,
        orient_s: f64,
    },
    Tick {
        dt_s: f64,
    },
}

fn arb_event(rng: &mut SimRng) -> MachineEvent {
    match rng.index(3) {
        0 => MachineEvent::RequestSent {
            timeout_s: rng.uniform_range(0.1, 10.0),
        },
        1 => MachineEvent::Response {
            accept: rng.chance(0.5),
            optical: rng.chance(0.5),
            orient_s: rng.uniform_range(0.0, 60.0),
        },
        _ => MachineEvent::Tick {
            dt_s: rng.uniform_range(0.0, 20.0),
        },
    }
}

#[test]
fn pairing_machine_is_panic_free_and_terminal_states_latch() {
    for_cases(0xC1, |rng| {
        let n_events = 1 + rng.index(39);
        let events: Vec<MachineEvent> = (0..n_events).map(|_| arb_event(rng)).collect();
        let mut m = PairingMachine::new();
        let mut now = 0.0f64;
        let mut established = false;
        for ev in events {
            match ev {
                MachineEvent::RequestSent { timeout_s } => {
                    // Only legal from Idle/Failed; skip otherwise (the
                    // machine asserts on misuse by design).
                    if matches!(m.state(), PairingState::Idle | PairingState::Failed(_)) {
                        m.request_sent(now, timeout_s);
                    }
                }
                MachineEvent::Response {
                    accept,
                    optical,
                    orient_s,
                } => {
                    let verdict = if accept {
                        PairVerdict::Accept {
                            technology: if optical {
                                LinkTechnology::Optical
                            } else {
                                LinkTechnology::Rf
                            },
                            orient_time_s: orient_s,
                        }
                    } else {
                        PairVerdict::Reject(RejectReason::NoBandwidth)
                    };
                    let resp = PairResponse {
                        responder: SatelliteId(2),
                        requester: SatelliteId(1),
                        verdict,
                    };
                    m.response_received(&resp, now);
                }
                MachineEvent::Tick { dt_s } => {
                    now += dt_s;
                    m.tick(now);
                }
            }
            if matches!(m.state(), PairingState::Established { .. }) {
                established = true;
            }
            // Established is terminal: once set, it never becomes Failed.
            if established {
                assert!(
                    matches!(m.state(), PairingState::Established { .. }),
                    "established link regressed to {:?}",
                    m.state()
                );
            }
        }
    });
}

#[test]
fn dtn_routing_respects_causality() {
    for_cases(0xC2, |rng| {
        let n_contacts = 1 + rng.index(29);
        let contacts: Vec<Contact> = (0..n_contacts)
            .map(|_| {
                (
                    rng.index(6),
                    rng.index(6),
                    rng.uniform_range(0.0, 500.0),
                    rng.uniform_range(1.0, 300.0),
                    rng.uniform_range(1e3, 1e7),
                )
            })
            .filter(|&(f, t, ..)| f != t)
            .map(|(from, to, start, dur, rate)| Contact {
                from: from.into(),
                to: to.into(),
                start_s: start,
                end_s: start + dur,
                latency_s: 0.01,
                rate_bps: rate,
            })
            .collect();
        let t_start = rng.uniform_range(0.0, 400.0);
        let bundle = rng.uniform_range(1e3, 1e6);
        if contacts.is_empty() {
            return;
        }
        if let Ok(r) = earliest_arrival(&contacts, 6, 0, 5, t_start, bundle) {
            // Arrival can never precede departure readiness.
            assert!(r.arrival_s >= t_start);
            // The route starts at the source and ends at the target.
            assert_eq!(r.nodes[0], 0);
            assert_eq!(*r.nodes.last().unwrap(), 5);
            // Starting later can never yield an earlier arrival.
            if let Ok(later) = earliest_arrival(&contacts, 6, 0, 5, t_start + 50.0, bundle) {
                assert!(later.arrival_s + 1e-9 >= r.arrival_s);
            }
        }
    });
}

#[test]
fn csma_report_is_internally_consistent() {
    for_cases(0xC3, |rng| {
        let n = 1 + rng.index(23);
        let seed = rng.next_u64();
        let r = simulate_csma_ca(&MacParams::s_band_isl(), n, 5.0, seed);
        assert!(r.channel_efficiency >= 0.0 && r.channel_efficiency <= 1.0);
        assert!(r.collision_rate >= 0.0 && r.collision_rate <= 1.0);
        if n == 1 {
            assert_eq!(r.collision_rate, 0.0);
            assert_eq!(r.dropped, 0);
        }
        assert!(r.delivered > 0, "5 s of saturation must deliver");
    });
}

#[test]
fn dama_never_delivers_more_than_offered_or_capacity() {
    for_cases(0xC4, |rng| {
        let n = 1 + rng.index(15);
        let load = rng.uniform_range(1e4, 2e6);
        let seed = rng.next_u64();
        let p = DamaParams::s_band_isl();
        let duration = 20.0;
        let r = simulate_dama(&p, n, load, duration, seed);
        // Carried ≤ offered (with slack for arrival bunching at the
        // horizon) and ≤ channel peak.
        let offered = load * n as f64;
        assert!(
            r.goodput_bps <= offered * 1.1 + 1e4,
            "carried {} offered {}",
            r.goodput_bps,
            offered
        );
        assert!(r.goodput_bps <= p.peak_goodput_bps() * 1.02);
    });
}

#[test]
fn shapley_is_always_efficient_for_monotone_games() {
    for_cases(0xC5, |rng| {
        let n = 1 + rng.index(6);
        let weights: Vec<f64> = (0..7).map(|_| rng.uniform_range(0.0, 10.0)).collect();
        let members: Vec<OperatorId> = (1..=n as u32).map(OperatorId).collect();
        // A weighted additive-with-synergy game: monotone by construction.
        let value = |mask: u32| {
            let base: f64 = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| weights[i])
                .sum();
            base + 0.1 * (mask.count_ones() as f64).powi(2)
        };
        let shares = shapley_shares(&members, value);
        let grand = value((1u32 << n) - 1);
        let total: f64 = shares.iter().map(|s| s.shapley_value).sum();
        assert!((total - grand).abs() < 1e-9, "sum {total} vs grand {grand}");
    });
}

#[test]
fn neighbor_table_never_reports_expired_entries() {
    for_cases(0xC6, |rng| {
        let n_obs = 1 + rng.index(59);
        let observations: Vec<(u64, u64)> = (0..n_obs)
            .map(|_| (rng.below(50), rng.below(10_000)))
            .collect();
        let probe = rng.below(20_000);
        let ttl = 1 + rng.below(4_999);
        let mut t = NeighborTable::new(ttl);
        for (id, at) in &observations {
            let b = Beacon {
                satellite: SatelliteId(*id),
                operator: OperatorId(1),
                capabilities: Capabilities::rf_only(),
                timestamp_ms: *at,
                semi_major_axis_m: 7.1e6,
                eccentricity: 0.0,
                inclination_rad: 1.0,
                raan_rad: 0.0,
                arg_perigee_rad: 0.0,
                mean_anomaly_rad: 0.0,
            };
            t.observe(b, *at);
        }
        for n in t.active(probe) {
            assert!(probe.saturating_sub(n.last_heard_ms) <= ttl);
        }
    });
}
