//! Property tests over state machines and the newer subsystems: the
//! pairing machine never panics or regresses under arbitrary event
//! sequences, DTN routing respects causality, MAC simulations conserve
//! work, and the Shapley division is always efficient.

use openspace_economics::incentives::shapley_shares;
use openspace_mac::prelude::*;
use openspace_net::dtn::{earliest_arrival, Contact};
use openspace_protocol::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum MachineEvent {
    RequestSent { timeout_s: f64 },
    Response { accept: bool, optical: bool, orient_s: f64 },
    Tick { dt_s: f64 },
}

fn arb_event() -> impl Strategy<Value = MachineEvent> {
    prop_oneof![
        (0.1..10.0f64).prop_map(|timeout_s| MachineEvent::RequestSent { timeout_s }),
        (any::<bool>(), any::<bool>(), 0.0..60.0f64)
            .prop_map(|(accept, optical, orient_s)| MachineEvent::Response {
                accept,
                optical,
                orient_s
            }),
        (0.0..20.0f64).prop_map(|dt_s| MachineEvent::Tick { dt_s }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pairing_machine_is_panic_free_and_terminal_states_latch(
        events in prop::collection::vec(arb_event(), 1..40),
    ) {
        let mut m = PairingMachine::new();
        let mut now = 0.0f64;
        let mut established = false;
        for ev in events {
            match ev {
                MachineEvent::RequestSent { timeout_s } => {
                    // Only legal from Idle/Failed; skip otherwise (the
                    // machine asserts on misuse by design).
                    if matches!(m.state(), PairingState::Idle | PairingState::Failed(_)) {
                        m.request_sent(now, timeout_s);
                    }
                }
                MachineEvent::Response { accept, optical, orient_s } => {
                    let verdict = if accept {
                        PairVerdict::Accept {
                            technology: if optical {
                                LinkTechnology::Optical
                            } else {
                                LinkTechnology::Rf
                            },
                            orient_time_s: orient_s,
                        }
                    } else {
                        PairVerdict::Reject(RejectReason::NoBandwidth)
                    };
                    let resp = PairResponse {
                        responder: SatelliteId(2),
                        requester: SatelliteId(1),
                        verdict,
                    };
                    m.response_received(&resp, now);
                }
                MachineEvent::Tick { dt_s } => {
                    now += dt_s;
                    m.tick(now);
                }
            }
            if matches!(m.state(), PairingState::Established { .. }) {
                established = true;
            }
            // Established is terminal: once set, it never becomes Failed.
            if established {
                prop_assert!(
                    matches!(m.state(), PairingState::Established { .. }),
                    "established link regressed to {:?}",
                    m.state()
                );
            }
        }
    }

    #[test]
    fn dtn_routing_respects_causality(
        seed_contacts in prop::collection::vec(
            (0usize..6, 0usize..6, 0.0..500.0f64, 1.0..300.0f64, 1e3..1e7f64),
            1..30
        ),
        t_start in 0.0..400.0f64,
        bundle in 1e3..1e6f64,
    ) {
        let contacts: Vec<Contact> = seed_contacts
            .into_iter()
            .filter(|&(f, t, ..)| f != t)
            .map(|(from, to, start, dur, rate)| Contact {
                from,
                to,
                start_s: start,
                end_s: start + dur,
                latency_s: 0.01,
                rate_bps: rate,
            })
            .collect();
        if contacts.is_empty() {
            return Ok(());
        }
        if let Some(r) = earliest_arrival(&contacts, 6, 0, 5, t_start, bundle) {
            // Arrival can never precede departure readiness.
            prop_assert!(r.arrival_s >= t_start);
            // The route starts at the source and ends at the target.
            prop_assert_eq!(r.nodes[0], 0);
            prop_assert_eq!(*r.nodes.last().unwrap(), 5);
            // Starting later can never yield an earlier arrival.
            if let Some(later) =
                earliest_arrival(&contacts, 6, 0, 5, t_start + 50.0, bundle)
            {
                prop_assert!(later.arrival_s + 1e-9 >= r.arrival_s);
            }
        }
    }

    #[test]
    fn csma_report_is_internally_consistent(
        n in 1usize..24,
        seed in any::<u64>(),
    ) {
        let r = simulate_csma_ca(&MacParams::s_band_isl(), n, 5.0, seed);
        prop_assert!(r.channel_efficiency >= 0.0 && r.channel_efficiency <= 1.0);
        prop_assert!(r.collision_rate >= 0.0 && r.collision_rate <= 1.0);
        if n == 1 {
            prop_assert_eq!(r.collision_rate, 0.0);
            prop_assert_eq!(r.dropped, 0);
        }
        prop_assert!(r.delivered > 0, "5 s of saturation must deliver");
    }

    #[test]
    fn dama_never_delivers_more_than_offered_or_capacity(
        n in 1usize..16,
        load in 1e4..2e6f64,
        seed in any::<u64>(),
    ) {
        let p = DamaParams::s_band_isl();
        let duration = 20.0;
        let r = simulate_dama(&p, n, load, duration, seed);
        // Carried ≤ offered (with slack for arrival bunching at the
        // horizon) and ≤ channel peak.
        let offered = load * n as f64;
        prop_assert!(r.goodput_bps <= offered * 1.1 + 1e4, "carried {} offered {}", r.goodput_bps, offered);
        prop_assert!(r.goodput_bps <= p.peak_goodput_bps() * 1.02);
    }

    #[test]
    fn shapley_is_always_efficient_for_monotone_games(
        n in 1usize..7,
        weights in prop::collection::vec(0.0..10.0f64, 7),
    ) {
        let members: Vec<OperatorId> = (1..=n as u32).map(OperatorId).collect();
        // A weighted additive-with-synergy game: monotone by construction.
        let value = |mask: u32| {
            let base: f64 = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| weights[i])
                .sum();
            base + 0.1 * (mask.count_ones() as f64).powi(2)
        };
        let shares = shapley_shares(&members, value);
        let grand = value((1u32 << n) - 1);
        let total: f64 = shares.iter().map(|s| s.shapley_value).sum();
        prop_assert!((total - grand).abs() < 1e-9, "sum {total} vs grand {grand}");
    }

    #[test]
    fn neighbor_table_never_reports_expired_entries(
        observations in prop::collection::vec((0u64..50, 0u64..10_000), 1..60),
        probe in 0u64..20_000,
        ttl in 1u64..5_000,
    ) {
        let mut t = NeighborTable::new(ttl);
        for (id, at) in &observations {
            let b = Beacon {
                satellite: SatelliteId(*id),
                operator: OperatorId(1),
                capabilities: Capabilities::rf_only(),
                timestamp_ms: *at,
                semi_major_axis_m: 7.1e6,
                eccentricity: 0.0,
                inclination_rad: 1.0,
                raan_rad: 0.0,
                arg_perigee_rad: 0.0,
                mean_anomaly_rad: 0.0,
            };
            t.observe(b, *at);
        }
        for n in t.active(probe) {
            prop_assert!(probe.saturating_sub(n.last_heard_ms) <= ttl);
        }
    }
}
