//! Validation of the packet-level simulator against queueing theory and
//! cross-crate scenarios on real constellation snapshots.

use openspace_core::netsim::{FlowSpec, NetSim, NetSimConfig, RoutingMode, TrafficKind};
use openspace_core::prelude::*;
use openspace_net::topology::{Graph, LinkTech};
use openspace_orbit::frames::{geodetic_to_ecef, Geodetic};
use openspace_phy::hardware::SatelliteClass;

/// One directed link of capacity `bps` between two nodes.
fn single_link(bps: f64) -> Graph {
    let mut g = Graph::new(2, 0);
    g.add_bidirectional(0, 1, 0.001, bps, 0, 0, LinkTech::Rf);
    g
}

#[test]
fn mm1_mean_delay_matches_theory() {
    // M/M/1-ish check: Poisson arrivals, fixed-size packets (so strictly
    // M/D/1) at utilization ρ. M/D/1 waiting time: W = ρ/(2μ(1−ρ)),
    // plus service 1/μ and propagation. Simulated mean latency must land
    // on the M/D/1 prediction, which is a sharp test of the queueing
    // machinery (event ordering, busy chains, FIFO service).
    let capacity = 1.0e6;
    let packet_bytes = 1_250u32; // 10 kbit → μ = 100 pkt/s
    let service_s = packet_bytes as f64 * 8.0 / capacity;
    for rho in [0.3, 0.6, 0.8] {
        let g = single_link(capacity);
        let r = NetSim::new(NetSimConfig {
            duration_s: 400.0,
            queue_capacity_bytes: 64 * 1024 * 1024, // effectively infinite
            routing: RoutingMode::Proactive,
            seed: 3,
            ..Default::default()
        })
        .with_snapshot(&g)
        .run(&[FlowSpec {
            src: 0.into(),
            dst: 1.into(),
            rate_bps: rho * capacity,
            packet_bytes,
            kind: TrafficKind::Poisson,
        }])
        .expect("valid netsim config");
        assert!(r.dropped == 0, "rho={rho}: drops {}", r.dropped);
        let wait_theory = rho * service_s / (2.0 * (1.0 - rho));
        let latency_theory = wait_theory + service_s + 0.001;
        let rel_err = (r.mean_latency_s - latency_theory).abs() / latency_theory;
        assert!(
            rel_err < 0.08,
            "rho={rho}: simulated {} vs M/D/1 {} (err {:.1}%)",
            r.mean_latency_s,
            latency_theory,
            rel_err * 100.0
        );
    }
}

#[test]
fn utilization_measurement_matches_offered_load() {
    let g = single_link(2.0e6);
    let r = NetSim::new(NetSimConfig {
        duration_s: 60.0,
        ..Default::default()
    })
    .with_snapshot(&g)
    .run(&[FlowSpec {
        src: 0.into(),
        dst: 1.into(),
        rate_bps: 1.0e6,
        packet_bytes: 1_500,
        kind: TrafficKind::Cbr,
    }])
    .expect("valid netsim config");
    assert!(
        (r.max_link_utilization - 0.5).abs() < 0.05,
        "measured {}",
        r.max_link_utilization
    );
}

#[test]
fn final_utilization_sample_divides_by_actual_window_after_restore() {
    use openspace_sim::fault::{FaultPlan, FaultTopology};
    use openspace_sim::ids::OperatorId;

    // Flap the only link down at t=5 and back up at t=8 of a 10 s run.
    // The restore creates a fresh link whose measurement window is the
    // final 2 s; at 1 Mbit/s offered over a 2 Mbit/s link the correct
    // sample is ~0.5. Dividing by the full duration (the old bug) would
    // dilute it to ~0.1.
    let g = single_link(2.0e6);
    let topo = FaultTopology::new(vec![OperatorId(0); 2], vec![]);
    let events = FaultPlan::builder()
        .link_flap(0, 1, 5.0, 3.0, 1.0, 1)
        .build()
        .expect("valid plan")
        .compile(&topo)
        .expect("plan fits topology");
    let r = NetSim::new(NetSimConfig {
        duration_s: 10.0,
        ..Default::default()
    })
    .with_snapshot(&g)
    .with_faults(&events)
    .run(&[FlowSpec {
        src: 0.into(),
        dst: 1.into(),
        rate_bps: 1.0e6,
        packet_bytes: 1_500,
        kind: TrafficKind::Cbr,
    }])
    .expect("valid netsim config");
    assert!(
        (r.max_link_utilization - 0.5).abs() < 0.1,
        "restored link must be sampled over its own window, got {}",
        r.max_link_utilization
    );
}

#[test]
fn max_link_utilization_reports_saturation_unclamped() {
    // A 3 Mbit/s flow over a 1 Mbit/s link saturates it: per-replan
    // samples sit at ~1.0. The report must surface that raw measurement;
    // only the load fed back into the routing graph is clamped below
    // 1.0 (the congestion weight's domain). The old code folded the
    // clamped value into the report, capping it at 0.98.
    let g = single_link(1.0e6);
    let r = NetSim::new(NetSimConfig {
        duration_s: 5.0,
        routing: RoutingMode::Adaptive {
            replan_interval_s: 1.0,
        },
        ..Default::default()
    })
    .with_snapshot(&g)
    .run(&[FlowSpec {
        src: 0.into(),
        dst: 1.into(),
        rate_bps: 3.0e6,
        packet_bytes: 1_500,
        kind: TrafficKind::Cbr,
    }])
    .expect("valid netsim config");
    assert!(
        r.max_link_utilization > 0.98,
        "saturated link must report >0.98, got {}",
        r.max_link_utilization
    );
    assert!(r.max_link_utilization < 1.1);
}

#[test]
fn netsim_on_real_iridium_snapshot_delivers() {
    let fed = iridium_federation(4, &[SatelliteClass::SmallSat], &default_station_sites());
    let graph = fed.snapshot(0.0);
    let pos = geodetic_to_ecef(Geodetic::from_degrees(-1.3, 36.8, 0.0));
    let (sat, _) = openspace_net::isl::best_access_satellite(
        pos,
        &fed.sat_nodes(),
        0.0,
        fed.snapshot_params.min_elevation_rad,
    )
    .unwrap();
    let r = NetSim::new(NetSimConfig {
        duration_s: 10.0,
        ..Default::default()
    })
    .with_snapshot(&graph)
    .run(&[FlowSpec {
        src: graph.sat_node(sat),
        dst: graph.station_node(0),
        rate_bps: 2.0e6,
        packet_bytes: 1_500,
        kind: TrafficKind::Poisson,
    }])
    .expect("valid netsim config");
    assert!(r.delivery_ratio > 0.99, "ratio {}", r.delivery_ratio);
    // Latency is propagation-dominated on an optical Iridium mesh.
    assert!(
        r.mean_latency_s > 0.005 && r.mean_latency_s < 0.2,
        "latency {}",
        r.mean_latency_s
    );
}

#[test]
fn adaptive_routing_beats_proactive_under_hotspot_on_iridium() {
    // The §5(2) claim on the real topology: several flows through one
    // access satellite, RF-only capacities.
    let fed = iridium_federation(4, &[SatelliteClass::CubeSat], &default_station_sites());
    let graph = fed.snapshot(0.0);
    let pos = geodetic_to_ecef(Geodetic::from_degrees(-1.3, 36.8, 0.0));
    let (sat, _) = openspace_net::isl::best_access_satellite(
        pos,
        &fed.sat_nodes(),
        0.0,
        fed.snapshot_params.min_elevation_rad,
    )
    .unwrap();
    let flows: Vec<FlowSpec> = (0..4)
        .map(|_| FlowSpec {
            src: graph.sat_node(sat),
            dst: graph.station_node(0),
            rate_bps: 12.0e6,
            packet_bytes: 1_500,
            kind: TrafficKind::Poisson,
        })
        .collect();
    let base = NetSimConfig {
        duration_s: 15.0,
        queue_capacity_bytes: 512 * 1024,
        routing: RoutingMode::Proactive,
        seed: 11,
        ..Default::default()
    };
    let pro = NetSim::new(base)
        .with_snapshot(&graph)
        .run(&flows)
        .expect("valid netsim config");
    let ada = NetSim::new(NetSimConfig {
        routing: RoutingMode::Adaptive {
            replan_interval_s: 1.0,
        },
        ..base
    })
    .with_snapshot(&graph)
    .run(&flows)
    .expect("valid netsim config");
    assert!(
        pro.delivery_ratio < 0.95,
        "the hotspot must actually overload: {}",
        pro.delivery_ratio
    );
    assert!(
        ada.delivery_ratio > pro.delivery_ratio + 0.05,
        "adaptive {} vs proactive {}",
        ada.delivery_ratio,
        pro.delivery_ratio
    );
    assert!(ada.p95_latency_s < pro.p95_latency_s);
}
