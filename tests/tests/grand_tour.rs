//! The grand tour: a day in the life of the OpenSpace federation, in one
//! test. Association → roaming deliveries with accounting → handovers →
//! ledger reconciliation → settlement → peering → reputation. If this
//! passes, the whole §2+§3 pipeline holds together.

use openspace_core::prelude::*;
use openspace_core::security::{ReputationPolicy, ReputationTracker, TrustState};
use openspace_economics::prelude::*;
use openspace_net::handover::service_schedule;
use openspace_net::routing::QosRequirement;
use openspace_orbit::frames::{geodetic_to_ecef, Geodetic};
use openspace_phy::hardware::SatelliteClass;
use openspace_protocol::types::OperatorId;
use std::collections::BTreeMap;

#[test]
fn a_day_in_the_federation() {
    let mut fed = iridium_federation(
        4,
        &[SatelliteClass::CubeSat, SatelliteClass::SmallSat],
        &default_station_sites(),
    );
    let ops = fed.operator_ids();

    // Three users on three continents, subscribed to different operators.
    let user_specs = [
        ((-1.3, 36.8), ops[0]),
        ((52.5, 13.4), ops[1]),
        ((-33.9, 151.2), ops[2]),
    ];
    let users: Vec<(User, _)> = user_specs
        .iter()
        .map(|&((lat, lon), home)| {
            let u = fed.register_user(home).expect("member operator");
            (u, geodetic_to_ecef(Geodetic::from_degrees(lat, lon, 0.0)))
        })
        .collect();

    // 1. Morning: everyone associates; certificates verify under the
    // issuing operator's federation secret.
    let mut assocs = Vec::new();
    for (i, (user, pos)) in users.iter().enumerate() {
        let a = associate(&mut fed, user, *pos, 0.0, 1 + i as u64).expect("association");
        let secret = *fed.federation_secret(user.home).expect("member operator");
        assert!(a.certificate.verify(&secret, 1));
        assocs.push(a);
    }

    // 2. All day: six delivery rounds, one hour apart, accumulating
    // cross-verified accounting on both sides of every hop.
    let mut ledgers: BTreeMap<OperatorId, TrafficLedger> = BTreeMap::new();
    let mut deliveries = 0u32;
    for round in 0..6u64 {
        let t = round as f64 * 3_600.0;
        let graph = fed.snapshot(t);
        for (i, (user, pos)) in users.iter().enumerate() {
            if deliver(
                &fed,
                &graph,
                user,
                *pos,
                t,
                round * 10 + i as u64,
                250_000_000,
                &QosRequirement::best_effort(),
                &mut ledgers,
            )
            .is_ok()
            {
                deliveries += 1;
            }
        }
    }
    assert!(
        deliveries >= 15,
        "most delivery rounds succeed: {deliveries}"
    );

    // 3. Handovers all day: the schedule hands over every few minutes
    // and every token commit validates without touching the home AAA.
    let (user, pos) = &users[0];
    let windows = fed.contact_plan(*pos, 0.0, 4.0 * 3_600.0, 10.0);
    let schedule = service_schedule(&windows, 0.0, 4.0 * 3_600.0).expect("valid horizon");
    assert!(schedule.handovers >= 10, "handovers {}", schedule.handovers);
    let mut prev = fed.satellites()[schedule.intervals[0].sat_index.index()].id;
    for iv in schedule.intervals.iter().skip(1).take(10) {
        let succ = fed.satellites()[iv.sat_index.index()].id;
        let h = execute_handover(
            &fed,
            user,
            &assocs[0].certificate,
            prev,
            succ,
            *pos,
            iv.start_s,
        )
        .expect("member operator");
        assert!(h.accepted, "token handover at t={}", iv.start_s);
        prev = succ;
    }

    // 4. Evening: books close. Every bilateral ledger pair reconciles,
    // settlement conserves money, and the reputation tracker finds
    // everyone clean.
    let mut tracker = ReputationTracker::new(ReputationPolicy::default());
    for (i, &a) in ops.iter().enumerate() {
        for &b in &ops[i + 1..] {
            if let (Some(la), Some(lb)) = (ledgers.get(&a), ledgers.get(&b)) {
                let r = reconcile(la, lb, a, b);
                assert!(r.is_clean(), "{a} vs {b}: {:?}", r.disputes.first());
                tracker.record_reconciliation(b, &r);
            }
        }
    }
    for &op in &ops {
        assert_eq!(tracker.state(op), TrustState::Trusted);
    }
    let matrix = SettlementMatrix::from_ledgers(&ledgers, &PriceBook::new(4.0));
    assert!(matrix.total_imbalance().abs() < 1e-6);

    // 5. And at least one pair has enough symmetric traffic to peer under
    // a generous policy.
    let policy = PeeringPolicy {
        max_asymmetry: 0.8,
        min_bytes_each_way: 100_000_000,
    };
    let mut peerable = 0;
    for (i, &a) in ops.iter().enumerate() {
        for &b in &ops[i + 1..] {
            if let Some(l) = ledgers.get(&a) {
                if matches!(
                    evaluate_peering(l, a, b, &policy),
                    PeeringVerdict::RecommendPeering { .. }
                ) {
                    peerable += 1;
                }
            }
        }
    }
    assert!(
        peerable >= 1,
        "a day of mesh traffic should justify a peering"
    );
}
