//! Property suite pinning the engine-equivalence contract: the
//! [`CalendarQueue`] is **bitwise-identical** in behaviour to the
//! reference binary-heap [`EventQueue`] — same pop order to the last
//! tie, same accounting — and therefore a [`NetSim`] run is a pure
//! function of the scenario, not of the engine executing it.
//!
//! Two layers:
//!
//! 1. **Queue-level**: adversarial seeded schedules (same-timestamp
//!    bursts, microsecond-vs-day time spans, interleaved schedule/pop,
//!    handlers that schedule offspring mid-run) must drain from both
//!    engines as the identical `(time-bits, payload)` sequence with
//!    identical `processed` / `depth_high_water` / final clock.
//! 2. **Simulation-level**: seeded netsim scenarios (static snapshot,
//!    evolving timeline, fault injection, demand workload) run once per
//!    [`EngineKind`] must produce bit-equal [`NetSimReport`]s *and*
//!    bit-equal recorded telemetry — every counter, gauge and histogram
//!    except `netsim.engine.bucket_resizes`, the one key that
//!    legitimately describes the engine rather than the simulation.
//!
//! This is the acceptance property for the calendar engine: it may only
//! ever be an *optimization*, never a behavioral change (see DESIGN.md).

use openspace_core::netsim::{
    DemandWorkload, EngineKind, FlowSpec, NetSim, NetSimConfig, NetSimReport, RoutingMode,
    TrafficKind,
};
use openspace_net::prelude::*;
use openspace_net::topology::LinkTech;
use openspace_sim::fault::{FaultPlan, FaultTopology};
use openspace_sim::ids::OperatorId;
use openspace_sim::prelude::{CalendarQueue, EventQueue, Scheduler, SimRng};
use openspace_telemetry::MemoryRecorder;

// ---------------------------------------------------------------------
// Layer 1: the two engines drain adversarial schedules identically.
// ---------------------------------------------------------------------

/// Drive a seeded mix of schedule bursts and pops against `q`,
/// returning the popped `(time-bits, payload)` sequence. The op stream
/// depends only on the seed and on state both engines must agree on
/// (`now`, pop results), so a divergence surfaces as a sequence
/// mismatch rather than silently forking the schedule.
fn drive<S: Scheduler<u32>>(q: &mut S, seed: u64, spans: &[f64]) -> Vec<(u64, u32)> {
    let mut rng = SimRng::substream(0xE9E9, seed);
    let mut out = Vec::new();
    let mut next_id = 0u32;
    for _ in 0..600 {
        if rng.uniform() < 0.55 {
            // A burst of 1-4 events; every event in the burst lands on
            // the *same* timestamp, so ties must break by schedule
            // order in both engines.
            let at = q.now() + spans[rng.index(spans.len())] * rng.uniform();
            for _ in 0..1 + rng.index(4) {
                q.schedule(at, next_id);
                next_id += 1;
            }
        } else if let Some((t, e)) = q.pop() {
            out.push((t.to_bits(), e));
        }
    }
    while let Some((t, e)) = q.pop() {
        out.push((t.to_bits(), e));
    }
    out
}

fn assert_queues_agree(seed: u64, spans: &[f64], ctx: &str) {
    let mut heap = EventQueue::new();
    let mut cal = CalendarQueue::new();
    let a = drive(&mut heap, seed, spans);
    let b = drive(&mut cal, seed, spans);
    assert_eq!(a, b, "{ctx} seed {seed}: pop sequences diverge");
    assert_eq!(
        Scheduler::<u32>::processed(&heap),
        Scheduler::<u32>::processed(&cal),
        "{ctx} seed {seed}: processed"
    );
    assert_eq!(
        Scheduler::<u32>::depth_high_water(&heap),
        Scheduler::<u32>::depth_high_water(&cal),
        "{ctx} seed {seed}: depth high-water"
    );
    assert_eq!(
        Scheduler::<u32>::now(&heap).to_bits(),
        Scheduler::<u32>::now(&cal).to_bits(),
        "{ctx} seed {seed}: final clock"
    );
}

#[test]
fn adversarial_schedules_pop_identically() {
    // Dense sub-second offsets: many same-bucket collisions.
    for seed in 0..20 {
        assert_queues_agree(seed, &[1e-4, 2e-3, 0.5], "dense");
    }
    // Mixed microsecond-vs-day spans: the bucket width is a terrible
    // fit for at least one population, forcing cursor laps and the
    // direct-search fallback.
    for seed in 0..20 {
        assert_queues_agree(seed, &[1e-6, 3e-5, 1.0, 86_400.0], "mixed-span");
    }
    // Degenerate: every event at one of two timestamps — ordering is
    // decided almost entirely by the seq tie-break.
    for seed in 0..10 {
        assert_queues_agree(seed, &[0.0, 1.0], "two-timestamp");
    }
}

/// A cascade where the handler schedules offspring mid-run — the shape
/// the packet engine produces (each `Depart` schedules the next) — at
/// deliberately mixed time scales.
fn run_cascade<S: Scheduler<u32> + Default>() -> (Vec<(u64, u32)>, u64, usize) {
    let mut q = S::default();
    for i in 0..32u32 {
        q.schedule(i as f64 * 0.125, i);
    }
    let mut out: Vec<(u64, u32)> = Vec::new();
    q.run_until(2.0e6, |q, t, e| {
        out.push((t.to_bits(), e));
        // Gate offspring on the pop count (identical across engines by
        // construction) so the cascade stays bounded: ≤2 children per
        // pop for the first 6000 pops, then drain.
        let n = out.len();
        if n < 6_000 {
            q.schedule(t + 1e-6 * (e as f64 + 1.0), e.wrapping_add(32));
            if n.is_multiple_of(3) {
                q.schedule(t + 86_400.0 / (e as f64 + 1.0), e.wrapping_add(33));
            }
        }
    });
    (out, q.processed(), q.depth_high_water())
}

#[test]
fn handler_cascades_pop_identically() {
    let (seq_h, proc_h, hw_h) = run_cascade::<EventQueue<u32>>();
    let (seq_c, proc_c, hw_c) = run_cascade::<CalendarQueue<u32>>();
    assert!(seq_h.len() > 5_000, "cascade must actually cascade");
    assert_eq!(seq_h, seq_c, "cascade pop sequences diverge");
    assert_eq!(proc_h, proc_c, "cascade processed");
    assert_eq!(hw_h, hw_c, "cascade depth high-water");
}

// ---------------------------------------------------------------------
// Layer 2: whole simulations are engine-invariant, bit for bit.
// ---------------------------------------------------------------------

/// Seeded evolving mesh (twin of the generator in
/// `netsim_delta_equivalence.rs`): fixed roster, chords that flip on
/// random periods, latencies that drift with time.
struct EvolvingMesh {
    n: usize,
    spine: Vec<(usize, usize, f64, f64)>,
    chords: Vec<(usize, usize, f64, f64, f64)>,
}

impl EvolvingMesh {
    fn random(rng: &mut SimRng) -> Self {
        let n = 4 + rng.index(12);
        let mut taken: Vec<(usize, usize)> = Vec::new();
        let spine: Vec<(usize, usize, f64, f64)> = (0..n - 1)
            .map(|i| {
                taken.push((i, i + 1));
                (
                    i,
                    i + 1,
                    rng.uniform_range(1e-3, 1e-2),
                    rng.uniform_range(1e6, 1e7),
                )
            })
            .collect();
        let mut chords = Vec::new();
        for _ in 0..rng.index(n) {
            let u = rng.index(n);
            let v = rng.index(n);
            if u == v || taken.contains(&(u, v)) || taken.contains(&(v, u)) {
                continue;
            }
            taken.push((u, v));
            chords.push((
                u,
                v,
                rng.uniform_range(1e-3, 1e-2),
                rng.uniform_range(1e6, 1e7),
                rng.uniform_range(3.0, 40.0),
            ));
        }
        Self { n, spine, chords }
    }

    fn at(&self, t: f64) -> Graph {
        let mut g = Graph::new(self.n, 0);
        for &(u, v, lat, cap) in &self.spine {
            g.add_bidirectional(u, v, lat + t * 1e-7, cap, 0u32, 0u32, LinkTech::Rf);
        }
        for &(u, v, lat, cap, period) in &self.chords {
            if (t / period).floor() as i64 % 2 == 0 {
                g.add_bidirectional(u, v, lat + t * 1e-7, cap, 0u32, 0u32, LinkTech::Optical);
            }
        }
        g
    }
}

fn random_flows(rng: &mut SimRng, n: usize) -> Vec<FlowSpec> {
    (0..1 + rng.index(4))
        .map(|_| {
            let src = rng.index(n);
            let dst = (src + 1 + rng.index(n - 1)) % n;
            FlowSpec::new(
                src,
                dst,
                rng.uniform_range(1e5, 3e6),
                1_500,
                if rng.uniform() < 0.5 {
                    TrafficKind::Poisson
                } else {
                    TrafficKind::Cbr
                },
            )
        })
        .collect()
}

fn assert_reports_bitwise(a: &NetSimReport, b: &NetSimReport, ctx: &str) {
    assert_eq!(a, b, "{ctx}: reports differ");
    for (name, x, y) in [
        ("delivery_ratio", a.delivery_ratio, b.delivery_ratio),
        ("mean_latency_s", a.mean_latency_s, b.mean_latency_s),
        ("p95_latency_s", a.p95_latency_s, b.p95_latency_s),
        (
            "max_link_utilization",
            a.max_link_utilization,
            b.max_link_utilization,
        ),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: {name} bits");
    }
}

/// The recorded-telemetry dump with the single engine-describing key
/// (`netsim.engine.bucket_resizes`) filtered out; everything else —
/// including `engine.events_processed`, the queue-depth high-water and
/// the packet-slab high-water — must match bit for bit.
fn engine_neutral_dump(rec: &mut MemoryRecorder) -> String {
    rec.deterministic_json()
        .to_string()
        .split(',')
        .filter(|frag| !frag.contains("bucket_resizes"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Run the scenario once per engine and require bit-equal reports and
/// bit-equal engine-neutral telemetry.
fn assert_engine_invariant<'a>(
    cfg: NetSimConfig,
    build: impl Fn(NetSim<'a>) -> NetSim<'a>,
    flows: &[FlowSpec],
    ctx: &str,
) {
    let run = |engine| {
        let mut rec = MemoryRecorder::new();
        let report = build(NetSim::new(NetSimConfig { engine, ..cfg }))
            .run_recorded(flows, &mut rec)
            .expect("valid netsim config");
        (report, engine_neutral_dump(&mut rec))
    };
    let (heap_report, heap_dump) = run(EngineKind::Heap);
    let (cal_report, cal_dump) = run(EngineKind::Calendar);
    assert_reports_bitwise(&heap_report, &cal_report, ctx);
    assert_eq!(heap_dump, cal_dump, "{ctx}: recorded telemetry diverges");
}

#[test]
fn static_snapshot_runs_are_engine_invariant() {
    for case in 0..24u64 {
        let mut rng = SimRng::substream(0xE9E0, case);
        let mesh = EvolvingMesh::random(&mut rng);
        let graph = mesh.at(0.0);
        let flows = random_flows(&mut rng, mesh.n);
        let routing = if case % 2 == 0 {
            RoutingMode::Proactive
        } else {
            RoutingMode::Adaptive {
                replan_interval_s: rng.uniform_range(0.5, 3.0),
            }
        };
        let cfg = NetSimConfig {
            duration_s: rng.uniform_range(5.0, 20.0),
            queue_capacity_bytes: 128 * 1024,
            routing,
            seed: case,
            ..Default::default()
        };
        assert_engine_invariant(
            cfg,
            |sim| sim.with_snapshot(&graph),
            &flows,
            &format!("static case {case} ({routing:?})"),
        );
    }
}

#[test]
fn timeline_runs_are_engine_invariant() {
    for case in 0..12u64 {
        let mut rng = SimRng::substream(0xE9E1, case);
        let mesh = EvolvingMesh::random(&mut rng);
        let flows = random_flows(&mut rng, mesh.n);
        let step = rng.uniform_range(0.5, 4.0);
        let duration = step * (2 + rng.index(10)) as f64;
        let cfg = NetSimConfig {
            duration_s: duration,
            queue_capacity_bytes: 128 * 1024,
            routing: if case % 2 == 0 {
                RoutingMode::Proactive
            } else {
                RoutingMode::Adaptive {
                    replan_interval_s: 1.0,
                }
            },
            seed: case,
            ..Default::default()
        };
        let provider = |t: f64| mesh.at(t);
        let tl = TopologyTimeline::build(&provider, 0.0, step, duration, 4)
            .expect("valid timeline build");
        assert_engine_invariant(
            cfg,
            |sim| sim.with_timeline(&tl),
            &flows,
            &format!("timeline case {case}"),
        );
        assert_engine_invariant(
            cfg,
            |sim| sim.with_provider(&provider, step),
            &flows,
            &format!("provider case {case}"),
        );
    }
}

#[test]
fn faulted_runs_are_engine_invariant() {
    for case in 0..12u64 {
        let mut rng = SimRng::substream(0xE9E2, case);
        let mesh = EvolvingMesh::random(&mut rng);
        let flows = random_flows(&mut rng, mesh.n);
        let victim = rng.index(mesh.n);
        let (lu, lv, ..) = mesh.spine[rng.index(mesh.spine.len())];
        let plan = FaultPlan::builder()
            .seed(case)
            .sat_outage(victim, rng.uniform_range(1.0, 5.0), 4.0)
            .link_flap(lu, lv, rng.uniform_range(1.0, 6.0), 1.5, 1.5, 2)
            .build()
            .expect("valid fault plan");
        let events = plan
            .compile(&FaultTopology::homogeneous(mesh.n, 0, OperatorId(0)))
            .expect("plan fits topology");
        let cfg = NetSimConfig {
            duration_s: 12.0,
            queue_capacity_bytes: 128 * 1024,
            routing: RoutingMode::Proactive,
            seed: case,
            ..Default::default()
        };
        let provider = |t: f64| mesh.at(t);
        assert_engine_invariant(
            cfg,
            |sim| sim.with_provider(&provider, 1.0).with_faults(&events),
            &flows,
            &format!("faulted case {case}"),
        );
    }
}

#[test]
fn demand_runs_are_engine_invariant() {
    for case in 0..8u64 {
        let mut rng = SimRng::substream(0xE9E3, case);
        let mesh = EvolvingMesh::random(&mut rng);
        let graph = mesh.at(0.0);
        let batches: Vec<(f64, Vec<FlowSpec>)> = (0..4)
            .map(|k| (k as f64 * 3.0, random_flows(&mut rng, mesh.n)))
            .collect();
        let demand = DemandWorkload::new(batches).expect("ticks strictly increasing");
        let cfg = NetSimConfig {
            duration_s: 15.0,
            queue_capacity_bytes: 128 * 1024,
            routing: RoutingMode::Proactive,
            seed: case,
            ..Default::default()
        };
        assert_engine_invariant(
            cfg,
            |sim| sim.with_snapshot(&graph).with_demand(&demand),
            &[],
            &format!("demand case {case}"),
        );
    }
}
