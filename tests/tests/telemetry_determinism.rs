//! The telemetry subsystem's headline contract, asserted end to end:
//! recording never perturbs a simulation, and per-worker recorders
//! merged in item order reproduce the serial metric dump bit for bit —
//! regardless of worker-pool size.

use openspace_core::netsim::{FlowSpec, NetSim, NetSimConfig, RoutingMode, TrafficKind};
use openspace_net::topology::{Graph, LinkTech};
use openspace_sim::exec::parallel_map_seeded;
use openspace_telemetry::json::parse;
use openspace_telemetry::manifest::jsonl_lines;
use openspace_telemetry::{JsonValue, MemoryRecorder, RunManifest};

/// A small two-path mesh under enough load that routing, queueing and
/// drops all exercise the recorder.
fn mesh() -> Graph {
    let mut g = Graph::new(4, 0);
    g.add_bidirectional(0, 1, 0.002, 2.0e6, 0, 0, LinkTech::Rf);
    g.add_bidirectional(1, 3, 0.002, 2.0e6, 0, 0, LinkTech::Rf);
    g.add_bidirectional(0, 2, 0.004, 2.0e6, 0, 0, LinkTech::Rf);
    g.add_bidirectional(2, 3, 0.004, 2.0e6, 0, 0, LinkTech::Rf);
    g
}

fn scenario(seed: u64) -> (Graph, Vec<FlowSpec>, NetSimConfig) {
    let flows = vec![
        FlowSpec {
            src: 0.into(),
            dst: 3.into(),
            rate_bps: 1.2e6,
            packet_bytes: 1_500,
            kind: TrafficKind::Poisson,
        },
        FlowSpec {
            src: 0.into(),
            dst: 3.into(),
            rate_bps: 8.0e5,
            packet_bytes: 1_500,
            kind: TrafficKind::Cbr,
        },
    ];
    let cfg = NetSimConfig {
        duration_s: 10.0,
        queue_capacity_bytes: 64 * 1024,
        routing: RoutingMode::Adaptive {
            replan_interval_s: 1.0,
        },
        seed,
        ..Default::default()
    };
    (mesh(), flows, cfg)
}

/// One work item of the fan-out: run the scenario for `seed`, return
/// the recorder its metrics landed in.
fn run_one(seed: u64) -> MemoryRecorder {
    let (g, flows, cfg) = scenario(seed);
    let mut rec = MemoryRecorder::new();
    NetSim::new(cfg)
        .with_snapshot(&g)
        .run_recorded(&flows, &mut rec)
        .expect("valid netsim config");
    rec
}

#[test]
fn recording_does_not_perturb_the_simulation() {
    let (g, flows, cfg) = scenario(7);
    let sim = NetSim::new(cfg).with_snapshot(&g);
    let plain = sim.run(&flows).expect("valid netsim config");
    let mut rec = MemoryRecorder::new();
    let recorded = sim
        .run_recorded(&flows, &mut rec)
        .expect("valid netsim config");
    assert_eq!(plain, recorded, "recording must be a pure observer");
    assert_eq!(rec.counter("netsim.delivered"), recorded.delivered);
    assert_eq!(rec.counter("netsim.generated"), recorded.generated);
}

#[test]
fn same_seed_adaptive_runs_dump_identical_metrics() {
    // The replan handler walks a HashMap of links whose iteration order
    // differs between recorder instances (std's RandomState is
    // per-instance); the handler must sort before touching telemetry or
    // routing state. Two same-seed runs in one process already exercise
    // two different hash orders, so dump equality pins the fix.
    let a = run_one(42).deterministic_json().to_string();
    let b = run_one(42).deterministic_json().to_string();
    assert_eq!(a, b, "same seed, same config, different dumps");
}

#[test]
fn merged_metric_dump_is_bit_identical_across_thread_counts() {
    let seeds: [u64; 6] = [3, 7, 11, 13, 17, 23];

    // Serial reference: one recorder fed by every run in item order.
    let mut serial = MemoryRecorder::new();
    for &s in &seeds {
        let (g, flows, cfg) = scenario(s);
        NetSim::new(cfg)
            .with_snapshot(&g)
            .run_recorded(&flows, &mut serial)
            .expect("valid netsim config");
    }
    let reference = serial.deterministic_json().to_string();
    assert!(!reference.is_empty());

    // Fan the same runs over pools of every size; merging the per-item
    // recorders in item order must reproduce the serial dump exactly.
    for threads in [1usize, 2, 4, 8] {
        let recorders: Vec<MemoryRecorder> =
            parallel_map_seeded(&seeds, threads, 99, |&s, _rng| run_one(s));
        let mut merged = MemoryRecorder::new();
        for r in &recorders {
            merged.merge(r);
        }
        assert_eq!(
            merged.deterministic_json().to_string(),
            reference,
            "{threads}-thread merge diverged from the serial dump"
        );
    }
}

#[test]
fn jsonl_export_round_trips_through_the_parser() {
    let mut rec = run_one(7);
    let lines = jsonl_lines(&mut rec);
    assert!(!lines.is_empty());
    for line in &lines {
        let v = parse(line).expect("each JSONL line parses");
        assert!(v.get("key").is_some(), "line missing key: {line}");
        assert!(v.get("kind").is_some(), "line missing kind: {line}");
    }
}

#[test]
fn run_manifest_carries_the_required_keys_and_separates_wall_clock() {
    let mut manifest = RunManifest::new("exp_integration", 7);
    manifest.digest_config("scenario=mesh flows=2 duration_s=10");
    manifest.metrics.merge(&run_one(7));
    manifest.push_phase("sweep", 0.25);
    manifest.push_extra("note", JsonValue::Str("integration".into()));

    let v = parse(&manifest.to_json()).expect("manifest parses");
    for key in [
        "schema",
        "experiment",
        "seed",
        "config_digest",
        "metrics",
        "extra",
        "wall",
    ] {
        assert!(v.get(key).is_some(), "missing {key}");
    }
    assert_eq!(
        v.get("schema").and_then(JsonValue::as_str),
        Some("openspace.run_manifest.v1")
    );
    // Wall-clock state lives only under "wall"; the deterministic
    // section must not mention it and must be reproducible.
    let det = manifest.deterministic_json();
    assert!(!det.contains("\"wall\""));
    assert!(!det.contains("span_wall_s"));
    let mut again = RunManifest::new("exp_integration", 7);
    again.digest_config("scenario=mesh flows=2 duration_s=10");
    again.metrics.merge(&run_one(7));
    again.push_phase("sweep", 99.0); // different wall-clock, same determinism
    again.push_extra("note", JsonValue::Str("integration".into()));
    assert_eq!(det, again.deterministic_json());
}
