//! Integration: traffic → ledgers → reconciliation → settlement →
//! peering, across `openspace-core`, `openspace-economics`, and
//! `openspace-protocol`.

use openspace_core::prelude::*;
use openspace_economics::prelude::*;
use openspace_net::routing::QosRequirement;
use openspace_orbit::frames::{geodetic_to_ecef, Geodetic};
use openspace_phy::hardware::SatelliteClass;
use openspace_protocol::types::OperatorId;
use std::collections::BTreeMap;

/// Run a batch of deliveries and return the resulting ledgers.
fn run_traffic(
    n_slots: u64,
) -> (
    Federation,
    Vec<OperatorId>,
    BTreeMap<OperatorId, TrafficLedger>,
) {
    let mut fed = iridium_federation(3, &[SatelliteClass::SmallSat], &default_station_sites());
    let ops = fed.operator_ids();
    let sites = [
        (-1.3, 36.8),
        (52.5, 13.4),
        (35.7, 139.7),
        (40.7, -74.0),
        (-33.9, 151.2),
        (-23.5, -46.6),
    ];
    let users: Vec<(User, _)> = sites
        .iter()
        .enumerate()
        .map(|(i, &(lat, lon))| {
            let u = fed
                .register_user(ops[i % ops.len()])
                .expect("member operator");
            (u, geodetic_to_ecef(Geodetic::from_degrees(lat, lon, 0.0)))
        })
        .collect();
    let mut ledgers = BTreeMap::new();
    for slot in 0..n_slots {
        let t = slot as f64 * 300.0;
        let graph = fed.snapshot(t);
        for (i, (user, pos)) in users.iter().enumerate() {
            let _ = deliver(
                &fed,
                &graph,
                user,
                *pos,
                t,
                slot * 100 + i as u64,
                10_000_000,
                &QosRequirement::best_effort(),
                &mut ledgers,
            );
        }
    }
    (fed, ops, ledgers)
}

#[test]
fn all_ledger_pairs_reconcile_clean() {
    let (_fed, ops, ledgers) = run_traffic(6);
    assert!(!ledgers.is_empty(), "traffic must generate ledgers");
    for (i, &a) in ops.iter().enumerate() {
        for &b in &ops[i + 1..] {
            let (Some(la), Some(lb)) = (ledgers.get(&a), ledgers.get(&b)) else {
                continue;
            };
            let r = reconcile(la, lb, a, b);
            assert!(
                r.is_clean(),
                "{a} vs {b}: {} disputes, first {:?}",
                r.disputes.len(),
                r.disputes.first()
            );
        }
    }
}

#[test]
fn settlement_conserves_money_over_real_traffic() {
    let (_fed, _ops, ledgers) = run_traffic(6);
    let prices = PriceBook::new(5.0);
    let matrix = SettlementMatrix::from_ledgers(&ledgers, &prices);
    assert!(
        matrix.total_imbalance().abs() < 1e-6,
        "imbalance {}",
        matrix.total_imbalance()
    );
    // Someone carried someone's traffic.
    assert!(!matrix.operators().is_empty());
}

#[test]
fn higher_prices_scale_invoices_linearly() {
    let (_fed, ops, ledgers) = run_traffic(4);
    let m1 = SettlementMatrix::from_ledgers(&ledgers, &PriceBook::new(2.0));
    let m2 = SettlementMatrix::from_ledgers(&ledgers, &PriceBook::new(4.0));
    for &a in &ops {
        for &b in &ops {
            if a == b {
                continue;
            }
            let o1 = m1.owed(a, b);
            let o2 = m2.owed(a, b);
            assert!((o2 - 2.0 * o1).abs() < 1e-9, "{a}->{b}: {o1} then {o2}");
        }
    }
}

#[test]
fn symmetric_mesh_traffic_tends_toward_peering() {
    // With users of all operators spread evenly and round-robin satellite
    // ownership, bilateral flows should be material; evaluate the policy
    // and require at least one recommendation in either direction of
    // evaluation (flows are symmetric-ish by construction).
    let (_fed, ops, ledgers) = run_traffic(8);
    let policy = PeeringPolicy {
        max_asymmetry: 0.6, // generous: traffic mix is only roughly even
        min_bytes_each_way: 10_000_000,
    };
    let mut recommendations = 0;
    for (i, &a) in ops.iter().enumerate() {
        for &b in &ops[i + 1..] {
            if let Some(l) = ledgers.get(&a) {
                if matches!(
                    evaluate_peering(l, a, b, &policy),
                    PeeringVerdict::RecommendPeering { .. }
                ) {
                    recommendations += 1;
                }
            }
        }
    }
    assert!(
        recommendations >= 1,
        "even mesh traffic should justify at least one peering"
    );
}

#[test]
fn accounting_records_verify_under_carrier_secrets_only() {
    let mut fed = iridium_federation(3, &[SatelliteClass::SmallSat], &default_station_sites());
    let home = fed.operator_ids()[0];
    let user = fed.register_user(home).expect("member operator");
    let pos = geodetic_to_ecef(Geodetic::from_degrees(0.0, 20.0, 0.0));
    let graph = fed.snapshot(0.0);
    let mut ledgers = BTreeMap::new();
    let d = deliver(
        &fed,
        &graph,
        &user,
        pos,
        0.0,
        1,
        1_000,
        &QosRequirement::best_effort(),
        &mut ledgers,
    )
    .unwrap();
    for rec in &d.records {
        let right = carrier_ledger_secret(rec.carrier_operator);
        assert!(rec.verify(&right));
        let wrong = carrier_ledger_secret(OperatorId(rec.carrier_operator.0 + 100));
        assert!(
            !rec.verify(&wrong),
            "record must not verify under another key"
        );
    }
}
