//! Property test pinning the horizon-skip contact scanner's contract:
//! [`contact_plan`] (and its recorded variant) emits windows **bitwise
//! identical** to the dense reference scan [`contact_plan_dense`].
//!
//! The scanner's correctness argument (see `crates/net/src/contact.rs`
//! module docs) is an escape-time bound: a sample far enough below the
//! elevation mask proves that every grid sample inside the bound's
//! horizon is also below the mask, so skipping them cannot change the
//! open/close state machine. These cases exercise the claim over seeded
//! random constellations (circular and eccentric, both perturbation
//! models), ground sites, masks (including negative and extreme ones),
//! steps, and scan horizons — and check that the skip machinery
//! actually engages across the suite rather than silently degrading to
//! dense everywhere.

use openspace_net::prelude::*;
use openspace_orbit::frames::{geodetic_to_ecef, Geodetic};
use openspace_orbit::kepler::OrbitalElements;
use openspace_orbit::propagator::{PerturbationModel, Propagator};
use openspace_sim::prelude::SimRng;
use openspace_telemetry::MemoryRecorder;

const CASES: u64 = 160;

fn random_sats(rng: &mut SimRng) -> Vec<SatNode> {
    let n = 1 + rng.index(6);
    (0..n)
        .map(|_| {
            let altitude_m = rng.uniform_range(350_000.0, 1_600_000.0);
            let ecc = if rng.chance(0.3) {
                rng.uniform_range(0.0, 0.04)
            } else {
                0.0
            };
            let el = OrbitalElements::new(
                6_378_137.0 + altitude_m,
                ecc,
                rng.uniform_range(0.0, std::f64::consts::PI),
                rng.uniform_range(0.0, std::f64::consts::TAU),
                rng.uniform_range(0.0, std::f64::consts::TAU),
                rng.uniform_range(0.0, std::f64::consts::TAU),
            )
            .unwrap();
            let model = if rng.chance(0.5) {
                PerturbationModel::SecularJ2
            } else {
                PerturbationModel::TwoBody
            };
            SatNode {
                propagator: Propagator::new(el, model),
                operator: 0,
                has_optical: false,
            }
        })
        .collect()
}

#[test]
fn gated_scan_is_bitwise_equal_to_dense_scan() {
    let mut total_skipped = 0u64;
    let mut total_evaluated = 0u64;
    for case in 0..CASES {
        let mut rng = SimRng::substream(0xC0_47AC7, case);
        let sats = random_sats(&mut rng);
        let ground = geodetic_to_ecef(Geodetic::from_degrees(
            rng.uniform_range(-80.0, 80.0),
            rng.uniform_range(-180.0, 180.0),
            rng.uniform_range(0.0, 3_000.0),
        ));
        // Masks from below-horizon (everything visible more often) to
        // near-zenith (nothing visible, maximal skipping).
        let mask = rng.uniform_range(-10.0, 70.0).to_radians();
        let step = rng.uniform_range(1.0, 45.0);
        let t_start = rng.uniform_range(0.0, 5_000.0);
        let horizon = rng.uniform_range(600.0, 10_800.0);
        let mut rec = MemoryRecorder::new();
        let gated = contact_plan_recorded(
            &sats,
            ground,
            t_start,
            t_start + horizon,
            step,
            mask,
            &mut rec,
        );
        let dense = contact_plan_dense(&sats, ground, t_start, t_start + horizon, step, mask);
        assert_eq!(
            gated.len(),
            dense.len(),
            "case {case}: window count {} vs {}",
            gated.len(),
            dense.len()
        );
        for (k, (a, b)) in gated.iter().zip(&dense).enumerate() {
            assert_eq!(a.sat_index, b.sat_index, "case {case}, window {k}");
            assert_eq!(
                a.start_s.to_bits(),
                b.start_s.to_bits(),
                "case {case}, window {k}: start {} vs {}",
                a.start_s,
                b.start_s
            );
            assert_eq!(
                a.end_s.to_bits(),
                b.end_s.to_bits(),
                "case {case}, window {k}: end {} vs {}",
                a.end_s,
                b.end_s
            );
        }
        total_skipped += rec.counter("contact.samples_skipped");
        total_evaluated += rec.counter("contact.samples_evaluated");
    }
    // The point of the fast path: across the suite, most grid samples
    // are proven below-mask without being propagated.
    assert!(
        total_skipped > total_evaluated,
        "horizon skip barely engaged: {total_skipped} skipped vs {total_evaluated} evaluated"
    );
}

#[test]
fn plain_contact_plan_is_the_gated_scanner() {
    // The undelegated entry point must give the same windows as the
    // recorded variant (NullRecorder delegation), and both must match
    // dense — a guard against the public path diverging.
    let mut rng = SimRng::new(0x5EED);
    let sats = random_sats(&mut rng);
    let ground = geodetic_to_ecef(Geodetic::from_degrees(12.0, -45.0, 100.0));
    let mask = 15f64.to_radians();
    let plain = contact_plan(&sats, ground, 0.0, 7_200.0, 5.0, mask);
    let dense = contact_plan_dense(&sats, ground, 0.0, 7_200.0, 5.0, mask);
    assert_eq!(plain, dense);
}
