//! Property suite pinning the delta-resnapshot contract of the
//! [`NetSim`] driver: a run that refreshes topology by replaying a
//! precomputed [`TopologyTimeline`] delta is **bitwise-identical** to
//! the run that rebuilds every snapshot from the provider — same report
//! floats to the last ulp, same counters — across routing modes and
//! under fault injection.
//!
//! This is the acceptance property for the timeline subsystem: the
//! incremental link patch, the selective planner invalidation and the
//! pristine-mirror bookkeeping may only ever be an *optimization*,
//! never a behavioral change (see DESIGN.md).

use openspace_core::netsim::{
    FlowSpec, NetSim, NetSimConfig, NetSimReport, RoutingMode, TrafficKind,
};
use openspace_net::prelude::*;
use openspace_net::topology::LinkTech;
use openspace_sim::fault::{FaultPlan, FaultTopology};
use openspace_sim::ids::OperatorId;
use openspace_sim::prelude::SimRng;

const CASES: u64 = 64;

/// A seeded evolving mesh: fixed roster, chords that flip on random
/// periods, latencies that drift with time (see the twin generator in
/// `timeline_equivalence.rs`).
struct EvolvingMesh {
    n: usize,
    spine: Vec<(usize, usize, f64, f64)>,
    chords: Vec<(usize, usize, f64, f64, f64)>,
}

impl EvolvingMesh {
    fn random(rng: &mut SimRng) -> Self {
        let n = 4 + rng.index(12);
        let mut taken: Vec<(usize, usize)> = Vec::new();
        // Full spine: keeps most destinations reachable most of the time.
        let spine: Vec<(usize, usize, f64, f64)> = (0..n - 1)
            .map(|i| {
                taken.push((i, i + 1));
                (
                    i,
                    i + 1,
                    rng.uniform_range(1e-3, 1e-2),
                    rng.uniform_range(1e6, 1e7),
                )
            })
            .collect();
        let mut chords = Vec::new();
        for _ in 0..rng.index(n) {
            let u = rng.index(n);
            let v = rng.index(n);
            if u == v || taken.contains(&(u, v)) || taken.contains(&(v, u)) {
                continue;
            }
            taken.push((u, v));
            chords.push((
                u,
                v,
                rng.uniform_range(1e-3, 1e-2),
                rng.uniform_range(1e6, 1e7),
                rng.uniform_range(3.0, 40.0),
            ));
        }
        Self { n, spine, chords }
    }

    fn at(&self, t: f64) -> Graph {
        let mut g = Graph::new(self.n, 0);
        for &(u, v, lat, cap) in &self.spine {
            g.add_bidirectional(u, v, lat + t * 1e-7, cap, 0u32, 0u32, LinkTech::Rf);
        }
        for &(u, v, lat, cap, period) in &self.chords {
            if (t / period).floor() as i64 % 2 == 0 {
                g.add_bidirectional(u, v, lat + t * 1e-7, cap, 0u32, 0u32, LinkTech::Optical);
            }
        }
        g
    }
}

fn random_flows(rng: &mut SimRng, n: usize) -> Vec<FlowSpec> {
    (0..1 + rng.index(4))
        .map(|_| {
            let src = rng.index(n);
            let dst = (src + 1 + rng.index(n - 1)) % n;
            FlowSpec::new(
                src,
                dst,
                rng.uniform_range(1e5, 3e6),
                1_500,
                if rng.uniform() < 0.5 {
                    TrafficKind::Poisson
                } else {
                    TrafficKind::Cbr
                },
            )
        })
        .collect()
}

fn assert_reports_bitwise(a: &NetSimReport, b: &NetSimReport, ctx: &str) {
    assert_eq!(a, b, "{ctx}: reports differ");
    assert_eq!(
        a.delivery_ratio.to_bits(),
        b.delivery_ratio.to_bits(),
        "{ctx}: delivery_ratio bits"
    );
    assert_eq!(
        a.mean_latency_s.to_bits(),
        b.mean_latency_s.to_bits(),
        "{ctx}: mean_latency_s bits"
    );
    assert_eq!(
        a.p95_latency_s.to_bits(),
        b.p95_latency_s.to_bits(),
        "{ctx}: p95_latency_s bits"
    );
    assert_eq!(
        a.max_link_utilization.to_bits(),
        b.max_link_utilization.to_bits(),
        "{ctx}: max_link_utilization bits"
    );
}

#[test]
fn delta_resnapshot_run_is_bitwise_identical_to_full_rebuild() {
    for case in 0..CASES {
        let mut rng = SimRng::substream(0xDE17A, case);
        let mesh = EvolvingMesh::random(&mut rng);
        let flows = random_flows(&mut rng, mesh.n);
        let step = rng.uniform_range(0.5, 4.0);
        let duration = step * (2 + rng.index(10)) as f64;
        let routing = if case % 2 == 0 {
            RoutingMode::Proactive
        } else {
            RoutingMode::Adaptive {
                replan_interval_s: rng.uniform_range(0.5, 3.0),
            }
        };
        let cfg = NetSimConfig {
            duration_s: duration,
            queue_capacity_bytes: 128 * 1024,
            routing,
            seed: case,
            ..Default::default()
        };
        let provider = |t: f64| mesh.at(t);
        let rebuilt = NetSim::new(cfg)
            .with_provider(&provider, step)
            .run(&flows)
            .expect("valid provider run");
        let tl = TopologyTimeline::build(&provider, 0.0, step, duration, 4)
            .expect("valid timeline build");
        let replayed = NetSim::new(cfg)
            .with_timeline(&tl)
            .run(&flows)
            .expect("valid timeline run");
        assert_reports_bitwise(&rebuilt, &replayed, &format!("case {case} ({routing:?})"));
    }
}

#[test]
fn delta_resnapshot_run_with_faults_is_bitwise_identical_to_full_rebuild() {
    for case in 0..24 {
        let mut rng = SimRng::substream(0xDE17B, case);
        let mesh = EvolvingMesh::random(&mut rng);
        let flows = random_flows(&mut rng, mesh.n);
        let duration = 12.0;
        // A random node outage plus a random link flap inside the run.
        let victim = rng.index(mesh.n);
        let (lu, lv, ..) = mesh.spine[rng.index(mesh.spine.len())];
        let plan = FaultPlan::builder()
            .seed(case)
            .sat_outage(victim, rng.uniform_range(1.0, 5.0), 4.0)
            .link_flap(lu, lv, rng.uniform_range(1.0, 6.0), 1.5, 1.5, 2)
            .build()
            .expect("valid fault plan");
        let events = plan
            .compile(&FaultTopology::homogeneous(mesh.n, 0, OperatorId(0)))
            .expect("plan fits topology");
        let cfg = NetSimConfig {
            duration_s: duration,
            queue_capacity_bytes: 128 * 1024,
            routing: RoutingMode::Proactive,
            seed: case,
            ..Default::default()
        };
        let provider = |t: f64| mesh.at(t);
        let rebuilt = NetSim::new(cfg)
            .with_provider(&provider, 1.0)
            .with_faults(&events)
            .run(&flows)
            .expect("valid provider run");
        let tl = TopologyTimeline::build(&provider, 0.0, 1.0, duration, 2).expect("valid timeline");
        let replayed = NetSim::new(cfg)
            .with_timeline(&tl)
            .with_faults(&events)
            .run(&flows)
            .expect("valid timeline run");
        assert_reports_bitwise(&rebuilt, &replayed, &format!("faulted case {case}"));
    }
}

#[test]
fn timeline_runs_on_a_real_federation_match_the_rebuild_path() {
    use openspace_core::prelude::*;
    use openspace_phy::hardware::SatelliteClass;

    let fed = iridium_federation(3, &[SatelliteClass::SmallSat], &default_station_sites());
    let g0 = fed.snapshot(0.0);
    let flows = [
        FlowSpec::new(
            g0.sat_node(10),
            g0.station_node(0),
            2.0e6,
            1_500,
            TrafficKind::Poisson,
        ),
        FlowSpec::new(
            g0.sat_node(40),
            g0.station_node(2),
            1.0e6,
            1_500,
            TrafficKind::Cbr,
        ),
    ];
    let tl = fed.timeline(30.0, 120.0, 4).expect("valid horizon");
    for routing in [
        RoutingMode::Proactive,
        RoutingMode::Adaptive {
            replan_interval_s: 5.0,
        },
    ] {
        let cfg = NetSimConfig {
            duration_s: 120.0,
            queue_capacity_bytes: 512 * 1024,
            routing,
            seed: 17,
            ..Default::default()
        };
        let rebuilt = NetSim::new(cfg)
            .with_provider(&fed, 30.0)
            .run(&flows)
            .expect("valid provider run");
        let replayed = NetSim::new(cfg)
            .with_timeline(&tl)
            .run(&flows)
            .expect("valid timeline run");
        assert_reports_bitwise(&rebuilt, &replayed, &format!("iridium {routing:?}"));
    }
}
