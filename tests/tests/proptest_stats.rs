//! Randomized property tests of the statistics collectors: merge
//! associativity at the bit level, quantile monotonicity in the query
//! point, and time-weighted mean bounds.
//!
//! Cases are drawn from a seeded [`SimRng`] stream (see
//! `proptest_orbit.rs` for the scheme) — deterministic, dependency-free
//! property testing.

use openspace_sim::prelude::*;
use openspace_sim::stats::TimeWeighted;

const CASES: u64 = 256;

fn for_cases(seed: u64, mut f: impl FnMut(&mut SimRng)) {
    for case in 0..CASES {
        let mut rng = SimRng::substream(seed, case);
        f(&mut rng);
    }
}

fn filled(samples: &[f64]) -> Summary {
    let mut s = Summary::new();
    for &x in samples {
        s.add(x);
    }
    s
}

#[test]
fn merge_is_associative_at_the_bit_level() {
    for_cases(0xC1, |rng| {
        let draw = |rng: &mut SimRng, n: usize| -> Vec<f64> {
            (0..n).map(|_| rng.uniform_range(-1e6, 1e6)).collect()
        };
        let (nx, ny, nz) = (rng.index(100), rng.index(100), 1 + rng.index(99));
        let xs = draw(rng, nx);
        let ys = draw(rng, ny);
        let zs = draw(rng, nz);

        // (x ⊕ y) ⊕ z
        let mut left = filled(&xs);
        left.merge(&filled(&ys));
        left.merge(&filled(&zs));
        // x ⊕ (y ⊕ z)
        let mut tail = filled(&ys);
        tail.merge(&filled(&zs));
        let mut right = filled(&xs);
        right.merge(&tail);
        // serial replay of the concatenation
        let all: Vec<f64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        let mut serial = filled(&all);

        assert_eq!(left.count(), serial.count());
        assert_eq!(left.mean().to_bits(), right.mean().to_bits());
        assert_eq!(left.mean().to_bits(), serial.mean().to_bits());
        assert_eq!(left.std_dev().to_bits(), right.std_dev().to_bits());
        assert_eq!(left.std_dev().to_bits(), serial.std_dev().to_bits());
        assert_eq!(left.median().to_bits(), right.median().to_bits());
        assert_eq!(left.median().to_bits(), serial.median().to_bits());
    });
}

#[test]
fn quantile_is_monotone_in_the_query_point() {
    for_cases(0xC2, |rng| {
        let n = 1 + rng.index(299);
        let mut s = Summary::new();
        for _ in 0..n {
            s.add(rng.uniform_range(-1e9, 1e9));
        }
        // A random ascending ladder of query points must give a
        // non-decreasing ladder of answers, all within [min, max].
        let mut qs: Vec<f64> = (0..8).map(|_| rng.uniform()).collect();
        qs.sort_unstable_by(f64::total_cmp);
        let mut last = f64::NEG_INFINITY;
        for &q in &qs {
            let v = s.quantile(q);
            assert!(v >= last, "quantile({q}) = {v} fell below {last}");
            assert!(v >= s.min() && v <= s.max());
            last = v;
        }
    });
}

#[test]
fn quantile_answers_are_stable_across_cache_rebuilds() {
    for_cases(0xC3, |rng| {
        let n = 2 + rng.index(98);
        let samples: Vec<f64> = (0..n).map(|_| rng.uniform_range(-1e3, 1e3)).collect();
        let q = rng.uniform();
        let mut s = filled(&samples);
        let first = s.quantile(q);
        // Re-querying a settled summary (cache hit) and re-building the
        // summary from scratch (fresh sort) must agree bitwise.
        assert_eq!(s.quantile(q).to_bits(), first.to_bits());
        let mut rebuilt = filled(&samples);
        assert_eq!(rebuilt.quantile(q).to_bits(), first.to_bits());
    });
}

#[test]
fn time_weighted_mean_is_bounded_by_the_signal_range() {
    for_cases(0xC4, |rng| {
        let t0 = rng.uniform_range(0.0, 100.0);
        let v0 = rng.uniform_range(-50.0, 50.0);
        let mut tw = TimeWeighted::new(t0, v0);
        let mut lo = v0;
        let mut hi = v0;
        let mut t = t0;
        for _ in 0..rng.index(50) {
            t += rng.uniform_range(0.0, 10.0);
            let v = rng.uniform_range(-50.0, 50.0);
            tw.update(t, v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let horizon = t + rng.uniform_range(0.0, 10.0);
        let mean = tw.mean_until(horizon);
        assert!(
            mean >= lo - 1e-9 && mean <= hi + 1e-9,
            "mean {mean} outside [{lo}, {hi}]"
        );
    });
}

#[test]
fn time_weighted_constant_signal_means_itself() {
    for_cases(0xC5, |rng| {
        let t0 = rng.uniform_range(0.0, 100.0);
        let v = rng.uniform_range(-1e6, 1e6);
        let tw = TimeWeighted::new(t0, v);
        let horizon = t0 + rng.uniform_range(0.0, 1e3);
        assert!((tw.mean_until(horizon) - v).abs() <= v.abs() * 1e-12 + 1e-12);
    });
}
