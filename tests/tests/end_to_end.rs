//! End-to-end integration: the full OpenSpace flow across every crate —
//! association (protocol + net + orbit), delivery (net + phy + economics),
//! handover (protocol), and the wire encoding in between.

use openspace_core::prelude::*;
use openspace_net::routing::QosRequirement;
use openspace_orbit::frames::{geodetic_to_ecef, Geodetic};
use openspace_phy::hardware::SatelliteClass;
use openspace_protocol::prelude::*;
use std::collections::BTreeMap;

fn test_federation() -> Federation {
    iridium_federation(
        4,
        &[SatelliteClass::CubeSat, SatelliteClass::SmallSat],
        &default_station_sites(),
    )
}

#[test]
fn full_user_journey() {
    let mut fed = test_federation();
    let home = fed.operator_ids()[0];
    let user = fed.register_user(home).expect("member operator");
    let pos = geodetic_to_ecef(Geodetic::from_degrees(-1.3, 36.8, 1_700.0));

    // 1. Associate.
    let assoc = associate(&mut fed, &user, pos, 0.0, 1).expect("association");
    let fed_secret = *fed.federation_secret(home).expect("member operator");
    assert!(assoc.certificate.verify(&fed_secret, 10));

    // 2. Deliver data.
    let graph = fed.snapshot(0.0);
    let mut ledgers = BTreeMap::new();
    let delivery = deliver(
        &fed,
        &graph,
        &user,
        pos,
        0.0,
        1,
        1 << 20,
        &QosRequirement::best_effort(),
        &mut ledgers,
    )
    .expect("delivery");
    assert!(delivery.latency_s < 0.15, "latency {}", delivery.latency_s);

    // 3. Hand over with the session token.
    let successor = fed
        .satellites()
        .iter()
        .find(|s| s.id != assoc.serving)
        .unwrap()
        .id;
    let h = execute_handover(
        &fed,
        &user,
        &assoc.certificate,
        assoc.serving,
        successor,
        pos,
        60.0,
    )
    .expect("member operator");
    assert!(h.accepted);
    assert!(h.interruption_s < assoc.association_latency_s);
}

#[test]
fn every_station_site_reaches_the_internet() {
    // From any of the six default sites, a user can associate and deliver.
    let mut fed = test_federation();
    let home = fed.operator_ids()[1];
    for (i, site) in default_station_sites().into_iter().enumerate() {
        let user = fed.register_user(home).expect("member operator");
        let pos = geodetic_to_ecef(site);
        let assoc = associate(&mut fed, &user, pos, 0.0, 1000 + i as u64);
        assert!(assoc.is_ok(), "site {i}: {assoc:?}");
    }
}

#[test]
fn beacon_frames_survive_the_wire_end_to_end() {
    // Every satellite's beacon encodes, decodes, and reconstructs a
    // propagator whose position matches the original.
    let fed = test_federation();
    for sat in fed.satellites().iter().take(12) {
        let el = sat.propagator.elements();
        let beacon = Beacon {
            satellite: sat.id,
            operator: sat.owner,
            capabilities: sat.capabilities(),
            timestamp_ms: 0,
            semi_major_axis_m: el.semi_major_axis_m,
            eccentricity: el.eccentricity,
            inclination_rad: el.inclination_rad,
            raan_rad: el.raan_rad,
            arg_perigee_rad: el.arg_perigee_rad,
            mean_anomaly_rad: el.mean_anomaly_rad,
        };
        let frame = Frame {
            sender: sat.id.0,
            message: Message::Beacon(beacon.clone()),
        };
        let decoded = Frame::decode(&frame.encode()).expect("valid frame");
        let Message::Beacon(b) = decoded.message else {
            panic!("wrong message type");
        };
        assert_eq!(b, beacon);
        // Reconstruct orbital elements from the beacon and check position.
        let el2 = openspace_orbit::kepler::OrbitalElements::new(
            b.semi_major_axis_m,
            b.eccentricity,
            b.inclination_rad,
            b.raan_rad,
            b.arg_perigee_rad,
            b.mean_anomaly_rad,
        )
        .expect("beacon carries valid elements");
        let p2 = openspace_orbit::propagator::Propagator::new(
            el2,
            openspace_orbit::propagator::PerturbationModel::SecularJ2,
        );
        let d = sat
            .propagator
            .position_eci(500.0)
            .distance(p2.position_eci(500.0));
        assert!(d < 1.0, "reconstructed orbit diverges by {d} m");
    }
}

#[test]
fn pairing_flow_over_wire_frames() {
    // Two satellites run the §2.1 pairing handshake through encoded
    // frames and the initiator state machine.
    let fed = test_federation();
    let a = &fed.satellites()[0]; // cubesat (RF only)
    let b = &fed.satellites()[1]; // smallsat (RF + optical)

    let request = PairRequest {
        requester: a.id,
        target: b.id,
        capabilities: a.capabilities(),
        laser_azimuth_rad: 0.0,
        laser_elevation_rad: 0.0,
        available_bandwidth_fraction: 0.9,
    };
    let wire = Frame {
        sender: a.id.0,
        message: Message::PairRequest(request.clone()),
    }
    .encode();
    let decoded = Frame::decode(&wire).unwrap();
    let Message::PairRequest(req) = decoded.message else {
        panic!("wrong type");
    };

    // Responder decides.
    let verdict = decide_pair(&req, b.capabilities(), 0.8, true, 25.0);
    // Cubesat has no lasers → RF.
    assert_eq!(
        verdict,
        PairVerdict::Accept {
            technology: LinkTechnology::Rf,
            orient_time_s: 0.0
        }
    );
    let response = PairResponse {
        responder: b.id,
        requester: a.id,
        verdict,
    };
    let wire = Frame {
        sender: b.id.0,
        message: Message::PairResponse(response.clone()),
    }
    .encode();
    let decoded = Frame::decode(&wire).unwrap();
    let Message::PairResponse(resp) = decoded.message else {
        panic!("wrong type");
    };

    let mut machine = PairingMachine::new();
    machine.request_sent(0.0, 5.0);
    machine.response_received(&resp, 0.5);
    assert_eq!(
        machine.state(),
        PairingState::Established {
            technology: LinkTechnology::Rf
        }
    );
}

#[test]
fn optical_pairing_between_smallsats() {
    let fed = test_federation();
    let smallsats: Vec<_> = fed
        .satellites()
        .iter()
        .filter(|s| s.has_optical())
        .take(2)
        .collect();
    let request = PairRequest {
        requester: smallsats[0].id,
        target: smallsats[1].id,
        capabilities: smallsats[0].capabilities(),
        laser_azimuth_rad: 0.1,
        laser_elevation_rad: 0.2,
        available_bandwidth_fraction: 0.8,
    };
    let verdict = decide_pair(&request, smallsats[1].capabilities(), 0.8, true, 30.0);
    assert!(matches!(
        verdict,
        PairVerdict::Accept {
            technology: LinkTechnology::Optical,
            ..
        }
    ));
}

#[test]
fn cross_operator_auth_via_isl_path_has_hops() {
    // A user whose home operator's stations are far away authenticates
    // over a multi-hop ISL path.
    let mut fed = test_federation();
    let home = fed.operator_ids()[3];
    let user = fed.register_user(home).expect("member operator");
    // Mid-Pacific user: far from most stations.
    let pos = geodetic_to_ecef(Geodetic::from_degrees(-5.0, -150.0, 0.0));
    let assoc = associate(&mut fed, &user, pos, 0.0, 1).expect("association");
    assert!(
        assoc.auth_path_hops >= 2,
        "mid-Pacific auth should take ISL hops, got {}",
        assoc.auth_path_hops
    );
}

#[test]
fn deterministic_end_to_end() {
    // The same simulation twice gives identical results.
    let run = || {
        let mut fed = test_federation();
        let home = fed.operator_ids()[0];
        let user = fed.register_user(home).expect("member operator");
        let pos = geodetic_to_ecef(Geodetic::from_degrees(10.0, 10.0, 0.0));
        let graph = fed.snapshot(100.0);
        let mut ledgers = BTreeMap::new();
        let d = deliver(
            &fed,
            &graph,
            &user,
            pos,
            100.0,
            7,
            999,
            &QosRequirement::best_effort(),
            &mut ledgers,
        )
        .unwrap();
        (d.path.nodes.clone(), d.latency_s)
    };
    assert_eq!(run(), run());
}
