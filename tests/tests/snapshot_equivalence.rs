//! Property test pinning the range-gated snapshot builder's contract:
//! [`build_snapshot_from_samples_recorded`] (the grid-bucketed fast
//! path behind [`build_snapshot_from_samples`]) produces a graph equal
//! to the exhaustive reference [`build_snapshot_from_samples_dense`] —
//! down to the bit patterns of every edge's latency and capacity.
//!
//! The correctness argument (see `crates/net/src/isl.rs` module docs)
//! is that any in-range pair must land in the same or an adjacent grid
//! cell, and that sorting candidates by `(distance, peer index)`
//! reproduces the dense sweep's stable-sort order exactly. These cases
//! exercise both the grid path and its fallbacks over seeded random
//! constellations, snapshot times, ISL ranges (including the infinite
//! range used by the simplified study, which must fall back to the
//! exhaustive sweep), terminal counts, LOS settings, elevation masks
//! (including negative), and station sets.

use openspace_net::prelude::*;
use openspace_orbit::ephemeris::EphemerisSample;
use openspace_orbit::frames::{eci_to_ecef, geodetic_to_ecef, Geodetic};
use openspace_orbit::propagator::{PerturbationModel, Propagator};
use openspace_orbit::walker::random_constellation;
use openspace_sim::prelude::SimRng;
use openspace_telemetry::MemoryRecorder;

const CASES: u64 = 144;

fn assert_graphs_bitwise_equal(a: &Graph, b: &Graph, case: u64) {
    assert_eq!(a, b, "case {case}: graphs differ structurally");
    // PartialEq on f64 ignores sign-of-zero and would accept -0.0 ==
    // 0.0; pin the actual bits too.
    assert_eq!(a.node_count(), b.node_count());
    for u in 0..a.node_count() {
        for (ea, eb) in a.edges(u).iter().zip(b.edges(u)) {
            assert_eq!(ea.to, eb.to, "case {case}: edge target at node {u}");
            assert_eq!(
                ea.latency_s.to_bits(),
                eb.latency_s.to_bits(),
                "case {case}: latency bits on {u}->{:?}",
                ea.to
            );
            assert_eq!(
                ea.capacity_bps.to_bits(),
                eb.capacity_bps.to_bits(),
                "case {case}: capacity bits on {u}->{:?}",
                ea.to
            );
        }
    }
}

#[test]
fn gated_build_is_equal_to_quadratic_build() {
    let mut grid_runs = 0u64;
    let mut total_pruned = 0u64;
    for case in 0..CASES {
        let mut rng = SimRng::substream(0x5A_905407, case);
        let n = 2 + rng.index(60);
        let altitude_m = rng.uniform_range(400_000.0, 1_400_000.0);
        let els = random_constellation(n, altitude_m, rng.uniform_range(40.0, 98.0), case).unwrap();
        let sats: Vec<SatNode> = els
            .into_iter()
            .enumerate()
            .map(|(i, el)| SatNode {
                propagator: Propagator::new(
                    el,
                    if rng.chance(0.5) {
                        PerturbationModel::SecularJ2
                    } else {
                        PerturbationModel::TwoBody
                    },
                ),
                operator: (i % 3) as u32,
                has_optical: rng.chance(0.4),
            })
            .collect();
        let t_s = rng.uniform_range(0.0, 86_400.0);
        let samples: Vec<EphemerisSample> = sats
            .iter()
            .map(|s| {
                let eci = s.propagator.position_eci(t_s);
                EphemerisSample {
                    eci,
                    ecef: eci_to_ecef(eci, t_s),
                }
            })
            .collect();
        let n_stations = rng.index(4);
        let stations: Vec<GroundNode> = (0..n_stations)
            .map(|k| GroundNode {
                position_ecef: geodetic_to_ecef(Geodetic::from_degrees(
                    rng.uniform_range(-75.0, 75.0),
                    rng.uniform_range(-180.0, 180.0),
                    0.0,
                )),
                operator: 10 + k as u32,
            })
            .collect();
        let params = SnapshotParams {
            max_isl_range_m: if rng.chance(0.15) {
                f64::INFINITY
            } else {
                rng.uniform_range(1_000_000.0, 8_000_000.0)
            },
            require_los: rng.chance(0.7),
            max_isl_per_sat: 1 + rng.index(6),
            min_elevation_rad: rng.uniform_range(-5.0, 45.0).to_radians(),
            ..SnapshotParams::default()
        };
        let mut rec = MemoryRecorder::new();
        let gated =
            build_snapshot_from_samples_recorded(&sats, &samples, &stations, &params, &mut rec);
        let dense = build_snapshot_from_samples_dense(&sats, &samples, &stations, &params);
        assert_graphs_bitwise_equal(&gated, &dense, case);
        let tested = rec.counter("snapshot.pairs_tested");
        let pruned = rec.counter("snapshot.pairs_pruned");
        assert_eq!(
            tested + pruned,
            (n as u64) * (n as u64 - 1) / 2,
            "case {case}: pair accounting"
        );
        if params.max_isl_range_m.is_finite() {
            grid_runs += 1;
            total_pruned += pruned;
        } else {
            assert_eq!(pruned, 0, "case {case}: infinite range must not prune");
        }
    }
    // The grid path must have engaged and actually cut work somewhere.
    assert!(grid_runs > CASES / 2, "grid path rarely exercised");
    assert!(total_pruned > 0, "grid never pruned a single pair");
}

#[test]
fn plain_build_is_the_gated_builder() {
    // The public entry points delegate to the gated path; pin one
    // end-to-end case against the dense reference through them.
    let els = random_constellation(40, 550_000.0, 53.0, 7).unwrap();
    let sats: Vec<SatNode> = els
        .into_iter()
        .map(|el| SatNode {
            propagator: Propagator::new(el, PerturbationModel::SecularJ2),
            operator: 0,
            has_optical: true,
        })
        .collect();
    let stations = [GroundNode {
        position_ecef: geodetic_to_ecef(Geodetic::from_degrees(40.0, -3.0, 0.0)),
        operator: 9,
    }];
    let params = SnapshotParams::default();
    let samples: Vec<EphemerisSample> = sats
        .iter()
        .map(|s| {
            let eci = s.propagator.position_eci(900.0);
            EphemerisSample {
                eci,
                ecef: eci_to_ecef(eci, 900.0),
            }
        })
        .collect();
    let via_plain = build_snapshot(900.0, &sats, &stations, &params);
    let dense = build_snapshot_from_samples_dense(&sats, &samples, &stations, &params);
    assert_graphs_bitwise_equal(&via_plain, &dense, 0);
}
