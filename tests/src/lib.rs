//! Integration-test crate; see the `tests/` directory beside this file.
