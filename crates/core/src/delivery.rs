//! End-to-end packet delivery across the federation, with §3 accounting.
//!
//! A delivery runs: user → access satellite → (ISL hops, possibly across
//! several operators) → ground station → Internet. Every hop whose
//! carrier differs from the user's home operator generates a signed
//! accounting record; both the carrier's and the origin's ledgers are
//! fed, which is what makes the §3 cross-verification meaningful.

use crate::federation::{Federation, User};
use openspace_economics::ledger::TrafficLedger;
use openspace_net::isl::best_access_satellite;
use openspace_net::routing::{latency_weight, qos_route, shortest_path, Path, QosRequirement};
use openspace_net::topology::{Graph, NodeKind};
use openspace_orbit::constants::SPEED_OF_LIGHT_M_PER_S;
use openspace_orbit::frames::Vec3;
use openspace_protocol::accounting::AccountingRecord;
use openspace_protocol::crypto::SharedSecret;
use openspace_protocol::types::{OperatorId, SatelliteId};
use std::collections::BTreeMap;

/// Why a delivery failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryError {
    /// No satellite above the user.
    NoAccessSatellite,
    /// No route from the access satellite to any ground station meeting
    /// the QoS requirement.
    NoRoute,
}

impl std::fmt::Display for DeliveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoAccessSatellite => write!(f, "no access satellite in view"),
            Self::NoRoute => write!(f, "no compliant route to a ground station"),
        }
    }
}

impl std::error::Error for DeliveryError {}

/// The result of delivering one flow segment.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// Access satellite.
    pub access_satellite: SatelliteId,
    /// Space-segment path (node indices in the snapshot graph).
    pub path: Path,
    /// End-to-end one-way latency (s): user uplink + space path.
    pub latency_s: f64,
    /// Ground station node the flow exited at.
    pub exit_station_node: openspace_net::topology::NodeId,
    /// Operators that carried at least one hop.
    pub carriers: Vec<OperatorId>,
    /// Signed per-hop accounting records.
    pub records: Vec<AccountingRecord>,
}

/// Deliver `bytes` of flow `flow_id` from `user` at `user_ecef` to the
/// best-reachable ground station at `t_s`, under `qos`.
///
/// `ledgers` (one per operator) are updated: the carrier of every hop
/// logs its own record, and the user's home operator logs its
/// route-knowledge view of the same hops.
#[allow(clippy::too_many_arguments)]
pub fn deliver(
    fed: &Federation,
    graph: &Graph,
    user: &User,
    user_ecef: Vec3,
    t_s: f64,
    flow_id: u64,
    bytes: u64,
    qos: &QosRequirement,
    ledgers: &mut BTreeMap<OperatorId, TrafficLedger>,
) -> Result<Delivery, DeliveryError> {
    let sat_nodes = fed.sat_nodes();
    let (sat_idx, slant_m) = best_access_satellite(
        user_ecef,
        &sat_nodes,
        t_s,
        fed.snapshot_params.min_elevation_rad,
    )
    .ok_or(DeliveryError::NoAccessSatellite)?;
    let access = fed.satellites()[sat_idx];

    // Best compliant route to any station (QoS-aware; falls back over all
    // stations by total cost).
    let mut best: Option<Path> = None;
    for gi in 0..fed.stations().len() {
        let dst = graph.station_node(gi);
        let candidate = if qos.min_bandwidth_bps > 0.0 || qos.max_latency_s.is_finite() {
            qos_route(graph, graph.sat_node(sat_idx), dst, qos, 12_000.0)
        } else {
            shortest_path(graph, graph.sat_node(sat_idx), dst, latency_weight)
        };
        if let Some(p) = candidate {
            if best.as_ref().is_none_or(|b| p.total_cost < b.total_cost) {
                best = Some(p);
            }
        }
    }
    let path = best.ok_or(DeliveryError::NoRoute)?;
    let Some(&exit_station_node) = path.nodes.last() else {
        return Err(DeliveryError::NoRoute);
    };
    debug_assert!(matches!(
        graph.node_kind(exit_station_node),
        NodeKind::GroundStation(_)
    ));

    // Latency: user uplink leg + propagation along the path.
    // A just-computed path sums cleanly; a vanished edge yields infinity
    // (visibly broken) rather than a panic.
    let latency_s = slant_m / SPEED_OF_LIGHT_M_PER_S
        + path
            .sum_metric(graph, |e| e.latency_s)
            .unwrap_or(f64::INFINITY);

    // Accounting: one record per hop, keyed to the transmitting node's
    // operator.
    let interval_ms = (t_s * 1000.0) as u64;
    let mut carriers: Vec<OperatorId> = Vec::new();
    let mut records = Vec::new();
    for w in path.nodes.windows(2) {
        // The path was just computed on this graph; a vanished edge can
        // only mean the graph changed underneath us — skip its billing
        // rather than abort the delivered flow.
        let Some(edge) = graph.find_edge(w[0], w[1]) else {
            continue;
        };
        let carrier = edge.operator;
        let carrier_node = match graph.node_kind(w[0]) {
            NodeKind::Satellite(si) => fed.satellites()[si.index()].id,
            // Ground-originated hop: bill under a pseudo node id derived
            // from the station index (stations don't have SatelliteIds).
            NodeKind::GroundStation(gi) => SatelliteId(1_000_000 + gi.index() as u64),
        };
        let carrier_secret = carrier_ledger_secret(carrier);
        let rec = AccountingRecord::create(
            flow_id,
            user.home,
            carrier,
            carrier_node,
            bytes,
            interval_ms,
            interval_ms + 1,
            &carrier_secret,
        );
        // Carrier logs its own signed record.
        ledgers.entry(carrier).or_default().record(&rec);
        // The origin operator, with full route visibility (§3), logs its
        // independent view of the same hop.
        ledgers
            .entry(user.home)
            .or_default()
            .record_raw(openspace_economics::ledger::BillingKey::of(&rec), bytes);
        if !carriers.contains(&carrier) {
            carriers.push(carrier);
        }
        records.push(rec);
    }

    Ok(Delivery {
        access_satellite: access.id,
        path,
        latency_s,
        exit_station_node,
        carriers,
        records,
    })
}

/// The secret an operator signs accounting records with. Derived
/// deterministically, like the other simulation credentials.
pub fn carrier_ledger_secret(op: OperatorId) -> SharedSecret {
    SharedSecret::derive(op.0 as u64, "openspace-accounting")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::federation::{default_station_sites, iridium_federation};
    use openspace_economics::ledger::reconcile;
    use openspace_orbit::frames::{geodetic_to_ecef, Geodetic};
    use openspace_phy::hardware::SatelliteClass;

    fn setup() -> (Federation, User, Vec3) {
        let mut fed = iridium_federation(4, &[SatelliteClass::SmallSat], &default_station_sites());
        let home = fed.operator_ids()[0];
        let user = fed.register_user(home).expect("member operator");
        let pos = geodetic_to_ecef(Geodetic::from_degrees(-1.3, 36.8, 1_700.0)); // Nairobi
        (fed, user, pos)
    }

    #[test]
    fn delivery_succeeds_with_sane_latency() {
        let (fed, user, pos) = setup();
        let graph = fed.snapshot(0.0);
        let mut ledgers = BTreeMap::new();
        let d = deliver(
            &fed,
            &graph,
            &user,
            pos,
            0.0,
            1,
            1_000_000,
            &QosRequirement::best_effort(),
            &mut ledgers,
        )
        .expect("delivery");
        assert!(
            d.latency_s > 0.002 && d.latency_s < 0.2,
            "latency {}",
            d.latency_s
        );
        assert!(d.path.hops() >= 1);
    }

    #[test]
    fn accounting_covers_every_hop() {
        let (fed, user, pos) = setup();
        let graph = fed.snapshot(0.0);
        let mut ledgers = BTreeMap::new();
        let d = deliver(
            &fed,
            &graph,
            &user,
            pos,
            0.0,
            1,
            500,
            &QosRequirement::best_effort(),
            &mut ledgers,
        )
        .unwrap();
        assert_eq!(d.records.len(), d.path.hops());
        for r in &d.records {
            assert!(r.verify(&carrier_ledger_secret(r.carrier_operator)));
            assert_eq!(r.origin_operator, user.home);
        }
    }

    #[test]
    fn origin_and_carrier_ledgers_reconcile() {
        let (fed, user, pos) = setup();
        let graph = fed.snapshot(0.0);
        let mut ledgers = BTreeMap::new();
        let d = deliver(
            &fed,
            &graph,
            &user,
            pos,
            0.0,
            9,
            12_345,
            &QosRequirement::best_effort(),
            &mut ledgers,
        )
        .unwrap();
        // Every foreign carrier's ledger must agree with the home ledger.
        for &carrier in &d.carriers {
            if carrier == user.home {
                continue;
            }
            let r = reconcile(
                ledgers.get(&user.home).unwrap(),
                ledgers.get(&carrier).unwrap(),
                user.home,
                carrier,
            );
            assert!(r.is_clean(), "dispute with {carrier}: {:?}", r.disputes);
            assert!(r.agreed > 0);
        }
    }

    #[test]
    fn multi_operator_paths_involve_foreign_carriers() {
        // Round-robin ownership on Iridium means almost any multi-hop path
        // crosses operators — the "roaming is rampant" premise.
        let (fed, user, pos) = setup();
        let graph = fed.snapshot(0.0);
        let mut ledgers = BTreeMap::new();
        let d = deliver(
            &fed,
            &graph,
            &user,
            pos,
            0.0,
            2,
            100,
            &QosRequirement::best_effort(),
            &mut ledgers,
        )
        .unwrap();
        if d.path.hops() >= 3 {
            assert!(
                d.carriers.len() >= 2,
                "a {}-hop path on round-robin Iridium should cross operators",
                d.path.hops()
            );
        }
    }

    #[test]
    fn impossible_qos_yields_no_route() {
        let (fed, user, pos) = setup();
        let graph = fed.snapshot(0.0);
        let mut ledgers = BTreeMap::new();
        let err = deliver(
            &fed,
            &graph,
            &user,
            pos,
            0.0,
            3,
            100,
            &QosRequirement {
                min_bandwidth_bps: 1e15,
                max_latency_s: f64::INFINITY,
            },
            &mut ledgers,
        )
        .unwrap_err();
        assert_eq!(err, DeliveryError::NoRoute);
    }

    #[test]
    fn no_constellation_no_access() {
        let mut fed = Federation::new();
        let op = fed.add_operator("x");
        let user = fed.register_user(op).expect("member operator");
        let graph = fed.snapshot(0.0);
        let mut ledgers = BTreeMap::new();
        let err = deliver(
            &fed,
            &graph,
            &user,
            geodetic_to_ecef(Geodetic::from_degrees(0.0, 0.0, 0.0)),
            0.0,
            1,
            1,
            &QosRequirement::best_effort(),
            &mut ledgers,
        )
        .unwrap_err();
        assert_eq!(err, DeliveryError::NoAccessSatellite);
    }
}
