//! Bridging the demand layer onto the federation and the simulator.
//!
//! `openspace-demand` knows *where users are and what they offer*;
//! this module knows *which infrastructure serves them*. It attaches
//! each populated cell of a [`PopulationGrid`] to its covering access
//! satellite (and that satellite's operator) plus the nearest gateway
//! station, turns demand-model ticks into [`FlowSpec`] batches whose
//! node indices live on a concrete topology snapshot, registers one
//! representative subscriber per covered cell with the covering
//! operator, and converts demand-weighted traffic into per-operator
//! [`TrafficLedger`]s for settlement — the full path from "a million
//! users wake up" to "operator B invoices operator A".

use crate::federation::{Federation, FederationError, User};
use crate::netsim::{FlowSpec, TrafficKind};
use openspace_demand::grid::PopulationGrid;
use openspace_demand::mix::{AppClass, ArrivalKind};
use openspace_demand::model::DemandTick;
use openspace_economics::ledger::{BillingKey, TrafficLedger};
use openspace_net::isl::{best_access_from_ecef, GroundNode, SatNode};
use openspace_net::topology::Graph;
use openspace_orbit::frames::{eci_to_ecef, geodetic_to_ecef, Geodetic, Vec3};
use openspace_protocol::types::OperatorId;
use openspace_telemetry::Recorder;
use std::collections::BTreeMap;

/// One populated cell attached to serving infrastructure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellAttachment {
    /// Cell index in the population grid.
    pub cell: usize,
    /// Users in the cell.
    pub users: u64,
    /// Access satellite (index into the `sats` slice the attachment
    /// was computed against — equal to the graph's satellite index
    /// when the snapshot is built from the same slice).
    pub access_sat: usize,
    /// Operator owning the access satellite: the cell's home ISP.
    pub operator: OperatorId,
    /// Gateway station (index into the `stations` slice).
    pub gateway: usize,
    /// Operator owning the gateway station.
    pub gateway_operator: OperatorId,
    /// Slant range to the access satellite (m).
    pub slant_range_m: f64,
}

/// The demand-weighted coverage picture at one instant.
#[derive(Debug, Clone, Default)]
pub struct CellCoverage {
    /// Attachments for covered cells, ascending by cell index.
    pub attachments: Vec<CellAttachment>,
    /// Users in covered cells.
    pub covered_users: u64,
    /// Users in populated cells no satellite serves.
    pub uncovered_users: u64,
    /// Populated cells no satellite serves.
    pub uncovered_cells: u64,
}

impl CellCoverage {
    /// The attachment for `cell`, if it is covered (binary search —
    /// attachments are cell-ascending).
    pub fn attachment_for(&self, cell: usize) -> Option<&CellAttachment> {
        self.attachments
            .binary_search_by_key(&cell, |a| a.cell)
            .ok()
            .map(|i| &self.attachments[i])
    }

    /// Demand-weighted coverage: fraction of users in covered cells.
    pub fn covered_fraction(&self) -> f64 {
        let total = self.covered_users + self.uncovered_users;
        if total == 0 {
            return 0.0;
        }
        self.covered_users as f64 / total as f64
    }

    /// Users per home operator, ascending by operator id.
    pub fn users_by_operator(&self) -> BTreeMap<OperatorId, u64> {
        let mut out = BTreeMap::new();
        for a in &self.attachments {
            *out.entry(a.operator).or_insert(0) += a.users;
        }
        out
    }
}

/// Attach every populated cell of `grid` to the best visible access
/// satellite among `sats` at `t_s` (elevation-gated) and the nearest
/// station among `stations`. Cells with no visible satellite, or when
/// `stations` is empty, count as uncovered. Deterministic: ties on
/// slant range and station distance resolve to the lowest index.
pub fn attach_cells(
    grid: &PopulationGrid,
    sats: &[SatNode],
    stations: &[GroundNode],
    t_s: f64,
    min_elevation_rad: f64,
) -> CellCoverage {
    // Satellite positions once, not per cell.
    let sat_ecefs: Vec<Vec3> = sats
        .iter()
        .map(|s| eci_to_ecef(s.propagator.position_eci(t_s), t_s))
        .collect();
    let mut cov = CellCoverage::default();
    for (cell, users) in grid.populated_cells() {
        let (lat, lon) = grid.cell_center_deg(cell);
        let pos = geodetic_to_ecef(Geodetic::from_degrees(lat, lon, 0.0));
        let access = if stations.is_empty() {
            None
        } else {
            best_access_from_ecef(pos, &sat_ecefs, min_elevation_rad)
        };
        match access {
            Some((sat, slant)) => {
                let gateway = nearest_station(pos, stations);
                cov.attachments.push(CellAttachment {
                    cell,
                    users,
                    access_sat: sat,
                    operator: OperatorId(sats[sat].operator),
                    gateway,
                    gateway_operator: OperatorId(stations[gateway].operator),
                    slant_range_m: slant,
                });
                cov.covered_users += users;
            }
            None => {
                cov.uncovered_users += users;
                cov.uncovered_cells += 1;
            }
        }
    }
    cov
}

fn nearest_station(pos: Vec3, stations: &[GroundNode]) -> usize {
    let mut best = 0usize;
    let mut best_d2 = f64::INFINITY;
    for (i, s) in stations.iter().enumerate() {
        let d = [
            s.position_ecef.x - pos.x,
            s.position_ecef.y - pos.y,
            s.position_ecef.z - pos.z,
        ];
        let d2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
        if d2 < best_d2 {
            best_d2 = d2;
            best = i;
        }
    }
    best
}

/// Statistics from mapping one demand tick onto a topology.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BridgeStats {
    /// Flows mapped onto graph nodes.
    pub flows_mapped: u64,
    /// Flows dropped because their cell is uncovered.
    pub flows_unserved: u64,
    /// Offered bits/s carried by unserved flows (unscaled).
    pub unserved_bps: f64,
}

/// Map one [`DemandTick`]'s flows onto `graph` using `coverage`:
/// each flow injects at its cell's access satellite and exits at the
/// cell's gateway station. `graph` must be built from the same
/// satellite/station slices the coverage was attached against (same
/// index space). Flows of uncovered cells are counted, not silently
/// dropped.
pub fn demand_flows_for(
    coverage: &CellCoverage,
    tick: &DemandTick,
    graph: &Graph,
) -> (Vec<FlowSpec>, BridgeStats) {
    let mut flows = Vec::with_capacity(tick.flows.len());
    let mut stats = BridgeStats::default();
    for f in &tick.flows {
        let Some(att) = coverage.attachment_for(f.cell) else {
            stats.flows_unserved += 1;
            stats.unserved_bps += f.offered_bps;
            continue;
        };
        let kind = match f.process {
            ArrivalKind::Cbr => TrafficKind::Cbr,
            ArrivalKind::Poisson => TrafficKind::Poisson,
            ArrivalKind::OnOff {
                mean_on_s,
                mean_off_s,
            } => TrafficKind::OnOff {
                mean_on_s,
                mean_off_s,
            },
        };
        flows.push(FlowSpec::new(
            graph.sat_node(att.access_sat),
            graph.station_node(att.gateway),
            f.rate_bps,
            f.packet_bytes,
            kind,
        ));
        stats.flows_mapped += 1;
    }
    (flows, stats)
}

/// Stable ledger flow id for a `(cell, class)` pair.
fn ledger_flow_id(cell: usize, class: AppClass) -> u64 {
    let class_idx = AppClass::ALL
        .iter()
        .position(|&c| c == class)
        .expect("class is in ALL") as u64;
    (cell as u64) * AppClass::ALL.len() as u64 + class_idx
}

/// Convert demand ticks into per-operator traffic ledgers: each
/// covered flow bills `offered_bps · step_s / 8` bytes for the
/// interval starting at the tick's time, with the cell's home
/// operator as origin and the gateway's owner as carrier. Both sides
/// log every cross-operator item (so the pair reconciles cleanly);
/// same-operator traffic is recorded in the owner's ledger only and
/// never settles. Returns one ledger per operator appearing on either
/// side, plus the intra-operator byte total.
pub fn demand_ledgers(
    coverage: &CellCoverage,
    ticks: &[DemandTick],
    step_s: f64,
) -> (BTreeMap<OperatorId, TrafficLedger>, u64) {
    let mut ledgers: BTreeMap<OperatorId, TrafficLedger> = BTreeMap::new();
    let mut intra_bytes = 0u64;
    for tick in ticks {
        let interval_ms = (tick.t_s * 1000.0) as u64;
        for f in &tick.flows {
            let Some(att) = coverage.attachment_for(f.cell) else {
                continue;
            };
            let bytes = (f.offered_bps * step_s / 8.0) as u64;
            if bytes == 0 {
                continue;
            }
            let key = BillingKey::new(
                ledger_flow_id(f.cell, f.class),
                att.operator,
                att.gateway_operator,
                interval_ms,
            );
            if att.operator == att.gateway_operator {
                intra_bytes += bytes;
                ledgers
                    .entry(att.operator)
                    .or_default()
                    .record_raw(key, bytes);
            } else {
                // Origin logs from its route knowledge, carrier from its
                // gateway counters: identical here by construction,
                // which is exactly what reconciliation should find.
                ledgers
                    .entry(att.operator)
                    .or_default()
                    .record_raw(key, bytes);
                ledgers
                    .entry(att.gateway_operator)
                    .or_default()
                    .record_raw(key, bytes);
            }
        }
    }
    (ledgers, intra_bytes)
}

impl Federation {
    /// [`attach_cells`] against this federation's full fleet and
    /// ground segment at `t_s`, using the snapshot parameters'
    /// elevation mask — index-compatible with
    /// [`Federation::snapshot`].
    pub fn attach_demand_cells(&self, grid: &PopulationGrid, t_s: f64) -> CellCoverage {
        attach_cells(
            grid,
            &self.sat_nodes(),
            &self.ground_nodes(),
            t_s,
            self.snapshot_params.min_elevation_rad,
        )
    }

    /// [`attach_cells`] against a single member's solo fleet and
    /// stations (no collaboration) — index-compatible with
    /// [`Federation::solo_snapshot`].
    pub fn attach_demand_cells_solo(
        &self,
        op: OperatorId,
        grid: &PopulationGrid,
        t_s: f64,
    ) -> CellCoverage {
        attach_cells(
            grid,
            &self.sat_nodes_of(op),
            &self.ground_nodes_of(op),
            t_s,
            self.snapshot_params.min_elevation_rad,
        )
    }

    /// Register one representative subscriber per covered cell with
    /// the cell's covering operator (per-cell AAA state without
    /// deriving a million individual secrets). Returns the users in
    /// attachment (cell-ascending) order. Fails if a covering
    /// operator is not a member — attachments must come from this
    /// federation.
    pub fn register_cell_users(
        &mut self,
        coverage: &CellCoverage,
    ) -> Result<Vec<User>, FederationError> {
        let mut users = Vec::with_capacity(coverage.attachments.len());
        for att in &coverage.attachments {
            users.push(self.register_user(att.operator)?);
        }
        Ok(users)
    }
}

/// Record a coverage picture into telemetry: `demand.cells_covered` /
/// `demand.cells_uncovered` counters and the demand-weighted
/// `demand.covered_fraction` gauge.
pub fn record_coverage(coverage: &CellCoverage, rec: &mut dyn Recorder) {
    rec.add("demand.cells_covered", coverage.attachments.len() as u64);
    rec.add("demand.cells_uncovered", coverage.uncovered_cells);
    rec.gauge("demand.covered_fraction", coverage.covered_fraction());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::federation::{default_station_sites, iridium_federation};
    use openspace_demand::grid::PopulationConfig;
    use openspace_demand::mix::AppMix;
    use openspace_demand::model::{DemandConfig, DemandModel};
    use openspace_phy::hardware::SatelliteClass;

    fn small_grid() -> PopulationGrid {
        PopulationGrid::build(&PopulationConfig {
            lat_cells: 12,
            lon_cells: 24,
            total_users: 40_000,
            cities: 16,
            ..Default::default()
        })
        .unwrap()
    }

    fn test_federation(members: usize) -> Federation {
        iridium_federation(
            members,
            &[SatelliteClass::SmallSat],
            &default_station_sites(),
        )
    }

    #[test]
    fn full_fleet_covers_most_demand() {
        let fed = test_federation(4);
        let cov = fed.attach_demand_cells(&small_grid(), 0.0);
        assert!(
            cov.covered_fraction() > 0.5,
            "covered {}",
            cov.covered_fraction()
        );
        // Attachments are cell-ascending (binary-search invariant).
        for w in cov.attachments.windows(2) {
            assert!(w[0].cell < w[1].cell);
        }
    }

    #[test]
    fn solo_fleet_covers_less_than_the_federation() {
        let fed = test_federation(4);
        let grid = small_grid();
        let full = fed.attach_demand_cells(&grid, 0.0);
        let op = fed.operator_ids()[0];
        let solo = fed.attach_demand_cells_solo(op, &grid, 0.0);
        assert!(
            solo.covered_fraction() < full.covered_fraction(),
            "solo {} vs full {}",
            solo.covered_fraction(),
            full.covered_fraction()
        );
    }

    #[test]
    fn attachment_is_deterministic() {
        let fed = test_federation(4);
        let grid = small_grid();
        let a = fed.attach_demand_cells(&grid, 120.0);
        let b = fed.attach_demand_cells(&grid, 120.0);
        assert_eq!(a.attachments, b.attachments);
        assert_eq!(a.covered_users, b.covered_users);
    }

    #[test]
    fn demand_flows_map_onto_snapshot_nodes() {
        let fed = test_federation(4);
        let grid = small_grid();
        let cov = fed.attach_demand_cells(&grid, 0.0);
        let model = DemandModel::new(grid, AppMix::broadband(), DemandConfig::default()).unwrap();
        let tick = model.flows_at(12.0 * 3600.0);
        let graph = fed.snapshot(0.0);
        let (flows, stats) = demand_flows_for(&cov, &tick, &graph);
        assert!(!flows.is_empty());
        assert_eq!(stats.flows_mapped as usize, flows.len());
        assert_eq!(
            stats.flows_mapped + stats.flows_unserved,
            tick.flows.len() as u64
        );
        let n = graph.node_count();
        for f in &flows {
            assert!(f.src.0 < n && f.dst.0 < n);
            assert!(f.src != f.dst);
        }
    }

    #[test]
    fn cell_users_register_with_their_covering_operator() {
        let mut fed = test_federation(4);
        let cov = fed.attach_demand_cells(&small_grid(), 0.0);
        let users = fed.register_cell_users(&cov).unwrap();
        assert_eq!(users.len(), cov.attachments.len());
        for (u, att) in users.iter().zip(&cov.attachments) {
            assert_eq!(u.home, att.operator);
        }
        let by_op = cov.users_by_operator();
        assert_eq!(
            by_op.values().sum::<u64>(),
            cov.covered_users,
            "per-operator split must conserve users"
        );
    }

    #[test]
    fn demand_ledgers_cross_verify_and_settle() {
        use openspace_economics::settlement::{PriceBook, SettlementMatrix};
        let fed = test_federation(4);
        let grid = small_grid();
        let cov = fed.attach_demand_cells(&grid, 0.0);
        let model = DemandModel::new(grid, AppMix::broadband(), DemandConfig::default()).unwrap();
        let ticks = model.demand_timeline(21600.0, 86400.0 - 1.0, 2).unwrap();
        let (ledgers, _intra) = demand_ledgers(&cov, &ticks, 21600.0);
        assert!(!ledgers.is_empty());
        // Cross-operator items were logged by both sides: origin and
        // carrier agree on every pairwise byte count (the §3
        // cross-verification property).
        let ids = fed.operator_ids();
        let mut cross_bytes = 0u64;
        for &a in &ids {
            for &b in &ids {
                if a == b {
                    continue;
                }
                let origin_view = ledgers.get(&a).map_or(0, |l| l.bytes_carried(a, b));
                let carrier_view = ledgers.get(&b).map_or(0, |l| l.bytes_carried(a, b));
                assert_eq!(origin_view, carrier_view, "{a:?}->{b:?}");
                cross_bytes += origin_view;
            }
        }
        assert!(cross_bytes > 0, "expected cross-operator demand traffic");
        let m = SettlementMatrix::from_ledgers(&ledgers, &PriceBook::new(2.0));
        let net_sum: f64 = ids.iter().map(|&op| m.net_position(op)).sum();
        assert!(net_sum.abs() < 1e-6, "settlement must be zero-sum");
    }

    #[test]
    fn uncovered_cells_are_counted_not_dropped() {
        let fed = test_federation(1);
        let grid = small_grid();
        let op = fed.operator_ids()[0];
        let solo = fed.attach_demand_cells_solo(op, &grid, 0.0);
        let model = DemandModel::new(grid, AppMix::broadband(), DemandConfig::default()).unwrap();
        let tick = model.flows_at(12.0 * 3600.0);
        let graph = fed.solo_snapshot(op, 0.0);
        let (_, stats) = demand_flows_for(&solo, &tick, &graph);
        assert_eq!(
            stats.flows_mapped + stats.flows_unserved,
            tick.flows.len() as u64
        );
    }
}
