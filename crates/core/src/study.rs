//! The §4 simulation study: the machinery behind Figure 2.
//!
//! Methodology, quoting the paper: "We run a simplified simulation,
//! fixing the user and ground station coordinates and randomly
//! distributing satellites['] orbital paths. We then compute the shortest
//! path between the satellite that picks up the user's signal, and the
//! satellite that will relay that signal to the ground station, and use
//! this path length to estimate latency. To get a realistic coverage
//! estimate, we assume that if there is any overlap between a pair of
//! satellite ranges, their effective coverage will be reduced to that of
//! a single satellite."

use openspace_net::isl::{best_access_satellite, build_snapshot, SatNode, SnapshotParams};
use openspace_net::routing::{latency_weight, shortest_path};
use openspace_orbit::constants::{km_to_m, SPEED_OF_LIGHT_M_PER_S};
use openspace_orbit::coverage::{
    disjoint_packing_coverage_fraction, grid_coverage_fraction, worst_case_coverage_fraction,
    SphereGrid,
};
use openspace_orbit::frames::{geodetic_to_ecef, Geodetic, Vec3};
use openspace_orbit::propagator::{PerturbationModel, Propagator};
use openspace_orbit::visibility::max_isl_range_m;
use openspace_orbit::walker::random_constellation;

/// Fidelity level of the latency sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StudyModel {
    /// The paper's §4 "simplified simulation": the *nearest* satellite
    /// picks up the user's signal regardless of range (coverage
    /// feasibility is the separate Figure 2(c) analysis), and the ISL
    /// graph is purely distance-based with no Earth-occlusion check or
    /// range cap. With few satellites the nearest pickup is thousands of
    /// kilometres down-range and the inter-satellite leg spans a large
    /// arc — which is exactly what makes Figure 2(b) fall dramatically
    /// until ~25 satellites and then plateau near 30 ms.
    #[default]
    PaperSimplified,
    /// Physical model: pickup requires elevation above
    /// `min_elevation_rad`, ISLs require line of sight; samples without
    /// coverage count as unreachable. Reported alongside the paper model
    /// in EXPERIMENTS.md.
    Physical,
}

/// Configuration of the Figure 2 sweeps.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Fixed user site (paper: fixed coordinates).
    pub user: Geodetic,
    /// Fixed ground-station site.
    pub station: Geodetic,
    /// Constellation altitude (m).
    pub altitude_m: f64,
    /// Constellation inclination (degrees).
    pub inclination_deg: f64,
    /// Fidelity level for the latency sweep (see [`StudyModel`]).
    pub model: StudyModel,
    /// Elevation mask for user/station access (rad) under
    /// [`StudyModel::Physical`]. The paper's geometric "range" notion
    /// corresponds to the horizon (0).
    pub min_elevation_rad: f64,
    /// Number of random constellation draws averaged per point.
    pub trials: u64,
    /// Time samples per trial. Satellites *orbit*: a constellation that
    /// misses the user at one instant covers it minutes later, which is
    /// why the paper speaks of "a satellite \[that\] will orbit in range".
    /// Reachability is the fraction of (trial, epoch) samples connected.
    pub epochs_per_trial: usize,
    /// Spacing between time samples (s).
    pub epoch_spacing_s: f64,
    /// Base RNG seed; trial `k` uses `seed + k`.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        Self {
            // A remote-connectivity scenario: user in Nairobi, gateway in
            // Bavaria — the inter-continental relay the paper's remote-user
            // discussion implies.
            user: Geodetic::from_degrees(-1.3, 36.8, 1_700.0),
            station: Geodetic::from_degrees(48.0, 11.0, 500.0),
            altitude_m: km_to_m(780.0),
            inclination_deg: 86.4,
            model: StudyModel::PaperSimplified,
            min_elevation_rad: 0.0,
            trials: 10,
            epochs_per_trial: 8,
            epoch_spacing_s: 900.0,
            seed: 1,
        }
    }
}

/// One point of the Figure 2(b) latency curve.
#[derive(Debug, Clone, Copy)]
pub struct LatencyPoint {
    /// Constellation size.
    pub n_satellites: usize,
    /// Fraction of (trial, epoch) samples in which user and station both
    /// had a satellite in range *and* a connected ISL path existed — a
    /// service-availability measure.
    pub reachability: f64,
    /// Mean end-to-end propagation latency over reachable trials (ms);
    /// NaN-free: `None` when nothing was reachable.
    pub mean_latency_ms: Option<f64>,
    /// Mean ISL hop count over reachable trials.
    pub mean_hops: Option<f64>,
}

/// Topology parameters per fidelity level.
fn study_snapshot_params(cfg: &StudyConfig) -> SnapshotParams {
    match cfg.model {
        // The paper's simplified graph: purely distance-based ISLs with
        // no range cap and no occlusion check — a complete geometric
        // graph, in which the shortest path between pickup and relay
        // satellite is their straight-line separation. With few
        // satellites the pickup sits thousands of kilometres down-range
        // from the user and the inter-satellite leg spans a large arc, so
        // latency starts high; as the constellation grows both effects
        // shrink toward the geometric floor — the Figure 2(b)
        // drop-then-plateau, with every sample connected ("a minimum of
        // about four satellites guarantees a satellite in range").
        StudyModel::PaperSimplified => SnapshotParams {
            max_isl_range_m: f64::INFINITY,
            max_isl_per_sat: usize::MAX,
            require_los: false,
            min_elevation_rad: cfg.min_elevation_rad,
            ..SnapshotParams::default()
        },
        // Physical: line-of-sight ISLs to any visible neighbour.
        StudyModel::Physical => SnapshotParams {
            max_isl_range_m: max_isl_range_m(cfg.altitude_m, cfg.altitude_m, 80_000.0),
            max_isl_per_sat: usize::MAX,
            min_elevation_rad: cfg.min_elevation_rad,
            ..SnapshotParams::default()
        },
    }
}

fn constellation(cfg: &StudyConfig, n: usize, trial: u64) -> Vec<SatNode> {
    random_constellation(n, cfg.altitude_m, cfg.inclination_deg, cfg.seed + trial)
        .expect("valid constellation parameters")
        .into_iter()
        .map(|el| SatNode {
            propagator: Propagator::new(el, PerturbationModel::TwoBody),
            operator: 0,
            has_optical: false,
        })
        .collect()
}

/// Figure 2(b): propagation latency vs constellation size.
///
/// For each trial: place `n` satellites on random orbits, find the
/// satellite picking up the user and the satellite over the ground
/// station, compute the shortest ISL path between them, and charge the
/// geometric path length at the speed of light (plus both access legs).
pub fn latency_vs_satellites(cfg: &StudyConfig, sizes: &[usize]) -> Vec<LatencyPoint> {
    let user_ecef = geodetic_to_ecef(cfg.user);
    let station_ecef = geodetic_to_ecef(cfg.station);
    let params = study_snapshot_params(cfg);

    sizes
        .iter()
        .map(|&n| {
            let mut samples = 0u64;
            let mut reachable = 0u64;
            let mut latency_sum = 0.0;
            let mut hops_sum = 0usize;
            for trial in 0..cfg.trials {
                let sats = constellation(cfg, n, trial);
                for epoch in 0..cfg.epochs_per_trial.max(1) {
                    let t = epoch as f64 * cfg.epoch_spacing_s;
                    samples += 1;
                    if let Some((lat_s, hops)) =
                        one_sample_latency(&sats, user_ecef, station_ecef, &params, cfg, t)
                    {
                        reachable += 1;
                        latency_sum += lat_s;
                        hops_sum += hops;
                    }
                }
            }
            LatencyPoint {
                n_satellites: n,
                reachability: reachable as f64 / samples as f64,
                mean_latency_ms: (reachable > 0)
                    .then(|| latency_sum / reachable as f64 * 1_000.0),
                mean_hops: (reachable > 0).then(|| hops_sum as f64 / reachable as f64),
            }
        })
        .collect()
}

/// Nearest satellite to an ECEF point by straight-line distance, with no
/// visibility requirement — the paper's simplified pickup.
fn nearest_any_range(ground_ecef: Vec3, sats: &[SatNode], t: f64) -> Option<(usize, f64)> {
    sats.iter()
        .enumerate()
        .map(|(i, s)| {
            let sat_ecef =
                openspace_orbit::frames::eci_to_ecef(s.propagator.position_eci(t), t);
            (i, ground_ecef.distance(sat_ecef))
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
}

fn one_sample_latency(
    sats: &[SatNode],
    user_ecef: Vec3,
    station_ecef: Vec3,
    params: &SnapshotParams,
    cfg: &StudyConfig,
    t: f64,
) -> Option<(f64, usize)> {
    let pick = |ground: Vec3| match cfg.model {
        StudyModel::PaperSimplified => nearest_any_range(ground, sats, t),
        StudyModel::Physical => best_access_satellite(ground, sats, t, cfg.min_elevation_rad),
    };
    let (user_sat, user_slant) = pick(user_ecef)?;
    let (gs_sat, gs_slant) = pick(station_ecef)?;
    let graph = build_snapshot(t, sats, &[], params);
    let path = shortest_path(&graph, user_sat, gs_sat, latency_weight)?;
    let latency =
        (user_slant + gs_slant) / SPEED_OF_LIGHT_M_PER_S + path.total_cost;
    Some((latency, path.hops()))
}

/// One point of the Figure 2(c) coverage curve.
#[derive(Debug, Clone, Copy)]
pub struct CoveragePoint {
    /// Constellation size.
    pub n_satellites: usize,
    /// The paper's worst-case (pairwise-overlap) estimate, mean over trials.
    pub worst_case: f64,
    /// Honest grid-union coverage, mean over trials.
    pub grid: f64,
    /// Disjoint-packing lower bound, mean over trials.
    pub packing: f64,
}

/// Figure 2(c): Earth coverage vs constellation size, under the paper's
/// worst-case overlap model (plus the honest and lower-bound estimators
/// for context). Coverage is evaluated at the horizon (0° mask), as in
/// the paper's geometric "satellite range" notion.
pub fn coverage_vs_satellites(cfg: &StudyConfig, sizes: &[usize]) -> Vec<CoveragePoint> {
    let grid = SphereGrid::new(2_000);
    sizes
        .iter()
        .map(|&n| {
            let mut wc = 0.0;
            let mut gr = 0.0;
            let mut pk = 0.0;
            for trial in 0..cfg.trials {
                let sats: Vec<Propagator> = constellation(cfg, n, trial)
                    .into_iter()
                    .map(|s| s.propagator)
                    .collect();
                wc += worst_case_coverage_fraction(&sats, 0.0, 0.0);
                gr += grid_coverage_fraction(&grid, &sats, 0.0, 0.0);
                pk += disjoint_packing_coverage_fraction(&sats, 0.0, 0.0);
            }
            let t = cfg.trials as f64;
            CoveragePoint {
                n_satellites: n,
                worst_case: wc / t,
                grid: gr / t,
                packing: pk / t,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> StudyConfig {
        StudyConfig {
            trials: 4,
            epochs_per_trial: 4,
            ..Default::default()
        }
    }

    #[test]
    fn latency_drops_then_plateaus() {
        let cfg = quick_cfg();
        let pts = latency_vs_satellites(&cfg, &[8, 25, 60, 100]);
        // Under the paper's simplified model every sample connects.
        for p in &pts {
            assert_eq!(p.reachability, 1.0, "n={}", p.n_satellites);
        }
        let l8 = pts[0].mean_latency_ms.unwrap();
        let l60 = pts[2].mean_latency_ms.unwrap();
        let l100 = pts[3].mean_latency_ms.unwrap();
        assert!(l60 < l8, "latency should fall: {l8} -> {l60}");
        // Plateau: 60 → 100 changes little.
        assert!((l60 - l100).abs() / l60 < 0.35, "plateau: {l60} vs {l100}");
    }

    #[test]
    fn plateau_latency_is_tens_of_ms() {
        // The paper reports ~30 ms. Our geometry (Nairobi→Bavaria) should
        // land in the same band.
        let cfg = quick_cfg();
        let pts = latency_vs_satellites(&cfg, &[80]);
        let l = pts[0].mean_latency_ms.expect("80 sats must connect");
        assert!((15.0..60.0).contains(&l), "plateau latency {l} ms");
    }

    #[test]
    fn tiny_constellations_often_unreachable_physically() {
        // Under the physical model (elevation-masked pickup, line-of-
        // sight ISLs), two satellites rarely serve both endpoints.
        let cfg = StudyConfig {
            model: StudyModel::Physical,
            ..quick_cfg()
        };
        let pts = latency_vs_satellites(&cfg, &[2]);
        assert!(
            pts[0].reachability < 0.75,
            "2 satellites should rarely connect user and station: {}",
            pts[0].reachability
        );
    }

    #[test]
    fn coverage_curve_rises_to_total() {
        let cfg = quick_cfg();
        let pts = coverage_vs_satellites(&cfg, &[5, 20, 60]);
        assert!(pts[0].worst_case < pts[1].worst_case);
        assert!(pts[1].worst_case < pts[2].worst_case + 0.05);
        assert!(
            pts[2].worst_case > 0.95,
            "60 sats should reach ~total coverage, got {}",
            pts[2].worst_case
        );
    }

    #[test]
    fn packing_bound_is_lowest_estimator() {
        let cfg = quick_cfg();
        for p in coverage_vs_satellites(&cfg, &[15, 40]) {
            assert!(p.packing <= p.worst_case + 1e-9);
            assert!(p.packing <= p.grid + 0.05);
        }
    }

    #[test]
    fn study_is_deterministic() {
        let cfg = quick_cfg();
        let a = latency_vs_satellites(&cfg, &[20]);
        let b = latency_vs_satellites(&cfg, &[20]);
        assert_eq!(a[0].reachability, b[0].reachability);
        assert_eq!(a[0].mean_latency_ms, b[0].mean_latency_ms);
    }
}
