//! The §4 simulation study: the machinery behind Figure 2.
//!
//! Methodology, quoting the paper: "We run a simplified simulation,
//! fixing the user and ground station coordinates and randomly
//! distributing satellites['] orbital paths. We then compute the shortest
//! path between the satellite that picks up the user's signal, and the
//! satellite that will relay that signal to the ground station, and use
//! this path length to estimate latency. To get a realistic coverage
//! estimate, we assume that if there is any overlap between a pair of
//! satellite ranges, their effective coverage will be reduced to that of
//! a single satellite."
//!
//! ## The scenario harness
//!
//! [`ScenarioRunner`] is the shared execution engine behind the sweeps
//! (and behind the `exp_*` binaries in `openspace-bench`). It adds two
//! things over naive loops, neither of which changes a single output
//! bit:
//!
//! * **Ephemeris memoization.** `random_constellation(n, seed)` draws
//!   satellites sequentially, so for a fixed trial seed the size-`n`
//!   constellation is a *prefix* of every larger size point, and all
//!   size points sample the same epoch grid. The runner routes every
//!   propagation through an [`EphemerisCache`] keyed by exact element
//!   bits, so each distinct (satellite, epoch) is propagated once per
//!   sweep instead of once per size point.
//! * **Deterministic parallelism.** Size points are independent, so the
//!   runner fans them out over a `std::thread::scope` pool via
//!   [`parallel_map_seeded`], which hands task `i` the RNG substream
//!   `SimRng::substream(cfg.seed, i)` and collects results in task
//!   order. Worker count affects wall-clock only: a parallel sweep is
//!   bitwise-identical to a serial one.
//!
//! The free functions [`latency_vs_satellites`] /
//! [`coverage_vs_satellites`] remain as serial single-call conveniences
//! and delegate to a serial runner.
//!
//! The geometry kernels underneath inherit the range-gated fast paths
//! of `openspace-net` transparently: [`build_snapshot_from_samples`]
//! buckets satellites into a coarse grid when `max_isl_range_m` is
//! finite (the *Physical* study regime), and falls back to the
//! exhaustive pair sweep for the paper's simplified regime, which sets
//! the range to `f64::INFINITY`; [`best_access_from_ecef`] costs one
//! vector norm per candidate. Both are bitwise-identical to the dense
//! reference kernels (see `crates/net/src/isl.rs`), so study outputs
//! are unchanged to the last bit.

use openspace_net::isl::{
    best_access_from_ecef, build_snapshot_from_samples, SatNode, SnapshotParams,
};
use openspace_net::routing::{latency_weight, shortest_path};
use openspace_orbit::constants::{km_to_m, SPEED_OF_LIGHT_M_PER_S};
use openspace_orbit::coverage::{
    disjoint_packing_coverage_fraction_from_eci, grid_coverage_fraction_from_ecef,
    worst_case_coverage_fraction_from_eci, SphereGrid,
};
use openspace_orbit::ephemeris::{EphemerisCache, EphemerisSample};
use openspace_orbit::frames::{geodetic_to_ecef, Geodetic, Vec3};
use openspace_orbit::propagator::{PerturbationModel, Propagator};
use openspace_orbit::visibility::max_isl_range_m;
use openspace_orbit::walker::random_constellation;
use openspace_sim::config::{require_non_negative, require_positive, ConfigError};
use openspace_sim::exec::{default_threads, parallel_map_seeded};
use openspace_sim::rng::SimRng;

/// Fidelity level of the latency sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StudyModel {
    /// The paper's §4 "simplified simulation": the *nearest* satellite
    /// picks up the user's signal regardless of range (coverage
    /// feasibility is the separate Figure 2(c) analysis), and the ISL
    /// graph is purely distance-based with no Earth-occlusion check or
    /// range cap. With few satellites the nearest pickup is thousands of
    /// kilometres down-range and the inter-satellite leg spans a large
    /// arc — which is exactly what makes Figure 2(b) fall dramatically
    /// until ~25 satellites and then plateau near 30 ms.
    #[default]
    PaperSimplified,
    /// Physical model: pickup requires elevation above
    /// `min_elevation_rad`, ISLs require line of sight; samples without
    /// coverage count as unreachable. Reported alongside the paper model
    /// in EXPERIMENTS.md.
    Physical,
}

/// Configuration of the Figure 2 sweeps.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Fixed user site (paper: fixed coordinates).
    pub user: Geodetic,
    /// Fixed ground-station site.
    pub station: Geodetic,
    /// Constellation altitude (m).
    pub altitude_m: f64,
    /// Constellation inclination (degrees).
    pub inclination_deg: f64,
    /// Fidelity level for the latency sweep (see [`StudyModel`]).
    pub model: StudyModel,
    /// Elevation mask for user/station access (rad) under
    /// [`StudyModel::Physical`]. The paper's geometric "range" notion
    /// corresponds to the horizon (0).
    pub min_elevation_rad: f64,
    /// Number of random constellation draws averaged per point.
    pub trials: u64,
    /// Time samples per trial. Satellites *orbit*: a constellation that
    /// misses the user at one instant covers it minutes later, which is
    /// why the paper speaks of "a satellite \[that\] will orbit in range".
    /// Reachability is the fraction of (trial, epoch) samples connected.
    pub epochs_per_trial: usize,
    /// Spacing between time samples (s).
    pub epoch_spacing_s: f64,
    /// Base RNG seed; trial `k` uses `seed + k`. Doubles as the root
    /// seed from which the runner derives per-task substreams.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        Self {
            // A remote-connectivity scenario: user in Nairobi, gateway in
            // Bavaria — the inter-continental relay the paper's remote-user
            // discussion implies.
            user: Geodetic::from_degrees(-1.3, 36.8, 1_700.0),
            station: Geodetic::from_degrees(48.0, 11.0, 500.0),
            altitude_m: km_to_m(780.0),
            inclination_deg: 86.4,
            model: StudyModel::PaperSimplified,
            min_elevation_rad: 0.0,
            trials: 10,
            epochs_per_trial: 8,
            epoch_spacing_s: 900.0,
            seed: 1,
        }
    }
}

/// One point of the Figure 2(b) latency curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyPoint {
    /// Constellation size.
    pub n_satellites: usize,
    /// Fraction of (trial, epoch) samples in which user and station both
    /// had a satellite in range *and* a connected ISL path existed — a
    /// service-availability measure.
    pub reachability: f64,
    /// Mean end-to-end propagation latency over reachable trials (ms);
    /// NaN-free: `None` when nothing was reachable.
    pub mean_latency_ms: Option<f64>,
    /// Mean ISL hop count over reachable trials.
    pub mean_hops: Option<f64>,
}

/// One point of the Figure 2(c) coverage curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoveragePoint {
    /// Constellation size.
    pub n_satellites: usize,
    /// The paper's worst-case (pairwise-overlap) estimate, mean over trials.
    pub worst_case: f64,
    /// Honest grid-union coverage, mean over trials.
    pub grid: f64,
    /// Disjoint-packing lower bound, mean over trials.
    pub packing: f64,
}

/// Topology parameters per fidelity level.
pub fn study_snapshot_params(cfg: &StudyConfig) -> SnapshotParams {
    match cfg.model {
        // The paper's simplified graph: purely distance-based ISLs with
        // no range cap and no occlusion check — a complete geometric
        // graph, in which the shortest path between pickup and relay
        // satellite is their straight-line separation. With few
        // satellites the pickup sits thousands of kilometres down-range
        // from the user and the inter-satellite leg spans a large arc, so
        // latency starts high; as the constellation grows both effects
        // shrink toward the geometric floor — the Figure 2(b)
        // drop-then-plateau, with every sample connected ("a minimum of
        // about four satellites guarantees a satellite in range").
        StudyModel::PaperSimplified => SnapshotParams {
            max_isl_range_m: f64::INFINITY,
            max_isl_per_sat: usize::MAX,
            require_los: false,
            min_elevation_rad: cfg.min_elevation_rad,
            ..SnapshotParams::default()
        },
        // Physical: line-of-sight ISLs to any visible neighbour.
        StudyModel::Physical => SnapshotParams {
            max_isl_range_m: max_isl_range_m(cfg.altitude_m, cfg.altitude_m, 80_000.0),
            max_isl_per_sat: usize::MAX,
            min_elevation_rad: cfg.min_elevation_rad,
            ..SnapshotParams::default()
        },
    }
}

/// The trial's random constellation as topology nodes.
///
/// Note the seed is `cfg.seed + trial`, *independent of the size point*:
/// together with `random_constellation`'s sequential draws this makes
/// the size-`n` constellation a prefix of the size-`m > n` one, which is
/// what lets the ephemeris cache pay off across a sweep.
pub fn study_constellation(cfg: &StudyConfig, n: usize, trial: u64) -> Vec<SatNode> {
    // Invalid parameters (non-positive altitude) yield an empty
    // constellation — every sample then counts as unreachable instead of
    // aborting a sweep. [`ScenarioRunner::builder`] rejects such configs
    // up front.
    random_constellation(n, cfg.altitude_m, cfg.inclination_deg, cfg.seed + trial)
        .unwrap_or_default()
        .into_iter()
        .map(|el| SatNode {
            propagator: Propagator::new(el, PerturbationModel::TwoBody),
            operator: 0,
            has_optical: false,
        })
        .collect()
}

/// Nearest satellite to an ECEF point by straight-line distance, with no
/// visibility requirement — the paper's simplified pickup.
fn nearest_any_range(ground_ecef: Vec3, sat_ecef: &[Vec3]) -> Option<(usize, f64)> {
    sat_ecef
        .iter()
        .enumerate()
        .map(|(i, &se)| (i, ground_ecef.distance(se)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
}

/// The shared scenario harness: memoized ephemeris + deterministic
/// parallel sweep execution (see the module docs).
#[derive(Debug)]
pub struct ScenarioRunner {
    cfg: StudyConfig,
    threads: usize,
    cache: EphemerisCache,
}

/// Validating builder for [`ScenarioRunner`].
#[derive(Debug, Clone)]
pub struct ScenarioRunnerBuilder {
    cfg: StudyConfig,
    threads: usize,
}

impl ScenarioRunnerBuilder {
    /// Replace the whole sweep configuration.
    pub fn config(mut self, cfg: StudyConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Worker count (clamped to ≥ 1 at build).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// RNG seed override.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Trials per sweep point.
    pub fn trials(mut self, trials: u64) -> Self {
        self.cfg.trials = trials;
        self
    }

    /// Validate and produce the runner.
    pub fn build(self) -> Result<ScenarioRunner, ConfigError> {
        let cfg = &self.cfg;
        require_positive("altitude_m", cfg.altitude_m)?;
        require_positive("epoch_spacing_s", cfg.epoch_spacing_s)?;
        require_non_negative("min_elevation_rad", cfg.min_elevation_rad)?;
        if cfg.trials == 0 {
            return Err(ConfigError::NonPositive {
                field: "trials",
                value: 0.0,
            });
        }
        if cfg.epochs_per_trial == 0 {
            return Err(ConfigError::NonPositive {
                field: "epochs_per_trial",
                value: 0.0,
            });
        }
        Ok(ScenarioRunner::serial(self.cfg).with_threads(self.threads))
    }
}

impl ScenarioRunner {
    /// Start building a validated runner from the default config and a
    /// single worker.
    pub fn builder() -> ScenarioRunnerBuilder {
        ScenarioRunnerBuilder {
            cfg: StudyConfig::default(),
            threads: 1,
        }
    }

    /// A single-threaded runner — the reference semantics.
    pub fn serial(cfg: StudyConfig) -> Self {
        Self {
            cfg,
            threads: 1,
            cache: EphemerisCache::new(),
        }
    }

    /// A runner using all available cores (honours `OPENSPACE_THREADS`).
    pub fn parallel(cfg: StudyConfig) -> Self {
        Self::serial(cfg).with_threads(default_threads())
    }

    /// Override the worker count (clamped to ≥ 1). Worker count never
    /// changes results, only wall-clock time.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The sweep configuration.
    pub fn config(&self) -> &StudyConfig {
        &self.cfg
    }

    /// Worker count used for sweeps.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The ephemeris memo shared by all of this runner's sweeps (hit and
    /// miss counters included — useful for reporting cache efficacy).
    pub fn cache(&self) -> &EphemerisCache {
        &self.cache
    }

    /// The RNG substream the runner hands to sweep task `index` — also
    /// the stream `exp_*` binaries should use for any extra per-point
    /// randomness so their runs stay reproducible.
    pub fn task_rng(&self, index: u64) -> SimRng {
        SimRng::substream(self.cfg.seed, index)
    }

    /// Figure 2(b): propagation latency vs constellation size.
    ///
    /// For each trial: place `n` satellites on random orbits, find the
    /// satellite picking up the user and the satellite over the ground
    /// station, compute the shortest ISL path between them, and charge
    /// the geometric path length at the speed of light (plus both access
    /// legs). Size points run on the worker pool; output order and
    /// content match a serial run exactly.
    pub fn latency_vs_satellites(&self, sizes: &[usize]) -> Vec<LatencyPoint> {
        let user_ecef = geodetic_to_ecef(self.cfg.user);
        let station_ecef = geodetic_to_ecef(self.cfg.station);
        let params = study_snapshot_params(&self.cfg);
        parallel_map_seeded(sizes, self.threads, self.cfg.seed, |&n, _rng| {
            self.latency_point(n, user_ecef, station_ecef, &params)
        })
    }

    fn latency_point(
        &self,
        n: usize,
        user_ecef: Vec3,
        station_ecef: Vec3,
        params: &SnapshotParams,
    ) -> LatencyPoint {
        let cfg = &self.cfg;
        let mut samples_total = 0u64;
        let mut reachable = 0u64;
        let mut latency_sum = 0.0;
        let mut hops_sum = 0usize;
        for trial in 0..cfg.trials {
            let sats = study_constellation(cfg, n, trial);
            let props: Vec<Propagator> = sats.iter().map(|s| s.propagator).collect();
            for epoch in 0..cfg.epochs_per_trial.max(1) {
                let t = epoch as f64 * cfg.epoch_spacing_s;
                let eph = self.cache.samples(&props, t);
                samples_total += 1;
                if let Some((lat_s, hops)) =
                    self.one_sample_latency(&sats, &eph, user_ecef, station_ecef, params)
                {
                    reachable += 1;
                    latency_sum += lat_s;
                    hops_sum += hops;
                }
            }
        }
        LatencyPoint {
            n_satellites: n,
            reachability: reachable as f64 / samples_total as f64,
            mean_latency_ms: (reachable > 0).then(|| latency_sum / reachable as f64 * 1_000.0),
            mean_hops: (reachable > 0).then(|| hops_sum as f64 / reachable as f64),
        }
    }

    fn one_sample_latency(
        &self,
        sats: &[SatNode],
        eph: &[EphemerisSample],
        user_ecef: Vec3,
        station_ecef: Vec3,
        params: &SnapshotParams,
    ) -> Option<(f64, usize)> {
        let ecef: Vec<Vec3> = eph.iter().map(|s| s.ecef).collect();
        let pick = |ground: Vec3| match self.cfg.model {
            StudyModel::PaperSimplified => nearest_any_range(ground, &ecef),
            StudyModel::Physical => {
                best_access_from_ecef(ground, &ecef, self.cfg.min_elevation_rad)
            }
        };
        let (user_sat, user_slant) = pick(user_ecef)?;
        let (gs_sat, gs_slant) = pick(station_ecef)?;
        let graph = build_snapshot_from_samples(sats, eph, &[], params);
        let path = shortest_path(&graph, user_sat, gs_sat, latency_weight)?;
        let latency = (user_slant + gs_slant) / SPEED_OF_LIGHT_M_PER_S + path.total_cost;
        Some((latency, path.hops()))
    }

    /// Figure 2(c): Earth coverage vs constellation size, under the
    /// paper's worst-case overlap model (plus the honest and lower-bound
    /// estimators for context). Coverage is evaluated at the horizon
    /// (0° mask), as in the paper's geometric "satellite range" notion.
    pub fn coverage_vs_satellites(&self, sizes: &[usize]) -> Vec<CoveragePoint> {
        let grid = SphereGrid::new(2_000);
        parallel_map_seeded(sizes, self.threads, self.cfg.seed, |&n, _rng| {
            self.coverage_point(&grid, n)
        })
    }

    fn coverage_point(&self, grid: &SphereGrid, n: usize) -> CoveragePoint {
        let cfg = &self.cfg;
        let mut wc = 0.0;
        let mut gr = 0.0;
        let mut pk = 0.0;
        for trial in 0..cfg.trials {
            let props: Vec<Propagator> = study_constellation(cfg, n, trial)
                .into_iter()
                .map(|s| s.propagator)
                .collect();
            let eph = self.cache.samples(&props, 0.0);
            let eci: Vec<Vec3> = eph.iter().map(|s| s.eci).collect();
            let ecef: Vec<Vec3> = eph.iter().map(|s| s.ecef).collect();
            wc += worst_case_coverage_fraction_from_eci(&eci, 0.0);
            gr += grid_coverage_fraction_from_ecef(grid, &ecef, 0.0);
            pk += disjoint_packing_coverage_fraction_from_eci(&eci, 0.0);
        }
        let t = cfg.trials as f64;
        CoveragePoint {
            n_satellites: n,
            worst_case: wc / t,
            grid: gr / t,
            packing: pk / t,
        }
    }
}

/// Serial convenience wrapper over [`ScenarioRunner::latency_vs_satellites`].
pub fn latency_vs_satellites(cfg: &StudyConfig, sizes: &[usize]) -> Vec<LatencyPoint> {
    ScenarioRunner::serial(*cfg).latency_vs_satellites(sizes)
}

/// Serial convenience wrapper over [`ScenarioRunner::coverage_vs_satellites`].
pub fn coverage_vs_satellites(cfg: &StudyConfig, sizes: &[usize]) -> Vec<CoveragePoint> {
    ScenarioRunner::serial(*cfg).coverage_vs_satellites(sizes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> StudyConfig {
        StudyConfig {
            trials: 4,
            epochs_per_trial: 4,
            ..Default::default()
        }
    }

    #[test]
    fn latency_drops_then_plateaus() {
        let cfg = quick_cfg();
        let pts = latency_vs_satellites(&cfg, &[8, 25, 60, 100]);
        // Under the paper's simplified model every sample connects.
        for p in &pts {
            assert_eq!(p.reachability, 1.0, "n={}", p.n_satellites);
        }
        let l8 = pts[0].mean_latency_ms.unwrap();
        let l60 = pts[2].mean_latency_ms.unwrap();
        let l100 = pts[3].mean_latency_ms.unwrap();
        assert!(l60 < l8, "latency should fall: {l8} -> {l60}");
        // Plateau: 60 → 100 changes little.
        assert!((l60 - l100).abs() / l60 < 0.35, "plateau: {l60} vs {l100}");
    }

    #[test]
    fn plateau_latency_is_tens_of_ms() {
        // The paper reports ~30 ms. Our geometry (Nairobi→Bavaria) should
        // land in the same band.
        let cfg = quick_cfg();
        let pts = latency_vs_satellites(&cfg, &[80]);
        let l = pts[0].mean_latency_ms.expect("80 sats must connect");
        assert!((15.0..60.0).contains(&l), "plateau latency {l} ms");
    }

    #[test]
    fn tiny_constellations_often_unreachable_physically() {
        // Under the physical model (elevation-masked pickup, line-of-
        // sight ISLs), two satellites rarely serve both endpoints.
        let cfg = StudyConfig {
            model: StudyModel::Physical,
            ..quick_cfg()
        };
        let pts = latency_vs_satellites(&cfg, &[2]);
        assert!(
            pts[0].reachability < 0.75,
            "2 satellites should rarely connect user and station: {}",
            pts[0].reachability
        );
    }

    #[test]
    fn coverage_curve_rises_to_total() {
        let cfg = quick_cfg();
        let pts = coverage_vs_satellites(&cfg, &[5, 20, 60]);
        assert!(pts[0].worst_case < pts[1].worst_case);
        assert!(pts[1].worst_case < pts[2].worst_case + 0.05);
        assert!(
            pts[2].worst_case > 0.95,
            "60 sats should reach ~total coverage, got {}",
            pts[2].worst_case
        );
    }

    #[test]
    fn packing_bound_is_lowest_estimator() {
        let cfg = quick_cfg();
        for p in coverage_vs_satellites(&cfg, &[15, 40]) {
            assert!(p.packing <= p.worst_case + 1e-9);
            assert!(p.packing <= p.grid + 0.05);
        }
    }

    #[test]
    fn study_is_deterministic() {
        let cfg = quick_cfg();
        let a = latency_vs_satellites(&cfg, &[20]);
        let b = latency_vs_satellites(&cfg, &[20]);
        assert_eq!(a[0].reachability, b[0].reachability);
        assert_eq!(a[0].mean_latency_ms, b[0].mean_latency_ms);
    }

    /// Bitwise field-level equality for the determinism assertions.
    fn assert_points_bitwise_eq(a: &[LatencyPoint], b: &[LatencyPoint]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.n_satellites, y.n_satellites);
            assert_eq!(x.reachability.to_bits(), y.reachability.to_bits());
            assert_eq!(
                x.mean_latency_ms.map(f64::to_bits),
                y.mean_latency_ms.map(f64::to_bits)
            );
            assert_eq!(x.mean_hops.map(f64::to_bits), y.mean_hops.map(f64::to_bits));
        }
    }

    #[test]
    fn parallel_sweep_is_bitwise_identical_to_serial() {
        let cfg = quick_cfg();
        let sizes = [4, 8, 16, 25, 40];
        let serial = ScenarioRunner::serial(cfg).latency_vs_satellites(&sizes);
        for threads in [2, 3, 8] {
            let par = ScenarioRunner::serial(cfg)
                .with_threads(threads)
                .latency_vs_satellites(&sizes);
            assert_points_bitwise_eq(&serial, &par);
        }
        // And the runner output matches the legacy free function.
        assert_points_bitwise_eq(&serial, &latency_vs_satellites(&cfg, &sizes));
    }

    #[test]
    fn parallel_coverage_matches_serial() {
        let cfg = quick_cfg();
        let sizes = [5, 15, 30];
        let serial = ScenarioRunner::serial(cfg).coverage_vs_satellites(&sizes);
        let par = ScenarioRunner::serial(cfg)
            .with_threads(4)
            .coverage_vs_satellites(&sizes);
        for (x, y) in serial.iter().zip(&par) {
            assert_eq!(x.n_satellites, y.n_satellites);
            assert_eq!(x.worst_case.to_bits(), y.worst_case.to_bits());
            assert_eq!(x.grid.to_bits(), y.grid.to_bits());
            assert_eq!(x.packing.to_bits(), y.packing.to_bits());
        }
    }

    #[test]
    fn sweep_reuses_ephemeris_across_size_points() {
        // With the per-trial seed independent of size, the size-8
        // constellation is a prefix of the size-16/24 ones — the second
        // and third size points must hit the cache for every satellite
        // the smaller points already propagated.
        let runner = ScenarioRunner::serial(quick_cfg());
        runner.latency_vs_satellites(&[8]);
        let misses_after_first = runner.cache().misses();
        assert_eq!(runner.cache().hits(), 0, "first sweep point cannot hit");
        runner.latency_vs_satellites(&[8, 16]);
        // The size-8 point re-runs entirely from cache; size-16 reuses
        // its first 8 satellites per trial and epoch.
        let expected_hits = 2 * misses_after_first;
        assert_eq!(runner.cache().hits(), expected_hits);
        // Distinct samples overall: 16 sats × trials × epochs.
        let cfg = quick_cfg();
        assert_eq!(
            runner.cache().misses(),
            16 * cfg.trials * cfg.epochs_per_trial as u64
        );
    }

    #[test]
    fn builder_validates_and_matches_serial() {
        let cfg = quick_cfg();
        let built = ScenarioRunner::builder()
            .config(cfg)
            .threads(2)
            .build()
            .expect("valid config");
        assert_eq!(built.threads(), 2);
        let a = built.latency_vs_satellites(&[10]);
        let b = ScenarioRunner::serial(cfg).latency_vs_satellites(&[10]);
        assert_points_bitwise_eq(&a, &b);

        let err = ScenarioRunner::builder()
            .config(StudyConfig {
                altitude_m: -5.0,
                ..quick_cfg()
            })
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ConfigError::NonPositive {
                field: "altitude_m",
                ..
            }
        ));
        assert!(ScenarioRunner::builder().trials(0).build().is_err());
    }

    #[test]
    fn task_rng_is_reproducible_per_index() {
        let runner = ScenarioRunner::serial(quick_cfg());
        let mut a = runner.task_rng(3);
        let mut b = runner.task_rng(3);
        let mut c = runner.task_rng(4);
        assert_eq!(a.next_u64(), b.next_u64());
        // Different tasks get decorrelated streams.
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
