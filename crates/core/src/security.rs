//! Bad-actor detection and quarantine.
//!
//! §5(6): "What security protocols can be enforced to ensure that a
//! malicious provider does not take down the whole system? … it is worth
//! exploring a security protocol to quickly identify and cut off bad
//! actors in the network."
//!
//! OpenSpace already gives every member the evidence: §3's
//! cross-verifiable ledgers. A carrier that over-reports traffic (to
//! inflate its invoices) or under-reports (to dodge liability) shows up
//! as reconciliation disputes attributable to a specific operator. This
//! module turns those disputes into a reputation state machine —
//! `Trusted → Suspected → Quarantined` with rehabilitation — and exports
//! the quarantine set in the form the routing layer consumes (the
//! `blocked_carriers` of [`openspace_net::policy::RoutePolicy`]).

use openspace_economics::ledger::Reconciliation;
use openspace_protocol::types::OperatorId;
use std::collections::BTreeMap;

/// Reputation policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct ReputationPolicy {
    /// Dispute rate (disputed / total items) above which an operator is
    /// suspected.
    pub suspect_dispute_rate: f64,
    /// Dispute rate above which it is quarantined outright.
    pub quarantine_dispute_rate: f64,
    /// Minimum items observed before any state change (no verdicts on
    /// thin evidence).
    pub min_items: u64,
    /// Consecutive clean items required to rehabilitate a quarantined
    /// operator.
    pub rehabilitation_items: u64,
}

impl Default for ReputationPolicy {
    fn default() -> Self {
        Self {
            suspect_dispute_rate: 0.02,
            quarantine_dispute_rate: 0.10,
            min_items: 20,
            rehabilitation_items: 50,
        }
    }
}

/// An operator's trust state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrustState {
    /// In good standing.
    Trusted,
    /// Elevated dispute rate; traffic still carried but flagged.
    Suspected,
    /// Cut off: routing must avoid it; its records are not honored.
    Quarantined,
}

#[derive(Debug, Clone, Copy, Default)]
struct Record {
    items: u64,
    disputed: u64,
    clean_streak: u64,
    quarantined: bool,
}

fn dispute_rate_of(r: &Record) -> f64 {
    if r.items == 0 {
        0.0
    } else {
        r.disputed as f64 / r.items as f64
    }
}

/// Tracks per-operator reconciliation outcomes and derives trust states.
#[derive(Debug, Default)]
pub struct ReputationTracker {
    policy_suspect: f64,
    policy_quarantine: f64,
    min_items: u64,
    rehabilitation_items: u64,
    records: BTreeMap<OperatorId, Record>,
}

impl ReputationTracker {
    /// A tracker under the given policy.
    pub fn new(policy: ReputationPolicy) -> Self {
        assert!(policy.suspect_dispute_rate <= policy.quarantine_dispute_rate);
        Self {
            policy_suspect: policy.suspect_dispute_rate,
            policy_quarantine: policy.quarantine_dispute_rate,
            min_items: policy.min_items,
            rehabilitation_items: policy.rehabilitation_items,
            records: BTreeMap::new(),
        }
    }

    /// Record directly attributed outcomes for `op`: `ok` agreed items
    /// and `disputed` items where `op`'s claim was the outlier.
    pub fn record_outcome(&mut self, op: OperatorId, ok: u64, disputed: u64) {
        let r = self.records.entry(op).or_default();
        r.items += ok + disputed;
        r.disputed += disputed;
        if disputed == 0 {
            r.clean_streak += ok;
        } else {
            r.clean_streak = 0;
        }
        // State transitions are evaluated lazily in `state()`, but
        // quarantine latches here so rehabilitation has a fixed bar.
        if r.items >= self.min_items && dispute_rate_of(r) >= self.policy_quarantine {
            r.quarantined = true;
        }
        if r.quarantined && r.clean_streak >= self.rehabilitation_items {
            // Rehabilitate: forgive history, keep the streak.
            r.quarantined = false;
            r.disputed = 0;
            r.items = r.clean_streak;
        }
    }

    /// Attribute a bilateral reconciliation to `carrier` (the party whose
    /// over/under-claim a dispute reveals): agreed items count clean,
    /// disputes count against it.
    pub fn record_reconciliation(&mut self, carrier: OperatorId, recon: &Reconciliation) {
        self.record_outcome(carrier, recon.agreed as u64, recon.disputes.len() as u64);
    }

    /// Current trust state of `op`.
    pub fn state(&self, op: OperatorId) -> TrustState {
        let Some(r) = self.records.get(&op) else {
            return TrustState::Trusted;
        };
        if r.quarantined {
            return TrustState::Quarantined;
        }
        if r.items < self.min_items {
            return TrustState::Trusted;
        }
        let rate = dispute_rate_of(r);
        if rate >= self.policy_quarantine {
            TrustState::Quarantined
        } else if rate >= self.policy_suspect {
            TrustState::Suspected
        } else {
            TrustState::Trusted
        }
    }

    /// The operators routing must avoid — ready to drop into
    /// [`openspace_net::policy::RoutePolicy::blocked_carriers`].
    pub fn quarantined_operators(&self) -> Vec<u32> {
        self.records
            .keys()
            .filter(|&&op| self.state(op) == TrustState::Quarantined)
            .map(|op| op.0)
            .collect()
    }

    /// Observed dispute rate for `op` (0 when unknown).
    pub fn dispute_rate(&self, op: OperatorId) -> f64 {
        self.records.get(&op).map_or(0.0, dispute_rate_of)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> ReputationTracker {
        ReputationTracker::new(ReputationPolicy::default())
    }

    #[test]
    fn unknown_operator_is_trusted() {
        assert_eq!(tracker().state(OperatorId(9)), TrustState::Trusted);
    }

    #[test]
    fn clean_history_stays_trusted() {
        let mut t = tracker();
        t.record_outcome(OperatorId(1), 500, 0);
        assert_eq!(t.state(OperatorId(1)), TrustState::Trusted);
        assert_eq!(t.dispute_rate(OperatorId(1)), 0.0);
    }

    #[test]
    fn no_verdict_on_thin_evidence() {
        let mut t = tracker();
        // 100% dispute rate but only 3 items: below min_items.
        t.record_outcome(OperatorId(1), 0, 3);
        assert_eq!(t.state(OperatorId(1)), TrustState::Trusted);
    }

    #[test]
    fn moderate_rate_suspects() {
        let mut t = tracker();
        t.record_outcome(OperatorId(1), 95, 5); // 5%
        assert_eq!(t.state(OperatorId(1)), TrustState::Suspected);
    }

    #[test]
    fn heavy_rate_quarantines_and_blocks_routing() {
        let mut t = tracker();
        t.record_outcome(OperatorId(1), 80, 20); // 20%
        t.record_outcome(OperatorId(2), 100, 0);
        assert_eq!(t.state(OperatorId(1)), TrustState::Quarantined);
        assert_eq!(t.quarantined_operators(), vec![1]);
    }

    #[test]
    fn quarantine_latches_until_rehabilitation() {
        let mut t = tracker();
        t.record_outcome(OperatorId(1), 80, 20);
        assert_eq!(t.state(OperatorId(1)), TrustState::Quarantined);
        // 30 clean items: not yet enough (bar is 50).
        t.record_outcome(OperatorId(1), 30, 0);
        assert_eq!(t.state(OperatorId(1)), TrustState::Quarantined);
        // 20 more clean items: rehabilitated.
        t.record_outcome(OperatorId(1), 20, 0);
        assert_eq!(t.state(OperatorId(1)), TrustState::Trusted);
        assert!(t.quarantined_operators().is_empty());
    }

    #[test]
    fn dispute_resets_rehabilitation_streak() {
        let mut t = tracker();
        t.record_outcome(OperatorId(1), 80, 20);
        t.record_outcome(OperatorId(1), 49, 0);
        t.record_outcome(OperatorId(1), 10, 1); // streak broken
        t.record_outcome(OperatorId(1), 49, 0); // still short of 50
        assert_eq!(t.state(OperatorId(1)), TrustState::Quarantined);
    }

    #[test]
    fn reconciliation_feeds_the_tracker() {
        use openspace_economics::ledger::{reconcile, BillingKey, TrafficLedger};
        // The carrier claims more bytes than the origin observed — an
        // over-billing attempt that reconciliation exposes.
        let key = |flow| BillingKey {
            flow_id: flow,
            origin: OperatorId(1),
            carrier: OperatorId(2),
            interval_start_ms: 0,
        };
        let mut origin_ledger = TrafficLedger::new();
        let mut carrier_ledger = TrafficLedger::new();
        for flow in 0..30 {
            origin_ledger.record_raw(key(flow), 1_000);
            let claim = if flow < 6 { 5_000 } else { 1_000 }; // 6 inflated
            carrier_ledger.record_raw(key(flow), claim);
        }
        let recon = reconcile(
            &origin_ledger,
            &carrier_ledger,
            OperatorId(1),
            OperatorId(2),
        );
        assert_eq!(recon.disputes.len(), 6);
        let mut t = tracker();
        t.record_reconciliation(OperatorId(2), &recon);
        assert_eq!(t.state(OperatorId(2)), TrustState::Quarantined);
    }

    #[test]
    fn quarantine_set_integrates_with_route_policy() {
        use openspace_net::policy::RoutePolicy;
        let mut t = tracker();
        t.record_outcome(OperatorId(3), 50, 50);
        let policy = RoutePolicy {
            allowed_exit: vec![],
            blocked_carriers: t.quarantined_operators(),
        };
        assert!(!policy.carrier_allowed(3));
        assert!(policy.carrier_allowed(1));
    }
}
