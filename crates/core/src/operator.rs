//! Operators, satellites, and ground stations — the entities that make up
//! an OpenSpace federation.

use openspace_net::isl::{GroundNode, SatNode};
use openspace_orbit::frames::{geodetic_to_ecef, Geodetic, Vec3};
use openspace_orbit::kepler::OrbitalElements;
use openspace_orbit::propagator::{PerturbationModel, Propagator};
use openspace_phy::hardware::SatelliteClass;
use openspace_protocol::auth::AuthService;
use openspace_protocol::crypto::SharedSecret;
use openspace_protocol::types::{Capabilities, GroundStationId, OperatorId, SatelliteId};

/// A satellite in the federation.
#[derive(Debug, Clone, Copy)]
pub struct Satellite {
    /// Network-wide id.
    pub id: SatelliteId,
    /// Owning operator.
    pub owner: OperatorId,
    /// Hardware class (determines terminals and power).
    pub class: SatelliteClass,
    /// Deterministic orbit.
    pub propagator: Propagator,
}

impl Satellite {
    /// Capability bitmap this satellite beacons.
    pub fn capabilities(&self) -> Capabilities {
        let base = if self.class.laser_terminal_count() > 0 {
            Capabilities::rf_and_optical()
        } else {
            Capabilities::rf_only()
        };
        base.with_ground_relay()
    }

    /// Whether it carries laser terminals.
    pub fn has_optical(&self) -> bool {
        self.class.laser_terminal_count() > 0
    }

    /// View for the topology builder.
    pub fn as_sat_node(&self) -> SatNode {
        SatNode {
            propagator: self.propagator,
            operator: self.owner.0,
            has_optical: self.has_optical(),
        }
    }
}

/// A ground station in the shared ground segment (§2.1: "ground stations
/// could be owned by independent entities").
#[derive(Debug, Clone, Copy)]
pub struct GroundStation {
    /// Station id.
    pub id: GroundStationId,
    /// Owning operator.
    pub owner: OperatorId,
    /// Geodetic site.
    pub site: Geodetic,
    /// Cached ECEF position (m).
    pub position_ecef: Vec3,
}

impl GroundStation {
    /// Build a station at a geodetic site.
    pub fn new(id: GroundStationId, owner: OperatorId, site: Geodetic) -> Self {
        Self {
            id,
            owner,
            site,
            position_ecef: geodetic_to_ecef(site),
        }
    }

    /// View for the topology builder.
    pub fn as_ground_node(&self) -> GroundNode {
        GroundNode {
            position_ecef: self.position_ecef,
            operator: self.owner.0,
        }
    }
}

/// One member firm of the federation: identity, AAA service, and the
/// federation secret under which its certificates are minted.
#[derive(Debug)]
pub struct Operator {
    /// Operator id.
    pub id: OperatorId,
    /// Display name.
    pub name: String,
    /// Certificate-signing secret, distributed to all federation members
    /// at join time so any of them can verify this operator's roaming
    /// certificates offline.
    pub federation_secret: SharedSecret,
    /// This operator's AAA service.
    pub auth: AuthService,
}

impl Operator {
    /// Create an operator with a derived federation secret.
    pub fn new(id: OperatorId, name: impl Into<String>) -> Self {
        let federation_secret = SharedSecret::derive(id.0 as u64, "openspace-federation");
        Self {
            id,
            name: name.into(),
            federation_secret,
            auth: AuthService::new(id, federation_secret),
        }
    }
}

/// Builder helper: a satellite from orbital elements.
pub fn make_satellite(
    id: u64,
    owner: OperatorId,
    class: SatelliteClass,
    elements: OrbitalElements,
) -> Satellite {
    Satellite {
        id: SatelliteId(id),
        owner,
        class,
        propagator: Propagator::new(elements, PerturbationModel::SecularJ2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openspace_orbit::constants::km_to_m;

    fn sat(class: SatelliteClass) -> Satellite {
        make_satellite(
            1,
            OperatorId(1),
            class,
            OrbitalElements::circular(km_to_m(780.0), 86.4, 0.0, 0.0).unwrap(),
        )
    }

    #[test]
    fn cubesat_beacons_rf_only() {
        let s = sat(SatelliteClass::CubeSat);
        assert!(s.capabilities().has_rf());
        assert!(!s.capabilities().has_optical());
        assert!(!s.has_optical());
    }

    #[test]
    fn smallsat_beacons_optical() {
        let s = sat(SatelliteClass::SmallSat);
        assert!(s.capabilities().has_optical());
        assert!(s.as_sat_node().has_optical);
    }

    #[test]
    fn all_satellites_offer_ground_relay() {
        for class in SatelliteClass::all() {
            assert!(sat(class).capabilities().has_ground_relay());
        }
    }

    #[test]
    fn station_caches_ecef() {
        let st = GroundStation::new(
            GroundStationId(1),
            OperatorId(2),
            Geodetic::from_degrees(50.0, 8.6, 100.0),
        );
        let expect = geodetic_to_ecef(st.site);
        assert_eq!(st.position_ecef, expect);
        assert_eq!(st.as_ground_node().operator, 2);
    }

    #[test]
    fn operator_secret_is_deterministic_per_id() {
        let a = Operator::new(OperatorId(5), "a");
        let b = Operator::new(OperatorId(5), "b");
        let c = Operator::new(OperatorId(6), "c");
        assert_eq!(a.federation_secret, b.federation_secret);
        assert_ne!(a.federation_secret, c.federation_secret);
    }
}
