//! Packet-level network simulation over a constellation snapshot.
//!
//! §5(2): "Can we design new routing protocols that factor in the more
//! unpredictable components of user traffic, which cannot be accounted
//! for by proactive routing protocols computed based on known satellite
//! trajectories?" Answering that requires more than the analytic
//! queueing estimate in `openspace-net` — it needs packets in queues.
//!
//! This module runs a store-and-forward discrete-event simulation on a
//! topology snapshot: every directed link has a finite drop-tail queue
//! and a serialization rate; flows inject CBR or Poisson packets; the
//! router is either **proactive** (routes fixed from the known topology,
//! load-blind — §2.2's beginner system) or **adaptive** (periodically
//! re-planned against measured link utilization — the end-to-end
//! approach the paper calls for). Deterministic under a seed.

use openspace_net::routing::{latency_weight, qos_route, shortest_path, QosRequirement};
use openspace_net::topology::Graph;
use openspace_sim::engine::EventQueue;
use openspace_sim::rng::SimRng;
use openspace_sim::stats::Summary;
use std::collections::HashMap;
use std::rc::Rc;

/// Traffic model of one flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficKind {
    /// Constant bit rate.
    Cbr,
    /// Poisson arrivals at the same mean rate.
    Poisson,
}

/// One simulated flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    /// Injection node (graph index).
    pub src: usize,
    /// Destination node (graph index).
    pub dst: usize,
    /// Offered rate (bit/s).
    pub rate_bps: f64,
    /// Packet size (bytes).
    pub packet_bytes: u32,
    /// Arrival process.
    pub kind: TrafficKind,
}

/// Routing discipline under test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoutingMode {
    /// Routes computed once from propagation latency and never changed —
    /// the proactive protocol of §2.2.
    Proactive,
    /// Routes re-planned every `replan_interval_s` against measured link
    /// utilization (EWMA), using the congestion-aware cost.
    Adaptive {
        /// Re-planning period (s).
        replan_interval_s: f64,
    },
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy)]
pub struct NetSimConfig {
    /// Simulated duration (s).
    pub duration_s: f64,
    /// Per-link queue capacity (bytes).
    pub queue_capacity_bytes: u64,
    /// Routing discipline.
    pub routing: RoutingMode,
    /// Seed for all arrival processes.
    pub seed: u64,
}

impl Default for NetSimConfig {
    fn default() -> Self {
        Self {
            duration_s: 30.0,
            queue_capacity_bytes: 256 * 1024,
            routing: RoutingMode::Proactive,
            seed: 1,
        }
    }
}

/// Aggregate results.
#[derive(Debug, Clone)]
pub struct NetSimReport {
    /// Packets injected.
    pub generated: u64,
    /// Packets that reached their destination.
    pub delivered: u64,
    /// Packets dropped at full queues.
    pub dropped: u64,
    /// Packets unroutable at injection time.
    pub unroutable: u64,
    /// delivered / generated.
    pub delivery_ratio: f64,
    /// Mean end-to-end latency of delivered packets (s).
    pub mean_latency_s: f64,
    /// 95th-percentile latency (s).
    pub p95_latency_s: f64,
    /// Highest measured utilization across links (fraction of capacity).
    pub max_link_utilization: f64,
}

#[derive(Clone)]
struct Pkt {
    bytes: u32,
    created_s: f64,
    path: Rc<[usize]>,
    hop: usize,
}

enum Ev {
    Inject(usize),
    /// Transmission of the head-of-queue packet on (u → v) completed.
    Depart(usize, usize),
    /// Packet finished propagating to `node`.
    HopArrive(Pkt, usize),
    Replan,
    /// Topology refresh (dynamic mode): satellites have moved.
    Resnapshot,
}

struct Link {
    capacity_bps: f64,
    latency_s: f64,
    queue: std::collections::VecDeque<Pkt>,
    occupancy_bytes: u64,
    busy: bool,
    bits_sent: f64, // since the last replan (for utilization EWMA)
    util_ewma: f64,
}

/// Run the simulation on a static topology snapshot. The input graph
/// supplies topology, capacities and latencies; queues and measured
/// loads live inside the simulator.
///
/// # Panics
/// Panics on empty flows, bad node indices, or non-positive duration.
pub fn run_netsim(graph: &Graph, flows: &[FlowSpec], cfg: &NetSimConfig) -> NetSimReport {
    run_netsim_inner(graph.clone(), None, flows, cfg)
}

/// Run the simulation over a *moving* constellation: `topology_at(t)`
/// supplies fresh snapshots every `resnapshot_interval_s`, modeling the
/// "rapidly changing network topology" of the paper's Figure 1. Links
/// that persist across a refresh keep their queues; packets queued on a
/// vanished link are dropped (the handover cost of ISL churn), and all
/// routes are recomputed on the new snapshot.
///
/// # Panics
/// Panics on empty flows, bad node indices, non-positive duration, or a
/// non-positive refresh interval.
pub fn run_netsim_dynamic(
    topology_at: &dyn Fn(f64) -> Graph,
    resnapshot_interval_s: f64,
    flows: &[FlowSpec],
    cfg: &NetSimConfig,
) -> NetSimReport {
    assert!(
        resnapshot_interval_s > 0.0,
        "resnapshot interval must be positive"
    );
    run_netsim_inner(
        topology_at(0.0),
        Some((topology_at, resnapshot_interval_s)),
        flows,
        cfg,
    )
}

fn run_netsim_inner(
    graph: Graph,
    dynamics: Option<(&dyn Fn(f64) -> Graph, f64)>,
    flows: &[FlowSpec],
    cfg: &NetSimConfig,
) -> NetSimReport {
    let graph = &graph;
    assert!(!flows.is_empty(), "need at least one flow");
    assert!(cfg.duration_s > 0.0, "duration must be positive");
    for f in flows {
        assert!(f.src < graph.node_count() && f.dst < graph.node_count());
        assert!(f.rate_bps > 0.0 && f.packet_bytes > 0);
    }

    // Link state keyed by (u, v).
    let mut links: HashMap<(usize, usize), Link> = HashMap::new();
    for u in 0..graph.node_count() {
        for e in graph.edges(u) {
            links.insert(
                (u, e.to),
                Link {
                    capacity_bps: e.capacity_bps,
                    latency_s: e.latency_s,
                    queue: Default::default(),
                    occupancy_bytes: 0,
                    busy: false,
                    bits_sent: 0.0,
                    util_ewma: 0.0,
                },
            );
        }
    }

    // Initial routes: proactive latency paths for every flow.
    let route_for = |g: &Graph, f: &FlowSpec, adaptive: bool| -> Option<Rc<[usize]>> {
        let p = if adaptive {
            qos_route(g, f.src, f.dst, &QosRequirement::best_effort(), 12_000.0)?
        } else {
            shortest_path(g, f.src, f.dst, latency_weight)?
        };
        Some(Rc::from(p.nodes.into_boxed_slice()))
    };
    let mut work_graph = graph.clone();
    let mut routes: Vec<Option<Rc<[usize]>>> = flows
        .iter()
        .map(|f| route_for(&work_graph, f, false))
        .collect();

    // Arrival processes.
    let mut rngs: Vec<SimRng> = (0..flows.len())
        .map(|i| SimRng::substream(cfg.seed, i as u64))
        .collect();

    let mut q: EventQueue<Ev> = EventQueue::new();
    for (i, f) in flows.iter().enumerate() {
        // Desynchronize CBR flows with a random phase.
        let phase = rngs[i].uniform() * f.packet_bytes as f64 * 8.0 / f.rate_bps;
        q.schedule(phase, Ev::Inject(i));
    }
    let replan_interval = match cfg.routing {
        RoutingMode::Adaptive { replan_interval_s } => {
            assert!(replan_interval_s > 0.0, "replan interval must be positive");
            q.schedule(replan_interval_s, Ev::Replan);
            Some(replan_interval_s)
        }
        RoutingMode::Proactive => None,
    };
    if let Some((_, interval)) = dynamics {
        q.schedule(interval, Ev::Resnapshot);
    }

    let mut generated = 0u64;
    let mut delivered = 0u64;
    let mut dropped = 0u64;
    let mut unroutable = 0u64;
    let mut latency = Summary::new();
    let mut last_replan_t = 0.0f64;
    let mut max_util: f64 = 0.0;

    q.run_until(cfg.duration_s, |q, now, ev| match ev {
        Ev::Inject(i) => {
            let f = &flows[i];
            generated += 1;
            if let Some(path) = &routes[i] {
                let pkt = Pkt {
                    bytes: f.packet_bytes,
                    created_s: now,
                    path: Rc::clone(path),
                    hop: 0,
                };
                forward(
                    q,
                    &mut links,
                    pkt,
                    now,
                    cfg.queue_capacity_bytes,
                    &mut dropped,
                );
            } else {
                unroutable += 1;
            }
            // Next arrival.
            let mean_gap = f.packet_bytes as f64 * 8.0 / f.rate_bps;
            let gap = match f.kind {
                TrafficKind::Cbr => mean_gap,
                TrafficKind::Poisson => rngs[i].exponential(1.0 / mean_gap),
            };
            q.schedule(now + gap, Ev::Inject(i));
        }
        Ev::Depart(u, v) => {
            let link = links.get_mut(&(u, v)).expect("link exists");
            let pkt = link.queue.pop_front().expect("depart implies queued");
            link.occupancy_bytes -= pkt.bytes as u64;
            link.bits_sent += pkt.bytes as f64 * 8.0;
            let arrive_at = now + link.latency_s;
            // Start the next transmission if any.
            if let Some(next) = link.queue.front() {
                let tx = next.bytes as f64 * 8.0 / link.capacity_bps;
                q.schedule(now + tx, Ev::Depart(u, v));
            } else {
                link.busy = false;
            }
            q.schedule(arrive_at, Ev::HopArrive(pkt, v));
        }
        Ev::HopArrive(mut pkt, node) => {
            pkt.hop += 1;
            if node == *pkt.path.last().expect("non-empty path") {
                delivered += 1;
                latency.add(now - pkt.created_s);
            } else {
                forward(
                    q,
                    &mut links,
                    pkt,
                    now,
                    cfg.queue_capacity_bytes,
                    &mut dropped,
                );
            }
        }
        Ev::Replan => {
            let interval = replan_interval.expect("replan only in adaptive mode");
            // Measure utilization, fold into EWMA, push into the graph.
            for ((u, v), link) in links.iter_mut() {
                let util = (link.bits_sent / interval / link.capacity_bps).min(0.98);
                link.util_ewma = 0.5 * link.util_ewma + 0.5 * util;
                max_util = max_util.max(util);
                link.bits_sent = 0.0;
                // A link can leave the topology between replans (contact
                // expiry on dynamic graphs); skip the stale entry
                // instead of dying inside the event loop.
                if work_graph
                    .set_load(*u, *v, link.util_ewma.min(0.98))
                    .is_err()
                {
                    continue;
                }
            }
            for (i, f) in flows.iter().enumerate() {
                if let Some(r) = route_for(&work_graph, f, true) {
                    routes[i] = Some(r);
                }
            }
            last_replan_t = now;
            let _ = last_replan_t;
            q.schedule(now + interval, Ev::Replan);
        }
        Ev::Resnapshot => {
            let (provider, interval) = dynamics.expect("resnapshot only in dynamic mode");
            let fresh = provider(now);
            work_graph = fresh;
            // Rebuild link state: persistent links keep queues and EWMA;
            // vanished links drop their queued packets; new links start
            // empty.
            let mut new_links: HashMap<(usize, usize), Link> = HashMap::new();
            for u in 0..work_graph.node_count() {
                for e in work_graph.edges(u) {
                    let link = match links.remove(&(u, e.to)) {
                        Some(mut old) => {
                            old.capacity_bps = e.capacity_bps;
                            old.latency_s = e.latency_s;
                            old
                        }
                        None => Link {
                            capacity_bps: e.capacity_bps,
                            latency_s: e.latency_s,
                            queue: Default::default(),
                            occupancy_bytes: 0,
                            busy: false,
                            bits_sent: 0.0,
                            util_ewma: 0.0,
                        },
                    };
                    new_links.insert((u, e.to), link);
                }
            }
            // Anything left in `links` vanished: its queue is lost.
            for (_, link) in links.drain() {
                dropped += link.queue.len() as u64;
            }
            links = new_links;
            // Recompute every route on the new topology.
            let adaptive = replan_interval.is_some();
            for (i, f) in flows.iter().enumerate() {
                routes[i] = route_for(&work_graph, f, adaptive);
            }
            q.schedule(now + interval, Ev::Resnapshot);
        }
    });

    // Final utilization sample for proactive mode (no replan events).
    for link in links.values() {
        let util = link.bits_sent / cfg.duration_s / link.capacity_bps;
        max_util = max_util.max(util);
    }

    let mean = latency.mean();
    let p95 = if latency.is_empty() {
        0.0
    } else {
        latency.p95()
    };
    NetSimReport {
        generated,
        delivered,
        dropped,
        unroutable,
        delivery_ratio: if generated > 0 {
            delivered as f64 / generated as f64
        } else {
            0.0
        },
        mean_latency_s: mean,
        p95_latency_s: p95,
        max_link_utilization: max_util,
    }
}

/// Enqueue `pkt` on its next-hop link, starting transmission if idle.
fn forward(
    q: &mut EventQueue<Ev>,
    links: &mut HashMap<(usize, usize), Link>,
    pkt: Pkt,
    now: f64,
    queue_capacity_bytes: u64,
    dropped: &mut u64,
) {
    let u = pkt.path[pkt.hop];
    let v = pkt.path[pkt.hop + 1];
    let Some(link) = links.get_mut(&(u, v)) else {
        // Route references a vanished link (possible after replans on a
        // changed snapshot); count as a drop.
        *dropped += 1;
        return;
    };
    if link.occupancy_bytes + pkt.bytes as u64 > queue_capacity_bytes {
        *dropped += 1;
        return;
    }
    link.occupancy_bytes += pkt.bytes as u64;
    let tx = pkt.bytes as f64 * 8.0 / link.capacity_bps;
    link.queue.push_back(pkt);
    if !link.busy {
        link.busy = true;
        q.schedule(now + tx, Ev::Depart(u, v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openspace_net::topology::{Graph, LinkTech};

    /// 0 —fast— 1 —fast— 3   plus a slow bypass 0 — 2 — 3.
    fn diamond(fast_bps: f64) -> Graph {
        let mut g = Graph::new(4, 0);
        g.add_bidirectional(0, 1, 0.002, fast_bps, 0, 0, LinkTech::Rf);
        g.add_bidirectional(1, 3, 0.002, fast_bps, 0, 0, LinkTech::Rf);
        g.add_bidirectional(0, 2, 0.006, fast_bps, 0, 0, LinkTech::Rf);
        g.add_bidirectional(2, 3, 0.006, fast_bps, 0, 0, LinkTech::Rf);
        g
    }

    fn flow(src: usize, dst: usize, rate: f64) -> FlowSpec {
        FlowSpec {
            src,
            dst,
            rate_bps: rate,
            packet_bytes: 1_500,
            kind: TrafficKind::Cbr,
        }
    }

    #[test]
    fn light_load_delivers_everything_at_propagation_latency() {
        let g = diamond(10e6);
        let r = run_netsim(&g, &[flow(0, 3, 1e5)], &NetSimConfig::default());
        assert!(r.delivery_ratio > 0.99, "ratio {}", r.delivery_ratio);
        assert_eq!(r.dropped, 0);
        // 2 hops x 2 ms + 2 serializations of 12 kbit at 10 Mbit/s.
        let expect = 0.004 + 2.0 * 1_500.0 * 8.0 / 10e6;
        assert!(
            (r.mean_latency_s - expect).abs() < 5e-4,
            "latency {} vs {}",
            r.mean_latency_s,
            expect
        );
    }

    #[test]
    fn overload_drops_packets() {
        let g = diamond(1e6);
        // 3 Mbit/s offered into a 1 Mbit/s path.
        let r = run_netsim(&g, &[flow(0, 3, 3e6)], &NetSimConfig::default());
        assert!(r.dropped > 0);
        assert!(r.delivery_ratio < 0.5, "ratio {}", r.delivery_ratio);
        assert!(r.max_link_utilization > 0.9);
    }

    #[test]
    fn conservation_holds() {
        let g = diamond(2e6);
        let r = run_netsim(
            &g,
            &[flow(0, 3, 1.5e6), flow(3, 0, 0.5e6)],
            &NetSimConfig {
                duration_s: 10.0,
                ..Default::default()
            },
        );
        // Everything generated is delivered, dropped, unroutable, or
        // still in flight (bounded by queue depth + links).
        let in_flight = r.generated - r.delivered - r.dropped - r.unroutable;
        assert!(in_flight < 500, "in flight {in_flight}");
    }

    #[test]
    fn adaptive_routing_offloads_the_hot_path() {
        // Two flows share the fast path under proactive routing and
        // overload it; adaptive re-planning moves one to the bypass.
        let g = diamond(2e6);
        let flows = [flow(0, 3, 1.4e6), flow(0, 3, 1.4e6)];
        let pro = run_netsim(
            &g,
            &flows,
            &NetSimConfig {
                duration_s: 20.0,
                ..Default::default()
            },
        );
        let ada = run_netsim(
            &g,
            &flows,
            &NetSimConfig {
                duration_s: 20.0,
                routing: RoutingMode::Adaptive {
                    replan_interval_s: 1.0,
                },
                ..Default::default()
            },
        );
        assert!(
            ada.delivery_ratio > pro.delivery_ratio + 0.1,
            "adaptive {} vs proactive {}",
            ada.delivery_ratio,
            pro.delivery_ratio
        );
    }

    #[test]
    fn poisson_and_cbr_offer_the_same_mean_load() {
        let g = diamond(10e6);
        let mk = |kind| FlowSpec {
            src: 0,
            dst: 3,
            rate_bps: 1e6,
            packet_bytes: 1_500,
            kind,
        };
        let cfg = NetSimConfig {
            duration_s: 30.0,
            ..Default::default()
        };
        let cbr = run_netsim(&g, &[mk(TrafficKind::Cbr)], &cfg);
        let poi = run_netsim(&g, &[mk(TrafficKind::Poisson)], &cfg);
        let ratio = poi.generated as f64 / cbr.generated as f64;
        assert!((ratio - 1.0).abs() < 0.1, "ratio {ratio}");
        // Poisson burstiness raises p95 latency.
        assert!(poi.p95_latency_s >= cbr.p95_latency_s);
    }

    #[test]
    fn unroutable_flow_is_counted_not_crashed() {
        let mut g = Graph::new(3, 0);
        g.add_bidirectional(0, 1, 0.001, 1e6, 0, 0, LinkTech::Rf);
        let r = run_netsim(
            &g,
            &[flow(0, 2, 1e5)],
            &NetSimConfig {
                duration_s: 5.0,
                ..Default::default()
            },
        );
        assert_eq!(r.delivered, 0);
        assert!(r.unroutable > 0);
        assert_eq!(r.unroutable, r.generated);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = diamond(2e6);
        let flows = [FlowSpec {
            src: 0,
            dst: 3,
            rate_bps: 1e6,
            packet_bytes: 1_200,
            kind: TrafficKind::Poisson,
        }];
        let cfg = NetSimConfig {
            duration_s: 10.0,
            seed: 7,
            ..Default::default()
        };
        let a = run_netsim(&g, &flows, &cfg);
        let b = run_netsim(&g, &flows, &cfg);
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.mean_latency_s, b.mean_latency_s);
    }

    #[test]
    #[should_panic(expected = "at least one flow")]
    fn empty_flows_panics() {
        run_netsim(&diamond(1e6), &[], &NetSimConfig::default());
    }

    #[test]
    fn dynamic_static_topology_matches_static_run() {
        // A provider that always returns the same snapshot must behave
        // like the static simulator (modulo identical results).
        let g = diamond(5e6);
        let flows = [flow(0, 3, 1e6)];
        let cfg = NetSimConfig {
            duration_s: 10.0,
            ..Default::default()
        };
        let stat = run_netsim(&g, &flows, &cfg);
        let dynamic = run_netsim_dynamic(&|_t| g.clone(), 2.0, &flows, &cfg);
        assert_eq!(stat.generated, dynamic.generated);
        assert_eq!(stat.delivered, dynamic.delivered);
        assert_eq!(stat.dropped, dynamic.dropped);
    }

    #[test]
    fn vanishing_link_drops_queued_packets_and_reroutes() {
        // Topology: fast path 0-1-3 exists before t=5, vanishes after.
        let with_fast = diamond(5e6);
        let without_fast = {
            let mut g = Graph::new(4, 0);
            g.add_bidirectional(0, 2, 0.006, 5e6, 0, 0, LinkTech::Rf);
            g.add_bidirectional(2, 3, 0.006, 5e6, 0, 0, LinkTech::Rf);
            g
        };
        let provider = |t: f64| {
            if t < 5.0 {
                with_fast.clone()
            } else {
                without_fast.clone()
            }
        };
        let flows = [flow(0, 3, 1e6)];
        let cfg = NetSimConfig {
            duration_s: 20.0,
            ..Default::default()
        };
        let r = run_netsim_dynamic(&provider, 1.0, &flows, &cfg);
        // The flow keeps delivering after the handover to the slow path.
        assert!(
            r.delivery_ratio > 0.95,
            "rerouted flow should keep flowing: {}",
            r.delivery_ratio
        );
        assert!(r.delivered > 0);
        // Mean latency sits between the fast-only and slow-only values.
        assert!(r.mean_latency_s > 0.004 && r.mean_latency_s < 0.02);
    }

    #[test]
    fn total_blackout_counts_unroutable() {
        let g = diamond(5e6);
        let empty = Graph::new(4, 0);
        let provider = |t: f64| if t < 2.0 { g.clone() } else { empty.clone() };
        let flows = [flow(0, 3, 1e6)];
        let cfg = NetSimConfig {
            duration_s: 10.0,
            ..Default::default()
        };
        let r = run_netsim_dynamic(&provider, 1.0, &flows, &cfg);
        assert!(r.unroutable > 0, "post-blackout packets are unroutable");
        assert!(r.delivered > 0, "pre-blackout packets were delivered");
    }

    #[test]
    #[should_panic(expected = "resnapshot interval")]
    fn zero_resnapshot_interval_panics() {
        let g = diamond(1e6);
        run_netsim_dynamic(
            &|_| g.clone(),
            0.0,
            &[flow(0, 3, 1e5)],
            &NetSimConfig::default(),
        );
    }
}
