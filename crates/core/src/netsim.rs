//! Packet-level network simulation over a constellation snapshot.
//!
//! §5(2): "Can we design new routing protocols that factor in the more
//! unpredictable components of user traffic, which cannot be accounted
//! for by proactive routing protocols computed based on known satellite
//! trajectories?" Answering that requires more than the analytic
//! queueing estimate in `openspace-net` — it needs packets in queues.
//!
//! This module runs a store-and-forward discrete-event simulation on a
//! topology snapshot: every directed link has a finite drop-tail queue
//! and a serialization rate; flows inject CBR or Poisson packets; the
//! router is either **proactive** (routes fixed from the known topology,
//! load-blind — §2.2's beginner system) or **adaptive** (periodically
//! re-planned against measured link utilization — the end-to-end
//! approach the paper calls for). Deterministic under a seed.
//!
//! All capabilities compose through one driver, [`NetSim`]: a validated
//! [`NetSimConfig`], an optional fault plan ([`NetSim::with_faults`] —
//! packets queued on or in flight toward failed elements are lost,
//! surviving flows re-route, and the report's [`FaultImpact`] section
//! accounts for availability, repair time, and flow re-association),
//! and one topology source — a static snapshot
//! ([`NetSim::with_snapshot`]), an on-demand
//! [`TopologyProvider`] ([`NetSim::with_provider`]), or a precomputed
//! [`TopologyTimeline`] ([`NetSim::with_timeline`]).
//!
//! The timeline path replays compact
//! [`GraphDelta`](openspace_net::topology::GraphDelta)s at every
//! `Ev::Resnapshot` instead of rebuilding the snapshot from orbital
//! state: the patched graph is bitwise-identical to a fresh provider
//! call (the timeline extracts its deltas *from* fresh builds), link
//! state is reused for untouched links, and the route planner is
//! invalidated selectively where a conservative soundness argument
//! allows (see [`RoutePlanner::retain_for_changed_rows`]) — so the
//! resulting [`NetSimReport`] is bit-for-bit the one the full-rebuild
//! path produces, pinned by `tests/tests/netsim_delta_equivalence.rs`.
//!
//! The historical free functions ([`run_netsim`],
//! [`run_netsim_faulted`], [`run_netsim_dynamic`], and their
//! `_recorded` forms) remain as thin deprecated wrappers over the
//! driver.

use openspace_net::outage::OutageTracker;
use openspace_net::routing::{latency_weight, QosRequirement, RoutePlanner};
use openspace_net::timeline::{TopologyProvider, TopologyTimeline};
use openspace_net::topology::{Graph, NodeId};
use openspace_sim::config::{require_positive, ConfigError};
use openspace_sim::engine::{CalendarQueue, EventQueue, Scheduler};
use openspace_sim::fault::{TopologyEvent, TopologyEventKind};
use openspace_sim::rng::SimRng;
use openspace_sim::stats::Summary;
use openspace_telemetry::{NullRecorder, Recorder};
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

pub use openspace_sim::engine::EngineKind;

/// Traffic model of one flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficKind {
    /// Constant bit rate.
    Cbr,
    /// Poisson arrivals at the same mean rate.
    Poisson,
    /// Exponential on/off bursts: during an ON period packets leave
    /// back-to-back at `rate_bps` (the *peak* rate); OFF periods are
    /// silent. The first packet of every ON period goes out the
    /// instant the period opens, matching `sim::traffic::OnOffSource`.
    OnOff {
        /// Mean ON-period duration (s).
        mean_on_s: f64,
        /// Mean OFF-period duration (s).
        mean_off_s: f64,
    },
}

/// One simulated flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    /// Injection node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Offered rate (bit/s).
    pub rate_bps: f64,
    /// Packet size (bytes).
    pub packet_bytes: u32,
    /// Arrival process.
    pub kind: TrafficKind,
}

impl FlowSpec {
    /// A flow between two nodes (any `usize`/`NodeId` mix).
    pub fn new(
        src: impl Into<NodeId>,
        dst: impl Into<NodeId>,
        rate_bps: f64,
        packet_bytes: u32,
        kind: TrafficKind,
    ) -> Self {
        Self {
            src: src.into(),
            dst: dst.into(),
            rate_bps,
            packet_bytes,
            kind,
        }
    }
}

/// A time-varying workload: batches of flows activated at demand-tick
/// boundaries. Each entry is `(t_s, flows)` — at `t_s` the previous
/// batch retires (its flows stop injecting; packets already in flight
/// still drain) and the new batch activates with fresh arrival phases.
/// Tick times must be finite, non-negative and strictly increasing.
/// Build one from demand-model output (one batch per `DemandTick`) and
/// attach it with [`NetSim::with_demand`].
#[derive(Debug, Clone, Default)]
pub struct DemandWorkload {
    ticks: Vec<(f64, Vec<FlowSpec>)>,
}

impl DemandWorkload {
    /// Validate and wrap tick batches.
    pub fn new(ticks: Vec<(f64, Vec<FlowSpec>)>) -> Result<Self, ConfigError> {
        for (t, _) in &ticks {
            if !t.is_finite() {
                return Err(ConfigError::NotFinite {
                    field: "demand.tick_s",
                });
            }
            if *t < 0.0 {
                return Err(ConfigError::Negative {
                    field: "demand.tick_s",
                    value: *t,
                });
            }
        }
        for w in ticks.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(ConfigError::InvertedInterval {
                    field: "demand.ticks",
                    start: w[0].0,
                    end: w[1].0,
                });
            }
        }
        Ok(Self { ticks })
    }

    /// The tick batches, time-ascending.
    pub fn ticks(&self) -> &[(f64, Vec<FlowSpec>)] {
        &self.ticks
    }

    /// Total flows across all batches.
    pub fn flow_count(&self) -> usize {
        self.ticks.iter().map(|(_, f)| f.len()).sum()
    }

    /// Whether the workload carries no flows at all.
    pub fn is_empty(&self) -> bool {
        self.flow_count() == 0
    }
}

/// Routing discipline under test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoutingMode {
    /// Routes computed once from propagation latency and never changed —
    /// the proactive protocol of §2.2.
    Proactive,
    /// Routes re-planned every `replan_interval_s` against measured link
    /// utilization (EWMA), using the congestion-aware cost.
    Adaptive {
        /// Re-planning period (s).
        replan_interval_s: f64,
    },
}

/// Simulation configuration. Build one with [`NetSimConfig::builder`]
/// for validated construction, or use [`Default`] and struct update.
#[derive(Debug, Clone, Copy)]
pub struct NetSimConfig {
    /// Simulated duration (s).
    pub duration_s: f64,
    /// Per-link queue capacity (bytes).
    pub queue_capacity_bytes: u64,
    /// Routing discipline.
    pub routing: RoutingMode,
    /// Seed for all arrival processes.
    pub seed: u64,
    /// Event-queue implementation. Both produce bit-identical reports
    /// (pinned by `tests/tests/engine_equivalence.rs`); the calendar
    /// queue is faster and the default, the heap is the reference.
    pub engine: EngineKind,
}

impl Default for NetSimConfig {
    fn default() -> Self {
        Self {
            duration_s: 30.0,
            queue_capacity_bytes: 256 * 1024,
            routing: RoutingMode::Proactive,
            seed: 1,
            engine: EngineKind::default(),
        }
    }
}

impl NetSimConfig {
    /// Start building a config from the defaults.
    pub fn builder() -> NetSimConfigBuilder {
        NetSimConfigBuilder {
            cfg: Self::default(),
        }
    }
}

/// Validating builder for [`NetSimConfig`].
#[derive(Debug, Clone)]
pub struct NetSimConfigBuilder {
    cfg: NetSimConfig,
}

impl NetSimConfigBuilder {
    /// Simulated duration (s).
    pub fn duration_s(mut self, v: f64) -> Self {
        self.cfg.duration_s = v;
        self
    }

    /// Per-link queue capacity (bytes).
    pub fn queue_capacity_bytes(mut self, v: u64) -> Self {
        self.cfg.queue_capacity_bytes = v;
        self
    }

    /// Routing discipline.
    pub fn routing(mut self, v: RoutingMode) -> Self {
        self.cfg.routing = v;
        self
    }

    /// Arrival-process seed.
    pub fn seed(mut self, v: u64) -> Self {
        self.cfg.seed = v;
        self
    }

    /// Event-queue implementation.
    pub fn engine(mut self, v: EngineKind) -> Self {
        self.cfg.engine = v;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<NetSimConfig, ConfigError> {
        let cfg = self.cfg;
        require_positive("duration_s", cfg.duration_s)?;
        if cfg.queue_capacity_bytes == 0 {
            return Err(ConfigError::NonPositive {
                field: "queue_capacity_bytes",
                value: 0.0,
            });
        }
        if let RoutingMode::Adaptive { replan_interval_s } = cfg.routing {
            require_positive("replan_interval_s", replan_interval_s)?;
        }
        Ok(cfg)
    }
}

/// Fault accounting appended to [`NetSimReport`] by
/// [`run_netsim_faulted`]. A fault-free run carries the default value
/// (full availability, nothing lost), so reports stay comparable.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultImpact {
    /// Topology events applied during the run.
    pub events_applied: u64,
    /// Packets lost to faults specifically: queued on a failed link,
    /// in flight toward a dead node, or forwarded onto a faulted link.
    pub packets_lost: u64,
    /// Time-weighted fraction of node-uptime over the run
    /// (1.0 = no node was ever down).
    pub node_availability: f64,
    /// Mean time to repair (s) over outages that recovered in-run;
    /// `None` when nothing recovered (e.g. only permanent failures).
    pub mttr_s: Option<f64>,
    /// Times a flow was re-routed because a fault broke its path.
    pub reassociations: u64,
    /// Mean delay (s) between losing a route to a fault and having one
    /// again; 0 for immediate failover, `None` with no re-associations.
    pub mean_reassociation_latency_s: Option<f64>,
}

impl Default for FaultImpact {
    fn default() -> Self {
        Self {
            events_applied: 0,
            packets_lost: 0,
            node_availability: 1.0,
            mttr_s: None,
            reassociations: 0,
            mean_reassociation_latency_s: None,
        }
    }
}

/// Aggregate results.
#[derive(Debug, Clone, PartialEq)]
pub struct NetSimReport {
    /// Packets injected.
    pub generated: u64,
    /// Packets that reached their destination.
    pub delivered: u64,
    /// Packets dropped at full queues (includes fault losses).
    pub dropped: u64,
    /// Packets unroutable at injection time.
    pub unroutable: u64,
    /// delivered / generated.
    pub delivery_ratio: f64,
    /// Mean end-to-end latency of delivered packets (s).
    pub mean_latency_s: f64,
    /// 95th-percentile latency (s).
    pub p95_latency_s: f64,
    /// Highest utilization sample measured across links, as an unclamped
    /// fraction of capacity (a saturated link reports ~1.0). Each link is
    /// sampled at every adaptive replan (over the elapsed replan
    /// interval) and once at the end of the run over its *actual*
    /// remaining measurement window — the time since its last replan
    /// reset, or since the link's mid-run creation on dynamic/faulted
    /// topologies — so short final windows and late-created links are
    /// not averaged down over time they did not exist.
    pub max_link_utilization: f64,
    /// Fault accounting (default for fault-free runs).
    pub fault: FaultImpact,
}

/// Dense index of a directed link in the run's [`LinkTable`]. Within
/// one run a `LinkId` names one `(u, v)` pair *forever* — slots are
/// never recycled for a different pair (see [`LinkTable`]), so compiled
/// routes and in-flight `Depart` events can never be misdirected by
/// churn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct LinkId(u32);

/// Slab index of an in-flight packet (see [`PktSlab`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PktId(u32);

/// An in-flight packet, slab-resident. Events reference it by [`PktId`]
/// so the event queue moves 8-byte payloads, not fat packet structs.
struct Pkt {
    bytes: u32,
    created_s: f64,
    /// The node sequence of the compiled route (for arrival-node and
    /// delivery checks).
    nodes: Rc<[NodeId]>,
    /// The per-hop link indices of the compiled route: hop `h` forwards
    /// on `links[h]`, by array index instead of hashing a node pair.
    links: Rc<[LinkId]>,
    hop: u32,
    /// Index into the flow list, for per-flow latency telemetry.
    flow: u32,
}

/// A route compiled against the run's [`LinkTable`]: the planner's node
/// path plus the [`LinkId`] of every hop. Compiled once per (re)plan;
/// packets carry `Rc` clones of both arrays.
#[derive(Clone)]
struct CompiledRoute {
    nodes: Rc<[NodeId]>,
    links: Rc<[LinkId]>,
}

/// Simulation events. Every variant is ≤ 8 bytes of payload — packet
/// state lives in the [`PktSlab`] — so the schedulers move 24-byte
/// `(time, seq, event)` entries through the hot loop.
enum Ev {
    Inject(u32),
    /// Demand-tick boundary `k`: retire batch `k-1`, activate batch `k`.
    DemandTick(u32),
    /// Transmission of the head-of-queue packet on a link completed.
    Depart(LinkId),
    /// Packet finished propagating to its next hop.
    HopArrive(PktId),
    Replan,
    /// Topology refresh (dynamic mode): satellites have moved.
    Resnapshot,
    /// A fault-plan event (index into the event list) takes effect.
    Fault(u32),
}

struct Link {
    capacity_bps: f64,
    latency_s: f64,
    queue: VecDeque<PktId>,
    occupancy_bytes: u64,
    busy: bool,
    bits_sent: f64, // since `measured_since_s` (for utilization samples)
    /// Start of the current measurement window: link creation or the
    /// last replan reset — the divisor for utilization samples.
    measured_since_s: f64,
    util_ewma: f64,
    /// Whether the link currently exists in the topology. A dead slot
    /// is what a missing `(u, v)` key was in the old hash-map design:
    /// forwards onto it drop, pending `Depart`s fizzle.
    alive: bool,
    /// Mirror of the old `fault_removed` set membership: set when fault
    /// surgery removes the pair, cleared only by a fault *restore*
    /// (resnapshot revival intentionally leaves it, exactly like the
    /// set used to).
    fault_removed: bool,
}

/// Slab of in-flight packets with a freelist. A packet is referenced by
/// exactly one owner at a time — one link queue entry or one `HopArrive`
/// event — so `free` after delivery/drop cannot double-release.
#[derive(Default)]
struct PktSlab {
    pkts: Vec<Pkt>,
    free: Vec<u32>,
    /// Most packets ever in flight at once (`netsim.engine.slab_high_water`).
    high_water: usize,
}

impl PktSlab {
    fn alloc(&mut self, pkt: Pkt) -> PktId {
        let id = match self.free.pop() {
            Some(i) => {
                self.pkts[i as usize] = pkt;
                PktId(i)
            }
            None => {
                self.pkts.push(pkt);
                PktId((self.pkts.len() - 1) as u32)
            }
        };
        self.high_water = self.high_water.max(self.pkts.len() - self.free.len());
        id
    }

    #[inline]
    fn get(&self, id: PktId) -> &Pkt {
        &self.pkts[id.0 as usize]
    }

    #[inline]
    fn get_mut(&mut self, id: PktId) -> &mut Pkt {
        &mut self.pkts[id.0 as usize]
    }

    /// Return a slot to the freelist. The stale `Pkt` (and its route
    /// `Rc`s) stays in place until the slot is reused — a deliberate
    /// trade: no drop work on the hot path.
    #[inline]
    fn free(&mut self, id: PktId) {
        self.free.push(id.0);
    }
}

/// The dense link table: every directed link the run has *ever* seen
/// occupies one slot, addressed by [`LinkId`]. The `(u, v) → LinkId`
/// index is **append-only**: a pair maps to the same slot for the whole
/// run, and topology churn flips the slot's `alive` flag (re-created
/// links *revive* their old slot with fresh state) instead of ever
/// reusing a slot for a different pair.
///
/// # Why pair-stable slots preserve hash-map semantics bit for bit
///
/// The old design keyed links by `(u, v)` in a `HashMap`; events and
/// routes named links by pair. Its observable semantics at every
/// lookup site were: *the pair is present* (act on its current state) or
/// *absent* (drop / fizzle). With pair-stable slots, `alive` is
/// exactly pair-presence — including the corner where a link vanishes
/// and the same pair is re-created while a stale `Depart` is still in
/// flight: the old code would find the *new* link under the old key and
/// pop its queue early, and the revived slot reproduces precisely that.
/// A freelist design would instead let the stale `Depart` act on an
/// unrelated pair's link — a silent divergence this design makes
/// impossible by construction.
struct LinkTable {
    slots: Vec<Link>,
    /// Pair of each slot (parallel to `slots`).
    pairs: Vec<(NodeId, NodeId)>,
    /// Append-only pair index; values are stable for the whole run.
    index: HashMap<(NodeId, NodeId), LinkId>,
    /// Number of alive slots — the old `links.len()`.
    alive_count: usize,
}

impl LinkTable {
    fn new() -> Self {
        Self {
            slots: Vec::new(),
            pairs: Vec::new(),
            index: HashMap::new(),
            alive_count: 0,
        }
    }

    #[inline]
    fn link(&self, id: LinkId) -> &Link {
        &self.slots[id.0 as usize]
    }

    #[inline]
    fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.slots[id.0 as usize]
    }

    /// The slot for `pair`, allocating a dead one on first sight.
    /// (Compilation of a freshly planned route only ever sees alive
    /// pairs — the table is synced to the graph before planning — but a
    /// dead allocation is still semantically exact: it is the "absent
    /// key", and forwards onto it drop.)
    fn id_for(&mut self, pair: (NodeId, NodeId)) -> LinkId {
        if let Some(&id) = self.index.get(&pair) {
            return id;
        }
        let id = LinkId(self.slots.len() as u32);
        self.slots.push(Link {
            capacity_bps: 0.0,
            latency_s: 0.0,
            queue: VecDeque::new(),
            occupancy_bytes: 0,
            busy: false,
            bits_sent: 0.0,
            measured_since_s: 0.0,
            util_ewma: 0.0,
            alive: false,
            fault_removed: false,
        });
        self.pairs.push(pair);
        self.index.insert(pair, id);
        id
    }

    /// Bring `pair` alive with fresh-link state (the old
    /// `insert(fresh_link(..))`): empty queue, EWMA reset, measurement
    /// window starting now. Like the map insert it replaces, this also
    /// covers overwriting a still-alive link (a fault restore can race a
    /// resnapshot revival): the old queue's packets are discarded
    /// uncounted, exactly as the dropped map entry's were. Preserves
    /// `fault_removed` — the old design's fault set was independent of
    /// the link map.
    fn revive(
        &mut self,
        pair: (NodeId, NodeId),
        capacity_bps: f64,
        latency_s: f64,
        now_s: f64,
        slab: &mut PktSlab,
    ) {
        let id = self.id_for(pair);
        if !self.slots[id.0 as usize].alive {
            self.alive_count += 1;
        }
        let link = &mut self.slots[id.0 as usize];
        for pid in link.queue.drain(..) {
            slab.free.push(pid.0);
        }
        link.capacity_bps = capacity_bps;
        link.latency_s = latency_s;
        link.occupancy_bytes = 0;
        link.busy = false;
        link.bits_sent = 0.0;
        link.measured_since_s = now_s;
        link.util_ewma = 0.0;
        link.alive = true;
    }

    /// Kill `pair`'s slot if alive (the old `remove(&pair)`), freeing
    /// its queued packets into `slab`. Returns how many packets died
    /// with the queue, or `None` if the pair was not alive.
    fn kill(&mut self, pair: (NodeId, NodeId), slab: &mut PktSlab) -> Option<u64> {
        let &id = self.index.get(&pair)?;
        let link = &mut self.slots[id.0 as usize];
        if !link.alive {
            return None;
        }
        let queued = link.queue.len() as u64;
        for pid in link.queue.drain(..) {
            slab.free.push(pid.0);
        }
        link.occupancy_bytes = 0;
        link.busy = false;
        link.alive = false;
        self.alive_count -= 1;
        Some(queued)
    }

    /// Alive `(pair, id)` entries in sorted pair order — the
    /// deterministic iteration the replan path needs (the old code
    /// sorted the hash map's keys for the same reason).
    fn sorted_alive(&self) -> Vec<((NodeId, NodeId), LinkId)> {
        let mut out: Vec<((NodeId, NodeId), LinkId)> = self
            .index
            .iter()
            .filter(|(_, &id)| self.slots[id.0 as usize].alive)
            .map(|(&pair, &id)| (pair, id))
            .collect();
        out.sort_unstable();
        out
    }

    /// Sync the table to a fresh snapshot — the old `rebuild_links`:
    /// links present in both keep queue/EWMA (capacity and latency
    /// refreshed), links only in the graph come up fresh, links only in
    /// the table die and lose their queues. Returns
    /// `(links_kept, links_churned, packets_dropped)`.
    fn rebuild_sync(&mut self, graph: &Graph, now: f64, slab: &mut PktSlab) -> (u64, u64, u64) {
        let preexisting = self.slots.len();
        let mut seen = vec![false; preexisting];
        let mut kept = 0u64;
        let mut churned = 0u64;
        for u in 0..graph.node_count() {
            for e in graph.edges(u) {
                let id = self.id_for((NodeId(u), e.to));
                if (id.0 as usize) < preexisting {
                    seen[id.0 as usize] = true;
                }
                if self.slots[id.0 as usize].alive {
                    kept += 1;
                    let link = &mut self.slots[id.0 as usize];
                    link.capacity_bps = e.capacity_bps;
                    link.latency_s = e.latency_s;
                } else {
                    churned += 1;
                    self.revive((NodeId(u), e.to), e.capacity_bps, e.latency_s, now, slab);
                }
            }
        }
        let mut lost = 0u64;
        for (idx, &was_seen) in seen.iter().enumerate() {
            if self.slots[idx].alive && !was_seen {
                churned += 1;
                lost += self
                    .kill(self.pairs[idx], slab)
                    .expect("alive slot kills cleanly");
            }
        }
        (kept, churned, lost)
    }

    /// Compile a planner path into per-hop [`LinkId`]s.
    fn compile(&mut self, nodes: Vec<NodeId>) -> CompiledRoute {
        let links: Vec<LinkId> = nodes
            .windows(2)
            .map(|w| self.id_for((w[0], w[1])))
            .collect();
        CompiledRoute {
            nodes: Rc::from(nodes.into_boxed_slice()),
            links: Rc::from(links.into_boxed_slice()),
        }
    }
}

/// Where the simulation gets its topology from.
#[derive(Clone, Copy)]
enum TopologySource<'a> {
    /// One frozen snapshot for the whole run.
    Static(&'a Graph),
    /// Fresh snapshots on demand, every `interval_s` seconds.
    Provider {
        provider: &'a dyn TopologyProvider,
        interval_s: f64,
    },
    /// A precomputed timeline replayed by delta application.
    Timeline(&'a TopologyTimeline),
}

/// The packet-level simulation driver: one builder for every
/// combination of routing mode, fault plan, and topology source that
/// used to be a separate `run_netsim*` entry point.
///
/// ```
/// use openspace_core::netsim::{FlowSpec, NetSim, NetSimConfig, TrafficKind};
/// use openspace_net::topology::{Graph, LinkTech};
///
/// let mut g = Graph::new(2, 0);
/// g.add_bidirectional(0, 1, 0.002, 1e6, 0, 0, LinkTech::Rf);
/// let flows = [FlowSpec::new(0, 1, 1e5, 1_500, TrafficKind::Cbr)];
/// let report = NetSim::new(NetSimConfig::default())
///     .with_snapshot(&g)
///     .run(&flows)
///     .unwrap();
/// assert!(report.delivery_ratio > 0.99);
/// ```
///
/// Exactly one topology source must be set before
/// [`run`](Self::run) — [`with_snapshot`](Self::with_snapshot),
/// [`with_provider`](Self::with_provider), or
/// [`with_timeline`](Self::with_timeline); setting another replaces the
/// previous one. Faults ([`with_faults`](Self::with_faults)) compose
/// with any source.
#[derive(Clone, Copy)]
pub struct NetSim<'a> {
    cfg: NetSimConfig,
    topology: Option<TopologySource<'a>>,
    events: &'a [TopologyEvent],
    demand: Option<&'a DemandWorkload>,
}

impl<'a> NetSim<'a> {
    /// A driver with the given config and no topology source yet.
    pub fn new(cfg: NetSimConfig) -> Self {
        Self {
            cfg,
            topology: None,
            events: &[],
            demand: None,
        }
    }

    /// Simulate on one static topology snapshot. The graph supplies
    /// topology, capacities and latencies; queues and measured loads
    /// live inside the simulator.
    pub fn with_snapshot(mut self, graph: &'a Graph) -> Self {
        self.topology = Some(TopologySource::Static(graph));
        self
    }

    /// Simulate over a *moving* constellation: `provider` supplies
    /// fresh snapshots every `resnapshot_interval_s`, modeling the
    /// "rapidly changing network topology" of the paper's Figure 1.
    /// Links that persist across a refresh keep their queues; packets
    /// queued on a vanished link are dropped (the handover cost of ISL
    /// churn, counted under `netsim.resnapshot.packets_dropped`), and
    /// all routes are recomputed on the new snapshot.
    pub fn with_provider(
        mut self,
        provider: &'a dyn TopologyProvider,
        resnapshot_interval_s: f64,
    ) -> Self {
        self.topology = Some(TopologySource::Provider {
            provider,
            interval_s: resnapshot_interval_s,
        });
        self
    }

    /// Simulate over a precomputed [`TopologyTimeline`]: behaves
    /// exactly like [`with_provider`](Self::with_provider) at the
    /// timeline's step, but each refresh *applies the precomputed
    /// delta* instead of rebuilding the snapshot — bit-identical
    /// reports, a fraction of the work. The timeline must start at
    /// `t = 0` and cover the configured duration.
    pub fn with_timeline(mut self, timeline: &'a TopologyTimeline) -> Self {
        self.topology = Some(TopologySource::Timeline(timeline));
        self
    }

    /// Consume a fault plan during the run: `events` is the
    /// time-ordered output of
    /// [`FaultPlan::compile`](openspace_sim::fault::FaultPlan::compile).
    /// Failed links lose their queued packets; packets in flight toward
    /// a dead node are lost on arrival; flows whose path broke are
    /// re-routed on the degraded topology (in both routing modes —
    /// failure detection is not congestion adaptation). Recoveries
    /// restore links with empty queues. An empty stream changes
    /// nothing, bit for bit.
    pub fn with_faults(mut self, events: &'a [TopologyEvent]) -> Self {
        self.events = events;
        self
    }

    /// Attach a time-varying demand workload: each batch in `demand`
    /// activates at its tick boundary (retiring the previous batch)
    /// with fresh arrival phases, on top of whatever base `flows` the
    /// run was given. With a demand workload attached, the base flow
    /// list may be empty. Demand flows draw their arrival RNG from the
    /// same per-flow substream family as base flows (stable global
    /// indices), so runs are bit-reproducible for any tick content.
    pub fn with_demand(mut self, demand: &'a DemandWorkload) -> Self {
        self.demand = Some(demand);
        self
    }

    /// Run the simulation.
    ///
    /// Fails with [`ConfigError`] on a missing topology source, empty
    /// flows (unless a non-empty demand workload is attached),
    /// out-of-range nodes, non-positive
    /// durations/rates/intervals, or a timeline that starts after
    /// `t = 0` or ends before the configured duration.
    pub fn run(&self, flows: &[FlowSpec]) -> Result<NetSimReport, ConfigError> {
        self.run_recorded(flows, &mut NullRecorder)
    }

    /// [`run`](Self::run) with telemetry: packet counters
    /// (`netsim.generated` / `delivered` / `dropped` / `unroutable`),
    /// the end-to-end latency histogram (`netsim.latency_s`, plus a
    /// `netsim.flow.<i>.latency_s` histogram per flow when the recorder
    /// is enabled), re-plan / re-snapshot counters
    /// (`netsim.resnapshot.links_kept` / `links_churned` /
    /// `packets_dropped`, and `netsim.timeline.deltas_applied` on the
    /// timeline path), the fault block when faults are present
    /// (`netsim.fault.*`), routing work from the underlying searches,
    /// and the engine's event count and queue-depth high-water mark.
    /// The returned report is bit-identical to [`run`](Self::run)'s —
    /// recording never perturbs the simulation.
    pub fn run_recorded(
        &self,
        flows: &[FlowSpec],
        rec: &mut dyn Recorder,
    ) -> Result<NetSimReport, ConfigError> {
        let source = self.topology.ok_or(ConfigError::Empty {
            field: "netsim.topology",
        })?;
        match source {
            TopologySource::Static(_) => {}
            TopologySource::Provider { interval_s, .. } => {
                require_positive("resnapshot_interval_s", interval_s)?;
            }
            TopologySource::Timeline(tl) => {
                if tl.start_s() != 0.0 {
                    return Err(ConfigError::OutOfRange {
                        field: "timeline.start_s",
                        value: tl.start_s(),
                        min: 0.0,
                        max: 0.0,
                    });
                }
                // Replay the event-schedule accumulation to count the
                // resnapshots this run will fire; the timeline must
                // hold a delta for each.
                let mut needed = 0usize;
                let mut t = tl.step_s();
                while t <= self.cfg.duration_s {
                    needed += 1;
                    let next = t + tl.step_s();
                    if next == t {
                        break; // fp-stalled accumulation cannot fire more events
                    }
                    t = next;
                }
                if tl.delta_count() < needed {
                    return Err(ConfigError::IndexOutOfRange {
                        field: "timeline.delta_count",
                        index: needed,
                        len: tl.delta_count(),
                    });
                }
            }
        }
        run_netsim_inner(source, flows, &self.cfg, self.events, self.demand, rec)
    }
}

/// Run the simulation on a static topology snapshot.
#[deprecated(note = "use `NetSim::new(cfg).with_snapshot(graph).run(flows)`")]
pub fn run_netsim(
    graph: &Graph,
    flows: &[FlowSpec],
    cfg: &NetSimConfig,
) -> Result<NetSimReport, ConfigError> {
    NetSim::new(*cfg).with_snapshot(graph).run(flows)
}

/// [`run_netsim`] with telemetry.
#[deprecated(note = "use `NetSim::new(cfg).with_snapshot(graph).run_recorded(flows, rec)`")]
pub fn run_netsim_recorded(
    graph: &Graph,
    flows: &[FlowSpec],
    cfg: &NetSimConfig,
    rec: &mut dyn Recorder,
) -> Result<NetSimReport, ConfigError> {
    NetSim::new(*cfg)
        .with_snapshot(graph)
        .run_recorded(flows, rec)
}

/// Run the simulation with a fault plan.
#[deprecated(note = "use `NetSim::new(cfg).with_snapshot(graph).with_faults(events).run(flows)`")]
pub fn run_netsim_faulted(
    graph: &Graph,
    flows: &[FlowSpec],
    cfg: &NetSimConfig,
    events: &[TopologyEvent],
) -> Result<NetSimReport, ConfigError> {
    NetSim::new(*cfg)
        .with_snapshot(graph)
        .with_faults(events)
        .run(flows)
}

/// [`run_netsim_faulted`] with telemetry.
#[deprecated(
    note = "use `NetSim::new(cfg).with_snapshot(graph).with_faults(events).run_recorded(flows, rec)`"
)]
pub fn run_netsim_faulted_recorded(
    graph: &Graph,
    flows: &[FlowSpec],
    cfg: &NetSimConfig,
    events: &[TopologyEvent],
    rec: &mut dyn Recorder,
) -> Result<NetSimReport, ConfigError> {
    NetSim::new(*cfg)
        .with_snapshot(graph)
        .with_faults(events)
        .run_recorded(flows, rec)
}

/// Run the simulation over a moving constellation.
#[deprecated(
    note = "use `NetSim::new(cfg).with_provider(&provider, interval).run(flows)` \
            (or `with_timeline` for precomputed dynamics)"
)]
pub fn run_netsim_dynamic(
    topology_at: &dyn Fn(f64) -> Graph,
    resnapshot_interval_s: f64,
    flows: &[FlowSpec],
    cfg: &NetSimConfig,
) -> Result<NetSimReport, ConfigError> {
    NetSim::new(*cfg)
        .with_provider(&topology_at, resnapshot_interval_s)
        .run(flows)
}

/// [`run_netsim_dynamic`] with telemetry.
#[deprecated(
    note = "use `NetSim::new(cfg).with_provider(&provider, interval).run_recorded(flows, rec)` \
            (or `with_timeline` for precomputed dynamics)"
)]
pub fn run_netsim_dynamic_recorded(
    topology_at: &dyn Fn(f64) -> Graph,
    resnapshot_interval_s: f64,
    flows: &[FlowSpec],
    cfg: &NetSimConfig,
    rec: &mut dyn Recorder,
) -> Result<NetSimReport, ConfigError> {
    NetSim::new(*cfg)
        .with_provider(&topology_at, resnapshot_interval_s)
        .run_recorded(flows, rec)
}

fn validate(
    graph: &Graph,
    flows: &[FlowSpec],
    cfg: &NetSimConfig,
    events: &[TopologyEvent],
) -> Result<(), ConfigError> {
    if flows.is_empty() {
        return Err(ConfigError::Empty { field: "flows" });
    }
    require_positive("duration_s", cfg.duration_s)?;
    let n = graph.node_count();
    for f in flows {
        for (field, node) in [("flow.src", f.src), ("flow.dst", f.dst)] {
            if node.0 >= n {
                return Err(ConfigError::IndexOutOfRange {
                    field,
                    index: node.0,
                    len: n,
                });
            }
        }
        require_positive("flow.rate_bps", f.rate_bps)?;
        if f.packet_bytes == 0 {
            return Err(ConfigError::NonPositive {
                field: "flow.packet_bytes",
                value: 0.0,
            });
        }
        if let TrafficKind::OnOff {
            mean_on_s,
            mean_off_s,
        } = f.kind
        {
            require_positive("flow.mean_on_s", mean_on_s)?;
            require_positive("flow.mean_off_s", mean_off_s)?;
        }
    }
    if let RoutingMode::Adaptive { replan_interval_s } = cfg.routing {
        require_positive("replan_interval_s", replan_interval_s)?;
    }
    for ev in events {
        let check = |node: NodeId| -> Result<(), ConfigError> {
            if node.0 >= n {
                return Err(ConfigError::IndexOutOfRange {
                    field: "fault_event.node",
                    index: node.0,
                    len: n,
                });
            }
            Ok(())
        };
        match ev.kind {
            TopologyEventKind::NodeDown(a) | TopologyEventKind::NodeUp(a) => check(a)?,
            TopologyEventKind::LinkDown(a, b) | TopologyEventKind::LinkUp(a, b) => {
                check(a)?;
                check(b)?;
            }
            TopologyEventKind::OperatorWithdrawn(_) => {}
        }
    }
    Ok(())
}

fn run_netsim_inner(
    source: TopologySource<'_>,
    flows: &[FlowSpec],
    cfg: &NetSimConfig,
    events: &[TopologyEvent],
    demand: Option<&DemandWorkload>,
    rec: &mut dyn Recorder,
) -> Result<NetSimReport, ConfigError> {
    // One monomorphized simulation core per engine: the scheduler is a
    // generic parameter (not a trait object) so the hot loop's
    // schedule/pop calls inline. Both instantiations run the same code
    // over the same total event order, so their reports are
    // bit-identical (pinned by `tests/tests/engine_equivalence.rs`).
    match cfg.engine {
        EngineKind::Heap => {
            run_netsim_core::<EventQueue<Ev>>(source, flows, cfg, events, demand, rec)
        }
        EngineKind::Calendar => {
            run_netsim_core::<CalendarQueue<Ev>>(source, flows, cfg, events, demand, rec)
        }
    }
}

fn run_netsim_core<S: Scheduler<Ev> + Default>(
    source: TopologySource<'_>,
    flows: &[FlowSpec],
    cfg: &NetSimConfig,
    events: &[TopologyEvent],
    demand: Option<&DemandWorkload>,
    rec: &mut dyn Recorder,
) -> Result<NetSimReport, ConfigError> {
    let graph = match source {
        TopologySource::Static(g) => g.clone(),
        TopologySource::Provider { provider, .. } => provider.topology_at(0.0),
        TopologySource::Timeline(tl) => tl.base().clone(),
    };
    let graph = &graph;
    // Base flows plus demand batches, concatenated with stable global
    // indices: flow `i` always draws `SimRng::substream(cfg.seed, i)`
    // no matter when (or whether) its batch activates, so reports are
    // bit-reproducible for any demand content.
    let base_count = flows.len();
    let mut all_flows: Vec<FlowSpec> = flows.to_vec();
    let mut demand_ranges: Vec<(f64, std::ops::Range<usize>)> = Vec::new();
    if let Some(demand) = demand {
        for (t, batch) in demand.ticks() {
            let start = all_flows.len();
            all_flows.extend_from_slice(batch);
            demand_ranges.push((*t, start..all_flows.len()));
        }
    }
    let flows: &[FlowSpec] = &all_flows;
    validate(graph, flows, cfg, events)?;
    let resnapshot_interval = match source {
        TopologySource::Static(_) => None,
        TopologySource::Provider { interval_s, .. } => Some(interval_s),
        TopologySource::Timeline(tl) => Some(tl.step_s()),
    };
    // The timeline path patches a *pristine* mirror of the provider's
    // snapshots — never touched by load writes or fault surgery — so
    // `pristine.clone()` at a resnapshot reproduces, bit for bit, the
    // `provider.topology_at(now)` assignment of the rebuild path.
    let mut pristine: Option<Graph> = match source {
        TopologySource::Timeline(tl) => Some(tl.base().clone()),
        _ => None,
    };
    // Cursor into the timeline's delta sequence: the k-th resnapshot
    // event applies delta k (coverage validated by the driver).
    let mut tick: usize = 0;

    // Per-flow histogram keys are only materialized when someone is
    // listening — a NullRecorder run never formats a string — and even
    // then lazily, on a flow's first delivery: a million-flow demand
    // run allocates strings only for flows that actually deliver.
    let mut flow_latency_keys: Vec<Option<String>> = if rec.enabled() {
        vec![None; flows.len()]
    } else {
        Vec::new()
    };

    // Packet slab and the dense link table (see their docs for the
    // equivalence argument vs the old `HashMap<(NodeId, NodeId), Link>`).
    let mut slab = PktSlab::default();
    let mut table = LinkTable::new();
    for u in 0..graph.node_count() {
        for e in graph.edges(u) {
            table.revive(
                (NodeId(u), e.to),
                e.capacity_bps,
                e.latency_s,
                0.0,
                &mut slab,
            );
        }
    }

    // All route computation goes through one batched planner: requests
    // are grouped by source, flows sharing a source share one
    // shortest-path tree, and the planner's scratch buffers persist
    // across replan/resnapshot/fault events. Every recompute site
    // invalidates the planner's tree cache first (loads or topology
    // changed); the recorder is threaded through so route work counts
    // toward `routing.recomputes` / `routing.nodes_visited` and the
    // `routing.planner.*` counters.
    let mut planner = RoutePlanner::new();
    let flow_idxs: Vec<usize> = (0..flows.len()).collect();
    // Initial routes: proactive latency paths for every flow, compiled
    // to LinkId form against the table.
    let mut work_graph = graph.clone();
    let mut routes: Vec<Option<CompiledRoute>> = plan_flow_routes(
        &mut planner,
        &work_graph,
        &mut table,
        flows,
        &flow_idxs,
        false,
        rec,
    );

    // Arrival processes.
    let mut rngs: Vec<SimRng> = (0..flows.len())
        .map(|i| SimRng::substream(cfg.seed, i as u64))
        .collect();

    // Activation flags and per-flow ON-period horizons (on/off flows
    // only). Base flows start active at t = 0; demand-batch flows
    // activate at their tick boundary and retire at the next one.
    let mut active: Vec<bool> = (0..flows.len()).map(|i| i < base_count).collect();
    let mut on_until: Vec<f64> = vec![0.0; flows.len()];

    let mut q: S = S::default();
    for i in 0..base_count {
        let at = start_flow(&flows[i], &mut rngs[i], 0.0, &mut on_until[i]);
        q.schedule(at, Ev::Inject(i as u32));
    }
    let replan_interval = match cfg.routing {
        RoutingMode::Adaptive { replan_interval_s } => {
            q.schedule(replan_interval_s, Ev::Replan);
            Some(replan_interval_s)
        }
        RoutingMode::Proactive => None,
    };
    if let Some(interval) = resnapshot_interval {
        q.schedule(interval, Ev::Resnapshot);
    }
    for (idx, ev) in events.iter().enumerate() {
        if ev.at_s < cfg.duration_s {
            q.schedule(ev.at_s.max(0.0), Ev::Fault(idx as u32));
        }
    }
    for (k, (t, _)) in demand_ranges.iter().enumerate() {
        if *t < cfg.duration_s {
            q.schedule(*t, Ev::DemandTick(k as u32));
        }
    }

    let mut generated = 0u64;
    let mut delivered = 0u64;
    let mut dropped = 0u64;
    let mut unroutable = 0u64;
    let mut latency = Summary::new();
    let mut max_util: f64 = 0.0;

    // Fault machinery.
    let mut tracker = OutageTracker::new();
    let mut fault = FaultImpact::default();
    let mut down_nodes: HashSet<NodeId> = HashSet::new();
    let mut down_since: HashMap<NodeId, f64> = HashMap::new();
    let mut downtime_total = 0.0f64;
    let mut repairs = 0u64;
    let mut repair_total = 0.0f64;
    let mut reassoc_latency_total = 0.0f64;
    let mut route_lost_at: Vec<Option<f64>> = vec![None; flows.len()];

    q.run_until(cfg.duration_s, |q, now, ev| match ev {
        Ev::Inject(i) => {
            let i = i as usize;
            if !active[i] {
                return; // flow retired at a demand tick: stop injecting
            }
            let f = &flows[i];
            generated += 1;
            if let Some(route) = &routes[i] {
                let pid = slab.alloc(Pkt {
                    bytes: f.packet_bytes,
                    created_s: now,
                    nodes: Rc::clone(&route.nodes),
                    links: Rc::clone(&route.links),
                    hop: 0,
                    flow: i as u32,
                });
                forward(
                    q,
                    &mut table,
                    &mut slab,
                    pid,
                    now,
                    cfg.queue_capacity_bytes,
                    &mut dropped,
                    &mut fault.packets_lost,
                );
            } else {
                unroutable += 1;
            }
            // Next arrival.
            let mean_gap = f.packet_bytes as f64 * 8.0 / f.rate_bps;
            let gap = match f.kind {
                TrafficKind::Cbr => mean_gap,
                TrafficKind::Poisson => rngs[i].exponential(1.0 / mean_gap),
                TrafficKind::OnOff {
                    mean_on_s,
                    mean_off_s,
                } => {
                    // Next slot one peak-interval on; if that falls past
                    // the ON horizon, jump OFF gaps until a slot lands
                    // inside an ON period — the first packet of each ON
                    // period goes out the instant the period opens
                    // (mirroring `sim::traffic::OnOffSource`).
                    let mut at = now + mean_gap;
                    while at > on_until[i] {
                        let off = rngs[i].exponential(1.0 / mean_off_s);
                        let on = rngs[i].exponential(1.0 / mean_on_s);
                        at = on_until[i] + off;
                        on_until[i] = at + on;
                    }
                    at - now
                }
            };
            q.schedule(now + gap, Ev::Inject(i as u32));
        }
        Ev::DemandTick(k) => {
            let k = k as usize;
            // Retire the previous batch (its in-flight packets still
            // drain), then activate this one with fresh phases.
            if k > 0 {
                let (_, prev) = &demand_ranges[k - 1];
                let mut retired = 0u64;
                for i in prev.clone() {
                    if active[i] {
                        active[i] = false;
                        retired += 1;
                    }
                }
                rec.add("netsim.demand.flows_retired", retired);
            }
            let (_, range) = &demand_ranges[k];
            for i in range.clone() {
                active[i] = true;
                let at = start_flow(&flows[i], &mut rngs[i], now, &mut on_until[i]);
                q.schedule(at, Ev::Inject(i as u32));
            }
            rec.add("netsim.demand.ticks", 1);
            rec.add("netsim.demand.flows_activated", range.len() as u64);
        }
        Ev::Depart(lid) => {
            // The link can vanish (fault, resnapshot) between the Depart
            // being scheduled and firing; its queue died with it. A dead
            // slot is the old map's missing key.
            let link = table.link_mut(lid);
            if !link.alive {
                return;
            }
            let Some(pid) = link.queue.pop_front() else {
                return;
            };
            let bytes = slab.get(pid).bytes;
            // Exact subtraction: occupancy is the byte-sum of the queue
            // by construction; a shortfall is an accounting bug that
            // must surface, not saturate away.
            debug_assert!(
                link.occupancy_bytes >= bytes as u64,
                "link occupancy {} under departing packet size {}",
                link.occupancy_bytes,
                bytes
            );
            link.occupancy_bytes -= bytes as u64;
            link.bits_sent += bytes as f64 * 8.0;
            let arrive_at = now + link.latency_s;
            // Start the next transmission if any. Scheduled *before* the
            // HopArrive: the relative seq numbers decide tie order when
            // serialization equals propagation time.
            if let Some(&next) = link.queue.front() {
                let tx = slab.get(next).bytes as f64 * 8.0 / link.capacity_bps;
                q.schedule(now + tx, Ev::Depart(lid));
            } else {
                link.busy = false;
            }
            q.schedule(arrive_at, Ev::HopArrive(pid));
        }
        Ev::HopArrive(pid) => {
            // The arrival node is the hop's endpoint, `nodes[hop + 1]` —
            // identical to the node the old fat event carried, since
            // planner paths are simple (each node appears once).
            let (hop, node) = {
                let p = slab.get(pid);
                (p.hop, p.nodes[p.hop as usize + 1])
            };
            if down_nodes.contains(&node) {
                // The receiver died while the packet was in flight.
                dropped += 1;
                fault.packets_lost += 1;
                slab.free(pid);
                return;
            }
            let p = slab.get_mut(pid);
            p.hop = hop + 1;
            if p.hop as usize + 1 == p.nodes.len() {
                let lat = now - p.created_s;
                let flow = p.flow as usize;
                slab.free(pid);
                delivered += 1;
                latency.add(lat);
                if rec.enabled() {
                    rec.observe("netsim.latency_s", lat);
                    let key = flow_latency_keys[flow]
                        .get_or_insert_with(|| format!("netsim.flow.{flow}.latency_s"));
                    rec.observe(key, lat);
                }
            } else {
                forward(
                    q,
                    &mut table,
                    &mut slab,
                    pid,
                    now,
                    cfg.queue_capacity_bytes,
                    &mut dropped,
                    &mut fault.packets_lost,
                );
            }
        }
        Ev::Replan => {
            let Some(interval) = replan_interval else {
                return; // replan only ticks in adaptive mode
            };
            // Measure utilization, fold into EWMA, push into the graph.
            // The per-link effects are independent today, but iterate in
            // sorted pair order anyway (the table's pair index is a
            // `HashMap` with a per-instance random hasher), so a future
            // non-commutative edit inside this loop cannot silently
            // break bit-reproducibility across processes.
            for ((u, v), lid) in table.sorted_alive() {
                let link = table.link_mut(lid);
                let util = link.bits_sent / interval / link.capacity_bps;
                // The report's max takes the raw sample (matching the
                // end-of-run sample); only the EWMA feeding
                // `Graph::set_load` is clamped, since a load fraction
                // must stay below 1.
                max_util = max_util.max(util);
                link.util_ewma = 0.5 * link.util_ewma + 0.5 * util.min(0.98);
                link.bits_sent = 0.0;
                link.measured_since_s = now;
                // A link can leave the topology between replans (contact
                // expiry on dynamic graphs); skip the stale entry
                // instead of dying inside the event loop.
                if work_graph.set_load(u, v, link.util_ewma.min(0.98)).is_err() {
                    continue;
                }
            }
            // Loads changed under the QoS weight: cached trees are stale.
            planner.invalidate();
            let fresh = plan_flow_routes(
                &mut planner,
                &work_graph,
                &mut table,
                flows,
                &flow_idxs,
                true,
                rec,
            );
            for (i, r) in fresh.into_iter().enumerate() {
                if let Some(r) = r {
                    routes[i] = Some(r);
                }
            }
            rec.add("netsim.replans", 1);
            q.schedule(now + interval, Ev::Replan);
        }
        Ev::Resnapshot => {
            let Some(interval) = resnapshot_interval else {
                return; // resnapshot only ticks in dynamic mode
            };
            let adaptive = replan_interval.is_some();
            match source {
                TopologySource::Static(_) => return, // unscheduled; unreachable
                TopologySource::Provider { provider, .. } => {
                    // Full rebuild: fresh snapshot, link state carried
                    // over by pair.
                    work_graph = provider.topology_at(now);
                    let (kept, churned, lost) = table.rebuild_sync(&work_graph, now, &mut slab);
                    dropped += lost;
                    rec.add("netsim.resnapshot.links_kept", kept);
                    rec.add("netsim.resnapshot.links_churned", churned);
                    rec.add("netsim.resnapshot.packets_dropped", lost);
                    // Recompute every route on the new topology.
                    planner.invalidate();
                }
                TopologySource::Timeline(tl) => {
                    let delta = tl
                        .delta(tick)
                        .expect("delta coverage validated before the run");
                    tick += 1;
                    let mirror = pristine
                        .as_mut()
                        .expect("timeline runs keep a pristine mirror");
                    mirror
                        .apply_delta(delta)
                        .expect("consecutive timeline deltas always chain");
                    rec.add("netsim.timeline.deltas_applied", 1);
                    if events.is_empty() {
                        // No fault surgery has touched the link table,
                        // so its alive pairs mirror the previous
                        // snapshot's edges exactly and the delta's edge
                        // views are a complete description of the churn:
                        // patch the table in place instead of rebuilding.
                        let removed = delta.edges_removed();
                        let added = delta.edges_added();
                        let kept = (table.alive_count - removed.len()) as u64;
                        let mut lost = 0u64;
                        for &(u, v) in &removed {
                            if let Some(queued) = table.kill((u, v), &mut slab) {
                                lost += queued;
                            }
                        }
                        dropped += lost;
                        for (u, e) in &added {
                            table.revive((*u, e.to), e.capacity_bps, e.latency_s, now, &mut slab);
                        }
                        for (u, e) in delta.edges_changed() {
                            if let Some(&id) = table.index.get(&(u, e.to)) {
                                let link = table.link_mut(id);
                                if link.alive {
                                    link.capacity_bps = e.capacity_bps;
                                    link.latency_s = e.latency_s;
                                }
                            }
                        }
                        rec.add("netsim.resnapshot.links_kept", kept);
                        rec.add(
                            "netsim.resnapshot.links_churned",
                            (removed.len() + added.len()) as u64,
                        );
                        rec.add("netsim.resnapshot.packets_dropped", lost);
                        work_graph = mirror.clone();
                        if adaptive {
                            // Loads were reset by the fresh work graph
                            // and cached trees were grown under the old
                            // loads: nothing can be kept.
                            planner.invalidate();
                        } else if !delta.is_empty() {
                            planner.retain_for_changed_rows(&delta.changed_nodes(), rec);
                        }
                        // Empty delta in proactive mode: the graph is
                        // bit-identical, every cached tree stays valid.
                    } else {
                        // Fault surgery may have removed links the
                        // fresh snapshot resurrects; fall back to the
                        // full pair-carrying rebuild (still skipping the
                        // from-orbital-state snapshot build).
                        work_graph = mirror.clone();
                        let (kept, churned, lost) = table.rebuild_sync(&work_graph, now, &mut slab);
                        dropped += lost;
                        rec.add("netsim.resnapshot.links_kept", kept);
                        rec.add("netsim.resnapshot.links_churned", churned);
                        rec.add("netsim.resnapshot.packets_dropped", lost);
                        planner.invalidate();
                    }
                }
            }
            routes = plan_flow_routes(
                &mut planner,
                &work_graph,
                &mut table,
                flows,
                &flow_idxs,
                adaptive,
                rec,
            );
            rec.add("netsim.resnapshots", 1);
            q.schedule(now + interval, Ev::Resnapshot);
        }
        Ev::Fault(idx) => {
            let event = &events[idx as usize];
            // Mutate the topology *before* any bookkeeping: events were
            // range-checked up front so application cannot fail here,
            // but if it ever did, returning first keeps `down_nodes` /
            // `down_since` consistent with the graph instead of
            // corrupting availability/MTTR accounting with a
            // half-applied event.
            let Ok(delta) = tracker.apply(&mut work_graph, event) else {
                return;
            };
            // Availability / MTTR bookkeeping from the (normalized)
            // event stream: Down/Up alternate per node.
            match event.kind {
                TopologyEventKind::NodeDown(n) => {
                    down_nodes.insert(n);
                    down_since.entry(n).or_insert(now);
                }
                TopologyEventKind::NodeUp(n) => {
                    down_nodes.remove(&n);
                    if let Some(t0) = down_since.remove(&n) {
                        let span = now - t0;
                        downtime_total += span;
                        repairs += 1;
                        repair_total += span;
                    }
                }
                _ => {}
            }
            fault.events_applied += 1;
            for &(u, v) in &delta.removed_links {
                // Mark first (the old `fault_removed.insert`), then kill:
                // the mark outlives the slot's death, so a later forward
                // onto the dead slot counts as a fault loss.
                let id = table.id_for((u, v));
                table.link_mut(id).fault_removed = true;
                if let Some(queued) = table.kill((u, v), &mut slab) {
                    dropped += queued;
                    fault.packets_lost += queued;
                }
            }
            for (u, e) in &delta.restored_links {
                let id = table.id_for((*u, e.to));
                table.link_mut(id).fault_removed = false;
                table.revive((*u, e.to), e.capacity_bps, e.latency_s, now, &mut slab);
            }
            if delta.is_empty() {
                return;
            }
            // Graceful degradation: flows whose path broke re-route on
            // the degraded topology immediately (failure detection);
            // flows that lost all connectivity re-associate when a
            // recovery gives them a route again. Broken flows are
            // re-planned in one batch — flows that lost the same access
            // satellite or gateway share a source, hence a tree.
            planner.invalidate();
            let adaptive = replan_interval.is_some();
            let broken_idxs: Vec<usize> = (0..flows.len())
                .filter(|&i| match &routes[i] {
                    Some(route) => route.links.iter().any(|&lid| !table.link(lid).alive),
                    None => true,
                })
                .collect();
            let fresh = plan_flow_routes(
                &mut planner,
                &work_graph,
                &mut table,
                flows,
                &broken_idxs,
                adaptive,
                rec,
            );
            for (&i, r) in broken_idxs.iter().zip(fresh) {
                let had_route = routes[i].is_some();
                routes[i] = r;
                match (&routes[i], route_lost_at[i]) {
                    (Some(_), Some(lost_at)) => {
                        fault.reassociations += 1;
                        reassoc_latency_total += now - lost_at;
                        route_lost_at[i] = None;
                    }
                    (Some(_), None) if had_route => {
                        // Immediate failover onto a surviving path.
                        fault.reassociations += 1;
                    }
                    (None, None) if had_route => {
                        route_lost_at[i] = Some(now);
                    }
                    _ => {}
                }
            }
        }
    });

    // Close availability accounting for still-open outages.
    for (_, t0) in down_since.drain() {
        downtime_total += cfg.duration_s - t0;
    }
    let node_time = cfg.duration_s * graph.node_count() as f64;
    fault.node_availability = if node_time > 0.0 {
        1.0 - downtime_total / node_time
    } else {
        1.0
    };
    fault.mttr_s = (repairs > 0).then(|| repair_total / repairs as f64);
    fault.mean_reassociation_latency_s =
        (fault.reassociations > 0).then(|| reassoc_latency_total / fault.reassociations as f64);

    // Final utilization sample: whatever accumulated since each link's
    // last reset (or its creation), divided by that actual window — not
    // the full run duration, which would dilute links created mid-run
    // (fault restores, resnapshots) or already sampled by a replan.
    for link in table.slots.iter().filter(|l| l.alive) {
        let window = cfg.duration_s - link.measured_since_s;
        if window > 0.0 {
            max_util = max_util.max(link.bits_sent / window / link.capacity_bps);
        }
    }

    // Run-level telemetry: totals, gauges, and the engine's own load
    // counters. Recorded after the loop so a run contributes one value
    // per key regardless of event interleaving.
    rec.add("netsim.generated", generated);
    rec.add("netsim.delivered", delivered);
    rec.add("netsim.dropped", dropped);
    rec.add("netsim.unroutable", unroutable);
    rec.gauge(
        "netsim.delivery_ratio",
        if generated > 0 {
            delivered as f64 / generated as f64
        } else {
            0.0
        },
    );
    rec.gauge_max("netsim.max_link_utilization", max_util);
    rec.add("engine.events_processed", q.processed());
    rec.gauge_max("engine.queue_depth_high_water", q.depth_high_water() as f64);
    // Engine internals: peak in-flight packets, and (calendar only)
    // wheel rebuilds. `bucket_resizes` is the one key that legitimately
    // differs between engines — equivalence suites filter it.
    rec.gauge_max("netsim.engine.slab_high_water", slab.high_water as f64);
    rec.add("netsim.engine.bucket_resizes", q.bucket_resizes());
    if !events.is_empty() {
        rec.add("netsim.fault.events_applied", fault.events_applied);
        rec.add("netsim.fault.packets_lost", fault.packets_lost);
        rec.add("netsim.fault.reassociations", fault.reassociations);
        rec.gauge("netsim.fault.node_availability", fault.node_availability);
    }

    let mean = latency.mean();
    let p95 = if latency.is_empty() {
        0.0
    } else {
        latency.p95()
    };
    Ok(NetSimReport {
        generated,
        delivered,
        dropped,
        unroutable,
        delivery_ratio: if generated > 0 {
            delivered as f64 / generated as f64
        } else {
            0.0
        },
        mean_latency_s: mean,
        p95_latency_s: p95,
        max_link_utilization: max_util,
        fault,
    })
}

/// Draw a flow's arrival phase (desynchronizing same-rate flows, as
/// the driver has always done for CBR) and, for on/off flows, the
/// first ON-period horizon. Returns the absolute time of the first
/// injection.
fn start_flow(f: &FlowSpec, rng: &mut SimRng, now: f64, on_until: &mut f64) -> f64 {
    let phase = rng.uniform() * f.packet_bytes as f64 * 8.0 / f.rate_bps;
    let at = now + phase;
    if let TrafficKind::OnOff { mean_on_s, .. } = f.kind {
        *on_until = at + rng.exponential(1.0 / mean_on_s);
    }
    at
}

/// Route the flows named by `idxs` through the batched planner in one
/// call: requests sharing a source share one shortest-path tree.
/// Proactive mode routes on pure propagation latency; adaptive mode on
/// the congestion weight with a best-effort QoS floor — both exactly the
/// per-flow costs this simulator has always used, so the extracted paths
/// are bit-for-bit those of the old one-search-per-flow code. Each path
/// is compiled into [`LinkId`] form against `table` as it is extracted —
/// no intermediate `Vec<Path>` is materialized.
fn plan_flow_routes(
    planner: &mut RoutePlanner,
    graph: &Graph,
    table: &mut LinkTable,
    flows: &[FlowSpec],
    idxs: &[usize],
    adaptive: bool,
    rec: &mut dyn Recorder,
) -> Vec<Option<CompiledRoute>> {
    let requests: Vec<(NodeId, NodeId)> =
        idxs.iter().map(|&i| (flows[i].src, flows[i].dst)).collect();
    if adaptive {
        planner.plan_qos_mapped_recorded(
            graph,
            &requests,
            &QosRequirement::best_effort(),
            12_000.0,
            |p| Some(table.compile(p.nodes)),
            rec,
        )
    } else {
        planner.plan_mapped_recorded(
            graph,
            &requests,
            latency_weight,
            |p| Some(table.compile(p.nodes)),
            rec,
        )
    }
}

/// Enqueue the packet on its next-hop link, starting transmission if
/// idle. One array index replaces the old per-hop pair hash.
#[allow(clippy::too_many_arguments)] // engine + link/packet state + loss counters, all load-bearing
fn forward<S: Scheduler<Ev>>(
    q: &mut S,
    table: &mut LinkTable,
    slab: &mut PktSlab,
    pid: PktId,
    now: f64,
    queue_capacity_bytes: u64,
    dropped: &mut u64,
    lost_to_faults: &mut u64,
) {
    let (bytes, lid) = {
        let p = slab.get(pid);
        (p.bytes, p.links[p.hop as usize])
    };
    let link = table.link_mut(lid);
    if !link.alive {
        // Route references a vanished link (possible after replans on a
        // changed snapshot, or right after a fault); count as a drop.
        *dropped += 1;
        if link.fault_removed {
            *lost_to_faults += 1;
        }
        slab.free(pid);
        return;
    }
    if link.occupancy_bytes + bytes as u64 > queue_capacity_bytes {
        *dropped += 1;
        slab.free(pid);
        return;
    }
    link.occupancy_bytes += bytes as u64;
    let tx = bytes as f64 * 8.0 / link.capacity_bps;
    link.queue.push_back(pid);
    if !link.busy {
        link.busy = true;
        q.schedule(now + tx, Ev::Depart(lid));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openspace_net::topology::{Graph, LinkTech};
    use openspace_sim::fault::{FaultPlan, FaultTopology};
    use openspace_sim::ids::OperatorId;

    /// 0 —fast— 1 —fast— 3   plus a slow bypass 0 — 2 — 3.
    fn diamond(fast_bps: f64) -> Graph {
        let mut g = Graph::new(4, 0);
        g.add_bidirectional(0, 1, 0.002, fast_bps, 0, 0, LinkTech::Rf);
        g.add_bidirectional(1, 3, 0.002, fast_bps, 0, 0, LinkTech::Rf);
        g.add_bidirectional(0, 2, 0.006, fast_bps, 0, 0, LinkTech::Rf);
        g.add_bidirectional(2, 3, 0.006, fast_bps, 0, 0, LinkTech::Rf);
        g
    }

    fn flow(src: usize, dst: usize, rate: f64) -> FlowSpec {
        FlowSpec::new(src, dst, rate, 1_500, TrafficKind::Cbr)
    }

    #[test]
    fn light_load_delivers_everything_at_propagation_latency() {
        let g = diamond(10e6);
        let r = NetSim::new(NetSimConfig::default())
            .with_snapshot(&g)
            .run(&[flow(0, 3, 1e5)])
            .unwrap();
        assert!(r.delivery_ratio > 0.99, "ratio {}", r.delivery_ratio);
        assert_eq!(r.dropped, 0);
        // 2 hops x 2 ms + 2 serializations of 12 kbit at 10 Mbit/s.
        let expect = 0.004 + 2.0 * 1_500.0 * 8.0 / 10e6;
        assert!(
            (r.mean_latency_s - expect).abs() < 5e-4,
            "latency {} vs {}",
            r.mean_latency_s,
            expect
        );
    }

    #[test]
    fn overload_drops_packets() {
        let g = diamond(1e6);
        // 3 Mbit/s offered into a 1 Mbit/s path.
        let r = NetSim::new(NetSimConfig::default())
            .with_snapshot(&g)
            .run(&[flow(0, 3, 3e6)])
            .unwrap();
        assert!(r.dropped > 0);
        assert!(r.delivery_ratio < 0.5, "ratio {}", r.delivery_ratio);
        assert!(r.max_link_utilization > 0.9);
    }

    #[test]
    fn conservation_holds() {
        let g = diamond(2e6);
        let cfg = NetSimConfig {
            duration_s: 10.0,
            ..Default::default()
        };
        let r = NetSim::new(cfg)
            .with_snapshot(&g)
            .run(&[flow(0, 3, 1.5e6), flow(3, 0, 0.5e6)])
            .unwrap();
        // Everything generated is delivered, dropped, unroutable, or
        // still in flight (bounded by queue depth + links).
        let in_flight = r.generated - r.delivered - r.dropped - r.unroutable;
        assert!(in_flight < 500, "in flight {in_flight}");
    }

    #[test]
    fn adaptive_routing_offloads_the_hot_path() {
        // Two flows share the fast path under proactive routing and
        // overload it; adaptive re-planning moves one to the bypass.
        let g = diamond(2e6);
        let flows = [flow(0, 3, 1.4e6), flow(0, 3, 1.4e6)];
        let pro = NetSim::new(NetSimConfig {
            duration_s: 20.0,
            ..Default::default()
        })
        .with_snapshot(&g)
        .run(&flows)
        .unwrap();
        let ada = NetSim::new(NetSimConfig {
            duration_s: 20.0,
            routing: RoutingMode::Adaptive {
                replan_interval_s: 1.0,
            },
            ..Default::default()
        })
        .with_snapshot(&g)
        .run(&flows)
        .unwrap();
        assert!(
            ada.delivery_ratio > pro.delivery_ratio + 0.1,
            "adaptive {} vs proactive {}",
            ada.delivery_ratio,
            pro.delivery_ratio
        );
    }

    #[test]
    fn poisson_and_cbr_offer_the_same_mean_load() {
        let g = diamond(10e6);
        let mk = |kind| FlowSpec::new(0, 3, 1e6, 1_500, kind);
        let cfg = NetSimConfig {
            duration_s: 30.0,
            ..Default::default()
        };
        let sim = NetSim::new(cfg).with_snapshot(&g);
        let cbr = sim.run(&[mk(TrafficKind::Cbr)]).unwrap();
        let poi = sim.run(&[mk(TrafficKind::Poisson)]).unwrap();
        let ratio = poi.generated as f64 / cbr.generated as f64;
        assert!((ratio - 1.0).abs() < 0.1, "ratio {ratio}");
        // Poisson burstiness raises p95 latency.
        assert!(poi.p95_latency_s >= cbr.p95_latency_s);
    }

    #[test]
    fn unroutable_flow_is_counted_not_crashed() {
        let mut g = Graph::new(3, 0);
        g.add_bidirectional(0, 1, 0.001, 1e6, 0, 0, LinkTech::Rf);
        let r = NetSim::new(NetSimConfig {
            duration_s: 5.0,
            ..Default::default()
        })
        .with_snapshot(&g)
        .run(&[flow(0, 2, 1e5)])
        .unwrap();
        assert_eq!(r.delivered, 0);
        assert!(r.unroutable > 0);
        assert_eq!(r.unroutable, r.generated);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = diamond(2e6);
        let flows = [FlowSpec::new(0, 3, 1e6, 1_200, TrafficKind::Poisson)];
        let sim = NetSim::new(NetSimConfig {
            duration_s: 10.0,
            seed: 7,
            ..Default::default()
        })
        .with_snapshot(&g);
        let a = sim.run(&flows).unwrap();
        let b = sim.run(&flows).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_flows_is_a_config_error() {
        let g = diamond(1e6);
        let err = NetSim::new(NetSimConfig::default())
            .with_snapshot(&g)
            .run(&[])
            .unwrap_err();
        assert_eq!(err, ConfigError::Empty { field: "flows" });
    }

    #[test]
    fn missing_topology_is_a_config_error() {
        let err = NetSim::new(NetSimConfig::default())
            .run(&[flow(0, 1, 1e5)])
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::Empty {
                field: "netsim.topology"
            }
        );
    }

    #[test]
    fn out_of_range_flow_is_a_config_error() {
        let g = diamond(1e6);
        let err = NetSim::new(NetSimConfig::default())
            .with_snapshot(&g)
            .run(&[flow(0, 9, 1e5)])
            .unwrap_err();
        assert!(matches!(err, ConfigError::IndexOutOfRange { .. }));
    }

    #[test]
    fn builder_validates() {
        assert!(NetSimConfig::builder()
            .duration_s(10.0)
            .seed(3)
            .build()
            .is_ok());
        assert!(NetSimConfig::builder().duration_s(0.0).build().is_err());
        assert!(NetSimConfig::builder()
            .routing(RoutingMode::Adaptive {
                replan_interval_s: -1.0
            })
            .build()
            .is_err());
    }

    #[test]
    fn dynamic_static_topology_matches_static_run() {
        // A provider that always returns the same snapshot must behave
        // like the static simulator (modulo identical results).
        let g = diamond(5e6);
        let flows = [flow(0, 3, 1e6)];
        let cfg = NetSimConfig {
            duration_s: 10.0,
            ..Default::default()
        };
        let stat = NetSim::new(cfg).with_snapshot(&g).run(&flows).unwrap();
        let provider = |_t: f64| g.clone();
        let dynamic = NetSim::new(cfg)
            .with_provider(&provider, 2.0)
            .run(&flows)
            .unwrap();
        assert_eq!(stat.generated, dynamic.generated);
        assert_eq!(stat.delivered, dynamic.delivered);
        assert_eq!(stat.dropped, dynamic.dropped);
    }

    #[test]
    fn vanishing_link_drops_queued_packets_and_reroutes() {
        // Topology: fast path 0-1-3 exists before t=5, vanishes after.
        let with_fast = diamond(5e6);
        let without_fast = {
            let mut g = Graph::new(4, 0);
            g.add_bidirectional(0, 2, 0.006, 5e6, 0, 0, LinkTech::Rf);
            g.add_bidirectional(2, 3, 0.006, 5e6, 0, 0, LinkTech::Rf);
            g
        };
        let provider = |t: f64| {
            if t < 5.0 {
                with_fast.clone()
            } else {
                without_fast.clone()
            }
        };
        let flows = [flow(0, 3, 1e6)];
        let cfg = NetSimConfig {
            duration_s: 20.0,
            ..Default::default()
        };
        let r = NetSim::new(cfg)
            .with_provider(&provider, 1.0)
            .run(&flows)
            .unwrap();
        // The flow keeps delivering after the handover to the slow path.
        assert!(
            r.delivery_ratio > 0.95,
            "rerouted flow should keep flowing: {}",
            r.delivery_ratio
        );
        assert!(r.delivered > 0);
        // Mean latency sits between the fast-only and slow-only values.
        assert!(r.mean_latency_s > 0.004 && r.mean_latency_s < 0.02);
    }

    #[test]
    fn total_blackout_counts_unroutable() {
        let g = diamond(5e6);
        let empty = Graph::new(4, 0);
        let provider = |t: f64| if t < 2.0 { g.clone() } else { empty.clone() };
        let flows = [flow(0, 3, 1e6)];
        let cfg = NetSimConfig {
            duration_s: 10.0,
            ..Default::default()
        };
        let r = NetSim::new(cfg)
            .with_provider(&provider, 1.0)
            .run(&flows)
            .unwrap();
        assert!(r.unroutable > 0, "post-blackout packets are unroutable");
        assert!(r.delivered > 0, "pre-blackout packets were delivered");
    }

    #[test]
    fn zero_resnapshot_interval_is_a_config_error() {
        let g = diamond(1e6);
        let provider = |_t: f64| g.clone();
        let err = NetSim::new(NetSimConfig::default())
            .with_provider(&provider, 0.0)
            .run(&[flow(0, 3, 1e5)])
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::NonPositive {
                field: "resnapshot_interval_s",
                value: 0.0
            }
        );
    }

    #[test]
    fn recorded_run_reproduces_the_plain_report_bit_for_bit() {
        use openspace_telemetry::MemoryRecorder;
        let g = diamond(2e6);
        let flows = [
            FlowSpec::new(0, 3, 1e6, 1_200, TrafficKind::Poisson),
            flow(3, 0, 0.5e6),
        ];
        let sim = NetSim::new(NetSimConfig {
            duration_s: 10.0,
            seed: 11,
            ..Default::default()
        })
        .with_snapshot(&g);
        let plain = sim.run(&flows).unwrap();
        let mut rec = MemoryRecorder::new();
        let recorded = sim.run_recorded(&flows, &mut rec).unwrap();
        assert_eq!(plain, recorded, "telemetry must not perturb the sim");
        assert_eq!(
            plain.mean_latency_s.to_bits(),
            recorded.mean_latency_s.to_bits()
        );
        // Counters mirror the report.
        assert_eq!(rec.counter("netsim.generated"), plain.generated);
        assert_eq!(rec.counter("netsim.delivered"), plain.delivered);
        assert_eq!(rec.counter("netsim.dropped"), plain.dropped);
        // One latency sample per delivered packet, split across flows.
        let overall = rec.histogram("netsim.latency_s").unwrap();
        assert_eq!(overall.count() as u64, plain.delivered);
        let f0 = rec.histogram("netsim.flow.0.latency_s").unwrap().count();
        let f1 = rec.histogram("netsim.flow.1.latency_s").unwrap().count();
        assert_eq!((f0 + f1) as u64, plain.delivered);
        // The engine counters made it out.
        assert!(rec.counter("engine.events_processed") > 0);
        assert!(rec.maximum("engine.queue_depth_high_water").unwrap() >= 1.0);
        // Initial routing for two flows.
        assert!(rec.counter("routing.recomputes") >= 2);
    }

    #[test]
    fn recorded_adaptive_run_counts_replans() {
        use openspace_telemetry::MemoryRecorder;
        let g = diamond(2e6);
        let flows = [flow(0, 3, 1.4e6), flow(0, 3, 1.4e6)];
        let sim = NetSim::new(NetSimConfig {
            duration_s: 10.0,
            routing: RoutingMode::Adaptive {
                replan_interval_s: 1.0,
            },
            ..Default::default()
        })
        .with_snapshot(&g);
        let plain = sim.run(&flows).unwrap();
        let mut rec = MemoryRecorder::new();
        let recorded = sim.run_recorded(&flows, &mut rec).unwrap();
        assert_eq!(plain, recorded);
        assert!(rec.counter("netsim.replans") >= 9, "one per interval");
        // Every replan re-routes both flows, plus the initial pass.
        assert!(rec.counter("routing.recomputes") >= 2 + 9 * 2);
    }

    // ---- timeline-driven runs ----

    /// A provider whose fast path flips between snapshots, plus a
    /// latency drift, so consecutive snapshots have non-empty deltas.
    fn churning_provider(t: f64) -> Graph {
        let mut g = Graph::new(4, 0);
        g.add_bidirectional(0, 2, 0.006, 5e6, 0, 0, LinkTech::Rf);
        g.add_bidirectional(2, 3, 0.006 + t * 1e-7, 5e6, 0, 0, LinkTech::Rf);
        if (t / 4.0).floor() as i64 % 2 == 0 {
            g.add_bidirectional(0, 1, 0.002, 5e6, 0, 0, LinkTech::Rf);
            g.add_bidirectional(1, 3, 0.002, 5e6, 0, 0, LinkTech::Rf);
        }
        g
    }

    #[test]
    fn timeline_run_matches_provider_run_bit_for_bit() {
        let flows = [flow(0, 3, 1e6), flow(3, 0, 0.5e6)];
        for routing in [
            RoutingMode::Proactive,
            RoutingMode::Adaptive {
                replan_interval_s: 2.5,
            },
        ] {
            let cfg = NetSimConfig {
                duration_s: 20.0,
                routing,
                ..Default::default()
            };
            let via_provider = NetSim::new(cfg)
                .with_provider(&churning_provider, 1.0)
                .run(&flows)
                .unwrap();
            let tl = TopologyTimeline::build(&churning_provider, 0.0, 1.0, 20.0, 2).unwrap();
            let via_timeline = NetSim::new(cfg).with_timeline(&tl).run(&flows).unwrap();
            assert_eq!(via_provider, via_timeline, "routing {routing:?}");
            assert_eq!(
                via_provider.mean_latency_s.to_bits(),
                via_timeline.mean_latency_s.to_bits()
            );
            assert_eq!(
                via_provider.p95_latency_s.to_bits(),
                via_timeline.p95_latency_s.to_bits()
            );
            assert_eq!(
                via_provider.max_link_utilization.to_bits(),
                via_timeline.max_link_utilization.to_bits()
            );
        }
    }

    #[test]
    fn timeline_run_with_faults_matches_provider_run() {
        let plan = FaultPlan::builder()
            .sat_outage(1usize, 3.0, 6.0)
            .build()
            .unwrap();
        let events = compile_plan(&plan, 4);
        let flows = [flow(0, 3, 1e6)];
        let cfg = NetSimConfig {
            duration_s: 15.0,
            ..Default::default()
        };
        let via_provider = NetSim::new(cfg)
            .with_provider(&churning_provider, 1.0)
            .with_faults(&events)
            .run(&flows)
            .unwrap();
        let tl = TopologyTimeline::build(&churning_provider, 0.0, 1.0, 15.0, 1).unwrap();
        let via_timeline = NetSim::new(cfg)
            .with_timeline(&tl)
            .with_faults(&events)
            .run(&flows)
            .unwrap();
        assert_eq!(via_provider, via_timeline);
    }

    #[test]
    fn timeline_run_reports_delta_counters() {
        use openspace_telemetry::MemoryRecorder;
        let flows = [flow(0, 3, 1e6)];
        let cfg = NetSimConfig {
            duration_s: 10.0,
            ..Default::default()
        };
        let tl = TopologyTimeline::build(&churning_provider, 0.0, 1.0, 10.0, 1).unwrap();
        let mut rec = MemoryRecorder::new();
        NetSim::new(cfg)
            .with_timeline(&tl)
            .run_recorded(&flows, &mut rec)
            .unwrap();
        let resnapshots = rec.counter("netsim.resnapshots");
        assert_eq!(resnapshots, 10);
        assert_eq!(rec.counter("netsim.timeline.deltas_applied"), resnapshots);
        assert!(
            rec.counter("netsim.resnapshot.links_kept") > 0,
            "the slow path persists across every refresh"
        );
        assert!(
            rec.counter("netsim.resnapshot.links_churned") > 0,
            "the fast path flips every 4 s"
        );
    }

    #[test]
    fn resnapshot_packet_drops_are_counted_dedicated() {
        use openspace_telemetry::MemoryRecorder;
        // A saturated link that vanishes at the first resnapshot: its
        // queue dies with it and must show up under the dedicated
        // counter on both dynamic paths.
        let full = diamond(1e6);
        let empty = Graph::new(4, 0);
        let provider = move |t: f64| if t < 1.0 { full.clone() } else { empty.clone() };
        let flows = [flow(0, 3, 3e6)];
        let cfg = NetSimConfig {
            duration_s: 4.0,
            ..Default::default()
        };
        let mut rec_p = MemoryRecorder::new();
        let via_provider = NetSim::new(cfg)
            .with_provider(&provider, 1.0)
            .run_recorded(&flows, &mut rec_p)
            .unwrap();
        assert!(
            rec_p.counter("netsim.resnapshot.packets_dropped") > 0,
            "the saturated queue died at the refresh"
        );
        let tl = TopologyTimeline::build(&provider, 0.0, 1.0, 4.0, 1).unwrap();
        let mut rec_t = MemoryRecorder::new();
        let via_timeline = NetSim::new(cfg)
            .with_timeline(&tl)
            .run_recorded(&flows, &mut rec_t)
            .unwrap();
        assert_eq!(via_provider, via_timeline);
        assert_eq!(
            rec_p.counter("netsim.resnapshot.packets_dropped"),
            rec_t.counter("netsim.resnapshot.packets_dropped"),
            "both dynamic paths account the same churn losses"
        );
    }

    #[test]
    fn short_timeline_is_a_config_error() {
        let flows = [flow(0, 3, 1e6)];
        let cfg = NetSimConfig {
            duration_s: 20.0,
            ..Default::default()
        };
        // Covers only 5 s of a 20 s run.
        let tl = TopologyTimeline::build(&churning_provider, 0.0, 1.0, 5.0, 1).unwrap();
        let err = NetSim::new(cfg).with_timeline(&tl).run(&flows).unwrap_err();
        assert_eq!(
            err,
            ConfigError::IndexOutOfRange {
                field: "timeline.delta_count",
                index: 20,
                len: 5
            }
        );
    }

    #[test]
    fn offset_timeline_is_a_config_error() {
        let flows = [flow(0, 3, 1e6)];
        let tl = TopologyTimeline::build(&churning_provider, 5.0, 1.0, 40.0, 1).unwrap();
        let err = NetSim::new(NetSimConfig::default())
            .with_timeline(&tl)
            .run(&flows)
            .unwrap_err();
        assert!(matches!(
            err,
            ConfigError::OutOfRange {
                field: "timeline.start_s",
                ..
            }
        ));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_the_driver() {
        let g = diamond(2e6);
        let flows = [FlowSpec::new(0, 3, 1e6, 1_200, TrafficKind::Poisson)];
        let cfg = NetSimConfig {
            duration_s: 5.0,
            seed: 13,
            ..Default::default()
        };
        let driver = NetSim::new(cfg).with_snapshot(&g);
        assert_eq!(
            run_netsim(&g, &flows, &cfg).unwrap(),
            driver.run(&flows).unwrap()
        );
        assert_eq!(
            run_netsim_faulted(&g, &flows, &cfg, &[]).unwrap(),
            driver.with_faults(&[]).run(&flows).unwrap()
        );
        let provider = |_t: f64| g.clone();
        assert_eq!(
            run_netsim_dynamic(&provider, 1.0, &flows, &cfg).unwrap(),
            NetSim::new(cfg)
                .with_provider(&provider, 1.0)
                .run(&flows)
                .unwrap()
        );
    }

    // ---- fault-injection runs ----

    fn compile_plan(plan: &FaultPlan, n_nodes: usize) -> Vec<TopologyEvent> {
        let topo = FaultTopology::homogeneous(n_nodes, 0, OperatorId(0));
        plan.compile(&topo).unwrap()
    }

    #[test]
    fn empty_fault_plan_reproduces_the_report_bit_for_bit() {
        let g = diamond(2e6);
        let flows = [FlowSpec::new(0, 3, 1e6, 1_200, TrafficKind::Poisson)];
        let sim = NetSim::new(NetSimConfig {
            duration_s: 10.0,
            seed: 5,
            ..Default::default()
        })
        .with_snapshot(&g);
        let plain = sim.run(&flows).unwrap();
        let faulted = sim.with_faults(&[]).run(&flows).unwrap();
        assert_eq!(plain, faulted);
        assert_eq!(
            plain.mean_latency_s.to_bits(),
            faulted.mean_latency_s.to_bits()
        );
        assert_eq!(faulted.fault, FaultImpact::default());
    }

    #[test]
    fn transient_outage_reroutes_and_recovers() {
        // Node 1 (on the fast path) dies at t=5 and recovers at t=15.
        let g = diamond(5e6);
        let plan = FaultPlan::builder()
            .sat_outage(1usize, 5.0, 10.0)
            .build()
            .unwrap();
        let events = compile_plan(&plan, 4);
        let flows = [flow(0, 3, 1e6)];
        let r = NetSim::new(NetSimConfig {
            duration_s: 30.0,
            ..Default::default()
        })
        .with_snapshot(&g)
        .with_faults(&events)
        .run(&flows)
        .unwrap();
        assert_eq!(r.fault.events_applied, 2);
        assert!(r.fault.reassociations >= 1, "flow re-routed around node 1");
        assert!(
            r.delivery_ratio > 0.95,
            "bypass keeps the flow alive: {}",
            r.delivery_ratio
        );
        // Availability: 1 of 4 nodes down for 10 of 30 s.
        let expect = 1.0 - 10.0 / (30.0 * 4.0);
        assert!((r.fault.node_availability - expect).abs() < 1e-9);
        assert_eq!(r.fault.mttr_s, Some(10.0));
    }

    #[test]
    fn permanent_failure_of_the_only_route_strands_the_flow() {
        // Chain 0-1-2: node 1 is a single point of failure.
        let mut g = Graph::new(3, 0);
        g.add_bidirectional(0, 1, 0.002, 5e6, 0, 0, LinkTech::Rf);
        g.add_bidirectional(1, 2, 0.002, 5e6, 0, 0, LinkTech::Rf);
        let plan = FaultPlan::builder()
            .sat_failure(1usize, 5.0)
            .build()
            .unwrap();
        let events = compile_plan(&plan, 3);
        let flows = [flow(0, 2, 1e6)];
        let r = NetSim::new(NetSimConfig {
            duration_s: 20.0,
            ..Default::default()
        })
        .with_snapshot(&g)
        .with_faults(&events)
        .run(&flows)
        .unwrap();
        assert!(r.unroutable > 0, "post-fault packets have no route");
        assert!(r.delivered > 0, "pre-fault packets were delivered");
        assert!(r.delivery_ratio < 0.5);
        assert!(r.fault.node_availability < 1.0);
        assert_eq!(r.fault.mttr_s, None, "nothing recovered");
    }

    #[test]
    fn link_flap_loses_only_the_flapping_links_packets() {
        let g = diamond(5e6);
        // Flap the 1-3 link; flow re-routes during down phases.
        let plan = FaultPlan::builder()
            .link_flap(1usize, 3usize, 5.0, 2.0, 3.0, 3)
            .build()
            .unwrap();
        let events = compile_plan(&plan, 4);
        let flows = [flow(0, 3, 1e6)];
        let r = NetSim::new(NetSimConfig {
            duration_s: 30.0,
            ..Default::default()
        })
        .with_snapshot(&g)
        .with_faults(&events)
        .run(&flows)
        .unwrap();
        assert!(r.delivery_ratio > 0.9, "ratio {}", r.delivery_ratio);
        assert!(r.fault.reassociations >= 1);
        // Links, not nodes, failed: availability is untouched.
        assert_eq!(r.fault.node_availability, 1.0);
    }

    #[test]
    fn faulted_run_is_deterministic() {
        let g = diamond(2e6);
        let plan = FaultPlan::builder()
            .seed(9)
            .random_sat_outages(200.0, 3.0, 0.0, 20.0)
            .build()
            .unwrap();
        let events = compile_plan(&plan, 4);
        let flows = [FlowSpec::new(0, 3, 1e6, 1_200, TrafficKind::Poisson)];
        let sim = NetSim::new(NetSimConfig {
            duration_s: 20.0,
            seed: 3,
            ..Default::default()
        })
        .with_snapshot(&g)
        .with_faults(&events);
        let a = sim.run(&flows).unwrap();
        let b = sim.run(&flows).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn recorded_faulted_run_reports_the_fault_block() {
        use openspace_telemetry::MemoryRecorder;
        let g = diamond(5e6);
        let plan = FaultPlan::builder()
            .sat_outage(1usize, 5.0, 10.0)
            .build()
            .unwrap();
        let events = compile_plan(&plan, 4);
        let flows = [flow(0, 3, 1e6)];
        let sim = NetSim::new(NetSimConfig {
            duration_s: 30.0,
            ..Default::default()
        })
        .with_snapshot(&g)
        .with_faults(&events);
        let plain = sim.run(&flows).unwrap();
        let mut rec = MemoryRecorder::new();
        let recorded = sim.run_recorded(&flows, &mut rec).unwrap();
        assert_eq!(plain, recorded);
        assert_eq!(rec.counter("netsim.fault.events_applied"), 2);
        assert_eq!(
            rec.gauge_value("netsim.fault.node_availability").unwrap(),
            plain.fault.node_availability
        );
        assert_eq!(
            rec.counter("netsim.fault.reassociations"),
            plain.fault.reassociations
        );
    }

    #[test]
    fn out_of_range_fault_event_is_a_config_error() {
        let g = diamond(1e6);
        let events = [TopologyEvent {
            at_s: 1.0,
            seq: 0,
            kind: TopologyEventKind::NodeDown(NodeId(77)),
        }];
        let err = NetSim::new(NetSimConfig::default())
            .with_snapshot(&g)
            .with_faults(&events)
            .run(&[flow(0, 3, 1e5)])
            .unwrap_err();
        assert!(matches!(err, ConfigError::IndexOutOfRange { .. }));
    }

    #[test]
    fn onoff_flow_preserves_long_run_mean_rate() {
        let g = diamond(10e6);
        // Peak 2 Mbit/s with 1:3 on/off duty → 500 kbit/s mean.
        let f = FlowSpec::new(
            0,
            3,
            2e6,
            1_500,
            TrafficKind::OnOff {
                mean_on_s: 1.0,
                mean_off_s: 3.0,
            },
        );
        let cfg = NetSimConfig {
            duration_s: 400.0,
            ..Default::default()
        };
        let r = NetSim::new(cfg).with_snapshot(&g).run(&[f]).unwrap();
        assert!(r.delivery_ratio > 0.99, "ratio {}", r.delivery_ratio);
        let measured = r.generated as f64 * 1_500.0 * 8.0 / 400.0;
        assert!(
            (measured - 5e5).abs() / 5e5 < 0.2,
            "mean rate {measured} vs 500k"
        );
        // A pure-CBR flow at the same peak would generate ~4x as much.
        let cbr = NetSim::new(cfg)
            .with_snapshot(&g)
            .run(&[flow(0, 3, 2e6)])
            .unwrap();
        assert!(cbr.generated as f64 > 2.5 * r.generated as f64);
    }

    #[test]
    fn onoff_flow_rejects_nonpositive_periods() {
        let g = diamond(1e6);
        let f = FlowSpec::new(
            0,
            3,
            1e6,
            1_500,
            TrafficKind::OnOff {
                mean_on_s: 0.0,
                mean_off_s: 1.0,
            },
        );
        let err = NetSim::new(NetSimConfig::default())
            .with_snapshot(&g)
            .run(&[f])
            .unwrap_err();
        assert!(matches!(err, ConfigError::NonPositive { .. }));
    }

    #[test]
    fn demand_workload_validates_tick_times() {
        assert!(DemandWorkload::new(vec![(0.0, vec![]), (5.0, vec![])]).is_ok());
        assert!(DemandWorkload::new(vec![(5.0, vec![]), (5.0, vec![])]).is_err());
        assert!(DemandWorkload::new(vec![(-1.0, vec![])]).is_err());
        assert!(DemandWorkload::new(vec![(f64::NAN, vec![])]).is_err());
    }

    #[test]
    fn empty_flows_need_a_demand_workload() {
        let g = diamond(1e6);
        let err = NetSim::new(NetSimConfig::default())
            .with_snapshot(&g)
            .run(&[])
            .unwrap_err();
        assert!(matches!(err, ConfigError::Empty { field: "flows" }));
        let demand = DemandWorkload::new(vec![(0.0, vec![flow(0, 3, 1e5)])]).unwrap();
        let r = NetSim::new(NetSimConfig::default())
            .with_snapshot(&g)
            .with_demand(&demand)
            .run(&[])
            .unwrap();
        assert!(r.delivered > 0);
    }

    #[test]
    fn demand_batches_activate_and_retire() {
        use openspace_telemetry::MemoryRecorder;
        let g = diamond(10e6);
        // Batch 0 runs [0, 8), batch 1 runs [8, 20): rates differ 4x,
        // so per-phase generation rates must differ accordingly.
        let demand = DemandWorkload::new(vec![
            (0.0, vec![flow(0, 3, 4e5)]),
            (8.0, vec![flow(0, 3, 1e5)]),
        ])
        .unwrap();
        let cfg = NetSimConfig {
            duration_s: 20.0,
            ..Default::default()
        };
        let mut rec = MemoryRecorder::new();
        let r = NetSim::new(cfg)
            .with_snapshot(&g)
            .with_demand(&demand)
            .run_recorded(&[], &mut rec)
            .unwrap();
        assert_eq!(rec.counter("netsim.demand.ticks"), 2);
        assert_eq!(rec.counter("netsim.demand.flows_activated"), 2);
        assert_eq!(rec.counter("netsim.demand.flows_retired"), 1);
        // Phase 0: 8 s at 400 kbit/s ≈ 267 pkts; phase 1: 12 s at
        // 100 kbit/s ≈ 100 pkts. A run that never retired batch 0
        // would generate ~660.
        let expect = (8.0 * 4e5 + 12.0 * 1e5) / (1_500.0 * 8.0);
        assert!(
            (r.generated as f64 - expect).abs() < 0.1 * expect,
            "generated {} vs {expect}",
            r.generated
        );
        assert!(r.delivery_ratio > 0.99);
    }

    #[test]
    fn demand_ticks_past_duration_never_activate() {
        let g = diamond(1e6);
        let demand = DemandWorkload::new(vec![
            (0.0, vec![flow(0, 3, 1e5)]),
            (100.0, vec![flow(0, 3, 9e6)]),
        ])
        .unwrap();
        let cfg = NetSimConfig {
            duration_s: 10.0,
            ..Default::default()
        };
        let r = NetSim::new(cfg)
            .with_snapshot(&g)
            .with_demand(&demand)
            .run(&[])
            .unwrap();
        // Only the first batch ever injects: ~83 packets, not
        // thousands from the 9 Mbit/s late batch.
        assert!(r.generated < 120, "generated {}", r.generated);
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn demand_runs_are_seed_deterministic() {
        let g = diamond(10e6);
        let demand = DemandWorkload::new(vec![
            (
                0.0,
                vec![
                    flow(0, 3, 3e5),
                    FlowSpec::new(
                        1,
                        2,
                        8e5,
                        1_200,
                        TrafficKind::OnOff {
                            mean_on_s: 0.5,
                            mean_off_s: 1.5,
                        },
                    ),
                ],
            ),
            (
                6.0,
                vec![FlowSpec::new(2, 0, 2e5, 900, TrafficKind::Poisson)],
            ),
        ])
        .unwrap();
        let cfg = NetSimConfig {
            duration_s: 15.0,
            seed: 77,
            ..Default::default()
        };
        let base = [flow(3, 1, 1e5)];
        let run = || {
            NetSim::new(cfg)
                .with_snapshot(&g)
                .with_demand(&demand)
                .run(&base)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.generated > 0 && a.delivered > 0);
    }
}
