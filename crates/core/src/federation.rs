//! The federation: the set of collaborating operators and their combined
//! infrastructure.
//!
//! This is the paper's core object — "networking satellites and ground
//! platforms owned by a heterogeneous group of small, medium, and large
//! firms … together results in global coverage". It owns the roster,
//! derives topology snapshots, and answers coverage questions both for
//! the whole federation and for each operator alone (the §2 claim that
//! solo operators get patchwork coverage).

use crate::operator::{make_satellite, GroundStation, Operator, Satellite};
use openspace_net::contact::{contact_plan, contact_plan_recorded, ContactWindow};
use openspace_net::isl::{
    build_snapshot, build_snapshot_recorded, GroundNode, SatNode, SnapshotParams,
};
use openspace_net::timeline::{TimelineError, TopologyProvider, TopologyTimeline};
use openspace_net::topology::Graph;
use openspace_orbit::frames::{Geodetic, Vec3};
use openspace_orbit::kepler::OrbitalElements;
use openspace_phy::hardware::SatelliteClass;
use openspace_protocol::crypto::SharedSecret;
use openspace_protocol::types::{GroundStationId, OperatorId, SatelliteId, UserId};
use openspace_sim::fault::FaultTopology;
use std::collections::BTreeMap;

/// Why a federation operation failed.
///
/// Operators can depart a federation (that is the point of a voluntary
/// consortium), so looking one up is fallible by nature — not a
/// programming error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FederationError {
    /// The referenced operator is not (or no longer) a member.
    UnknownOperator(OperatorId),
    /// An operator withdrawal would leave nobody to serve its users.
    NoSurvivingOperator,
}

impl std::fmt::Display for FederationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownOperator(op) => write!(f, "unknown operator {op}"),
            Self::NoSurvivingOperator => {
                write!(f, "withdrawal would leave no surviving operator")
            }
        }
    }
}

impl std::error::Error for FederationError {}

/// Record of a completed operator withdrawal: who left, where their
/// subscribers went, and what infrastructure went dark with them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Withdrawal {
    /// The departed operator.
    pub operator: OperatorId,
    /// Each migrated subscriber and their new home operator.
    pub migrated: Vec<(UserId, OperatorId)>,
    /// Satellites stranded by the departure (kept in the roster for
    /// index stability, but no longer operated by a member).
    pub orphaned_satellites: usize,
    /// Ground stations stranded by the departure.
    pub orphaned_stations: usize,
}

/// A registered ground user.
#[derive(Debug, Clone, Copy)]
pub struct User {
    /// User id.
    pub id: UserId,
    /// Home operator (the ISP the user subscribes to).
    pub home: OperatorId,
    /// The user's AAA shared secret.
    pub secret: SharedSecret,
}

/// The assembled OpenSpace federation.
#[derive(Debug, Default)]
pub struct Federation {
    operators: BTreeMap<OperatorId, Operator>,
    satellites: Vec<Satellite>,
    stations: Vec<GroundStation>,
    users: Vec<User>,
    next_operator: u32,
    next_satellite: u64,
    next_station: u32,
    next_user: u64,
    /// Topology parameters shared by all snapshot builds.
    pub snapshot_params: SnapshotParams,
}

impl Federation {
    /// An empty federation with default topology parameters.
    pub fn new() -> Self {
        Self {
            snapshot_params: SnapshotParams::default(),
            ..Default::default()
        }
    }

    /// Admit an operator; returns its id.
    pub fn add_operator(&mut self, name: impl Into<String>) -> OperatorId {
        self.next_operator += 1;
        let id = OperatorId(self.next_operator);
        self.operators.insert(id, Operator::new(id, name));
        id
    }

    /// Launch a satellite for `owner`. Fails with
    /// [`FederationError::UnknownOperator`] when `owner` is not a member.
    pub fn add_satellite(
        &mut self,
        owner: OperatorId,
        class: SatelliteClass,
        elements: OrbitalElements,
    ) -> Result<SatelliteId, FederationError> {
        if !self.operators.contains_key(&owner) {
            return Err(FederationError::UnknownOperator(owner));
        }
        self.next_satellite += 1;
        let sat = make_satellite(self.next_satellite, owner, class, elements);
        let id = sat.id;
        self.satellites.push(sat);
        Ok(id)
    }

    /// Build a ground station for `owner` at `site`. Fails with
    /// [`FederationError::UnknownOperator`] when `owner` is not a member.
    pub fn add_ground_station(
        &mut self,
        owner: OperatorId,
        site: Geodetic,
    ) -> Result<GroundStationId, FederationError> {
        if !self.operators.contains_key(&owner) {
            return Err(FederationError::UnknownOperator(owner));
        }
        self.next_station += 1;
        let id = GroundStationId(self.next_station);
        self.stations.push(GroundStation::new(id, owner, site));
        Ok(id)
    }

    /// Register a subscriber with their home operator's AAA. Fails with
    /// [`FederationError::UnknownOperator`] when `home` is not (or no
    /// longer) a member — user IDs are only consumed on success.
    pub fn register_user(&mut self, home: OperatorId) -> Result<User, FederationError> {
        let op = self
            .operators
            .get_mut(&home)
            .ok_or(FederationError::UnknownOperator(home))?;
        self.next_user += 1;
        let id = UserId(self.next_user);
        let secret = SharedSecret::derive(id.0, "openspace-subscriber");
        op.auth.register_user(id, secret);
        let user = User { id, home, secret };
        self.users.push(user);
        Ok(user)
    }

    /// All registered subscribers (home assignments reflect migrations).
    pub fn users(&self) -> &[User] {
        &self.users
    }

    /// A subscriber by id.
    pub fn user(&self, id: UserId) -> Option<&User> {
        self.users.iter().find(|u| u.id == id)
    }

    /// Remove `op` from the federation: its certificates stop verifying,
    /// its infrastructure is orphaned (kept in the roster so node indices
    /// stay stable for compiled fault plans), and its subscribers are
    /// migrated round-robin to the surviving members, each re-keyed with
    /// a fresh AAA secret at their new home.
    ///
    /// Fails with [`FederationError::UnknownOperator`] when `op` is not a
    /// member and [`FederationError::NoSurvivingOperator`] when `op` is
    /// the last one (the federation refuses to strand its users).
    pub fn withdraw_operator(&mut self, op: OperatorId) -> Result<Withdrawal, FederationError> {
        if !self.operators.contains_key(&op) {
            return Err(FederationError::UnknownOperator(op));
        }
        let survivors: Vec<OperatorId> = self
            .operators
            .keys()
            .copied()
            .filter(|&id| id != op)
            .collect();
        let orphans: Vec<UserId> = self
            .users
            .iter()
            .filter(|u| u.home == op)
            .map(|u| u.id)
            .collect();
        if survivors.is_empty() && !self.users.is_empty() {
            return Err(FederationError::NoSurvivingOperator);
        }
        self.operators.remove(&op);
        let mut migrated = Vec::with_capacity(orphans.len());
        for (i, uid) in orphans.into_iter().enumerate() {
            let new_home = survivors[i % survivors.len()];
            let secret = SharedSecret::derive(uid.0, "openspace-migrated");
            if let Some(new_op) = self.operators.get_mut(&new_home) {
                new_op.auth.register_user(uid, secret);
            }
            if let Some(user) = self.users.iter_mut().find(|u| u.id == uid) {
                user.home = new_home;
                user.secret = secret;
            }
            migrated.push((uid, new_home));
        }
        Ok(Withdrawal {
            operator: op,
            migrated,
            orphaned_satellites: self.satellites.iter().filter(|s| s.owner == op).count(),
            orphaned_stations: self.stations.iter().filter(|s| s.owner == op).count(),
        })
    }

    /// The entity layout fault plans compile against: per-satellite and
    /// per-station ownership in topology-graph node order.
    pub fn fault_topology(&self) -> FaultTopology {
        FaultTopology::new(
            self.satellites.iter().map(|s| s.owner).collect(),
            self.stations.iter().map(|s| s.owner).collect(),
        )
    }

    /// Member count.
    pub fn operator_count(&self) -> usize {
        self.operators.len()
    }

    /// All member ids, ascending.
    pub fn operator_ids(&self) -> Vec<OperatorId> {
        self.operators.keys().copied().collect()
    }

    /// Access an operator.
    pub fn operator(&self, id: OperatorId) -> Option<&Operator> {
        self.operators.get(&id)
    }

    /// Mutable access to an operator (e.g. to drive its AAA).
    pub fn operator_mut(&mut self, id: OperatorId) -> Option<&mut Operator> {
        self.operators.get_mut(&id)
    }

    /// The federation secret of `op` — what every member uses to verify
    /// that operator's roaming certificates. Fails with
    /// [`FederationError::UnknownOperator`] for departed operators (whose
    /// certificates must no longer verify anywhere).
    pub fn federation_secret(&self, op: OperatorId) -> Result<&SharedSecret, FederationError> {
        self.operators
            .get(&op)
            .map(|o| &o.federation_secret)
            .ok_or(FederationError::UnknownOperator(op))
    }

    /// All satellites.
    pub fn satellites(&self) -> &[Satellite] {
        &self.satellites
    }

    /// All ground stations.
    pub fn stations(&self) -> &[GroundStation] {
        &self.stations
    }

    /// Satellites of one operator.
    pub fn satellites_of(&self, op: OperatorId) -> Vec<&Satellite> {
        self.satellites.iter().filter(|s| s.owner == op).collect()
    }

    /// Topology-builder views of all satellites (federated operation).
    pub fn sat_nodes(&self) -> Vec<SatNode> {
        self.satellites.iter().map(Satellite::as_sat_node).collect()
    }

    /// Topology-builder views of one operator's satellites only (solo
    /// operation — no collaboration).
    pub fn sat_nodes_of(&self, op: OperatorId) -> Vec<SatNode> {
        self.satellites
            .iter()
            .filter(|s| s.owner == op)
            .map(Satellite::as_sat_node)
            .collect()
    }

    /// Topology-builder views of all stations.
    pub fn ground_nodes(&self) -> Vec<GroundNode> {
        self.stations
            .iter()
            .map(GroundStation::as_ground_node)
            .collect()
    }

    /// Topology-builder views of one operator's stations only.
    pub fn ground_nodes_of(&self, op: OperatorId) -> Vec<GroundNode> {
        self.stations
            .iter()
            .filter(|s| s.owner == op)
            .map(GroundStation::as_ground_node)
            .collect()
    }

    /// The federated topology snapshot at `t_s`.
    pub fn snapshot(&self, t_s: f64) -> Graph {
        build_snapshot(
            t_s,
            &self.sat_nodes(),
            &self.ground_nodes(),
            &self.snapshot_params,
        )
    }

    /// [`Self::snapshot`] with telemetry: surfaces the range-gated
    /// builder's `snapshot.pairs_tested` / `snapshot.pairs_pruned` (and
    /// ground-prune) counters on `rec`.
    pub fn snapshot_recorded(
        &self,
        t_s: f64,
        rec: &mut dyn openspace_telemetry::Recorder,
    ) -> Graph {
        build_snapshot_recorded(
            t_s,
            &self.sat_nodes(),
            &self.ground_nodes(),
            &self.snapshot_params,
            rec,
        )
    }

    /// Precompute the federation's topology as a delta-driven
    /// [`TopologyTimeline`]: snapshots every `step_s` seconds over
    /// `[0, horizon_s]`, built on `threads` workers (serial and parallel
    /// builds are bitwise-identical), stored as a base graph plus compact
    /// per-tick deltas.
    ///
    /// The result plugs straight into the network driver via
    /// [`NetSim::with_timeline`](crate::netsim::NetSim::with_timeline),
    /// which then refreshes topology by applying the precomputed deltas
    /// instead of rebuilding every snapshot from orbit propagation.
    pub fn timeline(
        &self,
        step_s: f64,
        horizon_s: f64,
        threads: usize,
    ) -> Result<TopologyTimeline, TimelineError> {
        TopologyTimeline::build(self, 0.0, step_s, horizon_s, threads)
    }

    /// A solo snapshot: only `op`'s own satellites and stations — the
    /// no-collaboration counterfactual of §2.
    pub fn solo_snapshot(&self, op: OperatorId, t_s: f64) -> Graph {
        build_snapshot(
            t_s,
            &self.sat_nodes_of(op),
            &self.ground_nodes_of(op),
            &self.snapshot_params,
        )
    }

    /// Contact plan of the whole federation over a ground point.
    pub fn contact_plan(
        &self,
        ground_ecef: Vec3,
        t_start_s: f64,
        t_end_s: f64,
        step_s: f64,
    ) -> Vec<ContactWindow> {
        contact_plan(
            &self.sat_nodes(),
            ground_ecef,
            t_start_s,
            t_end_s,
            step_s,
            self.snapshot_params.min_elevation_rad,
        )
    }

    /// [`Self::contact_plan`] with telemetry: surfaces the horizon-skip
    /// scanner's `contact.samples_evaluated` / `contact.samples_skipped`
    /// counters on `rec`.
    pub fn contact_plan_recorded(
        &self,
        ground_ecef: Vec3,
        t_start_s: f64,
        t_end_s: f64,
        step_s: f64,
        rec: &mut dyn openspace_telemetry::Recorder,
    ) -> Vec<ContactWindow> {
        contact_plan_recorded(
            &self.sat_nodes(),
            ground_ecef,
            t_start_s,
            t_end_s,
            step_s,
            self.snapshot_params.min_elevation_rad,
            rec,
        )
    }

    /// Contact plan restricted to one operator's satellites.
    pub fn contact_plan_of(
        &self,
        op: OperatorId,
        ground_ecef: Vec3,
        t_start_s: f64,
        t_end_s: f64,
        step_s: f64,
    ) -> Vec<ContactWindow> {
        contact_plan(
            &self.sat_nodes_of(op),
            ground_ecef,
            t_start_s,
            t_end_s,
            step_s,
            self.snapshot_params.min_elevation_rad,
        )
    }

    /// Satellite by id.
    pub fn satellite(&self, id: SatelliteId) -> Option<&Satellite> {
        self.satellites.iter().find(|s| s.id == id)
    }

    /// Satellite array index by id (the index used in topology graphs).
    pub fn satellite_index(&self, id: SatelliteId) -> Option<usize> {
        self.satellites.iter().position(|s| s.id == id)
    }
}

/// A federation *is* a topology source: `topology_at` is
/// [`Federation::snapshot`]. This lets a federation drive
/// [`NetSim::with_provider`](crate::netsim::NetSim::with_provider)
/// directly and lets [`TopologyTimeline::build`] precompute its
/// snapshot sequence.
impl TopologyProvider for Federation {
    fn topology_at(&self, t_s: f64) -> Graph {
        self.snapshot(t_s)
    }
}

/// Build a federation in which one Iridium-like Walker Star constellation
/// is split round-robin among `n_operators` member firms, with each firm
/// also owning one ground station from the provided list (cycled).
///
/// This is the paper's hypothetical OpenSpace deployment of §4 ("we use
/// [Iridium's] specifications to demonstrate a hypothetical OpenSpace
/// constellation of independently owned satellites and ground stations").
pub fn iridium_federation(
    n_operators: usize,
    classes: &[SatelliteClass],
    station_sites: &[Geodetic],
) -> Federation {
    assert!(n_operators > 0, "need at least one operator");
    assert!(!classes.is_empty(), "need at least one satellite class");
    let mut fed = Federation::new();
    let ops: Vec<OperatorId> = (0..n_operators)
        .map(|i| fed.add_operator(format!("operator-{}", i + 1)))
        .collect();
    // Iridium's published parameters are valid by construction; an empty
    // constellation here would only mean the hard-coded params regressed.
    let els = openspace_orbit::walker::walker_star(&openspace_orbit::walker::iridium_params())
        .unwrap_or_default();
    for (i, el) in els.into_iter().enumerate() {
        let owner = ops[i % n_operators];
        let class = classes[i % classes.len()];
        // Cannot fail: every owner was admitted above.
        let _ = fed.add_satellite(owner, class, el);
    }
    for (i, site) in station_sites.iter().enumerate() {
        let _ = fed.add_ground_station(ops[i % n_operators], *site);
    }
    fed
}

/// A monolithic baseline: the same constellation and stations under a
/// single owner — the vertically-integrated incumbent the paper contrasts
/// against.
pub fn monolithic_federation(classes: &[SatelliteClass], station_sites: &[Geodetic]) -> Federation {
    iridium_federation(1, classes, station_sites)
}

/// A representative shared ground-segment: six sites spread over
/// continents (rough locations of real teleport clusters).
pub fn default_station_sites() -> Vec<Geodetic> {
    vec![
        Geodetic::from_degrees(48.0, 11.0, 500.0),  // Bavaria
        Geodetic::from_degrees(39.0, -77.0, 100.0), // Virginia
        Geodetic::from_degrees(-33.9, 18.4, 50.0),  // Cape Town
        Geodetic::from_degrees(1.35, 103.8, 20.0),  // Singapore
        Geodetic::from_degrees(-31.9, 115.9, 30.0), // Perth
        Geodetic::from_degrees(64.1, -21.9, 40.0),  // Reykjavik
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fed() -> Federation {
        iridium_federation(
            4,
            &[SatelliteClass::CubeSat, SatelliteClass::SmallSat],
            &default_station_sites(),
        )
    }

    #[test]
    fn iridium_federation_splits_fleet_evenly() {
        let fed = small_fed();
        assert_eq!(fed.operator_count(), 4);
        assert_eq!(fed.satellites().len(), 66);
        let counts: Vec<usize> = fed
            .operator_ids()
            .iter()
            .map(|&op| fed.satellites_of(op).len())
            .collect();
        assert!(counts.iter().all(|&c| (16..=17).contains(&c)), "{counts:?}");
    }

    #[test]
    fn stations_cycle_across_operators() {
        let fed = small_fed();
        assert_eq!(fed.stations().len(), 6);
        let owners: std::collections::BTreeSet<u32> =
            fed.stations().iter().map(|s| s.owner.0).collect();
        assert!(owners.len() >= 2, "stations spread over operators");
    }

    #[test]
    fn federated_snapshot_is_connected_solo_is_not() {
        let fed = small_fed();
        let g = fed.snapshot(0.0);
        let reach = g.reachable_from(0);
        assert!(
            reach.iter().filter(|&&r| r).count() == g.node_count(),
            "federated graph fully connected"
        );

        let op = fed.operator_ids()[0];
        let solo = fed.solo_snapshot(op, 0.0);
        // A 16-satellite slice of Iridium (every 4th slot) is too sparse
        // for a complete ISL mesh at the default range limit.
        let solo_reach = solo.reachable_from(0);
        let reached = solo_reach.iter().filter(|&&r| r).count();
        assert!(
            reached < solo.node_count(),
            "solo slice should fragment: reached {reached}/{}",
            solo.node_count()
        );
    }

    #[test]
    fn users_register_with_their_home_aaa() {
        let mut fed = small_fed();
        let op = fed.operator_ids()[1];
        let u = fed.register_user(op).unwrap();
        assert_eq!(u.home, op);
        assert_eq!(fed.operator(op).unwrap().auth.user_count(), 1);
    }

    #[test]
    fn register_user_with_unknown_operator_is_an_error() {
        let mut fed = small_fed();
        let err = fed.register_user(OperatorId(99)).unwrap_err();
        assert_eq!(err, FederationError::UnknownOperator(OperatorId(99)));
        assert_eq!(err.to_string(), "unknown operator op-99");
        // No user id was burned by the failed registration.
        let u = fed.register_user(fed.operator_ids()[0]).unwrap();
        assert_eq!(u.id, UserId(1));
    }

    #[test]
    fn federation_secret_of_unknown_operator_is_an_error() {
        let fed = small_fed();
        assert_eq!(
            fed.federation_secret(OperatorId(42)).unwrap_err(),
            FederationError::UnknownOperator(OperatorId(42))
        );
    }

    #[test]
    fn federation_secrets_are_per_operator() {
        let fed = small_fed();
        let ids = fed.operator_ids();
        assert_ne!(
            fed.federation_secret(ids[0]).unwrap(),
            fed.federation_secret(ids[1]).unwrap()
        );
    }

    #[test]
    fn monolithic_has_one_owner() {
        let fed = monolithic_federation(&[SatelliteClass::BroadbandBus], &default_station_sites());
        assert_eq!(fed.operator_count(), 1);
        let op = fed.operator_ids()[0];
        assert_eq!(fed.satellites_of(op).len(), 66);
    }

    #[test]
    fn satellite_lookup_by_id() {
        let fed = small_fed();
        let sat = fed.satellites()[10];
        assert_eq!(fed.satellite(sat.id).unwrap().id, sat.id);
        assert_eq!(fed.satellite_index(sat.id), Some(10));
        assert!(fed.satellite(SatelliteId(9_999)).is_none());
    }

    #[test]
    fn satellite_for_unknown_operator_is_an_error() {
        let mut fed = Federation::new();
        let err = fed
            .add_satellite(
                OperatorId(99),
                SatelliteClass::CubeSat,
                OrbitalElements::circular(780_000.0, 86.4, 0.0, 0.0).unwrap(),
            )
            .unwrap_err();
        assert_eq!(err, FederationError::UnknownOperator(OperatorId(99)));
        assert!(fed.satellites().is_empty());
        let err = fed
            .add_ground_station(OperatorId(99), default_station_sites()[0])
            .unwrap_err();
        assert_eq!(err, FederationError::UnknownOperator(OperatorId(99)));
    }

    #[test]
    fn withdrawal_migrates_users_to_survivors() {
        let mut fed = small_fed();
        let ids = fed.operator_ids();
        let leaver = ids[0];
        let u1 = fed.register_user(leaver).unwrap();
        let u2 = fed.register_user(leaver).unwrap();
        let u3 = fed.register_user(ids[1]).unwrap();
        let w = fed.withdraw_operator(leaver).unwrap();
        assert_eq!(w.operator, leaver);
        assert_eq!(w.migrated.len(), 2);
        assert!(w.orphaned_satellites > 0);
        // Every migrated user has a surviving home and a fresh secret.
        for (uid, new_home) in &w.migrated {
            assert_ne!(*new_home, leaver);
            let user = fed.user(*uid).unwrap();
            assert_eq!(user.home, *new_home);
            assert!(fed.operator(*new_home).unwrap().auth.user_count() > 0);
        }
        assert_ne!(fed.user(u1.id).unwrap().secret, u1.secret);
        assert_ne!(fed.user(u2.id).unwrap().home, leaver);
        // Unaffected users keep their registration.
        assert_eq!(fed.user(u3.id).unwrap().home, ids[1]);
        // The leaver's certificates no longer verify.
        assert!(fed.federation_secret(leaver).is_err());
        assert_eq!(fed.operator_count(), 3);
        // Node indices stayed stable: the fleet roster is untouched.
        assert_eq!(fed.satellites().len(), 66);
    }

    #[test]
    fn withdrawing_the_last_operator_with_users_is_refused() {
        let mut fed = monolithic_federation(&[SatelliteClass::SmallSat], &default_station_sites());
        let op = fed.operator_ids()[0];
        fed.register_user(op).unwrap();
        assert_eq!(
            fed.withdraw_operator(op).unwrap_err(),
            FederationError::NoSurvivingOperator
        );
        // The roster is untouched by the refused withdrawal.
        assert_eq!(fed.operator_count(), 1);
    }

    #[test]
    fn withdrawing_an_unknown_operator_is_an_error() {
        let mut fed = small_fed();
        assert_eq!(
            fed.withdraw_operator(OperatorId(77)).unwrap_err(),
            FederationError::UnknownOperator(OperatorId(77))
        );
    }

    #[test]
    fn timeline_reproduces_snapshots_bitwise() {
        let fed = small_fed();
        let tl = fed.timeline(60.0, 300.0, 4).unwrap();
        assert_eq!(tl.delta_count(), 5);
        for &t in tl.tick_times() {
            let fresh = fed.snapshot(t);
            let replayed = tl.graph_at(t);
            assert!(
                openspace_net::topology::GraphDelta::between(&fresh, &replayed)
                    .unwrap()
                    .is_empty(),
                "timeline diverged from fresh snapshot at t={t}"
            );
        }
        // Thread count cannot change the result.
        let serial = fed.timeline(60.0, 300.0, 1).unwrap();
        assert!(
            openspace_net::topology::GraphDelta::between(serial.base(), tl.base())
                .unwrap()
                .is_empty()
        );
    }

    #[test]
    fn fault_topology_mirrors_the_roster() {
        let fed = small_fed();
        let topo = fed.fault_topology();
        assert_eq!(topo.n_sats(), 66);
        assert_eq!(topo.n_stations(), 6);
        // Ownership round-robins exactly like the roster.
        let ops = fed.operator_ids();
        assert_eq!(
            topo.nodes_of_operator(ops[0]).len(),
            fed.satellites_of(ops[0]).len()
                + fed.stations().iter().filter(|s| s.owner == ops[0]).count()
        );
    }
}
