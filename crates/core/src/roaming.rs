//! User association and handover — §2.2's roaming machinery, end to end.
//!
//! Association: evaluate beacons → associate with the nearest OpenSpace
//! satellite (regardless of owner) → authenticate through the home ISP's
//! AAA over ISLs → receive a roaming certificate.
//!
//! Handover: the serving satellite predicts its successor from public
//! orbits and mints a session token; the user commits to the successor
//! without touching the home AAA again.

use crate::federation::{Federation, FederationError, User};
use openspace_net::isl::best_access_satellite;
use openspace_net::routing::{latency_weight, shortest_path};
use openspace_net::topology::Graph;
use openspace_orbit::constants::SPEED_OF_LIGHT_M_PER_S;
use openspace_orbit::frames::{eci_to_ecef, Vec3};
use openspace_protocol::auth::make_access_request;
use openspace_protocol::certificate::Certificate;
use openspace_protocol::handover::{derive_session_token, validate_commit, HandoverCommit};
use openspace_protocol::types::{OperatorId, SatelliteId};

/// Why association failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssociationError {
    /// No OpenSpace satellite above the elevation mask.
    NoSatelliteInView,
    /// The home operator's AAA is unreachable (no route to any of its
    /// ground stations).
    HomeAaaUnreachable,
    /// The home AAA rejected the credentials.
    AuthRejected,
    /// The user's home operator has withdrawn from the federation; the
    /// user must re-register with a surviving member.
    HomeOperatorWithdrawn,
}

impl std::fmt::Display for AssociationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoSatelliteInView => write!(f, "no OpenSpace satellite in view"),
            Self::HomeAaaUnreachable => write!(f, "home AAA unreachable over ISLs"),
            Self::AuthRejected => write!(f, "home AAA rejected credentials"),
            Self::HomeOperatorWithdrawn => {
                write!(f, "home operator has withdrawn from the federation")
            }
        }
    }
}

impl std::error::Error for AssociationError {}

/// A successful association.
#[derive(Debug, Clone)]
pub struct Association {
    /// Serving satellite.
    pub serving: SatelliteId,
    /// Whether the serving satellite belongs to the user's home operator
    /// (false = "roaming", which §2.2 expects to be rampant).
    pub roaming: bool,
    /// The roaming certificate issued by the home AAA.
    pub certificate: Certificate,
    /// User↔satellite one-way propagation delay (s).
    pub access_delay_s: f64,
    /// Total association latency (s): beacon evaluation is free (already
    /// listening); this is the auth round trip over ISLs plus access legs.
    pub association_latency_s: f64,
    /// ISL hops between the serving satellite and the home ground station
    /// used for authentication.
    pub auth_path_hops: usize,
}

/// Run the §2.2 association procedure for `user` standing at
/// `user_ecef`, at simulation time `t_s` (certificates are stamped in ms).
///
/// The AAA round trip is routed over the federated snapshot from the
/// serving satellite to the nearest ground station owned by the home
/// operator.
pub fn associate(
    fed: &mut Federation,
    user: &User,
    user_ecef: Vec3,
    t_s: f64,
    nonce: u64,
) -> Result<Association, AssociationError> {
    let sat_nodes = fed.sat_nodes();
    let (sat_idx, slant_m) = best_access_satellite(
        user_ecef,
        &sat_nodes,
        t_s,
        fed.snapshot_params.min_elevation_rad,
    )
    .ok_or(AssociationError::NoSatelliteInView)?;
    let serving = fed.satellites()[sat_idx];
    let access_delay_s = slant_m / SPEED_OF_LIGHT_M_PER_S;

    // Route serving satellite → nearest home-operator ground station.
    let graph = fed.snapshot(t_s);
    let auth_path = route_to_operator_station(&graph, fed, sat_idx, user.home)
        .ok_or(AssociationError::HomeAaaUnreachable)?;
    let (auth_one_way_s, hops) = auth_path;

    // The RADIUS exchange: request up, verdict down.
    let req = make_access_request(user.id, user.home, nonce, &user.secret);
    let now_ms = (t_s * 1000.0) as u64;
    let accept = fed
        .operator_mut(user.home)
        .ok_or(AssociationError::HomeOperatorWithdrawn)?
        .auth
        .handle_request(&req, now_ms)
        .map_err(|_| AssociationError::AuthRejected)?;

    Ok(Association {
        serving: serving.id,
        roaming: serving.owner != user.home,
        certificate: accept.certificate,
        access_delay_s,
        association_latency_s: 2.0 * (access_delay_s + auth_one_way_s),
        auth_path_hops: hops,
    })
}

/// Shortest-latency route from a satellite node to any ground station of
/// `op`; returns (one-way latency, hop count).
fn route_to_operator_station(
    graph: &Graph,
    fed: &Federation,
    sat_idx: usize,
    op: OperatorId,
) -> Option<(f64, usize)> {
    let mut best: Option<(f64, usize)> = None;
    for (gi, station) in fed.stations().iter().enumerate() {
        if station.owner != op {
            continue;
        }
        let dst = graph.station_node(gi);
        if let Some(p) = shortest_path(graph, graph.sat_node(sat_idx), dst, latency_weight) {
            if best.is_none_or(|(c, _)| p.total_cost < c) {
                best = Some((p.total_cost, p.hops()));
            }
        }
    }
    best
}

/// One handover step executed with the OpenSpace successor-prediction
/// protocol.
#[derive(Debug, Clone, Copy)]
pub struct HandoverOutcome {
    /// The new serving satellite.
    pub successor: SatelliteId,
    /// Interruption experienced by the user (s): one access round trip to
    /// the successor, since no re-authentication happens.
    pub interruption_s: f64,
    /// Whether the successor accepted the session token.
    pub accepted: bool,
}

/// Execute a predicted handover: the serving satellite mints a session
/// token bound to (certificate, successor, time); the user commits to the
/// successor; the successor validates offline against the home operator's
/// federation secret. Fails when the user's home operator has left the
/// federation (its secret — and so its certificates — are gone with it).
pub fn execute_handover(
    fed: &Federation,
    user: &User,
    certificate: &Certificate,
    serving: SatelliteId,
    successor: SatelliteId,
    user_ecef: Vec3,
    t_s: f64,
) -> Result<HandoverOutcome, FederationError> {
    let effective_ms = (t_s * 1000.0) as u64;
    let home_secret = fed.federation_secret(user.home)?;
    let token = derive_session_token(certificate, successor, effective_ms, home_secret);
    let commit = HandoverCommit {
        user: user.id,
        from: serving,
        session_token: token,
    };
    let accepted = validate_commit(
        &commit,
        certificate,
        successor,
        effective_ms,
        home_secret,
        effective_ms,
    );
    // Interruption: one round trip to the successor.
    let interruption_s = fed
        .satellite_index(successor)
        .map(|idx| {
            let sat = &fed.satellites()[idx];
            let sat_ecef = eci_to_ecef(sat.propagator.position_eci(t_s), t_s);
            2.0 * user_ecef.distance(sat_ecef) / SPEED_OF_LIGHT_M_PER_S
        })
        .unwrap_or(f64::INFINITY);
    Ok(HandoverOutcome {
        successor,
        interruption_s,
        accepted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::federation::{default_station_sites, iridium_federation};
    use openspace_orbit::frames::{geodetic_to_ecef, Geodetic};
    use openspace_phy::hardware::SatelliteClass;

    fn fed() -> Federation {
        iridium_federation(4, &[SatelliteClass::SmallSat], &default_station_sites())
    }

    fn equator_user() -> Vec3 {
        geodetic_to_ecef(Geodetic::from_degrees(5.0, 15.0, 0.0))
    }

    #[test]
    fn association_succeeds_on_iridium() {
        let mut f = fed();
        let op = f.operator_ids()[0];
        let u = f.register_user(op).expect("member operator");
        let a = associate(&mut f, &u, equator_user(), 0.0, 1).expect("association");
        assert!(a.access_delay_s > 0.0 && a.access_delay_s < 0.02);
        assert!(a.association_latency_s >= 2.0 * a.access_delay_s);
        let fed_secret = *f.federation_secret(op).expect("member operator");
        assert!(a.certificate.verify(&fed_secret, 1));
    }

    #[test]
    fn roaming_flag_reflects_ownership() {
        let mut f = fed();
        let op = f.operator_ids()[0];
        let u = f.register_user(op).expect("member operator");
        let a = associate(&mut f, &u, equator_user(), 0.0, 2).unwrap();
        let serving_owner = f.satellite(a.serving).unwrap().owner;
        assert_eq!(a.roaming, serving_owner != op);
    }

    #[test]
    fn replayed_nonce_fails_second_association() {
        let mut f = fed();
        let op = f.operator_ids()[0];
        let u = f.register_user(op).expect("member operator");
        associate(&mut f, &u, equator_user(), 0.0, 7).unwrap();
        let err = associate(&mut f, &u, equator_user(), 1.0, 7).unwrap_err();
        assert_eq!(err, AssociationError::AuthRejected);
    }

    #[test]
    fn unregistered_user_rejected() {
        let mut f = fed();
        let op = f.operator_ids()[0];
        let ghost = User {
            id: openspace_protocol::types::UserId(999),
            home: op,
            secret: openspace_protocol::crypto::SharedSecret::derive(999, "x"),
        };
        let err = associate(&mut f, &ghost, equator_user(), 0.0, 1).unwrap_err();
        assert_eq!(err, AssociationError::AuthRejected);
    }

    #[test]
    fn no_satellite_in_view_without_constellation() {
        let mut f = Federation::new();
        let op = f.add_operator("lonely");
        let u = f.register_user(op).expect("member operator");
        let err = associate(&mut f, &u, equator_user(), 0.0, 1).unwrap_err();
        assert_eq!(err, AssociationError::NoSatelliteInView);
    }

    #[test]
    fn handover_token_accepted_and_fast() {
        let mut f = fed();
        let op = f.operator_ids()[0];
        let u = f.register_user(op).expect("member operator");
        let a = associate(&mut f, &u, equator_user(), 0.0, 3).unwrap();
        // Pick any other satellite as successor.
        let successor = f
            .satellites()
            .iter()
            .find(|s| s.id != a.serving)
            .unwrap()
            .id;
        let h = execute_handover(
            &f,
            &u,
            &a.certificate,
            a.serving,
            successor,
            equator_user(),
            10.0,
        )
        .expect("member operator");
        assert!(h.accepted, "valid token must be accepted");
        // Interruption is a single round trip — far below the
        // re-authentication path.
        assert!(h.interruption_s < a.association_latency_s);
    }

    #[test]
    fn association_after_home_withdrawal_fails_cleanly() {
        let mut f = fed();
        let op = f.operator_ids()[0];
        // A user whose snapshot predates the withdrawal (the federation's
        // own registry migrates users; this stale handle does not).
        let u = f.register_user(op).expect("member operator");
        f.withdraw_operator(op).expect("survivors exist");
        let err = associate(&mut f, &u, equator_user(), 0.0, 11).unwrap_err();
        // Either the AAA is gone entirely or its stations no longer
        // terminate the auth route — both are clean errors, not panics.
        assert!(matches!(
            err,
            AssociationError::HomeOperatorWithdrawn | AssociationError::HomeAaaUnreachable
        ));
        // The migrated registration works against the new home.
        let migrated = *f.user(u.id).expect("user survived migration");
        assert_ne!(migrated.home, op);
        let a = associate(&mut f, &migrated, equator_user(), 0.0, 12).expect("re-associates");
        assert!(a.association_latency_s > 0.0);
    }

    #[test]
    fn handover_with_foreign_certificate_rejected() {
        let mut f = fed();
        let op = f.operator_ids()[0];
        let u = f.register_user(op).expect("member operator");
        let a = associate(&mut f, &u, equator_user(), 0.0, 4).unwrap();
        // Forge: certificate for a different user id.
        let mut forged = a.certificate;
        forged.user = openspace_protocol::types::UserId(4_242);
        let successor = f.satellites()[5].id;
        let h = execute_handover(&f, &u, &forged, a.serving, successor, equator_user(), 10.0)
            .expect("member operator");
        assert!(!h.accepted, "forged certificate must fail validation");
    }
}
