//! # openspace-core
//!
//! The OpenSpace architecture assembled: a federation of independent
//! satellite operators that together deliver a global LEO Internet
//! service — the primary contribution of *A Roadmap for the
//! Democratization of Space-Based Communications* (HotNets '24) as a
//! runnable system.
//!
//! * [`operator`] — operators, satellites (with hardware classes), and
//!   the shared ground segment.
//! * [`federation`] — the roster and its topology: federated and solo
//!   snapshots, contact plans, the Iridium-split construction of §4 and
//!   the monolithic baseline.
//! * [`roaming`] — §2.2 end to end: beacon-based association, RADIUS-like
//!   auth through the home ISP over ISLs, certificate issuance, and
//!   successor-predicted handover with no re-authentication.
//! * [`delivery`] — end-to-end packet delivery across operator
//!   boundaries, emitting the §3 cross-verifiable accounting records.
//! * [`demand`] — §5(1)'s user base: attaches `openspace-demand`
//!   population cells to covering operators, maps demand ticks onto
//!   simulator flows, and turns demand-weighted traffic into ledgers.
//! * [`study`] — the §4 simulation study (Figure 2): latency and coverage
//!   versus constellation size under the paper's exact methodology.
//! * [`security`] — §5(6)'s open problem: ledger-dispute-driven bad-actor
//!   detection with quarantine and rehabilitation, feeding the routing
//!   layer's carrier blocklist.
//! * [`netsim`] — §5(2)'s open problem: a packet-level discrete-event
//!   simulation with per-link queues, comparing proactive (load-blind)
//!   against adaptive (utilization-replanned) routing; consumes compiled
//!   fault plans ([`openspace_sim::fault`]) for graceful-degradation
//!   studies.
//!
//! ## Quick start
//!
//! ```
//! use openspace_core::prelude::*;
//! use openspace_phy::hardware::SatelliteClass;
//! use openspace_orbit::frames::{geodetic_to_ecef, Geodetic};
//!
//! // Four small firms share an Iridium-like constellation (§4).
//! let mut fed = iridium_federation(
//!     4,
//!     &[SatelliteClass::SmallSat],
//!     &default_station_sites(),
//! );
//! let home = fed.operator_ids()[0];
//! let user = fed.register_user(home).expect("home is a member");
//!
//! // Associate from Nairobi: nearest satellite of *any* operator serves.
//! let pos = geodetic_to_ecef(Geodetic::from_degrees(-1.3, 36.8, 1_700.0));
//! let assoc = associate(&mut fed, &user, pos, 0.0, 1).unwrap();
//! assert!(assoc.association_latency_s < 0.5);
//! ```

pub mod delivery;
pub mod demand;
pub mod federation;
pub mod netsim;
pub mod operator;
pub mod roaming;
pub mod security;
pub mod study;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::delivery::{carrier_ledger_secret, deliver, Delivery, DeliveryError};
    pub use crate::demand::{
        attach_cells, demand_flows_for, demand_ledgers, BridgeStats, CellAttachment, CellCoverage,
    };
    pub use crate::federation::{
        default_station_sites, iridium_federation, monolithic_federation, Federation,
        FederationError, User, Withdrawal,
    };
    pub use crate::netsim::{
        DemandWorkload, FaultImpact, FlowSpec, NetSim, NetSimConfig, NetSimConfigBuilder,
        NetSimReport, RoutingMode, TrafficKind,
    };
    // The deprecated free-function entry points stay importable through
    // the prelude so downstream code keeps compiling (with its own
    // deprecation warnings at the call sites).
    #[allow(deprecated)]
    pub use crate::netsim::{
        run_netsim, run_netsim_dynamic, run_netsim_dynamic_recorded, run_netsim_faulted,
        run_netsim_faulted_recorded, run_netsim_recorded,
    };
    pub use crate::operator::{make_satellite, GroundStation, Operator, Satellite};
    pub use crate::roaming::{
        associate, execute_handover, Association, AssociationError, HandoverOutcome,
    };
    pub use crate::security::{ReputationPolicy, ReputationTracker, TrustState};
    pub use crate::study::{
        coverage_vs_satellites, latency_vs_satellites, study_constellation, study_snapshot_params,
        CoveragePoint, LatencyPoint, ScenarioRunner, ScenarioRunnerBuilder, StudyConfig,
        StudyModel,
    };
}
