//! Atmospheric and rain attenuation for ground↔satellite links.
//!
//! §2.1: ground links differ from ISLs "due to factors such as atmospheric
//! attenuation". We model two effects with simple, well-behaved fits:
//!
//! * **Gaseous absorption** — a per-band zenith loss scaled by the
//!   cosecant of the elevation angle (the standard flat-slab air-mass
//!   approximation, clamped at low elevation).
//! * **Rain attenuation** — the ITU-R P.838 power-law `γ = k·R^α` applied
//!   over an effective slant path through rain. Coefficients are tabulated
//!   per band near the band centers.
//!
//! ISLs (space-to-space) see none of this; callers apply these losses only
//! to links with a ground endpoint.

use crate::bands::RfBand;

/// Zenith one-way gaseous absorption (dB) for a dry-ish mid-latitude
/// atmosphere, per band. Values are representative of ITU-R P.676 outputs.
fn zenith_gas_loss_db(band: RfBand) -> f64 {
    match band {
        RfBand::Uhf => 0.03,
        RfBand::S => 0.05,
        RfBand::X => 0.08,
        RfBand::Ku => 0.12,
        RfBand::Ka => 0.35,
    }
}

/// ITU-R P.838 power-law coefficients `(k, alpha)` near each band center
/// (circular polarization, representative values).
fn rain_coefficients(band: RfBand) -> (f64, f64) {
    match band {
        RfBand::Uhf => (1.0e-5, 0.9), // negligible at 435 MHz
        RfBand::S => (2.0e-4, 1.0),   // still tiny at 2.2 GHz
        RfBand::X => (1.2e-2, 1.18),
        RfBand::Ku => (2.7e-2, 1.15),
        RfBand::Ka => (1.9e-1, 1.04),
    }
}

/// Air-mass factor for a given elevation: `1/sin(elev)`, clamped to the
/// horizon value at 5° to avoid the singularity (links below a 5° mask are
/// not operated in OpenSpace anyway).
pub fn air_mass_factor(elevation_rad: f64) -> f64 {
    let min_elev = 5f64.to_radians();
    1.0 / elevation_rad.max(min_elev).sin()
}

/// Total gaseous absorption (dB) on a ground-satellite path at the given
/// elevation.
pub fn gas_loss_db(band: RfBand, elevation_rad: f64) -> f64 {
    zenith_gas_loss_db(band) * air_mass_factor(elevation_rad)
}

/// Specific rain attenuation (dB/km) at rain rate `rain_mm_per_h`.
pub fn rain_specific_attenuation_db_per_km(band: RfBand, rain_mm_per_h: f64) -> f64 {
    assert!(rain_mm_per_h >= 0.0, "rain rate must be non-negative");
    if rain_mm_per_h == 0.0 {
        return 0.0;
    }
    let (k, alpha) = rain_coefficients(band);
    k * rain_mm_per_h.powf(alpha)
}

/// Effective rain-path attenuation (dB): specific attenuation times an
/// effective slant path through the rain layer (rain height 4 km, slab
/// model with the same low-elevation clamp as [`air_mass_factor`]).
pub fn rain_loss_db(band: RfBand, rain_mm_per_h: f64, elevation_rad: f64) -> f64 {
    const RAIN_HEIGHT_KM: f64 = 4.0;
    let slant_km = RAIN_HEIGHT_KM * air_mass_factor(elevation_rad);
    rain_specific_attenuation_db_per_km(band, rain_mm_per_h) * slant_km
}

/// Combined atmospheric loss (dB) for a ground link.
pub fn total_atmospheric_loss_db(band: RfBand, rain_mm_per_h: f64, elevation_rad: f64) -> f64 {
    gas_loss_db(band, elevation_rad) + rain_loss_db(band, rain_mm_per_h, elevation_rad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn zenith_air_mass_is_one() {
        assert!((air_mass_factor(FRAC_PI_2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn air_mass_grows_toward_horizon_but_clamps() {
        let at30 = air_mass_factor(30f64.to_radians());
        let at10 = air_mass_factor(10f64.to_radians());
        let at1 = air_mass_factor(1f64.to_radians());
        let at0 = air_mass_factor(0.0);
        assert!(at10 > at30);
        assert_eq!(at1, at0, "below 5 deg the factor is clamped");
        assert!((at30 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn no_rain_no_rain_loss() {
        for b in RfBand::all() {
            assert_eq!(rain_loss_db(b, 0.0, FRAC_PI_2), 0.0);
        }
    }

    #[test]
    fn ka_suffers_far_more_rain_loss_than_s() {
        let heavy = 25.0; // mm/h
        let ka = rain_loss_db(RfBand::Ka, heavy, FRAC_PI_2);
        let s = rain_loss_db(RfBand::S, heavy, FRAC_PI_2);
        assert!(ka > 50.0 * s, "Ka {ka} dB vs S {s} dB");
        assert!(
            ka > 3.0,
            "heavy rain on Ka should cost several dB, got {ka}"
        );
    }

    #[test]
    fn rain_loss_monotone_in_rate() {
        let a = rain_loss_db(RfBand::Ku, 5.0, FRAC_PI_2);
        let b = rain_loss_db(RfBand::Ku, 50.0, FRAC_PI_2);
        assert!(b > a);
    }

    #[test]
    fn low_elevation_costs_more() {
        let zen = total_atmospheric_loss_db(RfBand::Ku, 10.0, FRAC_PI_2);
        let low = total_atmospheric_loss_db(RfBand::Ku, 10.0, 10f64.to_radians());
        assert!(low > zen * 3.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rain_panics() {
        rain_specific_attenuation_db_per_km(RfBand::Ku, -1.0);
    }

    #[test]
    fn gas_loss_ordering_follows_frequency() {
        let e = FRAC_PI_2;
        assert!(gas_loss_db(RfBand::Ka, e) > gas_loss_db(RfBand::Ku, e));
        assert!(gas_loss_db(RfBand::Ku, e) > gas_loss_db(RfBand::S, e));
    }
}
