//! Satellite power subsystem.
//!
//! §2.2: "given the power cost of executing rotations for ISLs and
//! establishing those links, satellites may have power consumption
//! constraints that limit the number of ISLs they can establish and the
//! size of data transfers they can facilitate" (citing Gao et al. 2023).
//!
//! The model: a solar array charges a battery when sunlit; transceivers,
//! ISL slews, and the bus draw from it. The scheduler in `openspace-net`
//! consults [`PowerBudget::can_afford`] before committing to an ISL.

/// Static parameters of a satellite's electrical power system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSystem {
    /// Solar array output when fully sunlit (W).
    pub solar_power_w: f64,
    /// Battery capacity (J).
    pub battery_capacity_j: f64,
    /// Constant bus load — avionics, thermal, ADCS (W).
    pub bus_load_w: f64,
    /// Battery charge/discharge efficiency (0,1].
    pub battery_efficiency: f64,
}

impl PowerSystem {
    /// A 6U-cubesat class system: ~20 W array, 80 Wh battery.
    pub fn cubesat_6u() -> Self {
        Self {
            solar_power_w: 20.0,
            battery_capacity_j: 80.0 * 3600.0,
            bus_load_w: 6.0,
            battery_efficiency: 0.9,
        }
    }

    /// A smallsat (ESPA-class) system: 300 W array, 1 kWh battery.
    pub fn smallsat() -> Self {
        Self {
            solar_power_w: 300.0,
            battery_capacity_j: 1_000.0 * 3600.0,
            bus_load_w: 80.0,
            battery_efficiency: 0.92,
        }
    }

    /// A Starlink-class bus: several kW array.
    pub fn broadband_bus() -> Self {
        Self {
            solar_power_w: 4_000.0,
            battery_capacity_j: 8_000.0 * 3600.0,
            bus_load_w: 1_200.0,
            battery_efficiency: 0.95,
        }
    }
}

/// Error when a power draw cannot be sustained.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsufficientPower {
    /// Energy requested (J).
    pub requested_j: f64,
    /// Energy actually available above the reserve floor (J).
    pub available_j: f64,
}

impl std::fmt::Display for InsufficientPower {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "requested {} J but only {} J available above reserve",
            self.requested_j, self.available_j
        )
    }
}

impl std::error::Error for InsufficientPower {}

/// A running energy budget for one satellite.
///
/// The budget never lets state-of-charge fall below `reserve_fraction` of
/// capacity — the paper's power-constrained satellites decline ISLs rather
/// than brown out.
#[derive(Debug, Clone, Copy)]
pub struct PowerBudget {
    system: PowerSystem,
    /// Current stored energy (J).
    state_of_charge_j: f64,
    /// Fraction of capacity kept as an untouchable reserve.
    reserve_fraction: f64,
}

impl PowerBudget {
    /// Start with a full battery and the given reserve fraction.
    ///
    /// # Panics
    /// Panics if `reserve_fraction` is outside `[0, 1)`.
    pub fn new(system: PowerSystem, reserve_fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&reserve_fraction),
            "reserve fraction must be in [0,1), got {reserve_fraction}"
        );
        Self {
            system,
            state_of_charge_j: system.battery_capacity_j,
            reserve_fraction,
        }
    }

    /// Stored energy (J).
    pub fn state_of_charge_j(&self) -> f64 {
        self.state_of_charge_j
    }

    /// State of charge as a fraction of capacity.
    pub fn state_of_charge_fraction(&self) -> f64 {
        self.state_of_charge_j / self.system.battery_capacity_j
    }

    /// Energy available above the reserve floor (J).
    pub fn available_j(&self) -> f64 {
        (self.state_of_charge_j - self.reserve_fraction * self.system.battery_capacity_j).max(0.0)
    }

    /// Whether an extra draw of `energy_j` fits above the reserve.
    pub fn can_afford(&self, energy_j: f64) -> bool {
        energy_j <= self.available_j()
    }

    /// Spend `energy_j` on a discrete action (an ISL slew, an acquisition
    /// scan, a bulk transfer). Fails without side effects if it would dip
    /// into the reserve.
    pub fn draw(&mut self, energy_j: f64) -> Result<(), InsufficientPower> {
        assert!(energy_j >= 0.0, "cannot draw negative energy");
        if !self.can_afford(energy_j) {
            return Err(InsufficientPower {
                requested_j: energy_j,
                available_j: self.available_j(),
            });
        }
        self.state_of_charge_j -= energy_j;
        Ok(())
    }

    /// Advance wall-clock by `dt_s` with the given continuous payload load
    /// (W) on top of the bus load, under sunlight or eclipse.
    ///
    /// Charging applies battery efficiency; the battery clamps at capacity
    /// and at zero (a brown-out clamps rather than going negative — the
    /// caller can detect it via [`Self::state_of_charge_j`] == 0).
    pub fn advance(&mut self, dt_s: f64, payload_load_w: f64, sunlit: bool) {
        assert!(dt_s >= 0.0 && payload_load_w >= 0.0);
        let generation = if sunlit {
            self.system.solar_power_w
        } else {
            0.0
        };
        let net_w = generation - self.system.bus_load_w - payload_load_w;
        let delta_j = if net_w >= 0.0 {
            net_w * dt_s * self.system.battery_efficiency
        } else {
            net_w * dt_s / self.system.battery_efficiency
        };
        self.state_of_charge_j =
            (self.state_of_charge_j + delta_j).clamp(0.0, self.system.battery_capacity_j);
    }
}

/// Energy cost (J) of slewing the spacecraft to orient an ISL terminal:
/// reaction-wheel power times slew duration. §2.1's "spin to maintain a
/// reliable link".
pub fn slew_energy_j(slew_angle_rad: f64, slew_rate_rad_per_s: f64, wheel_power_w: f64) -> f64 {
    assert!(slew_rate_rad_per_s > 0.0, "slew rate must be positive");
    assert!(slew_angle_rad >= 0.0 && wheel_power_w >= 0.0);
    wheel_power_w * slew_angle_rad / slew_rate_rad_per_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full() {
        let b = PowerBudget::new(PowerSystem::cubesat_6u(), 0.2);
        assert_eq!(b.state_of_charge_fraction(), 1.0);
    }

    #[test]
    fn draw_respects_reserve() {
        let sys = PowerSystem::cubesat_6u();
        let mut b = PowerBudget::new(sys, 0.5);
        let half = sys.battery_capacity_j / 2.0;
        assert!(b.can_afford(half));
        assert!(!b.can_afford(half + 1.0));
        b.draw(half).unwrap();
        let err = b.draw(1.0).unwrap_err();
        assert_eq!(err.available_j, 0.0);
    }

    #[test]
    fn failed_draw_leaves_state_unchanged() {
        let mut b = PowerBudget::new(PowerSystem::cubesat_6u(), 0.2);
        let before = b.state_of_charge_j();
        let _ = b.draw(f64::MAX / 2.0);
        assert_eq!(b.state_of_charge_j(), before);
    }

    #[test]
    fn sunlit_idle_stays_full() {
        let mut b = PowerBudget::new(PowerSystem::smallsat(), 0.2);
        b.advance(3600.0, 0.0, true);
        assert_eq!(b.state_of_charge_fraction(), 1.0);
    }

    #[test]
    fn eclipse_drains_battery() {
        let mut b = PowerBudget::new(PowerSystem::cubesat_6u(), 0.0);
        let before = b.state_of_charge_j();
        b.advance(1800.0, 4.0, false); // 35-min eclipse, 4 W payload
        let expected_drain = (6.0 + 4.0) * 1800.0 / 0.9;
        assert!((before - b.state_of_charge_j() - expected_drain).abs() < 1.0);
    }

    #[test]
    fn battery_clamps_at_zero() {
        let mut b = PowerBudget::new(PowerSystem::cubesat_6u(), 0.0);
        b.advance(1e7, 100.0, false);
        assert_eq!(b.state_of_charge_j(), 0.0);
    }

    #[test]
    fn orbit_cycle_recovers_charge() {
        // One eclipse + sunlit cycle of an Iridium-ish orbit should leave a
        // smallsat near full: generation margin dominates.
        let mut b = PowerBudget::new(PowerSystem::smallsat(), 0.2);
        b.advance(2100.0, 50.0, false); // 35 min eclipse
        let after_eclipse = b.state_of_charge_fraction();
        assert!(after_eclipse < 1.0);
        b.advance(3900.0, 50.0, true); // 65 min sun
        assert!(b.state_of_charge_fraction() > after_eclipse);
        assert_eq!(b.state_of_charge_fraction(), 1.0);
    }

    #[test]
    fn slew_energy_scales_with_angle() {
        let e90 = slew_energy_j(std::f64::consts::FRAC_PI_2, 0.01, 10.0);
        let e180 = slew_energy_j(std::f64::consts::PI, 0.01, 10.0);
        assert!((e180 / e90 - 2.0).abs() < 1e-12);
        // 90 deg at 0.01 rad/s with a 10 W wheel set: ~1571 J.
        assert!((e90 - 1570.8).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "reserve fraction")]
    fn bad_reserve_panics() {
        PowerBudget::new(PowerSystem::cubesat_6u(), 1.0);
    }
}
