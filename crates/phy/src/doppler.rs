//! Doppler shift on satellite links.
//!
//! LEO satellites move at ~7.5 km/s; at Ku band that is ±300 kHz of
//! carrier offset, which the flexible transceivers §2.1 calls for must
//! track. The routing stack itself only needs the radial-velocity helper,
//! but the modem model exposes the full shift so the examples can show
//! realistic numbers.

use openspace_orbit::constants::SPEED_OF_LIGHT_M_PER_S;
use openspace_orbit::frames::Vec3;

/// Radial velocity (m/s) of `b` relative to `a`: positive when the range
/// is increasing (receding ⇒ negative Doppler shift).
///
/// # Panics
/// Panics if the two positions coincide.
pub fn radial_velocity_m_per_s(pos_a: Vec3, vel_a: Vec3, pos_b: Vec3, vel_b: Vec3) -> f64 {
    let range = pos_b - pos_a;
    let n = range.norm();
    assert!(n > 0.0, "coincident endpoints have no radial direction");
    (vel_b - vel_a).dot(range) * (1.0 / n)
}

/// First-order Doppler shift (Hz) observed at `a` for a carrier
/// `carrier_hz` transmitted by `b`.
pub fn doppler_shift_hz(
    carrier_hz: f64,
    pos_a: Vec3,
    vel_a: Vec3,
    pos_b: Vec3,
    vel_b: Vec3,
) -> f64 {
    assert!(carrier_hz > 0.0, "carrier must be positive");
    -radial_velocity_m_per_s(pos_a, vel_a, pos_b, vel_b) / SPEED_OF_LIGHT_M_PER_S * carrier_hz
}

/// Worst-case Doppler magnitude (Hz) for a LEO pass: carrier scaled by
/// `v/c` with `v` the satellite speed (the zenith-pass bound).
pub fn max_doppler_hz(carrier_hz: f64, speed_m_per_s: f64) -> f64 {
    assert!(carrier_hz > 0.0 && speed_m_per_s >= 0.0);
    carrier_hz * speed_m_per_s / SPEED_OF_LIGHT_M_PER_S
}

#[cfg(test)]
mod tests {
    use super::*;
    use openspace_orbit::constants::{circular_velocity_m_per_s, km_to_m, EARTH_RADIUS_M};
    use openspace_orbit::kepler::OrbitalElements;
    use openspace_orbit::propagator::{PerturbationModel, Propagator};

    #[test]
    fn receding_target_has_negative_shift() {
        let pa = Vec3::new(0.0, 0.0, 0.0);
        let pb = Vec3::new(1000.0, 0.0, 0.0);
        let vb = Vec3::new(100.0, 0.0, 0.0); // moving away
        let shift = doppler_shift_hz(1e9, pa, Vec3::zero(), pb, vb);
        assert!(shift < 0.0);
    }

    #[test]
    fn approaching_target_has_positive_shift() {
        let pa = Vec3::new(0.0, 0.0, 0.0);
        let pb = Vec3::new(1000.0, 0.0, 0.0);
        let vb = Vec3::new(-100.0, 0.0, 0.0);
        assert!(doppler_shift_hz(1e9, pa, Vec3::zero(), pb, vb) > 0.0);
    }

    #[test]
    fn transverse_motion_has_no_first_order_shift() {
        let pa = Vec3::zero();
        let pb = Vec3::new(1000.0, 0.0, 0.0);
        let vb = Vec3::new(0.0, 100.0, 0.0);
        assert!(doppler_shift_hz(1e9, pa, Vec3::zero(), pb, vb).abs() < 1e-9);
    }

    #[test]
    fn leo_ku_band_doppler_is_hundreds_of_khz() {
        let v = circular_velocity_m_per_s(EARTH_RADIUS_M + km_to_m(780.0));
        let d = max_doppler_hz(12.0e9, v);
        assert!((2.0e5..4.0e5).contains(&d), "max Doppler {d} Hz");
    }

    #[test]
    fn overhead_pass_shift_changes_sign() {
        // Ground point on +X; satellite passes overhead in the XZ plane.
        let sat = Propagator::new(
            OrbitalElements::circular(km_to_m(780.0), 90.0, 0.0, 0.0).unwrap(),
            PerturbationModel::TwoBody,
        );
        let ground_pos = Vec3::new(EARTH_RADIUS_M, 0.0, 0.0);
        let ground_vel = Vec3::zero(); // ECI ground motion negligible for the sign test
        let (p_before, v_before) = sat.state_eci(-120.0);
        let (p_after, v_after) = sat.state_eci(120.0);
        let s_before = doppler_shift_hz(2.2e9, ground_pos, ground_vel, p_before, v_before);
        let s_after = doppler_shift_hz(2.2e9, ground_pos, ground_vel, p_after, v_after);
        assert!(
            s_before > 0.0 && s_after < 0.0,
            "approach {s_before}, recede {s_after}"
        );
    }

    #[test]
    #[should_panic(expected = "coincident")]
    fn coincident_endpoints_panic() {
        radial_velocity_m_per_s(Vec3::zero(), Vec3::zero(), Vec3::zero(), Vec3::zero());
    }
}
