//! Antenna gain and beamwidth models.
//!
//! Used to derive terminal gains from physical aperture sizes, and to
//! compute the beam divergences that drive the optical
//! pointing-acquisition-tracking model.

/// Gain (dBi) of a circular aperture of `diameter_m` at `wavelength_m`
/// with aperture efficiency `efficiency` (typically 0.55–0.7).
///
/// `G = η (π D / λ)²`.
///
/// # Panics
/// Panics unless diameter and wavelength are positive and efficiency is in
/// `(0, 1]`.
pub fn aperture_gain_dbi(diameter_m: f64, wavelength_m: f64, efficiency: f64) -> f64 {
    assert!(diameter_m > 0.0, "diameter must be positive");
    assert!(wavelength_m > 0.0, "wavelength must be positive");
    assert!(
        efficiency > 0.0 && efficiency <= 1.0,
        "efficiency must be in (0,1], got {efficiency}"
    );
    let g = efficiency * (std::f64::consts::PI * diameter_m / wavelength_m).powi(2);
    10.0 * g.log10()
}

/// Half-power beamwidth (rad) of a circular aperture:
/// `θ ≈ 1.22 λ / D` (diffraction limit, full width ≈ 70° λ/D in degrees).
pub fn beamwidth_rad(diameter_m: f64, wavelength_m: f64) -> f64 {
    assert!(diameter_m > 0.0 && wavelength_m > 0.0);
    1.22 * wavelength_m / diameter_m
}

/// Pointing loss (dB) for a Gaussian beam: offset `offset_rad` from
/// boresight with half-power beamwidth `beamwidth_rad`.
///
/// `L = 12 (θ/θ₃dB)²` dB — the standard parabolic approximation, valid to
/// about one beamwidth.
pub fn pointing_loss_db(offset_rad: f64, beamwidth_rad: f64) -> f64 {
    assert!(beamwidth_rad > 0.0, "beamwidth must be positive");
    12.0 * (offset_rad / beamwidth_rad).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_meter_dish_at_ku_is_about_40_dbi() {
        // 1 m at 12 GHz (λ=2.5 cm), η=0.6: G ≈ 10 log10(0.6·(π·40)²) ≈ 39.7 dBi.
        let g = aperture_gain_dbi(1.0, 0.025, 0.6);
        assert!((g - 39.75).abs() < 0.5, "{g}");
    }

    #[test]
    fn gain_grows_12db_per_diameter_doubling_squared() {
        let g1 = aperture_gain_dbi(0.5, 0.025, 0.6);
        let g2 = aperture_gain_dbi(1.0, 0.025, 0.6);
        assert!((g2 - g1 - 6.02).abs() < 0.01, "{}", g2 - g1);
    }

    #[test]
    fn beamwidth_shrinks_with_aperture() {
        assert!(beamwidth_rad(1.0, 0.025) < beamwidth_rad(0.5, 0.025));
    }

    #[test]
    fn optical_beam_is_microradians() {
        // 8 cm telescope at 1550 nm: θ ≈ 1.22·1.55e-6/0.08 ≈ 24 µrad.
        let bw = beamwidth_rad(0.08, 1.55e-6);
        assert!((bw * 1e6 - 23.6).abs() < 1.0, "{} urad", bw * 1e6);
    }

    #[test]
    fn boresight_has_no_pointing_loss() {
        assert_eq!(pointing_loss_db(0.0, 1e-3), 0.0);
    }

    #[test]
    fn half_beamwidth_offset_costs_3_db() {
        assert!((pointing_loss_db(0.5e-3, 1e-3) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn bad_efficiency_panics() {
        aperture_gain_dbi(1.0, 0.025, 1.5);
    }
}
