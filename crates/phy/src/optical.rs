//! Optical (laser) inter-satellite links.
//!
//! §2.1: laser ISLs offer higher throughput at lower energy cost than RF,
//! but the terminals are expensive (~$500k, ≥15 kg, 0.0234 m³ — the
//! ConLCT80-class numbers the paper cites) and the narrow beams demand a
//! pointing-acquisition-tracking (PAT) phase before data flows.
//!
//! The model: a Gaussian-beam link budget (free-space spreading of a
//! diffraction-limited beam between telescope apertures) plus a PAT state
//! machine with configurable acquisition time. Receiver sensitivity is
//! expressed in photons/bit, the standard figure for coherent/APD optical
//! receivers.

use crate::antenna::{beamwidth_rad, pointing_loss_db};
use crate::bands::OPTICAL_WAVELENGTH_M;

/// Planck constant (J·s).
const PLANCK_J_S: f64 = 6.626_070_15e-34;

/// An optical ISL terminal (one end).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpticalTerminal {
    /// Optical transmit power (W).
    pub tx_power_w: f64,
    /// Telescope aperture diameter (m).
    pub aperture_m: f64,
    /// Receiver sensitivity (photons per bit at the target BER).
    pub photons_per_bit: f64,
    /// Residual RMS pointing error (rad) once in tracking.
    pub pointing_error_rad: f64,
    /// Time to acquire the peer after pairing (s): the PAT spiral-scan +
    /// lock phase.
    pub acquisition_time_s: f64,
    /// Modem ceiling (bit/s): at short range the photon budget exceeds
    /// what the electronics can modulate; the link rate clamps here.
    pub max_data_rate_bps: f64,
}

impl OpticalTerminal {
    /// A ConLCT80-class commercial terminal — the unit the paper costs at
    /// $500k / 15 kg / 0.0234 m³.
    pub fn conlct80_class() -> Self {
        Self {
            tx_power_w: 2.0,
            aperture_m: 0.08,
            photons_per_bit: 300.0, // DPSK + APD class sensitivity
            pointing_error_rad: 2.0e-6,
            acquisition_time_s: 30.0,
            max_data_rate_bps: 100.0e9,
        }
    }

    /// Transmit beam divergence (half-power full width, rad).
    pub fn beam_divergence_rad(&self) -> f64 {
        beamwidth_rad(self.aperture_m, OPTICAL_WAVELENGTH_M)
    }
}

/// Geometric + pointing link efficiency (linear) between two terminals at
/// `distance_m`: the fraction of transmitted photons collected by the
/// receive aperture.
pub fn optical_link_efficiency(tx: &OpticalTerminal, rx: &OpticalTerminal, distance_m: f64) -> f64 {
    assert!(distance_m > 0.0, "distance must be positive");
    // Beam radius at the receiver (half-power cone).
    let spot_radius_m = tx.beam_divergence_rad() / 2.0 * distance_m;
    let rx_radius_m = rx.aperture_m / 2.0;
    // Fraction of the (uniform-approximated) spot captured.
    let geometric = (rx_radius_m / spot_radius_m).powi(2).min(1.0);
    // Residual pointing jitter of both ends.
    let jitter = tx.pointing_error_rad.hypot(rx.pointing_error_rad);
    let pointing = 10f64.powf(-pointing_loss_db(jitter, tx.beam_divergence_rad()) / 10.0);
    geometric * pointing
}

/// Received optical power (W).
pub fn received_power_w(tx: &OpticalTerminal, rx: &OpticalTerminal, distance_m: f64) -> f64 {
    tx.tx_power_w * optical_link_efficiency(tx, rx, distance_m)
}

/// Achievable data rate (bit/s): received photon flux divided by the
/// receiver's photons-per-bit sensitivity.
pub fn achievable_rate_bps(tx: &OpticalTerminal, rx: &OpticalTerminal, distance_m: f64) -> f64 {
    let photon_energy_j =
        PLANCK_J_S * openspace_orbit::constants::SPEED_OF_LIGHT_M_PER_S / OPTICAL_WAVELENGTH_M;
    let photon_rate = received_power_w(tx, rx, distance_m) / photon_energy_j;
    (photon_rate / rx.photons_per_bit).min(rx.max_data_rate_bps)
}

/// Transmit energy per delivered bit (J/bit).
pub fn energy_per_bit_j(tx: &OpticalTerminal, rx: &OpticalTerminal, distance_m: f64) -> f64 {
    let rate = achievable_rate_bps(tx, rx, distance_m);
    if rate > 0.0 {
        tx.tx_power_w / rate
    } else {
        f64::INFINITY
    }
}

/// PAT (pointing, acquisition, tracking) session state.
///
/// §2.1: once two satellites pair over RF and exchange laser-diode
/// positions, they re-orient and run acquisition before the optical link
/// carries data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PatState {
    /// Terminals are slewing toward the predicted peer direction.
    Pointing {
        /// Remaining slew time (s).
        remaining_s: f64,
    },
    /// Spiral-scan acquisition in progress.
    Acquiring {
        /// Remaining scan time (s).
        remaining_s: f64,
    },
    /// Closed-loop tracking: the link carries data.
    Tracking,
    /// Link lost (peer out of range or occluded); must restart.
    Lost,
}

/// A PAT session driving one optical link from slew to track.
#[derive(Debug, Clone, Copy)]
pub struct PatSession {
    state: PatState,
}

impl PatSession {
    /// Start a session: `slew_time_s` of pointing followed by the
    /// terminal's acquisition scan.
    pub fn start(slew_time_s: f64, terminal: &OpticalTerminal) -> Self {
        assert!(slew_time_s >= 0.0);
        let state = if slew_time_s > 0.0 {
            PatState::Pointing {
                remaining_s: slew_time_s,
            }
        } else {
            PatState::Acquiring {
                remaining_s: terminal.acquisition_time_s,
            }
        };
        let mut s = Self { state };
        // Normalize zero-duration acquisition immediately.
        s.advance(0.0, terminal);
        s
    }

    /// Current state.
    pub fn state(&self) -> PatState {
        self.state
    }

    /// True when the link is carrying data.
    pub fn is_tracking(&self) -> bool {
        matches!(self.state, PatState::Tracking)
    }

    /// Advance the session by `dt_s`. Leftover time rolls from pointing
    /// into acquisition into tracking.
    pub fn advance(&mut self, dt_s: f64, terminal: &OpticalTerminal) {
        assert!(dt_s >= 0.0);
        let mut dt = dt_s;
        loop {
            match self.state {
                PatState::Pointing { remaining_s } => {
                    if dt >= remaining_s {
                        dt -= remaining_s;
                        self.state = PatState::Acquiring {
                            remaining_s: terminal.acquisition_time_s,
                        };
                    } else {
                        self.state = PatState::Pointing {
                            remaining_s: remaining_s - dt,
                        };
                        return;
                    }
                }
                PatState::Acquiring { remaining_s } => {
                    if dt >= remaining_s {
                        self.state = PatState::Tracking;
                        return;
                    }
                    self.state = PatState::Acquiring {
                        remaining_s: remaining_s - dt,
                    };
                    return;
                }
                PatState::Tracking | PatState::Lost => return,
            }
        }
    }

    /// Drop the link (occlusion, range limit, peer handover).
    pub fn lose(&mut self) {
        self.state = PatState::Lost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn term() -> OpticalTerminal {
        OpticalTerminal::conlct80_class()
    }

    #[test]
    fn efficiency_below_one_and_decreasing() {
        let t = term();
        let e1 = optical_link_efficiency(&t, &t, 500_000.0);
        let e2 = optical_link_efficiency(&t, &t, 3_000_000.0);
        assert!(e1 <= 1.0 && e1 > 0.0);
        assert!(e2 < e1);
    }

    #[test]
    fn gbps_class_at_leo_ranges() {
        // The paper's premise: laser ISLs deliver far more than RF. A
        // ConLCT80-class pair at 2000 km should be in the Gbps regime.
        let t = term();
        let rate = achievable_rate_bps(&t, &t, 2_000_000.0);
        assert!(
            (1.0e8..1.0e12).contains(&rate),
            "optical rate at 2000 km: {rate} b/s"
        );
    }

    #[test]
    fn optical_beats_rf_on_energy_per_bit() {
        use crate::bands::RfBand;
        use crate::linkbudget::{RfLink, RfTerminal};
        let d = 1_500_000.0;
        let rf = RfLink {
            tx: RfTerminal::midsat(),
            rx: RfTerminal::midsat(),
            band: RfBand::S,
            distance_m: d,
            extra_loss_db: 0.0,
        };
        let t = term();
        assert!(
            energy_per_bit_j(&t, &t, d) < rf.energy_per_bit_j() / 10.0,
            "optical {} vs RF {}",
            energy_per_bit_j(&t, &t, d),
            rf.energy_per_bit_j()
        );
    }

    #[test]
    fn rate_inverse_square_in_distance_below_modem_cap() {
        let t = term();
        let r1 = achievable_rate_bps(&t, &t, 3_000_000.0);
        let r2 = achievable_rate_bps(&t, &t, 6_000_000.0);
        assert!(
            r1 < t.max_data_rate_bps,
            "test distances must be photon-limited"
        );
        assert!((r1 / r2 - 4.0).abs() < 0.01, "ratio {}", r1 / r2);
    }

    #[test]
    fn short_range_rate_clamps_at_modem_ceiling() {
        let t = term();
        assert_eq!(achievable_rate_bps(&t, &t, 200_000.0), t.max_data_rate_bps);
    }

    #[test]
    fn pat_progresses_point_acquire_track() {
        let t = term();
        let mut s = PatSession::start(10.0, &t);
        assert!(matches!(s.state(), PatState::Pointing { .. }));
        s.advance(10.0, &t);
        assert!(matches!(s.state(), PatState::Acquiring { .. }));
        s.advance(t.acquisition_time_s, &t);
        assert!(s.is_tracking());
    }

    #[test]
    fn pat_rolls_leftover_time_across_phases() {
        let t = term();
        let mut s = PatSession::start(5.0, &t);
        s.advance(5.0 + t.acquisition_time_s + 1.0, &t);
        assert!(s.is_tracking());
    }

    #[test]
    fn pat_partial_advance_stays_in_phase() {
        let t = term();
        let mut s = PatSession::start(10.0, &t);
        s.advance(4.0, &t);
        match s.state() {
            PatState::Pointing { remaining_s } => assert!((remaining_s - 6.0).abs() < 1e-12),
            other => panic!("unexpected state {other:?}"),
        }
    }

    #[test]
    fn pat_zero_slew_starts_acquiring() {
        let t = term();
        let s = PatSession::start(0.0, &t);
        assert!(matches!(s.state(), PatState::Acquiring { .. }));
    }

    #[test]
    fn lost_link_stays_lost() {
        let t = term();
        let mut s = PatSession::start(0.0, &t);
        s.lose();
        s.advance(1e6, &t);
        assert_eq!(s.state(), PatState::Lost);
    }
}
