//! Channel capacity and achievable-rate models.
//!
//! Shannon capacity gives the ceiling; real modems operate some dB away
//! from it. We model the achievable rate as Shannon capacity evaluated at
//! an SNR backed off by an implementation gap, then clamped by the highest
//! spectral efficiency the modem supports (a DVB-S2X-like 4096APSK ceiling
//! of ~6 bit/s/Hz for RF; optical terminals are treated separately in
//! [`crate::optical`]).

/// Default gap to capacity (dB) of a modern coded modem (LDPC + APSK).
pub const DEFAULT_IMPLEMENTATION_GAP_DB: f64 = 3.0;

/// Maximum spectral efficiency (bit/s/Hz) of the RF modem model.
pub const MAX_SPECTRAL_EFFICIENCY: f64 = 6.0;

/// Shannon capacity (bit/s) of an AWGN channel.
///
/// `C = B · log2(1 + SNR)`. Negative SNR (linear) is treated as zero
/// capacity rather than a panic: deep fades are normal operating input.
pub fn shannon_capacity_bps(bandwidth_hz: f64, snr_linear: f64) -> f64 {
    assert!(bandwidth_hz >= 0.0, "bandwidth must be non-negative");
    if snr_linear <= 0.0 {
        return 0.0;
    }
    bandwidth_hz * (1.0 + snr_linear).log2()
}

/// Achievable rate (bit/s) after an implementation gap (dB) and the modem's
/// spectral-efficiency ceiling.
pub fn achievable_rate_bps(bandwidth_hz: f64, snr_linear: f64, gap_db: f64) -> f64 {
    assert!(gap_db >= 0.0, "implementation gap must be non-negative");
    let effective_snr = snr_linear / 10f64.powf(gap_db / 10.0);
    let c = shannon_capacity_bps(bandwidth_hz, effective_snr);
    c.min(bandwidth_hz * MAX_SPECTRAL_EFFICIENCY)
}

/// Minimum SNR (linear) needed to support `rate_bps` in `bandwidth_hz`
/// with the given gap. Inverse of [`achievable_rate_bps`] below the
/// spectral-efficiency ceiling.
pub fn required_snr_linear(rate_bps: f64, bandwidth_hz: f64, gap_db: f64) -> f64 {
    assert!(bandwidth_hz > 0.0, "bandwidth must be positive");
    assert!(rate_bps >= 0.0, "rate must be non-negative");
    let se = rate_bps / bandwidth_hz;
    assert!(
        se <= MAX_SPECTRAL_EFFICIENCY,
        "requested spectral efficiency {se} exceeds modem ceiling"
    );
    (2f64.powf(se) - 1.0) * 10f64.powf(gap_db / 10.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_at_zero_snr_is_zero() {
        assert_eq!(shannon_capacity_bps(1e6, 0.0), 0.0);
        assert_eq!(shannon_capacity_bps(1e6, -1.0), 0.0);
    }

    #[test]
    fn snr_one_gives_one_bit_per_hz() {
        assert!((shannon_capacity_bps(1e6, 1.0) - 1e6).abs() < 1.0);
    }

    #[test]
    fn capacity_monotone_in_snr_and_bandwidth() {
        assert!(shannon_capacity_bps(1e6, 10.0) > shannon_capacity_bps(1e6, 5.0));
        assert!(shannon_capacity_bps(2e6, 5.0) > shannon_capacity_bps(1e6, 5.0));
    }

    #[test]
    fn gap_reduces_rate() {
        let no_gap = achievable_rate_bps(1e6, 100.0, 0.0);
        let gapped = achievable_rate_bps(1e6, 100.0, 3.0);
        assert!(gapped < no_gap);
    }

    #[test]
    fn rate_saturates_at_spectral_ceiling() {
        let r = achievable_rate_bps(1e6, 1e12, 0.0);
        assert_eq!(r, 1e6 * MAX_SPECTRAL_EFFICIENCY);
    }

    #[test]
    fn required_snr_inverts_achievable_rate() {
        let bw = 5e6;
        for target in [1e6, 5e6, 2.5e7] {
            let snr = required_snr_linear(target, bw, 3.0);
            let back = achievable_rate_bps(bw, snr, 3.0);
            assert!((back - target).abs() / target < 1e-9, "{back} vs {target}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds modem ceiling")]
    fn impossible_spectral_efficiency_panics() {
        required_snr_linear(1e9, 1e6, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_gap_panics() {
        achievable_rate_bps(1e6, 1.0, -1.0);
    }
}
