//! # openspace-phy
//!
//! Physical-layer models for the OpenSpace stack: everything §2.1 of the
//! paper ("Standardizing Physical Links") needs quantified.
//!
//! * [`bands`] — the UHF/S/X/Ku/Ka RF bands and the 1550 nm optical carrier.
//! * [`linkbudget`] — EIRP/FSPL/G-T chains producing SNR and achievable
//!   rate for RF links (ISL and ground).
//! * [`capacity`] — Shannon + implementation-gap rate model.
//! * [`antenna`] — aperture gain, beamwidth, pointing loss.
//! * [`atmosphere`] — gaseous and rain attenuation for ground links.
//! * [`doppler`] — LEO Doppler shifts.
//! * [`optical`] — laser ISL link budget and the PAT (pointing,
//!   acquisition, tracking) session state machine.
//! * [`power`] — solar/battery energy budget; the power constraint that
//!   limits how many ISLs a satellite can afford (§2.2).
//! * [`hardware`] — the cost/mass/volume catalogue behind the paper's
//!   $500k-laser-terminal and minimal-RF-requirement arguments.
//!
//! The network layer consumes exactly two numbers from here per link —
//! achievable rate and energy per bit — plus the PAT delay for optical
//! link setup; the rest exists to derive those honestly from physics.
//!
//! ## Example
//!
//! ```
//! use openspace_phy::prelude::*;
//!
//! // An S-band ISL between two mid-class satellites, 1500 km apart.
//! let link = RfLink {
//!     tx: RfTerminal::midsat(),
//!     rx: RfTerminal::midsat(),
//!     band: RfBand::S,
//!     distance_m: 1_500_000.0,
//!     extra_loss_db: 0.0,
//! };
//! let rf_rate = link.achievable_rate_bps();
//! assert!(rf_rate > 1.0e6);
//!
//! // The optical alternative moves orders of magnitude more bits.
//! let t = OpticalTerminal::conlct80_class();
//! let laser_rate =
//!     openspace_phy::optical::achievable_rate_bps(&t, &t, 1_500_000.0);
//! assert!(laser_rate > 100.0 * rf_rate);
//! ```

pub mod antenna;
pub mod atmosphere;
pub mod bands;
pub mod capacity;
pub mod doppler;
pub mod hardware;
pub mod linkbudget;
pub mod optical;
pub mod power;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::antenna::{aperture_gain_dbi, beamwidth_rad, pointing_loss_db};
    pub use crate::atmosphere::{gas_loss_db, rain_loss_db, total_atmospheric_loss_db};
    pub use crate::bands::{optical_frequency_hz, RfBand, OPTICAL_WAVELENGTH_M};
    pub use crate::capacity::{
        achievable_rate_bps, required_snr_linear, shannon_capacity_bps,
        DEFAULT_IMPLEMENTATION_GAP_DB,
    };
    pub use crate::doppler::{doppler_shift_hz, max_doppler_hz, radial_velocity_m_per_s};
    pub use crate::hardware::{
        laser_terminal_spec, rf_terminal_spec, SatelliteClass, TerminalSpec,
    };
    pub use crate::linkbudget::{free_space_path_loss_db, from_db, to_db, RfLink, RfTerminal};
    pub use crate::optical::{OpticalTerminal, PatSession, PatState};
    pub use crate::power::{slew_energy_j, InsufficientPower, PowerBudget, PowerSystem};
}
