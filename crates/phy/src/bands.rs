//! Frequency bands used in the OpenSpace architecture.
//!
//! §2.1 of the paper: RF ISLs reuse the S- and UHF-band spectra flown on
//! prior small-satellite missions \[23\]; ground links follow today's
//! satellite-broadband practice in the Ku-band \[18\]; Ka is included for
//! completeness (gateway feeder links in modern constellations).

/// An RF band with its OpenSpace-assigned center frequency and bandwidth.
///
/// The numbers are representative values from the cited literature, not a
/// regulatory allocation table: UHF and S from the small-sat ISL survey
/// (Radhakrishnan et al. 2016), Ku from the Starlink downlink structure
/// paper (Humphreys et al. 2023).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RfBand {
    /// UHF band: 435 MHz class, the minimal small-sat transceiver.
    Uhf,
    /// S band: 2.2 GHz class, the paper's preferred common ISL band.
    S,
    /// X band: 8.4 GHz class, mid-tier downlinks.
    X,
    /// Ku band: 12 GHz class, user/ground links (Starlink practice).
    Ku,
    /// Ka band: 27 GHz class, gateway feeder links.
    Ka,
}

impl RfBand {
    /// Representative center frequency (Hz).
    pub fn center_frequency_hz(self) -> f64 {
        match self {
            Self::Uhf => 435.0e6,
            Self::S => 2.2e9,
            Self::X => 8.4e9,
            Self::Ku => 12.0e9,
            Self::Ka => 27.0e9,
        }
    }

    /// Representative channel bandwidth (Hz) available to one link.
    pub fn channel_bandwidth_hz(self) -> f64 {
        match self {
            Self::Uhf => 25.0e3,
            Self::S => 5.0e6,
            Self::X => 50.0e6,
            Self::Ku => 240.0e6, // Starlink Ku downlink channel width
            Self::Ka => 500.0e6,
        }
    }

    /// Wavelength (m) at the band center.
    pub fn wavelength_m(self) -> f64 {
        openspace_orbit::constants::SPEED_OF_LIGHT_M_PER_S / self.center_frequency_hz()
    }

    /// All bands, ascending in frequency.
    pub fn all() -> [RfBand; 5] {
        [Self::Uhf, Self::S, Self::X, Self::Ku, Self::Ka]
    }

    /// Human-readable band name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Uhf => "UHF",
            Self::S => "S",
            Self::X => "X",
            Self::Ku => "Ku",
            Self::Ka => "Ka",
        }
    }
}

impl std::fmt::Display for RfBand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Optical carrier used by laser ISL terminals (1550 nm telecom C-band,
/// the wavelength the commercial terminals the paper costs out operate at).
pub const OPTICAL_WAVELENGTH_M: f64 = 1_550e-9;

/// Optical carrier frequency (Hz).
pub fn optical_frequency_hz() -> f64 {
    openspace_orbit::constants::SPEED_OF_LIGHT_M_PER_S / OPTICAL_WAVELENGTH_M
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_ascend_in_frequency() {
        let all = RfBand::all();
        for w in all.windows(2) {
            assert!(w[0].center_frequency_hz() < w[1].center_frequency_hz());
        }
    }

    #[test]
    fn wavelength_frequency_product_is_c() {
        for b in RfBand::all() {
            let c = b.wavelength_m() * b.center_frequency_hz();
            assert!((c - openspace_orbit::constants::SPEED_OF_LIGHT_M_PER_S).abs() < 1.0);
        }
    }

    #[test]
    fn s_band_wavelength_is_about_14_cm() {
        assert!((RfBand::S.wavelength_m() - 0.136).abs() < 0.01);
    }

    #[test]
    fn optical_frequency_is_about_193_thz() {
        assert!((optical_frequency_hz() / 1e12 - 193.4).abs() < 1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(RfBand::Ku.to_string(), "Ku");
        assert_eq!(RfBand::Uhf.to_string(), "UHF");
    }

    #[test]
    fn higher_bands_offer_more_bandwidth() {
        assert!(RfBand::S.channel_bandwidth_hz() > RfBand::Uhf.channel_bandwidth_hz());
        assert!(RfBand::Ka.channel_bandwidth_hz() > RfBand::Ku.channel_bandwidth_hz());
    }
}
