//! RF link budgets.
//!
//! The standard chain: EIRP − path loss + receive gain → received power;
//! against thermal noise this gives SNR, and [`crate::capacity`] turns SNR
//! into an achievable data rate. OpenSpace routing consumes the *rate* and
//! *energy per bit*; everything else here exists to compute those two
//! numbers honestly.

use crate::bands::RfBand;
use openspace_orbit::constants::SPEED_OF_LIGHT_M_PER_S;

/// Convert a linear power ratio to decibels.
///
/// # Panics
/// Panics if `ratio` is not strictly positive.
#[inline]
pub fn to_db(ratio: f64) -> f64 {
    assert!(ratio > 0.0, "dB of non-positive ratio {ratio}");
    10.0 * ratio.log10()
}

/// Convert decibels to a linear power ratio.
#[inline]
pub fn from_db(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Convert watts to dBW.
#[inline]
pub fn watts_to_dbw(w: f64) -> f64 {
    to_db(w)
}

/// Convert dBW to watts.
#[inline]
pub fn dbw_to_watts(dbw: f64) -> f64 {
    from_db(dbw)
}

/// Free-space path loss (dB) over `distance_m` at `frequency_hz`.
///
/// `FSPL = 20 log10(4π d f / c)`.
///
/// # Panics
/// Panics unless both arguments are strictly positive.
pub fn free_space_path_loss_db(distance_m: f64, frequency_hz: f64) -> f64 {
    assert!(distance_m > 0.0, "distance must be positive");
    assert!(frequency_hz > 0.0, "frequency must be positive");
    20.0 * (4.0 * std::f64::consts::PI * distance_m * frequency_hz / SPEED_OF_LIGHT_M_PER_S).log10()
}

/// One end of an RF link: transmit power and antenna gains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RfTerminal {
    /// Transmit power (W) fed to the antenna.
    pub tx_power_w: f64,
    /// Transmit antenna gain (dBi).
    pub tx_gain_dbi: f64,
    /// Receive antenna gain (dBi).
    pub rx_gain_dbi: f64,
    /// Receiver system noise temperature (K), including antenna and LNA.
    pub system_noise_temp_k: f64,
    /// Implementation and pointing losses lumped together (dB, ≥ 0).
    pub implementation_loss_db: f64,
}

impl RfTerminal {
    /// A small-satellite S-band/UHF class terminal — the paper's minimal
    /// hardware bar for joining OpenSpace.
    pub fn smallsat() -> Self {
        Self {
            tx_power_w: 2.0,
            tx_gain_dbi: 8.0,
            rx_gain_dbi: 8.0,
            system_noise_temp_k: 615.0,
            implementation_loss_db: 2.0,
        }
    }

    /// A mid-class LEO bus terminal with a steerable phased array.
    pub fn midsat() -> Self {
        Self {
            tx_power_w: 10.0,
            tx_gain_dbi: 25.0,
            rx_gain_dbi: 25.0,
            system_noise_temp_k: 500.0,
            implementation_loss_db: 2.0,
        }
    }

    /// A ground-station gateway terminal (large dish, cooled front end).
    pub fn gateway() -> Self {
        Self {
            tx_power_w: 50.0,
            tx_gain_dbi: 43.0,
            rx_gain_dbi: 43.0,
            system_noise_temp_k: 150.0,
            implementation_loss_db: 1.5,
        }
    }

    /// EIRP (dBW) of this terminal.
    pub fn eirp_dbw(&self) -> f64 {
        watts_to_dbw(self.tx_power_w) + self.tx_gain_dbi
    }

    /// Receive figure of merit G/T (dB/K).
    pub fn g_over_t_db_per_k(&self) -> f64 {
        self.rx_gain_dbi - to_db(self.system_noise_temp_k)
    }
}

/// A fully-specified RF link at one instant: geometry + both terminals.
#[derive(Debug, Clone, Copy)]
pub struct RfLink {
    /// Transmitting terminal.
    pub tx: RfTerminal,
    /// Receiving terminal.
    pub rx: RfTerminal,
    /// Operating band.
    pub band: RfBand,
    /// Link distance (m).
    pub distance_m: f64,
    /// Extra propagation losses beyond free space (dB, e.g. atmosphere).
    pub extra_loss_db: f64,
}

impl RfLink {
    /// Received carrier power (dBW).
    pub fn received_power_dbw(&self) -> f64 {
        self.tx.eirp_dbw()
            - free_space_path_loss_db(self.distance_m, self.band.center_frequency_hz())
            - self.extra_loss_db
            - self.tx.implementation_loss_db
            - self.rx.implementation_loss_db
            + self.rx.rx_gain_dbi
    }

    /// Noise power (dBW) in the band's channel bandwidth:
    /// `N = k·T·B`.
    pub fn noise_power_dbw(&self) -> f64 {
        to_db(
            openspace_orbit::constants::BOLTZMANN_J_PER_K
                * self.rx.system_noise_temp_k
                * self.band.channel_bandwidth_hz(),
        )
    }

    /// Carrier-to-noise ratio (dB).
    pub fn cnr_db(&self) -> f64 {
        self.received_power_dbw() - self.noise_power_dbw()
    }

    /// Linear SNR.
    pub fn snr_linear(&self) -> f64 {
        from_db(self.cnr_db())
    }

    /// Achievable data rate (bit/s) via the capacity model in
    /// [`crate::capacity`], with the default coded-modulation gap.
    pub fn achievable_rate_bps(&self) -> f64 {
        crate::capacity::achievable_rate_bps(
            self.band.channel_bandwidth_hz(),
            self.snr_linear(),
            crate::capacity::DEFAULT_IMPLEMENTATION_GAP_DB,
        )
    }

    /// Transmit energy per delivered bit (J/bit) at the achievable rate.
    ///
    /// Returns `f64::INFINITY` when the link supports no positive rate.
    pub fn energy_per_bit_j(&self) -> f64 {
        let rate = self.achievable_rate_bps();
        if rate > 0.0 {
            self.tx.tx_power_w / rate
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_round_trip() {
        for r in [0.001, 0.5, 1.0, 2.0, 1000.0] {
            assert!((from_db(to_db(r)) - r).abs() / r < 1e-12);
        }
    }

    #[test]
    fn three_db_is_factor_two() {
        assert!((from_db(3.0103) - 2.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn db_of_zero_panics() {
        to_db(0.0);
    }

    #[test]
    fn fspl_textbook_value() {
        // Classic check: 1 km at 2.4 GHz ≈ 100 dB.
        let fspl = free_space_path_loss_db(1_000.0, 2.4e9);
        assert!((fspl - 100.05).abs() < 0.1, "{fspl}");
    }

    #[test]
    fn fspl_grows_6db_per_distance_doubling() {
        let l1 = free_space_path_loss_db(1.0e6, 2.2e9);
        let l2 = free_space_path_loss_db(2.0e6, 2.2e9);
        assert!((l2 - l1 - 6.0206).abs() < 1e-3);
    }

    #[test]
    fn eirp_combines_power_and_gain() {
        let t = RfTerminal::smallsat();
        assert!((t.eirp_dbw() - (to_db(2.0) + 8.0)).abs() < 1e-12);
    }

    #[test]
    fn s_band_isl_closes_at_short_range() {
        // Two smallsats 500 km apart on S-band should achieve megabit-class
        // rates — the paper's "tried and tested" RF ISL regime.
        let link = RfLink {
            tx: RfTerminal::smallsat(),
            rx: RfTerminal::smallsat(),
            band: RfBand::S,
            distance_m: 500_000.0,
            extra_loss_db: 0.0,
        };
        let rate = link.achievable_rate_bps();
        assert!(
            (1.0e5..5.0e7).contains(&rate),
            "S-band 500 km rate {rate} b/s"
        );
    }

    #[test]
    fn rate_decreases_with_distance() {
        let mk = |d| RfLink {
            tx: RfTerminal::smallsat(),
            rx: RfTerminal::smallsat(),
            band: RfBand::S,
            distance_m: d,
            extra_loss_db: 0.0,
        };
        assert!(mk(500_000.0).achievable_rate_bps() > mk(2_000_000.0).achievable_rate_bps());
    }

    #[test]
    fn gateway_outperforms_smallsat() {
        let small = RfLink {
            tx: RfTerminal::smallsat(),
            rx: RfTerminal::smallsat(),
            band: RfBand::Ku,
            distance_m: 1_000_000.0,
            extra_loss_db: 0.0,
        };
        let gw = RfLink {
            tx: RfTerminal::gateway(),
            rx: RfTerminal::gateway(),
            band: RfBand::Ku,
            distance_m: 1_000_000.0,
            extra_loss_db: 0.0,
        };
        assert!(gw.achievable_rate_bps() > small.achievable_rate_bps() * 10.0);
    }

    #[test]
    fn extra_loss_reduces_cnr_by_that_amount() {
        let mut link = RfLink {
            tx: RfTerminal::midsat(),
            rx: RfTerminal::midsat(),
            band: RfBand::Ku,
            distance_m: 1_000_000.0,
            extra_loss_db: 0.0,
        };
        let c0 = link.cnr_db();
        link.extra_loss_db = 3.0;
        assert!((c0 - link.cnr_db() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn energy_per_bit_finite_on_closing_link() {
        let link = RfLink {
            tx: RfTerminal::midsat(),
            rx: RfTerminal::midsat(),
            band: RfBand::S,
            distance_m: 1_000_000.0,
            extra_loss_db: 0.0,
        };
        let e = link.energy_per_bit_j();
        assert!(e.is_finite() && e > 0.0);
    }

    #[test]
    fn g_over_t_prefers_cool_receivers() {
        assert!(
            RfTerminal::gateway().g_over_t_db_per_k() > RfTerminal::smallsat().g_over_t_db_per_k()
        );
    }
}
