//! Hardware catalogue: the cost/mass/volume figures the paper's cost model
//! (§3) and ISL-tradeoff discussion (§2.1) quote.
//!
//! Three satellite classes span the "small, medium, and large firms" the
//! paper wants to coexist, each with a terminal fit and a launch cost.

use crate::linkbudget::RfTerminal;
use crate::optical::OpticalTerminal;
use crate::power::PowerSystem;

/// Cost/mass/volume of one communication terminal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TerminalSpec {
    /// Unit cost (USD).
    pub cost_usd: f64,
    /// Mass (kg).
    pub mass_kg: f64,
    /// Volume (m³).
    pub volume_m3: f64,
}

/// The ConLCT80-class laser terminal the paper cites: "$500,000 per
/// terminal and occupying 0.0234 sq.m of volume and at least 15 kg".
/// (The paper's "sq.m" is a typo for m³ — it is a volume figure.)
pub fn laser_terminal_spec() -> TerminalSpec {
    TerminalSpec {
        cost_usd: 500_000.0,
        mass_kg: 15.0,
        volume_m3: 0.0234,
    }
}

/// A small-satellite S-band/UHF transceiver: commodity hardware, the low
/// entry bar the paper's minimal hardware requirement is built around.
pub fn rf_terminal_spec() -> TerminalSpec {
    TerminalSpec {
        cost_usd: 45_000.0,
        mass_kg: 1.5,
        volume_m3: 0.001,
    }
}

/// Satellite platform classes available to OpenSpace operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SatelliteClass {
    /// 6U cubesat: RF ISLs only. The smallest viable OpenSpace member.
    CubeSat,
    /// ESPA-class smallsat: RF + optionally one or two laser terminals.
    SmallSat,
    /// Broadband-constellation bus: RF + four laser terminals.
    BroadbandBus,
}

impl SatelliteClass {
    /// RF terminal fitted to this class.
    pub fn rf_terminal(self) -> RfTerminal {
        match self {
            Self::CubeSat => RfTerminal::smallsat(),
            Self::SmallSat => RfTerminal::midsat(),
            Self::BroadbandBus => RfTerminal::midsat(),
        }
    }

    /// Number of laser terminals fitted (0 = RF-only).
    pub fn laser_terminal_count(self) -> usize {
        match self {
            Self::CubeSat => 0,
            Self::SmallSat => 1,
            Self::BroadbandBus => 4,
        }
    }

    /// The laser terminal model fitted, if any.
    pub fn laser_terminal(self) -> Option<OpticalTerminal> {
        if self.laser_terminal_count() > 0 {
            Some(OpticalTerminal::conlct80_class())
        } else {
            None
        }
    }

    /// Power system of this class.
    pub fn power_system(self) -> PowerSystem {
        match self {
            Self::CubeSat => PowerSystem::cubesat_6u(),
            Self::SmallSat => PowerSystem::smallsat(),
            Self::BroadbandBus => PowerSystem::broadband_bus(),
        }
    }

    /// Bus dry mass (kg), excluding terminals.
    pub fn bus_mass_kg(self) -> f64 {
        match self {
            Self::CubeSat => 10.0,
            Self::SmallSat => 150.0,
            Self::BroadbandBus => 750.0,
        }
    }

    /// Bus manufacturing cost (USD), excluding terminals.
    pub fn bus_cost_usd(self) -> f64 {
        match self {
            Self::CubeSat => 350_000.0,
            Self::SmallSat => 4_000_000.0,
            Self::BroadbandBus => 1_000_000.0, // mass-production economics
        }
    }

    /// Total satellite mass including terminals (kg).
    pub fn total_mass_kg(self) -> f64 {
        self.bus_mass_kg()
            + rf_terminal_spec().mass_kg
            + self.laser_terminal_count() as f64 * laser_terminal_spec().mass_kg
    }

    /// Total hardware cost including terminals (USD).
    pub fn hardware_cost_usd(self) -> f64 {
        self.bus_cost_usd()
            + rf_terminal_spec().cost_usd
            + self.laser_terminal_count() as f64 * laser_terminal_spec().cost_usd
    }

    /// All classes.
    pub fn all() -> [SatelliteClass; 3] {
        [Self::CubeSat, Self::SmallSat, Self::BroadbandBus]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_laser_figures() {
        let s = laser_terminal_spec();
        assert_eq!(s.cost_usd, 500_000.0);
        assert_eq!(s.mass_kg, 15.0);
        assert_eq!(s.volume_m3, 0.0234);
    }

    #[test]
    fn cubesat_cannot_carry_lasers() {
        assert_eq!(SatelliteClass::CubeSat.laser_terminal_count(), 0);
        assert!(SatelliteClass::CubeSat.laser_terminal().is_none());
    }

    #[test]
    fn laser_mass_dominates_cubesat_budget() {
        // The paper's point: 15 kg terminals are "infeasible specifications
        // for smaller spacecraft". A single terminal outweighs the bus.
        assert!(laser_terminal_spec().mass_kg > SatelliteClass::CubeSat.bus_mass_kg());
    }

    #[test]
    fn broadband_bus_carries_four_lasers() {
        let c = SatelliteClass::BroadbandBus;
        assert_eq!(c.laser_terminal_count(), 4);
        assert!(c.hardware_cost_usd() > 4.0 * 500_000.0);
    }

    #[test]
    fn mass_and_cost_increase_with_terminals() {
        for c in SatelliteClass::all() {
            assert!(c.total_mass_kg() > c.bus_mass_kg());
            assert!(c.hardware_cost_usd() > c.bus_cost_usd());
        }
    }

    #[test]
    fn every_class_has_an_rf_terminal() {
        // The OpenSpace minimal requirement: RF at minimum.
        for c in SatelliteClass::all() {
            let t = c.rf_terminal();
            assert!(t.tx_power_w > 0.0);
        }
    }
}
