//! Classical (Keplerian) orbital elements and the Kepler-equation solver.
//!
//! Elements follow the conventional set `(a, e, i, Ω, ω, M)`:
//! semi-major axis, eccentricity, inclination, right ascension of the
//! ascending node (RAAN), argument of perigee, and mean anomaly.

use crate::constants::{orbital_period_s, EARTH_MU_M3_PER_S2, EARTH_RADIUS_M};
use crate::frames::Vec3;
use std::f64::consts::TAU;

/// Error returned when a set of orbital elements is physically invalid.
#[derive(Debug, Clone, PartialEq)]
pub enum ElementsError {
    /// Semi-major axis must be strictly positive (elliptical orbits only).
    NonPositiveSemiMajorAxis(f64),
    /// Eccentricity must be in `[0, 1)` — this stack models bound orbits.
    EccentricityOutOfRange(f64),
    /// Perigee must clear the Earth's surface.
    PerigeeBelowSurface { perigee_m: f64 },
    /// Inclination must be in `[0, π]`.
    InclinationOutOfRange(f64),
}

impl std::fmt::Display for ElementsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonPositiveSemiMajorAxis(a) => {
                write!(f, "semi-major axis must be positive, got {a} m")
            }
            Self::EccentricityOutOfRange(e) => {
                write!(f, "eccentricity must be in [0,1), got {e}")
            }
            Self::PerigeeBelowSurface { perigee_m } => {
                write!(
                    f,
                    "perigee radius {perigee_m} m is below the Earth's surface"
                )
            }
            Self::InclinationOutOfRange(i) => {
                write!(f, "inclination must be in [0,pi], got {i} rad")
            }
        }
    }
}

impl std::error::Error for ElementsError {}

/// Classical orbital elements of a bound Earth orbit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrbitalElements {
    /// Semi-major axis (m).
    pub semi_major_axis_m: f64,
    /// Eccentricity, in `[0, 1)`.
    pub eccentricity: f64,
    /// Inclination (rad), in `[0, π]`.
    pub inclination_rad: f64,
    /// Right ascension of the ascending node (rad).
    pub raan_rad: f64,
    /// Argument of perigee (rad).
    pub arg_perigee_rad: f64,
    /// Mean anomaly at epoch (rad).
    pub mean_anomaly_rad: f64,
}

impl OrbitalElements {
    /// Validate and construct a set of elements.
    pub fn new(
        semi_major_axis_m: f64,
        eccentricity: f64,
        inclination_rad: f64,
        raan_rad: f64,
        arg_perigee_rad: f64,
        mean_anomaly_rad: f64,
    ) -> Result<Self, ElementsError> {
        // NaN must fail too, hence the negated comparison spelled out.
        if semi_major_axis_m.is_nan() || semi_major_axis_m <= 0.0 {
            return Err(ElementsError::NonPositiveSemiMajorAxis(semi_major_axis_m));
        }
        if !(0.0..1.0).contains(&eccentricity) {
            return Err(ElementsError::EccentricityOutOfRange(eccentricity));
        }
        if !(0.0..=std::f64::consts::PI).contains(&inclination_rad) {
            return Err(ElementsError::InclinationOutOfRange(inclination_rad));
        }
        let perigee = semi_major_axis_m * (1.0 - eccentricity);
        if perigee < EARTH_RADIUS_M {
            return Err(ElementsError::PerigeeBelowSurface { perigee_m: perigee });
        }
        Ok(Self {
            semi_major_axis_m,
            eccentricity,
            inclination_rad,
            raan_rad: raan_rad.rem_euclid(TAU),
            arg_perigee_rad: arg_perigee_rad.rem_euclid(TAU),
            mean_anomaly_rad: mean_anomaly_rad.rem_euclid(TAU),
        })
    }

    /// Circular orbit at the given altitude — the constellation-building
    /// common case. Angles in degrees, matching how constellations are
    /// specified in the literature (e.g. "780 km at 86.4°").
    pub fn circular(
        altitude_m: f64,
        inclination_deg: f64,
        raan_deg: f64,
        mean_anomaly_deg: f64,
    ) -> Result<Self, ElementsError> {
        Self::new(
            EARTH_RADIUS_M + altitude_m,
            0.0,
            inclination_deg.to_radians(),
            raan_deg.to_radians(),
            0.0,
            mean_anomaly_deg.to_radians(),
        )
    }

    /// Orbital period (s) via Kepler's third law.
    pub fn period_s(&self) -> f64 {
        orbital_period_s(self.semi_major_axis_m)
    }

    /// Mean motion (rad/s).
    pub fn mean_motion_rad_per_s(&self) -> f64 {
        TAU / self.period_s()
    }

    /// Perigee radius (m).
    pub fn perigee_radius_m(&self) -> f64 {
        self.semi_major_axis_m * (1.0 - self.eccentricity)
    }

    /// Apogee radius (m).
    pub fn apogee_radius_m(&self) -> f64 {
        self.semi_major_axis_m * (1.0 + self.eccentricity)
    }

    /// Altitude of a circular orbit (m above the equatorial radius).
    pub fn altitude_m(&self) -> f64 {
        self.semi_major_axis_m - EARTH_RADIUS_M
    }
}

/// Solve Kepler's equation `M = E - e·sin(E)` for the eccentric anomaly `E`.
///
/// Newton–Raphson with a third-order starter; converges in ≤ 5 iterations
/// for all `e < 0.99`. Input and output in radians.
pub fn solve_kepler(mean_anomaly_rad: f64, eccentricity: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&eccentricity));
    let m = mean_anomaly_rad.rem_euclid(TAU);
    // Starter from Danby (1987): E0 = M + 0.85·e·sign(sin M)
    let mut e_anom = m + 0.85 * eccentricity * m.sin().signum();
    for _ in 0..10 {
        let f = e_anom - eccentricity * e_anom.sin() - m;
        let fp = 1.0 - eccentricity * e_anom.cos();
        let delta = f / fp;
        e_anom -= delta;
        if delta.abs() < 1e-14 {
            break;
        }
    }
    e_anom
}

/// True anomaly (rad) from eccentric anomaly.
pub fn true_anomaly_from_eccentric(e_anom_rad: f64, eccentricity: f64) -> f64 {
    let half = e_anom_rad / 2.0;
    2.0 * (((1.0 + eccentricity) / (1.0 - eccentricity)).sqrt() * half.tan()).atan()
}

/// ECI position and velocity at a given set of elements (epoch state).
///
/// Standard perifocal-to-ECI rotation via the 3-1-3 Euler sequence
/// `Rz(-Ω)·Rx(-i)·Rz(-ω)`.
pub fn elements_to_state(el: &OrbitalElements) -> (Vec3, Vec3) {
    let e = el.eccentricity;
    let e_anom = solve_kepler(el.mean_anomaly_rad, e);
    let nu = true_anomaly_from_eccentric(e_anom, e);
    let p = el.semi_major_axis_m * (1.0 - e * e); // semi-latus rectum
    let r = p / (1.0 + e * nu.cos());

    // Perifocal coordinates.
    let (snu, cnu) = nu.sin_cos();
    let r_pf = Vec3::new(r * cnu, r * snu, 0.0);
    let vf = (EARTH_MU_M3_PER_S2 / p).sqrt();
    let v_pf = Vec3::new(-vf * snu, vf * (e + cnu), 0.0);

    let (so, co) = el.raan_rad.sin_cos();
    let (si, ci) = el.inclination_rad.sin_cos();
    let (sw, cw) = el.arg_perigee_rad.sin_cos();

    // Rotation matrix rows (perifocal -> ECI).
    let r11 = co * cw - so * sw * ci;
    let r12 = -co * sw - so * cw * ci;
    let r21 = so * cw + co * sw * ci;
    let r22 = -so * sw + co * cw * ci;
    let r31 = sw * si;
    let r32 = cw * si;

    let rot = |v: Vec3| {
        Vec3::new(
            r11 * v.x + r12 * v.y,
            r21 * v.x + r22 * v.y,
            r31 * v.x + r32 * v.y,
        )
    };
    (rot(r_pf), rot(v_pf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::{circular_velocity_m_per_s, km_to_m};

    fn iridium_like() -> OrbitalElements {
        OrbitalElements::circular(km_to_m(780.0), 86.4, 0.0, 0.0).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            OrbitalElements::new(-1.0, 0.0, 0.0, 0.0, 0.0, 0.0),
            Err(ElementsError::NonPositiveSemiMajorAxis(_))
        ));
        assert!(matches!(
            OrbitalElements::new(7e6, 1.5, 0.0, 0.0, 0.0, 0.0),
            Err(ElementsError::EccentricityOutOfRange(_))
        ));
        assert!(matches!(
            OrbitalElements::new(7e6, 0.5, 0.0, 0.0, 0.0, 0.0),
            Err(ElementsError::PerigeeBelowSurface { .. })
        ));
        assert!(matches!(
            OrbitalElements::new(7.2e6, 0.0, -0.1, 0.0, 0.0, 0.0),
            Err(ElementsError::InclinationOutOfRange(_))
        ));
        assert!(iridium_like().period_s() > 0.0);
    }

    #[test]
    fn angles_are_normalized_on_construction() {
        let el = OrbitalElements::new(7.2e6, 0.0, 1.0, -1.0, 7.0, 13.0).unwrap();
        assert!((0.0..TAU).contains(&el.raan_rad));
        assert!((0.0..TAU).contains(&el.arg_perigee_rad));
        assert!((0.0..TAU).contains(&el.mean_anomaly_rad));
    }

    #[test]
    fn kepler_solver_circular_is_identity() {
        for m in [0.0, 0.5, 1.0, 3.0, 6.0] {
            assert!((solve_kepler(m, 0.0) - m).abs() < 1e-14);
        }
    }

    #[test]
    fn kepler_solver_satisfies_equation() {
        for e in [0.01, 0.1, 0.5, 0.9, 0.97] {
            for m in [0.1, 1.0, 2.0, 3.3, 4.5, 6.0] {
                let big_e = solve_kepler(m, e);
                let back = big_e - e * big_e.sin();
                assert!(
                    (back - m.rem_euclid(TAU)).abs() < 1e-10,
                    "e={e} m={m}: residual {}",
                    back - m
                );
            }
        }
    }

    #[test]
    fn circular_state_has_circular_speed_and_radius() {
        let el = iridium_like();
        let (r, v) = elements_to_state(&el);
        let expect_r = EARTH_RADIUS_M + km_to_m(780.0);
        assert!((r.norm() - expect_r).abs() < 1.0, "radius {}", r.norm());
        let expect_v = circular_velocity_m_per_s(expect_r);
        assert!((v.norm() - expect_v).abs() < 0.1, "speed {}", v.norm());
    }

    #[test]
    fn position_velocity_orthogonal_for_circular_orbit() {
        let el = OrbitalElements::circular(km_to_m(550.0), 53.0, 30.0, 120.0).unwrap();
        let (r, v) = elements_to_state(&el);
        assert!(r.dot(v).abs() / (r.norm() * v.norm()) < 1e-9);
    }

    #[test]
    fn angular_momentum_matches_vis_viva() {
        let el = OrbitalElements::new(7.2e6, 0.1, 1.0, 0.5, 0.3, 2.0).unwrap();
        let (r, v) = elements_to_state(&el);
        let h = r.cross(v).norm();
        let p = el.semi_major_axis_m * (1.0 - el.eccentricity * el.eccentricity);
        let expect = (EARTH_MU_M3_PER_S2 * p).sqrt();
        assert!((h - expect).abs() / expect < 1e-10);
    }

    #[test]
    fn energy_matches_semi_major_axis() {
        let el = OrbitalElements::new(7.5e6, 0.05, 0.7, 1.0, 2.0, 4.0).unwrap();
        let (r, v) = elements_to_state(&el);
        let energy = v.norm_sq() / 2.0 - EARTH_MU_M3_PER_S2 / r.norm();
        let expect = -EARTH_MU_M3_PER_S2 / (2.0 * el.semi_major_axis_m);
        assert!((energy - expect).abs() / expect.abs() < 1e-10);
    }

    #[test]
    fn inclination_recovered_from_state() {
        let el = OrbitalElements::circular(km_to_m(780.0), 86.4, 45.0, 10.0).unwrap();
        let (r, v) = elements_to_state(&el);
        let h = r.cross(v);
        let inc = (h.z / h.norm()).acos();
        assert!((inc - 86.4f64.to_radians()).abs() < 1e-9);
    }

    #[test]
    fn perigee_apogee_bracket_orbit() {
        let el = OrbitalElements::new(7.5e6, 0.08, 1.2, 0.0, 0.0, 0.0).unwrap();
        assert!(el.perigee_radius_m() < el.semi_major_axis_m);
        assert!(el.apogee_radius_m() > el.semi_major_axis_m);
        let (r, _) = elements_to_state(&el);
        assert!(r.norm() >= el.perigee_radius_m() - 1e-3);
        assert!(r.norm() <= el.apogee_radius_m() + 1e-3);
    }

    #[test]
    fn true_anomaly_at_perigee_and_apogee() {
        assert!((true_anomaly_from_eccentric(0.0, 0.3)).abs() < 1e-12);
        let nu_apogee = true_anomaly_from_eccentric(std::f64::consts::PI - 1e-9, 0.3);
        assert!((nu_apogee.abs() - std::f64::consts::PI).abs() < 1e-4);
    }
}
