//! Eclipse (Earth-shadow) model.
//!
//! The power subsystem in `openspace-phy` needs to know when a satellite's
//! solar panels are dark. A cylindrical-shadow model against a
//! mean-motion solar ephemeris is plenty: LEO eclipse fractions are
//! dominated by geometry, not penumbra subtleties.

use crate::constants::{ASTRONOMICAL_UNIT_M, EARTH_RADIUS_M, ECLIPTIC_OBLIQUITY_RAD};
use crate::frames::Vec3;
use crate::propagator::Propagator;

/// Length of the tropical year in seconds, for the toy solar ephemeris.
const YEAR_S: f64 = 365.242_19 * 86_400.0;

/// Direction from the Earth to the Sun (unit vector, ECI) at simulation
/// time `t_s`. Simulation epoch is taken as a northern vernal equinox, so
/// the Sun starts on +X in the equatorial plane and moves along the
/// ecliptic.
pub fn sun_direction_eci(t_s: f64) -> Vec3 {
    let mean_lon = std::f64::consts::TAU * (t_s / YEAR_S);
    let (sl, cl) = mean_lon.sin_cos();
    let (so, co) = ECLIPTIC_OBLIQUITY_RAD.sin_cos();
    // Ecliptic -> equatorial rotation about +X.
    Vec3::new(cl, sl * co, sl * so)
}

/// Position of the Sun (m, ECI) at time `t_s` (circular 1 AU orbit).
pub fn sun_position_eci(t_s: f64) -> Vec3 {
    sun_direction_eci(t_s) * ASTRONOMICAL_UNIT_M
}

/// True when the satellite at ECI position `sat_pos` is inside the Earth's
/// cylindrical shadow at time `t_s`.
pub fn in_eclipse(sat_pos: Vec3, t_s: f64) -> bool {
    let sun_dir = sun_direction_eci(t_s);
    // Must be on the anti-sun side…
    let along = sat_pos.dot(sun_dir);
    if along >= 0.0 {
        return false;
    }
    // …and within one Earth radius of the shadow axis.
    let radial = sat_pos - sun_dir * along;
    radial.norm() < EARTH_RADIUS_M
}

/// Fraction of the orbit (sampled at `samples` points over one period)
/// that a satellite spends in eclipse starting from `t_start_s`.
///
/// # Panics
/// Panics if `samples == 0`.
pub fn eclipse_fraction(sat: &Propagator, t_start_s: f64, samples: usize) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let period = sat.elements().period_s();
    let dark = (0..samples)
        .filter(|&k| {
            let t = t_start_s + period * k as f64 / samples as f64;
            in_eclipse(sat.position_eci(t), t)
        })
        .count();
    dark as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::km_to_m;
    use crate::kepler::OrbitalElements;
    use crate::propagator::PerturbationModel;

    #[test]
    fn sun_direction_is_unit() {
        for t in [0.0, 1e6, 1e7, 2e7] {
            assert!((sun_direction_eci(t).norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sun_starts_on_x_axis() {
        let s = sun_direction_eci(0.0);
        assert!((s.x - 1.0).abs() < 1e-9 && s.y.abs() < 1e-9 && s.z.abs() < 1e-9);
    }

    #[test]
    fn sun_returns_after_one_year() {
        let a = sun_direction_eci(0.0);
        let b = sun_direction_eci(YEAR_S);
        assert!(a.distance(b) < 1e-6);
    }

    #[test]
    fn sun_reaches_north_of_equator_in_summer() {
        // A quarter year after the vernal equinox the Sun is at +obliquity
        // declination.
        let s = sun_direction_eci(YEAR_S / 4.0);
        assert!(s.z > 0.35 && s.z < 0.45, "z={}", s.z);
    }

    #[test]
    fn sunlit_side_is_not_in_eclipse() {
        let sat = Vec3::new(EARTH_RADIUS_M + km_to_m(780.0), 0.0, 0.0);
        // Sun on +X at t=0, satellite on +X: fully lit.
        assert!(!in_eclipse(sat, 0.0));
    }

    #[test]
    fn anti_sun_side_is_in_eclipse() {
        let sat = Vec3::new(-(EARTH_RADIUS_M + km_to_m(780.0)), 0.0, 0.0);
        assert!(in_eclipse(sat, 0.0));
    }

    #[test]
    fn off_axis_anti_sun_point_is_lit() {
        // Behind the Earth but far off the shadow axis.
        let sat = Vec3::new(
            -(EARTH_RADIUS_M + km_to_m(780.0)),
            3.0 * EARTH_RADIUS_M,
            0.0,
        );
        assert!(!in_eclipse(sat, 0.0));
    }

    #[test]
    fn equatorial_leo_eclipse_fraction_is_about_a_third() {
        // A 780 km equatorial orbit with the Sun in the equatorial plane:
        // shadow half-angle = asin(R/(R+h)) → fraction ≈ 0.35.
        let el = OrbitalElements::circular(km_to_m(780.0), 0.0, 0.0, 0.0).unwrap();
        let sat = Propagator::new(el, PerturbationModel::TwoBody);
        let f = eclipse_fraction(&sat, 0.0, 720);
        assert!((0.30..0.40).contains(&f), "eclipse fraction {f}");
    }

    #[test]
    fn dawn_dusk_orbit_can_avoid_eclipse() {
        // A polar orbit whose plane contains the terminator (RAAN 90° puts
        // the orbit normal along the Sun line at t=0) never crosses the
        // shadow cylinder at 780 km.
        let el = OrbitalElements::circular(km_to_m(780.0), 90.0, 90.0, 0.0).unwrap();
        let sat = Propagator::new(el, PerturbationModel::TwoBody);
        let f = eclipse_fraction(&sat, 0.0, 720);
        assert_eq!(f, 0.0, "dawn-dusk orbit should be eclipse-free, got {f}");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        let el = OrbitalElements::circular(km_to_m(780.0), 0.0, 0.0, 0.0).unwrap();
        let sat = Propagator::new(el, PerturbationModel::TwoBody);
        eclipse_fraction(&sat, 0.0, 0);
    }
}
