//! Orbit propagation: two-body Keplerian motion with optional secular J2
//! perturbations.
//!
//! The OpenSpace study needs orbital *predictability* over hours to days,
//! which secular J2 captures (nodal regression and apsidal rotation are the
//! dominant LEO perturbations). Short-period J2 oscillations, drag, and
//! higher harmonics are below the fidelity needed to evaluate coverage and
//! routing and are deliberately out of scope (documented substitution in
//! DESIGN.md).

use crate::constants::{EARTH_J2, EARTH_MU_M3_PER_S2, EARTH_RADIUS_M};
use crate::frames::Vec3;
use crate::kepler::{elements_to_state, OrbitalElements};

/// Propagation model selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PerturbationModel {
    /// Pure two-body motion: only the mean anomaly advances.
    TwoBody,
    /// Two-body plus secular J2 drift of RAAN, argument of perigee, and
    /// mean anomaly. The default: this is what makes polar constellations
    /// precess realistically.
    #[default]
    SecularJ2,
}

/// A deterministic orbit propagator for one satellite.
///
/// Cheap to copy; the per-step cost is one Kepler solve plus a rotation.
#[derive(Debug, Clone, Copy)]
pub struct Propagator {
    elements: OrbitalElements,
    model: PerturbationModel,
    /// Secular rates (rad/s), precomputed at construction.
    raan_rate: f64,
    argp_rate: f64,
    mean_anomaly_rate: f64,
}

impl Propagator {
    /// Build a propagator from epoch elements with the given model.
    pub fn new(elements: OrbitalElements, model: PerturbationModel) -> Self {
        let n = elements.mean_motion_rad_per_s();
        let a = elements.semi_major_axis_m;
        let e = elements.eccentricity;
        let i = elements.inclination_rad;
        let (raan_rate, argp_rate, mn_corr) = match model {
            PerturbationModel::TwoBody => (0.0, 0.0, 0.0),
            PerturbationModel::SecularJ2 => {
                let p = a * (1.0 - e * e);
                let factor = 1.5 * EARTH_J2 * (EARTH_RADIUS_M / p).powi(2) * n;
                let ci = i.cos();
                let si2 = i.sin().powi(2);
                let raan_dot = -factor * ci;
                let argp_dot = factor * (2.0 - 2.5 * si2);
                let mn_dot = factor * (1.0 - 1.5 * si2) * (1.0 - e * e).sqrt();
                (raan_dot, argp_dot, mn_dot)
            }
        };
        Self {
            elements,
            model,
            raan_rate,
            argp_rate,
            mean_anomaly_rate: n + mn_corr,
        }
    }

    /// Epoch elements this propagator was built from.
    pub fn elements(&self) -> &OrbitalElements {
        &self.elements
    }

    /// The perturbation model in use.
    pub fn model(&self) -> PerturbationModel {
        self.model
    }

    /// Secular RAAN drift rate (rad/s); zero for the two-body model.
    pub fn raan_rate_rad_per_s(&self) -> f64 {
        self.raan_rate
    }

    /// Secular argument-of-perigee drift rate (rad/s); zero for the
    /// two-body model.
    pub fn argp_rate_rad_per_s(&self) -> f64 {
        self.argp_rate
    }

    /// Effective mean-anomaly advance rate (rad/s): the Keplerian mean
    /// motion plus the secular J2 correction.
    pub fn mean_anomaly_rate_rad_per_s(&self) -> f64 {
        self.mean_anomaly_rate
    }

    /// Tight geocentric radius bounds `(r_min, r_max)` in metres over the
    /// whole trajectory.
    ///
    /// Exact, not approximate: both propagation models keep the shape
    /// elements (`a`, `e`) fixed and only advance angles, so the radius
    /// always lies in `[a(1−e), a(1+e)]` — the perigee and apogee radii —
    /// and attains both endpoints each revolution.
    pub fn radius_bounds_m(&self) -> (f64, f64) {
        (
            self.elements.perigee_radius_m(),
            self.elements.apogee_radius_m(),
        )
    }

    /// A sound upper bound (m/s) on the inertial (ECI) speed of this
    /// satellite, valid for all times.
    ///
    /// Decompose the motion of [`Self::position_eci`]: the in-plane part
    /// is the Kepler ellipse traversed with the mean anomaly advancing at
    /// `ṁ` instead of `n`, i.e. the two-body trajectory with time scaled
    /// by `ṁ/n`, so its speed is at most `v_perigee · max(ṁ/n, 1)` with
    /// `v_perigee = sqrt(μ·(2/r_min − 1/a))` (vis-viva at the ellipse's
    /// fastest point; the `max` with 1 only ever loosens the bound).
    /// The secular drifts rotate that ellipse about fixed axes at rates
    /// `Ω̇` and `ω̇`; a rotation at rate `w` moves a point at radius `r`
    /// at speed at most `w·r`, adding at most `(|Ω̇| + |ω̇|)·r_max`.
    ///
    /// The horizon-skip contact scanner divides this (plus the Earth-
    /// rotation term for the ECEF frame) by a minimum slant range to
    /// bound the elevation-angle rate — see `openspace-net::contact`.
    pub fn max_speed_m_per_s(&self) -> f64 {
        let a = self.elements.semi_major_axis_m;
        let (r_min, r_max) = self.radius_bounds_m();
        let n = self.elements.mean_motion_rad_per_s();
        let v_perigee = (EARTH_MU_M3_PER_S2 * (2.0 / r_min - 1.0 / a)).sqrt();
        let time_scale = (self.mean_anomaly_rate.abs() / n).max(1.0);
        v_perigee * time_scale + (self.raan_rate.abs() + self.argp_rate.abs()) * r_max
    }

    /// Osculating elements at time `t_s` after epoch.
    pub fn elements_at(&self, t_s: f64) -> OrbitalElements {
        let mut el = self.elements;
        el.raan_rad = (el.raan_rad + self.raan_rate * t_s).rem_euclid(std::f64::consts::TAU);
        el.arg_perigee_rad =
            (el.arg_perigee_rad + self.argp_rate * t_s).rem_euclid(std::f64::consts::TAU);
        el.mean_anomaly_rad =
            (el.mean_anomaly_rad + self.mean_anomaly_rate * t_s).rem_euclid(std::f64::consts::TAU);
        el
    }

    /// ECI position (m) at time `t_s` after epoch.
    pub fn position_eci(&self, t_s: f64) -> Vec3 {
        elements_to_state(&self.elements_at(t_s)).0
    }

    /// ECI position and velocity at time `t_s` after epoch.
    pub fn state_eci(&self, t_s: f64) -> (Vec3, Vec3) {
        elements_to_state(&self.elements_at(t_s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::km_to_m;

    fn leo(inc_deg: f64) -> OrbitalElements {
        OrbitalElements::circular(km_to_m(780.0), inc_deg, 0.0, 0.0).unwrap()
    }

    #[test]
    fn two_body_returns_to_start_after_one_period() {
        let prop = Propagator::new(leo(86.4), PerturbationModel::TwoBody);
        let p0 = prop.position_eci(0.0);
        let p1 = prop.position_eci(prop.elements().period_s());
        assert!(p0.distance(p1) < 1.0, "drift {} m", p0.distance(p1));
    }

    #[test]
    fn radius_stays_constant_for_circular_orbit() {
        let prop = Propagator::new(leo(53.0), PerturbationModel::SecularJ2);
        let r0 = prop.position_eci(0.0).norm();
        for k in 1..100 {
            let r = prop.position_eci(k as f64 * 60.0).norm();
            assert!((r - r0).abs() < 1.0, "t={}min r drift {}", k, r - r0);
        }
    }

    #[test]
    fn j2_regresses_node_westward_for_prograde_orbit() {
        let prop = Propagator::new(leo(53.0), PerturbationModel::SecularJ2);
        assert!(
            prop.raan_rate_rad_per_s() < 0.0,
            "prograde orbits regress westward"
        );
        // Published magnitude for 780 km / 53 deg is ~ -4.1e-7 rad/s
        // (≈ -2 deg/day). Check the ballpark.
        let deg_per_day = prop.raan_rate_rad_per_s().to_degrees() * 86_400.0;
        assert!(
            (-6.0..-2.0).contains(&deg_per_day),
            "RAAN rate {deg_per_day} deg/day out of LEO ballpark"
        );
    }

    #[test]
    fn j2_advances_node_eastward_for_retrograde_orbit() {
        let el = OrbitalElements::circular(km_to_m(780.0), 98.0, 0.0, 0.0).unwrap();
        let prop = Propagator::new(el, PerturbationModel::SecularJ2);
        assert!(prop.raan_rate_rad_per_s() > 0.0);
    }

    #[test]
    fn near_polar_orbit_has_small_nodal_regression() {
        let prop_polar = Propagator::new(leo(89.9), PerturbationModel::SecularJ2);
        let prop_mid = Propagator::new(leo(45.0), PerturbationModel::SecularJ2);
        assert!(
            prop_polar.raan_rate_rad_per_s().abs() < prop_mid.raan_rate_rad_per_s().abs() / 10.0
        );
    }

    #[test]
    fn two_body_and_j2_agree_at_epoch() {
        let el = leo(86.4);
        let a = Propagator::new(el, PerturbationModel::TwoBody).position_eci(0.0);
        let b = Propagator::new(el, PerturbationModel::SecularJ2).position_eci(0.0);
        assert!(a.distance(b) < 1e-6);
    }

    #[test]
    fn propagation_is_deterministic() {
        let prop = Propagator::new(leo(86.4), PerturbationModel::SecularJ2);
        let a = prop.position_eci(12_345.6);
        let b = prop.position_eci(12_345.6);
        assert_eq!(a, b);
    }

    #[test]
    fn radius_bounds_contain_sampled_radii() {
        let el = OrbitalElements::new(7.2e6, 0.02, 1.2, 0.5, 0.3, 0.1).unwrap();
        for model in [PerturbationModel::TwoBody, PerturbationModel::SecularJ2] {
            let prop = Propagator::new(el, model);
            let (r_min, r_max) = prop.radius_bounds_m();
            assert!(r_min <= r_max);
            for k in 0..500 {
                let r = prop.position_eci(k as f64 * 37.0).norm();
                assert!(
                    (r_min * (1.0 - 1e-9)..=r_max * (1.0 + 1e-9)).contains(&r),
                    "t={} r={r} outside [{r_min}, {r_max}]",
                    k as f64 * 37.0
                );
            }
        }
    }

    #[test]
    fn max_speed_bounds_finite_difference_speed() {
        // Sample the trajectory densely (including an eccentric orbit so
        // the perigee term binds) and check that no chord speed exceeds
        // the bound. Chord speed <= true max speed, so this is a valid
        // one-sided check of soundness.
        let els = [
            leo(86.4),
            OrbitalElements::new(7.2e6, 0.05, 1.7, 0.5, 0.3, 0.1).unwrap(),
        ];
        for el in els {
            for model in [PerturbationModel::TwoBody, PerturbationModel::SecularJ2] {
                let prop = Propagator::new(el, model);
                let v_max = prop.max_speed_m_per_s();
                assert!(v_max.is_finite() && v_max > 0.0);
                let h = 0.25;
                for k in 0..4000 {
                    let t = k as f64 * 1.7;
                    let v = prop.position_eci(t).distance(prop.position_eci(t + h)) / h;
                    assert!(v <= v_max, "t={t}: chord speed {v} > bound {v_max}");
                }
                // And the bound is tight-ish: within 25% of the fastest
                // observed chord speed (it is a bound, not an estimate).
                let fastest = (0..4000)
                    .map(|k| {
                        let t = k as f64 * 1.7;
                        prop.position_eci(t).distance(prop.position_eci(t + h)) / h
                    })
                    .fold(0.0, f64::max);
                assert!(
                    v_max < fastest * 1.25,
                    "bound {v_max} vs observed {fastest}"
                );
            }
        }
    }

    #[test]
    fn elements_at_preserves_shape_parameters() {
        let el = OrbitalElements::new(7.2e6, 0.01, 1.2, 0.5, 0.3, 0.1).unwrap();
        let prop = Propagator::new(el, PerturbationModel::SecularJ2);
        let later = prop.elements_at(10_000.0);
        assert_eq!(later.semi_major_axis_m, el.semi_major_axis_m);
        assert_eq!(later.eccentricity, el.eccentricity);
        assert_eq!(later.inclination_rad, el.inclination_rad);
    }
}
