//! Orbit propagation: two-body Keplerian motion with optional secular J2
//! perturbations.
//!
//! The OpenSpace study needs orbital *predictability* over hours to days,
//! which secular J2 captures (nodal regression and apsidal rotation are the
//! dominant LEO perturbations). Short-period J2 oscillations, drag, and
//! higher harmonics are below the fidelity needed to evaluate coverage and
//! routing and are deliberately out of scope (documented substitution in
//! DESIGN.md).

use crate::constants::{EARTH_J2, EARTH_RADIUS_M};
use crate::frames::Vec3;
use crate::kepler::{elements_to_state, OrbitalElements};

/// Propagation model selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PerturbationModel {
    /// Pure two-body motion: only the mean anomaly advances.
    TwoBody,
    /// Two-body plus secular J2 drift of RAAN, argument of perigee, and
    /// mean anomaly. The default: this is what makes polar constellations
    /// precess realistically.
    #[default]
    SecularJ2,
}

/// A deterministic orbit propagator for one satellite.
///
/// Cheap to copy; the per-step cost is one Kepler solve plus a rotation.
#[derive(Debug, Clone, Copy)]
pub struct Propagator {
    elements: OrbitalElements,
    model: PerturbationModel,
    /// Secular rates (rad/s), precomputed at construction.
    raan_rate: f64,
    argp_rate: f64,
    mean_anomaly_rate: f64,
}

impl Propagator {
    /// Build a propagator from epoch elements with the given model.
    pub fn new(elements: OrbitalElements, model: PerturbationModel) -> Self {
        let n = elements.mean_motion_rad_per_s();
        let a = elements.semi_major_axis_m;
        let e = elements.eccentricity;
        let i = elements.inclination_rad;
        let (raan_rate, argp_rate, mn_corr) = match model {
            PerturbationModel::TwoBody => (0.0, 0.0, 0.0),
            PerturbationModel::SecularJ2 => {
                let p = a * (1.0 - e * e);
                let factor = 1.5 * EARTH_J2 * (EARTH_RADIUS_M / p).powi(2) * n;
                let ci = i.cos();
                let si2 = i.sin().powi(2);
                let raan_dot = -factor * ci;
                let argp_dot = factor * (2.0 - 2.5 * si2);
                let mn_dot = factor * (1.0 - 1.5 * si2) * (1.0 - e * e).sqrt();
                (raan_dot, argp_dot, mn_dot)
            }
        };
        Self {
            elements,
            model,
            raan_rate,
            argp_rate,
            mean_anomaly_rate: n + mn_corr,
        }
    }

    /// Epoch elements this propagator was built from.
    pub fn elements(&self) -> &OrbitalElements {
        &self.elements
    }

    /// The perturbation model in use.
    pub fn model(&self) -> PerturbationModel {
        self.model
    }

    /// Secular RAAN drift rate (rad/s); zero for the two-body model.
    pub fn raan_rate_rad_per_s(&self) -> f64 {
        self.raan_rate
    }

    /// Osculating elements at time `t_s` after epoch.
    pub fn elements_at(&self, t_s: f64) -> OrbitalElements {
        let mut el = self.elements;
        el.raan_rad = (el.raan_rad + self.raan_rate * t_s).rem_euclid(std::f64::consts::TAU);
        el.arg_perigee_rad =
            (el.arg_perigee_rad + self.argp_rate * t_s).rem_euclid(std::f64::consts::TAU);
        el.mean_anomaly_rad =
            (el.mean_anomaly_rad + self.mean_anomaly_rate * t_s).rem_euclid(std::f64::consts::TAU);
        el
    }

    /// ECI position (m) at time `t_s` after epoch.
    pub fn position_eci(&self, t_s: f64) -> Vec3 {
        elements_to_state(&self.elements_at(t_s)).0
    }

    /// ECI position and velocity at time `t_s` after epoch.
    pub fn state_eci(&self, t_s: f64) -> (Vec3, Vec3) {
        elements_to_state(&self.elements_at(t_s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::km_to_m;

    fn leo(inc_deg: f64) -> OrbitalElements {
        OrbitalElements::circular(km_to_m(780.0), inc_deg, 0.0, 0.0).unwrap()
    }

    #[test]
    fn two_body_returns_to_start_after_one_period() {
        let prop = Propagator::new(leo(86.4), PerturbationModel::TwoBody);
        let p0 = prop.position_eci(0.0);
        let p1 = prop.position_eci(prop.elements().period_s());
        assert!(p0.distance(p1) < 1.0, "drift {} m", p0.distance(p1));
    }

    #[test]
    fn radius_stays_constant_for_circular_orbit() {
        let prop = Propagator::new(leo(53.0), PerturbationModel::SecularJ2);
        let r0 = prop.position_eci(0.0).norm();
        for k in 1..100 {
            let r = prop.position_eci(k as f64 * 60.0).norm();
            assert!((r - r0).abs() < 1.0, "t={}min r drift {}", k, r - r0);
        }
    }

    #[test]
    fn j2_regresses_node_westward_for_prograde_orbit() {
        let prop = Propagator::new(leo(53.0), PerturbationModel::SecularJ2);
        assert!(
            prop.raan_rate_rad_per_s() < 0.0,
            "prograde orbits regress westward"
        );
        // Published magnitude for 780 km / 53 deg is ~ -4.1e-7 rad/s
        // (≈ -2 deg/day). Check the ballpark.
        let deg_per_day = prop.raan_rate_rad_per_s().to_degrees() * 86_400.0;
        assert!(
            (-6.0..-2.0).contains(&deg_per_day),
            "RAAN rate {deg_per_day} deg/day out of LEO ballpark"
        );
    }

    #[test]
    fn j2_advances_node_eastward_for_retrograde_orbit() {
        let el = OrbitalElements::circular(km_to_m(780.0), 98.0, 0.0, 0.0).unwrap();
        let prop = Propagator::new(el, PerturbationModel::SecularJ2);
        assert!(prop.raan_rate_rad_per_s() > 0.0);
    }

    #[test]
    fn near_polar_orbit_has_small_nodal_regression() {
        let prop_polar = Propagator::new(leo(89.9), PerturbationModel::SecularJ2);
        let prop_mid = Propagator::new(leo(45.0), PerturbationModel::SecularJ2);
        assert!(
            prop_polar.raan_rate_rad_per_s().abs() < prop_mid.raan_rate_rad_per_s().abs() / 10.0
        );
    }

    #[test]
    fn two_body_and_j2_agree_at_epoch() {
        let el = leo(86.4);
        let a = Propagator::new(el, PerturbationModel::TwoBody).position_eci(0.0);
        let b = Propagator::new(el, PerturbationModel::SecularJ2).position_eci(0.0);
        assert!(a.distance(b) < 1e-6);
    }

    #[test]
    fn propagation_is_deterministic() {
        let prop = Propagator::new(leo(86.4), PerturbationModel::SecularJ2);
        let a = prop.position_eci(12_345.6);
        let b = prop.position_eci(12_345.6);
        assert_eq!(a, b);
    }

    #[test]
    fn elements_at_preserves_shape_parameters() {
        let el = OrbitalElements::new(7.2e6, 0.01, 1.2, 0.5, 0.3, 0.1).unwrap();
        let prop = Propagator::new(el, PerturbationModel::SecularJ2);
        let later = prop.elements_at(10_000.0);
        assert_eq!(later.semi_major_axis_m, el.semi_major_axis_m);
        assert_eq!(later.eccentricity, el.eccentricity);
        assert_eq!(later.inclination_rad, el.inclination_rad);
    }
}
