//! Two-Line Element (TLE) parsing and generation.
//!
//! §2.2's routing argument rests on public ephemerides: "the
//! radar-tracked orbital paths of satellites are well-known and readily
//! available on public websites [N2YO, AstriaGraph]. This means that all
//! firms that contribute satellites to OpenSpace have a full public view
//! of the topology of the entire network." TLEs are the format those
//! sites serve, so the stack can ingest real catalog data and export its
//! own constellations in the same form.
//!
//! Scope: the classical two-line format (line 1 + line 2, 69 columns,
//! modulo-10 checksums). We map TLEs to [`OrbitalElements`] for the
//! crate's own propagator; SGP4-specific fields (drag, ballistic
//! coefficient) are parsed and carried but not used by the Keplerian/J2
//! propagator (documented substitution — see DESIGN.md).

use crate::constants::EARTH_MU_M3_PER_S2;
use crate::kepler::OrbitalElements;

/// A parsed TLE record.
#[derive(Debug, Clone, PartialEq)]
pub struct Tle {
    /// Satellite catalog number.
    pub catalog_number: u32,
    /// International designator (e.g. "98067A"), trimmed.
    pub intl_designator: String,
    /// Epoch year (full, e.g. 2024).
    pub epoch_year: u32,
    /// Epoch day of year with fraction.
    pub epoch_day: f64,
    /// First derivative of mean motion (rev/day²) — carried, unused.
    pub mean_motion_dot: f64,
    /// B* drag term (1/earth radii) — carried, unused.
    pub bstar: f64,
    /// Inclination (degrees).
    pub inclination_deg: f64,
    /// RAAN (degrees).
    pub raan_deg: f64,
    /// Eccentricity (dimensionless).
    pub eccentricity: f64,
    /// Argument of perigee (degrees).
    pub arg_perigee_deg: f64,
    /// Mean anomaly (degrees).
    pub mean_anomaly_deg: f64,
    /// Mean motion (rev/day).
    pub mean_motion_rev_per_day: f64,
}

/// TLE parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TleError {
    /// A line was shorter than the 69-column format requires.
    LineTooShort {
        /// Which line (1 or 2).
        line: u8,
        /// Its length.
        len: usize,
    },
    /// Line did not start with the expected line number.
    BadLineNumber {
        /// Which line was expected.
        expected: u8,
    },
    /// The modulo-10 checksum failed.
    BadChecksum {
        /// Which line (1 or 2).
        line: u8,
        /// Stated checksum digit.
        stated: u8,
        /// Computed checksum digit.
        computed: u8,
    },
    /// A numeric field failed to parse.
    BadField {
        /// Field name.
        field: &'static str,
    },
    /// Catalog numbers of line 1 and line 2 disagree.
    CatalogMismatch,
}

impl std::fmt::Display for TleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::LineTooShort { line, len } => {
                write!(f, "line {line} too short: {len} chars (need 69)")
            }
            Self::BadLineNumber { expected } => write!(f, "expected line {expected}"),
            Self::BadChecksum {
                line,
                stated,
                computed,
            } => write!(f, "line {line} checksum {stated} != computed {computed}"),
            Self::BadField { field } => write!(f, "unparsable field `{field}`"),
            Self::CatalogMismatch => write!(f, "line 1 and 2 catalog numbers differ"),
        }
    }
}

impl std::error::Error for TleError {}

/// Modulo-10 checksum of the first 68 columns: digits count as value,
/// '-' counts as 1, everything else as 0.
pub fn tle_checksum(line: &str) -> u8 {
    line.chars()
        .take(68)
        .map(|c| match c {
            '0'..='9' => c as u32 - '0' as u32,
            '-' => 1,
            _ => 0,
        })
        .sum::<u32>() as u8
        % 10
}

fn field<T: std::str::FromStr>(s: &str, name: &'static str) -> Result<T, TleError> {
    s.trim()
        .parse::<T>()
        .map_err(|_| TleError::BadField { field: name })
}

/// Parse the TLE "implied decimal" exponent format, e.g. " 34123-4" =
/// 0.34123e-4, used for B*.
fn implied_decimal(s: &str) -> Result<f64, TleError> {
    let t = s.trim();
    if t.is_empty() || t == "00000-0" || t == "00000+0" {
        return Ok(0.0);
    }
    let (mantissa_str, exp_str) = t.split_at(t.len().saturating_sub(2));
    let sign = if mantissa_str.starts_with('-') {
        -1.0
    } else {
        1.0
    };
    let digits: String = mantissa_str
        .chars()
        .filter(|c| c.is_ascii_digit())
        .collect();
    if digits.is_empty() {
        return Err(TleError::BadField {
            field: "implied_decimal",
        });
    }
    let mantissa: f64 = format!("0.{digits}")
        .parse()
        .map_err(|_| TleError::BadField {
            field: "implied_decimal",
        })?;
    let exp: i32 = exp_str.trim().parse().map_err(|_| TleError::BadField {
        field: "implied_decimal_exp",
    })?;
    Ok(sign * mantissa * 10f64.powi(exp))
}

fn check_line(line: &str, which: u8) -> Result<(), TleError> {
    if line.len() < 69 {
        return Err(TleError::LineTooShort {
            line: which,
            len: line.len(),
        });
    }
    if !line.starts_with(&which.to_string()) {
        return Err(TleError::BadLineNumber { expected: which });
    }
    let stated = line.as_bytes()[68].wrapping_sub(b'0');
    let computed = tle_checksum(line);
    if stated != computed {
        return Err(TleError::BadChecksum {
            line: which,
            stated,
            computed,
        });
    }
    Ok(())
}

/// Parse a TLE from its two lines (name line optional and not needed).
pub fn parse_tle(line1: &str, line2: &str) -> Result<Tle, TleError> {
    check_line(line1, 1)?;
    check_line(line2, 2)?;

    let cat1: u32 = field(&line1[2..7], "catalog_number")?;
    let cat2: u32 = field(&line2[2..7], "catalog_number")?;
    if cat1 != cat2 {
        return Err(TleError::CatalogMismatch);
    }

    let epoch_yy: u32 = field(&line1[18..20], "epoch_year")?;
    let epoch_year = if epoch_yy < 57 {
        2000 + epoch_yy
    } else {
        1900 + epoch_yy
    };

    // Eccentricity has an implied leading decimal point.
    let ecc_digits = line2[26..33].trim();
    let eccentricity: f64 = format!("0.{ecc_digits}")
        .parse()
        .map_err(|_| TleError::BadField {
            field: "eccentricity",
        })?;

    Ok(Tle {
        catalog_number: cat1,
        intl_designator: line1[9..17].trim().to_string(),
        epoch_year,
        epoch_day: field(&line1[20..32], "epoch_day")?,
        mean_motion_dot: field(&line1[33..43], "mean_motion_dot")?,
        bstar: implied_decimal(&line1[53..61])?,
        inclination_deg: field(&line2[8..16], "inclination")?,
        raan_deg: field(&line2[17..25], "raan")?,
        eccentricity,
        arg_perigee_deg: field(&line2[34..42], "arg_perigee")?,
        mean_anomaly_deg: field(&line2[43..51], "mean_anomaly")?,
        mean_motion_rev_per_day: field(&line2[52..63], "mean_motion")?,
    })
}

impl Tle {
    /// Semi-major axis (m) from the mean motion via Kepler's third law.
    pub fn semi_major_axis_m(&self) -> f64 {
        let n_rad_per_s = self.mean_motion_rev_per_day * std::f64::consts::TAU / 86_400.0;
        (EARTH_MU_M3_PER_S2 / (n_rad_per_s * n_rad_per_s)).cbrt()
    }

    /// Convert to this crate's [`OrbitalElements`].
    pub fn to_elements(&self) -> Result<OrbitalElements, crate::kepler::ElementsError> {
        OrbitalElements::new(
            self.semi_major_axis_m(),
            self.eccentricity,
            self.inclination_deg.to_radians(),
            self.raan_deg.to_radians(),
            self.arg_perigee_deg.to_radians(),
            self.mean_anomaly_deg.to_radians(),
        )
    }
}

/// Render orbital elements as a TLE pair — how an OpenSpace operator
/// publishes its constellation to the public catalog.
pub fn elements_to_tle(
    catalog_number: u32,
    intl_designator: &str,
    epoch_year: u32,
    epoch_day: f64,
    el: &OrbitalElements,
) -> (String, String) {
    assert!(catalog_number <= 99_999, "catalog number exceeds 5 digits");
    assert!(intl_designator.len() <= 8, "designator exceeds 8 chars");
    let yy = epoch_year % 100;
    let mut line1 = format!(
        "1 {:05}U {:<8} {:02}{:012.8}  .00000000  00000-0  00000-0 0  999",
        catalog_number, intl_designator, yy, epoch_day
    );
    let n_rev_per_day = 86_400.0 / el.period_s();
    let ecc_digits = format!("{:.7}", el.eccentricity);
    let mut line2 = format!(
        "2 {:05} {:8.4} {:8.4} {} {:8.4} {:8.4} {:11.8}00000",
        catalog_number,
        el.inclination_rad.to_degrees(),
        el.raan_rad.to_degrees(),
        &ecc_digits[2..9],
        el.arg_perigee_rad.to_degrees(),
        el.mean_anomaly_rad.to_degrees(),
        n_rev_per_day
    );
    line1.truncate(68);
    line2.truncate(68);
    line1.push((b'0' + tle_checksum(&line1)) as char);
    line2.push((b'0' + tle_checksum(&line2)) as char);
    (line1, line2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::km_to_m;

    // The canonical ISS TLE example (valid checksums).
    const ISS_L1: &str = "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927";
    const ISS_L2: &str = "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537";

    #[test]
    fn parses_the_iss_tle() {
        let t = parse_tle(ISS_L1, ISS_L2).unwrap();
        assert_eq!(t.catalog_number, 25544);
        assert_eq!(t.intl_designator, "98067A");
        assert_eq!(t.epoch_year, 2008);
        assert!((t.epoch_day - 264.51782528).abs() < 1e-8);
        assert!((t.inclination_deg - 51.6416).abs() < 1e-4);
        assert!((t.eccentricity - 0.0006703).abs() < 1e-7);
        assert!((t.mean_motion_rev_per_day - 15.72125391).abs() < 1e-6);
        assert!((t.bstar - (-0.11606e-4)).abs() < 1e-9);
    }

    #[test]
    fn iss_semi_major_axis_is_leo() {
        let t = parse_tle(ISS_L1, ISS_L2).unwrap();
        let alt_km = (t.semi_major_axis_m() - crate::constants::EARTH_RADIUS_M) / 1000.0;
        assert!((330.0..370.0).contains(&alt_km), "ISS altitude {alt_km} km");
    }

    #[test]
    fn iss_converts_to_valid_elements() {
        let t = parse_tle(ISS_L1, ISS_L2).unwrap();
        let el = t.to_elements().unwrap();
        assert!((el.inclination_rad.to_degrees() - 51.6416).abs() < 1e-4);
        // Period ~91.6 minutes.
        assert!((el.period_s() / 60.0 - 91.6).abs() < 0.5);
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut bad = ISS_L1.to_string();
        bad.replace_range(20..21, "9");
        assert!(matches!(
            parse_tle(&bad, ISS_L2),
            Err(TleError::BadChecksum { line: 1, .. })
        ));
    }

    #[test]
    fn short_line_rejected() {
        assert!(matches!(
            parse_tle("1 25544U", ISS_L2),
            Err(TleError::LineTooShort { line: 1, .. })
        ));
    }

    #[test]
    fn swapped_lines_rejected() {
        assert!(matches!(
            parse_tle(ISS_L2, ISS_L1),
            Err(TleError::BadLineNumber { expected: 1 })
        ));
    }

    #[test]
    fn catalog_mismatch_rejected() {
        // A valid line 2 for a different satellite (recompute checksum).
        let mut other = ISS_L2.to_string();
        other.replace_range(2..7, "25545");
        other.truncate(68);
        other.push((b'0' + tle_checksum(&other)) as char);
        assert_eq!(parse_tle(ISS_L1, &other), Err(TleError::CatalogMismatch));
    }

    #[test]
    fn round_trip_through_generated_tle() {
        let el = OrbitalElements::circular(km_to_m(780.0), 86.4, 123.4, 251.7).unwrap();
        let (l1, l2) = elements_to_tle(10_001, "26001A", 2026, 185.5, &el);
        let parsed = parse_tle(&l1, &l2).unwrap();
        let back = parsed.to_elements().unwrap();
        assert!((back.semi_major_axis_m - el.semi_major_axis_m).abs() < 500.0);
        assert!((back.inclination_rad - el.inclination_rad).abs() < 1e-4);
        assert!((back.raan_rad - el.raan_rad).abs() < 1e-4);
        assert!((back.mean_anomaly_rad - el.mean_anomaly_rad).abs() < 1e-4);
    }

    #[test]
    fn generated_lines_have_valid_structure() {
        let el = OrbitalElements::circular(km_to_m(550.0), 53.0, 10.0, 20.0).unwrap();
        let (l1, l2) = elements_to_tle(1, "24001AA", 2024, 1.0, &el);
        assert_eq!(l1.len(), 69);
        assert_eq!(l2.len(), 69);
        assert_eq!(tle_checksum(&l1), l1.as_bytes()[68] - b'0');
        assert_eq!(tle_checksum(&l2), l2.as_bytes()[68] - b'0');
    }

    #[test]
    fn implied_decimal_cases() {
        assert!((implied_decimal(" 34123-4").unwrap() - 0.34123e-4).abs() < 1e-12);
        assert!((implied_decimal("-11606-4").unwrap() + 0.11606e-4).abs() < 1e-12);
        assert_eq!(implied_decimal(" 00000-0").unwrap(), 0.0);
        assert_eq!(implied_decimal(" 00000+0").unwrap(), 0.0);
    }

    #[test]
    fn whole_constellation_publishes_and_reparses() {
        let els = crate::walker::walker_star(&crate::walker::iridium_params()).unwrap();
        for (i, el) in els.iter().enumerate() {
            let (l1, l2) = elements_to_tle(20_000 + i as u32, "26002A", 2026, 100.0, el);
            let t = parse_tle(&l1, &l2).unwrap();
            assert_eq!(t.catalog_number, 20_000 + i as u32);
            let back = t.to_elements().unwrap();
            assert!((back.inclination_rad - el.inclination_rad).abs() < 1e-4);
        }
    }
}
