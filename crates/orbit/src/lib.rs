//! # openspace-orbit
//!
//! Orbital-mechanics substrate for the OpenSpace LEO simulation stack.
//!
//! The OpenSpace paper (HotNets '24) leans on one physical fact: LEO
//! orbital paths are deterministic and publicly known, which makes the
//! network topology predictable and routing precomputable. This crate
//! supplies that substrate:
//!
//! * [`constants`] — WGS84/CODATA constants and small unit helpers.
//! * [`frames`] — ECI/ECEF/geodetic coordinate frames and conversions.
//! * [`kepler`] — classical orbital elements and the Kepler solver.
//! * [`propagator`] — two-body + secular-J2 deterministic propagation.
//! * [`walker`] — Walker Star/Delta and seeded random constellations.
//! * [`visibility`] — line-of-sight, elevation, slant range, footprints.
//! * [`coverage`] — global coverage estimators, including the paper's
//!   worst-case overlap model from §4.
//! * [`groundtrack`] — sub-satellite tracks over the rotating Earth.
//! * [`eclipse`] — Earth-shadow model feeding the power subsystem.
//! * [`tle`] — Two-Line Element parsing/generation: the public-catalog
//!   format (§2.2's "radar-tracked orbital paths … readily available on
//!   public websites") for ingesting and publishing constellations.
//! * [`time`] — civil-time arithmetic for placing mixed-epoch TLE
//!   catalogs on one simulation timeline.
//!
//! Everything is deterministic: given the same elements and times, every
//! function returns bit-identical results, which is what makes the
//! experiment harness a reproduction artefact rather than a demo.
//!
//! ## Example
//!
//! ```
//! use openspace_orbit::prelude::*;
//!
//! // The Figure 2(a) constellation: Iridium-like Walker Star.
//! let els = walker_star(&iridium_params()).unwrap();
//! let sats: Vec<Propagator> = els
//!     .into_iter()
//!     .map(|e| Propagator::new(e, PerturbationModel::SecularJ2))
//!     .collect();
//!
//! // Global coverage at t=0 with a 10-degree mask.
//! let grid = SphereGrid::new(2000);
//! let frac = grid_coverage_fraction(&grid, &sats, 0.0, 10f64.to_radians());
//! assert!(frac > 0.9);
//! ```

pub mod constants;
pub mod coverage;
pub mod eclipse;
pub mod ephemeris;
pub mod frames;
pub mod groundtrack;
pub mod kepler;
pub mod propagator;
pub mod time;
pub mod tle;
pub mod visibility;
pub mod walker;

/// Convenient glob-import surface for downstream crates and examples.
pub mod prelude {
    pub use crate::constants::{
        deg_to_rad, km_to_m, m_to_km, orbital_period_s, rad_to_deg, EARTH_MEAN_RADIUS_M,
        EARTH_RADIUS_M, SPEED_OF_LIGHT_M_PER_S,
    };
    pub use crate::coverage::{
        disjoint_packing_coverage_fraction, disjoint_packing_coverage_fraction_from_eci,
        grid_coverage_fraction, grid_coverage_fraction_from_ecef, visible_count,
        worst_case_coverage_fraction, worst_case_coverage_fraction_from_eci, SphereGrid,
    };
    pub use crate::eclipse::{eclipse_fraction, in_eclipse};
    pub use crate::ephemeris::{EphemerisCache, EphemerisSample, SampleKey, VisibilityCache};
    pub use crate::frames::{
        ecef_to_eci, ecef_to_geodetic, eci_to_ecef, geodetic_to_ecef, Geodetic, Vec3,
    };
    pub use crate::groundtrack::{ground_track, TrackPoint};
    pub use crate::kepler::{ElementsError, OrbitalElements};
    pub use crate::propagator::{PerturbationModel, Propagator};
    pub use crate::time::{tle_epoch_to_sim_s, CivilDate, UtcInstant};
    pub use crate::tle::{elements_to_tle, parse_tle, Tle, TleError};
    pub use crate::visibility::{
        cap_fraction, coverage_half_angle_rad, elevation_angle_rad, is_visible, line_of_sight,
        line_of_sight_with_clearance, look_angles_rad, max_isl_range_m, max_slant_range_m,
        slant_range_at_elevation_m, slant_range_m, visible_slant_range_m,
    };
    pub use crate::walker::{
        cbo_params, iridium_params, random_constellation, walker_delta, walker_star, WalkerParams,
    };
}
