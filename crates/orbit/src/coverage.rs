//! Coverage evaluation over the globe.
//!
//! Two estimators are provided:
//!
//! * [`grid_coverage_fraction`] — an equal-area lat/lon grid test: a grid
//!   point counts as covered when at least one satellite sees it above the
//!   minimum elevation. This is the honest estimator.
//! * [`worst_case_coverage_fraction`] — the paper's §4 model: "if there
//!   is any overlap between a pair of satellite ranges, their effective
//!   coverage will be reduced to that of a single satellite". We read
//!   this as pairwise merging: overlapping satellites are matched into
//!   pairs, each matched pair contributes one footprint, unmatched
//!   satellites contribute their own. Coverage is the effective footprint
//!   count times the single-cap fraction, capped at 1. This reproduces
//!   Figure 2(c)'s "total earth coverage by about 50 satellites" (a
//!   1/0.056-cap sphere needs ~18 effective footprints; 50 random
//!   satellites pair down to ~25-30).
//! * [`disjoint_packing_coverage_fraction`] — a strictly pessimistic
//!   alternative: only a greedily chosen set of mutually non-overlapping
//!   footprints counts at all. A true lower bound on the union.
//!
//! Figure 2(c) uses the worst-case (pairwise) model; EXPERIMENTS.md
//! reports all three.

use crate::frames::{eci_to_ecef, Vec3};
use crate::propagator::Propagator;
use crate::visibility::{cap_fraction, coverage_half_angle_rad, is_visible};

/// An equal-area sample grid on the unit sphere (geodesic-ish: uniform in
/// `sin(lat)` and longitude), in ECEF direction vectors.
#[derive(Debug, Clone)]
pub struct SphereGrid {
    points: Vec<Vec3>,
}

impl SphereGrid {
    /// Build a grid with roughly `n_target` points, equal-area by
    /// construction (uniform in z = sin(lat), uniform in lon). Points are on
    /// the unit sphere; scale by the Earth radius to get surface positions.
    ///
    /// # Panics
    /// Panics if `n_target < 8`.
    pub fn new(n_target: usize) -> Self {
        assert!(n_target >= 8, "grid needs at least 8 points");
        // rows ~ sqrt(n/2), cols ~ 2*rows keeps cells roughly square at the
        // equator.
        let rows = ((n_target as f64 / 2.0).sqrt().round() as usize).max(2);
        let cols = 2 * rows;
        let mut points = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            // Band centers uniform in sin(lat) for equal area.
            let z = -1.0 + 2.0 * (i as f64 + 0.5) / rows as f64;
            let lat = z.asin();
            let (slat, clat) = lat.sin_cos();
            for j in 0..cols {
                let lon = std::f64::consts::TAU * (j as f64 + 0.5) / cols as f64;
                let (slon, clon) = lon.sin_cos();
                points.push(Vec3::new(clat * clon, clat * slon, slat));
            }
        }
        Self { points }
    }

    /// The grid's unit-sphere direction vectors.
    pub fn points(&self) -> &[Vec3] {
        &self.points
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid is empty (never true for a constructed grid).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Fraction of the sample grid covered by at least one satellite above
/// `min_elevation_rad`, at simulation time `t_s`.
pub fn grid_coverage_fraction(
    grid: &SphereGrid,
    sats: &[Propagator],
    t_s: f64,
    min_elevation_rad: f64,
) -> f64 {
    let sat_ecef: Vec<Vec3> = sats
        .iter()
        .map(|p| eci_to_ecef(p.position_eci(t_s), t_s))
        .collect();
    grid_coverage_fraction_from_ecef(grid, &sat_ecef, min_elevation_rad)
}

/// [`grid_coverage_fraction`] over already-computed satellite ECEF
/// positions (e.g. from an ephemeris cache).
pub fn grid_coverage_fraction_from_ecef(
    grid: &SphereGrid,
    sat_ecef: &[Vec3],
    min_elevation_rad: f64,
) -> f64 {
    if grid.is_empty() {
        return 0.0;
    }
    let covered = grid
        .points()
        .iter()
        .filter(|&&dir| {
            let ground = dir * crate::constants::EARTH_RADIUS_M;
            sat_ecef
                .iter()
                .any(|&s| is_visible(ground, s, min_elevation_rad))
        })
        .count();
    covered as f64 / grid.len() as f64
}

/// Footprint descriptors (sub-satellite direction, half-angle) at `t_s`.
fn footprints(sats: &[Propagator], t_s: f64, min_elevation_rad: f64) -> Vec<(Vec3, f64)> {
    let pos: Vec<Vec3> = sats.iter().map(|p| p.position_eci(t_s)).collect();
    footprints_from_eci(&pos, min_elevation_rad)
}

/// Footprint descriptors from already-computed ECI positions. Directions
/// keep the ECI frame; footprint *angles* are frame-independent, which is
/// all the overlap models consume.
fn footprints_from_eci(pos_eci: &[Vec3], min_elevation_rad: f64) -> Vec<(Vec3, f64)> {
    pos_eci
        .iter()
        .map(|&pos| {
            let lam = coverage_half_angle_rad(
                pos.norm() - crate::constants::EARTH_MEAN_RADIUS_M,
                min_elevation_rad,
            );
            (pos.normalized(), lam)
        })
        .collect()
}

/// The paper's worst-case overlap model (§4): overlapping satellites are
/// greedily matched into pairs, each pair contributing one footprint
/// ("their effective coverage will be reduced to that of a single
/// satellite"); unmatched satellites contribute their own footprint.
/// Returns the summed cap fraction of the effective footprints, clamped
/// to 1.0. Deterministic: matching proceeds in satellite index order.
///
/// Footprints overlap when the central angle between sub-satellite points
/// is below the sum of their half-angles.
pub fn worst_case_coverage_fraction(sats: &[Propagator], t_s: f64, min_elevation_rad: f64) -> f64 {
    worst_case_from_footprints(footprints(sats, t_s, min_elevation_rad))
}

/// [`worst_case_coverage_fraction`] over already-computed ECI positions.
pub fn worst_case_coverage_fraction_from_eci(pos_eci: &[Vec3], min_elevation_rad: f64) -> f64 {
    worst_case_from_footprints(footprints_from_eci(pos_eci, min_elevation_rad))
}

fn worst_case_from_footprints(fp: Vec<(Vec3, f64)>) -> f64 {
    let mut matched = vec![false; fp.len()];
    let mut frac = 0.0;
    for i in 0..fp.len() {
        if matched[i] {
            continue;
        }
        // Find the first unmatched later satellite overlapping i.
        let partner = ((i + 1)..fp.len())
            .find(|&j| !matched[j] && fp[i].0.angle_to(fp[j].0) < fp[i].1 + fp[j].1);
        if let Some(j) = partner {
            matched[j] = true;
            // The pair counts as the larger of the two footprints.
            frac += cap_fraction(fp[i].1.max(fp[j].1));
        } else {
            frac += cap_fraction(fp[i].1);
        }
        matched[i] = true;
    }
    frac.min(1.0)
}

/// A strictly pessimistic estimator: only a greedily selected set of
/// mutually non-overlapping footprints counts; every footprint that
/// overlaps a kept one contributes nothing. This is a true lower bound on
/// the union coverage.
pub fn disjoint_packing_coverage_fraction(
    sats: &[Propagator],
    t_s: f64,
    min_elevation_rad: f64,
) -> f64 {
    disjoint_packing_from_footprints(footprints(sats, t_s, min_elevation_rad))
}

/// [`disjoint_packing_coverage_fraction`] over already-computed ECI
/// positions.
pub fn disjoint_packing_coverage_fraction_from_eci(
    pos_eci: &[Vec3],
    min_elevation_rad: f64,
) -> f64 {
    disjoint_packing_from_footprints(footprints_from_eci(pos_eci, min_elevation_rad))
}

fn disjoint_packing_from_footprints(fp: Vec<(Vec3, f64)>) -> f64 {
    let mut kept: Vec<(Vec3, f64)> = Vec::new();
    for (dir, lam) in fp {
        let overlaps = kept
            .iter()
            .any(|&(kdir, klam)| dir.angle_to(kdir) < lam + klam);
        if !overlaps {
            kept.push((dir, lam));
        }
    }
    let frac: f64 = kept.iter().map(|&(_, lam)| cap_fraction(lam)).sum();
    frac.min(1.0)
}

/// Count of satellites visible from a ground point at time `t_s`.
pub fn visible_count(
    ground_ecef: Vec3,
    sats: &[Propagator],
    t_s: f64,
    min_elevation_rad: f64,
) -> usize {
    sats.iter()
        .filter(|p| {
            let s = eci_to_ecef(p.position_eci(t_s), t_s);
            is_visible(ground_ecef, s, min_elevation_rad)
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::km_to_m;
    use crate::propagator::PerturbationModel;
    use crate::walker::{iridium_params, random_constellation, walker_star};

    fn props(els: Vec<crate::kepler::OrbitalElements>) -> Vec<Propagator> {
        els.into_iter()
            .map(|e| Propagator::new(e, PerturbationModel::TwoBody))
            .collect()
    }

    #[test]
    fn grid_is_roughly_requested_size() {
        let g = SphereGrid::new(1000);
        assert!((800..=1400).contains(&g.len()), "{}", g.len());
    }

    #[test]
    fn grid_points_are_unit_vectors() {
        for &p in SphereGrid::new(200).points() {
            assert!((p.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn grid_is_equal_area_in_z() {
        // Mean z over an equal-area grid should vanish.
        let g = SphereGrid::new(2000);
        let mean_z: f64 = g.points().iter().map(|p| p.z).sum::<f64>() / g.len() as f64;
        assert!(mean_z.abs() < 1e-9, "{mean_z}");
    }

    #[test]
    #[should_panic(expected = "at least 8")]
    fn tiny_grid_panics() {
        SphereGrid::new(4);
    }

    #[test]
    fn no_satellites_no_coverage() {
        let g = SphereGrid::new(500);
        assert_eq!(grid_coverage_fraction(&g, &[], 0.0, 0.0), 0.0);
        assert_eq!(worst_case_coverage_fraction(&[], 0.0, 0.0), 0.0);
    }

    #[test]
    fn single_satellite_covers_about_its_cap() {
        let els = random_constellation(1, km_to_m(780.0), 86.4, 3).unwrap();
        let sats = props(els);
        let g = SphereGrid::new(4000);
        let got = grid_coverage_fraction(&g, &sats, 0.0, 0.0);
        let expect = cap_fraction(coverage_half_angle_rad(km_to_m(780.0), 0.0));
        assert!(
            (got - expect).abs() < 0.02,
            "grid {got} vs analytic {expect}"
        );
    }

    #[test]
    fn iridium_gives_high_coverage() {
        let sats = props(walker_star(&iridium_params()).unwrap());
        let g = SphereGrid::new(3000);
        let frac = grid_coverage_fraction(&g, &sats, 0.0, 10f64.to_radians());
        assert!(frac > 0.9, "Iridium at 10 deg min elevation: {frac}");
    }

    #[test]
    fn coverage_increases_with_satellites() {
        let g = SphereGrid::new(2000);
        let mut last = 0.0;
        for n in [5, 20, 60] {
            let sats = props(random_constellation(n, km_to_m(780.0), 86.4, 11).unwrap());
            let f = grid_coverage_fraction(&g, &sats, 0.0, 0.0);
            assert!(f >= last - 0.02, "n={n}: {f} < {last}");
            last = f;
        }
    }

    #[test]
    fn disjoint_packing_is_pessimistic_vs_grid() {
        let sats = props(random_constellation(30, km_to_m(780.0), 86.4, 5).unwrap());
        let g = SphereGrid::new(3000);
        let honest = grid_coverage_fraction(&g, &sats, 0.0, 0.0);
        let lower = disjoint_packing_coverage_fraction(&sats, 0.0, 0.0);
        assert!(
            lower <= honest + 0.03,
            "packing bound {lower} should not exceed honest {honest}"
        );
    }

    #[test]
    fn worst_case_single_sat_equals_cap() {
        let sats = props(random_constellation(1, km_to_m(780.0), 86.4, 9).unwrap());
        let expect = cap_fraction(coverage_half_angle_rad(km_to_m(780.0), 0.0));
        for got in [
            worst_case_coverage_fraction(&sats, 0.0, 0.0),
            disjoint_packing_coverage_fraction(&sats, 0.0, 0.0),
        ] {
            assert!((got - expect).abs() < 1e-3, "{got} vs {expect}");
        }
    }

    #[test]
    fn pairwise_model_at_most_halves_the_count() {
        // n satellites yield between n/2 and n effective footprints, so
        // the estimate is bounded by [n/2, n] caps (before clamping).
        let sats = props(random_constellation(20, km_to_m(780.0), 86.4, 4).unwrap());
        let got = worst_case_coverage_fraction(&sats, 0.0, 0.0);
        let cap = cap_fraction(coverage_half_angle_rad(km_to_m(780.0), 0.0));
        assert!(got >= 10.0 * cap - 1e-9, "{got} below half-count bound");
        assert!(got <= 20.0 * cap + 1e-9, "{got} above full-count bound");
    }

    #[test]
    fn pairwise_dominates_disjoint_packing() {
        // Merging pairs keeps at least as many footprints as discarding
        // every overlapped satellite.
        for seed in [1, 2, 3, 4] {
            let sats = props(random_constellation(40, km_to_m(780.0), 86.4, seed).unwrap());
            let pairwise = worst_case_coverage_fraction(&sats, 0.0, 0.0);
            let packing = disjoint_packing_coverage_fraction(&sats, 0.0, 0.0);
            assert!(
                pairwise >= packing - 1e-9,
                "seed {seed}: {pairwise} < {packing}"
            );
        }
    }

    #[test]
    fn paper_shape_total_coverage_near_fifty_sats() {
        // Figure 2(c): total Earth coverage by about 50 satellites under
        // the worst-case model. Average over seeds at the horizon mask.
        let mean_at = |n: usize| {
            let mut sum = 0.0;
            for seed in 0..8u64 {
                let sats =
                    props(random_constellation(n, km_to_m(780.0), 86.4, 100 + seed).unwrap());
                sum += worst_case_coverage_fraction(&sats, 0.0, 0.0);
            }
            sum / 8.0
        };
        assert!(mean_at(10) < 0.8, "10 sats should not cover the Earth");
        assert!(mean_at(60) > 0.97, "60 sats should reach ~total coverage");
    }

    #[test]
    fn worst_case_clamps_at_one() {
        let sats = props(random_constellation(400, km_to_m(780.0), 86.4, 2).unwrap());
        assert!(worst_case_coverage_fraction(&sats, 0.0, 0.0) <= 1.0);
    }

    #[test]
    fn visible_count_zero_without_sats_overhead() {
        let ground = Vec3::new(crate::constants::EARTH_RADIUS_M, 0.0, 0.0);
        // One satellite on the opposite side of the planet.
        let els =
            crate::kepler::OrbitalElements::circular(km_to_m(780.0), 86.4, 0.0, 180.0).unwrap();
        let sats = props(vec![els]);
        assert_eq!(visible_count(ground, &sats, 0.0, 0.0), 0);
    }
}
