//! Constellation generators.
//!
//! Two deterministic patterns plus a seeded random generator:
//!
//! * **Walker Star** (`i:t/p/f` with RAAN spread over 180°) — the Iridium
//!   pattern the paper's Figure 2(a) uses. Ascending nodes span a half
//!   circle so ascending and descending passes interleave, giving polar
//!   convergence and a seam between counter-rotating planes.
//! * **Walker Delta** (RAAN spread over 360°) — the Starlink-shell pattern,
//!   included as the monolithic-baseline geometry.
//! * **Random constellation** — the paper's §4 methodology: "randomly
//!   distributing satellites' orbital paths". Used by the Figure 2(b)/(c)
//!   sweeps.

use crate::constants::km_to_m;
use crate::kepler::{ElementsError, OrbitalElements};

/// Parameters of a Walker constellation (`i:t/p/f` notation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkerParams {
    /// Total number of satellites `t`.
    pub total_satellites: usize,
    /// Number of orbital planes `p`; must divide `t`.
    pub planes: usize,
    /// Relative phasing factor `f` in `0..p`.
    pub phasing: usize,
    /// Common altitude of all satellites (m).
    pub altitude_m: f64,
    /// Common inclination (degrees).
    pub inclination_deg: f64,
}

/// Error from constellation generation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalkerError {
    /// `planes` must be nonzero and divide `total_satellites`.
    BadPlaneCount { total: usize, planes: usize },
    /// Phasing factor must be `< planes`.
    BadPhasing { phasing: usize, planes: usize },
    /// The per-satellite elements were invalid (e.g. altitude below ground).
    Elements(ElementsError),
}

impl std::fmt::Display for WalkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadPlaneCount { total, planes } => write!(
                f,
                "plane count {planes} must be nonzero and divide total satellites {total}"
            ),
            Self::BadPhasing { phasing, planes } => {
                write!(f, "phasing factor {phasing} must be < planes {planes}")
            }
            Self::Elements(e) => write!(f, "invalid satellite elements: {e}"),
        }
    }
}

impl std::error::Error for WalkerError {}

impl From<ElementsError> for WalkerError {
    fn from(e: ElementsError) -> Self {
        Self::Elements(e)
    }
}

/// The classic Iridium configuration used by Figure 2(a): 66 satellites in
/// 6 planes at 780 km. The paper quotes "8.4 degree inclinations", a typo
/// for Iridium's published 86.4° near-polar inclination (an 8.4° orbit
/// cannot provide the global coverage the paper attributes to Iridium);
/// we implement 86.4°.
pub fn iridium_params() -> WalkerParams {
    WalkerParams {
        total_satellites: 66,
        planes: 6,
        phasing: 2,
        altitude_m: km_to_m(780.0),
        inclination_deg: 86.4,
    }
}

/// The CBO primer configuration (§4: 72 satellites, 12 per plane in 6
/// planes at 80° inclination gives ≈95% global coverage).
pub fn cbo_params() -> WalkerParams {
    WalkerParams {
        total_satellites: 72,
        planes: 6,
        phasing: 1,
        altitude_m: km_to_m(780.0),
        inclination_deg: 80.0,
    }
}

/// Generate a Walker **Star** constellation: ascending nodes uniformly
/// spread over 180°.
pub fn walker_star(p: &WalkerParams) -> Result<Vec<OrbitalElements>, WalkerError> {
    walker(p, 180.0)
}

/// Generate a Walker **Delta** constellation: ascending nodes uniformly
/// spread over 360°.
pub fn walker_delta(p: &WalkerParams) -> Result<Vec<OrbitalElements>, WalkerError> {
    walker(p, 360.0)
}

fn walker(p: &WalkerParams, raan_span_deg: f64) -> Result<Vec<OrbitalElements>, WalkerError> {
    if p.planes == 0 || !p.total_satellites.is_multiple_of(p.planes) {
        return Err(WalkerError::BadPlaneCount {
            total: p.total_satellites,
            planes: p.planes,
        });
    }
    if p.phasing >= p.planes {
        return Err(WalkerError::BadPhasing {
            phasing: p.phasing,
            planes: p.planes,
        });
    }
    let per_plane = p.total_satellites / p.planes;
    let mut out = Vec::with_capacity(p.total_satellites);
    for plane in 0..p.planes {
        let raan_deg = raan_span_deg * plane as f64 / p.planes as f64;
        for slot in 0..per_plane {
            // In-plane spacing plus the inter-plane phase offset f·360/t.
            let anomaly_deg = 360.0 * slot as f64 / per_plane as f64
                + 360.0 * p.phasing as f64 * plane as f64 / p.total_satellites as f64;
            out.push(OrbitalElements::circular(
                p.altitude_m,
                p.inclination_deg,
                raan_deg,
                anomaly_deg,
            )?);
        }
    }
    Ok(out)
}

/// Generate `n` satellites on circular orbits with seeded-random RAAN and
/// mean anomaly — the paper's §4 methodology for the Figure 2(b)/(c)
/// sweeps. Inclination is fixed (near-polar by default in the experiments)
/// so every satellite overflies all latitudes.
///
/// Uses a splitmix64 sequence internally so the result depends only on
/// `(n, seed)` and not on any global RNG state.
pub fn random_constellation(
    n: usize,
    altitude_m: f64,
    inclination_deg: f64,
    seed: u64,
) -> Result<Vec<OrbitalElements>, ElementsError> {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        // splitmix64
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64 // uniform in [0,1)
    };
    (0..n)
        .map(|_| {
            let raan_deg = 360.0 * next();
            let anomaly_deg = 360.0 * next();
            OrbitalElements::circular(altitude_m, inclination_deg, raan_deg, anomaly_deg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    #[test]
    fn iridium_has_66_sats_in_6_planes() {
        let els = walker_star(&iridium_params()).unwrap();
        assert_eq!(els.len(), 66);
        // 6 distinct RAAN values.
        let mut raans: Vec<i64> = els.iter().map(|e| (e.raan_rad * 1e9) as i64).collect();
        raans.sort_unstable();
        raans.dedup();
        assert_eq!(raans.len(), 6);
    }

    #[test]
    fn star_raans_span_half_circle() {
        let els = walker_star(&iridium_params()).unwrap();
        let max_raan = els.iter().map(|e| e.raan_rad).fold(0.0, f64::max);
        assert!(max_raan < TAU / 2.0, "star RAANs must stay under 180 deg");
    }

    #[test]
    fn delta_raans_span_full_circle() {
        let els = walker_delta(&iridium_params()).unwrap();
        let max_raan = els.iter().map(|e| e.raan_rad).fold(0.0, f64::max);
        assert!(
            max_raan > TAU * 0.7,
            "delta RAANs should reach past 250 deg"
        );
    }

    #[test]
    fn in_plane_spacing_is_uniform() {
        let els = walker_star(&iridium_params()).unwrap();
        // First plane: slots 0..11, anomaly step 360/11 deg.
        let step = TAU / 11.0;
        for k in 0..10 {
            let d = (els[k + 1].mean_anomaly_rad - els[k].mean_anomaly_rad).rem_euclid(TAU);
            assert!((d - step).abs() < 1e-12, "slot {k} spacing {d}");
        }
    }

    #[test]
    fn all_sats_share_altitude_and_inclination() {
        let p = iridium_params();
        for el in walker_star(&p).unwrap() {
            assert!((el.altitude_m() - p.altitude_m).abs() < 1e-6);
            assert!((el.inclination_rad - p.inclination_deg.to_radians()).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_non_dividing_plane_count() {
        let mut p = iridium_params();
        p.planes = 7;
        assert!(matches!(
            walker_star(&p),
            Err(WalkerError::BadPlaneCount { .. })
        ));
    }

    #[test]
    fn rejects_zero_planes() {
        let mut p = iridium_params();
        p.planes = 0;
        assert!(matches!(
            walker_star(&p),
            Err(WalkerError::BadPlaneCount { .. })
        ));
    }

    #[test]
    fn rejects_bad_phasing() {
        let mut p = iridium_params();
        p.phasing = 6;
        assert!(matches!(
            walker_star(&p),
            Err(WalkerError::BadPhasing { .. })
        ));
    }

    #[test]
    fn random_constellation_is_seed_deterministic() {
        let a = random_constellation(40, km_to_m(780.0), 86.4, 7).unwrap();
        let b = random_constellation(40, km_to_m(780.0), 86.4, 7).unwrap();
        assert_eq!(a, b);
        let c = random_constellation(40, km_to_m(780.0), 86.4, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn random_constellation_spreads_raan() {
        let els = random_constellation(200, km_to_m(780.0), 86.4, 42).unwrap();
        let mean_raan: f64 = els.iter().map(|e| e.raan_rad).sum::<f64>() / els.len() as f64;
        // Uniform over [0, 2pi): mean near pi.
        assert!(
            (mean_raan - std::f64::consts::PI).abs() < 0.5,
            "mean RAAN {mean_raan}"
        );
    }

    #[test]
    fn cbo_configuration_matches_primer() {
        let p = cbo_params();
        assert_eq!(p.total_satellites, 72);
        assert_eq!(p.planes, 6);
        assert_eq!(walker_star(&p).unwrap().len(), 72);
    }
}
