//! Physical and geodetic constants used throughout the orbit crate.
//!
//! All values follow the WGS84 geodetic system and CODATA where applicable.
//! Internal units are SI: meters, seconds, radians, kilograms.

/// Standard gravitational parameter of the Earth, `GM` (m³/s²), WGS84.
pub const EARTH_MU_M3_PER_S2: f64 = 3.986_004_418e14;

/// Mean equatorial radius of the Earth (m), WGS84 semi-major axis.
pub const EARTH_RADIUS_M: f64 = 6_378_137.0;

/// Polar radius of the Earth (m), WGS84 semi-minor axis.
pub const EARTH_POLAR_RADIUS_M: f64 = 6_356_752.314_245;

/// First eccentricity squared of the WGS84 reference ellipsoid.
pub const EARTH_ECCENTRICITY_SQ: f64 = 6.694_379_990_14e-3;

/// Mean volumetric radius of the Earth (m). Used for spherical-cap coverage
/// area computations where an ellipsoid adds nothing.
pub const EARTH_MEAN_RADIUS_M: f64 = 6_371_000.0;

/// Earth's rotation rate (rad/s) relative to the stars (sidereal).
pub const EARTH_ROTATION_RATE_RAD_PER_S: f64 = 7.292_115_146_7e-5;

/// Second zonal harmonic (J2) of Earth's gravity field (dimensionless).
/// Drives the secular drift of RAAN and argument of perigee that the
/// propagator models.
pub const EARTH_J2: f64 = 1.082_626_68e-3;

/// Speed of light in vacuum (m/s). Exact by SI definition.
pub const SPEED_OF_LIGHT_M_PER_S: f64 = 299_792_458.0;

/// Boltzmann constant (J/K). Exact by SI definition. Re-exported here so the
/// PHY crate shares a single source of truth.
pub const BOLTZMANN_J_PER_K: f64 = 1.380_649e-23;

/// Duration of one sidereal day (s).
pub const SIDEREAL_DAY_S: f64 = 86_164.090_5;

/// Astronomical unit (m) — mean Earth–Sun distance, used by the eclipse model.
pub const ASTRONOMICAL_UNIT_M: f64 = 1.495_978_707e11;

/// Mean radius of the Sun (m), used by the eclipse model.
pub const SUN_RADIUS_M: f64 = 6.957e8;

/// Obliquity of the ecliptic (rad) at epoch J2000, used by the toy solar
/// ephemeris in the eclipse model.
pub const ECLIPTIC_OBLIQUITY_RAD: f64 = 0.409_092_804_2;

/// Convert degrees to radians.
#[inline]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg.to_radians()
}

/// Convert radians to degrees.
#[inline]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad.to_degrees()
}

/// Convert kilometers to meters.
#[inline]
pub fn km_to_m(km: f64) -> f64 {
    km * 1_000.0
}

/// Convert meters to kilometers.
#[inline]
pub fn m_to_km(m: f64) -> f64 {
    m / 1_000.0
}

/// Circular orbital velocity (m/s) at radius `r_m` from the Earth's center.
///
/// # Panics
/// Panics if `r_m` is not strictly positive.
#[inline]
pub fn circular_velocity_m_per_s(r_m: f64) -> f64 {
    assert!(r_m > 0.0, "orbital radius must be positive, got {r_m}");
    (EARTH_MU_M3_PER_S2 / r_m).sqrt()
}

/// Orbital period (s) of a circular or elliptical orbit with semi-major axis
/// `a_m`, via Kepler's third law.
///
/// # Panics
/// Panics if `a_m` is not strictly positive.
#[inline]
pub fn orbital_period_s(a_m: f64) -> f64 {
    assert!(a_m > 0.0, "semi-major axis must be positive, got {a_m}");
    std::f64::consts::TAU * (a_m.powi(3) / EARTH_MU_M3_PER_S2).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iridium_orbital_period_is_about_100_minutes() {
        // Iridium: 780 km altitude. Published period ~100.4 min.
        let a = EARTH_RADIUS_M + km_to_m(780.0);
        let period_min = orbital_period_s(a) / 60.0;
        assert!(
            (period_min - 100.4).abs() < 0.5,
            "got {period_min} min, expected ~100.4 min"
        );
    }

    #[test]
    fn leo_circular_velocity_is_about_7_5_km_per_s() {
        let v = circular_velocity_m_per_s(EARTH_RADIUS_M + km_to_m(780.0));
        assert!((v - 7_460.0).abs() < 50.0, "got {v} m/s");
    }

    #[test]
    fn degree_radian_round_trip() {
        for d in [-180.0, -90.0, 0.0, 45.0, 180.0, 360.0] {
            assert!((rad_to_deg(deg_to_rad(d)) - d).abs() < 1e-12);
        }
    }

    #[test]
    fn km_m_round_trip() {
        assert_eq!(m_to_km(km_to_m(780.0)), 780.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_radius_velocity_panics() {
        circular_velocity_m_per_s(0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn negative_sma_period_panics() {
        orbital_period_s(-1.0);
    }

    #[test]
    fn sidereal_day_consistent_with_rotation_rate() {
        // Rotation rate consistent with sidereal day length (which is
        // shorter than the 86 400 s solar day).
        let derived = std::f64::consts::TAU / EARTH_ROTATION_RATE_RAD_PER_S;
        assert!((derived - SIDEREAL_DAY_S).abs() < 1.0);
        assert!(derived < 86_400.0);
    }
}
