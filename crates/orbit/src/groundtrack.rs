//! Ground tracks: the sub-satellite path over the rotating Earth.
//!
//! Used by Figure 2(a)-style constellation plots and by the federation
//! study to reason about when a satellite overflies its owner's ground
//! segment.

use crate::frames::{ecef_to_geodetic, eci_to_ecef, Geodetic};
use crate::propagator::Propagator;

/// A sampled ground track point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackPoint {
    /// Simulation time (s).
    pub t_s: f64,
    /// Sub-satellite geodetic point (altitude = satellite altitude).
    pub geodetic: Geodetic,
}

/// Sample the ground track of a satellite from `t_start_s` to `t_end_s`
/// (inclusive of the start, exclusive of the end) at `step_s` intervals.
///
/// # Panics
/// Panics if `step_s <= 0` or `t_end_s < t_start_s`.
pub fn ground_track(
    sat: &Propagator,
    t_start_s: f64,
    t_end_s: f64,
    step_s: f64,
) -> Vec<TrackPoint> {
    assert!(step_s > 0.0, "step must be positive");
    assert!(t_end_s >= t_start_s, "end before start");
    let n = ((t_end_s - t_start_s) / step_s).ceil() as usize;
    (0..n)
        .map(|k| {
            let t = t_start_s + k as f64 * step_s;
            let ecef = eci_to_ecef(sat.position_eci(t), t);
            TrackPoint {
                t_s: t,
                geodetic: ecef_to_geodetic(ecef),
            }
        })
        .collect()
}

/// Maximum geodetic latitude (rad) reachable by the sub-satellite point of
/// an orbit with the given inclination: `min(i, π − i)`.
pub fn max_ground_latitude_rad(inclination_rad: f64) -> f64 {
    inclination_rad.min(std::f64::consts::PI - inclination_rad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::km_to_m;
    use crate::kepler::OrbitalElements;
    use crate::propagator::PerturbationModel;

    fn sat(inc_deg: f64) -> Propagator {
        Propagator::new(
            OrbitalElements::circular(km_to_m(780.0), inc_deg, 10.0, 0.0).unwrap(),
            PerturbationModel::TwoBody,
        )
    }

    #[test]
    fn track_has_expected_length() {
        let tr = ground_track(&sat(86.4), 0.0, 600.0, 60.0);
        assert_eq!(tr.len(), 10);
        assert_eq!(tr[0].t_s, 0.0);
        assert_eq!(tr[9].t_s, 540.0);
    }

    #[test]
    fn track_latitude_bounded_by_inclination() {
        let tr = ground_track(&sat(53.0), 0.0, 7000.0, 30.0);
        // Geodetic latitude can exceed geocentric slightly; allow 0.5 deg.
        for p in &tr {
            assert!(
                p.geodetic.lat_deg() <= 53.5 && p.geodetic.lat_deg() >= -53.5,
                "lat {}",
                p.geodetic.lat_deg()
            );
        }
        // And the track actually reaches near the bound.
        let max_lat = tr
            .iter()
            .map(|p| p.geodetic.lat_deg().abs())
            .fold(0.0, f64::max);
        assert!(max_lat > 50.0, "max lat {max_lat}");
    }

    #[test]
    fn polar_orbit_reaches_high_latitude() {
        let tr = ground_track(&sat(86.4), 0.0, 7000.0, 30.0);
        let max_lat = tr
            .iter()
            .map(|p| p.geodetic.lat_deg().abs())
            .fold(0.0, f64::max);
        assert!(max_lat > 80.0, "max lat {max_lat}");
    }

    #[test]
    fn track_altitude_near_orbit_altitude() {
        let tr = ground_track(&sat(86.4), 0.0, 3000.0, 300.0);
        for p in &tr {
            // Geodetic altitude over the ellipsoid wobbles ±~20 km for a
            // sphere-radius circular orbit.
            assert!(
                (p.geodetic.alt_m - km_to_m(780.0)).abs() < km_to_m(25.0),
                "alt {}",
                p.geodetic.alt_m
            );
        }
    }

    #[test]
    fn track_drifts_westward_due_to_earth_rotation() {
        // Sample successive equator crossings (ascending): longitude must
        // shift westward by roughly period * rotation rate ≈ 25 deg.
        let s = sat(86.4);
        let period = s.elements().period_s();
        let p0 = ground_track(&s, 0.0, 1.0, 1.0)[0].geodetic;
        let p1 = ground_track(&s, period, period + 1.0, 1.0)[0].geodetic;
        let dlon = crate::frames::normalize_lon(p1.lon_rad - p0.lon_rad).to_degrees();
        assert!(
            (-28.0..-22.0).contains(&dlon),
            "westward drift per orbit {dlon} deg"
        );
    }

    #[test]
    fn max_ground_latitude_symmetric() {
        assert!((max_ground_latitude_rad(1.0) - 1.0).abs() < 1e-12);
        let retro = max_ground_latitude_rad(std::f64::consts::PI - 1.0);
        assert!((retro - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_panics() {
        ground_track(&sat(86.4), 0.0, 100.0, 0.0);
    }
}
