//! Visibility geometry: line-of-sight between satellites, elevation angles
//! from ground points, slant ranges, and footprint half-angles.
//!
//! These are the geometric primitives behind user association, ISL
//! feasibility, and the coverage study.
//!
//! # Earth-radius conventions
//!
//! Two radii coexist in this module, deliberately:
//!
//! * [`line_of_sight`]/[`line_of_sight_with_clearance`] (and therefore
//!   every ISL feasibility test) treat the Earth as a sphere of
//!   [`EARTH_RADIUS_M`] — the *equatorial* radius. A grazing ray is
//!   blocked by the widest part of the planet, so the equatorial radius
//!   is the conservative occluder.
//! * Footprint math ([`coverage_half_angle_rad`], [`cap_area_m2`],
//!   [`cap_fraction`], [`max_slant_range_m`]) uses
//!   [`EARTH_MEAN_RADIUS_M`]: coverage fractions integrate over the whole
//!   globe, where the mean radius minimizes area error.
//!
//! The two constants differ by ~7.1 km. Code that *prunes* candidates by
//! range (the gated snapshot builder and horizon-skip contact scanner in
//! `openspace-net`) must not silently assume either convention: those
//! paths derive their gates from [`slant_range_at_elevation_m`] using the
//! **actual** geocentric radii of the ground point and satellite
//! (`|ground|`, `|sat|`), so the convention split cannot make a gate
//! optimistic. A regression test below
//! (`slant_range_pivot_is_convention_independent`) pins that the pivot
//! formula evaluated at the true site radius bounds the true slant range
//! no matter which constant the site position was generated from.

use crate::constants::{EARTH_MEAN_RADIUS_M, EARTH_RADIUS_M};
use crate::frames::Vec3;

/// True when the straight segment between two ECI/ECEF points clears the
/// Earth (modeled as a sphere of `EARTH_RADIUS_M`), i.e. an inter-satellite
/// link is geometrically feasible.
///
/// Both endpoints must be *outside* the sphere; if either is inside, the
/// answer is `false`.
pub fn line_of_sight(a: Vec3, b: Vec3) -> bool {
    line_of_sight_with_clearance(a, b, 0.0)
}

/// Like [`line_of_sight`] but requires the ray to clear the surface by an
/// extra `clearance_m` — used to keep optical ISLs out of the densest
/// atmosphere (grazing links suffer refraction and attenuation).
pub fn line_of_sight_with_clearance(a: Vec3, b: Vec3, clearance_m: f64) -> bool {
    let r_min = EARTH_RADIUS_M + clearance_m;
    let r_min_sq = r_min * r_min;
    if a.norm_sq() < r_min_sq || b.norm_sq() < r_min_sq {
        return false;
    }
    let ab = b - a;
    let ab_len_sq = ab.norm_sq();
    if ab_len_sq == 0.0 {
        return true; // coincident points above the surface
    }
    // Closest point of the segment to the origin.
    let t = (-a.dot(ab) / ab_len_sq).clamp(0.0, 1.0);
    let closest = a + ab * t;
    closest.norm_sq() >= r_min_sq
}

/// Elevation angle (rad) of a satellite as seen from a ground point.
///
/// `ground` and `sat` must be in the same frame (use ECEF). Positive when
/// the satellite is above the local horizon. Returns values in
/// `[-π/2, π/2]`.
pub fn elevation_angle_rad(ground: Vec3, sat: Vec3) -> f64 {
    let up = ground.normalized();
    let to_sat = sat - ground;
    let n = to_sat.norm();
    assert!(n > 0.0, "satellite coincides with ground point");
    (up.dot(to_sat) / n).clamp(-1.0, 1.0).asin()
}

/// Slant range (m) between a ground point and a satellite (same frame).
pub fn slant_range_m(ground: Vec3, sat: Vec3) -> f64 {
    ground.distance(sat)
}

/// True when the satellite is visible from the ground point at an elevation
/// of at least `min_elevation_rad`.
pub fn is_visible(ground: Vec3, sat: Vec3, min_elevation_rad: f64) -> bool {
    elevation_angle_rad(ground, sat) >= min_elevation_rad
}

/// Earth-central half-angle (rad) of the coverage cap of a satellite at
/// altitude `altitude_m` serving users down to elevation `min_elevation_rad`.
///
/// Standard geometry: with `ρ = R/(R+h)`, the half-angle is
/// `λ = acos(ρ·cos ε) − ε`. At `ε = 0` this is the horizon-limited
/// footprint.
pub fn coverage_half_angle_rad(altitude_m: f64, min_elevation_rad: f64) -> f64 {
    assert!(altitude_m > 0.0, "altitude must be positive");
    let rho = EARTH_MEAN_RADIUS_M / (EARTH_MEAN_RADIUS_M + altitude_m);
    (rho * min_elevation_rad.cos()).acos() - min_elevation_rad
}

/// Area (m²) of a spherical cap with half-angle `half_angle_rad` on the
/// mean-radius Earth sphere.
pub fn cap_area_m2(half_angle_rad: f64) -> f64 {
    std::f64::consts::TAU * EARTH_MEAN_RADIUS_M * EARTH_MEAN_RADIUS_M * (1.0 - half_angle_rad.cos())
}

/// Fraction of the Earth's surface covered by one spherical cap.
pub fn cap_fraction(half_angle_rad: f64) -> f64 {
    (1.0 - half_angle_rad.cos()) / 2.0
}

/// Maximum slant range (m) from a ground point to a satellite at
/// `altitude_m` appearing exactly at elevation `min_elevation_rad`.
pub fn max_slant_range_m(altitude_m: f64, min_elevation_rad: f64) -> f64 {
    let r = EARTH_MEAN_RADIUS_M;
    slant_range_at_elevation_m(r, r + altitude_m, min_elevation_rad)
}

/// Slant range (m) from a ground point at geocentric radius
/// `site_radius_m` to a satellite at geocentric radius `sat_radius_m`
/// seen at exactly `elevation_rad` above the local (geocentric) horizon.
///
/// Law of cosines in the Earth-center/ground/satellite triangle: the
/// angle at the ground vertex between the local up direction and the
/// line of sight is `π/2 − e`, so
/// `r² = R² + d² + 2·R·d·sin e`, giving
/// `d = sqrt(r² − R²·cos²e) − R·sin e`.
///
/// The slant range is **strictly decreasing in elevation** and
/// **increasing in satellite radius**, which makes this single formula
/// the pivot for both geometric gates used by the fast kernels in
/// `openspace-net`:
///
/// * a satellite at elevation **≥** `e` is at distance **≤**
///   `slant_range_at_elevation_m(R, r_max, e)` — the ground-link range
///   prune in the snapshot builder;
/// * a satellite at elevation **≤** `e` is at distance **≥**
///   `slant_range_at_elevation_m(R, r_min, e)` — the minimum-distance
///   denominator in the horizon-skip elevation-rate bound.
///
/// Returns `NaN` when `sat_radius_m < site_radius_m·|cos e|` (no such
/// triangle exists); callers gate on finiteness.
pub fn slant_range_at_elevation_m(
    site_radius_m: f64,
    sat_radius_m: f64,
    elevation_rad: f64,
) -> f64 {
    let (se, ce) = elevation_rad.sin_cos();
    (sat_radius_m * sat_radius_m - (site_radius_m * ce).powi(2)).sqrt() - site_radius_m * se
}

/// Combined visibility test and slant range: `Some(range_m)` when `sat`
/// is at elevation of at least `min_elevation_rad` above `ground`'s
/// horizon, `None` otherwise.
///
/// Costs a single vector norm per call, where calling [`is_visible`]
/// followed by [`slant_range_m`] costs two. The visibility decision and
/// the returned range are **bitwise identical** to that two-call
/// sequence: the elevation expression is the same as
/// [`elevation_angle_rad`]'s, and `|sat − ground|` equals
/// `|ground − sat|` exactly in IEEE arithmetic (negation is exact, and
/// squaring erases the sign before the sum).
///
/// # Panics
/// Panics if the two positions coincide.
pub fn visible_slant_range_m(ground: Vec3, sat: Vec3, min_elevation_rad: f64) -> Option<f64> {
    let up = ground.normalized();
    let to_sat = sat - ground;
    let n = to_sat.norm();
    assert!(n > 0.0, "satellite coincides with ground point");
    let elevation = (up.dot(to_sat) / n).clamp(-1.0, 1.0).asin();
    (elevation >= min_elevation_rad).then_some(n)
}

/// Look angles from a ground site to a satellite: azimuth (rad, clockwise
/// from true north) and elevation (rad). Both positions in ECEF.
///
/// This is what a ground antenna actually slews to — the terminal-side
/// counterpart of the satellite-side pointing in `openspace-phy`.
///
/// # Panics
/// Panics if the two positions coincide or the ground point is at the
/// Earth's center.
pub fn look_angles_rad(ground_ecef: Vec3, sat_ecef: Vec3) -> (f64, f64) {
    let up = ground_ecef.normalized();
    // Local East-North-Up basis at the ground point.
    let east = Vec3::new(-ground_ecef.y, ground_ecef.x, 0.0);
    assert!(
        east.norm() > 0.0,
        "look angles are undefined exactly at the poles' axis"
    );
    let east = east.normalized();
    let north = up.cross(east);
    let los = sat_ecef - ground_ecef;
    let n = los.norm();
    assert!(n > 0.0, "satellite coincides with ground point");
    let e = los.dot(east) / n;
    let nn = los.dot(north) / n;
    let u = los.dot(up) / n;
    let azimuth = e.atan2(nn).rem_euclid(std::f64::consts::TAU);
    (azimuth, u.clamp(-1.0, 1.0).asin())
}

/// Maximum geometric ISL range (m) between two satellites at altitudes
/// `h1_m` and `h2_m` whose connecting ray must clear the surface by
/// `clearance_m`.
pub fn max_isl_range_m(h1_m: f64, h2_m: f64, clearance_m: f64) -> f64 {
    let rc = EARTH_RADIUS_M + clearance_m;
    let r1 = EARTH_RADIUS_M + h1_m;
    let r2 = EARTH_RADIUS_M + h2_m;
    assert!(r1 >= rc && r2 >= rc, "satellites below clearance shell");
    (r1 * r1 - rc * rc).sqrt() + (r2 * r2 - rc * rc).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::km_to_m;
    use std::f64::consts::FRAC_PI_2;

    const H780: f64 = 780_000.0;

    #[test]
    fn opposite_satellites_have_no_los() {
        let a = Vec3::new(EARTH_RADIUS_M + H780, 0.0, 0.0);
        let b = Vec3::new(-(EARTH_RADIUS_M + H780), 0.0, 0.0);
        assert!(!line_of_sight(a, b));
    }

    #[test]
    fn adjacent_satellites_have_los() {
        let r = EARTH_RADIUS_M + H780;
        let a = Vec3::new(r, 0.0, 0.0);
        let th = 20f64.to_radians();
        let b = Vec3::new(r * th.cos(), r * th.sin(), 0.0);
        assert!(line_of_sight(a, b));
    }

    #[test]
    fn los_clearance_tightens_the_test() {
        // Two satellites whose connecting chord grazes ~100 km above the
        // surface: visible with zero clearance, blocked with 200 km.
        let r = EARTH_RADIUS_M + H780;
        // Chord at central angle 2θ has minimum radius r·cos(θ).
        // Pick θ with r·cosθ = EARTH_RADIUS_M + 100 km.
        let theta = ((EARTH_RADIUS_M + km_to_m(100.0)) / r).acos();
        let a = Vec3::new(r * theta.cos(), -r * theta.sin(), 0.0);
        let b = Vec3::new(r * theta.cos(), r * theta.sin(), 0.0);
        assert!(line_of_sight_with_clearance(a, b, 0.0));
        assert!(!line_of_sight_with_clearance(a, b, km_to_m(200.0)));
    }

    #[test]
    fn endpoint_inside_earth_has_no_los() {
        let a = Vec3::new(1.0e6, 0.0, 0.0);
        let b = Vec3::new(EARTH_RADIUS_M + H780, 0.0, 0.0);
        assert!(!line_of_sight(a, b));
    }

    #[test]
    fn coincident_points_have_los() {
        let a = Vec3::new(EARTH_RADIUS_M + H780, 0.0, 0.0);
        assert!(line_of_sight(a, a));
    }

    #[test]
    fn zenith_satellite_has_90_deg_elevation() {
        let g = Vec3::new(EARTH_RADIUS_M, 0.0, 0.0);
        let s = Vec3::new(EARTH_RADIUS_M + H780, 0.0, 0.0);
        // asin near 1 amplifies rounding; 1e-6 rad is still sub-arcsecond.
        assert!((elevation_angle_rad(g, s) - FRAC_PI_2).abs() < 1e-6);
    }

    #[test]
    fn antipodal_satellite_has_negative_elevation() {
        let g = Vec3::new(EARTH_RADIUS_M, 0.0, 0.0);
        let s = Vec3::new(-(EARTH_RADIUS_M + H780), 0.0, 0.0);
        assert!(elevation_angle_rad(g, s) < 0.0);
    }

    #[test]
    fn horizon_elevation_is_near_zero() {
        // Satellite at the geometric horizon of the ground point.
        let r = EARTH_RADIUS_M;
        let rs = EARTH_RADIUS_M + H780;
        let theta = (r / rs).acos(); // central angle to horizon
        let g = Vec3::new(r, 0.0, 0.0);
        let s = Vec3::new(rs * theta.cos(), rs * theta.sin(), 0.0);
        assert!(elevation_angle_rad(g, s).abs() < 1e-6);
    }

    #[test]
    fn footprint_half_angle_sane_for_leo() {
        // 780 km, 0° min elevation: lambda = acos(R/(R+h)) ≈ 27.5°—ish
        // (with mean radius). At 10° it shrinks.
        let lam0 = coverage_half_angle_rad(H780, 0.0);
        let lam10 = coverage_half_angle_rad(H780, 10f64.to_radians());
        assert!(
            (lam0.to_degrees() - 27.0).abs() < 1.5,
            "{}",
            lam0.to_degrees()
        );
        assert!(lam10 < lam0);
        assert!(lam10 > 0.0);
    }

    #[test]
    fn cap_fraction_of_hemisphere_is_half() {
        assert!((cap_fraction(FRAC_PI_2) - 0.5).abs() < 1e-12);
        assert!((cap_fraction(std::f64::consts::PI) - 1.0).abs() < 1e-12);
        assert_eq!(cap_fraction(0.0), 0.0);
    }

    #[test]
    fn cap_area_matches_fraction() {
        let lam = 0.4;
        let total = 4.0 * std::f64::consts::PI * EARTH_MEAN_RADIUS_M * EARTH_MEAN_RADIUS_M;
        assert!((cap_area_m2(lam) / total - cap_fraction(lam)).abs() < 1e-12);
    }

    #[test]
    fn max_slant_range_decreases_with_elevation() {
        let r0 = max_slant_range_m(H780, 0.0);
        let r25 = max_slant_range_m(H780, 25f64.to_radians());
        let r90 = max_slant_range_m(H780, FRAC_PI_2);
        assert!(r0 > r25 && r25 > r90);
        // At 90° the slant range is exactly the altitude.
        assert!((r90 - H780).abs() < 1.0);
        // At 0°, roughly sqrt(2Rh + h^2) ≈ 3300 km for 780 km altitude.
        assert!((r0 / 1000.0 - 3_290.0).abs() < 60.0, "{}", r0 / 1000.0);
    }

    #[test]
    fn slant_range_pivot_matches_max_slant_range() {
        // max_slant_range_m is the pivot formula specialized to the mean
        // radius — the refactor must not have changed a single bit.
        for &(h, e) in &[(H780, 0.0), (H780, 0.4), (550_000.0, 25f64.to_radians())] {
            let r = EARTH_MEAN_RADIUS_M;
            assert_eq!(
                max_slant_range_m(h, e).to_bits(),
                slant_range_at_elevation_m(r, r + h, e).to_bits()
            );
        }
    }

    #[test]
    fn slant_range_pivot_monotone_in_elevation_and_radius() {
        let r_site = EARTH_RADIUS_M;
        let r_sat = EARTH_RADIUS_M + H780;
        let mut prev = f64::INFINITY;
        for k in 0..=20 {
            let e = -FRAC_PI_2 + k as f64 * (std::f64::consts::PI / 20.0);
            let d = slant_range_at_elevation_m(r_site, r_sat, e);
            assert!(d <= prev, "slant range must not increase with elevation");
            prev = d;
        }
        // Increasing in satellite radius at fixed elevation.
        let lo = slant_range_at_elevation_m(r_site, r_sat, 0.2);
        let hi = slant_range_at_elevation_m(r_site, r_sat + 100_000.0, 0.2);
        assert!(hi > lo);
        // Endpoint identities: overhead = radius difference, nadir = sum.
        let over = slant_range_at_elevation_m(r_site, r_sat, FRAC_PI_2);
        assert!((over - H780).abs() < 1e-6 * H780);
    }

    #[test]
    fn slant_range_pivot_is_convention_independent() {
        // The gated paths in openspace-net compute their range gates from
        // the *actual* geocentric radii, not from either Earth-radius
        // constant. Pin that this makes the gate sound regardless of
        // which convention generated the site: for sites on both the
        // equatorial and the mean-radius sphere, every satellite at or
        // above the mask elevation sits within the gate computed from
        // |ground| and |sat| — while a gate computed from the *wrong*
        // constant could be short by up to the ~7.1 km convention split,
        // which is exactly why the pruned paths never take that shortcut.
        let mask = 10f64.to_radians();
        let r_sat = EARTH_RADIUS_M + H780;
        for &r_site in &[EARTH_RADIUS_M, EARTH_MEAN_RADIUS_M] {
            let gate = slant_range_at_elevation_m(r_site, r_sat, mask);
            let g = Vec3::new(r_site, 0.0, 0.0);
            // Sweep satellites across the sky; every one at el >= mask
            // must fall inside the gate (with the fast paths' relative
            // margin of 1e-9, which dwarfs rounding).
            for k in 0..=180 {
                let th = k as f64 * std::f64::consts::PI / 180.0;
                let s = Vec3::new(r_sat * th.cos(), r_sat * th.sin(), 0.0);
                if elevation_angle_rad(g, s) >= mask {
                    assert!(
                        g.distance(s) <= gate * (1.0 + 1e-9),
                        "visible satellite outside gate at theta={th}"
                    );
                }
            }
        }
        // The convention split itself: ~7.1 km of gate difference — large
        // enough that a fixed-constant gate would be unsound, and far
        // beyond the fp margin the pruned paths actually rely on.
        let split = slant_range_at_elevation_m(EARTH_RADIUS_M, r_sat, mask)
            - slant_range_at_elevation_m(EARTH_MEAN_RADIUS_M, r_sat, mask);
        assert!(
            split.abs() > 1_000.0 && split.abs() < 20_000.0,
            "convention split {split} m"
        );
    }

    #[test]
    fn visible_slant_range_matches_two_call_sequence_bitwise() {
        use crate::frames::{geodetic_to_ecef, Geodetic};
        let g = geodetic_to_ecef(Geodetic::from_degrees(12.0, 34.0, 0.0));
        for k in 0..50 {
            let lat = -60.0 + 2.5 * k as f64;
            let lon = 30.0 + 3.0 * k as f64;
            let s = geodetic_to_ecef(Geodetic::from_degrees(lat, lon, 780_000.0));
            let mask = 10f64.to_radians();
            match visible_slant_range_m(g, s, mask) {
                Some(d) => {
                    assert!(is_visible(g, s, mask));
                    assert_eq!(d.to_bits(), slant_range_m(g, s).to_bits());
                }
                None => assert!(!is_visible(g, s, mask)),
            }
        }
    }

    #[test]
    fn max_isl_range_for_iridium_shell() {
        // Two 780 km satellites, 80 km clearance: ≈ 2 * sqrt((R+780k)^2-(R+80k)^2)
        let d = max_isl_range_m(H780, H780, km_to_m(80.0));
        assert!((d / 1000.0 - 6_000.0).abs() < 300.0, "{}", d / 1000.0);
    }

    #[test]
    fn look_angles_cardinal_directions() {
        use crate::frames::{geodetic_to_ecef, Geodetic};
        let g = geodetic_to_ecef(Geodetic::from_degrees(0.0, 0.0, 0.0));
        // A satellite due east of the site at the same latitude.
        let east_sat = geodetic_to_ecef(Geodetic::from_degrees(0.0, 10.0, 780_000.0));
        let (az, el) = look_angles_rad(g, east_sat);
        assert!(
            (az.to_degrees() - 90.0).abs() < 1.0,
            "azimuth {}",
            az.to_degrees()
        );
        assert!(el > 0.0);
        // A satellite due north.
        let north_sat = geodetic_to_ecef(Geodetic::from_degrees(10.0, 0.0, 780_000.0));
        let (az, _) = look_angles_rad(g, north_sat);
        assert!(
            az.to_degrees() < 5.0 || az.to_degrees() > 355.0,
            "azimuth {}",
            az.to_degrees()
        );
    }

    #[test]
    fn look_elevation_agrees_with_elevation_angle() {
        use crate::frames::{geodetic_to_ecef, Geodetic};
        let g = geodetic_to_ecef(Geodetic::from_degrees(30.0, 50.0, 0.0));
        let s = geodetic_to_ecef(Geodetic::from_degrees(35.0, 55.0, 780_000.0));
        let (_, el) = look_angles_rad(g, s);
        assert!((el - elevation_angle_rad(g, s)).abs() < 1e-9);
    }

    #[test]
    fn zenith_look_angle_is_90_elevation() {
        let g = Vec3::new(EARTH_RADIUS_M, 0.0, 0.0);
        let s = Vec3::new(EARTH_RADIUS_M + H780, 0.0, 0.0);
        let (_, el) = look_angles_rad(g, s);
        assert!((el - FRAC_PI_2).abs() < 1e-6);
    }

    #[test]
    fn visibility_threshold_applies() {
        let g = Vec3::new(EARTH_RADIUS_M, 0.0, 0.0);
        let s = Vec3::new(EARTH_RADIUS_M + H780, 0.0, 0.0);
        assert!(is_visible(g, s, 80f64.to_radians()));
        let theta = 25f64.to_radians();
        let rs = EARTH_RADIUS_M + H780;
        let low = Vec3::new(rs * theta.cos(), rs * theta.sin(), 0.0);
        assert!(!is_visible(g, low, 40f64.to_radians()));
    }
}
