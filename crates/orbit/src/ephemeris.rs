//! Memoized ephemeris and visibility sampling.
//!
//! The Figure 2 sweeps evaluate the *same* orbits at the *same* epochs
//! over and over: `random_constellation(n, seed)` draws satellites
//! sequentially, so the size-`n` constellation of a trial is a prefix of
//! every larger size point of that trial, and each size point samples the
//! identical epoch grid. Re-propagating those orbits per size point is
//! the dominant redundant work in `latency_vs_satellites` /
//! `coverage_vs_satellites` (one Kepler solve plus two frame rotations
//! per satellite-epoch).
//!
//! [`EphemerisCache`] memoizes the per-satellite sample — ECI and ECEF
//! position — keyed by the exact bit patterns of
//! `(orbital elements, perturbation model, sample time)`, so any two
//! queries for the same orbit at the same epoch hit the cache regardless
//! of which sweep point asks. [`VisibilityCache`] layers a
//! ground-visibility memo (elevation-mask test per satellite sample and
//! ground point) on top — the contact-window building block.
//!
//! Both caches are internally locked and shareable across the scenario
//! harness's worker threads. Cached values are pure functions of the key,
//! so cache hits can never change a result — parallel sweeps stay
//! bitwise-identical to serial ones no matter the hit pattern.

use crate::frames::{eci_to_ecef, Vec3};
use crate::propagator::{PerturbationModel, Propagator};
use crate::visibility::is_visible;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Exact-bits cache key for one `(orbit, model, time)` sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SampleKey {
    bits: [u64; 8],
}

impl SampleKey {
    /// Key for `prop` sampled at `t_s`.
    pub fn new(prop: &Propagator, t_s: f64) -> Self {
        let el = prop.elements();
        let model = match prop.model() {
            PerturbationModel::TwoBody => 0u64,
            PerturbationModel::SecularJ2 => 1u64,
        };
        Self {
            bits: [
                el.semi_major_axis_m.to_bits(),
                el.eccentricity.to_bits(),
                el.inclination_rad.to_bits(),
                el.raan_rad.to_bits(),
                el.arg_perigee_rad.to_bits(),
                el.mean_anomaly_rad.to_bits(),
                model,
                t_s.to_bits(),
            ],
        }
    }
}

/// One cached ephemeris sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EphemerisSample {
    /// ECI position (m).
    pub eci: Vec3,
    /// ECEF position (m) at the same instant.
    pub ecef: Vec3,
}

/// A memo table of ephemeris samples, shareable across threads.
#[derive(Debug, Default)]
pub struct EphemerisCache {
    map: Mutex<HashMap<SampleKey, EphemerisSample>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EphemerisCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The (ECI, ECEF) sample of `prop` at `t_s`, computed at most once
    /// per distinct `(elements, model, t_s)` key.
    pub fn sample(&self, prop: &Propagator, t_s: f64) -> EphemerisSample {
        let key = SampleKey::new(prop, t_s);
        if let Some(&s) = self.map.lock().expect("ephemeris cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return s;
        }
        // Compute outside the lock: propagation is the expensive part,
        // and recomputing a sample another thread races us to is
        // harmless (pure function, identical value).
        let eci = prop.position_eci(t_s);
        let sample = EphemerisSample {
            eci,
            ecef: eci_to_ecef(eci, t_s),
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.map
            .lock()
            .expect("ephemeris cache lock")
            .insert(key, sample);
        sample
    }

    /// Samples for a whole constellation at `t_s`, in satellite order.
    pub fn samples(&self, props: &[Propagator], t_s: f64) -> Vec<EphemerisSample> {
        props.iter().map(|p| self.sample(p, t_s)).collect()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= distinct samples computed) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct samples currently stored.
    pub fn len(&self) -> usize {
        self.map.lock().expect("ephemeris cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Key of a ground-visibility query: satellite sample key + ground point
/// + elevation mask, all exact bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VisibilityKey {
    sample: SampleKey,
    ground: [u64; 3],
    mask: u64,
}

/// A memo of elevation-mask visibility tests layered over an
/// [`EphemerisCache`] — the repeated kernel of contact-window and access
/// computations.
#[derive(Debug, Default)]
pub struct VisibilityCache {
    ephemeris: EphemerisCache,
    map: Mutex<HashMap<VisibilityKey, bool>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl VisibilityCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared ephemeris memo underneath.
    pub fn ephemeris(&self) -> &EphemerisCache {
        &self.ephemeris
    }

    /// Whether `prop` at `t_s` is visible from `ground_ecef` above
    /// `min_elevation_rad`, memoized; also returns the satellite sample
    /// so callers get the slant-range inputs for free.
    pub fn visible(
        &self,
        prop: &Propagator,
        t_s: f64,
        ground_ecef: Vec3,
        min_elevation_rad: f64,
    ) -> (bool, EphemerisSample) {
        let sample_key = SampleKey::new(prop, t_s);
        let key = VisibilityKey {
            sample: sample_key,
            ground: [
                ground_ecef.x.to_bits(),
                ground_ecef.y.to_bits(),
                ground_ecef.z.to_bits(),
            ],
            mask: min_elevation_rad.to_bits(),
        };
        let sample = self.ephemeris.sample(prop, t_s);
        if let Some(&v) = self.map.lock().expect("visibility cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (v, sample);
        }
        let v = is_visible(ground_ecef, sample.ecef, min_elevation_rad);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.map
            .lock()
            .expect("visibility cache lock")
            .insert(key, v);
        (v, sample)
    }

    /// Cache hits so far (visibility layer only).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far (visibility layer only).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::km_to_m;
    use crate::frames::{geodetic_to_ecef, Geodetic};
    use crate::kepler::OrbitalElements;

    fn prop(ma_deg: f64) -> Propagator {
        Propagator::new(
            OrbitalElements::circular(km_to_m(780.0), 86.4, 0.0, ma_deg).unwrap(),
            PerturbationModel::TwoBody,
        )
    }

    #[test]
    fn cached_sample_matches_direct_propagation() {
        let cache = EphemerisCache::new();
        let p = prop(12.0);
        let s = cache.sample(&p, 345.6);
        assert_eq!(s.eci, p.position_eci(345.6));
        assert_eq!(s.ecef, eci_to_ecef(p.position_eci(345.6), 345.6));
    }

    #[test]
    fn repeat_queries_hit() {
        let cache = EphemerisCache::new();
        let p = prop(45.0);
        let a = cache.sample(&p, 100.0);
        let b = cache.sample(&p, 100.0);
        assert_eq!(a, b);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_orbits_and_times_miss() {
        let cache = EphemerisCache::new();
        cache.sample(&prop(0.0), 0.0);
        cache.sample(&prop(1.0), 0.0); // different orbit
        cache.sample(&prop(0.0), 60.0); // different epoch
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn visibility_memo_hits_and_agrees() {
        let cache = VisibilityCache::new();
        let p = prop(0.0);
        let ground = geodetic_to_ecef(Geodetic::from_degrees(0.0, 0.0, 0.0));
        let (a, sample) = cache.visible(&p, 0.0, ground, 0.0);
        let (b, _) = cache.visible(&p, 0.0, ground, 0.0);
        assert_eq!(a, b);
        assert_eq!(a, is_visible(ground, sample.ecef, 0.0));
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        // The underlying ephemeris sample was shared.
        assert_eq!(cache.ephemeris().misses(), 1);
        assert_eq!(cache.ephemeris().hits(), 1);
    }

    #[test]
    fn shared_across_threads() {
        let cache = EphemerisCache::new();
        let p = prop(30.0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for k in 0..16 {
                        cache.sample(&p, k as f64);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 16);
        assert_eq!(cache.hits() + cache.misses(), 64);
    }
}
