//! Coordinate frames and conversions.
//!
//! Three frames are used in the stack:
//!
//! * **ECI** (Earth-Centered Inertial): where orbital mechanics happens.
//!   A pseudo-J2000 frame; we ignore precession/nutation, which is far below
//!   the fidelity the OpenSpace study needs.
//! * **ECEF** (Earth-Centered Earth-Fixed): rotates with the Earth; ground
//!   stations and users are fixed here.
//! * **Geodetic** (latitude, longitude, altitude over the WGS84 ellipsoid):
//!   the human-facing frame.
//!
//! The ECI↔ECEF conversion uses a single rotation about the Z axis by the
//! Earth Rotation Angle, with the epoch chosen so that the two frames
//! coincide at simulation time `t = 0`.

use crate::constants::{EARTH_ECCENTRICITY_SQ, EARTH_RADIUS_M, EARTH_ROTATION_RATE_RAD_PER_S};

/// A 3-vector in meters (position) or meters/second (velocity).
///
/// Deliberately frame-agnostic at the type level; the functions below name
/// their frames explicitly. A newtype-per-frame scheme was considered and
/// rejected: the simulation passes millions of these through hot loops and
/// the conversion sites are few and well-audited.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// The zero vector.
    #[inline]
    pub const fn zero() -> Self {
        Self::new(0.0, 0.0, 0.0)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Squared Euclidean norm (avoids the sqrt in comparisons).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Self) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Self) -> Self {
        Self::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Unit vector in the same direction.
    ///
    /// # Panics
    /// Panics if the vector is (numerically) zero.
    #[inline]
    pub fn normalized(self) -> Self {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize the zero vector");
        self * (1.0 / n)
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, other: Self) -> f64 {
        (self - other).norm()
    }

    /// Angle (rad) between this vector and another, in `[0, π]`.
    ///
    /// # Panics
    /// Panics if either vector is zero.
    pub fn angle_to(self, other: Self) -> f64 {
        let denom = self.norm() * other.norm();
        assert!(denom > 0.0, "angle with a zero vector is undefined");
        (self.dot(other) / denom).clamp(-1.0, 1.0).acos()
    }
}

impl std::ops::Add for Vec3 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl std::ops::Sub for Vec3 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl std::ops::Mul<f64> for Vec3 {
    type Output = Self;
    #[inline]
    fn mul(self, s: f64) -> Self {
        Self::new(self.x * s, self.y * s, self.z * s)
    }
}

impl std::ops::Neg for Vec3 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.x, -self.y, -self.z)
    }
}

/// A geodetic position over the WGS84 ellipsoid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geodetic {
    /// Latitude in radians, positive north, in `[-π/2, π/2]`.
    pub lat_rad: f64,
    /// Longitude in radians, positive east, in `(-π, π]`.
    pub lon_rad: f64,
    /// Altitude above the ellipsoid in meters.
    pub alt_m: f64,
}

impl Geodetic {
    /// Construct from degrees and meters — the form the literature uses.
    ///
    /// # Panics
    /// Panics if latitude is outside `[-90°, 90°]`.
    pub fn from_degrees(lat_deg: f64, lon_deg: f64, alt_m: f64) -> Self {
        assert!(
            (-90.0..=90.0).contains(&lat_deg),
            "latitude must be in [-90, 90], got {lat_deg}"
        );
        Self {
            lat_rad: lat_deg.to_radians(),
            lon_rad: normalize_lon(lon_deg.to_radians()),
            alt_m,
        }
    }

    /// Latitude in degrees.
    pub fn lat_deg(&self) -> f64 {
        self.lat_rad.to_degrees()
    }

    /// Longitude in degrees.
    pub fn lon_deg(&self) -> f64 {
        self.lon_rad.to_degrees()
    }
}

/// Normalize a longitude into `(-π, π]`.
#[inline]
pub fn normalize_lon(lon_rad: f64) -> f64 {
    let mut l = lon_rad.rem_euclid(std::f64::consts::TAU);
    if l > std::f64::consts::PI {
        l -= std::f64::consts::TAU;
    }
    l
}

/// Earth Rotation Angle (rad) at simulation time `t_s`, with ERA(0) = 0 so
/// that ECI and ECEF coincide at the simulation epoch.
#[inline]
pub fn earth_rotation_angle_rad(t_s: f64) -> f64 {
    (EARTH_ROTATION_RATE_RAD_PER_S * t_s).rem_euclid(std::f64::consts::TAU)
}

/// Rotate an ECI position into ECEF at simulation time `t_s`.
pub fn eci_to_ecef(p_eci: Vec3, t_s: f64) -> Vec3 {
    let theta = earth_rotation_angle_rad(t_s);
    let (s, c) = theta.sin_cos();
    // ECEF = Rz(+theta) * ECI  (frame rotates with the Earth)
    Vec3::new(
        c * p_eci.x + s * p_eci.y,
        -s * p_eci.x + c * p_eci.y,
        p_eci.z,
    )
}

/// Rotate an ECEF position into ECI at simulation time `t_s`.
pub fn ecef_to_eci(p_ecef: Vec3, t_s: f64) -> Vec3 {
    let theta = earth_rotation_angle_rad(t_s);
    let (s, c) = theta.sin_cos();
    Vec3::new(
        c * p_ecef.x - s * p_ecef.y,
        s * p_ecef.x + c * p_ecef.y,
        p_ecef.z,
    )
}

/// Convert a geodetic position to ECEF using the WGS84 ellipsoid.
pub fn geodetic_to_ecef(g: Geodetic) -> Vec3 {
    let (slat, clat) = g.lat_rad.sin_cos();
    let (slon, clon) = g.lon_rad.sin_cos();
    // Prime-vertical radius of curvature.
    let n = EARTH_RADIUS_M / (1.0 - EARTH_ECCENTRICITY_SQ * slat * slat).sqrt();
    Vec3::new(
        (n + g.alt_m) * clat * clon,
        (n + g.alt_m) * clat * slon,
        (n * (1.0 - EARTH_ECCENTRICITY_SQ) + g.alt_m) * slat,
    )
}

/// Convert an ECEF position to geodetic coordinates.
///
/// Uses Bowring's iterative method; converges to sub-millimeter for any
/// point above the Earth's core.
pub fn ecef_to_geodetic(p: Vec3) -> Geodetic {
    let lon = p.y.atan2(p.x);
    let rho = (p.x * p.x + p.y * p.y).sqrt();
    // Initial guess: spherical latitude.
    let mut lat = p.z.atan2(rho * (1.0 - EARTH_ECCENTRICITY_SQ));
    let mut alt = 0.0;
    for _ in 0..8 {
        let slat = lat.sin();
        let n = EARTH_RADIUS_M / (1.0 - EARTH_ECCENTRICITY_SQ * slat * slat).sqrt();
        alt = if lat.cos().abs() > 1e-9 {
            rho / lat.cos() - n
        } else {
            p.z.abs() - n * (1.0 - EARTH_ECCENTRICITY_SQ)
        };
        let new_lat =
            p.z.atan2(rho * (1.0 - EARTH_ECCENTRICITY_SQ * n / (n + alt)));
        if (new_lat - lat).abs() < 1e-13 {
            lat = new_lat;
            break;
        }
        lat = new_lat;
    }
    Geodetic {
        lat_rad: lat,
        lon_rad: normalize_lon(lon),
        alt_m: alt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
        assert!((a - b).abs() < tol, "{what}: {a} vs {b}");
    }

    #[test]
    fn vec3_basic_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, -3.0, 9.0));
        assert_eq!(a - b, Vec3::new(-3.0, 7.0, -3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_close(a.dot(b), 12.0, 1e-12, "dot");
        assert_eq!(a.cross(b), Vec3::new(27.0, 6.0, -13.0));
    }

    #[test]
    fn cross_product_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert_close(c.dot(a), 0.0, 1e-9, "c·a");
        assert_close(c.dot(b), 0.0, 1e-9, "c·b");
    }

    #[test]
    fn normalized_has_unit_norm() {
        let v = Vec3::new(3.0, 4.0, 12.0).normalized();
        assert_close(v.norm(), 1.0, 1e-12, "norm");
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn normalize_zero_panics() {
        Vec3::zero().normalized();
    }

    #[test]
    fn angle_between_axes_is_right_angle() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 2.0, 0.0);
        assert_close(x.angle_to(y), FRAC_PI_2, 1e-12, "angle");
    }

    #[test]
    fn eci_ecef_round_trip() {
        let p = Vec3::new(7.0e6, -1.0e6, 2.0e6);
        for t in [0.0, 1.0, 3600.0, 86_400.0] {
            let back = ecef_to_eci(eci_to_ecef(p, t), t);
            assert_close(back.distance(p), 0.0, 1e-6, "round trip");
        }
    }

    #[test]
    fn frames_coincide_at_epoch() {
        let p = Vec3::new(7.0e6, 1.0e6, -2.0e6);
        assert_eq!(eci_to_ecef(p, 0.0), p);
    }

    #[test]
    fn quarter_sidereal_day_rotates_ninety_degrees() {
        let p = Vec3::new(7.0e6, 0.0, 0.0);
        let t = crate::constants::SIDEREAL_DAY_S / 4.0;
        let q = eci_to_ecef(p, t);
        // After a quarter turn, the inertial +X point appears near ECEF -Y.
        assert_close(q.x / 7.0e6, 0.0, 1e-4, "x");
        assert_close(q.y / 7.0e6, -1.0, 1e-4, "y");
    }

    #[test]
    fn geodetic_ecef_round_trip() {
        for (lat, lon, alt) in [
            (0.0, 0.0, 0.0),
            (45.0, 45.0, 1_000.0),
            (-33.9, 18.4, 50.0),
            (89.0, -179.0, 500_000.0),
            (-89.5, 10.0, 780_000.0),
        ] {
            let g = Geodetic::from_degrees(lat, lon, alt);
            let back = ecef_to_geodetic(geodetic_to_ecef(g));
            assert_close(back.lat_deg(), lat, 1e-6, "lat");
            assert_close(back.lon_deg(), lon, 1e-6, "lon");
            assert_close(back.alt_m, alt, 1e-3, "alt");
        }
    }

    #[test]
    fn equator_ecef_is_on_equatorial_radius() {
        let p = geodetic_to_ecef(Geodetic::from_degrees(0.0, 0.0, 0.0));
        assert_close(p.x, EARTH_RADIUS_M, 1e-6, "x");
        assert_close(p.y, 0.0, 1e-6, "y");
        assert_close(p.z, 0.0, 1e-6, "z");
    }

    #[test]
    fn pole_ecef_is_on_polar_radius() {
        let p = geodetic_to_ecef(Geodetic::from_degrees(90.0, 0.0, 0.0));
        assert_close(p.z, crate::constants::EARTH_POLAR_RADIUS_M, 1e-3, "z");
    }

    #[test]
    fn longitude_normalization() {
        assert_close(normalize_lon(PI + 0.1), -PI + 0.1, 1e-12, "wrap+");
        assert_close(normalize_lon(-PI - 0.1), PI - 0.1, 1e-12, "wrap-");
        assert_close(normalize_lon(3.0 * PI), PI, 1e-9, "3pi");
    }

    #[test]
    #[should_panic(expected = "latitude")]
    fn bad_latitude_panics() {
        Geodetic::from_degrees(91.0, 0.0, 0.0);
    }
}
