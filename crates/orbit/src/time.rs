//! Civil-time utilities: calendar dates, day-of-year, and TLE epochs.
//!
//! The rest of the crate runs on simulation seconds from an arbitrary
//! epoch. When ingesting public catalog data ([`crate::tle`]), each TLE
//! carries its own epoch (year + fractional day of year); to propagate a
//! mixed catalog consistently, those epochs must be placed on one common
//! timeline. This module provides the minimal, leap-second-free UTC
//! arithmetic needed for that: proleptic-Gregorian day counts and
//! epoch-difference computation. (Leap seconds are ignored — a documented
//! simplification worth ~37 s against real UTC, far below the minutes-
//! scale fidelity of contact planning.)

/// A civil date (proleptic Gregorian).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CivilDate {
    /// Year (e.g. 2026).
    pub year: i32,
    /// Month, 1–12.
    pub month: u8,
    /// Day of month, 1–31.
    pub day: u8,
}

/// Whether `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Days in the given month of the given year.
///
/// # Panics
/// Panics if `month` is not in `1..=12`.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("month {month} out of range"),
    }
}

impl CivilDate {
    /// Validate and construct.
    ///
    /// # Panics
    /// Panics on an impossible date.
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        assert!((1..=12).contains(&month), "month {month} out of range");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "day {day} out of range for {year}-{month}"
        );
        Self { year, month, day }
    }

    /// Day of year, 1-based (Jan 1 = 1).
    pub fn day_of_year(&self) -> u16 {
        let mut doy = self.day as u16;
        for m in 1..self.month {
            doy += days_in_month(self.year, m) as u16;
        }
        doy
    }

    /// Build from a 1-based day of year.
    ///
    /// # Panics
    /// Panics if `doy` exceeds the year's length.
    pub fn from_day_of_year(year: i32, doy: u16) -> Self {
        assert!(doy >= 1, "day of year is 1-based");
        let mut remaining = doy;
        for month in 1..=12u8 {
            let len = days_in_month(year, month) as u16;
            if remaining <= len {
                return Self::new(year, month, remaining as u8);
            }
            remaining -= len;
        }
        panic!("day of year {doy} exceeds year {year}");
    }

    /// Days since 1970-01-01 (can be negative).
    pub fn days_since_unix_epoch(&self) -> i64 {
        // Howard Hinnant's days_from_civil algorithm.
        let y = self.year as i64 - (self.month <= 2) as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let mp = (self.month as i64 + 9) % 12;
        let doy = (153 * mp + 2) / 5 + self.day as i64 - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }
}

/// A UTC instant (leap-second-free).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct UtcInstant {
    /// Seconds since 1970-01-01T00:00:00 (fractional).
    pub unix_s: f64,
}

impl UtcInstant {
    /// From a date and a time of day in seconds.
    ///
    /// # Panics
    /// Panics if `seconds_of_day` is outside `[0, 86400)`.
    pub fn from_date(date: CivilDate, seconds_of_day: f64) -> Self {
        assert!(
            (0.0..86_400.0).contains(&seconds_of_day),
            "seconds of day {seconds_of_day} out of range"
        );
        Self {
            unix_s: date.days_since_unix_epoch() as f64 * 86_400.0 + seconds_of_day,
        }
    }

    /// From a TLE-style epoch: full year plus fractional day of year
    /// (1.0 = Jan 1 00:00).
    ///
    /// # Panics
    /// Panics if the fractional day is out of the year's range.
    pub fn from_tle_epoch(year: i32, epoch_day: f64) -> Self {
        assert!(epoch_day >= 1.0, "TLE epoch day is 1-based");
        let doy = epoch_day.floor() as u16;
        let frac = epoch_day - doy as f64;
        let date = CivilDate::from_day_of_year(year, doy);
        Self::from_date(date, frac * 86_400.0)
    }

    /// Seconds elapsed from `earlier` to `self` (negative if `self` is
    /// before `earlier`).
    pub fn seconds_since(&self, earlier: UtcInstant) -> f64 {
        self.unix_s - earlier.unix_s
    }
}

/// Convert a parsed TLE's epoch to simulation seconds relative to a chosen
/// simulation epoch: positive when the TLE epoch is after it. Use the
/// negative of this as the time offset when propagating that TLE on the
/// common timeline (its elements are "fresh" at this instant).
pub fn tle_epoch_to_sim_s(tle: &crate::tle::Tle, sim_epoch: UtcInstant) -> f64 {
    UtcInstant::from_tle_epoch(tle.epoch_year as i32, tle.epoch_day).seconds_since(sim_epoch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2024));
        assert!(!is_leap_year(2026));
        assert!(!is_leap_year(1900)); // century rule
        assert!(is_leap_year(2000)); // 400 rule
    }

    #[test]
    fn day_of_year_round_trip() {
        for (y, m, d) in [(2026, 1, 1), (2026, 3, 1), (2024, 2, 29), (2026, 12, 31)] {
            let date = CivilDate::new(y, m, d);
            let back = CivilDate::from_day_of_year(y, date.day_of_year());
            assert_eq!(back, date);
        }
    }

    #[test]
    fn known_day_numbers() {
        assert_eq!(CivilDate::new(1970, 1, 1).days_since_unix_epoch(), 0);
        assert_eq!(CivilDate::new(1970, 1, 2).days_since_unix_epoch(), 1);
        assert_eq!(CivilDate::new(1969, 12, 31).days_since_unix_epoch(), -1);
        // A classic reference: 2000-03-01 is day 11017.
        assert_eq!(CivilDate::new(2000, 3, 1).days_since_unix_epoch(), 11_017);
    }

    #[test]
    fn leap_day_counts() {
        assert_eq!(CivilDate::new(2024, 2, 29).day_of_year(), 60);
        assert_eq!(CivilDate::new(2024, 3, 1).day_of_year(), 61);
        assert_eq!(CivilDate::new(2026, 3, 1).day_of_year(), 60);
    }

    #[test]
    fn tle_epoch_conversion() {
        // Day 1.5 of 2026 = Jan 1, 12:00 UTC.
        let t = UtcInstant::from_tle_epoch(2026, 1.5);
        let midnight = UtcInstant::from_date(CivilDate::new(2026, 1, 1), 0.0);
        assert!((t.seconds_since(midnight) - 43_200.0).abs() < 1e-6);
    }

    #[test]
    fn iss_epoch_lands_in_september_2008() {
        // The canonical ISS TLE epoch: 08264.51782528.
        let t = UtcInstant::from_tle_epoch(2008, 264.517_825_28);
        let sep20 = UtcInstant::from_date(CivilDate::new(2008, 9, 20), 0.0);
        let delta = t.seconds_since(sep20);
        assert!(
            (0.0..86_400.0).contains(&delta),
            "epoch {delta} s after Sep 20 00:00"
        );
    }

    #[test]
    fn mixed_catalog_offsets() {
        use crate::kepler::OrbitalElements;
        use crate::tle::{elements_to_tle, parse_tle};
        // Two TLEs published 6 hours apart sit 21 600 s apart on the
        // common timeline.
        let el = OrbitalElements::circular(780_000.0, 86.4, 0.0, 0.0).unwrap();
        let (a1, a2) = elements_to_tle(1, "26001A", 2026, 100.0, &el);
        let (b1, b2) = elements_to_tle(2, "26001B", 2026, 100.25, &el);
        let ta = parse_tle(&a1, &a2).unwrap();
        let tb = parse_tle(&b1, &b2).unwrap();
        let sim_epoch = UtcInstant::from_tle_epoch(2026, 100.0);
        let oa = tle_epoch_to_sim_s(&ta, sim_epoch);
        let ob = tle_epoch_to_sim_s(&tb, sim_epoch);
        assert!((oa - 0.0).abs() < 1e-6);
        assert!((ob - 21_600.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "day 29 out of range")]
    fn impossible_date_panics() {
        CivilDate::new(2026, 2, 29);
    }

    #[test]
    #[should_panic(expected = "exceeds year")]
    fn overlong_doy_panics() {
        CivilDate::from_day_of_year(2026, 366);
    }
}
