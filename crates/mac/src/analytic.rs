//! Analytic saturation model for CSMA/CA (Bianchi 2000).
//!
//! Bianchi's Markov-chain model of the 802.11 DCF predicts, for `n`
//! saturated stations, the per-slot transmission probability `τ`, the
//! conditional collision probability `p`, and the normalized saturation
//! throughput. It is the standard closed-form reference for contention
//! MACs; here it serves as an independent check on the discrete
//! simulation in [`crate::csma`] — theory and simulation agreeing is
//! what makes the E5 overhead numbers trustworthy.

use crate::params::MacParams;

/// Output of the Bianchi fixed point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BianchiPoint {
    /// Per-slot transmission probability of one station.
    pub tau: f64,
    /// Conditional collision probability seen by a transmitting station.
    pub collision_probability: f64,
    /// Normalized saturation throughput (payload time / channel time).
    pub throughput: f64,
}

/// Solve Bianchi's fixed point for `n` saturated stations under `params`.
///
/// The backoff ladder is derived from `cw_min`/`cw_max` (`W = cw_min+1`,
/// `m = log2((cw_max+1)/(cw_min+1))`). Success/collision slot durations
/// mirror the simulator's accounting (DIFS + frame + propagation
/// [+ SIFS + ACK + propagation on success]).
///
/// # Panics
/// Panics if `n == 0` or on invalid `params`.
pub fn bianchi_saturation(params: &MacParams, n: usize) -> BianchiPoint {
    params.validate();
    assert!(n > 0, "need at least one station");

    let w = (params.cw_min + 1) as f64;
    let m = (((params.cw_max + 1) as f64 / w).log2()).round().max(0.0);

    // Fixed point on p via bisection (tau(p) is monotone decreasing,
    // p(tau) is monotone increasing, so the composition has one root).
    let tau_of = |p: f64| -> f64 {
        if n == 1 {
            // No collisions possible: mean backoff (W-1)/2 slots.
            return 2.0 / (w + 1.0);
        }
        // Series form of Bianchi's τ (no 0/0 at p = 1/2):
        // τ = 2 / (1 + W + p·W·Σ_{i=0}^{m-1} (2p)^i)
        let mut series = 0.0;
        let mut term = 1.0;
        for _ in 0..(m as u32) {
            series += term;
            term *= 2.0 * p;
        }
        2.0 / (1.0 + w + p * w * series)
    };
    let p_of = |tau: f64| 1.0 - (1.0 - tau).powi(n as i32 - 1);

    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        let residual = p_of(tau_of(mid)) - mid;
        if residual > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let p = 0.5 * (lo + hi);
    let tau = tau_of(p);

    // Slot-type probabilities.
    let p_tr = 1.0 - (1.0 - tau).powi(n as i32); // some transmission
    let p_s = if p_tr > 0.0 {
        n as f64 * tau * (1.0 - tau).powi(n as i32 - 1) / p_tr
    } else {
        0.0
    };

    // Durations, matching the simulator.
    let sigma = params.slot_time_s;
    let t_s = params.difs_s
        + params.frame_tx_time_s()
        + params.propagation_delay_s
        + params.sifs_s
        + params.ack_tx_time_s()
        + params.propagation_delay_s;
    let t_c = params.difs_s + params.frame_tx_time_s() + params.propagation_delay_s;

    let payload_time = params.payload_bits as f64 / params.bit_rate_bps;
    let denom = (1.0 - p_tr) * sigma + p_tr * p_s * t_s + p_tr * (1.0 - p_s) * t_c;
    let throughput = p_tr * p_s * payload_time / denom;

    BianchiPoint {
        tau,
        collision_probability: p,
        throughput,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csma::simulate_csma_ca;

    #[test]
    fn single_station_has_no_collisions() {
        let b = bianchi_saturation(&MacParams::s_band_isl(), 1);
        assert!(b.collision_probability < 1e-12);
        assert!(b.tau > 0.0 && b.tau <= 1.0);
    }

    #[test]
    fn collision_probability_rises_with_n() {
        let p = MacParams::s_band_isl();
        let mut last = 0.0;
        for n in [2, 4, 8, 16, 32] {
            let b = bianchi_saturation(&p, n);
            assert!(
                b.collision_probability > last,
                "n={n}: p {} should exceed {last}",
                b.collision_probability
            );
            last = b.collision_probability;
        }
    }

    #[test]
    fn throughput_degrades_gracefully_with_n() {
        let p = MacParams::s_band_isl();
        let t2 = bianchi_saturation(&p, 2).throughput;
        let t64 = bianchi_saturation(&p, 64).throughput;
        assert!(t64 < t2);
        assert!(t64 > 0.05, "throughput should not collapse to zero: {t64}");
    }

    #[test]
    fn simulation_matches_bianchi_theory() {
        // The headline validation: the slotted DES and the closed-form
        // model agree on saturation throughput across contention levels.
        let p = MacParams::s_band_isl();
        for n in [2usize, 4, 8, 16] {
            let theory = bianchi_saturation(&p, n).throughput;
            let sim = simulate_csma_ca(&p, n, 60.0, 42).channel_efficiency;
            let rel = (sim - theory).abs() / theory;
            assert!(
                rel < 0.25,
                "n={n}: simulated {sim:.4} vs Bianchi {theory:.4} ({:.0}% off)",
                rel * 100.0
            );
        }
    }

    #[test]
    fn collision_rates_agree_too() {
        let p = MacParams::s_band_isl();
        for n in [4usize, 16] {
            let theory = bianchi_saturation(&p, n).collision_probability;
            let sim = simulate_csma_ca(&p, n, 60.0, 7).collision_rate;
            assert!(
                (sim - theory).abs() < 0.12,
                "n={n}: simulated p {sim:.3} vs Bianchi {theory:.3}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one station")]
    fn zero_stations_panics() {
        bianchi_saturation(&MacParams::s_band_isl(), 0);
    }
}
