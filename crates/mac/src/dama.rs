//! DAMA: demand-assigned multiple access.
//!
//! §2.1 closes with: "We leave the development of MAC methods more
//! suitable for real-time communications to future work." DAMA is the
//! classic satellite answer — a short contention phase carries tiny
//! reservation requests (slotted-ALOHA minislots), and a scheduler
//! assigns collision-free data slots to granted nodes. Contention is
//! confined to requests, so the *data* channel never collides, and
//! efficiency stays high under load at the price of one frame of
//! reservation latency.
//!
//! The simulation is deterministic under a seed, with Poisson arrivals
//! per node, and returns the same [`MacReport`] as the CSMA/CA and TDMA
//! models so the E5 harness can compare all three.

use crate::csma::MacReport;
use openspace_sim::rng::SimRng;

/// DAMA frame structure and channel parameters.
#[derive(Debug, Clone, Copy)]
pub struct DamaParams {
    /// Channel bit rate (bit/s).
    pub bit_rate_bps: f64,
    /// Reservation minislots per frame.
    pub minislots: usize,
    /// Data slots per frame.
    pub data_slots: usize,
    /// Payload bits per data slot.
    pub slot_payload_bits: u32,
    /// Reservation request size (bits).
    pub request_bits: u32,
    /// Guard + sync overhead per frame (s).
    pub frame_overhead_s: f64,
}

impl DamaParams {
    /// A DAMA overlay on the S-band ISL channel used by the CSMA/TDMA
    /// models (5 Mbit/s).
    pub fn s_band_isl() -> Self {
        Self {
            bit_rate_bps: 5.0e6,
            minislots: 16,
            data_slots: 8,
            slot_payload_bits: 12_000,
            request_bits: 96,
            frame_overhead_s: 200e-6,
        }
    }

    /// Frame duration (s): minislot phase + data phase + overhead.
    pub fn frame_duration_s(&self) -> f64 {
        let minis = self.minislots as f64 * self.request_bits as f64 / self.bit_rate_bps;
        let data = self.data_slots as f64 * self.slot_payload_bits as f64 / self.bit_rate_bps;
        minis + data + self.frame_overhead_s
    }

    /// Peak goodput (bit/s) if every data slot is used.
    pub fn peak_goodput_bps(&self) -> f64 {
        self.data_slots as f64 * self.slot_payload_bits as f64 / self.frame_duration_s()
    }

    /// Validate invariants.
    ///
    /// # Panics
    /// Panics on zero slots or non-positive rates.
    pub fn validate(&self) {
        assert!(self.bit_rate_bps > 0.0, "bit rate must be positive");
        assert!(self.minislots > 0, "need at least one minislot");
        assert!(self.data_slots > 0, "need at least one data slot");
        assert!(self.slot_payload_bits > 0 && self.request_bits > 0);
        assert!(self.frame_overhead_s >= 0.0);
    }
}

/// Simulate DAMA with `n_nodes`, each offered `per_node_load_bps` of
/// Poisson packet arrivals (packet = one data slot payload), for
/// `duration_s`. Deterministic under `(params, n_nodes, load, seed)`.
///
/// # Panics
/// Panics on invalid parameters, zero nodes, or non-positive duration.
pub fn simulate_dama(
    params: &DamaParams,
    n_nodes: usize,
    per_node_load_bps: f64,
    duration_s: f64,
    seed: u64,
) -> MacReport {
    params.validate();
    assert!(n_nodes > 0, "need at least one node");
    assert!(duration_s > 0.0, "duration must be positive");
    assert!(per_node_load_bps >= 0.0);

    let mut rng = SimRng::new(seed);
    let frame_s = params.frame_duration_s();
    let pkt_rate = per_node_load_bps / params.slot_payload_bits as f64; // pkts/s/node

    // Per-node FIFO of arrival timestamps; granted[] = packets whose
    // reservation succeeded, waiting for data slots.
    let mut backlog: Vec<std::collections::VecDeque<f64>> = vec![Default::default(); n_nodes];
    let mut reserved: Vec<usize> = vec![0; n_nodes]; // packets with grants
    let mut next_arrival: Vec<f64> = (0..n_nodes)
        .map(|_| {
            if pkt_rate > 0.0 {
                rng.exponential(pkt_rate)
            } else {
                f64::INFINITY
            }
        })
        .collect();

    let mut delivered: u64 = 0;
    let mut attempts: u64 = 0;
    let mut collisions: u64 = 0;
    let mut delay_sum = 0.0;
    let frames = (duration_s / frame_s).floor() as u64;

    for f in 0..frames {
        let frame_start = f as f64 * frame_s;
        let frame_end = frame_start + frame_s;
        // Arrivals up to the end of this frame.
        for (i, na) in next_arrival.iter_mut().enumerate() {
            while *na < frame_end {
                backlog[i].push_back(*na);
                *na += rng.exponential(pkt_rate);
            }
        }
        // Reservation phase: nodes with unreserved backlog contend once.
        let mut chosen: Vec<(usize, usize)> = Vec::new(); // (minislot, node)
        for (i, q) in backlog.iter().enumerate() {
            if q.len() > reserved[i] {
                chosen.push((rng.index(params.minislots), i));
                attempts += 1;
            }
        }
        chosen.sort_unstable();
        let mut k = 0;
        while k < chosen.len() {
            let slot = chosen[k].0;
            let mut j = k + 1;
            while j < chosen.len() && chosen[j].0 == slot {
                j += 1;
            }
            if j - k == 1 {
                // Sole requester in this minislot: grant its whole
                // current backlog (piggybacked queue length).
                let node = chosen[k].1;
                reserved[node] = backlog[node].len();
            } else {
                collisions += (j - k) as u64;
            }
            k = j;
        }
        // Data phase: serve granted packets round-robin, up to data_slots.
        let mut served = 0;
        let mut progress = true;
        while served < params.data_slots && progress {
            progress = false;
            for i in 0..n_nodes {
                if served >= params.data_slots {
                    break;
                }
                if reserved[i] > 0 {
                    let arrival = backlog[i].pop_front().expect("reserved implies queued");
                    reserved[i] -= 1;
                    delivered += 1;
                    served += 1;
                    // Service completes at the end of the data phase.
                    delay_sum += frame_end - arrival;
                    progress = true;
                }
            }
        }
    }

    let sim_time = frames as f64 * frame_s;
    let goodput = delivered as f64 * params.slot_payload_bits as f64 / sim_time.max(1e-12);
    MacReport {
        goodput_bps: goodput,
        channel_efficiency: goodput / params.bit_rate_bps,
        mean_access_delay_s: if delivered > 0 {
            delay_sum / delivered as f64
        } else {
            f64::INFINITY
        },
        collision_rate: if attempts > 0 {
            collisions as f64 / attempts as f64
        } else {
            0.0
        },
        delivered,
        dropped: 0, // infinite buffers; overload shows up as delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csma::simulate_csma_ca;
    use crate::params::MacParams;

    fn p() -> DamaParams {
        DamaParams::s_band_isl()
    }

    #[test]
    fn frame_accounting_is_consistent() {
        let d = p();
        assert!(d.frame_duration_s() > 0.0);
        assert!(d.peak_goodput_bps() < d.bit_rate_bps);
        // Data dominates the frame: peak goodput above 80% of line rate.
        assert!(
            d.peak_goodput_bps() / d.bit_rate_bps > 0.8,
            "peak efficiency {}",
            d.peak_goodput_bps() / d.bit_rate_bps
        );
    }

    #[test]
    fn light_load_is_delivered_within_a_couple_frames() {
        let d = p();
        let r = simulate_dama(&d, 4, 50_000.0, 30.0, 1);
        assert!(r.delivered > 0);
        assert!(
            r.mean_access_delay_s < 3.0 * d.frame_duration_s(),
            "delay {} vs frame {}",
            r.mean_access_delay_s,
            d.frame_duration_s()
        );
    }

    #[test]
    fn offered_load_is_carried_when_feasible() {
        let d = p();
        // 8 nodes x 300 kbit/s = 2.4 Mbit/s, well under peak.
        let r = simulate_dama(&d, 8, 300_000.0, 60.0, 2);
        let carried = r.goodput_bps;
        assert!(
            (carried - 2.4e6).abs() / 2.4e6 < 0.1,
            "carried {carried} vs offered 2.4e6"
        );
    }

    #[test]
    fn saturation_approaches_peak_goodput() {
        let d = p();
        let r = simulate_dama(&d, 16, 1.0e6, 60.0, 3); // 16 Mbit/s offered
        assert!(
            r.goodput_bps > 0.85 * d.peak_goodput_bps(),
            "saturated goodput {} vs peak {}",
            r.goodput_bps,
            d.peak_goodput_bps()
        );
    }

    #[test]
    fn dama_beats_csma_under_saturation() {
        // The future-work claim: reservation MAC sustains efficiency
        // where CSMA/CA collapses.
        let d = p();
        let dama = simulate_dama(&d, 32, 1.0e6, 60.0, 4);
        let csma = simulate_csma_ca(&MacParams::s_band_isl(), 32, 30.0, 4);
        assert!(
            dama.channel_efficiency > 2.0 * csma.channel_efficiency,
            "DAMA {} vs CSMA {}",
            dama.channel_efficiency,
            csma.channel_efficiency
        );
    }

    #[test]
    fn data_phase_never_collides() {
        let d = p();
        let r = simulate_dama(&d, 32, 1.0e6, 20.0, 5);
        // Collisions happen only among reservation requests; the report's
        // collision rate is request-phase only and delivery continues.
        assert!(r.collision_rate < 1.0);
        assert!(r.delivered > 0);
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let d = p();
        let a = simulate_dama(&d, 8, 2e5, 20.0, 9);
        let b = simulate_dama(&d, 8, 2e5, 20.0, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_load_idles() {
        let d = p();
        let r = simulate_dama(&d, 8, 0.0, 10.0, 1);
        assert_eq!(r.delivered, 0);
        assert_eq!(r.collision_rate, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        simulate_dama(&p(), 0, 1.0, 1.0, 0);
    }
}
