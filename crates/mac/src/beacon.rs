//! Beacon scheduling.
//!
//! §2.2: "all OpenSpace satellites advertise their presence via
//! standardized periodic beacons that include orbital information". This
//! module answers the two engineering questions beacons raise: how much
//! airtime do they cost, and how long does a newcomer wait to discover a
//! neighbor?

/// A periodic beacon schedule on a broadcast RF channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeaconSchedule {
    /// Beacon repetition period (s).
    pub period_s: f64,
    /// Beacon frame length (bits) — orbital elements + capability TLVs.
    pub beacon_bits: u32,
    /// Broadcast channel bit rate (bit/s).
    pub bit_rate_bps: f64,
}

impl BeaconSchedule {
    /// OpenSpace default: a 1 s beacon period on the S-band common
    /// channel, with a ~1 kbit beacon (the wire format in
    /// `openspace-protocol` is ~100 bytes).
    pub fn openspace_default() -> Self {
        Self {
            period_s: 1.0,
            beacon_bits: 1_024,
            bit_rate_bps: 5.0e6,
        }
    }

    /// Airtime of one beacon (s).
    pub fn beacon_airtime_s(&self) -> f64 {
        assert!(self.bit_rate_bps > 0.0, "bit rate must be positive");
        self.beacon_bits as f64 / self.bit_rate_bps
    }

    /// Fraction of channel time spent on beacons from `n_neighbors`
    /// satellites sharing the broadcast channel.
    pub fn overhead_fraction(&self, n_neighbors: usize) -> f64 {
        assert!(self.period_s > 0.0, "period must be positive");
        (self.beacon_airtime_s() * n_neighbors as f64 / self.period_s).min(1.0)
    }

    /// Expected discovery latency (s) for a newcomer that starts listening
    /// at a uniformly random phase: half the period plus the airtime.
    pub fn mean_discovery_latency_s(&self) -> f64 {
        self.period_s / 2.0 + self.beacon_airtime_s()
    }

    /// Worst-case discovery latency (s).
    pub fn max_discovery_latency_s(&self) -> f64 {
        self.period_s + self.beacon_airtime_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_overhead_is_negligible() {
        let b = BeaconSchedule::openspace_default();
        // Even with 50 neighbors in range the beacon tax stays ~1%.
        assert!(b.overhead_fraction(50) < 0.02);
    }

    #[test]
    fn overhead_scales_linearly_then_clamps() {
        let b = BeaconSchedule::openspace_default();
        let o10 = b.overhead_fraction(10);
        let o20 = b.overhead_fraction(20);
        assert!((o20 / o10 - 2.0).abs() < 1e-9);
        assert_eq!(b.overhead_fraction(10_000_000), 1.0);
    }

    #[test]
    fn discovery_latency_bounds() {
        let b = BeaconSchedule::openspace_default();
        assert!(b.mean_discovery_latency_s() > b.period_s / 2.0);
        assert!(b.mean_discovery_latency_s() < b.max_discovery_latency_s());
    }

    #[test]
    fn faster_beacons_are_found_faster() {
        let slow = BeaconSchedule {
            period_s: 10.0,
            ..BeaconSchedule::openspace_default()
        };
        let fast = BeaconSchedule::openspace_default();
        assert!(fast.mean_discovery_latency_s() < slow.mean_discovery_latency_s());
    }
}
