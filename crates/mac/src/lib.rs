//! # openspace-mac
//!
//! Media-access-control models for OpenSpace.
//!
//! §2.1 of the paper makes two MAC claims this crate quantifies:
//!
//! 1. **CSMA/CA is flexible but overhead-heavy** for inter-satellite
//!    links — Inter-Frame Spacing and backoff windows cost goodput and
//!    latency, and LEO propagation delays magnify the cost.
//!    ([`csma`], compared against [`tdma`] in experiment E5.)
//! 2. **OFDM(A) works well for satellite-to-ground** spectrum sharing.
//!    ([`ofdma`] models the downlink resource grid and two allocation
//!    policies.)
//!
//! [`dama`] implements the reservation-based MAC the paper defers to
//! future work ("MAC methods more suitable for real-time
//! communications"): contention confined to minislot requests, data
//! slots collision-free. [`beacon`] covers the standardized presence
//! beacons of §2.2, and [`params`] holds the shared channel/timing
//! parameter set.
//!
//! [`analytic`] carries Bianchi's closed-form saturation model as an
//! independent check on the CSMA/CA simulation.
//!
//! All simulation here is deterministic given a seed.
//!
//! ## Example
//!
//! ```
//! use openspace_mac::prelude::*;
//!
//! let params = MacParams::s_band_isl();
//! let csma = simulate_csma_ca(&params, 16, 5.0, 42);
//! let tdma = evaluate_tdma(&params, &TdmaConfig::for_leo(&params, 16));
//! // The paper's §2.1 claim: contention costs efficiency at scale.
//! assert!(tdma.channel_efficiency > csma.channel_efficiency);
//! ```

pub mod analytic;
pub mod beacon;
pub mod csma;
pub mod dama;
pub mod ofdma;
pub mod params;
pub mod tdma;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::analytic::{bianchi_saturation, BianchiPoint};
    pub use crate::beacon::BeaconSchedule;
    pub use crate::csma::{simulate_csma_ca, MacReport};
    pub use crate::dama::{simulate_dama, DamaParams};
    pub use crate::ofdma::{Allocation, OfdmaGrid, Policy, UserDemand};
    pub use crate::params::MacParams;
    pub use crate::tdma::{evaluate_tdma, TdmaConfig};
}
