//! TDMA (time-division multiple access).
//!
//! The scheduled alternative the paper implies when it "leaves the
//! development of MAC methods more suitable for real-time communications
//! to future work": no contention, no collisions, but a synchronization
//! cost (guard times) and a fixed access cadence (a node must wait for its
//! slot). Compared against CSMA/CA in experiment E5.

use crate::csma::MacReport;
use crate::params::MacParams;

/// TDMA frame configuration derived from [`MacParams`].
#[derive(Debug, Clone, Copy)]
pub struct TdmaConfig {
    /// Number of slots per frame (= number of nodes, one slot each).
    pub slots_per_frame: usize,
    /// Guard time between slots (s), covering clock skew + differential
    /// propagation. LEO ISLs need generous guards — this is TDMA's own
    /// overhead tax.
    pub guard_time_s: f64,
}

impl TdmaConfig {
    /// A guard sized for LEO: 10% of the propagation delay plus 10 µs of
    /// clock skew budget.
    pub fn for_leo(params: &MacParams, nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        Self {
            slots_per_frame: nodes,
            guard_time_s: params.propagation_delay_s * 0.1 + 10e-6,
        }
    }
}

/// Deterministic saturated-TDMA performance: every node owns one slot per
/// frame and always has a frame to send.
///
/// The "simulation" here is exact arithmetic — TDMA under saturation has
/// no randomness — but it returns the same [`MacReport`] shape as the
/// CSMA/CA simulator so the experiment harness can compare them directly.
pub fn evaluate_tdma(params: &MacParams, config: &TdmaConfig) -> MacReport {
    params.validate();
    assert!(config.slots_per_frame > 0, "need at least one slot");
    assert!(config.guard_time_s >= 0.0);

    // One slot: payload frame + guard. ACKs are piggybacked in TDMA
    // (reverse slots), so no explicit ACK airtime.
    let slot_s = params.frame_tx_time_s() + config.guard_time_s;
    let frame_s = slot_s * config.slots_per_frame as f64;

    // Each frame of airtime delivers one payload per node.
    let goodput = params.payload_bits as f64 / slot_s;
    // Mean head-of-line wait for a saturated node: half a frame (uniform
    // phase) plus its own slot.
    let mean_delay = frame_s / 2.0 + slot_s + params.propagation_delay_s;

    MacReport {
        goodput_bps: goodput,
        channel_efficiency: goodput / params.bit_rate_bps,
        mean_access_delay_s: mean_delay,
        collision_rate: 0.0,
        delivered: 0, // not a timed run; rates are exact
        dropped: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csma::simulate_csma_ca;

    #[test]
    fn tdma_never_collides() {
        let p = MacParams::s_band_isl();
        let r = evaluate_tdma(&p, &TdmaConfig::for_leo(&p, 16));
        assert_eq!(r.collision_rate, 0.0);
    }

    #[test]
    fn tdma_efficiency_is_high_and_contention_independent() {
        let p = MacParams::s_band_isl();
        let e4 = evaluate_tdma(&p, &TdmaConfig::for_leo(&p, 4)).channel_efficiency;
        let e64 = evaluate_tdma(&p, &TdmaConfig::for_leo(&p, 64)).channel_efficiency;
        assert!((e4 - e64).abs() < 1e-12, "efficiency independent of N");
        assert!(e4 > 0.8, "TDMA efficiency {e4}");
    }

    #[test]
    fn tdma_beats_csma_at_high_contention() {
        // The E5 headline: scheduled access wins once contention grows.
        let p = MacParams::s_band_isl();
        let tdma = evaluate_tdma(&p, &TdmaConfig::for_leo(&p, 32));
        let csma = simulate_csma_ca(&p, 32, 30.0, 5);
        assert!(
            tdma.channel_efficiency > csma.channel_efficiency,
            "TDMA {} vs CSMA {}",
            tdma.channel_efficiency,
            csma.channel_efficiency
        );
    }

    #[test]
    fn tdma_delay_grows_linearly_with_nodes() {
        // Delay = frame/2 + slot + propagation: the frame term scales 4x
        // between 8 and 32 nodes, the slot+propagation floor does not, so
        // the overall ratio lands a bit under 4.
        let p = MacParams::s_band_isl();
        let d8 = evaluate_tdma(&p, &TdmaConfig::for_leo(&p, 8)).mean_access_delay_s;
        let d32 = evaluate_tdma(&p, &TdmaConfig::for_leo(&p, 32)).mean_access_delay_s;
        let ratio = d32 / d8;
        assert!((2.5..4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn guard_time_costs_efficiency() {
        let p = MacParams::s_band_isl();
        let tight = TdmaConfig {
            slots_per_frame: 8,
            guard_time_s: 0.0,
        };
        let loose = TdmaConfig {
            slots_per_frame: 8,
            guard_time_s: 1e-3,
        };
        assert!(
            evaluate_tdma(&p, &tight).channel_efficiency
                > evaluate_tdma(&p, &loose).channel_efficiency
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        TdmaConfig::for_leo(&MacParams::s_band_isl(), 0);
    }
}
