//! OFDMA downlink scheduler for satellite-to-user links.
//!
//! §2.1: "existing satellite providers have employed OFDM in
//! satellite-to-ground links, and this choice has shown to work well in
//! efficiently utilizing the spectrum while minimizing interference". We
//! model the resource grid of an OFDM downlink (Starlink-like: a fixed
//! number of subchannels per frame) and three allocation policies:
//! round-robin, demand-proportional, and water-filling.

/// A user's instantaneous downlink demand and channel quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UserDemand {
    /// Stable user identifier.
    pub user_id: u64,
    /// Requested rate (bit/s).
    pub demand_bps: f64,
    /// Spectral efficiency this user's SNR supports (bit/s/Hz).
    pub spectral_efficiency: f64,
}

/// One user's share of the grid after scheduling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Allocation {
    /// Stable user identifier.
    pub user_id: u64,
    /// Subchannels granted.
    pub subchannels: u32,
    /// Rate achieved (bit/s), `subchannels × subchannel_bw × SE`,
    /// capped at the user's demand.
    pub rate_bps: f64,
}

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Equal subchannels to every active user (spectrum fairness).
    RoundRobin,
    /// Weight shares by demand (demand-proportional fairness).
    ProportionalDemand,
    /// Water-filling: satisfy demands smallest-first, redistributing the
    /// spectrum a satisfied user no longer needs — maximizes the number
    /// of fully served users.
    WaterFilling,
}

/// An OFDMA resource grid for one beam.
#[derive(Debug, Clone, Copy)]
pub struct OfdmaGrid {
    /// Total subchannels in the beam.
    pub subchannels: u32,
    /// Bandwidth of one subchannel (Hz).
    pub subchannel_bandwidth_hz: f64,
}

impl OfdmaGrid {
    /// A Ku-band user beam: 240 MHz split into 60 subchannels of 4 MHz —
    /// the Starlink-like grid from Humphreys et al. 2023.
    pub fn ku_beam() -> Self {
        Self {
            subchannels: 60,
            subchannel_bandwidth_hz: 4.0e6,
        }
    }

    /// Schedule the grid across `users` under `policy`.
    ///
    /// Under round-robin and proportional policies, spectrum granted past
    /// a user's demand is not redistributed (their contrast with
    /// water-filling is the point). Returns one allocation per user, in
    /// the input order; users beyond the subchannel count under
    /// round-robin receive zero this frame.
    pub fn schedule(&self, users: &[UserDemand], policy: Policy) -> Vec<Allocation> {
        assert!(self.subchannels > 0, "grid has no subchannels");
        if users.is_empty() {
            return Vec::new();
        }
        for u in users {
            assert!(u.demand_bps >= 0.0, "negative demand");
            assert!(u.spectral_efficiency > 0.0, "non-positive SE");
        }
        let shares: Vec<u32> = match policy {
            Policy::WaterFilling => {
                // Grant users in ascending order of the subchannels they
                // need; leftovers go to the largest unsatisfied demand.
                let need: Vec<u32> = users
                    .iter()
                    .map(|u| {
                        (u.demand_bps / (self.subchannel_bandwidth_hz * u.spectral_efficiency))
                            .ceil() as u32
                    })
                    .collect();
                let mut order: Vec<usize> = (0..users.len()).collect();
                order.sort_by_key(|&i| (need[i], i));
                let mut remaining = self.subchannels;
                let mut shares = vec![0u32; users.len()];
                for &i in &order {
                    let grant = need[i].min(remaining);
                    shares[i] = grant;
                    remaining -= grant;
                }
                // Spread leftovers round-robin over users with demand.
                let demanders: Vec<usize> = (0..users.len())
                    .filter(|&i| users[i].demand_bps > 0.0)
                    .collect();
                if !demanders.is_empty() {
                    let mut k = 0;
                    while remaining > 0 {
                        shares[demanders[k % demanders.len()]] += 1;
                        remaining -= 1;
                        k += 1;
                    }
                }
                shares
            }
            Policy::RoundRobin => {
                let n = users.len() as u32;
                let base = self.subchannels / n.max(1);
                let mut rem = self.subchannels % n.max(1);
                users
                    .iter()
                    .map(|_| {
                        let extra = if rem > 0 {
                            rem -= 1;
                            1
                        } else {
                            0
                        };
                        base + extra
                    })
                    .collect()
            }
            Policy::ProportionalDemand => {
                let total: f64 = users.iter().map(|u| u.demand_bps).sum();
                if total <= 0.0 {
                    // No demand: nothing allocated.
                    return users
                        .iter()
                        .map(|u| Allocation {
                            user_id: u.user_id,
                            subchannels: 0,
                            rate_bps: 0.0,
                        })
                        .collect();
                }
                // Largest-remainder apportionment of subchannels by demand.
                let quotas: Vec<f64> = users
                    .iter()
                    .map(|u| self.subchannels as f64 * u.demand_bps / total)
                    .collect();
                let mut shares: Vec<u32> = quotas.iter().map(|q| q.floor() as u32).collect();
                let mut leftover = self.subchannels - shares.iter().sum::<u32>();
                let mut order: Vec<usize> = (0..users.len()).collect();
                order.sort_by(|&a, &b| {
                    let fa = quotas[a] - quotas[a].floor();
                    let fb = quotas[b] - quotas[b].floor();
                    fb.partial_cmp(&fa).unwrap().then(a.cmp(&b))
                });
                for &i in &order {
                    if leftover == 0 {
                        break;
                    }
                    shares[i] += 1;
                    leftover -= 1;
                }
                shares
            }
        };
        users
            .iter()
            .zip(shares)
            .map(|(u, s)| {
                let raw = s as f64 * self.subchannel_bandwidth_hz * u.spectral_efficiency;
                Allocation {
                    user_id: u.user_id,
                    subchannels: s,
                    rate_bps: raw.min(u.demand_bps),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user(id: u64, demand: f64) -> UserDemand {
        UserDemand {
            user_id: id,
            demand_bps: demand,
            spectral_efficiency: 3.0,
        }
    }

    #[test]
    fn round_robin_splits_evenly() {
        let grid = OfdmaGrid::ku_beam();
        let users: Vec<_> = (0..6).map(|i| user(i, 1e9)).collect();
        let alloc = grid.schedule(&users, Policy::RoundRobin);
        for a in &alloc {
            assert_eq!(a.subchannels, 10);
        }
    }

    #[test]
    fn round_robin_remainder_goes_to_first_users() {
        let grid = OfdmaGrid::ku_beam(); // 60 subchannels
        let users: Vec<_> = (0..7).map(|i| user(i, 1e9)).collect();
        let alloc = grid.schedule(&users, Policy::RoundRobin);
        let total: u32 = alloc.iter().map(|a| a.subchannels).sum();
        assert_eq!(total, 60);
        assert_eq!(alloc[0].subchannels, 9);
        assert_eq!(alloc[4].subchannels, 8);
    }

    #[test]
    fn proportional_tracks_demand() {
        let grid = OfdmaGrid::ku_beam();
        let users = vec![user(1, 100e6), user(2, 300e6)];
        let alloc = grid.schedule(&users, Policy::ProportionalDemand);
        assert_eq!(alloc[0].subchannels, 15);
        assert_eq!(alloc[1].subchannels, 45);
    }

    #[test]
    fn all_subchannels_used_when_demand_exists() {
        let grid = OfdmaGrid::ku_beam();
        let users = vec![user(1, 7e6), user(2, 11e6), user(3, 13e6)];
        let alloc = grid.schedule(&users, Policy::ProportionalDemand);
        assert_eq!(alloc.iter().map(|a| a.subchannels).sum::<u32>(), 60);
    }

    #[test]
    fn rate_capped_at_demand() {
        let grid = OfdmaGrid::ku_beam();
        let users = vec![user(1, 1e6)]; // tiny demand, whole grid available
        let alloc = grid.schedule(&users, Policy::RoundRobin);
        assert_eq!(alloc[0].rate_bps, 1e6);
    }

    #[test]
    fn zero_total_demand_allocates_nothing() {
        let grid = OfdmaGrid::ku_beam();
        let users = vec![user(1, 0.0), user(2, 0.0)];
        for a in grid.schedule(&users, Policy::ProportionalDemand) {
            assert_eq!(a.subchannels, 0);
            assert_eq!(a.rate_bps, 0.0);
        }
    }

    #[test]
    fn empty_user_set_is_fine() {
        assert!(OfdmaGrid::ku_beam()
            .schedule(&[], Policy::RoundRobin)
            .is_empty());
    }

    #[test]
    fn water_filling_satisfies_small_demands_first() {
        let grid = OfdmaGrid::ku_beam(); // 60 x 4 MHz, SE 3 -> 12 Mb/s per channel
        let users = vec![
            user(1, 24e6), // needs 2
            user(2, 2e9),  // needs 167 — cannot be fully served
            user(3, 36e6), // needs 3
        ];
        let alloc = grid.schedule(&users, Policy::WaterFilling);
        assert_eq!(alloc[0].rate_bps, 24e6, "small demand fully served");
        assert_eq!(alloc[2].rate_bps, 36e6, "second-smallest fully served");
        // The big user gets everything left (55 channels).
        assert_eq!(alloc[1].subchannels, 55);
    }

    #[test]
    fn water_filling_redistributes_leftovers() {
        let grid = OfdmaGrid::ku_beam();
        // Total need = 5 channels; 55 left over get spread anyway.
        let users = vec![user(1, 24e6), user(2, 36e6)];
        let alloc = grid.schedule(&users, Policy::WaterFilling);
        assert_eq!(
            alloc.iter().map(|a| a.subchannels).sum::<u32>(),
            60,
            "all spectrum assigned"
        );
        // Rates stay capped at demand.
        assert_eq!(alloc[0].rate_bps, 24e6);
        assert_eq!(alloc[1].rate_bps, 36e6);
    }

    #[test]
    fn water_filling_beats_round_robin_on_satisfied_users() {
        let grid = OfdmaGrid::ku_beam();
        // 6 small users and 2 elephants: round-robin gives everyone 7-8
        // channels (~90 Mb/s), starving nobody but satisfying the small
        // users with spectrum to spare; water-filling satisfies all six
        // small users exactly and splits the rest between the elephants.
        let mut users: Vec<UserDemand> = (0..6).map(|i| user(i, 12e6)).collect();
        users.push(user(10, 2e9));
        users.push(user(11, 2e9));
        let wf = grid.schedule(&users, Policy::WaterFilling);
        let satisfied = wf
            .iter()
            .zip(&users)
            .filter(|(a, u)| a.rate_bps >= u.demand_bps)
            .count();
        assert_eq!(satisfied, 6, "all small users fully served");
        let elephant_channels: u32 = wf[6].subchannels + wf[7].subchannels;
        assert_eq!(elephant_channels, 60 - 6);
    }

    #[test]
    fn better_channel_gets_more_rate_for_same_spectrum() {
        let grid = OfdmaGrid::ku_beam();
        let users = vec![
            UserDemand {
                user_id: 1,
                demand_bps: 1e9,
                spectral_efficiency: 2.0,
            },
            UserDemand {
                user_id: 2,
                demand_bps: 1e9,
                spectral_efficiency: 5.0,
            },
        ];
        let alloc = grid.schedule(&users, Policy::RoundRobin);
        assert_eq!(alloc[0].subchannels, alloc[1].subchannels);
        assert!(alloc[1].rate_bps > alloc[0].rate_bps * 2.0);
    }
}
