//! Shared MAC-layer parameter types.

/// Timing and framing parameters common to the contention-based schemes.
///
/// Defaults are 802.11-flavored values scaled to a satellite channel: the
/// paper's §2.1 observation is that CSMA/CA's Inter-Frame Spacing and
/// backoff windows cost real latency at orbital propagation delays, so
/// these constants are the knobs the E5 experiment sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacParams {
    /// Channel bit rate (bit/s).
    pub bit_rate_bps: f64,
    /// Slot time (s) — the backoff quantum.
    pub slot_time_s: f64,
    /// Short inter-frame space (s), before ACKs.
    pub sifs_s: f64,
    /// Distributed inter-frame space (s), before contention.
    pub difs_s: f64,
    /// Minimum contention window (slots), power of two minus one.
    pub cw_min: u32,
    /// Maximum contention window (slots).
    pub cw_max: u32,
    /// MAC payload size (bits).
    pub payload_bits: u32,
    /// Per-frame header overhead (bits).
    pub header_bits: u32,
    /// ACK frame size (bits).
    pub ack_bits: u32,
    /// Maximum retransmissions before a frame is dropped.
    pub max_retries: u32,
    /// One-way propagation delay (s). For ISLs this is milliseconds —
    /// orders of magnitude beyond the terrestrial channels CSMA/CA was
    /// designed for, which is exactly the paper's concern.
    pub propagation_delay_s: f64,
}

impl MacParams {
    /// An S-band ISL channel: 5 Mbit/s, 1000 km hop (3.3 ms propagation).
    pub fn s_band_isl() -> Self {
        Self {
            bit_rate_bps: 5.0e6,
            slot_time_s: 20e-6,
            sifs_s: 10e-6,
            difs_s: 50e-6,
            cw_min: 15,
            cw_max: 1023,
            payload_bits: 12_000,
            header_bits: 400,
            ack_bits: 112,
            max_retries: 7,
            propagation_delay_s: 3.3e-3,
        }
    }

    /// A satellite-to-user access channel at Ku band: 20 Mbit/s share,
    /// 780 km slant (2.6 ms).
    pub fn ku_user_link() -> Self {
        Self {
            bit_rate_bps: 20.0e6,
            slot_time_s: 9e-6,
            sifs_s: 16e-6,
            difs_s: 34e-6,
            cw_min: 15,
            cw_max: 1023,
            payload_bits: 12_000,
            header_bits: 400,
            ack_bits: 112,
            max_retries: 7,
            propagation_delay_s: 2.6e-3,
        }
    }

    /// Time (s) to serialize a payload frame.
    pub fn frame_tx_time_s(&self) -> f64 {
        (self.payload_bits + self.header_bits) as f64 / self.bit_rate_bps
    }

    /// Time (s) to serialize an ACK.
    pub fn ack_tx_time_s(&self) -> f64 {
        self.ack_bits as f64 / self.bit_rate_bps
    }

    /// Validate invariants; called by the simulators.
    ///
    /// # Panics
    /// Panics on non-positive rates/times or `cw_min > cw_max`.
    pub fn validate(&self) {
        assert!(self.bit_rate_bps > 0.0, "bit rate must be positive");
        assert!(self.slot_time_s > 0.0, "slot time must be positive");
        assert!(self.sifs_s >= 0.0 && self.difs_s >= 0.0);
        assert!(self.cw_min <= self.cw_max, "cw_min must not exceed cw_max");
        assert!(self.payload_bits > 0, "payload must be non-empty");
        assert!(self.propagation_delay_s >= 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        MacParams::s_band_isl().validate();
        MacParams::ku_user_link().validate();
    }

    #[test]
    fn frame_time_consistent() {
        let p = MacParams::s_band_isl();
        assert!((p.frame_tx_time_s() - 12_400.0 / 5.0e6).abs() < 1e-12);
        assert!(p.ack_tx_time_s() < p.frame_tx_time_s());
    }

    #[test]
    #[should_panic(expected = "cw_min")]
    fn inverted_cw_panics() {
        let mut p = MacParams::s_band_isl();
        p.cw_min = 2048;
        p.validate();
    }
}
