//! CSMA/CA (carrier-sense multiple access with collision avoidance).
//!
//! §2.1: "CSMA/CA allows for flexibility in synchronization between
//! satellites, however is prone to higher overhead and corresponding
//! larger latency due to Inter-Frame Spacing and backoff window
//! requirements". This module quantifies that claim with a saturated
//! slotted simulation (every node always has a frame queued — the
//! worst-case regime the overhead argument is about).
//!
//! The simulation follows the standard DCF model: binary exponential
//! backoff frozen while the channel is busy, success on a sole
//! transmission, collision otherwise.

use crate::params::MacParams;
use openspace_sim::rng::SimRng;

/// Aggregate results of a MAC simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacReport {
    /// Delivered payload bits per second of simulated time.
    pub goodput_bps: f64,
    /// Goodput divided by the raw channel bit rate — the efficiency the
    /// paper's overhead claim is about.
    pub channel_efficiency: f64,
    /// Mean delay (s) from a frame reaching the head of line to its
    /// successful ACK.
    pub mean_access_delay_s: f64,
    /// Fraction of transmission attempts that collided.
    pub collision_rate: f64,
    /// Frames delivered.
    pub delivered: u64,
    /// Frames dropped after `max_retries`.
    pub dropped: u64,
}

/// Simulate saturated CSMA/CA with `n_nodes` contenders for `duration_s`
/// of channel time. Deterministic for a given `(params, n_nodes, seed)`.
///
/// # Panics
/// Panics if `n_nodes == 0`, if `duration_s <= 0`, or on invalid params.
pub fn simulate_csma_ca(
    params: &MacParams,
    n_nodes: usize,
    duration_s: f64,
    seed: u64,
) -> MacReport {
    params.validate();
    assert!(n_nodes > 0, "need at least one node");
    assert!(duration_s > 0.0, "duration must be positive");

    let mut rng = SimRng::new(seed);
    // Per-node state: current contention window and backoff counter, retry
    // count, and the time the head-of-line frame became pending.
    let mut cw: Vec<u32> = vec![params.cw_min; n_nodes];
    let mut backoff: Vec<u32> = (0..n_nodes)
        .map(|_| rng.below(params.cw_min as u64 + 1) as u32)
        .collect();
    let mut retries: Vec<u32> = vec![0; n_nodes];
    let mut hol_since: Vec<f64> = vec![0.0; n_nodes];

    let mut t = 0.0f64;
    let mut delivered: u64 = 0;
    let mut dropped: u64 = 0;
    let mut attempts: u64 = 0;
    let mut collisions: u64 = 0;
    let mut delay_sum = 0.0f64;

    // Durations of the channel states. A successful exchange occupies
    // DIFS + frame + prop + SIFS + ACK + prop; a collision costs
    // DIFS + frame + prop (colliders time out waiting for the ACK).
    let t_success = params.difs_s
        + params.frame_tx_time_s()
        + params.propagation_delay_s
        + params.sifs_s
        + params.ack_tx_time_s()
        + params.propagation_delay_s;
    let t_collision = params.difs_s + params.frame_tx_time_s() + params.propagation_delay_s;

    while t < duration_s {
        // Who transmits in this virtual slot?
        let tx: Vec<usize> = (0..n_nodes).filter(|&i| backoff[i] == 0).collect();
        match tx.len() {
            0 => {
                // Idle slot: everyone decrements.
                for b in backoff.iter_mut() {
                    *b -= 1;
                }
                t += params.slot_time_s;
            }
            1 => {
                let i = tx[0];
                attempts += 1;
                t += t_success;
                delivered += 1;
                delay_sum += t - hol_since[i];
                // Next frame for node i.
                cw[i] = params.cw_min;
                retries[i] = 0;
                hol_since[i] = t;
                backoff[i] = rng.below(cw[i] as u64 + 1) as u32;
            }
            _ => {
                attempts += tx.len() as u64;
                collisions += tx.len() as u64;
                t += t_collision;
                for &i in &tx {
                    retries[i] += 1;
                    if retries[i] > params.max_retries {
                        dropped += 1;
                        retries[i] = 0;
                        cw[i] = params.cw_min;
                        hol_since[i] = t;
                    } else {
                        cw[i] = ((cw[i] + 1) * 2 - 1).min(params.cw_max);
                    }
                    backoff[i] = rng.below(cw[i] as u64 + 1) as u32;
                }
            }
        }
    }

    let goodput = delivered as f64 * params.payload_bits as f64 / t;
    MacReport {
        goodput_bps: goodput,
        channel_efficiency: goodput / params.bit_rate_bps,
        mean_access_delay_s: if delivered > 0 {
            delay_sum / delivered as f64
        } else {
            f64::INFINITY
        },
        collision_rate: if attempts > 0 {
            collisions as f64 / attempts as f64
        } else {
            0.0
        },
        delivered,
        dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(n: usize) -> MacReport {
        simulate_csma_ca(&MacParams::s_band_isl(), n, 30.0, 42)
    }

    #[test]
    fn single_node_has_no_collisions() {
        let r = run(1);
        assert_eq!(r.collision_rate, 0.0);
        assert_eq!(r.dropped, 0);
        assert!(r.delivered > 0);
    }

    #[test]
    fn single_node_efficiency_below_one_due_to_overhead() {
        // Even alone, DIFS/SIFS/ACK/backoff — and at orbital distances the
        // two propagation legs of each exchange — keep efficiency far
        // under 1: the paper's IFS-overhead point in its purest form.
        let r = run(1);
        assert!(
            (0.15..0.8).contains(&r.channel_efficiency),
            "efficiency {}",
            r.channel_efficiency
        );
    }

    #[test]
    fn collision_rate_grows_with_contention() {
        let r2 = run(2);
        let r16 = run(16);
        let r64 = run(64);
        assert!(r2.collision_rate < r16.collision_rate);
        assert!(r16.collision_rate < r64.collision_rate);
    }

    #[test]
    fn access_delay_grows_with_contention() {
        assert!(run(32).mean_access_delay_s > run(2).mean_access_delay_s * 3.0);
    }

    #[test]
    fn aggregate_goodput_degrades_at_high_contention() {
        // Total goodput at 64 saturated nodes is below the 2-node point:
        // collisions eat the channel.
        let r2 = run(2);
        let r64 = run(64);
        assert!(
            r64.goodput_bps < r2.goodput_bps,
            "64-node {} vs 2-node {}",
            r64.goodput_bps,
            r2.goodput_bps
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let a = simulate_csma_ca(&MacParams::s_band_isl(), 8, 10.0, 7);
        let b = simulate_csma_ca(&MacParams::s_band_isl(), 8, 10.0, 7);
        assert_eq!(a, b);
        let c = simulate_csma_ca(&MacParams::s_band_isl(), 8, 10.0, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn satellite_propagation_delay_hurts() {
        // Same channel with terrestrial-scale propagation: efficiency
        // should be strictly better, demonstrating why CSMA/CA is a poor
        // fit at orbital distances.
        let sat = MacParams::s_band_isl();
        let mut terrestrial = sat;
        terrestrial.propagation_delay_s = 1e-6;
        let r_sat = simulate_csma_ca(&sat, 8, 30.0, 3);
        let r_ter = simulate_csma_ca(&terrestrial, 8, 30.0, 3);
        assert!(
            r_ter.channel_efficiency > r_sat.channel_efficiency,
            "terrestrial {} vs satellite {}",
            r_ter.channel_efficiency,
            r_sat.channel_efficiency
        );
    }

    #[test]
    fn drops_occur_only_under_heavy_contention() {
        assert_eq!(run(1).dropped, 0);
        // 64 saturated nodes with cw_max 1023 will exceed 7 retries
        // occasionally.
        let heavy = simulate_csma_ca(&MacParams::s_band_isl(), 64, 60.0, 11);
        assert!(heavy.collision_rate > 0.1);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        simulate_csma_ca(&MacParams::s_band_isl(), 0, 1.0, 0);
    }
}
