//! Statistics collectors for experiment output.
//!
//! [`Summary`] accumulates scalar samples (Welford mean/variance plus a
//! reservoir-free exact quantile store) and prints the rows the
//! experiment harness reports. [`TimeWeighted`] integrates a step signal
//! over time (queue occupancy, state-of-charge).

/// Scalar sample accumulator with exact quantiles.
///
/// Stores all samples; experiments here produce at most a few million
/// scalars, which is cheap, and exactness beats sketch error in a
/// reproduction artefact.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
    mean: f64,
    m2: f64,
}

impl Summary {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a sample.
    ///
    /// # Panics
    /// Panics on NaN (a NaN sample is always an upstream bug).
    pub fn add(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN sample");
        let n = self.samples.len() as f64 + 1.0;
        let delta = x - self.mean;
        self.mean += delta / n;
        self.m2 += delta * (x - self.mean);
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were added.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean; 0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation; 0 with fewer than two samples.
    pub fn std_dev(&self) -> f64 {
        if self.samples.len() < 2 {
            0.0
        } else {
            (self.m2 / (self.samples.len() as f64 - 1.0)).sqrt()
        }
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Fold another summary into this one.
    ///
    /// Implemented by **replaying** `other`'s samples through
    /// [`add`](Summary::add) in insertion order, so
    /// `a.merge(&b)` is bit-identical to feeding `a` the concatenated
    /// sample stream — which makes the merge associative at the bit
    /// level and lets per-worker summaries fold into exactly what a
    /// serial run would have produced. (Combining Welford moments with
    /// Chan's formula would be O(1) but rounds differently than
    /// sequential accumulation, breaking that contract.)
    pub fn merge(&mut self, other: &Summary) {
        self.samples.reserve(other.samples.len());
        for &x in &other.samples {
            self.add(x);
        }
    }

    /// Exact quantile by linear interpolation, `q` in `[0, 1]`.
    ///
    /// The sample store sorts lazily: the first quantile query after an
    /// [`add`](Summary::add) sorts once (unstable, by `total_cmp` —
    /// NaN is already excluded at `add`) and the sorted state is cached,
    /// so `median()` + `p95()` + `p99()` on a settled summary cost one
    /// sort total, not three. The `&mut self` signature exists for this
    /// cache; results are unaffected.
    ///
    /// # Panics
    /// Panics if empty or `q` out of range.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!(!self.samples.is_empty(), "quantile of empty summary");
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if !self.sorted {
            self.samples.sort_unstable_by(f64::total_cmp);
            self.sorted = true;
        }
        let pos = q * (self.samples.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac
    }

    /// Median.
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// 95th percentile.
    pub fn p95(&mut self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&mut self) -> f64 {
        self.quantile(0.99)
    }
}

/// Time-weighted average of a piecewise-constant signal.
#[derive(Debug, Clone, Copy)]
pub struct TimeWeighted {
    last_t: f64,
    last_v: f64,
    integral: f64,
    start_t: f64,
}

impl TimeWeighted {
    /// Start integrating at `t0` with initial value `v0`.
    pub fn new(t0: f64, v0: f64) -> Self {
        Self {
            last_t: t0,
            last_v: v0,
            integral: 0.0,
            start_t: t0,
        }
    }

    /// Record that the signal changed to `v` at time `t`.
    ///
    /// # Panics
    /// Panics if `t` moves backwards.
    pub fn update(&mut self, t: f64, v: f64) {
        assert!(
            t >= self.last_t,
            "time moved backwards: {t} < {}",
            self.last_t
        );
        self.integral += self.last_v * (t - self.last_t);
        self.last_t = t;
        self.last_v = v;
    }

    /// Time-weighted mean over `[t0, t]`, closing the last segment at `t`.
    pub fn mean_until(&self, t: f64) -> f64 {
        assert!(t >= self.last_t, "horizon before last update");
        let total = t - self.start_t;
        if total <= 0.0 {
            return self.last_v;
        }
        (self.integral + self.last_v * (t - self.last_t)) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_known_set() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.138).abs() < 1e-3);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let mut s = Summary::new();
        for x in 1..=100 {
            s.add(x as f64);
        }
        assert!((s.median() - 50.5).abs() < 1e-9);
        assert!((s.quantile(0.0) - 1.0).abs() < 1e-12);
        assert!((s.quantile(1.0) - 100.0).abs() < 1e-12);
        assert!((s.p95() - 95.05).abs() < 0.01);
    }

    #[test]
    fn quantile_works_after_more_adds() {
        let mut s = Summary::new();
        s.add(1.0);
        s.add(3.0);
        assert_eq!(s.median(), 2.0);
        s.add(100.0);
        assert_eq!(s.median(), 3.0);
    }

    #[test]
    fn merge_matches_sequential_feed_bitwise() {
        let xs = [2.0, 4.0, 4.0, 5.0];
        let ys = [7.0, 9.0, 1.0];
        let mut serial = Summary::new();
        for x in xs.iter().chain(&ys) {
            serial.add(*x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        xs.iter().for_each(|&x| a.add(x));
        ys.iter().for_each(|&y| b.add(y));
        a.merge(&b);
        assert_eq!(a.count(), serial.count());
        assert_eq!(a.mean().to_bits(), serial.mean().to_bits());
        assert_eq!(a.std_dev().to_bits(), serial.std_dev().to_bits());
        assert_eq!(a.median().to_bits(), serial.median().to_bits());
    }

    #[test]
    fn merge_of_empty_is_identity() {
        let mut a = Summary::new();
        a.add(3.0);
        let before = (a.count(), a.mean().to_bits());
        a.merge(&Summary::new());
        assert_eq!((a.count(), a.mean().to_bits()), before);
        let mut empty = Summary::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean().to_bits(), a.mean().to_bits());
    }

    #[test]
    fn quantile_sort_is_cached_until_the_next_add() {
        let mut s = Summary::new();
        for x in [5.0, 1.0, 3.0] {
            s.add(x);
        }
        // Three queries, one sort: answers must agree and stay exact.
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 5.0);
        s.add(0.0); // invalidates the cache
        assert_eq!(s.median(), 2.0);
    }

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_sample_panics() {
        Summary::new().add(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_panics() {
        Summary::new().quantile(0.5);
    }

    #[test]
    fn time_weighted_step_signal() {
        let mut tw = TimeWeighted::new(0.0, 0.0);
        tw.update(5.0, 10.0); // 0 for 5 s
        tw.update(10.0, 0.0); // 10 for 5 s
                              // mean over [0,10] = (0*5 + 10*5)/10 = 5
        assert!((tw.mean_until(10.0) - 5.0).abs() < 1e-12);
        // extend: 0 for 10 more seconds → mean 2.5 over [0,20]
        assert!((tw.mean_until(20.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_constant_signal() {
        let tw = TimeWeighted::new(2.0, 7.0);
        assert!((tw.mean_until(12.0) - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn time_backwards_panics() {
        let mut tw = TimeWeighted::new(5.0, 0.0);
        tw.update(4.0, 1.0);
    }
}
