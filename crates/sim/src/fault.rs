//! Deterministic fault injection: compile a [`FaultPlan`] into a
//! time-ordered stream of [`TopologyEvent`]s.
//!
//! The paper's resilience argument (§2.2, §5) is that a federation of
//! many small operators degrades gracefully where a monolith fails hard.
//! Testing that claim requires *unhealthy* constellations: satellites
//! dying mid-run, inter-satellite links flapping, ground stations going
//! dark, whole operators withdrawing from the federation. A `FaultPlan`
//! describes those disturbances declaratively — scheduled outages plus
//! seeded-stochastic ones — and [`FaultPlan::compile`] lowers the plan
//! against a concrete [`FaultTopology`] into an ordered event sequence
//! the network simulator can consume.
//!
//! Determinism is a hard requirement: compilation of the same plan
//! against the same topology yields byte-identical events, and all
//! randomness flows from [`SimRng::substream`] keyed by the plan seed
//! and the spec's position in the plan, never from global state.

use crate::config::{require_index, require_non_negative, require_positive, ConfigError};
use crate::ids::{GsId, NodeId, OperatorId, SatId};
use crate::rng::SimRng;

/// What a single topology event does.
///
/// Node identifiers are *graph node* indices (satellites first, then
/// ground stations), so the consumer can apply them to a
/// `net::topology::Graph` without re-deriving offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TopologyEventKind {
    /// A node (satellite or ground station) fails: all incident links drop.
    NodeDown(NodeId),
    /// A previously failed node recovers with its original links.
    NodeUp(NodeId),
    /// The bidirectional link between two nodes drops.
    LinkDown(NodeId, NodeId),
    /// A previously dropped link recovers.
    LinkUp(NodeId, NodeId),
    /// An operator leaves the federation permanently. Emitted alongside
    /// `NodeDown` events for every node the operator owned; consumers
    /// that track membership (user migration, settlement) react to this
    /// marker, consumers that only track the graph may ignore it.
    OperatorWithdrawn(OperatorId),
}

/// One scheduled topology change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologyEvent {
    /// Simulation time at which the event takes effect (s).
    pub at_s: f64,
    /// Stable tie-break for events at the same instant: events are
    /// applied in ascending `seq`. Assigned by [`FaultPlan::compile`].
    pub seq: u64,
    /// The change itself.
    pub kind: TopologyEventKind,
}

/// The entity layout a plan is compiled against: how many satellites and
/// stations exist and who owns each. Build one by hand or via
/// `Federation::fault_topology`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTopology {
    n_sats: usize,
    n_stations: usize,
    sat_operators: Vec<OperatorId>,
    station_operators: Vec<OperatorId>,
}

impl FaultTopology {
    /// Describe a topology from per-entity operator ownership.
    pub fn new(sat_operators: Vec<OperatorId>, station_operators: Vec<OperatorId>) -> Self {
        Self {
            n_sats: sat_operators.len(),
            n_stations: station_operators.len(),
            sat_operators,
            station_operators,
        }
    }

    /// A topology where one operator owns everything (a monolith).
    pub fn homogeneous(n_sats: usize, n_stations: usize, operator: OperatorId) -> Self {
        Self::new(vec![operator; n_sats], vec![operator; n_stations])
    }

    /// Number of satellites.
    pub fn n_sats(&self) -> usize {
        self.n_sats
    }

    /// Number of ground stations.
    pub fn n_stations(&self) -> usize {
        self.n_stations
    }

    /// Total graph node count (satellites + stations).
    pub fn node_count(&self) -> usize {
        self.n_sats + self.n_stations
    }

    /// Graph node index of a satellite.
    pub fn sat_node(&self, sat: SatId) -> NodeId {
        NodeId(sat.0)
    }

    /// Graph node index of a ground station.
    pub fn station_node(&self, station: GsId) -> NodeId {
        NodeId(self.n_sats + station.0)
    }

    /// All graph nodes owned by `operator` (satellites first).
    pub fn nodes_of_operator(&self, operator: OperatorId) -> Vec<NodeId> {
        let sats = self
            .sat_operators
            .iter()
            .enumerate()
            .filter(|(_, op)| **op == operator)
            .map(|(i, _)| NodeId(i));
        let stations = self
            .station_operators
            .iter()
            .enumerate()
            .filter(|(_, op)| **op == operator)
            .map(|(i, _)| NodeId(self.n_sats + i));
        sats.chain(stations).collect()
    }
}

/// One fault specification inside a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// A satellite fails at `at_s`; recovers after `duration_s` if given,
    /// otherwise stays dead for the rest of the run.
    SatOutage {
        /// Which satellite fails.
        sat: SatId,
        /// Failure time (s).
        at_s: f64,
        /// Outage length (s); `None` means permanent.
        duration_s: Option<f64>,
    },
    /// A ground station goes dark at `at_s`, optionally recovering.
    StationOutage {
        /// Which station fails.
        station: GsId,
        /// Failure time (s).
        at_s: f64,
        /// Outage length (s); `None` means permanent.
        duration_s: Option<f64>,
    },
    /// A link flaps: starting at `first_down_s` it cycles
    /// `down_s` seconds dead, `up_s` seconds alive, `cycles` times.
    LinkFlap {
        /// One endpoint (graph node).
        a: NodeId,
        /// Other endpoint (graph node).
        b: NodeId,
        /// Start of the first down period (s).
        first_down_s: f64,
        /// Length of each down period (s).
        down_s: f64,
        /// Length of each up period between downs (s).
        up_s: f64,
        /// Number of down periods.
        cycles: u32,
    },
    /// An operator permanently leaves the federation at `at_s`; every
    /// node it owns goes down and never recovers.
    OperatorWithdrawal {
        /// The withdrawing operator.
        operator: OperatorId,
        /// Withdrawal time (s).
        at_s: f64,
    },
    /// Seeded-stochastic satellite outages: each satellite independently
    /// fails as a Poisson process at `rate_per_sat_hour`, staying down
    /// for an exponential time with mean `mean_outage_s`, within the
    /// given window.
    RandomSatOutages {
        /// Expected failures per satellite per hour.
        rate_per_sat_hour: f64,
        /// Mean outage duration (s).
        mean_outage_s: f64,
        /// Window start (s); failures begin no earlier.
        window_start_s: f64,
        /// Window end (s); no new failures start after this.
        window_end_s: f64,
    },
}

/// A declarative fault schedule, compiled against a topology into
/// [`TopologyEvent`]s. Construct via [`FaultPlan::builder`] (validated)
/// or [`FaultPlan::empty`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
    seed: u64,
}

impl FaultPlan {
    /// A plan with no faults: compiles to zero events for any topology,
    /// so a faulted run reproduces a healthy run bit-for-bit.
    pub fn empty() -> Self {
        Self {
            specs: Vec::new(),
            seed: 0,
        }
    }

    /// Start building a plan.
    pub fn builder() -> FaultPlanBuilder {
        FaultPlanBuilder::default()
    }

    /// The validated fault specs, in insertion order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Seed for the plan's stochastic specs.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Lower the plan against `topo` into a time-ordered event sequence.
    ///
    /// Events are sorted by time with a stable, content-based tie-break
    /// (so compilation is a pure function of plan + topology), then
    /// numbered with ascending `seq`. Stochastic specs draw from
    /// `SimRng::substream(plan_seed, spec_index)`, making each spec's
    /// randomness independent of the others and of spec reordering
    /// *after* it in the plan.
    ///
    /// Fails with [`ConfigError::IndexOutOfRange`] when a spec names a
    /// satellite, station, or node the topology doesn't have.
    pub fn compile(&self, topo: &FaultTopology) -> Result<Vec<TopologyEvent>, ConfigError> {
        let mut raw: Vec<(f64, TopologyEventKind)> = Vec::new();
        for (spec_idx, spec) in self.specs.iter().enumerate() {
            match spec {
                FaultSpec::SatOutage {
                    sat,
                    at_s,
                    duration_s,
                } => {
                    require_index("sat_outage.sat", sat.0, topo.n_sats)?;
                    let node = topo.sat_node(*sat);
                    raw.push((*at_s, TopologyEventKind::NodeDown(node)));
                    if let Some(d) = duration_s {
                        raw.push((*at_s + *d, TopologyEventKind::NodeUp(node)));
                    }
                }
                FaultSpec::StationOutage {
                    station,
                    at_s,
                    duration_s,
                } => {
                    require_index("station_outage.station", station.0, topo.n_stations)?;
                    let node = topo.station_node(*station);
                    raw.push((*at_s, TopologyEventKind::NodeDown(node)));
                    if let Some(d) = duration_s {
                        raw.push((*at_s + *d, TopologyEventKind::NodeUp(node)));
                    }
                }
                FaultSpec::LinkFlap {
                    a,
                    b,
                    first_down_s,
                    down_s,
                    up_s,
                    cycles,
                } => {
                    require_index("link_flap.a", a.0, topo.node_count())?;
                    require_index("link_flap.b", b.0, topo.node_count())?;
                    let period = down_s + up_s;
                    for k in 0..*cycles {
                        let t_down = first_down_s + k as f64 * period;
                        raw.push((t_down, TopologyEventKind::LinkDown(*a, *b)));
                        raw.push((t_down + down_s, TopologyEventKind::LinkUp(*a, *b)));
                    }
                }
                FaultSpec::OperatorWithdrawal { operator, at_s } => {
                    raw.push((*at_s, TopologyEventKind::OperatorWithdrawn(*operator)));
                    for node in topo.nodes_of_operator(*operator) {
                        raw.push((*at_s, TopologyEventKind::NodeDown(node)));
                    }
                }
                FaultSpec::RandomSatOutages {
                    rate_per_sat_hour,
                    mean_outage_s,
                    window_start_s,
                    window_end_s,
                } => {
                    let mut rng = SimRng::substream(self.seed, spec_idx as u64);
                    let rate_per_s = rate_per_sat_hour / 3600.0;
                    for sat in 0..topo.n_sats {
                        let node = NodeId(sat);
                        let mut t = window_start_s + rng.exponential(rate_per_s);
                        while t < *window_end_s {
                            let outage = rng.exponential(1.0 / mean_outage_s);
                            raw.push((t, TopologyEventKind::NodeDown(node)));
                            raw.push((t + outage, TopologyEventKind::NodeUp(node)));
                            t = t + outage + rng.exponential(rate_per_s);
                        }
                    }
                }
            }
        }
        // Content-based ordering: time first, then kind (Down before Up
        // at the same instant, markers first), so compilation output is
        // independent of floating-point tie accidents.
        raw.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        Ok(normalize(raw))
    }
}

/// Collapse overlapping faults on the same entity to the *union* of
/// their down intervals: a `Down` is emitted only when the entity
/// transitions up→down, an `Up` only when the last overlapping fault
/// clears. A permanent failure (a `Down` with no `Up`) therefore
/// suppresses every later event for that entity. Input must be sorted.
fn normalize(raw: Vec<(f64, TopologyEventKind)>) -> Vec<TopologyEvent> {
    use std::collections::HashMap;
    #[derive(PartialEq, Eq, Hash)]
    enum Entity {
        Node(NodeId),
        Link(NodeId, NodeId),
    }
    let link = |a: NodeId, b: NodeId| Entity::Link(a.min(b), a.max(b));
    let mut depth: HashMap<Entity, u32> = HashMap::new();
    let mut out = Vec::with_capacity(raw.len());
    for (at_s, kind) in raw {
        let entity = match kind {
            TopologyEventKind::NodeDown(n) | TopologyEventKind::NodeUp(n) => Entity::Node(n),
            TopologyEventKind::LinkDown(a, b) | TopologyEventKind::LinkUp(a, b) => link(a, b),
            TopologyEventKind::OperatorWithdrawn(_) => {
                out.push((at_s, kind)); // marker: always kept
                continue;
            }
        };
        let d = depth.entry(entity).or_insert(0);
        let keep = match kind {
            TopologyEventKind::NodeDown(_) | TopologyEventKind::LinkDown(_, _) => {
                *d += 1;
                *d == 1
            }
            _ => {
                let was = *d;
                *d = was.saturating_sub(1);
                was == 1
            }
        };
        if keep {
            out.push((at_s, kind));
        }
    }
    out.into_iter()
        .enumerate()
        .map(|(i, (at_s, kind))| TopologyEvent {
            at_s,
            seq: i as u64,
            kind,
        })
        .collect()
}

/// Validating builder for [`FaultPlan`].
///
/// Shape errors (negative times, zero rates, inverted windows) surface
/// at [`build`](FaultPlanBuilder::build); entity-range errors surface at
/// [`FaultPlan::compile`], which is when a topology is first known.
#[derive(Debug, Clone, Default)]
pub struct FaultPlanBuilder {
    specs: Vec<FaultSpec>,
    seed: u64,
}

impl FaultPlanBuilder {
    /// Seed for stochastic specs (defaults to 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Schedule a recoverable satellite outage.
    pub fn sat_outage(mut self, sat: impl Into<SatId>, at_s: f64, duration_s: f64) -> Self {
        self.specs.push(FaultSpec::SatOutage {
            sat: sat.into(),
            at_s,
            duration_s: Some(duration_s),
        });
        self
    }

    /// Schedule a permanent satellite failure.
    pub fn sat_failure(mut self, sat: impl Into<SatId>, at_s: f64) -> Self {
        self.specs.push(FaultSpec::SatOutage {
            sat: sat.into(),
            at_s,
            duration_s: None,
        });
        self
    }

    /// Schedule a recoverable ground-station outage.
    pub fn station_outage(mut self, station: impl Into<GsId>, at_s: f64, duration_s: f64) -> Self {
        self.specs.push(FaultSpec::StationOutage {
            station: station.into(),
            at_s,
            duration_s: Some(duration_s),
        });
        self
    }

    /// Schedule a permanent ground-station failure.
    pub fn station_failure(mut self, station: impl Into<GsId>, at_s: f64) -> Self {
        self.specs.push(FaultSpec::StationOutage {
            station: station.into(),
            at_s,
            duration_s: None,
        });
        self
    }

    /// Schedule a flapping link: `cycles` repetitions of `down_s` dead
    /// then `up_s` alive, starting at `first_down_s`.
    pub fn link_flap(
        mut self,
        a: impl Into<NodeId>,
        b: impl Into<NodeId>,
        first_down_s: f64,
        down_s: f64,
        up_s: f64,
        cycles: u32,
    ) -> Self {
        self.specs.push(FaultSpec::LinkFlap {
            a: a.into(),
            b: b.into(),
            first_down_s,
            down_s,
            up_s,
            cycles,
        });
        self
    }

    /// Schedule a permanent operator withdrawal.
    pub fn operator_withdrawal(mut self, operator: impl Into<OperatorId>, at_s: f64) -> Self {
        self.specs.push(FaultSpec::OperatorWithdrawal {
            operator: operator.into(),
            at_s,
        });
        self
    }

    /// Add seeded-stochastic satellite outages over a time window.
    pub fn random_sat_outages(
        mut self,
        rate_per_sat_hour: f64,
        mean_outage_s: f64,
        window_start_s: f64,
        window_end_s: f64,
    ) -> Self {
        self.specs.push(FaultSpec::RandomSatOutages {
            rate_per_sat_hour,
            mean_outage_s,
            window_start_s,
            window_end_s,
        });
        self
    }

    /// Validate every spec's shape and produce the plan.
    pub fn build(self) -> Result<FaultPlan, ConfigError> {
        for spec in &self.specs {
            match spec {
                FaultSpec::SatOutage {
                    at_s, duration_s, ..
                }
                | FaultSpec::StationOutage {
                    at_s, duration_s, ..
                } => {
                    require_non_negative("outage.at_s", *at_s)?;
                    if let Some(d) = duration_s {
                        require_positive("outage.duration_s", *d)?;
                    }
                }
                FaultSpec::LinkFlap {
                    first_down_s,
                    down_s,
                    up_s,
                    cycles,
                    ..
                } => {
                    require_non_negative("link_flap.first_down_s", *first_down_s)?;
                    require_positive("link_flap.down_s", *down_s)?;
                    require_positive("link_flap.up_s", *up_s)?;
                    if *cycles == 0 {
                        return Err(ConfigError::NonPositive {
                            field: "link_flap.cycles",
                            value: 0.0,
                        });
                    }
                }
                FaultSpec::OperatorWithdrawal { at_s, .. } => {
                    require_non_negative("operator_withdrawal.at_s", *at_s)?;
                }
                FaultSpec::RandomSatOutages {
                    rate_per_sat_hour,
                    mean_outage_s,
                    window_start_s,
                    window_end_s,
                } => {
                    require_positive("random_sat_outages.rate_per_sat_hour", *rate_per_sat_hour)?;
                    require_positive("random_sat_outages.mean_outage_s", *mean_outage_s)?;
                    require_non_negative("random_sat_outages.window_start_s", *window_start_s)?;
                    if window_end_s <= window_start_s {
                        return Err(ConfigError::InvertedInterval {
                            field: "random_sat_outages.window",
                            start: *window_start_s,
                            end: *window_end_s,
                        });
                    }
                }
            }
        }
        Ok(FaultPlan {
            specs: self.specs,
            seed: self.seed,
        })
    }
}

/// Mean time to repair (s) over the repairs completed in `events`:
/// the average down-to-up span per entity, counting only outages whose
/// recovery occurs in the sequence. Returns `None` when nothing was
/// repaired (e.g. only permanent failures).
pub fn mean_time_to_repair_s(events: &[TopologyEvent]) -> Option<f64> {
    use std::collections::HashMap;
    // An entity is down from its first Down until the matching Up;
    // nested Downs on the same entity (possible when plans overlap) are
    // idempotent, so only the earliest open Down counts.
    let mut down_since: HashMap<TopologyEventKind, f64> = HashMap::new();
    let mut total = 0.0;
    let mut n = 0u64;
    for ev in events {
        match ev.kind {
            TopologyEventKind::NodeDown(node) => {
                down_since
                    .entry(TopologyEventKind::NodeDown(node))
                    .or_insert(ev.at_s);
            }
            TopologyEventKind::NodeUp(node) => {
                if let Some(t0) = down_since.remove(&TopologyEventKind::NodeDown(node)) {
                    total += ev.at_s - t0;
                    n += 1;
                }
            }
            TopologyEventKind::LinkDown(a, b) => {
                down_since
                    .entry(TopologyEventKind::LinkDown(a, b))
                    .or_insert(ev.at_s);
            }
            TopologyEventKind::LinkUp(a, b) => {
                if let Some(t0) = down_since.remove(&TopologyEventKind::LinkDown(a, b)) {
                    total += ev.at_s - t0;
                    n += 1;
                }
            }
            TopologyEventKind::OperatorWithdrawn(_) => {}
        }
    }
    if n == 0 {
        None
    } else {
        Some(total / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> FaultTopology {
        // 4 sats, 2 stations; operator 0 owns sats 0-1 + station 0,
        // operator 1 owns sats 2-3 + station 1.
        FaultTopology::new(
            vec![OperatorId(0), OperatorId(0), OperatorId(1), OperatorId(1)],
            vec![OperatorId(0), OperatorId(1)],
        )
    }

    #[test]
    fn empty_plan_compiles_to_no_events() {
        let plan = FaultPlan::empty();
        assert!(plan.is_empty());
        assert_eq!(plan.compile(&topo()).unwrap(), vec![]);
    }

    #[test]
    fn scheduled_outage_produces_down_then_up() {
        let plan = FaultPlan::builder()
            .sat_outage(1usize, 10.0, 5.0)
            .build()
            .unwrap();
        let events = plan.compile(&topo()).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, TopologyEventKind::NodeDown(NodeId(1)));
        assert_eq!(events[0].at_s, 10.0);
        assert_eq!(events[1].kind, TopologyEventKind::NodeUp(NodeId(1)));
        assert_eq!(events[1].at_s, 15.0);
    }

    #[test]
    fn station_nodes_are_offset_past_satellites() {
        let plan = FaultPlan::builder()
            .station_failure(1usize, 3.0)
            .build()
            .unwrap();
        let events = plan.compile(&topo()).unwrap();
        assert_eq!(
            events,
            vec![TopologyEvent {
                at_s: 3.0,
                seq: 0,
                kind: TopologyEventKind::NodeDown(NodeId(5)),
            }]
        );
    }

    #[test]
    fn link_flap_expands_to_cycles() {
        let plan = FaultPlan::builder()
            .link_flap(0usize, 2usize, 1.0, 2.0, 3.0, 3)
            .build()
            .unwrap();
        let events = plan.compile(&topo()).unwrap();
        assert_eq!(events.len(), 6);
        let downs: Vec<f64> = events
            .iter()
            .filter(|e| matches!(e.kind, TopologyEventKind::LinkDown(..)))
            .map(|e| e.at_s)
            .collect();
        assert_eq!(downs, vec![1.0, 6.0, 11.0]);
        let ups: Vec<f64> = events
            .iter()
            .filter(|e| matches!(e.kind, TopologyEventKind::LinkUp(..)))
            .map(|e| e.at_s)
            .collect();
        assert_eq!(ups, vec![3.0, 8.0, 13.0]);
    }

    #[test]
    fn withdrawal_downs_every_owned_node() {
        let plan = FaultPlan::builder()
            .operator_withdrawal(1u32, 7.0)
            .build()
            .unwrap();
        let events = plan.compile(&topo()).unwrap();
        // Marker + sats 2,3 + station node 5.
        assert_eq!(events.len(), 4);
        assert!(events
            .iter()
            .any(|e| e.kind == TopologyEventKind::OperatorWithdrawn(OperatorId(1))));
        for node in [2usize, 3, 5] {
            assert!(events
                .iter()
                .any(|e| e.kind == TopologyEventKind::NodeDown(NodeId(node))));
        }
        assert!(events.iter().all(|e| e.at_s == 7.0));
    }

    #[test]
    fn events_are_time_ordered_with_ascending_seq() {
        let plan = FaultPlan::builder()
            .sat_outage(3usize, 50.0, 10.0)
            .sat_outage(0usize, 5.0, 1.0)
            .link_flap(1usize, 2usize, 20.0, 5.0, 5.0, 2)
            .build()
            .unwrap();
        let events = plan.compile(&topo()).unwrap();
        for pair in events.windows(2) {
            assert!(pair[0].at_s <= pair[1].at_s);
            assert!(pair[0].seq < pair[1].seq);
        }
    }

    #[test]
    fn stochastic_compile_is_deterministic() {
        let build = |seed| {
            FaultPlan::builder()
                .seed(seed)
                .random_sat_outages(20.0, 60.0, 0.0, 3_600.0)
                .build()
                .unwrap()
        };
        let a = build(42).compile(&topo()).unwrap();
        let b = build(42).compile(&topo()).unwrap();
        assert_eq!(a, b);
        let c = build(43).compile(&topo()).unwrap();
        assert_ne!(a, c, "different seeds should give different schedules");
        assert!(
            !a.is_empty(),
            "20 failures/sat-hour over an hour: expect events"
        );
    }

    #[test]
    fn stochastic_downs_pair_with_ups() {
        let plan = FaultPlan::builder()
            .seed(7)
            .random_sat_outages(10.0, 120.0, 0.0, 7_200.0)
            .build()
            .unwrap();
        let events = plan.compile(&topo()).unwrap();
        let downs = events
            .iter()
            .filter(|e| matches!(e.kind, TopologyEventKind::NodeDown(_)))
            .count();
        let ups = events
            .iter()
            .filter(|e| matches!(e.kind, TopologyEventKind::NodeUp(_)))
            .count();
        assert_eq!(downs, ups, "every stochastic outage recovers");
    }

    #[test]
    fn builder_rejects_bad_shapes() {
        assert!(matches!(
            FaultPlan::builder().sat_outage(0usize, -1.0, 5.0).build(),
            Err(ConfigError::Negative { .. })
        ));
        assert!(matches!(
            FaultPlan::builder().sat_outage(0usize, 1.0, 0.0).build(),
            Err(ConfigError::NonPositive { .. })
        ));
        assert!(matches!(
            FaultPlan::builder()
                .link_flap(0usize, 1usize, 0.0, 1.0, 1.0, 0)
                .build(),
            Err(ConfigError::NonPositive {
                field: "link_flap.cycles",
                ..
            })
        ));
        assert!(matches!(
            FaultPlan::builder()
                .random_sat_outages(1.0, 60.0, 100.0, 50.0)
                .build(),
            Err(ConfigError::InvertedInterval { .. })
        ));
        assert!(matches!(
            FaultPlan::builder()
                .random_sat_outages(0.0, 60.0, 0.0, 100.0)
                .build(),
            Err(ConfigError::NonPositive { .. })
        ));
    }

    #[test]
    fn compile_rejects_out_of_range_entities() {
        let plan = FaultPlan::builder()
            .sat_outage(99usize, 0.0, 1.0)
            .build()
            .unwrap();
        assert!(matches!(
            plan.compile(&topo()),
            Err(ConfigError::IndexOutOfRange { len: 4, .. })
        ));
        let plan = FaultPlan::builder()
            .station_outage(9usize, 0.0, 1.0)
            .build()
            .unwrap();
        assert!(matches!(
            plan.compile(&topo()),
            Err(ConfigError::IndexOutOfRange { len: 2, .. })
        ));
    }

    #[test]
    fn mttr_averages_completed_repairs_only() {
        let plan = FaultPlan::builder()
            .sat_outage(0usize, 10.0, 4.0)
            .sat_outage(1usize, 20.0, 6.0)
            .sat_failure(2usize, 30.0)
            .build()
            .unwrap();
        let events = plan.compile(&topo()).unwrap();
        let mttr = mean_time_to_repair_s(&events).unwrap();
        assert!((mttr - 5.0).abs() < 1e-12, "mttr {mttr}");
        assert_eq!(mean_time_to_repair_s(&[]), None);
    }

    #[test]
    fn homogeneous_topology_owns_everything() {
        let t = FaultTopology::homogeneous(3, 2, OperatorId(9));
        assert_eq!(t.nodes_of_operator(OperatorId(9)).len(), 5);
        assert!(t.nodes_of_operator(OperatorId(1)).is_empty());
        assert_eq!(t.station_node(GsId(0)), NodeId(3));
    }
}
