//! # openspace-sim
//!
//! A deterministic discrete-event simulation engine for the OpenSpace
//! stack.
//!
//! * [`engine`] — time-ordered event queues with stable tie-breaking
//!   (same inputs + same seed ⇒ bit-identical runs): a reference binary
//!   heap and an order-identical calendar queue behind one
//!   [`engine::Scheduler`] trait.
//! * [`rng`] — seeded RNG with substreams and the distributions traffic
//!   models need.
//! * [`queue`] — drop-tail and two-class priority packet queues (the
//!   ground-station "prioritize native traffic" policy of §2.2).
//! * [`traffic`] — CBR / Poisson / on-off sources (§5's call for user
//!   traffic modelling).
//! * [`stats`] — summary statistics and time-weighted integrals for the
//!   experiment reports.
//! * [`exec`] — deterministic parallel map over independent tasks with
//!   per-task RNG substreams (parallel output ≡ serial output).
//! * [`ids`] — typed entity identifiers (`NodeId`, `SatId`, `GsId`,
//!   `OperatorId`) shared by every layer of the stack.
//! * [`config`] — the shared [`config::ConfigError`] all builders
//!   return from `build()`.
//! * [`fault`] — declarative fault plans (scheduled + seeded-stochastic
//!   outages, link flaps, operator withdrawals) compiled into
//!   time-ordered topology events (§2.2's graceful-degradation story).
//!
//! Intentionally not async: this is CPU-bound simulation, where an async
//! runtime adds overhead and nondeterminism for zero benefit. Parallelism
//! happens at the level of independent runs (one thread per seed).

//! ## Example
//!
//! ```
//! use openspace_sim::prelude::*;
//!
//! let mut q = EventQueue::new();
//! q.schedule(1.0, "ping");
//! q.schedule(0.5, "pong");
//! let mut order = Vec::new();
//! q.run_until(2.0, |_, _, e| order.push(e));
//! assert_eq!(order, vec!["pong", "ping"]);
//! ```

pub mod config;
pub mod engine;
pub mod exec;
pub mod fault;
pub mod ids;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod traffic;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::config::ConfigError;
    pub use crate::engine::{CalendarQueue, EngineKind, EventQueue, Scheduler, SimTime};
    pub use crate::exec::{default_threads, parallel_map_seeded};
    pub use crate::fault::{
        mean_time_to_repair_s, FaultPlan, FaultPlanBuilder, FaultSpec, FaultTopology,
        TopologyEvent, TopologyEventKind,
    };
    pub use crate::ids::{GsId, NodeId, OperatorId, SatId};
    pub use crate::queue::{DropTailQueue, Packet, PriorityQueue, QueueStats};
    pub use crate::rng::SimRng;
    pub use crate::stats::{Summary, TimeWeighted};
    pub use crate::traffic::{
        arrivals_until, Arrival, CbrSource, OnOffSource, PoissonSource, TrafficSource,
    };
}
