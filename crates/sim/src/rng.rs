//! Seeded randomness for simulations.
//!
//! A self-contained xoshiro256++ generator (seeded through splitmix64)
//! adding the distributions the traffic models need and a
//! stream-splitting constructor so independent subsystems (per-user
//! generators, per-link noise, per-sweep-task streams) get decorrelated
//! but reproducible streams from one master seed.
//!
//! No external dependencies: determinism across platforms and toolchain
//! versions is a correctness property of the scenario harness (parallel
//! sweeps must be bitwise-identical to serial ones), so the generator is
//! pinned here rather than inherited from a crate that may change its
//! stream between versions.

/// splitmix64 step — used for seeding and stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic simulation RNG (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seed a master stream.
    pub fn new(seed: u64) -> Self {
        let mut st = seed;
        Self {
            s: [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ],
        }
    }

    /// Derive an independent substream: same `(seed, stream)` always
    /// yields the same stream, and distinct `stream` values decorrelate.
    pub fn substream(seed: u64, stream: u64) -> Self {
        // splitmix-style mixing of the pair.
        let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self::new(z ^ (z >> 31))
    }

    /// Next raw 64-bit output (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`, unbiased (modulo rejection).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        let threshold = n.wrapping_neg() % n;
        loop {
            let r = self.next_u64();
            if r >= threshold {
                return r % n;
            }
        }
    }

    /// Exponential with the given rate (events/s) — inter-arrival times of
    /// a Poisson process.
    ///
    /// # Panics
    /// Panics if `rate <= 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive, got {rate}");
        // Inverse CDF; 1-u avoids ln(0).
        -(1.0 - self.uniform()).ln() / rate
    }

    /// Standard normal (Box–Muller; one value per call, the pair's twin is
    /// discarded for simplicity).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "std dev must be non-negative");
        let u1 = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        mean + std_dev * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Bernoulli with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.uniform() < p
    }

    /// Pick a uniformly random element index for a slice of length `len`.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 5);
    }

    #[test]
    fn substreams_reproducible_and_decorrelated() {
        let mut a1 = SimRng::substream(7, 0);
        let mut a2 = SimRng::substream(7, 0);
        let mut b = SimRng::substream(7, 1);
        assert_eq!(a1.uniform(), a2.uniform());
        let mut matches = 0;
        for _ in 0..100 {
            if a1.uniform() == b.uniform() {
                matches += 1;
            }
        }
        assert!(matches < 5);
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut rng = SimRng::new(3);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn uniform_range_bounds() {
        let mut rng = SimRng::new(4);
        for _ in 0..1000 {
            let v = rng.uniform_range(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&v));
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(5);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(6);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = SimRng::new(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut rng = SimRng::new(8);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn bad_exponential_rate_panics() {
        SimRng::new(0).exponential(0.0);
    }
}
