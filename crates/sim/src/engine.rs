//! The discrete-event engine: a time-ordered event queue with stable
//! tie-breaking, and a run loop.
//!
//! Determinism contract: two events at the same timestamp fire in the
//! order they were scheduled (a monotone sequence number breaks ties), so
//! a simulation's outcome is a pure function of its inputs and seed.
//!
//! Two interchangeable implementations sit behind the [`Scheduler`]
//! trait: the reference [`EventQueue`] (a binary heap, `O(log n)` per
//! operation) and the [`CalendarQueue`] (a bucketed timing wheel,
//! `O(1)` amortized). Both realize the *same total order* —
//! lexicographic `(time, seq)` — so any simulation driven through the
//! trait produces bit-identical results on either engine; the
//! `engine_equivalence` property suite pins this.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Simulation timestamp (seconds since simulation epoch).
pub type SimTime = f64;

/// Which event-queue implementation a simulation driver should use.
///
/// Both engines produce bit-identical simulations (same event order,
/// same accounting); they differ only in speed. [`EngineKind::Calendar`]
/// is the default — the heap remains available as the reference
/// implementation the property suites compare against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The reference binary-heap [`EventQueue`].
    Heap,
    /// The bucketed timing-wheel [`CalendarQueue`].
    #[default]
    Calendar,
}

impl EngineKind {
    /// Stable lowercase name (`"heap"` / `"calendar"`) for manifests
    /// and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Heap => "heap",
            EngineKind::Calendar => "calendar",
        }
    }

    /// Read the engine selection from `OPENSPACE_NETSIM_ENGINE`
    /// (`"heap"` or `"calendar"`); unset means the default.
    ///
    /// # Panics
    /// Panics on an unrecognized value — a typo in a CI matrix should
    /// fail loudly, not silently bench the wrong engine.
    pub fn from_env() -> Self {
        match std::env::var("OPENSPACE_NETSIM_ENGINE") {
            Err(_) => Self::default(),
            Ok(v) => match v.as_str() {
                "heap" => EngineKind::Heap,
                "calendar" => EngineKind::Calendar,
                other => {
                    panic!("OPENSPACE_NETSIM_ENGINE must be 'heap' or 'calendar', got {other:?}")
                }
            },
        }
    }
}

/// A deterministic discrete-event scheduler: the interface both engine
/// implementations share.
///
/// # Contract
///
/// * Events pop in strictly ascending lexicographic `(time, seq)`
///   order, where `seq` is the monotone schedule-call counter — ties in
///   time fire in schedule order.
/// * [`schedule`](Self::schedule) panics on non-finite times and on
///   causality violations (`at < now()`), with identical messages
///   across implementations.
/// * [`processed`](Self::processed) counts pops;
///   [`depth_high_water`](Self::depth_high_water) is the maximum
///   [`pending`](Self::pending) ever observed after a schedule call.
///
/// Any two implementations honoring this contract drive a simulation to
/// bit-identical results, because a discrete-event simulation's outcome
/// is a pure function of the event sequence it pops.
pub trait Scheduler<E> {
    /// Current simulation time: the timestamp of the last popped event
    /// (or the last run horizon, whichever is later).
    fn now(&self) -> SimTime;

    /// Events waiting.
    fn pending(&self) -> usize;

    /// Events processed so far.
    fn processed(&self) -> u64;

    /// Highest number of events ever waiting at once.
    fn depth_high_water(&self) -> usize;

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is NaN/infinite or earlier than the current time
    /// (causality violation — always a caller bug).
    fn schedule(&mut self, at: SimTime, event: E);

    /// Schedule `event` `delay` seconds from now.
    ///
    /// # Panics
    /// Panics on a negative `delay`.
    fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(delay >= 0.0, "delay must be non-negative, got {delay}");
        self.schedule(self.now() + delay, event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    fn pop(&mut self) -> Option<(SimTime, E)>;

    /// Timestamp of the next event without popping it.
    fn next_time(&self) -> Option<SimTime>;

    /// Advance the clock to `to` if it lags behind (used by
    /// [`run_until`](Self::run_until) so successive runs see monotone
    /// time even when the queue drains early).
    fn advance_clock(&mut self, to: SimTime);

    /// Times the engine rebuilt its internal structure (always 0 for
    /// the heap; bucket-array rebuilds for the calendar queue).
    fn bucket_resizes(&self) -> u64 {
        0
    }

    /// Run until the queue drains or the clock passes `until`, feeding
    /// each event to `handler` (which may schedule more via the `&mut
    /// Self` it receives). Events with timestamps beyond `until` remain
    /// queued.
    fn run_until<F>(&mut self, until: SimTime, mut handler: F)
    where
        F: FnMut(&mut Self, SimTime, E),
        Self: Sized,
    {
        while let Some(t) = self.next_time() {
            if t > until {
                break;
            }
            let (t, e) = self.pop().expect("peeked event exists");
            handler(self, t, e);
        }
        // Advance the clock to the horizon even if the queue drained early,
        // so successive run_until calls see monotone time.
        self.advance_clock(until);
    }
}

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest time (then the
        // lowest sequence number) pops first. Times are finite by
        // construction (schedule() rejects NaN/inf).
        other
            .time
            .partial_cmp(&self.time)
            .expect("simulation times are finite")
            .then(other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event scheduler.
///
/// `E` is the caller's event payload. The engine owns time; handlers run
/// strictly in timestamp order and may schedule further events (at or
/// after the current time).
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
    processed: u64,
    depth_high_water: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0.0,
            seq: 0,
            processed: 0,
            depth_high_water: 0,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events waiting.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Highest number of events ever waiting at once — the queue-depth
    /// high-water mark telemetry reports for capacity planning.
    pub fn depth_high_water(&self) -> usize {
        self.depth_high_water
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is NaN/infinite or earlier than the current time
    /// (causality violation — always a caller bug).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at.is_finite(), "event time must be finite, got {at}");
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        self.heap.push(Scheduled {
            time: at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
        self.depth_high_water = self.depth_high_water.max(self.heap.len());
    }

    /// Schedule `event` `delay` seconds from now.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(delay >= 0.0, "delay must be non-negative, got {delay}");
        self.schedule(self.now + delay, event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        self.processed += 1;
        Some((s.time, s.event))
    }

    /// Run until the queue drains or the clock passes `until`, feeding
    /// each event to `handler` (which may schedule more via the `&mut
    /// Self` it receives). Events with timestamps beyond `until` remain
    /// queued.
    pub fn run_until<F>(&mut self, until: SimTime, mut handler: F)
    where
        F: FnMut(&mut Self, SimTime, E),
    {
        while let Some(s) = self.heap.peek() {
            if s.time > until {
                break;
            }
            let (t, e) = self.pop().expect("peeked event exists");
            handler(self, t, e);
        }
        // Advance the clock to the horizon even if the queue drained early,
        // so successive run_until calls see monotone time.
        if self.now < until {
            self.now = until;
        }
    }
}

impl<E> Scheduler<E> for EventQueue<E> {
    fn now(&self) -> SimTime {
        EventQueue::now(self)
    }
    fn pending(&self) -> usize {
        EventQueue::pending(self)
    }
    fn processed(&self) -> u64 {
        EventQueue::processed(self)
    }
    fn depth_high_water(&self) -> usize {
        EventQueue::depth_high_water(self)
    }
    fn schedule(&mut self, at: SimTime, event: E) {
        EventQueue::schedule(self, at, event)
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        EventQueue::pop(self)
    }
    fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }
    fn advance_clock(&mut self, to: SimTime) {
        if self.now < to {
            self.now = to;
        }
    }
}

/// An entry in a [`CalendarQueue`] bucket.
struct Slot<E> {
    time: SimTime,
    seq: u64,
    /// The slot's virtual bucket under the width epoch it was inserted
    /// in — cached so the pop-side scan compares integers instead of
    /// redoing the float multiply. Rebuilds recompute it.
    vb: u64,
    event: E,
}

/// Virtual-bucket cap: `floor(t / width)` is clamped here so that
/// arbitrarily far-future timestamps (or a pathologically small bucket
/// width) collapse into one final overflow bucket instead of overflowing
/// `u64`. `2^53` keeps every uncapped quotient exactly representable.
const VB_CAP: u64 = 1 << 53;

/// Smallest bucket count the wheel shrinks back to.
const MIN_BUCKETS: usize = 8;

/// A calendar queue (Brown 1988): a bucketed timing wheel realizing the
/// exact `(time, seq)` total order of [`EventQueue`] with `O(1)`
/// amortized schedule/pop instead of the heap's `O(log n)`.
///
/// # Structure
///
/// Time is divided into *virtual buckets* of `width` seconds: an event
/// at time `t` lives in virtual bucket `vb(t) = ⌊t · (1/width)⌋`
/// (clamped at `VB_CAP = 2^53`), stored in physical bucket
/// `vb(t) mod nbuckets` — a bitmask, since bucket counts are always
/// powers of two.
/// Each physical bucket is kept sorted ascending by `(time, seq)`;
/// because the schedule-call counter `seq` is strictly monotone, a new
/// entry's sort position is found by binary search on time alone and is
/// usually the bucket tail. A cursor walks virtual buckets in order;
/// when a whole lap of the wheel finds nothing due (a sparse "empty
/// year"), a direct search over bucket fronts jumps the cursor to the
/// earliest pending entry. The wheel rebuilds (double/halve buckets,
/// re-derive `width` from the live time span) when occupancy drifts
/// outside `[nbuckets/2, 2·nbuckets]`, counted by
/// [`bucket_resizes`](Scheduler::bucket_resizes).
///
/// # Why the pop order is exactly the heap's
///
/// * `vb(t)` is one multiplication by the *same* precomputed
///   `1/width` at insert and at pop — bucket membership is a pure
///   function of `t` within a width epoch, never re-derived from
///   bucket boundaries, so no floating-point rounding can disagree
///   about where an entry lives. (Rebuilds change the function but
///   re-bucket every pending entry under the new one.)
/// * `⌊t · (1/width)⌋` is monotone non-decreasing in `t` (IEEE
///   multiplication by a finite positive constant is monotone, `floor`
///   preserves order, and the `VB_CAP` clamp is monotone), so if
///   `vb(a) < vb(b)` then `a < b`: popping virtual buckets in
///   ascending order never pops a later time first.
/// * Two entries with *equal* times always share a virtual bucket, so
///   a time tie is always resolved inside one sorted bucket — by `seq`,
///   the schedule order, exactly the heap's tie-break.
/// * The cursor invariant — no pending entry has `vb < cur_vb` — holds
///   because pops only advance the cursor past virtual buckets proven
///   empty (all entries of virtual bucket `v` live in physical bucket
///   `v mod nbuckets`, whose sorted front would expose them), and
///   scheduling behind the cursor (legal: `now` itself can sit mid-way
///   into a virtual bucket the cursor already entered) pulls the cursor
///   back to the new entry's virtual bucket.
///
/// Together: every pop returns the globally least `(time, seq)` entry —
/// the heap's order, bit for bit.
pub struct CalendarQueue<E> {
    buckets: Vec<VecDeque<Slot<E>>>,
    /// Seconds per virtual bucket (finite, > 0). Kept for reporting;
    /// bucket membership is computed with `inv_width`.
    width: f64,
    /// `1 / width`, finite and > 0 — bucket membership is one multiply.
    inv_width: f64,
    /// The virtual bucket the pop cursor is currently scanning.
    cur_vb: u64,
    len: usize,
    now: SimTime,
    seq: u64,
    processed: u64,
    depth_high_water: usize,
    resizes: u64,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        Self {
            buckets: (0..MIN_BUCKETS).map(|_| VecDeque::new()).collect(),
            width: 1.0,
            inv_width: 1.0,
            cur_vb: 0,
            len: 0,
            now: 0.0,
            seq: 0,
            processed: 0,
            depth_high_water: 0,
            resizes: 0,
        }
    }

    /// Virtual bucket of time `t` under the current width: one multiply
    /// by the precomputed reciprocal (IEEE multiplication by a positive
    /// constant is monotone, which is all the order proof needs — see
    /// the type docs).
    #[inline]
    fn vb_of(&self, t: SimTime) -> u64 {
        let q = t * self.inv_width;
        if q >= VB_CAP as f64 {
            VB_CAP
        } else {
            q as u64 // non-negative: truncation == floor
        }
    }

    /// Physical bucket of virtual bucket `vb`. The bucket count is
    /// always a power of two (`MIN_BUCKETS` doubled/halved), so the
    /// modulo is a mask.
    #[inline]
    fn pb_of(&self, vb: u64) -> usize {
        debug_assert!(self.buckets.len().is_power_of_two());
        (vb & (self.buckets.len() as u64 - 1)) as usize
    }

    /// Set `width` (and its reciprocal), falling back to 1.0 unless
    /// both are finite and positive.
    fn set_width(&mut self, width: f64) {
        let inv = width.recip();
        if width.is_finite() && width > 0.0 && inv.is_finite() && inv > 0.0 {
            self.width = width;
            self.inv_width = inv;
        } else {
            self.width = 1.0;
            self.inv_width = 1.0;
        }
    }

    /// Rebuild the wheel with `nbuckets` buckets and a width derived
    /// from the live entries' time span (aiming at ~1 entry per
    /// bucket). Preserves the total order: entries are re-inserted in
    /// globally sorted `(time, seq)` order, so each bucket stays sorted.
    fn rebuild(&mut self, nbuckets: usize) {
        let mut all: Vec<Slot<E>> = self.buckets.iter_mut().flat_map(|b| b.drain(..)).collect();
        all.sort_unstable_by(|a, b| {
            a.time
                .partial_cmp(&b.time)
                .expect("simulation times are finite")
                .then(a.seq.cmp(&b.seq))
        });
        // Keep the existing (drained) deques and their heap buffers —
        // a same-size re-width rebuild then allocates nothing.
        self.buckets.resize_with(nbuckets, VecDeque::new);
        if let (Some(first), Some(last)) = (all.first(), all.last()) {
            let span = last.time - first.time;
            self.set_width(span / all.len() as f64); // 1.0 if one instant
            self.cur_vb = self.vb_of(first.time);
        } else {
            self.set_width(1.0);
            self.cur_vb = self.vb_of(self.now);
        }
        for mut slot in all {
            slot.vb = self.vb_of(slot.time); // new width epoch
            let b = self.pb_of(slot.vb);
            self.buckets[b].push_back(slot); // sorted order preserved
        }
        self.resizes += 1;
    }

    /// Locate the next due entry without mutating anything: its
    /// physical bucket, its virtual bucket (where the cursor should
    /// land), and its time. One wheel lap from the cursor; if the whole
    /// lap is empty (a sparse "year"), one direct search over bucket
    /// fronts finds the global minimum — which is the front of its own
    /// physical bucket, since fronts are per-bucket minima.
    fn find_next(&self) -> Option<(usize, u64, SimTime)> {
        if self.len == 0 {
            return None;
        }
        let nb = self.buckets.len() as u64;
        for vb in self.cur_vb..self.cur_vb + nb {
            let b = self.pb_of(vb);
            if let Some(front) = self.buckets[b].front() {
                if front.vb == vb {
                    return Some((b, vb, front.time));
                }
            }
        }
        let (mut best_time, mut best_seq, mut best) = (f64::INFINITY, u64::MAX, (0usize, 0u64));
        for (b, bucket) in self.buckets.iter().enumerate() {
            if let Some(front) = bucket.front() {
                if front.time < best_time || (front.time == best_time && front.seq < best_seq) {
                    best_time = front.time;
                    best_seq = front.seq;
                    best = (b, front.vb);
                }
            }
        }
        debug_assert!(best_time.is_finite(), "len > 0 but no bucket front");
        Some((best.0, best.1, best_time))
    }

    /// Remove the (just located) front of bucket `b`, advancing the
    /// clock and the accounting, and shrinking the wheel if occupancy
    /// dropped far enough. The cursor must already sit on the entry's
    /// virtual bucket.
    #[inline]
    fn take_front(&mut self, b: usize) -> Slot<E> {
        let slot = self.buckets[b].pop_front().expect("caller located a front");
        self.len -= 1;
        self.now = slot.time;
        self.processed += 1;
        if self.buckets.len() > MIN_BUCKETS && self.len < self.buckets.len() / 2 {
            self.rebuild((self.buckets.len() / 2).max(MIN_BUCKETS));
        }
        slot
    }

    /// Pop the next entry if it is due at or before `until` — the same
    /// scan as [`find_next`](Self::find_next) but fused with the
    /// removal, so the hot path touches the winning bucket once. The
    /// cursor is parked at the next entry's virtual bucket whether or
    /// not it is due (everything below is proven empty either way).
    fn pop_due(&mut self, until: SimTime) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        // Fast path: the due entry sits right under the cursor — the
        // steady state once the cursor has caught up to the live
        // window, so it skips the lap-loop bookkeeping entirely.
        let b0 = self.pb_of(self.cur_vb);
        if let Some(front) = self.buckets[b0].front() {
            if front.vb == self.cur_vb {
                if front.time > until {
                    return None;
                }
                let slot = self.take_front(b0);
                return Some((slot.time, slot.event));
            }
        }
        let nb = self.buckets.len() as u64;
        for vb in self.cur_vb..self.cur_vb + nb {
            let b = self.pb_of(vb);
            if let Some(front) = self.buckets[b].front() {
                if front.vb == vb {
                    self.cur_vb = vb;
                    if front.time > until {
                        return None;
                    }
                    let slot = self.take_front(b);
                    return Some((slot.time, slot.event));
                }
            }
        }
        // A whole lap found nothing due: a sparse "year". Jump straight
        // to the global minimum, which is some bucket's front.
        let (b, vb, t) = self.find_next().expect("len > 0");
        self.cur_vb = vb;
        if t > until {
            return None;
        }
        let slot = self.take_front(b);
        Some((slot.time, slot.event))
    }
}

impl<E> Scheduler<E> for CalendarQueue<E> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn pending(&self) -> usize {
        self.len
    }

    fn processed(&self) -> u64 {
        self.processed
    }

    fn depth_high_water(&self) -> usize {
        self.depth_high_water
    }

    fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at.is_finite(), "event time must be finite, got {at}");
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        let vb = self.vb_of(at);
        let slot = Slot {
            time: at,
            seq: self.seq,
            vb,
            event,
        };
        self.seq += 1;
        // `now` can sit mid-way into a virtual bucket the cursor already
        // passed through; scheduling at such a time must pull the cursor
        // back or the entry would wait a full wheel lap.
        if vb < self.cur_vb {
            self.cur_vb = vb;
        }
        let b = self.pb_of(vb);
        let bucket = &mut self.buckets[b];
        // Sorted insert by (time, seq): `seq` is strictly monotone, so
        // the slot belongs after every entry with time <= at — almost
        // always the tail for real event flows (times mostly increase),
        // so check the tail before paying for a positional search. Off
        // the tail, short buckets walk back-to-front (inserts cluster
        // near the tail); long buckets binary-search.
        match bucket.back() {
            Some(back) if back.time > at => {
                let pos = if bucket.len() <= 32 {
                    let mut pos = bucket.len() - 1;
                    while pos > 0 && bucket[pos - 1].time > at {
                        pos -= 1;
                    }
                    pos
                } else {
                    bucket.partition_point(|s| s.time <= at)
                };
                bucket.insert(pos, slot);
            }
            _ => bucket.push_back(slot),
        }
        self.len += 1;
        self.depth_high_water = self.depth_high_water.max(self.len);
        if self.len > 2 * self.buckets.len() {
            self.rebuild(self.buckets.len() * 2);
        }
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_due(f64::INFINITY)
    }

    fn next_time(&self) -> Option<SimTime> {
        self.find_next().map(|(_, _, t)| t)
    }

    fn advance_clock(&mut self, to: SimTime) {
        if self.now < to {
            self.now = to;
        }
    }

    fn bucket_resizes(&self) -> u64 {
        self.resizes
    }

    /// Specialized run loop: the default implementation peeks
    /// ([`next_time`](Scheduler::next_time)) and then pops, scanning the
    /// wheel twice per event. One fused `pop_due` scan serves both
    /// decisions here — identical event sequence, half the scans.
    fn run_until<F>(&mut self, until: SimTime, mut handler: F)
    where
        F: FnMut(&mut Self, SimTime, E),
    {
        while let Some((t, ev)) = self.pop_due(until) {
            handler(self, t, ev);
        }
        self.advance_clock(until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let mut order = Vec::new();
        q.run_until(10.0, |_, _, e| order.push(e));
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(1.0, i);
        }
        let mut order = Vec::new();
        q.run_until(2.0, |_, _, e| order.push(e));
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn handler_can_schedule_more() {
        let mut q = EventQueue::new();
        q.schedule(0.0, 0u32);
        let mut fired = 0;
        q.run_until(10.0, |q, t, n| {
            fired += 1;
            if n < 5 {
                q.schedule(t + 1.0, n + 1);
            }
        });
        assert_eq!(fired, 6);
        assert_eq!(q.processed(), 6);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(1.0, ());
        q.schedule(5.0, ());
        let mut fired = 0;
        q.run_until(2.0, |_, _, _| fired += 1);
        assert_eq!(fired, 1);
        assert_eq!(q.pending(), 1);
        assert_eq!(q.now(), 2.0);
        // The remaining event still fires later.
        q.run_until(10.0, |_, _, _| fired += 1);
        assert_eq!(fired, 2);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(4.5, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 4.5);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(2.0, "first");
        q.pop();
        q.schedule_in(3.0, "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 5.0);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_time_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn depth_high_water_tracks_peak_not_current() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(i as f64, ());
        }
        assert_eq!(q.depth_high_water(), 5);
        q.run_until(10.0, |_, _, _| {});
        assert_eq!(q.pending(), 0);
        assert_eq!(q.depth_high_water(), 5, "high water survives the drain");
    }

    #[test]
    fn empty_run_advances_clock_to_horizon() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.run_until(7.0, |_, _, _| {});
        assert_eq!(q.now(), 7.0);
    }

    // --- CalendarQueue: the same contract, via the trait ---------------

    #[test]
    fn calendar_events_fire_in_time_order() {
        let mut q = CalendarQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let mut order = Vec::new();
        q.run_until(10.0, |_, _, e| order.push(e));
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn calendar_ties_break_by_insertion_order() {
        let mut q = CalendarQueue::new();
        for i in 0..100 {
            q.schedule(1.0, i);
        }
        let mut order = Vec::new();
        q.run_until(2.0, |_, _, e| order.push(e));
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn calendar_handler_can_schedule_more() {
        let mut q = CalendarQueue::new();
        q.schedule(0.0, 0u32);
        let mut fired = 0;
        q.run_until(10.0, |q: &mut CalendarQueue<u32>, t, n| {
            fired += 1;
            if n < 5 {
                q.schedule(t + 1.0, n + 1);
            }
        });
        assert_eq!(fired, 6);
        assert_eq!(q.processed(), 6);
    }

    #[test]
    fn calendar_run_until_respects_horizon() {
        let mut q = CalendarQueue::new();
        q.schedule(1.0, ());
        q.schedule(5.0, ());
        let mut fired = 0;
        q.run_until(2.0, |_, _, _| fired += 1);
        assert_eq!(fired, 1);
        assert_eq!(q.pending(), 1);
        assert_eq!(q.now(), 2.0);
        q.run_until(10.0, |_, _, _| fired += 1);
        assert_eq!(fired, 2);
    }

    #[test]
    fn calendar_sparse_far_future_pops_correctly() {
        // Events a "year" of empty buckets apart exercise the direct
        // search: one lap finds nothing, then the cursor jumps.
        let mut q = CalendarQueue::new();
        q.schedule(0.5, "near");
        q.schedule(86_400.0, "day");
        q.schedule(86_400.0 * 365.0, "year");
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "day");
        assert_eq!(q.pop().unwrap().1, "year");
        assert!(q.pop().is_none());
    }

    #[test]
    fn calendar_resizes_and_stays_ordered() {
        // Push enough to force grow rebuilds, drain to force shrinks,
        // and check full (time, seq) order throughout.
        let mut q = CalendarQueue::new();
        let mut want = Vec::new();
        for i in 0..1000u64 {
            // A decidedly non-uniform spread with many exact ties.
            let t = ((i * 7919) % 97) as f64 * 0.013;
            q.schedule(t, i);
            want.push((t, i));
        }
        assert!(q.bucket_resizes() > 0, "1000 inserts must grow the wheel");
        want.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t, i));
        }
        assert_eq!(got, want);
    }

    #[test]
    fn calendar_schedule_behind_cursor_is_found() {
        // Pop into a late virtual bucket, then schedule at `now` (which
        // can lie in an earlier virtual bucket than the cursor): the
        // new event must still pop next, not after a wheel lap.
        let mut q = CalendarQueue::new();
        q.schedule(100.0, "late");
        assert_eq!(q.pop().unwrap().1, "late");
        q.schedule(100.0, "after");
        q.schedule(100.0, "after2");
        assert_eq!(q.pop().unwrap().1, "after");
        assert_eq!(q.pop().unwrap().1, "after2");
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn calendar_scheduling_into_the_past_panics() {
        let mut q = CalendarQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn calendar_nan_time_panics() {
        let mut q: CalendarQueue<()> = CalendarQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn engine_kind_names_round_trip() {
        assert_eq!(EngineKind::Heap.name(), "heap");
        assert_eq!(EngineKind::Calendar.name(), "calendar");
        assert_eq!(EngineKind::default(), EngineKind::Calendar);
    }
}
