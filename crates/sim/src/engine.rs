//! The discrete-event engine: a time-ordered event queue with stable
//! tie-breaking, and a run loop.
//!
//! Determinism contract: two events at the same timestamp fire in the
//! order they were scheduled (a monotone sequence number breaks ties), so
//! a simulation's outcome is a pure function of its inputs and seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation timestamp (seconds since simulation epoch).
pub type SimTime = f64;

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest time (then the
        // lowest sequence number) pops first. Times are finite by
        // construction (schedule() rejects NaN/inf).
        other
            .time
            .partial_cmp(&self.time)
            .expect("simulation times are finite")
            .then(other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event scheduler.
///
/// `E` is the caller's event payload. The engine owns time; handlers run
/// strictly in timestamp order and may schedule further events (at or
/// after the current time).
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
    processed: u64,
    depth_high_water: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0.0,
            seq: 0,
            processed: 0,
            depth_high_water: 0,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events waiting.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Highest number of events ever waiting at once — the queue-depth
    /// high-water mark telemetry reports for capacity planning.
    pub fn depth_high_water(&self) -> usize {
        self.depth_high_water
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is NaN/infinite or earlier than the current time
    /// (causality violation — always a caller bug).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at.is_finite(), "event time must be finite, got {at}");
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        self.heap.push(Scheduled {
            time: at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
        self.depth_high_water = self.depth_high_water.max(self.heap.len());
    }

    /// Schedule `event` `delay` seconds from now.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(delay >= 0.0, "delay must be non-negative, got {delay}");
        self.schedule(self.now + delay, event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        self.processed += 1;
        Some((s.time, s.event))
    }

    /// Run until the queue drains or the clock passes `until`, feeding
    /// each event to `handler` (which may schedule more via the `&mut
    /// Self` it receives). Events with timestamps beyond `until` remain
    /// queued.
    pub fn run_until<F>(&mut self, until: SimTime, mut handler: F)
    where
        F: FnMut(&mut Self, SimTime, E),
    {
        while let Some(s) = self.heap.peek() {
            if s.time > until {
                break;
            }
            let (t, e) = self.pop().expect("peeked event exists");
            handler(self, t, e);
        }
        // Advance the clock to the horizon even if the queue drained early,
        // so successive run_until calls see monotone time.
        if self.now < until {
            self.now = until;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let mut order = Vec::new();
        q.run_until(10.0, |_, _, e| order.push(e));
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(1.0, i);
        }
        let mut order = Vec::new();
        q.run_until(2.0, |_, _, e| order.push(e));
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn handler_can_schedule_more() {
        let mut q = EventQueue::new();
        q.schedule(0.0, 0u32);
        let mut fired = 0;
        q.run_until(10.0, |q, t, n| {
            fired += 1;
            if n < 5 {
                q.schedule(t + 1.0, n + 1);
            }
        });
        assert_eq!(fired, 6);
        assert_eq!(q.processed(), 6);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(1.0, ());
        q.schedule(5.0, ());
        let mut fired = 0;
        q.run_until(2.0, |_, _, _| fired += 1);
        assert_eq!(fired, 1);
        assert_eq!(q.pending(), 1);
        assert_eq!(q.now(), 2.0);
        // The remaining event still fires later.
        q.run_until(10.0, |_, _, _| fired += 1);
        assert_eq!(fired, 2);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(4.5, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 4.5);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(2.0, "first");
        q.pop();
        q.schedule_in(3.0, "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 5.0);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_time_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn depth_high_water_tracks_peak_not_current() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(i as f64, ());
        }
        assert_eq!(q.depth_high_water(), 5);
        q.run_until(10.0, |_, _, _| {});
        assert_eq!(q.pending(), 0);
        assert_eq!(q.depth_high_water(), 5, "high water survives the drain");
    }

    #[test]
    fn empty_run_advances_clock_to_horizon() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.run_until(7.0, |_, _, _| {});
        assert_eq!(q.now(), 7.0);
    }
}
