//! Deterministic parallel execution for scenario sweeps.
//!
//! [`parallel_map_seeded`] fans a list of independent tasks out over a
//! `std::thread::scope` worker pool and collects the results **in task
//! order**, handing each task its own [`SimRng`] substream derived from
//! a root seed and the task's index. Because the RNG stream and the
//! collection order depend only on the task index — never on thread
//! identity, scheduling, or completion order — a parallel run is
//! bitwise-identical to a serial run of the same tasks, for any worker
//! count including 1.
//!
//! No work queue or channel machinery: workers claim task indices from a
//! shared atomic counter and write results into their task's dedicated
//! slot.

use crate::rng::SimRng;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count to use by default: the machine's available parallelism,
/// overridable (e.g. for CI or A/B timing) via the
/// `OPENSPACE_THREADS` environment variable. Always at least 1.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("OPENSPACE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Map `f` over `items` on `threads` workers, giving task `i` the RNG
/// substream `SimRng::substream(root_seed, i as u64)`, and return the
/// results in item order.
///
/// The output is a pure function of `(items, root_seed, f)` — the
/// worker count changes wall-clock time only, never a single bit of the
/// result. `f` must itself be deterministic given its arguments.
pub fn parallel_map_seeded<T, R, F>(items: &[T], threads: usize, root_seed: u64, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T, SimRng) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(item, SimRng::substream(root_seed, i as u64)))
            .collect();
    }

    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i], SimRng::substream(root_seed, i as u64));
                *slots[i].lock().expect("result slot lock") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map_seeded(&items, 8, 7, |&x, _| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_serial_bitwise() {
        let items: Vec<u64> = (0..40).collect();
        // Each task consumes its RNG stream; outputs must match exactly
        // across worker counts.
        let run = |threads| {
            parallel_map_seeded(&items, threads, 0xFEED, |&x, mut rng| {
                let mut acc = 0.0f64;
                for _ in 0..=(x % 7) {
                    acc += rng.uniform();
                }
                acc.to_bits()
            })
        };
        let serial = run(1);
        for threads in [2, 3, 8, 64] {
            assert_eq!(run(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u64> = parallel_map_seeded(&[] as &[u64], 4, 1, |&x, _| x);
        assert!(out.is_empty());
    }

    #[test]
    fn default_threads_is_at_least_one() {
        assert!(default_threads() >= 1);
    }
}
