//! Shared configuration-validation error type.
//!
//! Every builder in the stack (`FaultPlan`, `NetSimConfig`,
//! `ScenarioRunner`, …) validates at `build()` and reports problems
//! through this one enum, so callers handle a single error type no
//! matter which layer's configuration was malformed. Each variant names
//! the offending field so the message is actionable without a backtrace.

use std::fmt;

/// A configuration value that fails validation at `build()` time.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A value that must be strictly positive was zero or negative.
    NonPositive {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A value that must be non-negative was negative.
    Negative {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A value fell outside its allowed closed range.
    OutOfRange {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
        /// Smallest allowed value.
        min: f64,
        /// Largest allowed value.
        max: f64,
    },
    /// An index referred past the end of the entity array it indexes.
    IndexOutOfRange {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected index.
        index: usize,
        /// Number of valid entities (`index` must be `< len`).
        len: usize,
    },
    /// A collection that must be non-empty was empty.
    Empty {
        /// Name of the offending field.
        field: &'static str,
    },
    /// An interval whose end precedes its start.
    InvertedInterval {
        /// Name of the offending field.
        field: &'static str,
        /// Interval start.
        start: f64,
        /// Interval end.
        end: f64,
    },
    /// A value that must be finite was NaN or infinite.
    NotFinite {
        /// Name of the offending field.
        field: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NonPositive { field, value } => {
                write!(f, "{field} must be positive (got {value})")
            }
            ConfigError::Negative { field, value } => {
                write!(f, "{field} must be non-negative (got {value})")
            }
            ConfigError::OutOfRange {
                field,
                value,
                min,
                max,
            } => write!(f, "{field} must be in [{min}, {max}] (got {value})"),
            ConfigError::IndexOutOfRange { field, index, len } => {
                write!(f, "{field} index {index} out of range (len {len})")
            }
            ConfigError::Empty { field } => write!(f, "{field} must not be empty"),
            ConfigError::InvertedInterval { field, start, end } => {
                write!(f, "{field} interval inverted ({start} > {end})")
            }
            ConfigError::NotFinite { field } => write!(f, "{field} must be finite"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validate that `value` is finite and strictly positive.
pub fn require_positive(field: &'static str, value: f64) -> Result<(), ConfigError> {
    if !value.is_finite() {
        return Err(ConfigError::NotFinite { field });
    }
    if value <= 0.0 {
        return Err(ConfigError::NonPositive { field, value });
    }
    Ok(())
}

/// Validate that `value` is finite and non-negative.
pub fn require_non_negative(field: &'static str, value: f64) -> Result<(), ConfigError> {
    if !value.is_finite() {
        return Err(ConfigError::NotFinite { field });
    }
    if value < 0.0 {
        return Err(ConfigError::Negative { field, value });
    }
    Ok(())
}

/// Validate that `index < len`.
pub fn require_index(field: &'static str, index: usize, len: usize) -> Result<(), ConfigError> {
    if index >= len {
        return Err(ConfigError::IndexOutOfRange { field, index, len });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_accept_valid_values() {
        assert!(require_positive("x", 1.0).is_ok());
        assert!(require_non_negative("x", 0.0).is_ok());
        assert!(require_index("i", 2, 3).is_ok());
    }

    #[test]
    fn helpers_reject_invalid_values() {
        assert_eq!(
            require_positive("rate", 0.0),
            Err(ConfigError::NonPositive {
                field: "rate",
                value: 0.0
            })
        );
        assert_eq!(
            require_non_negative("t", -1.0),
            Err(ConfigError::Negative {
                field: "t",
                value: -1.0
            })
        );
        assert_eq!(
            require_positive("d", f64::NAN),
            Err(ConfigError::NotFinite { field: "d" })
        );
        assert_eq!(
            require_index("sat", 5, 5),
            Err(ConfigError::IndexOutOfRange {
                field: "sat",
                index: 5,
                len: 5
            })
        );
    }

    #[test]
    fn messages_name_the_field() {
        let e = ConfigError::NonPositive {
            field: "duration_s",
            value: -2.0,
        };
        assert_eq!(e.to_string(), "duration_s must be positive (got -2)");
        let e = ConfigError::InvertedInterval {
            field: "window",
            start: 5.0,
            end: 1.0,
        };
        assert!(e.to_string().contains("window"));
    }
}
