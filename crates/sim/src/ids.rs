//! Typed entity identifiers shared across the OpenSpace stack.
//!
//! The simulator indexes everything — graph nodes, satellites, ground
//! stations, operators — and a bare `usize` makes it far too easy to
//! hand a satellite index to a function expecting a graph-node index
//! (they differ by `n_sats` for stations!). These `#[repr(transparent)]`
//! newtypes make each index kind its own type, while `From`/`Into` impls
//! and mixed-type comparisons keep migration and test code ergonomic.
//!
//! Conventions (see `net::topology`):
//! * [`NodeId`] — index into a topology [`Graph`](https://docs.rs)
//!   adjacency list. Satellites occupy nodes `0..n_sats`, ground
//!   stations `n_sats..n_sats + n_stations`.
//! * [`SatId`] — index into the satellite array (`0..n_sats`).
//! * [`GsId`] — index into the ground-station array (`0..n_stations`).
//! * [`OperatorId`] — a federation member. Unlike the other three this
//!   is a *name*, not an array index, and is allocated by the
//!   federation registry.

use std::fmt;

macro_rules! index_id {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[repr(transparent)]
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub usize);

        impl $name {
            /// The raw index, for slicing into arrays.
            #[inline]
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(raw: usize) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl PartialEq<usize> for $name {
            #[inline]
            fn eq(&self, other: &usize) -> bool {
                self.0 == *other
            }
        }

        impl PartialEq<$name> for usize {
            #[inline]
            fn eq(&self, other: &$name) -> bool {
                *self == other.0
            }
        }

        impl PartialOrd<usize> for $name {
            #[inline]
            fn partial_cmp(&self, other: &usize) -> Option<std::cmp::Ordering> {
                self.0.partial_cmp(other)
            }
        }

        impl PartialOrd<$name> for usize {
            #[inline]
            fn partial_cmp(&self, other: &$name) -> Option<std::cmp::Ordering> {
                self.partial_cmp(&other.0)
            }
        }
    };
}

index_id! {
    /// Index of a node in a topology graph (satellite or ground station).
    NodeId
}

index_id! {
    /// Index of a satellite in a constellation's satellite array.
    SatId
}

index_id! {
    /// Index of a ground station in a station array.
    GsId
}

/// Identifier of a federation member (an operator).
///
/// This is the one identifier that crosses the wire: roaming requests,
/// settlement records and governance votes all name operators, so the
/// protocol crate re-exports this type.
#[repr(transparent)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct OperatorId(pub u32);

impl From<u32> for OperatorId {
    #[inline]
    fn from(raw: u32) -> Self {
        Self(raw)
    }
}

impl From<OperatorId> for u32 {
    #[inline]
    fn from(id: OperatorId) -> u32 {
        id.0
    }
}

impl fmt::Display for OperatorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_raw() {
        let n: NodeId = 7usize.into();
        assert_eq!(usize::from(n), 7);
        assert_eq!(n.index(), 7);
        let s = SatId::from(3usize);
        assert_eq!(s, SatId(3));
        let op = OperatorId::from(2u32);
        assert_eq!(u32::from(op), 2);
    }

    #[test]
    fn mixed_comparisons_with_raw_usize() {
        let n = NodeId(5);
        assert_eq!(n, 5usize);
        assert_eq!(5usize, n);
        assert!(n < 6usize);
        assert!(4usize < n);
        assert!(n >= 5usize);
    }

    #[test]
    fn vectors_of_ids_compare_with_vectors_of_usize() {
        let path: Vec<NodeId> = vec![NodeId(0), NodeId(2), NodeId(9)];
        assert_eq!(path, vec![0usize, 2, 9]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(4).to_string(), "4");
        assert_eq!(SatId(12).to_string(), "12");
        assert_eq!(GsId(1).to_string(), "1");
        assert_eq!(OperatorId(3).to_string(), "op-3");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(NodeId(1));
        set.insert(NodeId(1));
        set.insert(NodeId(2));
        assert_eq!(set.len(), 2);
        let mut v = vec![SatId(3), SatId(1), SatId(2)];
        v.sort();
        assert_eq!(v, vec![1usize, 2, 3]);
    }
}
