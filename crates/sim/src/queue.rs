//! Packet queues with drop-tail and two-class priority behaviour.
//!
//! §2.2's reactive-routing discussion is all about queueing: "the cost of
//! a path cannot be fully predicted since ISL congestion cannot be
//! anticipated", and ground stations "may prioritize traffic coming from
//! \[their\] users". These queues are the mechanism behind both effects in
//! the end-to-end simulation.

/// A packet in flight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Flow identifier.
    pub flow_id: u64,
    /// Size (bytes).
    pub size_bytes: u32,
    /// Creation time (s) — for end-to-end latency accounting.
    pub created_at_s: f64,
    /// Priority class: `true` = the queue owner's own traffic.
    pub is_native: bool,
}

/// Cumulative queue statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueueStats {
    /// Packets accepted.
    pub enqueued: u64,
    /// Packets dropped at the tail.
    pub dropped: u64,
    /// Packets dequeued for transmission.
    pub dequeued: u64,
    /// Bytes accepted.
    pub bytes_enqueued: u64,
    /// Bytes dropped.
    pub bytes_dropped: u64,
}

/// A byte-bounded drop-tail FIFO.
#[derive(Debug, Clone)]
pub struct DropTailQueue {
    packets: std::collections::VecDeque<Packet>,
    capacity_bytes: u64,
    occupancy_bytes: u64,
    stats: QueueStats,
}

impl DropTailQueue {
    /// A queue holding at most `capacity_bytes` of packets.
    ///
    /// # Panics
    /// Panics if `capacity_bytes == 0`.
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "queue capacity must be positive");
        Self {
            packets: Default::default(),
            capacity_bytes,
            occupancy_bytes: 0,
            stats: Default::default(),
        }
    }

    /// Offer a packet; `true` if accepted, `false` if dropped.
    pub fn enqueue(&mut self, packet: Packet) -> bool {
        if self.occupancy_bytes + packet.size_bytes as u64 > self.capacity_bytes {
            self.stats.dropped += 1;
            self.stats.bytes_dropped += packet.size_bytes as u64;
            return false;
        }
        self.occupancy_bytes += packet.size_bytes as u64;
        self.stats.enqueued += 1;
        self.stats.bytes_enqueued += packet.size_bytes as u64;
        self.packets.push_back(packet);
        true
    }

    /// Take the head-of-line packet.
    pub fn dequeue(&mut self) -> Option<Packet> {
        let p = self.packets.pop_front()?;
        // Exact subtraction: occupancy is the sum of queued packet sizes
        // by construction, so a shortfall here is an accounting bug that
        // must surface, not saturate away.
        debug_assert!(
            self.occupancy_bytes >= p.size_bytes as u64,
            "occupancy {} under head packet size {}",
            self.occupancy_bytes,
            p.size_bytes
        );
        self.occupancy_bytes -= p.size_bytes as u64;
        self.stats.dequeued += 1;
        Some(p)
    }

    /// Bytes currently queued.
    pub fn occupancy_bytes(&self) -> u64 {
        self.occupancy_bytes
    }

    /// Packets currently queued.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Fill fraction in `[0, 1]`.
    pub fn fill_fraction(&self) -> f64 {
        self.occupancy_bytes as f64 / self.capacity_bytes as f64
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Queueing delay (s) a new arrival would see at drain rate
    /// `rate_bps` (bits/s).
    pub fn drain_time_s(&self, rate_bps: f64) -> f64 {
        assert!(rate_bps > 0.0, "rate must be positive");
        self.occupancy_bytes as f64 * 8.0 / rate_bps
    }
}

/// A two-class priority queue: native traffic is always served before
/// visitor traffic — the ground-station policy from §2.2.
#[derive(Debug, Clone)]
pub struct PriorityQueue {
    native: DropTailQueue,
    visitor: DropTailQueue,
}

impl PriorityQueue {
    /// Split `capacity_bytes` between classes: natives get
    /// `native_share` of the buffer, visitors the rest. Each class gets
    /// at least one byte, and the two sub-buffers sum to exactly
    /// `capacity_bytes` — the split can never manufacture capacity the
    /// physical buffer does not have.
    ///
    /// # Panics
    /// Panics unless `native_share` is in `(0, 1)` and
    /// `capacity_bytes >= 2` (one byte per class is the smallest
    /// meaningful split).
    pub fn new(capacity_bytes: u64, native_share: f64) -> Self {
        assert!(
            native_share > 0.0 && native_share < 1.0,
            "native share must be in (0,1), got {native_share}"
        );
        assert!(
            capacity_bytes >= 2,
            "priority queue needs at least 2 bytes to split, got {capacity_bytes}"
        );
        let native_cap =
            ((capacity_bytes as f64 * native_share) as u64).clamp(1, capacity_bytes - 1);
        let visitor_cap = capacity_bytes - native_cap;
        Self {
            native: DropTailQueue::new(native_cap),
            visitor: DropTailQueue::new(visitor_cap),
        }
    }

    /// Offer a packet; it is classified by `Packet::is_native`.
    pub fn enqueue(&mut self, packet: Packet) -> bool {
        if packet.is_native {
            self.native.enqueue(packet)
        } else {
            self.visitor.enqueue(packet)
        }
    }

    /// Strict-priority dequeue: native first.
    pub fn dequeue(&mut self) -> Option<Packet> {
        self.native.dequeue().or_else(|| self.visitor.dequeue())
    }

    /// Native-class stats.
    pub fn native_stats(&self) -> QueueStats {
        self.native.stats()
    }

    /// Visitor-class stats.
    pub fn visitor_stats(&self) -> QueueStats {
        self.visitor.stats()
    }

    /// Total packets queued across both classes.
    pub fn len(&self) -> usize {
        self.native.len() + self.visitor.len()
    }

    /// Whether both classes are empty.
    pub fn is_empty(&self) -> bool {
        self.native.is_empty() && self.visitor.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(size: u32, native: bool) -> Packet {
        Packet {
            flow_id: 1,
            size_bytes: size,
            created_at_s: 0.0,
            is_native: native,
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = DropTailQueue::new(10_000);
        for i in 0..5 {
            q.enqueue(Packet {
                flow_id: i,
                ..pkt(100, true)
            });
        }
        for i in 0..5 {
            assert_eq!(q.dequeue().unwrap().flow_id, i);
        }
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn overflows_drop_at_tail() {
        let mut q = DropTailQueue::new(250);
        assert!(q.enqueue(pkt(100, true)));
        assert!(q.enqueue(pkt(100, true)));
        assert!(!q.enqueue(pkt(100, true))); // would exceed 250
        let s = q.stats();
        assert_eq!(s.enqueued, 2);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.bytes_dropped, 100);
    }

    #[test]
    fn occupancy_tracks_bytes() {
        let mut q = DropTailQueue::new(1_000);
        q.enqueue(pkt(300, true));
        q.enqueue(pkt(200, true));
        assert_eq!(q.occupancy_bytes(), 500);
        assert_eq!(q.fill_fraction(), 0.5);
        q.dequeue();
        assert_eq!(q.occupancy_bytes(), 200);
    }

    #[test]
    fn drain_time_matches_rate() {
        let mut q = DropTailQueue::new(100_000);
        q.enqueue(pkt(1_250, true)); // 10_000 bits
        assert!((q.drain_time_s(10_000.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn priority_serves_native_first() {
        let mut q = PriorityQueue::new(100_000, 0.5);
        q.enqueue(Packet {
            flow_id: 1,
            ..pkt(100, false)
        });
        q.enqueue(Packet {
            flow_id: 2,
            ..pkt(100, true)
        });
        assert_eq!(q.dequeue().unwrap().flow_id, 2, "native first");
        assert_eq!(q.dequeue().unwrap().flow_id, 1);
    }

    #[test]
    fn visitor_buffer_is_separate() {
        let mut q = PriorityQueue::new(1_000, 0.8);
        // Visitor capacity is 200 bytes; a 300-byte visitor packet drops
        // even though the native side is empty.
        assert!(!q.enqueue(pkt(300, false)));
        assert_eq!(q.visitor_stats().dropped, 1);
        assert!(q.enqueue(pkt(300, true)));
    }

    #[test]
    fn empty_checks() {
        let mut q = PriorityQueue::new(1_000, 0.5);
        assert!(q.is_empty());
        q.enqueue(pkt(10, false));
        assert!(!q.is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        DropTailQueue::new(0);
    }

    #[test]
    #[should_panic(expected = "at least 2 bytes")]
    fn priority_split_of_one_byte_panics() {
        PriorityQueue::new(1, 0.5);
    }

    #[test]
    fn priority_split_never_exceeds_capacity() {
        // Extreme shares used to round each class up to 1 byte
        // independently, so a 2-byte buffer could admit 3 bytes. The
        // split must now be exact.
        for &(cap, share) in &[
            (2u64, 0.5),
            (2, 0.999),
            (2, 0.001),
            (3, 0.9),
            (1_000, 0.8),
            (100_000, 0.5),
        ] {
            let mut q = PriorityQueue::new(cap, share);
            let mut admitted = 0u64;
            loop {
                let before = admitted;
                if q.enqueue(pkt(1, true)) {
                    admitted += 1;
                }
                if q.enqueue(pkt(1, false)) {
                    admitted += 1;
                }
                if admitted == before {
                    break;
                }
            }
            assert!(
                admitted <= cap,
                "cap {cap} share {share}: admitted {admitted} bytes"
            );
        }
    }

    #[test]
    fn priority_split_preserves_documented_shares() {
        // The documented example split (1000 bytes, 0.8 share -> 800/200)
        // must be unchanged by the exact-sum fix.
        let mut q = PriorityQueue::new(1_000, 0.8);
        assert!(q.enqueue(pkt(800, true)));
        assert!(!q.enqueue(pkt(1, true)));
        assert!(q.enqueue(pkt(200, false)));
        assert!(!q.enqueue(pkt(1, false)));
    }
}
