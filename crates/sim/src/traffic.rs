//! Traffic generators.
//!
//! §5(1) of the paper calls for "modelling a potential user base along
//! with potential user traffic patterns". Three classic source models,
//! all deterministic under a seed, all yielding `(arrival_time, bytes)`
//! streams:
//!
//! * [`CbrSource`] — constant bit rate (voice, telemetry).
//! * [`PoissonSource`] — memoryless arrivals (aggregate web traffic).
//! * [`OnOffSource`] — exponential on/off bursts (video, bulk sync), the
//!   heavy-tailed-ish load that stresses reactive routing.

use crate::rng::SimRng;

/// One generated packet arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Arrival time (s).
    pub at_s: f64,
    /// Packet size (bytes).
    pub size_bytes: u32,
}

/// Common interface: pull the next arrival.
pub trait TrafficSource {
    /// The next packet, or `None` if the source has ended.
    fn next_arrival(&mut self) -> Option<Arrival>;

    /// Long-run offered load (bit/s).
    fn offered_load_bps(&self) -> f64;
}

/// Constant-bit-rate source: fixed-size packets at fixed spacing.
#[derive(Debug, Clone)]
pub struct CbrSource {
    packet_bytes: u32,
    interval_s: f64,
    next_at_s: f64,
}

impl CbrSource {
    /// A CBR source offering `rate_bps` with `packet_bytes` packets,
    /// starting at `start_s`.
    ///
    /// # Panics
    /// Panics unless rate and size are positive.
    pub fn new(rate_bps: f64, packet_bytes: u32, start_s: f64) -> Self {
        assert!(rate_bps > 0.0, "rate must be positive");
        assert!(packet_bytes > 0, "packets must be non-empty");
        Self {
            packet_bytes,
            interval_s: packet_bytes as f64 * 8.0 / rate_bps,
            next_at_s: start_s,
        }
    }
}

impl TrafficSource for CbrSource {
    fn next_arrival(&mut self) -> Option<Arrival> {
        let a = Arrival {
            at_s: self.next_at_s,
            size_bytes: self.packet_bytes,
        };
        self.next_at_s += self.interval_s;
        Some(a)
    }

    fn offered_load_bps(&self) -> f64 {
        self.packet_bytes as f64 * 8.0 / self.interval_s
    }
}

/// Poisson source: exponential inter-arrivals, fixed packet size.
#[derive(Debug, Clone)]
pub struct PoissonSource {
    packet_bytes: u32,
    rate_pkts_per_s: f64,
    clock_s: f64,
    rng: SimRng,
}

impl PoissonSource {
    /// A Poisson source offering `rate_bps` with `packet_bytes` packets.
    pub fn new(rate_bps: f64, packet_bytes: u32, start_s: f64, seed: u64) -> Self {
        assert!(rate_bps > 0.0 && packet_bytes > 0);
        Self {
            packet_bytes,
            rate_pkts_per_s: rate_bps / (packet_bytes as f64 * 8.0),
            clock_s: start_s,
            rng: SimRng::new(seed),
        }
    }
}

impl TrafficSource for PoissonSource {
    fn next_arrival(&mut self) -> Option<Arrival> {
        self.clock_s += self.rng.exponential(self.rate_pkts_per_s);
        Some(Arrival {
            at_s: self.clock_s,
            size_bytes: self.packet_bytes,
        })
    }

    fn offered_load_bps(&self) -> f64 {
        self.rate_pkts_per_s * self.packet_bytes as f64 * 8.0
    }
}

/// Exponential on/off source: CBR at `peak_bps` during ON periods,
/// silent during OFF, with exponentially distributed period lengths.
#[derive(Debug, Clone)]
pub struct OnOffSource {
    packet_bytes: u32,
    packet_interval_s: f64,
    mean_on_s: f64,
    mean_off_s: f64,
    peak_bps: f64,
    next_at_s: f64,
    on_until_s: f64,
    rng: SimRng,
}

impl OnOffSource {
    /// An on/off source bursting at `peak_bps`, with the given mean ON
    /// and OFF durations.
    pub fn new(
        peak_bps: f64,
        packet_bytes: u32,
        mean_on_s: f64,
        mean_off_s: f64,
        start_s: f64,
        seed: u64,
    ) -> Self {
        assert!(peak_bps > 0.0 && packet_bytes > 0);
        assert!(mean_on_s > 0.0 && mean_off_s > 0.0);
        let mut rng = SimRng::new(seed);
        let first_on = rng.exponential(1.0 / mean_on_s);
        Self {
            packet_bytes,
            packet_interval_s: packet_bytes as f64 * 8.0 / peak_bps,
            mean_on_s,
            mean_off_s,
            peak_bps,
            next_at_s: start_s,
            on_until_s: start_s + first_on,
            rng,
        }
    }
}

impl TrafficSource for OnOffSource {
    fn next_arrival(&mut self) -> Option<Arrival> {
        // Emit at the pending slot; like CbrSource, the first packet of
        // every ON period (including the first) goes out the instant
        // the period opens, not one packet interval later.
        let mut at = self.next_at_s;
        while at > self.on_until_s {
            // Jump across the OFF gap into the next ON period.
            let off = self.rng.exponential(1.0 / self.mean_off_s);
            let on = self.rng.exponential(1.0 / self.mean_on_s);
            at = self.on_until_s + off;
            self.on_until_s = at + on;
        }
        self.next_at_s = at + self.packet_interval_s;
        Some(Arrival {
            at_s: at,
            size_bytes: self.packet_bytes,
        })
    }

    fn offered_load_bps(&self) -> f64 {
        self.peak_bps * self.mean_on_s / (self.mean_on_s + self.mean_off_s)
    }
}

/// Collect arrivals from any source up to a time horizon.
pub fn arrivals_until(source: &mut dyn TrafficSource, horizon_s: f64) -> Vec<Arrival> {
    let mut out = Vec::new();
    while let Some(a) = source.next_arrival() {
        if a.at_s > horizon_s {
            break;
        }
        out.push(a);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_is_evenly_spaced() {
        let mut s = CbrSource::new(8_000.0, 100, 0.0); // 10 pkts/s
        let arr = arrivals_until(&mut s, 1.0);
        assert_eq!(arr.len(), 11); // t=0.0 .. 1.0 inclusive
        for w in arr.windows(2) {
            assert!((w[1].at_s - w[0].at_s - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn cbr_offered_load_exact() {
        let s = CbrSource::new(1_000_000.0, 1250, 0.0);
        assert!((s.offered_load_bps() - 1_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn poisson_mean_rate_converges() {
        let mut s = PoissonSource::new(80_000.0, 1000, 0.0, 9); // 10 pkts/s
        let arr = arrivals_until(&mut s, 1_000.0);
        let rate = arr.len() as f64 / 1_000.0;
        assert!((rate - 10.0).abs() < 0.5, "rate {rate}");
    }

    #[test]
    fn poisson_is_seed_deterministic() {
        let a = arrivals_until(&mut PoissonSource::new(1e5, 500, 0.0, 3), 10.0);
        let b = arrivals_until(&mut PoissonSource::new(1e5, 500, 0.0, 3), 10.0);
        assert_eq!(a, b);
    }

    #[test]
    fn onoff_long_run_load_matches_duty_cycle() {
        let mut s = OnOffSource::new(1e6, 1250, 1.0, 3.0, 0.0, 5);
        let horizon = 2_000.0;
        let arr = arrivals_until(&mut s, horizon);
        let bits: f64 = arr.iter().map(|a| a.size_bytes as f64 * 8.0).sum();
        let measured = bits / horizon;
        let expected = s.offered_load_bps(); // 250 kbit/s
        assert!(
            (measured - expected).abs() / expected < 0.15,
            "measured {measured}, expected {expected}"
        );
    }

    #[test]
    fn onoff_has_silent_gaps() {
        let mut s = OnOffSource::new(1e6, 1250, 0.5, 2.0, 0.0, 8);
        let arr = arrivals_until(&mut s, 200.0);
        let max_gap = arr
            .windows(2)
            .map(|w| w[1].at_s - w[0].at_s)
            .fold(0.0, f64::max);
        // With mean OFF of 2 s, gaps far beyond the 10 ms packet spacing
        // must appear.
        assert!(max_gap > 1.0, "max gap {max_gap}");
    }

    #[test]
    fn onoff_first_packet_is_at_on_period_start() {
        // Regression: the first packet used to go out one
        // packet_interval_s after the ON period opened, while CbrSource
        // emits at start_s. Both must emit the instant the source (or
        // ON period) starts.
        for seed in 0..16 {
            let start = 2.5;
            let mut s = OnOffSource::new(1e6, 1250, 1.0, 3.0, start, seed);
            let first = s.next_arrival().unwrap();
            assert_eq!(
                first.at_s.to_bits(),
                start.to_bits(),
                "seed {seed}: first arrival {} != start {start}",
                first.at_s
            );
        }
        let mut cbr = CbrSource::new(1e6, 1250, 2.5);
        assert_eq!(cbr.next_arrival().unwrap().at_s.to_bits(), 2.5f64.to_bits());
    }

    #[test]
    fn onoff_packets_within_a_burst_stay_evenly_spaced() {
        let mut s = OnOffSource::new(1e6, 1250, 5.0, 1.0, 0.0, 11);
        let interval = 1250.0 * 8.0 / 1e6;
        let arr = arrivals_until(&mut s, 50.0);
        // Consecutive packets are either one interval apart (same
        // burst) or separated by an OFF gap that lands on a fresh ON
        // start; nothing in between.
        for w in arr.windows(2) {
            let gap = w[1].at_s - w[0].at_s;
            assert!(
                (gap - interval).abs() < 1e-12 || gap > interval,
                "gap {gap}"
            );
        }
    }

    #[test]
    fn arrivals_are_time_monotone() {
        let mut s = OnOffSource::new(1e6, 1250, 1.0, 1.0, 0.0, 2);
        let arr = arrivals_until(&mut s, 100.0);
        for w in arr.windows(2) {
            assert!(w[1].at_s >= w[0].at_s);
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn cbr_zero_rate_panics() {
        CbrSource::new(0.0, 100, 0.0);
    }
}
