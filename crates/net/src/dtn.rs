//! Delay-tolerant networking: contact graphs and earliest-arrival
//! routing.
//!
//! §2 warns that a non-collaborating operator's satellites "may be
//! completely disconnected from the rest of their infrastructure for
//! significant periods of time". Because orbits are public, those
//! disconnections are *scheduled*: the operator can compute every future
//! contact and route bundles store-and-forward along them — the
//! contact-graph routing used by DTN stacks. This module provides the
//! machinery, and experiment `exp_dtn` uses it to quantify the price of
//! flying solo (minutes of bundle latency) against federated relay
//! (milliseconds).
//!
//! Faults compose naturally with custody transfer:
//! [`earliest_arrival_with_retry`] routes around *unscheduled* node
//! outages by having the custodian re-attempt a failed transfer under a
//! capped exponential backoff ([`RetryPolicy`]) before the bundle is
//! considered stuck on that contact.

use crate::isl::{build_snapshot, GroundNode, SatNode, SnapshotParams};
use openspace_sim::ids::NodeId;

/// Error from the DTN routing API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DtnError {
    /// A node index referred past the contact plan's node count.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes in the plan.
        len: usize,
    },
    /// No contact sequence delivers the bundle.
    NoRoute,
}

impl std::fmt::Display for DtnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DtnError::NodeOutOfRange { node, len } => {
                write!(f, "node {node} out of range (plan has {len} nodes)")
            }
            DtnError::NoRoute => write!(f, "no contact sequence reaches the destination"),
        }
    }
}

impl std::error::Error for DtnError {}

/// One scheduled communication opportunity between two nodes.
///
/// Node indexing matches the snapshot convention: satellites first, then
/// ground stations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Contact {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Window start (s).
    pub start_s: f64,
    /// Window end (s).
    pub end_s: f64,
    /// One-way propagation latency during the window (s, mean).
    pub latency_s: f64,
    /// Link rate during the window (bit/s, minimum over samples).
    pub rate_bps: f64,
}

impl Contact {
    /// Window duration (s).
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }

    /// Volume (bits) the contact can move.
    pub fn volume_bits(&self) -> f64 {
        self.duration_s() * self.rate_bps
    }
}

/// Sample the time-varying topology into a contact plan over
/// `[t_start_s, t_end_s)` at `step_s` resolution. Directed contacts; a
/// bidirectional link yields two.
///
/// # Panics
/// Panics if `step_s <= 0` or the interval is inverted.
pub fn sample_contacts(
    sats: &[SatNode],
    stations: &[GroundNode],
    t_start_s: f64,
    t_end_s: f64,
    step_s: f64,
    params: &SnapshotParams,
) -> Vec<Contact> {
    assert!(step_s > 0.0, "step must be positive");
    assert!(t_end_s >= t_start_s, "interval inverted");
    let n_nodes = sats.len() + stations.len();
    // open[(from, to)] = (start, latency_sum, samples, min_rate)
    let mut open: std::collections::HashMap<(NodeId, NodeId), (f64, f64, u32, f64)> =
        std::collections::HashMap::new();
    let mut out = Vec::new();
    let steps = ((t_end_s - t_start_s) / step_s).ceil() as usize;

    for k in 0..=steps {
        let t = (t_start_s + k as f64 * step_s).min(t_end_s);
        let mut present = vec![false; n_nodes * n_nodes];
        if t < t_end_s {
            let g = build_snapshot(t, sats, stations, params);
            for from in 0..n_nodes {
                for e in g.edges(from) {
                    present[from * n_nodes + e.to.0] = true;
                    let entry =
                        open.entry((NodeId(from), e.to))
                            .or_insert((t, 0.0, 0, f64::INFINITY));
                    entry.1 += e.latency_s;
                    entry.2 += 1;
                    entry.3 = entry.3.min(e.capacity_bps);
                }
            }
        }
        // Close contacts that vanished (or everything at the horizon).
        let to_close: Vec<(NodeId, NodeId)> = open
            .keys()
            .filter(|&&(f, to)| t >= t_end_s || !present[f.0 * n_nodes + to.0])
            .copied()
            .collect();
        for key in to_close {
            if let Some((start, lat_sum, n, min_rate)) = open.remove(&key) {
                out.push(Contact {
                    from: key.0,
                    to: key.1,
                    start_s: start,
                    end_s: t,
                    latency_s: lat_sum / n as f64,
                    rate_bps: min_rate,
                });
            }
        }
        if t >= t_end_s {
            break;
        }
    }
    out.sort_by(|a, b| {
        a.start_s
            .total_cmp(&b.start_s)
            .then(a.from.cmp(&b.from))
            .then(a.to.cmp(&b.to))
    });
    out
}

/// A computed DTN route.
#[derive(Debug, Clone, PartialEq)]
pub struct DtnRoute {
    /// When the bundle arrives at the destination (s).
    pub arrival_s: f64,
    /// Node sequence, source first.
    pub nodes: Vec<NodeId>,
    /// Custody-transfer retries spent along the route (0 without faults).
    pub retries: u32,
}

impl DtnRoute {
    /// Store-and-forward hops taken.
    pub fn hops(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }
}

/// Custody-transfer retry policy: capped exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Transmission attempts per contact (the first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry (s); doubles per retry.
    pub base_backoff_s: f64,
    /// Backoff ceiling (s).
    pub max_backoff_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff_s: 1.0,
            max_backoff_s: 60.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff (s) before retry number `retry` (1-based):
    /// `min(base · 2^(retry−1), max)`.
    pub fn backoff_s(&self, retry: u32) -> f64 {
        let exp = retry.saturating_sub(1).min(52);
        (self.base_backoff_s * (1u64 << exp) as f64).min(self.max_backoff_s)
    }
}

/// A time span during which one node is failed, as seen by the DTN
/// custodians (derived from a compiled fault plan).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeOutageWindow {
    /// The failed node.
    pub node: NodeId,
    /// Outage start (s).
    pub start_s: f64,
    /// Outage end (s); `f64::INFINITY` for permanent failures.
    pub end_s: f64,
}

impl NodeOutageWindow {
    fn overlaps(&self, node: NodeId, from_s: f64, to_s: f64) -> bool {
        self.node == node && self.start_s < to_s && from_s < self.end_s
    }
}

/// Earliest-arrival routing over a contact plan (contact-graph routing's
/// core): starting at `src` at `t_start_s` with a bundle of
/// `bundle_bits`, find the earliest time the bundle can reach `dst`,
/// waiting in storage for future contacts as needed.
///
/// A contact is usable if the bundle is present at `contact.from` before
/// `contact.end`, and transmission (`bundle_bits / rate`) completes
/// within the window. Errs with [`DtnError::NoRoute`] when no contact
/// sequence delivers the bundle.
pub fn earliest_arrival(
    contacts: &[Contact],
    n_nodes: usize,
    src: impl Into<NodeId>,
    dst: impl Into<NodeId>,
    t_start_s: f64,
    bundle_bits: f64,
) -> Result<DtnRoute, DtnError> {
    earliest_arrival_with_retry(
        contacts,
        n_nodes,
        src,
        dst,
        t_start_s,
        bundle_bits,
        &[],
        RetryPolicy::default(),
    )
}

/// [`earliest_arrival`] under unscheduled node outages, with custody
/// retry: when a transfer would overlap an outage of either endpoint,
/// the custodian holds the bundle and re-attempts after a capped
/// exponential backoff, up to `retry.max_attempts` tries per contact.
/// The returned route reports the total retries spent.
#[allow(clippy::too_many_arguments)] // routing problem + fault model, all load-bearing
pub fn earliest_arrival_with_retry(
    contacts: &[Contact],
    n_nodes: usize,
    src: impl Into<NodeId>,
    dst: impl Into<NodeId>,
    t_start_s: f64,
    bundle_bits: f64,
    outages: &[NodeOutageWindow],
    retry: RetryPolicy,
) -> Result<DtnRoute, DtnError> {
    earliest_arrival_with_retry_recorded(
        contacts,
        n_nodes,
        src,
        dst,
        t_start_s,
        bundle_bits,
        outages,
        retry,
        &mut openspace_telemetry::NullRecorder,
    )
}

/// [`earliest_arrival_with_retry`] with telemetry: counts routed bundles
/// (`dtn.bundles_routed`), custody retries spent by delivered bundles
/// (`dtn.custody_retries`), and routing failures (`dtn.no_route`).
/// Delivered bundles also contribute a `dtn.delivery_delay_s` histogram
/// sample (arrival minus injection time).
#[allow(clippy::too_many_arguments)] // routing problem + fault model + telemetry sink
pub fn earliest_arrival_with_retry_recorded(
    contacts: &[Contact],
    n_nodes: usize,
    src: impl Into<NodeId>,
    dst: impl Into<NodeId>,
    t_start_s: f64,
    bundle_bits: f64,
    outages: &[NodeOutageWindow],
    retry: RetryPolicy,
    rec: &mut dyn openspace_telemetry::Recorder,
) -> Result<DtnRoute, DtnError> {
    let result = earliest_arrival_inner(
        contacts,
        n_nodes,
        src,
        dst,
        t_start_s,
        bundle_bits,
        outages,
        retry,
    );
    match &result {
        Ok(route) => {
            rec.add("dtn.bundles_routed", 1);
            rec.add("dtn.custody_retries", u64::from(route.retries));
            rec.observe("dtn.delivery_delay_s", route.arrival_s - t_start_s);
        }
        Err(DtnError::NoRoute) => rec.add("dtn.no_route", 1),
        Err(DtnError::NodeOutOfRange { .. }) => {}
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn earliest_arrival_inner(
    contacts: &[Contact],
    n_nodes: usize,
    src: impl Into<NodeId>,
    dst: impl Into<NodeId>,
    t_start_s: f64,
    bundle_bits: f64,
    outages: &[NodeOutageWindow],
    retry: RetryPolicy,
) -> Result<DtnRoute, DtnError> {
    let (src, dst) = (src.into(), dst.into());
    for node in [src, dst] {
        if node.0 >= n_nodes {
            return Err(DtnError::NodeOutOfRange { node, len: n_nodes });
        }
    }
    debug_assert!(bundle_bits >= 0.0);
    // Label-correcting over contacts sorted by start time. Because a
    // later contact can never improve an earlier arrival, one forward
    // pass over start-sorted contacts with re-scans on improvement is
    // exact; we use a simple fixed-point loop (contact plans here are
    // tens of thousands of entries at most).
    let mut best = vec![f64::INFINITY; n_nodes];
    let mut retries_at = vec![0u32; n_nodes];
    let mut prev: Vec<Option<NodeId>> = vec![None; n_nodes];
    best[src.0] = t_start_s;
    let mut changed = true;
    while changed {
        changed = false;
        for c in contacts {
            let ready = best[c.from.0];
            if ready.is_infinite() {
                continue;
            }
            let tx_time = if c.rate_bps > 0.0 {
                bundle_bits / c.rate_bps
            } else {
                f64::INFINITY
            };
            // Attempt the transfer, backing off past outages.
            let mut departure = ready.max(c.start_s);
            let mut spent_retries = 0u32;
            let arrival = loop {
                if departure + tx_time > c.end_s {
                    break None; // missed the window or doesn't fit
                }
                let arrival = departure + tx_time + c.latency_s;
                let blocked = outages.iter().any(|o| {
                    o.overlaps(c.from, departure, arrival) || o.overlaps(c.to, departure, arrival)
                });
                if !blocked {
                    break Some(arrival);
                }
                spent_retries += 1;
                if spent_retries >= retry.max_attempts {
                    break None; // custodian gives up on this contact
                }
                departure += retry.backoff_s(spent_retries);
            };
            let Some(arrival) = arrival else { continue };
            if arrival < best[c.to.0] {
                best[c.to.0] = arrival;
                retries_at[c.to.0] = retries_at[c.from.0] + spent_retries;
                prev[c.to.0] = Some(c.from);
                changed = true;
            }
        }
    }
    if best[dst.0].is_infinite() {
        return Err(DtnError::NoRoute);
    }
    let mut nodes = vec![dst];
    let mut cur = dst;
    while let Some(p) = prev[cur.0] {
        nodes.push(p);
        cur = p;
        if cur == src {
            break;
        }
    }
    if nodes.last().copied() != Some(src) {
        nodes.push(src);
    }
    nodes.reverse();
    Ok(DtnRoute {
        arrival_s: best[dst.0],
        nodes,
        retries: retries_at[dst.0],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use openspace_orbit::constants::km_to_m;
    use openspace_orbit::frames::{geodetic_to_ecef, Geodetic};
    use openspace_orbit::kepler::OrbitalElements;
    use openspace_orbit::propagator::{PerturbationModel, Propagator};

    fn contact(from: usize, to: usize, start: f64, end: f64) -> Contact {
        Contact {
            from: NodeId(from),
            to: NodeId(to),
            start_s: start,
            end_s: end,
            latency_s: 0.01,
            rate_bps: 1e6,
        }
    }

    #[test]
    fn direct_contact_routes_immediately() {
        let plan = [contact(0, 1, 0.0, 100.0)];
        let r = earliest_arrival(&plan, 2, 0, 1, 5.0, 1e6).unwrap();
        // Departure at 5, 1 s transmission, 10 ms propagation.
        assert!((r.arrival_s - 6.01).abs() < 1e-9);
        assert_eq!(r.nodes, vec![0usize, 1]);
        assert_eq!(r.retries, 0);
    }

    #[test]
    fn waits_for_future_contact() {
        let plan = [contact(0, 1, 50.0, 100.0)];
        let r = earliest_arrival(&plan, 2, 0, 1, 0.0, 1e6).unwrap();
        assert!((r.arrival_s - 51.01).abs() < 1e-9, "{}", r.arrival_s);
    }

    #[test]
    fn store_and_forward_across_disjoint_windows() {
        // 0→1 early, 1→2 much later: the bundle waits at node 1.
        let plan = [contact(0, 1, 0.0, 10.0), contact(1, 2, 500.0, 600.0)];
        let r = earliest_arrival(&plan, 3, 0, 2, 0.0, 1e6).unwrap();
        assert_eq!(r.nodes, vec![0usize, 1, 2]);
        assert!((r.arrival_s - 501.01).abs() < 1e-9);
    }

    #[test]
    fn contacts_out_of_order_still_route() {
        // The later contact listed first: the fixed-point loop handles it.
        let plan = [contact(1, 2, 500.0, 600.0), contact(0, 1, 0.0, 10.0)];
        let r = earliest_arrival(&plan, 3, 0, 2, 0.0, 1e6).unwrap();
        assert_eq!(r.hops(), 2);
    }

    #[test]
    fn oversized_bundle_misses_window() {
        // 1 Mbit/s for 10 s = 10 Mbit capacity; a 20 Mbit bundle fails.
        let plan = [contact(0, 1, 0.0, 10.0)];
        assert_eq!(
            earliest_arrival(&plan, 2, 0, 1, 0.0, 2e7),
            Err(DtnError::NoRoute)
        );
        // But fits through a longer window.
        let plan2 = [contact(0, 1, 0.0, 30.0)];
        assert!(earliest_arrival(&plan2, 2, 0, 1, 0.0, 2e7).is_ok());
    }

    #[test]
    fn expired_contact_is_useless() {
        let plan = [contact(0, 1, 0.0, 10.0)];
        assert_eq!(
            earliest_arrival(&plan, 2, 0, 1, 50.0, 1e3),
            Err(DtnError::NoRoute)
        );
    }

    #[test]
    fn out_of_range_node_is_an_error_not_a_panic() {
        let plan = [contact(0, 1, 0.0, 10.0)];
        assert_eq!(
            earliest_arrival(&plan, 2, 0, 7, 0.0, 1.0),
            Err(DtnError::NodeOutOfRange {
                node: NodeId(7),
                len: 2
            })
        );
    }

    #[test]
    fn chooses_earlier_of_two_paths() {
        let plan = [
            contact(0, 1, 0.0, 10.0),
            contact(1, 3, 20.0, 30.0),
            contact(0, 2, 0.0, 10.0),
            contact(2, 3, 100.0, 110.0),
        ];
        let r = earliest_arrival(&plan, 4, 0, 3, 0.0, 1e6).unwrap();
        assert_eq!(r.nodes, vec![0usize, 1, 3]);
        assert!(r.arrival_s < 25.0);
    }

    #[test]
    fn unreachable_returns_no_route() {
        let plan = [contact(0, 1, 0.0, 10.0)];
        assert_eq!(
            earliest_arrival(&plan, 3, 0, 2, 0.0, 1.0),
            Err(DtnError::NoRoute)
        );
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff_s: 2.0,
            max_backoff_s: 9.0,
        };
        assert_eq!(p.backoff_s(1), 2.0);
        assert_eq!(p.backoff_s(2), 4.0);
        assert_eq!(p.backoff_s(3), 8.0);
        assert_eq!(p.backoff_s(4), 9.0, "capped");
        assert_eq!(p.backoff_s(30), 9.0);
    }

    #[test]
    fn custody_retry_rides_out_a_receiver_outage() {
        // Receiver down [0, 4): the first try at t=0 fails, backoff 1 s
        // (t=1, still down), 2 s (t=3, still down), 4 s → t=7 succeeds.
        let plan = [contact(0, 1, 0.0, 100.0)];
        let outage = [NodeOutageWindow {
            node: NodeId(1),
            start_s: 0.0,
            end_s: 4.0,
        }];
        let r =
            earliest_arrival_with_retry(&plan, 2, 0, 1, 0.0, 1e6, &outage, RetryPolicy::default())
                .unwrap();
        assert_eq!(r.retries, 3);
        assert!((r.arrival_s - 8.01).abs() < 1e-9, "{}", r.arrival_s);
    }

    #[test]
    fn custody_gives_up_after_max_attempts() {
        // Outage outlasts every backoff the policy allows.
        let plan = [contact(0, 1, 0.0, 100.0)];
        let outage = [NodeOutageWindow {
            node: NodeId(1),
            start_s: 0.0,
            end_s: 99.0,
        }];
        let r = earliest_arrival_with_retry(
            &plan,
            2,
            0,
            1,
            0.0,
            1e6,
            &outage,
            RetryPolicy {
                max_attempts: 3,
                base_backoff_s: 1.0,
                max_backoff_s: 60.0,
            },
        );
        assert_eq!(r, Err(DtnError::NoRoute));
    }

    #[test]
    fn no_outages_means_no_retries() {
        let plan = [contact(0, 1, 0.0, 100.0), contact(1, 2, 0.0, 200.0)];
        let plain = earliest_arrival(&plan, 3, 0, 2, 0.0, 1e6).unwrap();
        let with =
            earliest_arrival_with_retry(&plan, 3, 0, 2, 0.0, 1e6, &[], RetryPolicy::default())
                .unwrap();
        assert_eq!(plain, with);
        assert_eq!(with.retries, 0);
    }

    #[test]
    fn recorded_route_reports_retries_and_delay() {
        use openspace_telemetry::MemoryRecorder;
        let plan = [contact(0, 1, 0.0, 100.0)];
        let outage = [NodeOutageWindow {
            node: NodeId(1),
            start_s: 0.0,
            end_s: 4.0,
        }];
        let mut rec = MemoryRecorder::new();
        let r = earliest_arrival_with_retry_recorded(
            &plan,
            2,
            0,
            1,
            0.0,
            1e6,
            &outage,
            RetryPolicy::default(),
            &mut rec,
        )
        .unwrap();
        assert_eq!(rec.counter("dtn.bundles_routed"), 1);
        assert_eq!(rec.counter("dtn.custody_retries"), u64::from(r.retries));
        let delay = rec.histogram("dtn.delivery_delay_s").unwrap();
        assert_eq!(delay.count(), 1);
        assert!((delay.mean() - r.arrival_s).abs() < 1e-9);
    }

    #[test]
    fn recorded_no_route_bumps_the_failure_counter() {
        use openspace_telemetry::MemoryRecorder;
        let plan = [contact(0, 1, 0.0, 10.0)];
        let mut rec = MemoryRecorder::new();
        let r = earliest_arrival_with_retry_recorded(
            &plan,
            3,
            0,
            2,
            0.0,
            1.0,
            &[],
            RetryPolicy::default(),
            &mut rec,
        );
        assert_eq!(r, Err(DtnError::NoRoute));
        assert_eq!(rec.counter("dtn.no_route"), 1);
        assert_eq!(rec.counter("dtn.bundles_routed"), 0);
    }

    #[test]
    fn sampled_contacts_from_single_orbit() {
        // One satellite over one station: contacts must match the pass
        // structure (a few per day, minutes long).
        let sat = SatNode {
            propagator: Propagator::new(
                OrbitalElements::circular(km_to_m(780.0), 86.4, 0.0, 0.0).unwrap(),
                PerturbationModel::TwoBody,
            ),
            operator: 0,
            has_optical: false,
        };
        let st = GroundNode {
            position_ecef: geodetic_to_ecef(Geodetic::from_degrees(0.0, 0.0, 0.0)),
            operator: 0,
        };
        let contacts = sample_contacts(
            &[sat],
            &[st],
            0.0,
            86_400.0,
            30.0,
            &SnapshotParams::default(),
        );
        // Directed: up and down per pass.
        assert!(!contacts.is_empty());
        assert_eq!(contacts.len() % 2, 0);
        for c in &contacts {
            assert!(c.duration_s() >= 30.0);
            assert!(c.duration_s() < 1_200.0);
            assert!(c.rate_bps > 0.0);
            assert!(c.latency_s > 0.0 && c.latency_s < 0.02);
        }
    }

    #[test]
    fn bundle_flows_sat_to_station_via_plan() {
        // End-to-end: compute the plan, then route a bundle from the
        // satellite (node 0) to the station (node 1).
        let sat = SatNode {
            propagator: Propagator::new(
                OrbitalElements::circular(km_to_m(780.0), 86.4, 40.0, 180.0).unwrap(),
                PerturbationModel::TwoBody,
            ),
            operator: 0,
            has_optical: false,
        };
        let st = GroundNode {
            position_ecef: geodetic_to_ecef(Geodetic::from_degrees(10.0, 20.0, 0.0)),
            operator: 0,
        };
        let contacts = sample_contacts(
            &[sat],
            &[st],
            0.0,
            86_400.0,
            30.0,
            &SnapshotParams::default(),
        );
        let r = earliest_arrival(&contacts, 2, 0, 1, 0.0, 8.0 * 1e6).unwrap();
        assert!(r.arrival_s > 0.0 && r.arrival_s < 86_400.0);
        assert_eq!(r.nodes, vec![0usize, 1]);
    }
}
