//! Precomputed topology timelines.
//!
//! §2.2 of the paper argues that satellite-network topology is "both
//! known and public, allowing for pre-computation of static routes".
//! This module exploits that predictability one level below routes: a
//! [`TopologyTimeline`] precomputes the *snapshot sequence* for a whole
//! simulation horizon — one base [`Graph`] plus a compact
//! [`GraphDelta`] per tick — so a dynamic simulation replays cheap
//! row-level patches instead of rebuilding the constellation graph from
//! orbital state at every resnapshot.
//!
//! # Determinism contract
//!
//! Snapshots are built concurrently via
//! [`openspace_sim::exec::parallel_map_seeded`], whose output is a pure
//! function of the inputs — the timeline is bitwise-identical for any
//! worker count, pinned by `tests/tests/timeline_equivalence.rs` across
//! 1/2/4/8 threads.
//!
//! Tick times are produced by *iterative accumulation* (`t += step`),
//! never by `start + k * step` multiplication: the event-driven
//! simulation in `openspace-core` schedules each resnapshot at
//! `now + interval`, and only the accumulated form reproduces those
//! times bit-for-bit, which in turn makes every timeline snapshot
//! bit-identical to the graph a fresh provider call would have returned
//! at that event.
//!
//! # Providers
//!
//! [`TopologyProvider`] is the typed capability "can produce the
//! topology at time t". Any `Fn(f64) -> Graph` closure gets it for free
//! (the blanket impl), and [`TopologyTimeline`] implements it by
//! replaying deltas, so precomputed and on-demand dynamics are
//! interchangeable everywhere a provider is accepted.

use crate::topology::{Graph, GraphDelta, TopologyError};
use openspace_sim::config::ConfigError;
use openspace_sim::exec::parallel_map_seeded;
use std::fmt;

/// A source of topology snapshots over time.
///
/// Implemented by every `Fn(f64) -> Graph` closure and by
/// [`TopologyTimeline`]. Implementations must be *deterministic*: two
/// calls with bit-equal `t_s` must return bit-equal graphs, and every
/// snapshot must keep the same node roster (satellite and station
/// counts) over the horizon it is queried on.
pub trait TopologyProvider {
    /// The network snapshot at simulation time `t_s` (seconds).
    fn topology_at(&self, t_s: f64) -> Graph;
}

impl<F: Fn(f64) -> Graph> TopologyProvider for F {
    fn topology_at(&self, t_s: f64) -> Graph {
        self(t_s)
    }
}

/// Why a [`TopologyTimeline`] could not be built.
#[derive(Debug, Clone, PartialEq)]
pub enum TimelineError {
    /// Invalid horizon parameters (step, horizon, start).
    Config(ConfigError),
    /// The provider's snapshots could not be diffed (roster changed
    /// mid-horizon).
    Topology(TopologyError),
}

impl fmt::Display for TimelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimelineError::Config(e) => write!(f, "timeline config: {e}"),
            TimelineError::Topology(e) => write!(f, "timeline topology: {e}"),
        }
    }
}

impl std::error::Error for TimelineError {}

impl From<ConfigError> for TimelineError {
    fn from(e: ConfigError) -> Self {
        TimelineError::Config(e)
    }
}

impl From<TopologyError> for TimelineError {
    fn from(e: TopologyError) -> Self {
        TimelineError::Topology(e)
    }
}

/// The precomputed snapshot sequence for a simulation horizon: the base
/// graph at the start time plus one [`GraphDelta`] per tick.
///
/// Memory is the base graph plus only the rows that actually change —
/// for a constellation, a handful of contacts per tick out of thousands
/// of links. [`graph_at`](Self::graph_at) reconstructs any instant's
/// snapshot bit-identically to what the provider returned at the
/// nearest preceding tick.
#[derive(Debug, Clone)]
pub struct TopologyTimeline {
    start_s: f64,
    step_s: f64,
    /// `times[k]` is tick `k`'s instant, accumulated `start + k·step`
    /// additions (see the module docs for why accumulation matters).
    times: Vec<f64>,
    /// Snapshot at `times[0]`.
    base: Graph,
    /// `deltas[k]` patches the snapshot at `times[k]` into the snapshot
    /// at `times[k + 1]`; `deltas.len() == times.len() - 1`.
    deltas: Vec<GraphDelta>,
}

impl TopologyTimeline {
    /// Precompute the timeline for `[start_s, start_s + horizon_s]`
    /// with one tick every `step_s` seconds, building snapshots on
    /// `threads` workers (any count gives bit-identical output).
    ///
    /// The tick instants are `start_s`, then repeated `t += step_s`
    /// while `t <= start_s + horizon_s` — exactly the instants an
    /// event-driven run with resnapshot interval `step_s` observes.
    pub fn build<P: TopologyProvider + Sync>(
        provider: &P,
        start_s: f64,
        step_s: f64,
        horizon_s: f64,
        threads: usize,
    ) -> Result<TopologyTimeline, TimelineError> {
        if !start_s.is_finite() {
            return Err(ConfigError::NotFinite {
                field: "timeline.start_s",
            }
            .into());
        }
        if !step_s.is_finite() {
            return Err(ConfigError::NotFinite {
                field: "timeline.step_s",
            }
            .into());
        }
        if step_s <= 0.0 {
            return Err(ConfigError::NonPositive {
                field: "timeline.step_s",
                value: step_s,
            }
            .into());
        }
        if !horizon_s.is_finite() {
            return Err(ConfigError::NotFinite {
                field: "timeline.horizon_s",
            }
            .into());
        }
        if horizon_s < 0.0 {
            return Err(ConfigError::Negative {
                field: "timeline.horizon_s",
                value: horizon_s,
            }
            .into());
        }

        let end = start_s + horizon_s;
        let mut times = vec![start_s];
        let mut t = start_s;
        loop {
            let next = t + step_s;
            if next > end {
                break;
            }
            if next == t {
                // The step vanished into fp granularity at this
                // magnitude; accumulation would never terminate (and an
                // event-driven run with this interval would not either).
                return Err(ConfigError::NonPositive {
                    field: "timeline.step_s (at horizon magnitude)",
                    value: step_s,
                }
                .into());
            }
            times.push(next);
            t = next;
        }

        // Fan the snapshot builds out; output is in tick order and
        // independent of the worker count (the RNG substream is unused —
        // providers are deterministic functions of time).
        let graphs: Vec<Graph> =
            parallel_map_seeded(&times, threads, 0, |&t, _rng| provider.topology_at(t));
        let pairs: Vec<usize> = (1..graphs.len()).collect();
        let deltas = parallel_map_seeded(&pairs, threads, 0, |&k, _rng| {
            GraphDelta::between(&graphs[k - 1], &graphs[k])
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;

        let mut graphs = graphs;
        let base = graphs.swap_remove(0);
        Ok(TopologyTimeline {
            start_s,
            step_s,
            times,
            base,
            deltas,
        })
    }

    /// The first tick's instant.
    pub fn start_s(&self) -> f64 {
        self.start_s
    }

    /// Seconds between consecutive ticks.
    pub fn step_s(&self) -> f64 {
        self.step_s
    }

    /// Number of precomputed instants (≥ 1; the base counts).
    pub fn tick_count(&self) -> usize {
        self.times.len()
    }

    /// Number of stored deltas (`tick_count() - 1`).
    pub fn delta_count(&self) -> usize {
        self.deltas.len()
    }

    /// The precomputed tick instants, ascending.
    pub fn tick_times(&self) -> &[f64] {
        &self.times
    }

    /// The snapshot at the first tick.
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// The delta patching tick `k`'s snapshot into tick `k + 1`'s, or
    /// `None` past the horizon.
    pub fn delta(&self, k: usize) -> Option<&GraphDelta> {
        self.deltas.get(k)
    }

    /// Total changed adjacency rows across all deltas — the size of the
    /// timeline beyond its base graph.
    pub fn total_changed_rows(&self) -> usize {
        self.deltas.iter().map(GraphDelta::row_count).sum()
    }

    /// Index of the last tick at or before `t_s` (clamped to the first
    /// tick for earlier instants).
    pub fn tick_index_at(&self, t_s: f64) -> usize {
        self.times
            .partition_point(|&tt| tt <= t_s)
            .saturating_sub(1)
    }

    /// The snapshot governing instant `t_s`: the provider's graph at
    /// the last tick at or before `t_s`, reconstructed bit-identically
    /// by replaying deltas onto a clone of the base.
    pub fn graph_at(&self, t_s: f64) -> Graph {
        let k = self.tick_index_at(t_s);
        let mut g = self.base.clone();
        for d in &self.deltas[..k] {
            g.apply_delta(d)
                .expect("consecutive timeline deltas always chain");
        }
        g
    }

    /// The combined delta from the snapshot governing `t0_s` to the one
    /// governing `t1_s` (inverted when `t1_s` precedes `t0_s`; empty
    /// when both fall in the same tick).
    pub fn delta_between(&self, t0_s: f64, t1_s: f64) -> GraphDelta {
        let (i, j) = (self.tick_index_at(t0_s), self.tick_index_at(t1_s));
        let (lo, hi) = (i.min(j), i.max(j));
        let mut acc = GraphDelta::empty(self.base.satellite_count(), self.base.station_count());
        for d in &self.deltas[lo..hi] {
            acc = acc
                .then(d)
                .expect("consecutive timeline deltas always chain");
        }
        if i <= j {
            acc
        } else {
            acc.inverted()
        }
    }
}

impl TopologyProvider for TopologyTimeline {
    fn topology_at(&self, t_s: f64) -> Graph {
        self.graph_at(t_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkTech;

    /// A deterministic synthetic provider: a 4-node ring whose "moving"
    /// chord flips endpoints every 10 s and whose latency drifts with t.
    fn provider(t: f64) -> Graph {
        let mut g = Graph::new(3, 1);
        g.add_bidirectional(
            0usize,
            1usize,
            0.001 + t * 1e-6,
            1e6,
            0u32,
            0u32,
            LinkTech::Rf,
        );
        g.add_bidirectional(1usize, 2usize, 0.002, 1e6, 0u32, 0u32, LinkTech::Rf);
        if (t / 10.0).floor() as i64 % 2 == 0 {
            g.add_bidirectional(2usize, 3usize, 0.003, 1e7, 0u32, 1u32, LinkTech::Rf);
        } else {
            g.add_bidirectional(0usize, 3usize, 0.004, 1e7, 0u32, 1u32, LinkTech::Rf);
        }
        g
    }

    #[test]
    fn ticks_cover_the_horizon_inclusively() {
        let tl = TopologyTimeline::build(&provider, 0.0, 10.0, 30.0, 1).unwrap();
        assert_eq!(tl.tick_times(), &[0.0, 10.0, 20.0, 30.0]);
        assert_eq!(tl.tick_count(), 4);
        assert_eq!(tl.delta_count(), 3);
        // A horizon that is not a multiple of the step stops short.
        let tl = TopologyTimeline::build(&provider, 0.0, 10.0, 29.0, 1).unwrap();
        assert_eq!(tl.tick_times(), &[0.0, 10.0, 20.0]);
        // Zero horizon: just the base.
        let tl = TopologyTimeline::build(&provider, 5.0, 10.0, 0.0, 1).unwrap();
        assert_eq!(tl.tick_count(), 1);
        assert_eq!(tl.base(), &provider(5.0));
    }

    #[test]
    fn graph_at_matches_provider_at_every_tick() {
        let tl = TopologyTimeline::build(&provider, 0.0, 10.0, 50.0, 2).unwrap();
        for &t in tl.tick_times() {
            assert_eq!(tl.graph_at(t), provider(t), "tick at t={t}");
        }
        // Between ticks the floor tick governs; before the start the
        // base governs.
        assert_eq!(tl.graph_at(14.9), provider(10.0));
        assert_eq!(tl.graph_at(-3.0), provider(0.0));
        assert_eq!(tl.graph_at(1e9), provider(50.0));
    }

    #[test]
    fn build_is_thread_count_invariant() {
        let serial = TopologyTimeline::build(&provider, 0.0, 5.0, 60.0, 1).unwrap();
        for threads in [2, 4, 8] {
            let par = TopologyTimeline::build(&provider, 0.0, 5.0, 60.0, threads).unwrap();
            assert_eq!(par.base(), serial.base(), "threads={threads}");
            assert_eq!(par.tick_times(), serial.tick_times());
            for k in 0..serial.delta_count() {
                assert_eq!(
                    par.delta(k),
                    serial.delta(k),
                    "delta {k}, threads={threads}"
                );
            }
        }
    }

    #[test]
    fn delta_between_composes_and_inverts() {
        let tl = TopologyTimeline::build(&provider, 0.0, 10.0, 40.0, 1).unwrap();
        let fwd = tl.delta_between(0.0, 30.0);
        let mut g = tl.base().clone();
        g.apply_delta(&fwd).unwrap();
        assert_eq!(g, provider(30.0));
        g.apply_delta(&tl.delta_between(30.0, 0.0)).unwrap();
        assert_eq!(g, provider(0.0));
        assert!(tl.delta_between(12.0, 17.0).is_empty(), "same tick");
    }

    #[test]
    fn provider_trait_is_interchangeable() {
        fn sample<P: TopologyProvider>(p: &P, t: f64) -> Graph {
            p.topology_at(t)
        }
        let tl = TopologyTimeline::build(&provider, 0.0, 10.0, 40.0, 1).unwrap();
        assert_eq!(sample(&provider, 20.0), sample(&tl, 20.0));
        // Dyn-compatible too (the driver holds `&dyn TopologyProvider`).
        let dynamic: &dyn TopologyProvider = &tl;
        assert_eq!(dynamic.topology_at(20.0), provider(20.0));
    }

    #[test]
    fn build_rejects_bad_horizons() {
        let err = |r: Result<TopologyTimeline, TimelineError>| r.unwrap_err();
        assert!(matches!(
            err(TopologyTimeline::build(&provider, 0.0, 0.0, 10.0, 1)),
            TimelineError::Config(ConfigError::NonPositive { .. })
        ));
        assert!(matches!(
            err(TopologyTimeline::build(&provider, 0.0, -1.0, 10.0, 1)),
            TimelineError::Config(ConfigError::NonPositive { .. })
        ));
        assert!(matches!(
            err(TopologyTimeline::build(&provider, 0.0, f64::NAN, 10.0, 1)),
            TimelineError::Config(ConfigError::NotFinite { .. })
        ));
        assert!(matches!(
            err(TopologyTimeline::build(&provider, 0.0, 10.0, -1.0, 1)),
            TimelineError::Config(ConfigError::Negative { .. })
        ));
        assert!(matches!(
            err(TopologyTimeline::build(
                &provider,
                f64::INFINITY,
                10.0,
                1.0,
                1
            )),
            TimelineError::Config(ConfigError::NotFinite { .. })
        ));
        // A step that vanishes at the horizon's magnitude is rejected,
        // not an infinite loop.
        assert!(matches!(
            err(TopologyTimeline::build(&provider, 1e18, 1e-3, 10.0, 1)),
            TimelineError::Config(ConfigError::NonPositive { .. })
        ));
        let display = format!(
            "{}",
            err(TopologyTimeline::build(&provider, 0.0, 0.0, 10.0, 1))
        );
        assert!(display.contains("timeline.step_s"), "{display}");
    }

    #[test]
    fn build_rejects_roster_changes() {
        let shrinking = |t: f64| {
            if t < 5.0 {
                provider(t)
            } else {
                Graph::new(1, 0)
            }
        };
        assert!(matches!(
            TopologyTimeline::build(&shrinking, 0.0, 10.0, 20.0, 1),
            Err(TimelineError::Topology(TopologyError::ShapeMismatch { .. }))
        ));
    }

    #[test]
    fn total_changed_rows_reflects_churn() {
        let tl = TopologyTimeline::build(&provider, 0.0, 10.0, 40.0, 1).unwrap();
        assert!(tl.total_changed_rows() > 0);
        let frozen = |_t: f64| provider(0.0);
        let tl = TopologyTimeline::build(&frozen, 0.0, 10.0, 40.0, 1).unwrap();
        assert_eq!(tl.total_changed_rows(), 0);
        assert!(tl.delta(0).unwrap().is_empty());
    }
}
