//! ISL feasibility and snapshot construction.
//!
//! Turns orbital state + hardware classes into the [`Graph`] the routers
//! run on: which satellite pairs can link (range, line of sight, terminal
//! count), at what capacity (RF vs optical link budgets from
//! `openspace-phy`), and which satellites see which ground stations.
//!
//! # Range-gated candidate enumeration
//!
//! Testing all `N(N−1)/2` satellite pairs per snapshot is the scaling
//! wall for mega-constellation runs. [`build_snapshot_from_samples`]
//! therefore buckets satellites into a coarse uniform grid with cell
//! edge `c = max_isl_range_m · (1 + 1e-6)` and only tests pairs sharing
//! a cell or in one of the 26 adjacent cells. The candidate set is
//! **provably unchanged** from the exhaustive sweep in
//! [`build_snapshot_from_samples_dense`]:
//!
//! * Any pair the dense sweep accepts satisfies
//!   `|pᵢ − pⱼ| ≤ max_isl_range_m`, so each coordinate differs by at
//!   most `c / (1 + 1e-6)`. Exact cell quotients then differ by at most
//!   `(1 + 1e-6)⁻¹ < 1 − 9e-7`. The fast path only engages when every
//!   `|coordinate| / c ≤ 1e9`, so each *computed* quotient is off by at
//!   most `1e9 · 2⁻⁵² ≈ 2.3e-7`; computed quotients of an in-range pair
//!   therefore differ by `< 1 − 9e-7 + 4.6e-7 < 1`, which forces their
//!   `floor`s to differ by at most 1 per axis — the pair is enumerated.
//!   When the precondition fails (non-finite positions, infinite or
//!   absurdly small range), the builder falls back to the exhaustive
//!   sweep: same output, no pruning.
//! * Every enumerated pair is still tested with the *identical*
//!   range-and-line-of-sight predicate (evaluated with the lower index
//!   first, exactly as the dense loops do), so extra candidates from the
//!   inflated cell edge change nothing.
//! * Per-satellite candidate lists are sorted by
//!   `(distance, peer index)` before truncation. The dense sweep pushes
//!   peers in ascending index order and then stable-sorts by distance —
//!   the same lexicographic order — so neighbour ranking, truncation,
//!   and the mutual-selection loop see bit-identical lists regardless of
//!   the order the grid discovered them in. (Distance bits don't depend
//!   on operand order: `|a−b|` and `|b−a|` agree exactly in IEEE
//!   arithmetic.)
//!
//! The ground-link loop keeps its dense station×satellite shape but
//! hoists a per-station **max-slant-range prune** in front of the
//! `asin`-based elevation test: a satellite visible at elevation
//! `≥ mask` from a site at geocentric radius `R` is within
//! `slant_range_at_elevation_m(R, r_max, mask)` of it, where `r_max` is
//! the fleet's maximum geocentric radius (the pivot range grows with
//! satellite radius and shrinks with elevation). The gate is computed
//! from the *actual* `|ground|` and `|sat|` radii — immune to the
//! equatorial/mean Earth-radius convention split documented in
//! `openspace_orbit::visibility` — and inflated by `1e-9` relative,
//! several orders of magnitude beyond the fp error of a squared-norm
//! comparison, so no visible satellite is ever pruned (a mask outside
//! `[−π/2, π/2]` is clamped toward zero, which only widens the gate).
//! Pairs that survive pruning are decided by the same elevation
//! expression as before via [`visible_slant_range_m`], which also
//! returns the slant range from the one vector norm it computes.
//!
//! Equivalence is pinned by `tests/tests/snapshot_equivalence.rs`:
//! graph equality (including edge bit patterns) between the gated and
//! dense builders over ≥128 seeded random scenarios.

use crate::topology::{Graph, GraphDelta, LinkTech, TopologyError};
use openspace_orbit::constants::SPEED_OF_LIGHT_M_PER_S;
use openspace_orbit::ephemeris::EphemerisSample;
use openspace_orbit::frames::{ecef_to_eci, eci_to_ecef, Vec3};
use openspace_orbit::propagator::Propagator;
use openspace_orbit::visibility::{
    is_visible, line_of_sight_with_clearance, slant_range_at_elevation_m, visible_slant_range_m,
};
use openspace_phy::bands::RfBand;
use openspace_phy::linkbudget::{RfLink, RfTerminal};
use openspace_phy::optical::{achievable_rate_bps as optical_rate_bps, OpticalTerminal};
use openspace_telemetry::{NullRecorder, Recorder};
use std::collections::BTreeMap;

/// A satellite as the topology builder sees it.
#[derive(Debug, Clone, Copy)]
pub struct SatNode {
    /// Its orbit.
    pub propagator: Propagator,
    /// Owning operator (plain id; the core crate maps identities).
    pub operator: u32,
    /// Whether it carries laser terminals.
    pub has_optical: bool,
}

/// A ground station as the topology builder sees it.
#[derive(Debug, Clone, Copy)]
pub struct GroundNode {
    /// ECEF position (m).
    pub position_ecef: Vec3,
    /// Owning operator.
    pub operator: u32,
}

/// Parameters governing snapshot construction.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotParams {
    /// Hard ISL range limit (m) — beyond this no pairing is attempted
    /// even with line of sight (beam budgets close the link first).
    pub max_isl_range_m: f64,
    /// Required ray clearance above the surface (m) for ISLs.
    pub los_clearance_m: f64,
    /// Whether ISLs require line of sight at all. `true` for physical
    /// operation; `false` reproduces "simplified simulation" setups that
    /// treat the ISL graph as purely distance-based (the paper's §4).
    pub require_los: bool,
    /// Maximum ISL neighbours per satellite (terminal count). Nearest
    /// neighbours win.
    pub max_isl_per_sat: usize,
    /// Minimum elevation (rad) for ground links.
    pub min_elevation_rad: f64,
    /// RF terminal class used for RF ISL budgets.
    pub rf_terminal: RfTerminal,
    /// RF band for ISLs.
    pub isl_band: RfBand,
    /// Optical terminal class used when both ends have lasers.
    pub optical_terminal: OpticalTerminal,
    /// Ground-link capacity (bit/s) — gateway-class, modeled as constant
    /// (the gateway dish dominates the budget).
    pub ground_link_bps: f64,
}

impl Default for SnapshotParams {
    fn default() -> Self {
        Self {
            max_isl_range_m: 5_000_000.0,
            los_clearance_m: 80_000.0,
            require_los: true,
            max_isl_per_sat: 4,
            min_elevation_rad: 10f64.to_radians(),
            rf_terminal: RfTerminal::midsat(),
            isl_band: RfBand::S,
            optical_terminal: OpticalTerminal::conlct80_class(),
            ground_link_bps: 500.0e6,
        }
    }
}

/// Capacity (bit/s) of an ISL between two satellites `distance_m` apart,
/// choosing optical when both ends have terminals, RF otherwise.
pub fn isl_capacity_bps(
    a_optical: bool,
    b_optical: bool,
    distance_m: f64,
    params: &SnapshotParams,
) -> (f64, LinkTech) {
    if a_optical && b_optical {
        let rate = optical_rate_bps(
            &params.optical_terminal,
            &params.optical_terminal,
            distance_m,
        );
        (rate, LinkTech::Optical)
    } else {
        let link = RfLink {
            tx: params.rf_terminal,
            rx: params.rf_terminal,
            band: params.isl_band,
            distance_m,
            extra_loss_db: 0.0,
        };
        (link.achievable_rate_bps(), LinkTech::Rf)
    }
}

/// Build the topology snapshot at time `t_s`.
///
/// Satellite nodes come first (`0..sats.len()`), then stations. ISLs are
/// chosen greedily: each satellite ranks in-range, in-sight peers by
/// distance and keeps at most `max_isl_per_sat`; a link exists when
/// *both* ends keep each other (mutual selection, matching how terminal
/// budgets bind on both spacecraft).
pub fn build_snapshot(
    t_s: f64,
    sats: &[SatNode],
    stations: &[GroundNode],
    params: &SnapshotParams,
) -> Graph {
    build_snapshot_recorded(t_s, sats, stations, params, &mut NullRecorder)
}

/// [`build_snapshot`] with telemetry — see
/// [`build_snapshot_from_samples_recorded`] for the counters.
pub fn build_snapshot_recorded(
    t_s: f64,
    sats: &[SatNode],
    stations: &[GroundNode],
    params: &SnapshotParams,
    rec: &mut dyn Recorder,
) -> Graph {
    let samples: Vec<EphemerisSample> = sats
        .iter()
        .map(|s| {
            let eci = s.propagator.position_eci(t_s);
            EphemerisSample {
                eci,
                ecef: eci_to_ecef(eci, t_s),
            }
        })
        .collect();
    build_snapshot_from_samples_recorded(sats, &samples, stations, params, rec)
}

/// [`build_snapshot`] with the per-satellite ephemeris already in hand —
/// the entry point for callers holding an
/// [`openspace_orbit::ephemeris::EphemerisCache`], which skips the
/// propagation and frame rotations entirely on cache hits.
///
/// `samples[i]` must be satellite `i`'s state at the snapshot instant;
/// the result is identical to [`build_snapshot`] at that instant.
pub fn build_snapshot_from_samples(
    sats: &[SatNode],
    samples: &[EphemerisSample],
    stations: &[GroundNode],
    params: &SnapshotParams,
) -> Graph {
    build_snapshot_from_samples_recorded(sats, samples, stations, params, &mut NullRecorder)
}

/// Relative inflation of the grid cell edge over `max_isl_range_m`,
/// large enough that — combined with the `|coord|/cell ≤ 1e9` fast-path
/// precondition — fp rounding of the cell quotients can never push an
/// in-range pair beyond adjacent cells (see the module docs).
const CELL_MARGIN: f64 = 1e-6;

/// Quotient cap for the grid fast path: with coordinates at most
/// `1e9` cells from the origin, a cell quotient carries at most
/// `1e9 · 2⁻⁵² ≈ 2.3e-7` of absolute rounding error, comfortably inside
/// [`CELL_MARGIN`].
const MAX_CELL_QUOTIENT: f64 = 1e9;

/// Relative inflation of the ground-link range gate: several orders of
/// magnitude above the fp error of the squared-norm comparison it
/// guards, several below anything that would admit extra work.
const GROUND_GATE_MARGIN: f64 = 1e-9;

/// The 13 "forward" neighbour offsets: half of the 26 adjacent cells,
/// chosen lexicographically positive so each unordered cell pair is
/// visited exactly once.
const FORWARD_OFFSETS: [(i64, i64, i64); 13] = [
    (0, 0, 1),
    (0, 1, -1),
    (0, 1, 0),
    (0, 1, 1),
    (1, -1, -1),
    (1, -1, 0),
    (1, -1, 1),
    (1, 0, -1),
    (1, 0, 0),
    (1, 0, 1),
    (1, 1, -1),
    (1, 1, 0),
    (1, 1, 1),
];

/// Grid cell edge for the fast path, or `None` when the preconditions
/// fail and the builder must fall back to the exhaustive sweep
/// (infinite or non-positive range — `f64::INFINITY` is how the
/// "simplified simulation" study disables the range cut — or positions
/// too many cells from the origin for exact adjacency).
fn grid_cell_edge_m(max_isl_range_m: f64, pos_eci: &[Vec3]) -> Option<f64> {
    let cell = max_isl_range_m * (1.0 + CELL_MARGIN);
    if !cell.is_finite() || cell <= 0.0 {
        return None;
    }
    let mut max_abs: f64 = 0.0;
    for p in pos_eci {
        max_abs = max_abs.max(p.x.abs()).max(p.y.abs()).max(p.z.abs());
    }
    (max_abs.is_finite() && max_abs / cell <= MAX_CELL_QUOTIENT).then_some(cell)
}

/// [`build_snapshot_from_samples`] with telemetry: counts
/// `snapshot.pairs_tested` / `snapshot.pairs_pruned` (satellite pairs
/// that reached / never reached the range-and-LOS predicate) and
/// `snapshot.ground_tested` / `snapshot.ground_pruned` (station–satellite
/// pairs that reached / never reached the elevation test).
pub fn build_snapshot_from_samples_recorded(
    sats: &[SatNode],
    samples: &[EphemerisSample],
    stations: &[GroundNode],
    params: &SnapshotParams,
    rec: &mut dyn Recorder,
) -> Graph {
    assert_eq!(sats.len(), samples.len(), "one sample per satellite");
    let n = sats.len();
    let mut g = Graph::new(n, stations.len());
    let pos_eci: Vec<Vec3> = samples.iter().map(|s| s.eci).collect();

    // Candidate neighbour lists per satellite. The closure applies the
    // exact dense predicate to one `i < j` pair.
    let mut candidates: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    let mut tested: u64 = 0;
    let mut test_pair = |i: usize, j: usize, candidates: &mut Vec<Vec<(usize, f64)>>| {
        debug_assert!(i < j);
        tested += 1;
        let d = pos_eci[i].distance(pos_eci[j]);
        if d <= params.max_isl_range_m
            && (!params.require_los
                || line_of_sight_with_clearance(pos_eci[i], pos_eci[j], params.los_clearance_m))
        {
            candidates[i].push((j, d));
            candidates[j].push((i, d));
        }
    };
    match grid_cell_edge_m(params.max_isl_range_m, &pos_eci) {
        Some(cell) => {
            let mut cells: BTreeMap<(i64, i64, i64), Vec<usize>> = BTreeMap::new();
            for (i, p) in pos_eci.iter().enumerate() {
                let key = (
                    (p.x / cell).floor() as i64,
                    (p.y / cell).floor() as i64,
                    (p.z / cell).floor() as i64,
                );
                cells.entry(key).or_default().push(i);
            }
            // BTreeMap iteration is key-ordered, so enumeration order is
            // deterministic — though the per-satellite sort below makes
            // the output independent of it anyway.
            for (&key, members) in &cells {
                for (a, &i) in members.iter().enumerate() {
                    for &j in &members[a + 1..] {
                        test_pair(i, j, &mut candidates);
                    }
                }
                for (dx, dy, dz) in FORWARD_OFFSETS {
                    if let Some(other) = cells.get(&(key.0 + dx, key.1 + dy, key.2 + dz)) {
                        for &i in members {
                            for &j in other {
                                test_pair(i.min(j), i.max(j), &mut candidates);
                            }
                        }
                    }
                }
            }
        }
        None => {
            for i in 0..n {
                for j in (i + 1)..n {
                    test_pair(i, j, &mut candidates);
                }
            }
        }
    }
    let total_pairs = (n as u64) * (n as u64).saturating_sub(1) / 2;
    rec.add("snapshot.pairs_tested", tested);
    rec.add("snapshot.pairs_pruned", total_pairs - tested);

    for c in candidates.iter_mut() {
        // (distance, peer index): exactly the order the dense sweep's
        // stable distance sort leaves its index-ascending pushes in.
        c.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        c.truncate(params.max_isl_per_sat);
    }
    // Mutual selection.
    for i in 0..n {
        for &(j, d) in &candidates[i] {
            if j > i && candidates[j].iter().any(|&(k, _)| k == i) {
                let (cap, tech) =
                    isl_capacity_bps(sats[i].has_optical, sats[j].has_optical, d, params);
                if cap > 0.0 {
                    g.add_bidirectional(
                        i,
                        j,
                        d / SPEED_OF_LIGHT_M_PER_S,
                        cap,
                        sats[i].operator,
                        sats[j].operator,
                        tech,
                    );
                }
            }
        }
    }

    // Ground links: every station links to every visible satellite,
    // behind the per-station max-slant-range prune (module docs).
    let r_max_fleet = samples
        .iter()
        .map(|s| s.ecef.norm())
        .fold(f64::NEG_INFINITY, f64::max);
    let mask = params
        .min_elevation_rad
        .clamp(-std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_2);
    let mut ground_tested: u64 = 0;
    let mut ground_pruned: u64 = 0;
    for (gi, st) in stations.iter().enumerate() {
        let gs_node = g.station_node(gi);
        let site_radius = st.position_ecef.norm();
        let gate_sq = if site_radius > 0.0 && r_max_fleet >= site_radius {
            let gate = slant_range_at_elevation_m(site_radius, r_max_fleet, mask)
                * (1.0 + GROUND_GATE_MARGIN);
            gate.is_finite().then_some(gate * gate)
        } else {
            None
        };
        for (si, _s) in sats.iter().enumerate() {
            let sat_ecef = samples[si].ecef;
            if let Some(gate_sq) = gate_sq {
                if (sat_ecef - st.position_ecef).norm_sq() > gate_sq {
                    ground_pruned += 1;
                    continue;
                }
            }
            ground_tested += 1;
            if let Some(d) =
                visible_slant_range_m(st.position_ecef, sat_ecef, params.min_elevation_rad)
            {
                g.add_bidirectional(
                    si,
                    gs_node,
                    d / SPEED_OF_LIGHT_M_PER_S,
                    params.ground_link_bps,
                    sats[si].operator,
                    st.operator,
                    LinkTech::Rf,
                );
            }
        }
    }
    rec.add("snapshot.ground_tested", ground_tested);
    rec.add("snapshot.ground_pruned", ground_pruned);
    g
}

/// The exhaustive reference builder: all `N(N−1)/2` satellite pairs
/// tested, every station×satellite elevation evaluated — the original
/// quadratic sweep, kept verbatim as ground truth for the equivalence
/// property test and the paired bench kernels. Production callers use
/// [`build_snapshot_from_samples`].
pub fn build_snapshot_from_samples_dense(
    sats: &[SatNode],
    samples: &[EphemerisSample],
    stations: &[GroundNode],
    params: &SnapshotParams,
) -> Graph {
    assert_eq!(sats.len(), samples.len(), "one sample per satellite");
    let mut g = Graph::new(sats.len(), stations.len());
    let pos_eci: Vec<Vec3> = samples.iter().map(|s| s.eci).collect();

    // Candidate neighbour lists per satellite.
    let mut candidates: Vec<Vec<(usize, f64)>> = vec![Vec::new(); sats.len()];
    for i in 0..sats.len() {
        for j in (i + 1)..sats.len() {
            let d = pos_eci[i].distance(pos_eci[j]);
            if d <= params.max_isl_range_m
                && (!params.require_los
                    || line_of_sight_with_clearance(pos_eci[i], pos_eci[j], params.los_clearance_m))
            {
                candidates[i].push((j, d));
                candidates[j].push((i, d));
            }
        }
    }
    for c in candidates.iter_mut() {
        c.sort_by(|a, b| a.1.total_cmp(&b.1));
        c.truncate(params.max_isl_per_sat);
    }
    // Mutual selection.
    for i in 0..sats.len() {
        for &(j, d) in &candidates[i] {
            if j > i && candidates[j].iter().any(|&(k, _)| k == i) {
                let (cap, tech) =
                    isl_capacity_bps(sats[i].has_optical, sats[j].has_optical, d, params);
                if cap > 0.0 {
                    g.add_bidirectional(
                        i,
                        j,
                        d / SPEED_OF_LIGHT_M_PER_S,
                        cap,
                        sats[i].operator,
                        sats[j].operator,
                        tech,
                    );
                }
            }
        }
    }

    // Ground links: every station links to every visible satellite.
    for (gi, st) in stations.iter().enumerate() {
        let gs_node = g.station_node(gi);
        for (si, _s) in sats.iter().enumerate() {
            let sat_ecef = samples[si].ecef;
            if is_visible(st.position_ecef, sat_ecef, params.min_elevation_rad) {
                let d = st.position_ecef.distance(sat_ecef);
                g.add_bidirectional(
                    si,
                    gs_node,
                    d / SPEED_OF_LIGHT_M_PER_S,
                    params.ground_link_bps,
                    sats[si].operator,
                    st.operator,
                    LinkTech::Rf,
                );
            }
        }
    }
    g
}

/// Build the snapshot at `t_s` and express it as a [`GraphDelta`]
/// against `prev` (the snapshot at some earlier instant of the same
/// constellation). Applying the result to `prev` yields a graph
/// bit-identical to [`build_snapshot`]`(t_s, ..)` — the delta is
/// extracted *from* a fresh build, so there is no separate incremental
/// code path that could drift from the reference builder.
///
/// Fails with [`TopologyError::ShapeMismatch`] when `prev` has a
/// different node roster than `sats`/`stations` describe.
pub fn snapshot_delta(
    t_s: f64,
    prev: &Graph,
    sats: &[SatNode],
    stations: &[GroundNode],
    params: &SnapshotParams,
) -> Result<GraphDelta, TopologyError> {
    snapshot_delta_recorded(t_s, prev, sats, stations, params, &mut NullRecorder)
}

/// [`snapshot_delta`] with telemetry — the underlying snapshot build
/// reports its `snapshot.*` gating counters through `rec`.
pub fn snapshot_delta_recorded(
    t_s: f64,
    prev: &Graph,
    sats: &[SatNode],
    stations: &[GroundNode],
    params: &SnapshotParams,
    rec: &mut dyn Recorder,
) -> Result<GraphDelta, TopologyError> {
    let next = build_snapshot_recorded(t_s, sats, stations, params, rec);
    GraphDelta::between(prev, &next)
}

/// The satellite (index into `sats`) nearest to a ground ECEF point that
/// is visible above `min_elevation_rad` at `t_s`, with its slant range.
pub fn best_access_satellite(
    ground_ecef: Vec3,
    sats: &[SatNode],
    t_s: f64,
    min_elevation_rad: f64,
) -> Option<(usize, f64)> {
    let ecefs: Vec<Vec3> = sats
        .iter()
        .map(|s| eci_to_ecef(s.propagator.position_eci(t_s), t_s))
        .collect();
    best_access_from_ecef(ground_ecef, &ecefs, min_elevation_rad)
}

/// [`best_access_satellite`] over already-computed satellite ECEF
/// positions (e.g. from an ephemeris cache).
///
/// Each candidate costs a single vector norm: the combined
/// [`visible_slant_range_m`] helper makes the visibility decision and
/// returns the slant range from the same `|sat − ground|` evaluation
/// (bitwise equal to the former `is_visible`-then-`distance` pair of
/// calls).
pub fn best_access_from_ecef(
    ground_ecef: Vec3,
    sat_ecef: &[Vec3],
    min_elevation_rad: f64,
) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &se) in sat_ecef.iter().enumerate() {
        if let Some(d) = visible_slant_range_m(ground_ecef, se, min_elevation_rad) {
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
    }
    best
}

/// Convenience: the ECI position of a ground ECEF point at time `t_s`
/// (for mixing ground points into ECI-frame computations).
pub fn ground_eci(ground_ecef: Vec3, t_s: f64) -> Vec3 {
    ecef_to_eci(ground_ecef, t_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    use openspace_orbit::frames::{geodetic_to_ecef, Geodetic};
    use openspace_orbit::propagator::PerturbationModel;
    use openspace_orbit::walker::{iridium_params, walker_star};

    fn iridium_nodes(optical: bool) -> Vec<SatNode> {
        walker_star(&iridium_params())
            .unwrap()
            .into_iter()
            .enumerate()
            .map(|(i, el)| SatNode {
                propagator: Propagator::new(el, PerturbationModel::TwoBody),
                operator: (i % 4) as u32,
                has_optical: optical,
            })
            .collect()
    }

    fn station(lat: f64, lon: f64) -> GroundNode {
        GroundNode {
            position_ecef: geodetic_to_ecef(Geodetic::from_degrees(lat, lon, 0.0)),
            operator: 99,
        }
    }

    #[test]
    fn iridium_snapshot_is_connected() {
        let sats = iridium_nodes(false);
        let g = build_snapshot(0.0, &sats, &[], &SnapshotParams::default());
        let reach = g.reachable_from(0);
        let count = reach.iter().filter(|&&r| r).count();
        assert_eq!(count, 66, "Iridium ISL mesh must be connected");
    }

    #[test]
    fn degree_bounded_by_terminal_count() {
        let sats = iridium_nodes(false);
        let p = SnapshotParams::default();
        let g = build_snapshot(0.0, &sats, &[], &p);
        for i in 0..66 {
            assert!(
                g.degree(i) <= p.max_isl_per_sat,
                "sat {i} degree {}",
                g.degree(i)
            );
        }
    }

    #[test]
    fn isl_links_are_mutual() {
        let sats = iridium_nodes(false);
        let g = build_snapshot(0.0, &sats, &[], &SnapshotParams::default());
        for i in 0..66 {
            for e in g.edges(i) {
                assert!(
                    g.find_edge(e.to, i).is_some(),
                    "edge {i}->{} not mirrored",
                    e.to
                );
            }
        }
    }

    #[test]
    fn optical_fleet_gets_optical_links() {
        let sats = iridium_nodes(true);
        let g = build_snapshot(0.0, &sats, &[], &SnapshotParams::default());
        let mut saw_optical = false;
        for i in 0..g.satellite_count() {
            for e in g.edges(i) {
                if e.to < g.satellite_count() {
                    assert_eq!(e.technology, LinkTech::Optical);
                    saw_optical = true;
                }
            }
        }
        assert!(saw_optical);
    }

    #[test]
    fn optical_capacity_beats_rf() {
        let p = SnapshotParams::default();
        let d = 2_000_000.0;
        let (rf, t1) = isl_capacity_bps(false, false, d, &p);
        let (opt, t2) = isl_capacity_bps(true, true, d, &p);
        assert_eq!(t1, LinkTech::Rf);
        assert_eq!(t2, LinkTech::Optical);
        assert!(opt > rf * 10.0, "optical {opt} vs rf {rf}");
    }

    #[test]
    fn mixed_pair_falls_back_to_rf() {
        let p = SnapshotParams::default();
        let (_, tech) = isl_capacity_bps(true, false, 1e6, &p);
        assert_eq!(tech, LinkTech::Rf);
    }

    #[test]
    fn stations_link_to_overhead_satellites() {
        let sats = iridium_nodes(false);
        let st = [station(0.0, 0.0), station(45.0, 90.0)];
        let g = build_snapshot(0.0, &sats, &st, &SnapshotParams::default());
        for gi in 0..2 {
            let node = g.station_node(gi);
            assert!(
                g.degree(node) >= 1,
                "station {gi} sees no satellite (degree 0)"
            );
        }
    }

    #[test]
    fn ground_links_respect_elevation_mask() {
        let sats = iridium_nodes(false);
        let st = [station(0.0, 0.0)];
        let strict = SnapshotParams {
            min_elevation_rad: 85f64.to_radians(),
            ..SnapshotParams::default()
        };
        let g_strict = build_snapshot(0.0, &sats, &st, &strict);
        let g_loose = build_snapshot(0.0, &sats, &st, &SnapshotParams::default());
        assert!(
            g_strict.degree(g_strict.station_node(0)) <= g_loose.degree(g_loose.station_node(0))
        );
    }

    #[test]
    fn best_access_satellite_finds_nearest() {
        let sats = iridium_nodes(false);
        let ground = geodetic_to_ecef(Geodetic::from_degrees(10.0, 20.0, 0.0));
        let got = best_access_satellite(ground, &sats, 0.0, 10f64.to_radians());
        if let Some((idx, dist)) = got {
            assert!(idx < sats.len());
            // Nearest visible: verify no other visible sat is closer.
            for (i, s) in sats.iter().enumerate() {
                let se = eci_to_ecef(s.propagator.position_eci(0.0), 0.0);
                if is_visible(ground, se, 10f64.to_radians()) {
                    assert!(ground.distance(se) >= dist - 1e-6, "sat {i} closer");
                }
            }
        } else {
            panic!("Iridium leaves no coverage gap at 10 deg mask");
        }
    }

    #[test]
    fn gated_builder_matches_dense_and_prunes() {
        use openspace_telemetry::MemoryRecorder;
        let sats = iridium_nodes(false);
        let samples: Vec<EphemerisSample> = sats
            .iter()
            .map(|s| {
                let eci = s.propagator.position_eci(1234.0);
                EphemerisSample {
                    eci,
                    ecef: eci_to_ecef(eci, 1234.0),
                }
            })
            .collect();
        let st = [station(0.0, 0.0), station(45.0, 90.0)];
        let params = SnapshotParams::default();
        let mut rec = MemoryRecorder::new();
        let gated = build_snapshot_from_samples_recorded(&sats, &samples, &st, &params, &mut rec);
        let dense = build_snapshot_from_samples_dense(&sats, &samples, &st, &params);
        assert_eq!(gated, dense);
        let tested = rec.counter("snapshot.pairs_tested");
        let pruned = rec.counter("snapshot.pairs_pruned");
        assert_eq!(tested + pruned, 66 * 65 / 2);
        assert!(pruned > 0, "the grid should prune far-apart Iridium pairs");
        assert!(
            rec.counter("snapshot.ground_pruned") > 0,
            "most of the shell is beyond each station's slant-range gate"
        );
    }

    #[test]
    fn infinite_range_falls_back_to_exhaustive_sweep() {
        use openspace_telemetry::MemoryRecorder;
        // The "simplified simulation" study disables the range cut with
        // an infinite max_isl_range_m; the grid cannot bucket that and
        // must fall back to testing every pair.
        let sats = iridium_nodes(false);
        let params = SnapshotParams {
            max_isl_range_m: f64::INFINITY,
            require_los: false,
            ..SnapshotParams::default()
        };
        let mut rec = MemoryRecorder::new();
        let gated = build_snapshot_recorded(0.0, &sats, &[], &params, &mut rec);
        let samples: Vec<EphemerisSample> = sats
            .iter()
            .map(|s| {
                let eci = s.propagator.position_eci(0.0);
                EphemerisSample {
                    eci,
                    ecef: eci_to_ecef(eci, 0.0),
                }
            })
            .collect();
        let dense = build_snapshot_from_samples_dense(&sats, &samples, &[], &params);
        assert_eq!(gated, dense);
        assert_eq!(rec.counter("snapshot.pairs_tested"), 66 * 65 / 2);
        assert_eq!(rec.counter("snapshot.pairs_pruned"), 0);
    }

    #[test]
    fn snapshot_delta_replays_to_fresh_build() {
        let sats = iridium_nodes(false);
        let st = [station(0.0, 0.0)];
        let params = SnapshotParams::default();
        let g0 = build_snapshot(0.0, &sats, &st, &params);
        let d = snapshot_delta(120.0, &g0, &sats, &st, &params).unwrap();
        assert!(!d.is_empty(), "Iridium contacts churn over two minutes");
        let mut patched = g0.clone();
        patched.apply_delta(&d).unwrap();
        assert_eq!(patched, build_snapshot(120.0, &sats, &st, &params));
        // Roster disagreement is an error, not a bad patch.
        assert!(matches!(
            snapshot_delta(120.0, &g0, &sats, &[], &params),
            Err(TopologyError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn empty_constellation_gives_empty_graph() {
        let g = build_snapshot(0.0, &[], &[station(0.0, 0.0)], &SnapshotParams::default());
        assert_eq!(g.edge_count(), 0);
        assert!(best_access_satellite(station(0.0, 0.0).position_ecef, &[], 0.0, 0.0).is_none());
    }
}
