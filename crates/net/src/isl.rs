//! ISL feasibility and snapshot construction.
//!
//! Turns orbital state + hardware classes into the [`Graph`] the routers
//! run on: which satellite pairs can link (range, line of sight, terminal
//! count), at what capacity (RF vs optical link budgets from
//! `openspace-phy`), and which satellites see which ground stations.

use crate::topology::{Graph, LinkTech};
use openspace_orbit::constants::SPEED_OF_LIGHT_M_PER_S;
use openspace_orbit::ephemeris::EphemerisSample;
use openspace_orbit::frames::{ecef_to_eci, eci_to_ecef, Vec3};
use openspace_orbit::propagator::Propagator;
use openspace_orbit::visibility::{is_visible, line_of_sight_with_clearance};
use openspace_phy::bands::RfBand;
use openspace_phy::linkbudget::{RfLink, RfTerminal};
use openspace_phy::optical::{achievable_rate_bps as optical_rate_bps, OpticalTerminal};

/// A satellite as the topology builder sees it.
#[derive(Debug, Clone, Copy)]
pub struct SatNode {
    /// Its orbit.
    pub propagator: Propagator,
    /// Owning operator (plain id; the core crate maps identities).
    pub operator: u32,
    /// Whether it carries laser terminals.
    pub has_optical: bool,
}

/// A ground station as the topology builder sees it.
#[derive(Debug, Clone, Copy)]
pub struct GroundNode {
    /// ECEF position (m).
    pub position_ecef: Vec3,
    /// Owning operator.
    pub operator: u32,
}

/// Parameters governing snapshot construction.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotParams {
    /// Hard ISL range limit (m) — beyond this no pairing is attempted
    /// even with line of sight (beam budgets close the link first).
    pub max_isl_range_m: f64,
    /// Required ray clearance above the surface (m) for ISLs.
    pub los_clearance_m: f64,
    /// Whether ISLs require line of sight at all. `true` for physical
    /// operation; `false` reproduces "simplified simulation" setups that
    /// treat the ISL graph as purely distance-based (the paper's §4).
    pub require_los: bool,
    /// Maximum ISL neighbours per satellite (terminal count). Nearest
    /// neighbours win.
    pub max_isl_per_sat: usize,
    /// Minimum elevation (rad) for ground links.
    pub min_elevation_rad: f64,
    /// RF terminal class used for RF ISL budgets.
    pub rf_terminal: RfTerminal,
    /// RF band for ISLs.
    pub isl_band: RfBand,
    /// Optical terminal class used when both ends have lasers.
    pub optical_terminal: OpticalTerminal,
    /// Ground-link capacity (bit/s) — gateway-class, modeled as constant
    /// (the gateway dish dominates the budget).
    pub ground_link_bps: f64,
}

impl Default for SnapshotParams {
    fn default() -> Self {
        Self {
            max_isl_range_m: 5_000_000.0,
            los_clearance_m: 80_000.0,
            require_los: true,
            max_isl_per_sat: 4,
            min_elevation_rad: 10f64.to_radians(),
            rf_terminal: RfTerminal::midsat(),
            isl_band: RfBand::S,
            optical_terminal: OpticalTerminal::conlct80_class(),
            ground_link_bps: 500.0e6,
        }
    }
}

/// Capacity (bit/s) of an ISL between two satellites `distance_m` apart,
/// choosing optical when both ends have terminals, RF otherwise.
pub fn isl_capacity_bps(
    a_optical: bool,
    b_optical: bool,
    distance_m: f64,
    params: &SnapshotParams,
) -> (f64, LinkTech) {
    if a_optical && b_optical {
        let rate = optical_rate_bps(
            &params.optical_terminal,
            &params.optical_terminal,
            distance_m,
        );
        (rate, LinkTech::Optical)
    } else {
        let link = RfLink {
            tx: params.rf_terminal,
            rx: params.rf_terminal,
            band: params.isl_band,
            distance_m,
            extra_loss_db: 0.0,
        };
        (link.achievable_rate_bps(), LinkTech::Rf)
    }
}

/// Build the topology snapshot at time `t_s`.
///
/// Satellite nodes come first (`0..sats.len()`), then stations. ISLs are
/// chosen greedily: each satellite ranks in-range, in-sight peers by
/// distance and keeps at most `max_isl_per_sat`; a link exists when
/// *both* ends keep each other (mutual selection, matching how terminal
/// budgets bind on both spacecraft).
pub fn build_snapshot(
    t_s: f64,
    sats: &[SatNode],
    stations: &[GroundNode],
    params: &SnapshotParams,
) -> Graph {
    let samples: Vec<EphemerisSample> = sats
        .iter()
        .map(|s| {
            let eci = s.propagator.position_eci(t_s);
            EphemerisSample {
                eci,
                ecef: eci_to_ecef(eci, t_s),
            }
        })
        .collect();
    build_snapshot_from_samples(sats, &samples, stations, params)
}

/// [`build_snapshot`] with the per-satellite ephemeris already in hand —
/// the entry point for callers holding an
/// [`openspace_orbit::ephemeris::EphemerisCache`], which skips the
/// propagation and frame rotations entirely on cache hits.
///
/// `samples[i]` must be satellite `i`'s state at the snapshot instant;
/// the result is identical to [`build_snapshot`] at that instant.
pub fn build_snapshot_from_samples(
    sats: &[SatNode],
    samples: &[EphemerisSample],
    stations: &[GroundNode],
    params: &SnapshotParams,
) -> Graph {
    assert_eq!(sats.len(), samples.len(), "one sample per satellite");
    let mut g = Graph::new(sats.len(), stations.len());
    let pos_eci: Vec<Vec3> = samples.iter().map(|s| s.eci).collect();

    // Candidate neighbour lists per satellite.
    let mut candidates: Vec<Vec<(usize, f64)>> = vec![Vec::new(); sats.len()];
    for i in 0..sats.len() {
        for j in (i + 1)..sats.len() {
            let d = pos_eci[i].distance(pos_eci[j]);
            if d <= params.max_isl_range_m
                && (!params.require_los
                    || line_of_sight_with_clearance(pos_eci[i], pos_eci[j], params.los_clearance_m))
            {
                candidates[i].push((j, d));
                candidates[j].push((i, d));
            }
        }
    }
    for c in candidates.iter_mut() {
        c.sort_by(|a, b| a.1.total_cmp(&b.1));
        c.truncate(params.max_isl_per_sat);
    }
    // Mutual selection.
    for i in 0..sats.len() {
        for &(j, d) in &candidates[i] {
            if j > i && candidates[j].iter().any(|&(k, _)| k == i) {
                let (cap, tech) =
                    isl_capacity_bps(sats[i].has_optical, sats[j].has_optical, d, params);
                if cap > 0.0 {
                    g.add_bidirectional(
                        i,
                        j,
                        d / SPEED_OF_LIGHT_M_PER_S,
                        cap,
                        sats[i].operator,
                        sats[j].operator,
                        tech,
                    );
                }
            }
        }
    }

    // Ground links: every station links to every visible satellite.
    for (gi, st) in stations.iter().enumerate() {
        let gs_node = g.station_node(gi);
        for (si, _s) in sats.iter().enumerate() {
            let sat_ecef = samples[si].ecef;
            if is_visible(st.position_ecef, sat_ecef, params.min_elevation_rad) {
                let d = st.position_ecef.distance(sat_ecef);
                g.add_bidirectional(
                    si,
                    gs_node,
                    d / SPEED_OF_LIGHT_M_PER_S,
                    params.ground_link_bps,
                    sats[si].operator,
                    st.operator,
                    LinkTech::Rf,
                );
            }
        }
    }
    g
}

/// The satellite (index into `sats`) nearest to a ground ECEF point that
/// is visible above `min_elevation_rad` at `t_s`, with its slant range.
pub fn best_access_satellite(
    ground_ecef: Vec3,
    sats: &[SatNode],
    t_s: f64,
    min_elevation_rad: f64,
) -> Option<(usize, f64)> {
    let ecefs: Vec<Vec3> = sats
        .iter()
        .map(|s| eci_to_ecef(s.propagator.position_eci(t_s), t_s))
        .collect();
    best_access_from_ecef(ground_ecef, &ecefs, min_elevation_rad)
}

/// [`best_access_satellite`] over already-computed satellite ECEF
/// positions (e.g. from an ephemeris cache).
pub fn best_access_from_ecef(
    ground_ecef: Vec3,
    sat_ecef: &[Vec3],
    min_elevation_rad: f64,
) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &se) in sat_ecef.iter().enumerate() {
        if is_visible(ground_ecef, se, min_elevation_rad) {
            let d = ground_ecef.distance(se);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
    }
    best
}

/// Convenience: the ECI position of a ground ECEF point at time `t_s`
/// (for mixing ground points into ECI-frame computations).
pub fn ground_eci(ground_ecef: Vec3, t_s: f64) -> Vec3 {
    ecef_to_eci(ground_ecef, t_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    use openspace_orbit::frames::{geodetic_to_ecef, Geodetic};
    use openspace_orbit::propagator::PerturbationModel;
    use openspace_orbit::walker::{iridium_params, walker_star};

    fn iridium_nodes(optical: bool) -> Vec<SatNode> {
        walker_star(&iridium_params())
            .unwrap()
            .into_iter()
            .enumerate()
            .map(|(i, el)| SatNode {
                propagator: Propagator::new(el, PerturbationModel::TwoBody),
                operator: (i % 4) as u32,
                has_optical: optical,
            })
            .collect()
    }

    fn station(lat: f64, lon: f64) -> GroundNode {
        GroundNode {
            position_ecef: geodetic_to_ecef(Geodetic::from_degrees(lat, lon, 0.0)),
            operator: 99,
        }
    }

    #[test]
    fn iridium_snapshot_is_connected() {
        let sats = iridium_nodes(false);
        let g = build_snapshot(0.0, &sats, &[], &SnapshotParams::default());
        let reach = g.reachable_from(0);
        let count = reach.iter().filter(|&&r| r).count();
        assert_eq!(count, 66, "Iridium ISL mesh must be connected");
    }

    #[test]
    fn degree_bounded_by_terminal_count() {
        let sats = iridium_nodes(false);
        let p = SnapshotParams::default();
        let g = build_snapshot(0.0, &sats, &[], &p);
        for i in 0..66 {
            assert!(
                g.degree(i) <= p.max_isl_per_sat,
                "sat {i} degree {}",
                g.degree(i)
            );
        }
    }

    #[test]
    fn isl_links_are_mutual() {
        let sats = iridium_nodes(false);
        let g = build_snapshot(0.0, &sats, &[], &SnapshotParams::default());
        for i in 0..66 {
            for e in g.edges(i) {
                assert!(
                    g.find_edge(e.to, i).is_some(),
                    "edge {i}->{} not mirrored",
                    e.to
                );
            }
        }
    }

    #[test]
    fn optical_fleet_gets_optical_links() {
        let sats = iridium_nodes(true);
        let g = build_snapshot(0.0, &sats, &[], &SnapshotParams::default());
        let mut saw_optical = false;
        for i in 0..g.satellite_count() {
            for e in g.edges(i) {
                if e.to < g.satellite_count() {
                    assert_eq!(e.technology, LinkTech::Optical);
                    saw_optical = true;
                }
            }
        }
        assert!(saw_optical);
    }

    #[test]
    fn optical_capacity_beats_rf() {
        let p = SnapshotParams::default();
        let d = 2_000_000.0;
        let (rf, t1) = isl_capacity_bps(false, false, d, &p);
        let (opt, t2) = isl_capacity_bps(true, true, d, &p);
        assert_eq!(t1, LinkTech::Rf);
        assert_eq!(t2, LinkTech::Optical);
        assert!(opt > rf * 10.0, "optical {opt} vs rf {rf}");
    }

    #[test]
    fn mixed_pair_falls_back_to_rf() {
        let p = SnapshotParams::default();
        let (_, tech) = isl_capacity_bps(true, false, 1e6, &p);
        assert_eq!(tech, LinkTech::Rf);
    }

    #[test]
    fn stations_link_to_overhead_satellites() {
        let sats = iridium_nodes(false);
        let st = [station(0.0, 0.0), station(45.0, 90.0)];
        let g = build_snapshot(0.0, &sats, &st, &SnapshotParams::default());
        for gi in 0..2 {
            let node = g.station_node(gi);
            assert!(
                g.degree(node) >= 1,
                "station {gi} sees no satellite (degree 0)"
            );
        }
    }

    #[test]
    fn ground_links_respect_elevation_mask() {
        let sats = iridium_nodes(false);
        let st = [station(0.0, 0.0)];
        let strict = SnapshotParams {
            min_elevation_rad: 85f64.to_radians(),
            ..SnapshotParams::default()
        };
        let g_strict = build_snapshot(0.0, &sats, &st, &strict);
        let g_loose = build_snapshot(0.0, &sats, &st, &SnapshotParams::default());
        assert!(
            g_strict.degree(g_strict.station_node(0)) <= g_loose.degree(g_loose.station_node(0))
        );
    }

    #[test]
    fn best_access_satellite_finds_nearest() {
        let sats = iridium_nodes(false);
        let ground = geodetic_to_ecef(Geodetic::from_degrees(10.0, 20.0, 0.0));
        let got = best_access_satellite(ground, &sats, 0.0, 10f64.to_radians());
        if let Some((idx, dist)) = got {
            assert!(idx < sats.len());
            // Nearest visible: verify no other visible sat is closer.
            for (i, s) in sats.iter().enumerate() {
                let se = eci_to_ecef(s.propagator.position_eci(0.0), 0.0);
                if is_visible(ground, se, 10f64.to_radians()) {
                    assert!(ground.distance(se) >= dist - 1e-6, "sat {i} closer");
                }
            }
        } else {
            panic!("Iridium leaves no coverage gap at 10 deg mask");
        }
    }

    #[test]
    fn empty_constellation_gives_empty_graph() {
        let g = build_snapshot(0.0, &[], &[station(0.0, 0.0)], &SnapshotParams::default());
        assert_eq!(g.edge_count(), 0);
        assert!(best_access_satellite(station(0.0, 0.0).position_ecef, &[], 0.0, 0.0).is_none());
    }
}
