//! Contact plans: when each satellite is visible from a ground point.
//!
//! Because orbits are public and deterministic (§2.2), contact windows
//! are computable arbitrarily far ahead. The handover predictor and the
//! federation study both consume these plans.

use crate::isl::SatNode;
use openspace_orbit::frames::{eci_to_ecef, Vec3};
use openspace_orbit::visibility::is_visible;
use openspace_sim::ids::SatId;

/// One visibility window of one satellite over a ground point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContactWindow {
    /// Index into the satellite array.
    pub sat_index: SatId,
    /// Window start (s); clamped to the scan start when already visible.
    pub start_s: f64,
    /// Window end (s); clamped to the scan end when still visible.
    pub end_s: f64,
}

impl ContactWindow {
    /// Window duration (s).
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t_s: f64) -> bool {
        (self.start_s..self.end_s).contains(&t_s)
    }
}

/// Compute all contact windows of `sats` over `ground_ecef` in
/// `[t_start_s, t_end_s)`, sampling visibility at `step_s`.
///
/// Windows are sorted by `(start, sat_index)`. Sampling granularity means
/// windows are accurate to ±`step_s`; the experiments use 1–10 s steps,
/// well below LEO pass durations (minutes).
///
/// # Panics
/// Panics if `step_s <= 0` or the interval is inverted.
pub fn contact_plan(
    sats: &[SatNode],
    ground_ecef: Vec3,
    t_start_s: f64,
    t_end_s: f64,
    step_s: f64,
    min_elevation_rad: f64,
) -> Vec<ContactWindow> {
    assert!(step_s > 0.0, "step must be positive");
    assert!(t_end_s >= t_start_s, "interval inverted");
    let steps = ((t_end_s - t_start_s) / step_s).ceil() as usize;
    let mut windows = Vec::new();
    for (si, sat) in sats.iter().enumerate() {
        let mut open: Option<f64> = None;
        for k in 0..=steps {
            let t = (t_start_s + k as f64 * step_s).min(t_end_s);
            let sat_ecef = eci_to_ecef(sat.propagator.position_eci(t), t);
            let vis = is_visible(ground_ecef, sat_ecef, min_elevation_rad);
            match (open, vis) {
                (None, true) => open = Some(t),
                (Some(start), false) => {
                    windows.push(ContactWindow {
                        sat_index: SatId(si),
                        start_s: start,
                        end_s: t,
                    });
                    open = None;
                }
                _ => {}
            }
            if t >= t_end_s {
                break;
            }
        }
        if let Some(start) = open {
            windows.push(ContactWindow {
                sat_index: SatId(si),
                start_s: start,
                end_s: t_end_s,
            });
        }
    }
    windows.sort_by(|a, b| {
        a.start_s
            .total_cmp(&b.start_s)
            .then(a.sat_index.cmp(&b.sat_index))
    });
    windows
}

/// Fraction of `[t_start, t_end)` during which at least one satellite is
/// visible (union of windows).
pub fn coverage_time_fraction(windows: &[ContactWindow], t_start_s: f64, t_end_s: f64) -> f64 {
    assert!(t_end_s > t_start_s, "empty interval");
    // Sweep over sorted window boundaries.
    let mut events: Vec<(f64, i32)> = Vec::with_capacity(windows.len() * 2);
    for w in windows {
        events.push((w.start_s.max(t_start_s), 1));
        events.push((w.end_s.min(t_end_s), -1));
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.cmp(&a.1)));
    let mut covered = 0.0;
    let mut depth = 0;
    let mut last = t_start_s;
    for (t, d) in events {
        if depth > 0 {
            covered += (t - last).max(0.0);
        }
        last = t.max(last);
        depth += d;
    }
    covered / (t_end_s - t_start_s)
}

/// The longest gap (s) with no satellite visible in `[t_start, t_end)`.
pub fn longest_outage_s(windows: &[ContactWindow], t_start_s: f64, t_end_s: f64) -> f64 {
    assert!(t_end_s > t_start_s, "empty interval");
    let mut intervals: Vec<(f64, f64)> = windows
        .iter()
        .map(|w| (w.start_s.max(t_start_s), w.end_s.min(t_end_s)))
        .filter(|(s, e)| e > s)
        .collect();
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut gap: f64 = 0.0;
    let mut horizon = t_start_s;
    for (s, e) in intervals {
        if s > horizon {
            gap = gap.max(s - horizon);
        }
        horizon = horizon.max(e);
    }
    gap.max(t_end_s - horizon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use openspace_orbit::constants::km_to_m;
    use openspace_orbit::frames::{geodetic_to_ecef, Geodetic};
    use openspace_orbit::kepler::OrbitalElements;
    use openspace_orbit::propagator::{PerturbationModel, Propagator};
    use openspace_orbit::walker::{iridium_params, walker_star};

    fn one_sat() -> Vec<SatNode> {
        vec![SatNode {
            propagator: Propagator::new(
                OrbitalElements::circular(km_to_m(780.0), 86.4, 0.0, 0.0).unwrap(),
                PerturbationModel::TwoBody,
            ),
            operator: 0,
            has_optical: false,
        }]
    }

    fn iridium() -> Vec<SatNode> {
        walker_star(&iridium_params())
            .unwrap()
            .into_iter()
            .map(|el| SatNode {
                propagator: Propagator::new(el, PerturbationModel::TwoBody),
                operator: 0,
                has_optical: false,
            })
            .collect()
    }

    fn equator_ground() -> Vec3 {
        geodetic_to_ecef(Geodetic::from_degrees(0.0, 0.0, 0.0))
    }

    #[test]
    fn single_sat_has_periodic_windows() {
        let sats = one_sat();
        let day = 86_400.0;
        let windows = contact_plan(&sats, equator_ground(), 0.0, day, 5.0, 10f64.to_radians());
        assert!(
            (2..=10).contains(&windows.len()),
            "one LEO sat over a day: got {} windows",
            windows.len()
        );
        for w in &windows {
            assert!(w.duration_s() > 60.0, "pass too short: {}", w.duration_s());
            assert!(
                w.duration_s() < 1_000.0,
                "pass too long: {}",
                w.duration_s()
            );
        }
    }

    #[test]
    fn windows_are_sorted_and_disjoint_per_sat() {
        let sats = one_sat();
        let windows = contact_plan(&sats, equator_ground(), 0.0, 86_400.0, 5.0, 0.1);
        for w in windows.windows(2) {
            assert!(w[0].start_s <= w[1].start_s);
            assert!(w[0].end_s <= w[1].start_s, "overlap for one satellite");
        }
    }

    #[test]
    fn iridium_has_continuous_coverage() {
        let sats = iridium();
        let windows = contact_plan(
            &sats,
            equator_ground(),
            0.0,
            7_200.0,
            10.0,
            10f64.to_radians(),
        );
        let frac = coverage_time_fraction(&windows, 0.0, 7_200.0);
        assert!(frac > 0.99, "Iridium equatorial coverage fraction {frac}");
        assert!(longest_outage_s(&windows, 0.0, 7_200.0) < 60.0);
    }

    #[test]
    fn single_sat_coverage_is_sparse() {
        let sats = one_sat();
        let windows = contact_plan(&sats, equator_ground(), 0.0, 86_400.0, 10.0, 0.1);
        let frac = coverage_time_fraction(&windows, 0.0, 86_400.0);
        assert!(frac < 0.2, "one sat cannot cover much of a day: {frac}");
        assert!(longest_outage_s(&windows, 0.0, 86_400.0) > 3_600.0);
    }

    #[test]
    fn empty_plan_means_full_outage() {
        assert_eq!(coverage_time_fraction(&[], 0.0, 100.0), 0.0);
        assert_eq!(longest_outage_s(&[], 0.0, 100.0), 100.0);
    }

    #[test]
    fn contains_and_duration() {
        let w = ContactWindow {
            sat_index: SatId(0),
            start_s: 10.0,
            end_s: 20.0,
        };
        assert_eq!(w.duration_s(), 10.0);
        assert!(w.contains(10.0));
        assert!(w.contains(19.999));
        assert!(!w.contains(20.0));
        assert!(!w.contains(9.0));
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_panics() {
        contact_plan(&one_sat(), equator_ground(), 0.0, 10.0, 0.0, 0.0);
    }
}
