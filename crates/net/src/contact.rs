//! Contact plans: when each satellite is visible from a ground point.
//!
//! Because orbits are public and deterministic (§2.2), contact windows
//! are computable arbitrarily far ahead. The handover predictor and the
//! federation study both consume these plans.
//!
//! # Horizon-skip scanning
//!
//! A LEO satellite is below a ground site's elevation mask for most of
//! each orbit, so a dense scan wastes the bulk of its propagations on
//! samples that cannot open or close a window. [`contact_plan`] (and the
//! instrumented [`contact_plan_recorded`]) therefore skip ahead when a
//! sample is far below the mask, by an amount derived from a **sound
//! bound on the elevation-angle rate** — and produce output **bitwise
//! identical** to the dense reference scan [`contact_plan_dense`]. The
//! argument, in full:
//!
//! 1. *Geometry.* Work in ECEF, where the ground point is fixed. The
//!    elevation is `el = π/2 − θ` with `θ` the angle between the fixed
//!    up direction and the moving line-of-sight direction `ŵ`. The angle
//!    to a fixed direction is 1-Lipschitz in arc length on the sphere,
//!    so `|d el/dt| ≤ |ŵ′| ≤ |v_rel| / d`, the satellite's ECEF speed
//!    over the slant range.
//! 2. *Speed.* `|v_rel| ≤ v_eci_max + ω_⊕ · r_max`:
//!    [`Propagator::max_speed_m_per_s`] bounds the inertial speed, and
//!    the ECI→ECEF rotation adds at most the Earth-rotation rate times
//!    the satellite's maximum geocentric radius.
//! 3. *Distance.* While `el ≤ mask`, the slant range is minimized at
//!    `el = mask` and at the satellite's minimum radius (the range is
//!    decreasing in elevation, increasing in radius — see
//!    [`slant_range_at_elevation_m`]), so `d ≥ d_lo =
//!    slant_range_at_elevation_m(R_site, r_min, mask)`.
//! 4. *Escape time.* Combining 1–3 gives a rate bound `L` valid on the
//!    whole region `el ≤ mask`. If a sample reads `el = mask − Δ` with
//!    `Δ > ε`, the true elevation cannot reach the mask for at least
//!    `(Δ − ε)/L` seconds (a first-crossing argument: until the first
//!    crossing the trajectory stays in the region where `L` applies).
//!    Every grid sample in that span is therefore *not visible*, and —
//!    because the scanner only ever skips while no window is open — the
//!    open/close state machine treats them exactly as the dense scan
//!    would. Skipping lands on the *same* grid, so emitted windows are
//!    identical to the last bit.
//! 5. *Rounding.* The margin `ε = 1e-9` rad dwarfs the few-ulp error of
//!    the elevation evaluation (`≲ 1e-15` rad), and `L` is inflated by
//!    `1e-9` relative to absorb rounding in the bound itself; a skipped
//!    sample's *computed* elevation is thus below the mask with margin
//!    `≈ ε`, never flipping a visibility decision. Whenever the bound's
//!    preconditions fail (site at the geocenter, orbit below the site
//!    radius, non-finite inputs), the scanner falls back to dense
//!    stepping for that satellite — same output, no speedup.
//!
//! The equivalence is pinned by `tests/tests/contact_equivalence.rs`
//! over ≥128 seeded random scenarios (constellation, ground site, mask,
//! step, horizon, perturbation model).

use crate::isl::SatNode;
use openspace_orbit::constants::EARTH_ROTATION_RATE_RAD_PER_S;
use openspace_orbit::frames::{eci_to_ecef, Vec3};
use openspace_orbit::propagator::Propagator;
use openspace_orbit::visibility::{elevation_angle_rad, is_visible, slant_range_at_elevation_m};
use openspace_sim::ids::SatId;
use openspace_telemetry::{NullRecorder, Recorder};

/// One visibility window of one satellite over a ground point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContactWindow {
    /// Index into the satellite array.
    pub sat_index: SatId,
    /// Window start (s); clamped to the scan start when already visible.
    pub start_s: f64,
    /// Window end (s); clamped to the scan end when still visible.
    pub end_s: f64,
}

impl ContactWindow {
    /// Window duration (s).
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t_s: f64) -> bool {
        (self.start_s..self.end_s).contains(&t_s)
    }
}

/// Deficit margin (rad) a sample must show below the mask before the
/// scanner skips: far larger than elevation-evaluation rounding
/// (~1e-15 rad), far smaller than any deficit worth skipping over.
const SKIP_EPSILON_RAD: f64 = 1e-9;

/// Relative inflation applied to the elevation-rate bound so fp rounding
/// in the bound's own computation can never make it optimistic.
const RATE_MARGIN: f64 = 1e-9;

/// A sound per-satellite bound (rad/s) on the elevation-angle rate seen
/// from a ground point at geocentric radius `site_radius_m`, valid
/// everywhere in the region `el ≤ mask`. `None` when the preconditions
/// fail and the caller must scan densely (see the module docs).
fn elevation_rate_bound(prop: &Propagator, site_radius_m: f64, mask_rad: f64) -> Option<f64> {
    if site_radius_m.is_nan() || site_radius_m <= 0.0 {
        return None;
    }
    let (r_min, r_max) = prop.radius_bounds_m();
    // Minimum slant range over the region el <= mask: clamping the mask
    // into the formula's domain only ever *lowers* the pivot elevation,
    // which lowers d_lo — conservative.
    let mask = mask_rad.clamp(-std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_2);
    let d_lo = slant_range_at_elevation_m(site_radius_m, r_min, mask);
    if !d_lo.is_finite() || d_lo <= 0.0 {
        return None;
    }
    let v_rel = prop.max_speed_m_per_s() + EARTH_ROTATION_RATE_RAD_PER_S * r_max;
    let rate = v_rel / d_lo * (1.0 + RATE_MARGIN);
    rate.is_finite().then_some(rate)
}

/// Compute all contact windows of `sats` over `ground_ecef` in
/// `[t_start_s, t_end_s)`, sampling visibility at `step_s`.
///
/// Windows are sorted by `(start, sat_index)`. Sampling granularity means
/// windows are accurate to ±`step_s`; the experiments use 1–10 s steps,
/// well below LEO pass durations (minutes).
///
/// Uses the horizon-skip fast path (see the module docs); the result is
/// bitwise identical to [`contact_plan_dense`].
///
/// # Panics
/// Panics if `step_s <= 0` or the interval is inverted.
pub fn contact_plan(
    sats: &[SatNode],
    ground_ecef: Vec3,
    t_start_s: f64,
    t_end_s: f64,
    step_s: f64,
    min_elevation_rad: f64,
) -> Vec<ContactWindow> {
    contact_plan_recorded(
        sats,
        ground_ecef,
        t_start_s,
        t_end_s,
        step_s,
        min_elevation_rad,
        &mut NullRecorder,
    )
}

/// [`contact_plan`] with telemetry: counts `contact.samples_evaluated`
/// (grid samples actually propagated) and `contact.samples_skipped`
/// (grid samples proven below-mask without propagation).
#[allow(clippy::too_many_arguments)]
pub fn contact_plan_recorded(
    sats: &[SatNode],
    ground_ecef: Vec3,
    t_start_s: f64,
    t_end_s: f64,
    step_s: f64,
    min_elevation_rad: f64,
    rec: &mut dyn Recorder,
) -> Vec<ContactWindow> {
    assert!(step_s > 0.0, "step must be positive");
    assert!(t_end_s >= t_start_s, "interval inverted");
    let steps = ((t_end_s - t_start_s) / step_s).ceil() as usize;
    let site_radius_m = ground_ecef.norm();
    let mut evaluated: u64 = 0;
    let mut skipped: u64 = 0;
    let mut windows = Vec::new();
    for (si, sat) in sats.iter().enumerate() {
        let rate_bound = elevation_rate_bound(&sat.propagator, site_radius_m, min_elevation_rad);
        let mut open: Option<f64> = None;
        let mut k = 0usize;
        while k <= steps {
            let t = (t_start_s + k as f64 * step_s).min(t_end_s);
            let sat_ecef = eci_to_ecef(sat.propagator.position_eci(t), t);
            let elevation = elevation_angle_rad(ground_ecef, sat_ecef);
            evaluated += 1;
            // Same decision as `is_visible`: it compares this exact
            // elevation expression against the mask.
            let vis = elevation >= min_elevation_rad;
            match (open, vis) {
                (None, true) => open = Some(t),
                (Some(start), false) => {
                    windows.push(ContactWindow {
                        sat_index: SatId(si),
                        start_s: start,
                        end_s: t,
                    });
                    open = None;
                }
                _ => {}
            }
            if t >= t_end_s {
                break;
            }
            // Horizon skip: only with no window open (so skipped samples
            // are state-machine no-ops) and a deficit beyond the fp
            // margin. Skipped samples sit at unclamped-or-later times, so
            // the escape-time guarantee covers them; if the skip clears
            // the horizon, the remaining samples are all below-mask and
            // the dense loop would end with `open == None` too.
            if let (None, Some(rate)) = (open, rate_bound) {
                let deficit = min_elevation_rad - elevation;
                if deficit > SKIP_EPSILON_RAD {
                    let m = ((deficit - SKIP_EPSILON_RAD) / (rate * step_s))
                        .floor()
                        .min((steps - k) as f64);
                    if m >= 1.0 {
                        let m = m as usize;
                        skipped += m as u64;
                        k += m;
                    }
                }
            }
            k += 1;
        }
        if let Some(start) = open {
            windows.push(ContactWindow {
                sat_index: SatId(si),
                start_s: start,
                end_s: t_end_s,
            });
        }
    }
    rec.add("contact.samples_evaluated", evaluated);
    rec.add("contact.samples_skipped", skipped);
    windows.sort_by(|a, b| {
        a.start_s
            .total_cmp(&b.start_s)
            .then(a.sat_index.cmp(&b.sat_index))
    });
    windows
}

/// The dense reference scan: every grid sample propagated and tested.
///
/// Kept as the ground truth for the horizon-skip equivalence property
/// test and the paired bench kernels; production callers use
/// [`contact_plan`].
///
/// # Panics
/// Panics if `step_s <= 0` or the interval is inverted.
pub fn contact_plan_dense(
    sats: &[SatNode],
    ground_ecef: Vec3,
    t_start_s: f64,
    t_end_s: f64,
    step_s: f64,
    min_elevation_rad: f64,
) -> Vec<ContactWindow> {
    assert!(step_s > 0.0, "step must be positive");
    assert!(t_end_s >= t_start_s, "interval inverted");
    let steps = ((t_end_s - t_start_s) / step_s).ceil() as usize;
    let mut windows = Vec::new();
    for (si, sat) in sats.iter().enumerate() {
        let mut open: Option<f64> = None;
        for k in 0..=steps {
            let t = (t_start_s + k as f64 * step_s).min(t_end_s);
            let sat_ecef = eci_to_ecef(sat.propagator.position_eci(t), t);
            let vis = is_visible(ground_ecef, sat_ecef, min_elevation_rad);
            match (open, vis) {
                (None, true) => open = Some(t),
                (Some(start), false) => {
                    windows.push(ContactWindow {
                        sat_index: SatId(si),
                        start_s: start,
                        end_s: t,
                    });
                    open = None;
                }
                _ => {}
            }
            if t >= t_end_s {
                break;
            }
        }
        if let Some(start) = open {
            windows.push(ContactWindow {
                sat_index: SatId(si),
                start_s: start,
                end_s: t_end_s,
            });
        }
    }
    windows.sort_by(|a, b| {
        a.start_s
            .total_cmp(&b.start_s)
            .then(a.sat_index.cmp(&b.sat_index))
    });
    windows
}

/// Fraction of `[t_start, t_end)` during which at least one satellite is
/// visible (union of windows).
pub fn coverage_time_fraction(windows: &[ContactWindow], t_start_s: f64, t_end_s: f64) -> f64 {
    assert!(t_end_s > t_start_s, "empty interval");
    // Sweep over sorted window boundaries.
    let mut events: Vec<(f64, i32)> = Vec::with_capacity(windows.len() * 2);
    for w in windows {
        events.push((w.start_s.max(t_start_s), 1));
        events.push((w.end_s.min(t_end_s), -1));
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.cmp(&a.1)));
    let mut covered = 0.0;
    let mut depth = 0;
    let mut last = t_start_s;
    for (t, d) in events {
        if depth > 0 {
            covered += (t - last).max(0.0);
        }
        last = t.max(last);
        depth += d;
    }
    covered / (t_end_s - t_start_s)
}

/// The longest gap (s) with no satellite visible in `[t_start, t_end)`.
pub fn longest_outage_s(windows: &[ContactWindow], t_start_s: f64, t_end_s: f64) -> f64 {
    assert!(t_end_s > t_start_s, "empty interval");
    let mut intervals: Vec<(f64, f64)> = windows
        .iter()
        .map(|w| (w.start_s.max(t_start_s), w.end_s.min(t_end_s)))
        .filter(|(s, e)| e > s)
        .collect();
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut gap: f64 = 0.0;
    let mut horizon = t_start_s;
    for (s, e) in intervals {
        if s > horizon {
            gap = gap.max(s - horizon);
        }
        horizon = horizon.max(e);
    }
    gap.max(t_end_s - horizon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use openspace_orbit::constants::km_to_m;
    use openspace_orbit::frames::{geodetic_to_ecef, Geodetic};
    use openspace_orbit::kepler::OrbitalElements;
    use openspace_orbit::propagator::{PerturbationModel, Propagator};
    use openspace_orbit::walker::{iridium_params, walker_star};

    fn one_sat() -> Vec<SatNode> {
        vec![SatNode {
            propagator: Propagator::new(
                OrbitalElements::circular(km_to_m(780.0), 86.4, 0.0, 0.0).unwrap(),
                PerturbationModel::TwoBody,
            ),
            operator: 0,
            has_optical: false,
        }]
    }

    fn iridium() -> Vec<SatNode> {
        walker_star(&iridium_params())
            .unwrap()
            .into_iter()
            .map(|el| SatNode {
                propagator: Propagator::new(el, PerturbationModel::TwoBody),
                operator: 0,
                has_optical: false,
            })
            .collect()
    }

    fn equator_ground() -> Vec3 {
        geodetic_to_ecef(Geodetic::from_degrees(0.0, 0.0, 0.0))
    }

    #[test]
    fn single_sat_has_periodic_windows() {
        let sats = one_sat();
        let day = 86_400.0;
        let windows = contact_plan(&sats, equator_ground(), 0.0, day, 5.0, 10f64.to_radians());
        assert!(
            (2..=10).contains(&windows.len()),
            "one LEO sat over a day: got {} windows",
            windows.len()
        );
        for w in &windows {
            assert!(w.duration_s() > 60.0, "pass too short: {}", w.duration_s());
            assert!(
                w.duration_s() < 1_000.0,
                "pass too long: {}",
                w.duration_s()
            );
        }
    }

    #[test]
    fn windows_are_sorted_and_disjoint_per_sat() {
        let sats = one_sat();
        let windows = contact_plan(&sats, equator_ground(), 0.0, 86_400.0, 5.0, 0.1);
        for w in windows.windows(2) {
            assert!(w[0].start_s <= w[1].start_s);
            assert!(w[0].end_s <= w[1].start_s, "overlap for one satellite");
        }
    }

    #[test]
    fn iridium_has_continuous_coverage() {
        let sats = iridium();
        let windows = contact_plan(
            &sats,
            equator_ground(),
            0.0,
            7_200.0,
            10.0,
            10f64.to_radians(),
        );
        let frac = coverage_time_fraction(&windows, 0.0, 7_200.0);
        assert!(frac > 0.99, "Iridium equatorial coverage fraction {frac}");
        assert!(longest_outage_s(&windows, 0.0, 7_200.0) < 60.0);
    }

    #[test]
    fn single_sat_coverage_is_sparse() {
        let sats = one_sat();
        let windows = contact_plan(&sats, equator_ground(), 0.0, 86_400.0, 10.0, 0.1);
        let frac = coverage_time_fraction(&windows, 0.0, 86_400.0);
        assert!(frac < 0.2, "one sat cannot cover much of a day: {frac}");
        assert!(longest_outage_s(&windows, 0.0, 86_400.0) > 3_600.0);
    }

    #[test]
    fn empty_plan_means_full_outage() {
        assert_eq!(coverage_time_fraction(&[], 0.0, 100.0), 0.0);
        assert_eq!(longest_outage_s(&[], 0.0, 100.0), 100.0);
    }

    #[test]
    fn contains_and_duration() {
        let w = ContactWindow {
            sat_index: SatId(0),
            start_s: 10.0,
            end_s: 20.0,
        };
        assert_eq!(w.duration_s(), 10.0);
        assert!(w.contains(10.0));
        assert!(w.contains(19.999));
        assert!(!w.contains(20.0));
        assert!(!w.contains(9.0));
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_panics() {
        contact_plan(&one_sat(), equator_ground(), 0.0, 10.0, 0.0, 0.0);
    }

    #[test]
    fn gated_scan_matches_dense_and_skips() {
        use openspace_telemetry::MemoryRecorder;
        let sats = iridium();
        let ground = equator_ground();
        let mask = 25f64.to_radians();
        let mut rec = MemoryRecorder::new();
        let gated = contact_plan_recorded(&sats, ground, 0.0, 7_200.0, 5.0, mask, &mut rec);
        let dense = contact_plan_dense(&sats, ground, 0.0, 7_200.0, 5.0, mask);
        assert_eq!(gated.len(), dense.len());
        for (a, b) in gated.iter().zip(&dense) {
            assert_eq!(a.sat_index, b.sat_index);
            assert_eq!(a.start_s.to_bits(), b.start_s.to_bits());
            assert_eq!(a.end_s.to_bits(), b.end_s.to_bits());
        }
        let skipped = rec.counter("contact.samples_skipped");
        let evaluated = rec.counter("contact.samples_evaluated");
        assert!(
            skipped > evaluated,
            "horizon skip should dominate on a sparse scan: {skipped} skipped vs {evaluated} evaluated"
        );
        // Accounting: every grid index the dense scan would visit is
        // either evaluated or skipped, exactly once.
        assert_eq!(evaluated + skipped, 66 * (7_200 / 5 + 1));
    }

    #[test]
    fn site_above_orbit_falls_back_to_dense() {
        // A "ground" point whose geocentric radius exceeds the orbit
        // radius breaks the slant-range pivot's triangle (NaN d_lo): the
        // fast path must refuse the bound and agree with the dense scan
        // rather than skip on an unsound rate.
        let sats = one_sat();
        let high_site = Vec3::new(8.0e6, 0.0, 0.0);
        let gated = contact_plan(&sats, high_site, 0.0, 3_600.0, 5.0, 0.1);
        let dense = contact_plan_dense(&sats, high_site, 0.0, 3_600.0, 5.0, 0.1);
        assert_eq!(gated, dense);
    }

    // --- coverage_time_fraction / longest_outage_s edge cases --------
    // Pinned before the scanner rework so the reductions' behavior on
    // boundary windows is locked down independently of how the windows
    // were produced.

    fn w(sat: usize, start: f64, end: f64) -> ContactWindow {
        ContactWindow {
            sat_index: SatId(sat),
            start_s: start,
            end_s: end,
        }
    }

    #[test]
    fn touching_windows_merge_seamlessly() {
        // end == next.start: no gap between them, full coverage.
        let ws = [w(0, 0.0, 50.0), w(1, 50.0, 100.0)];
        assert_eq!(coverage_time_fraction(&ws, 0.0, 100.0), 1.0);
        assert_eq!(longest_outage_s(&ws, 0.0, 100.0), 0.0);
    }

    #[test]
    fn windows_outside_interval_do_not_count() {
        // Entirely before and entirely after [t_start, t_end).
        let ws = [w(0, -100.0, -10.0), w(1, 200.0, 300.0)];
        assert_eq!(coverage_time_fraction(&ws, 0.0, 100.0), 0.0);
        assert_eq!(longest_outage_s(&ws, 0.0, 100.0), 100.0);
        // A window straddling the start clamps to it.
        let straddle = [w(0, -50.0, 25.0)];
        assert!((coverage_time_fraction(&straddle, 0.0, 100.0) - 0.25).abs() < 1e-12);
        assert_eq!(longest_outage_s(&straddle, 0.0, 100.0), 75.0);
    }

    #[test]
    fn zero_length_windows_are_inert() {
        let ws = [w(0, 40.0, 40.0)];
        assert_eq!(coverage_time_fraction(&ws, 0.0, 100.0), 0.0);
        assert_eq!(longest_outage_s(&ws, 0.0, 100.0), 100.0);
        // Mixed with a real window, the zero-length one adds nothing.
        let mixed = [w(0, 40.0, 40.0), w(1, 10.0, 30.0)];
        assert!((coverage_time_fraction(&mixed, 0.0, 100.0) - 0.2).abs() < 1e-12);
        assert_eq!(longest_outage_s(&mixed, 0.0, 100.0), 70.0);
    }
}
