//! # openspace-net
//!
//! The network layer of the OpenSpace stack: time-varying topology,
//! inter-satellite link feasibility, routing, and handover prediction.
//!
//! * [`topology`] — the snapshot graph (satellites + ground stations,
//!   per-direction operator ownership, capacities, loads).
//! * [`isl`] — snapshot construction from orbital state: range,
//!   line-of-sight, terminal budgets, RF/optical capacity selection.
//! * [`routing`] — proactive shortest paths ([`routing::dijkstra`]),
//!   k-shortest alternatives ([`routing::yen`]), the congestion/QoS
//!   machinery ([`routing::qos`]) that §2.2 says a scaled system needs,
//!   and the batched per-source [`routing::planner`] that serves
//!   replan-heavy simulations one shortest-path tree per distinct
//!   source.
//! * [`contact`] — precomputable contact plans over ground points.
//! * [`handover`] — successor prediction and handover cost accounting
//!   (the every-15-seconds problem).
//! * [`dtn`] — contact plans as a *graph* plus earliest-arrival
//!   (contact-graph) routing: the store-and-forward fallback for
//!   operators whose satellites are scheduled to be disconnected (§2).
//! * [`policy`] — regulation-aware routing: jurisdictions, downlink
//!   licenses, and per-user privacy policies (§5's open problem (3)).
//! * [`outage`] — applies compiled fault-plan events
//!   ([`openspace_sim::fault`]) to a live [`topology::Graph`] and
//!   reverts them exactly, with idempotent bookkeeping.
//! * [`timeline`] — precomputed snapshot sequences: a base graph plus
//!   per-tick [`topology::GraphDelta`]s, replayable bit-identically to
//!   on-demand snapshot builds (§2.2's known-and-public topology as a
//!   first-class [`timeline::TopologyProvider`] capability).
//!
//! Public node/operator identities are typed ([`topology::NodeId`],
//! [`topology::SatId`], [`topology::GsId`], [`topology::OperatorId`] —
//! re-exported from `openspace_sim::ids`); plain `usize` indices still
//! convert implicitly at call sites via `impl Into<NodeId>` parameters.

//! ## Example
//!
//! ```
//! use openspace_net::prelude::*;
//! use openspace_orbit::prelude::*;
//!
//! // Build a topology snapshot of the Iridium constellation and route
//! // across it.
//! let sats: Vec<SatNode> = walker_star(&iridium_params())
//!     .unwrap()
//!     .into_iter()
//!     .map(|el| SatNode {
//!         propagator: Propagator::new(el, PerturbationModel::TwoBody),
//!         operator: 0,
//!         has_optical: false,
//!     })
//!     .collect();
//! let graph = build_snapshot(0.0, &sats, &[], &SnapshotParams::default());
//! let path = shortest_path(&graph, 0, 35, latency_weight).unwrap();
//! assert!(path.hops() >= 1);
//! ```

pub mod contact;
pub mod dtn;
pub mod handover;
pub mod isl;
pub mod outage;
pub mod policy;
pub mod routing;
pub mod timeline;
pub mod topology;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::contact::{
        contact_plan, contact_plan_dense, contact_plan_recorded, coverage_time_fraction,
        longest_outage_s, ContactWindow,
    };
    pub use crate::dtn::{
        earliest_arrival, earliest_arrival_with_retry, sample_contacts, Contact, DtnError,
        DtnRoute, NodeOutageWindow, RetryPolicy,
    };
    pub use crate::handover::{
        service_schedule, service_schedule_with_outages, HandoverCost, SatOutageWindow,
        ServiceInterval, ServiceSchedule,
    };
    pub use crate::isl::{
        best_access_from_ecef, best_access_satellite, build_snapshot, build_snapshot_from_samples,
        build_snapshot_from_samples_dense, build_snapshot_from_samples_recorded,
        build_snapshot_recorded, isl_capacity_bps, snapshot_delta, snapshot_delta_recorded,
        GroundNode, SatNode, SnapshotParams,
    };
    pub use crate::outage::{OutageTracker, TopologyDelta};
    pub use crate::policy::{
        audit_path, policy_route, DownlinkLicense, Jurisdiction, PolicyRoute, RoutePolicy,
        StationAttrs,
    };
    pub use crate::routing::{
        congestion_weight, hop_weight, k_shortest_paths, latency_weight, qos_route, residual_bps,
        shortest_path, widest_path, Path, QosRequirement, RoutePlanner,
    };
    pub use crate::timeline::{TimelineError, TopologyProvider, TopologyTimeline};
    pub use crate::topology::{
        Edge, Graph, GraphDelta, GsId, LinkOutage, LinkTech, NoSuchEdge, NodeId, NodeKind,
        NodeOutage, OperatorId, SatId, TopologyError,
    };
}
