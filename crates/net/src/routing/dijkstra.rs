//! Dijkstra shortest paths with pluggable edge weights.
//!
//! The proactive routing of §2.2 is exactly this: the topology is known,
//! so routes are precomputed shortest paths. The weight function is a
//! parameter so the same machinery serves latency-optimal, hop-count, and
//! the QoS-aware costs in [`crate::routing::qos`].

use crate::topology::{Edge, Graph, NodeId};
use openspace_telemetry::{NullRecorder, Recorder};
use std::cmp::Ordering;

/// A computed path.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Node sequence, source first, destination last.
    pub nodes: Vec<NodeId>,
    /// Total weight under the cost function used.
    pub total_cost: f64,
}

impl Path {
    /// Hop count (edges traversed).
    pub fn hops(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// Sum a per-edge metric along the path (e.g. latency when the route
    /// was computed under a different cost). Returns `None` when an edge
    /// of the path no longer exists in `graph` — a stale route after the
    /// topology changed under it.
    pub fn sum_metric(&self, graph: &Graph, metric: impl Fn(&Edge) -> f64) -> Option<f64> {
        self.nodes
            .windows(2)
            .map(|w| graph.find_edge(w[0], w[1]).map(&metric))
            .sum()
    }

    /// Minimum capacity along the path (the bottleneck, bit/s), or
    /// `None` for a stale path whose edges vanished.
    pub fn bottleneck_bps(&self, graph: &Graph) -> Option<f64> {
        self.nodes
            .windows(2)
            .map(|w| graph.find_edge(w[0], w[1]).map(|e| e.capacity_bps))
            .try_fold(f64::INFINITY, |acc, c| c.map(|c| acc.min(c)))
    }
}

/// Frontier entry of the deterministic Dijkstra searches: a min-heap
/// item ordered by `(cost, node)`. The node tie-break is what makes the
/// pop sequence — and with it every extracted path — a pure function of
/// `(graph, source, weight)`, the property the batched
/// [`RoutePlanner`](crate::routing::RoutePlanner) relies on.
#[derive(PartialEq)]
pub(crate) struct HeapEntry {
    pub(crate) cost: f64,
    pub(crate) node: NodeId,
}
impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by cost; tie-break on node index for determinism.
        other
            .cost
            .total_cmp(&self.cost)
            .then(other.node.cmp(&self.node))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Shortest path from `src` to `dst` under `weight`.
///
/// Edges for which `weight` returns `f64::INFINITY` are skipped (that is
/// how QoS filters express "this link does not qualify"). Returns `None`
/// when `dst` is unreachable.
///
/// # Panics
/// Panics if `weight` returns a negative or NaN value for a usable edge,
/// or on out-of-range endpoints.
pub fn shortest_path(
    graph: &Graph,
    src: impl Into<NodeId>,
    dst: impl Into<NodeId>,
    weight: impl Fn(&Edge) -> f64,
) -> Option<Path> {
    shortest_path_recorded(graph, src, dst, weight, &mut NullRecorder)
}

/// [`shortest_path`] with telemetry: bumps the `routing.recomputes`
/// counter once per call and `routing.nodes_visited` by the number of
/// heap pops the search performed (the work metric that distinguishes a
/// cheap local route from a constellation-crossing one).
///
/// A thin single-request wrapper over the batched
/// [`RoutePlanner`](crate::routing::RoutePlanner), which stops as soon as
/// the destination settles — per-request cost and output are unchanged
/// from the dedicated early-exit search this used to be.
pub fn shortest_path_recorded(
    graph: &Graph,
    src: impl Into<NodeId>,
    dst: impl Into<NodeId>,
    weight: impl Fn(&Edge) -> f64,
    rec: &mut dyn Recorder,
) -> Option<Path> {
    crate::routing::planner::RoutePlanner::new().route_recorded(graph, src, dst, weight, rec)
}

/// Latency edge weight: pure propagation delay.
pub fn latency_weight(e: &Edge) -> f64 {
    e.latency_s
}

/// Hop-count edge weight.
pub fn hop_weight(_e: &Edge) -> f64 {
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkTech;

    /// Build:  0 --1ms-- 1 --1ms-- 2
    ///          \________5ms_______/
    fn diamond() -> Graph {
        let mut g = Graph::new(3, 0);
        g.add_bidirectional(0, 1, 0.001, 1e6, 0u32, 0u32, LinkTech::Rf);
        g.add_bidirectional(1, 2, 0.001, 1e6, 0u32, 0u32, LinkTech::Rf);
        g.add_bidirectional(0, 2, 0.005, 1e9, 0u32, 0u32, LinkTech::Rf);
        g
    }

    #[test]
    fn picks_lower_latency_two_hop() {
        let g = diamond();
        let p = shortest_path(&g, 0, 2, latency_weight).unwrap();
        assert_eq!(p.nodes, vec![0usize, 1, 2]);
        assert!((p.total_cost - 0.002).abs() < 1e-12);
    }

    #[test]
    fn hop_weight_prefers_direct() {
        let g = diamond();
        let p = shortest_path(&g, 0, 2, hop_weight).unwrap();
        assert_eq!(p.nodes, vec![0usize, 2]);
        assert_eq!(p.hops(), 1);
    }

    #[test]
    fn source_equals_destination() {
        let g = diamond();
        let p = shortest_path(&g, 1, 1, latency_weight).unwrap();
        assert_eq!(p.nodes, vec![1usize]);
        assert_eq!(p.total_cost, 0.0);
        assert_eq!(p.hops(), 0);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut g = Graph::new(3, 0);
        g.add_bidirectional(0, 1, 0.001, 1e6, 0u32, 0u32, LinkTech::Rf);
        assert!(shortest_path(&g, 0, 2, latency_weight).is_none());
    }

    #[test]
    fn infinite_weight_excludes_edge() {
        let g = diamond();
        // Exclude the 0-1 edge: forced onto the direct path.
        let p = shortest_path(&g, 0, 2, |e| {
            if e.latency_s < 0.002 && e.to != 2usize {
                f64::INFINITY
            } else {
                e.latency_s
            }
        });
        // With 0->1 excluded, path is the direct 0->2.
        assert_eq!(p.unwrap().nodes, vec![0usize, 2]);
    }

    #[test]
    fn bottleneck_and_metric_sum() {
        let g = diamond();
        let p = shortest_path(&g, 0, 2, latency_weight).unwrap();
        assert_eq!(p.bottleneck_bps(&g), Some(1e6));
        let lat = p.sum_metric(&g, |e| e.latency_s).unwrap();
        assert!((lat - 0.002).abs() < 1e-12);
    }

    #[test]
    fn stale_path_metrics_are_none_not_a_panic() {
        let mut g = diamond();
        let p = shortest_path(&g, 0, 2, latency_weight).unwrap();
        let _ = g.fail_node(1).unwrap();
        assert_eq!(p.sum_metric(&g, |e| e.latency_s), None);
        assert_eq!(p.bottleneck_bps(&g), None);
    }

    #[test]
    fn recorded_variant_counts_work_without_changing_the_path() {
        use openspace_telemetry::MemoryRecorder;
        let g = diamond();
        let mut rec = MemoryRecorder::new();
        let recorded = shortest_path_recorded(&g, 0, 2, latency_weight, &mut rec).unwrap();
        let plain = shortest_path(&g, 0, 2, latency_weight).unwrap();
        assert_eq!(recorded, plain);
        assert_eq!(rec.counter("routing.recomputes"), 1);
        // src, the intermediate node, and dst all pop from the heap.
        assert!(rec.counter("routing.nodes_visited") >= 2);
    }

    #[test]
    fn unreachable_search_still_counts_a_recompute() {
        use openspace_telemetry::MemoryRecorder;
        let mut g = Graph::new(3, 0);
        g.add_bidirectional(0, 1, 0.001, 1e6, 0u32, 0u32, LinkTech::Rf);
        let mut rec = MemoryRecorder::new();
        assert!(shortest_path_recorded(&g, 0, 2, latency_weight, &mut rec).is_none());
        assert_eq!(rec.counter("routing.recomputes"), 1);
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two equal-cost paths: 0-1-3 and 0-2-3. Lower node index wins the
        // heap tie, so the result must be stable across runs.
        let mut g = Graph::new(4, 0);
        g.add_bidirectional(0, 1, 0.001, 1e6, 0u32, 0u32, LinkTech::Rf);
        g.add_bidirectional(0, 2, 0.001, 1e6, 0u32, 0u32, LinkTech::Rf);
        g.add_bidirectional(1, 3, 0.001, 1e6, 0u32, 0u32, LinkTech::Rf);
        g.add_bidirectional(2, 3, 0.001, 1e6, 0u32, 0u32, LinkTech::Rf);
        let a = shortest_path(&g, 0, 3, latency_weight).unwrap();
        let b = shortest_path(&g, 0, 3, latency_weight).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn large_line_graph_traversal() {
        let n = 500;
        let mut g = Graph::new(n, 0);
        for i in 0..n - 1 {
            g.add_bidirectional(i, i + 1, 0.001, 1e6, 0u32, 0u32, LinkTech::Rf);
        }
        let p = shortest_path(&g, 0, n - 1, latency_weight).unwrap();
        assert_eq!(p.hops(), n - 1);
        assert!((p.total_cost - 0.001 * (n - 1) as f64).abs() < 1e-9);
    }
}
