//! QoS- and congestion-aware routing.
//!
//! §2.2: proactive routes are computable from orbits alone, but "the cost
//! of a path cannot be fully predicted since ISL congestion cannot be
//! anticipated". The reactive router here extends the edge weight with a
//! queueing term and filters links that cannot meet a flow's bandwidth
//! floor — the two effects the paper names.

use crate::routing::dijkstra::Path;
use crate::topology::{Edge, Graph, NodeId};

/// A flow's QoS requirements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosRequirement {
    /// Minimum usable residual bandwidth on every hop (bit/s).
    pub min_bandwidth_bps: f64,
    /// Maximum acceptable end-to-end latency (s), including the
    /// congestion estimate; `f64::INFINITY` for best-effort.
    pub max_latency_s: f64,
}

impl QosRequirement {
    /// Best-effort: any link qualifies.
    pub fn best_effort() -> Self {
        Self {
            min_bandwidth_bps: 0.0,
            max_latency_s: f64::INFINITY,
        }
    }
}

/// Congestion-aware edge weight: propagation latency plus an M/M/1-style
/// queueing estimate that blows up as the link saturates:
/// `w = latency + service_time / (1 − load)`, with `service_time` the
/// serialization time of `packet_bits` at the link rate.
pub fn congestion_weight(e: &Edge, packet_bits: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&e.load_fraction));
    let service_s = packet_bits / e.capacity_bps;
    e.latency_s + service_s / (1.0 - e.load_fraction)
}

/// Residual capacity of an edge (bit/s).
pub fn residual_bps(e: &Edge) -> f64 {
    e.capacity_bps * (1.0 - e.load_fraction)
}

/// QoS-aware route: congestion-weighted shortest path over links whose
/// residual capacity meets the flow's floor; `None` when no compliant
/// path exists or the best one violates the latency bound.
pub fn qos_route(
    graph: &Graph,
    src: impl Into<NodeId>,
    dst: impl Into<NodeId>,
    requirement: &QosRequirement,
    packet_bits: f64,
) -> Option<Path> {
    qos_route_recorded(
        graph,
        src,
        dst,
        requirement,
        packet_bits,
        &mut openspace_telemetry::NullRecorder,
    )
}

/// [`qos_route`] with telemetry: the underlying search reports
/// `routing.recomputes` / `routing.nodes_visited` through `rec` (see
/// [`shortest_path_recorded`](crate::routing::dijkstra::shortest_path_recorded)).
///
/// A thin single-request wrapper over
/// [`RoutePlanner::plan_qos_recorded`](crate::routing::RoutePlanner::plan_qos_recorded).
pub fn qos_route_recorded(
    graph: &Graph,
    src: impl Into<NodeId>,
    dst: impl Into<NodeId>,
    requirement: &QosRequirement,
    packet_bits: f64,
    rec: &mut dyn openspace_telemetry::Recorder,
) -> Option<Path> {
    crate::routing::planner::RoutePlanner::new()
        .plan_qos_recorded(
            graph,
            &[(src.into(), dst.into())],
            requirement,
            packet_bits,
            rec,
        )
        .pop()
        .flatten()
}

/// Widest path (maximum bottleneck residual bandwidth) via a modified
/// Dijkstra. Used to answer "what is the best QoS we can advertise to
/// users in this region" (§2.2's preemptive QoS adjustment).
pub fn widest_path(
    graph: &Graph,
    src: impl Into<NodeId>,
    dst: impl Into<NodeId>,
) -> Option<(Path, f64)> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Entry {
        width: f64,
        node: NodeId,
    }
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Max-heap by width; tie-break on node for determinism.
            self.width
                .total_cmp(&other.width)
                .then(other.node.cmp(&self.node))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let (src, dst) = (src.into(), dst.into());
    assert!(src.0 < graph.node_count() && dst.0 < graph.node_count());
    let n = graph.node_count();
    let mut best = vec![0.0f64; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    best[src.0] = f64::INFINITY;
    heap.push(Entry {
        width: f64::INFINITY,
        node: src,
    });

    while let Some(Entry { width, node }) = heap.pop() {
        if width < best[node.0] {
            continue;
        }
        if node == dst {
            break;
        }
        for e in graph.edges(node) {
            let w = width.min(residual_bps(e));
            if w > best[e.to.0] {
                best[e.to.0] = w;
                prev[e.to.0] = Some(node);
                heap.push(Entry {
                    width: w,
                    node: e.to,
                });
            }
        }
    }
    if best[dst.0] <= 0.0 {
        return None;
    }
    let mut nodes = vec![dst];
    let mut cur = dst;
    while let Some(p) = prev[cur.0] {
        nodes.push(p);
        cur = p;
    }
    nodes.reverse();
    if nodes[0] != src {
        return None; // dst == src with zero width handled above
    }
    let path = Path {
        total_cost: 0.0,
        nodes,
    };
    Some((path, best[dst.0]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{LinkTech, OperatorId};

    /// 0 —fast/loaded→ 1 → 3 and 0 —slow/idle→ 2 → 3.
    fn loaded_diamond(load: f64) -> Graph {
        let mut g = Graph::new(4, 0);
        g.add_bidirectional(0, 1, 0.001, 1e7, 0, 0, LinkTech::Rf);
        g.add_bidirectional(1, 3, 0.001, 1e7, 0, 0, LinkTech::Rf);
        g.add_bidirectional(0, 2, 0.004, 1e7, 0, 0, LinkTech::Rf);
        g.add_bidirectional(2, 3, 0.004, 1e7, 0, 0, LinkTech::Rf);
        g.set_load(0, 1, load).unwrap();
        g.set_load(1, 3, load).unwrap();
        g
    }

    const PKT: f64 = 12_000.0;

    #[test]
    fn idle_network_prefers_low_latency() {
        let g = loaded_diamond(0.0);
        let p = qos_route(&g, 0, 3, &QosRequirement::best_effort(), PKT).unwrap();
        assert_eq!(p.nodes, vec![0usize, 1, 3]);
    }

    #[test]
    fn congestion_diverts_to_idle_path() {
        // At 99.9% load the fast path's queueing term dominates.
        let g = loaded_diamond(0.999);
        let p = qos_route(&g, 0, 3, &QosRequirement::best_effort(), PKT).unwrap();
        assert_eq!(
            p.nodes,
            vec![0usize, 2, 3],
            "router must avoid the hot path"
        );
    }

    #[test]
    fn bandwidth_floor_filters_links() {
        let g = loaded_diamond(0.95); // residual on fast path = 0.5 Mbit/s
        let req = QosRequirement {
            min_bandwidth_bps: 1e6,
            max_latency_s: f64::INFINITY,
        };
        let p = qos_route(&g, 0, 3, &req, PKT).unwrap();
        assert_eq!(p.nodes, vec![0usize, 2, 3]);
    }

    #[test]
    fn unmeetable_floor_returns_none() {
        let g = loaded_diamond(0.0);
        let req = QosRequirement {
            min_bandwidth_bps: 1e12,
            max_latency_s: f64::INFINITY,
        };
        assert!(qos_route(&g, 0, 3, &req, PKT).is_none());
    }

    #[test]
    fn latency_bound_rejects_slow_best_path() {
        let g = loaded_diamond(0.999);
        // Only the slow path qualifies (8+ ms); a 5 ms bound kills it, and
        // the fast path's queueing blows past the bound too.
        let req = QosRequirement {
            min_bandwidth_bps: 0.0,
            max_latency_s: 0.005,
        };
        assert!(qos_route(&g, 0, 3, &req, PKT).is_none());
    }

    #[test]
    fn congestion_weight_blows_up_near_saturation() {
        let mut e = Edge {
            to: NodeId(1),
            latency_s: 0.001,
            capacity_bps: 1e7,
            operator: OperatorId(0),
            technology: LinkTech::Rf,
            load_fraction: 0.0,
        };
        let idle = congestion_weight(&e, PKT);
        e.load_fraction = 0.99;
        let hot = congestion_weight(&e, PKT);
        assert!(hot > idle * 10.0, "idle {idle}, hot {hot}");
    }

    #[test]
    fn widest_path_tracks_residual() {
        let g = loaded_diamond(0.5);
        let (p, width) = widest_path(&g, 0, 3).unwrap();
        // Fast path residual 5 Mbit/s, slow path 10 Mbit/s: widest is slow.
        assert_eq!(p.nodes, vec![0usize, 2, 3]);
        assert!((width - 1e7).abs() < 1.0);
    }

    #[test]
    fn widest_path_unreachable_is_none() {
        let mut g = Graph::new(3, 0);
        g.add_bidirectional(0, 1, 0.001, 1e6, 0, 0, LinkTech::Rf);
        assert!(widest_path(&g, 0, 2).is_none());
    }
}
