//! Routing over topology snapshots.
//!
//! Three layers, matching §2.2's progression:
//!
//! * [`dijkstra`] — shortest paths with pluggable weights: the proactive
//!   precomputed routing a "beginner system" uses.
//! * [`yen`] — k-shortest alternatives for fallback.
//! * [`qos`] — congestion-aware weights, bandwidth floors, and widest
//!   paths: the end-to-end reactive routing the paper says a scaled
//!   system needs.
//! * [`planner`] — the batched per-source [`RoutePlanner`] behind both
//!   search entry points: one settled-predecessor tree per distinct
//!   source, scratch-buffer reuse, and within-tick tree caching for
//!   replan-heavy workloads ([`shortest_path`] and [`qos_route`] are
//!   thin single-request wrappers over it).

pub mod dijkstra;
pub mod planner;
pub mod qos;
pub mod yen;

pub use dijkstra::{hop_weight, latency_weight, shortest_path, shortest_path_recorded, Path};
pub use planner::RoutePlanner;
pub use qos::{
    congestion_weight, qos_route, qos_route_recorded, residual_bps, widest_path, QosRequirement,
};
pub use yen::k_shortest_paths;
