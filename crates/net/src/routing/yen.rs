//! Yen's algorithm: k shortest loopless paths.
//!
//! QoS-aware route selection (§2.2) needs alternatives to the single
//! shortest path — when the primary is congested or bandwidth-starved,
//! the router falls back along this list.

use crate::routing::dijkstra::{shortest_path, Path};
use crate::topology::{Edge, Graph, NodeId};

/// Up to `k` loopless shortest paths from `src` to `dst` under `weight`,
/// ascending by cost. Returns fewer when the graph has fewer distinct
/// paths. Determinstic: ties break by node sequence.
pub fn k_shortest_paths(
    graph: &Graph,
    src: impl Into<NodeId>,
    dst: impl Into<NodeId>,
    k: usize,
    weight: impl Fn(&Edge) -> f64 + Copy,
) -> Vec<Path> {
    let (src, dst) = (src.into(), dst.into());
    if k == 0 {
        return Vec::new();
    }
    let Some(first) = shortest_path(graph, src, dst, weight) else {
        return Vec::new();
    };
    let mut found = vec![first];
    // Candidate set: (cost, nodes) — kept sorted on extraction.
    let mut candidates: Vec<Path> = Vec::new();

    for _ in 1..k {
        let Some(last) = found.last() else { break };
        // Each node of the previous path (except the terminal) is a spur.
        for spur_idx in 0..last.nodes.len() - 1 {
            let spur_node = last.nodes[spur_idx];
            let root: Vec<NodeId> = last.nodes[..=spur_idx].to_vec();

            // Edges to suppress: next-hop edges of any found path sharing
            // this root, plus edges back into root nodes (looplessness).
            let mut banned_edges: Vec<(NodeId, NodeId)> = Vec::new();
            for p in &found {
                if p.nodes.len() > spur_idx + 1 && p.nodes[..=spur_idx] == root[..] {
                    banned_edges.push((p.nodes[spur_idx], p.nodes[spur_idx + 1]));
                }
            }
            let banned_nodes: Vec<NodeId> = root[..root.len() - 1].to_vec();

            // All banned edges originate at spur_node (they are the next
            // hops of found paths sharing this root), so banning them by
            // first-hop destination out of the source is exact.
            let banned_first_hops: Vec<NodeId> = banned_edges.iter().map(|&(_, to)| to).collect();
            let spur_path = shortest_path_with_bans(
                graph,
                spur_node,
                dst,
                &banned_nodes,
                &banned_first_hops,
                weight,
            );

            if let Some(sp) = spur_path {
                let mut nodes = root.clone();
                nodes.extend_from_slice(&sp.nodes[1..]);
                // Total cost: root cost + spur cost. Root edges come from
                // a found path, so they exist; an infinite sum (never in
                // practice) would simply sink the candidate in the sort.
                let root_cost: f64 = root
                    .windows(2)
                    .map(|w| {
                        graph
                            .find_edge(w[0], w[1])
                            .map(weight)
                            .unwrap_or(f64::INFINITY)
                    })
                    .sum();
                let candidate = Path {
                    nodes,
                    total_cost: root_cost + sp.total_cost,
                };
                if !found.iter().any(|p| p.nodes == candidate.nodes)
                    && !candidates.iter().any(|p| p.nodes == candidate.nodes)
                {
                    candidates.push(candidate);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Extract the cheapest candidate (stable by node sequence).
        candidates.sort_by(|a, b| {
            a.total_cost
                .total_cmp(&b.total_cost)
                .then_with(|| a.nodes.cmp(&b.nodes))
        });
        found.push(candidates.remove(0));
    }
    found
}

/// Dijkstra variant used by Yen: bans a node set entirely and bans a set
/// of first-hop destinations out of the source.
fn shortest_path_with_bans(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    banned_nodes: &[NodeId],
    banned_first_hops: &[NodeId],
    weight: impl Fn(&Edge) -> f64,
) -> Option<Path> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Entry {
        cost: f64,
        node: NodeId,
    }
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .cost
                .total_cmp(&self.cost)
                .then(other.node.cmp(&self.node))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.0] = 0.0;
    heap.push(Entry {
        cost: 0.0,
        node: src,
    });

    while let Some(Entry { cost, node }) = heap.pop() {
        if cost > dist[node.0] {
            continue;
        }
        if node == dst {
            break;
        }
        for e in graph.edges(node) {
            if banned_nodes.contains(&e.to) {
                continue;
            }
            if node == src && banned_first_hops.contains(&e.to) {
                continue;
            }
            let w = weight(e);
            if w == f64::INFINITY {
                continue;
            }
            let next = cost + w;
            if next < dist[e.to.0] {
                dist[e.to.0] = next;
                prev[e.to.0] = Some(node);
                heap.push(Entry {
                    cost: next,
                    node: e.to,
                });
            }
        }
    }
    if dist[dst.0].is_infinite() {
        return None;
    }
    let mut nodes = vec![dst];
    let mut cur = dst;
    while let Some(p) = prev[cur.0] {
        nodes.push(p);
        cur = p;
    }
    nodes.reverse();
    Some(Path {
        nodes,
        total_cost: dist[dst.0],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::dijkstra::latency_weight;
    use crate::topology::LinkTech;

    /// 0—1—3 (2ms), 0—2—3 (4ms), 0—3 (10ms direct)
    fn triple() -> Graph {
        let mut g = Graph::new(4, 0);
        g.add_bidirectional(0, 1, 0.001, 1e6, 0, 0, LinkTech::Rf);
        g.add_bidirectional(1, 3, 0.001, 1e6, 0, 0, LinkTech::Rf);
        g.add_bidirectional(0, 2, 0.002, 1e6, 0, 0, LinkTech::Rf);
        g.add_bidirectional(2, 3, 0.002, 1e6, 0, 0, LinkTech::Rf);
        g.add_bidirectional(0, 3, 0.010, 1e6, 0, 0, LinkTech::Rf);
        g
    }

    #[test]
    fn finds_three_distinct_paths_in_order() {
        let g = triple();
        let paths = k_shortest_paths(&g, 0, 3, 3, latency_weight);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].nodes, vec![0usize, 1, 3]);
        assert_eq!(paths[1].nodes, vec![0usize, 2, 3]);
        assert_eq!(paths[2].nodes, vec![0usize, 3]);
        assert!(paths[0].total_cost <= paths[1].total_cost);
        assert!(paths[1].total_cost <= paths[2].total_cost);
    }

    #[test]
    fn k_larger_than_path_count() {
        let g = triple();
        let paths = k_shortest_paths(&g, 0, 3, 50, latency_weight);
        // Loopless paths: the graph has more than 3 (e.g. 0-1-3 variants
        // via 2), but all must be distinct and sorted.
        for w in paths.windows(2) {
            assert!(w[0].total_cost <= w[1].total_cost + 1e-12);
            assert_ne!(w[0].nodes, w[1].nodes);
        }
    }

    #[test]
    fn paths_are_loopless() {
        let g = triple();
        for p in k_shortest_paths(&g, 0, 3, 10, latency_weight) {
            let mut seen = p.nodes.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), p.nodes.len(), "loop in {:?}", p.nodes);
        }
    }

    #[test]
    fn k_zero_returns_empty() {
        assert!(k_shortest_paths(&triple(), 0, 3, 0, latency_weight).is_empty());
    }

    #[test]
    fn unreachable_returns_empty() {
        let mut g = Graph::new(3, 0);
        g.add_bidirectional(0, 1, 0.001, 1e6, 0, 0, LinkTech::Rf);
        assert!(k_shortest_paths(&g, 0, 2, 3, latency_weight).is_empty());
    }

    #[test]
    fn k_one_matches_dijkstra() {
        let g = triple();
        let y = k_shortest_paths(&g, 0, 3, 1, latency_weight);
        let d = shortest_path(&g, 0, 3, latency_weight).unwrap();
        assert_eq!(y.len(), 1);
        assert_eq!(y[0], d);
    }

    #[test]
    fn deterministic_output() {
        let g = triple();
        let a = k_shortest_paths(&g, 0, 3, 5, latency_weight);
        let b = k_shortest_paths(&g, 0, 3, 5, latency_weight);
        assert_eq!(a, b);
    }
}
