//! Batched per-source route planning with reusable search state.
//!
//! The replan-heavy workloads of §5(2) — adaptive re-routing every tick,
//! fault re-association, topology refreshes — ask for routes for *many*
//! flows at once, and real traffic concentrates: thousands of flows share
//! a handful of gateway or hotspot sources. Running one from-scratch
//! Dijkstra per flow redoes identical work once per flow. The
//! [`RoutePlanner`] instead:
//!
//! * **groups requests by source** and grows one settled-predecessor
//!   shortest-path tree per distinct source, answering every destination
//!   from that tree;
//! * **reuses scratch buffers** (`dist`/`prev`/settled flags and the
//!   binary heap) across trees, with generation stamps so resetting a
//!   buffer set is O(1) instead of O(nodes);
//! * **caches trees between calls** until [`RoutePlanner::invalidate`]
//!   declares the topology or the edge weights changed.
//!
//! # Bitwise equivalence to per-flow search
//!
//! The per-flow search ([`shortest_path`](crate::routing::shortest_path))
//! is Dijkstra with a globally deterministic heap order — entries compare
//! by `(cost, node)` with no randomness — that stops as soon as the
//! destination settles. The pop/relax sequence of such a search is a pure
//! function of `(graph, source, weight)`; the destination only decides
//! *when to stop*. A tree grown for destination set `{d₁, …, dₖ}` is
//! therefore an exact prefix of the per-flow run for each `dᵢ`, and once a
//! node settles its `dist`/`prev` entries are final (non-negative
//! weights), so the predecessor chain extracted for any settled
//! destination — and its total cost — is **bit-for-bit identical** to what
//! the per-flow search returns. The planner buys its speedup purely by
//! not repeating pops, never by changing them; a property test over
//! seeded random graphs (`tests/tests/planner_equivalence.rs`) pins this.
//!
//! # Telemetry
//!
//! Through a [`Recorder`] the planner reports, alongside the established
//! `routing.recomputes` (one per route *request*, preserving the metric's
//! meaning) and `routing.nodes_visited` (heap pops actually performed —
//! now counted once per tree, not once per flow):
//!
//! * `routing.planner.trees` — shortest-path trees grown;
//! * `routing.planner.path_extractions` — paths read out of a tree;
//! * `routing.planner.scratch_reuses` — trees that recycled a pooled
//!   buffer set instead of allocating.

use crate::routing::dijkstra::{HeapEntry, Path};
use crate::routing::qos::{congestion_weight, residual_bps, QosRequirement};
use crate::topology::{Edge, Graph, NodeId};
use openspace_telemetry::{NullRecorder, Recorder};
use std::collections::BinaryHeap;

/// One shortest-path tree rooted at a source, pausable and resumable:
/// the heap keeps its frontier so a later request for a deeper
/// destination continues the same search instead of restarting it.
struct Tree {
    src: NodeId,
    /// Stamp generation: an entry of `touched`/`settled` is valid for
    /// this tree iff it equals `gen`.
    gen: u32,
    /// `touched[i] == gen` ⇒ `dist[i]`/`prev[i]` hold live values.
    touched: Vec<u32>,
    /// `settled_stamp[i] == gen` ⇒ node `i` popped with its final cost.
    settled_stamp: Vec<u32>,
    dist: Vec<f64>,
    /// Predecessor of `i` on the tree; valid when touched and `i != src`.
    prev: Vec<NodeId>,
    heap: BinaryHeap<HeapEntry>,
    /// The frontier ran dry: every reachable node is settled.
    exhausted: bool,
}

impl Tree {
    fn start(mut buffers: Tree, n: usize, src: NodeId) -> Tree {
        buffers.src = src;
        buffers.heap.clear();
        buffers.exhausted = false;
        // Generation bump invalidates every stamp in O(1); on wrap (or a
        // resize) fall back to a hard clear so stale stamps can't alias.
        if buffers.gen == u32::MAX || buffers.touched.len() != n {
            buffers.gen = 1;
            buffers.touched.clear();
            buffers.touched.resize(n, 0);
            buffers.settled_stamp.clear();
            buffers.settled_stamp.resize(n, 0);
            buffers.dist.resize(n, f64::INFINITY);
            buffers.prev.resize(n, NodeId(0));
        } else {
            buffers.gen += 1;
        }
        buffers.touch(src, 0.0);
        buffers.heap.push(HeapEntry {
            cost: 0.0,
            node: src,
        });
        buffers
    }

    fn empty() -> Tree {
        Tree {
            src: NodeId(0),
            gen: u32::MAX, // force the hard-clear path on first start
            touched: Vec::new(),
            settled_stamp: Vec::new(),
            dist: Vec::new(),
            prev: Vec::new(),
            heap: BinaryHeap::new(),
            exhausted: false,
        }
    }

    fn touch(&mut self, node: NodeId, dist: f64) {
        self.touched[node.0] = self.gen;
        self.dist[node.0] = dist;
    }

    fn dist_of(&self, node: NodeId) -> f64 {
        if self.touched[node.0] == self.gen {
            self.dist[node.0]
        } else {
            f64::INFINITY
        }
    }

    fn is_settled(&self, node: NodeId) -> bool {
        self.settled_stamp[node.0] == self.gen
    }

    /// Run (or resume) the search until `dst` settles or the frontier is
    /// exhausted. Returns the number of heap pops performed now — the
    /// same work metric the per-flow search reports.
    fn settle(&mut self, graph: &Graph, dst: NodeId, weight: &impl Fn(&Edge) -> f64) -> u64 {
        if self.is_settled(dst) || self.exhausted {
            return 0;
        }
        let mut visited = 0u64;
        loop {
            let Some(HeapEntry { cost, node }) = self.heap.pop() else {
                self.exhausted = true;
                break;
            };
            if cost > self.dist_of(node) {
                continue; // stale entry
            }
            visited += 1;
            self.settled_stamp[node.0] = self.gen;
            for e in graph.edges(node) {
                let w = weight(e);
                if w == f64::INFINITY {
                    continue;
                }
                assert!(w >= 0.0 && !w.is_nan(), "edge weight must be non-negative");
                let next = cost + w;
                if next < self.dist_of(e.to) {
                    self.touch(e.to, next);
                    self.prev[e.to.0] = node;
                    self.heap.push(HeapEntry {
                        cost: next,
                        node: e.to,
                    });
                }
            }
            if node == dst {
                break;
            }
        }
        visited
    }

    /// Read the path to a settled (or unreachable) destination.
    fn extract(&self, dst: NodeId) -> Option<Path> {
        if self.dist_of(dst).is_infinite() {
            return None;
        }
        debug_assert!(self.is_settled(dst), "extract() before settle()");
        let mut nodes = vec![dst];
        let mut cur = dst;
        while cur != self.src {
            cur = self.prev[cur.0];
            nodes.push(cur);
        }
        nodes.reverse();
        Some(Path {
            nodes,
            total_cost: self.dist[dst.0],
        })
    }
}

/// Batched per-source shortest-path planner (see the [module
/// docs](self) for the equivalence argument and telemetry keys).
///
/// # Cache contract
///
/// Cached trees are valid for one *topology generation*: after any change
/// to the graph's structure **or** to anything an edge-weight function
/// reads (e.g. `load_fraction` before QoS routing), call
/// [`invalidate`](Self::invalidate) before planning again. Planning with
/// a different weight function within one generation likewise requires an
/// `invalidate` in between — the planner cannot see inside the closure.
pub struct RoutePlanner {
    /// Trees grown in the current generation, in first-request order.
    trees: Vec<Tree>,
    /// Retired buffer sets awaiting reuse.
    pool: Vec<Tree>,
    /// Node count the cached trees were built against.
    n: usize,
}

impl Default for RoutePlanner {
    fn default() -> Self {
        Self::new()
    }
}

impl RoutePlanner {
    /// A planner with no cached state.
    pub fn new() -> Self {
        Self {
            trees: Vec::new(),
            pool: Vec::new(),
            n: 0,
        }
    }

    /// Drop every cached tree (buffers are retained for reuse). Call
    /// whenever the topology or the edge weights change.
    pub fn invalidate(&mut self) {
        self.pool.append(&mut self.trees);
    }

    /// Number of trees cached for the current generation.
    pub fn cached_trees(&self) -> usize {
        self.trees.len()
    }

    /// Selective invalidation for a topology delta that replaced exactly
    /// the adjacency rows of `changed_rows`: drop every cached tree the
    /// delta *could* affect, keep the rest, and return how many
    /// survived (also reported as `routing.planner.trees_reused`).
    ///
    /// # Soundness
    ///
    /// A cached tree survives only when
    ///
    /// 1. its search is **exhausted** (the frontier ran dry — no future
    ///    [`plan`](Self::plan) call can pop further nodes), and
    /// 2. every changed node is **unreachable** in it
    ///    (`dist == ∞` at exhaustion).
    ///
    /// Dijkstra's pop/relax sequence reads a node's out-edge row only
    /// when that node settles. Under (1)+(2) no changed row was ever
    /// read; and since reachability from the source is generated by the
    /// out-edges of reachable nodes — all of which are bit-unchanged —
    /// the search on the patched graph pops the same `(cost, node)`
    /// sequence and never reads a changed row either. Every answer the
    /// kept tree serves is therefore bit-identical to a fresh tree on
    /// the patched graph. Anything else (non-exhausted frontier, or a
    /// changed node that was reached) is conservatively dropped.
    ///
    /// Weight functions only see edge bits, so (2) also covers weight
    /// changes confined to the changed rows. Mutations *outside* the
    /// delta (load updates, fault surgery) still require a full
    /// [`invalidate`](Self::invalidate).
    pub fn retain_for_changed_rows(
        &mut self,
        changed_rows: &[NodeId],
        rec: &mut dyn Recorder,
    ) -> usize {
        let keepable =
            |t: &Tree| t.exhausted && changed_rows.iter().all(|&u| t.dist_of(u).is_infinite());
        let mut kept = 0usize;
        for t in std::mem::take(&mut self.trees) {
            if keepable(&t) {
                kept += 1;
                self.trees.push(t);
            } else {
                self.pool.push(t);
            }
        }
        rec.add("routing.planner.trees_reused", kept as u64);
        kept
    }

    /// Plan a batch of `(src, dst)` route requests under `weight`,
    /// returning one `Option<Path>` per request in request order (`None`
    /// when the destination is unreachable). Requests sharing a source
    /// share one shortest-path tree; each answer is bitwise-identical to
    /// what [`shortest_path`](crate::routing::shortest_path) returns for
    /// that request alone.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or a negative/NaN edge weight,
    /// exactly like the per-flow search.
    pub fn plan(
        &mut self,
        graph: &Graph,
        requests: &[(NodeId, NodeId)],
        weight: impl Fn(&Edge) -> f64,
    ) -> Vec<Option<Path>> {
        self.plan_recorded(graph, requests, weight, &mut NullRecorder)
    }

    /// [`plan`](Self::plan) with telemetry (see the [module docs](self)
    /// for the keys).
    pub fn plan_recorded(
        &mut self,
        graph: &Graph,
        requests: &[(NodeId, NodeId)],
        weight: impl Fn(&Edge) -> f64,
        rec: &mut dyn Recorder,
    ) -> Vec<Option<Path>> {
        self.plan_mapped_recorded(graph, requests, weight, Some, rec)
    }

    /// [`plan_recorded`](Self::plan_recorded) with a caller-supplied
    /// extraction map: each found [`Path`] is passed to `map` *as it is
    /// extracted*, and the mapped value is returned in its place.
    ///
    /// This lets a caller compile paths straight into its own route
    /// representation (e.g. the packet simulator's link-index form)
    /// without materializing an intermediate `Vec<Path>`. `map`
    /// returning `None` demotes the request to unroutable (used by the
    /// QoS latency bound); the `routing.planner.path_extractions`
    /// counter still counts the raw extraction, so telemetry is
    /// identical whether or not a map filters.
    pub fn plan_mapped_recorded<T>(
        &mut self,
        graph: &Graph,
        requests: &[(NodeId, NodeId)],
        weight: impl Fn(&Edge) -> f64,
        mut map: impl FnMut(Path) -> Option<T>,
        rec: &mut dyn Recorder,
    ) -> Vec<Option<T>> {
        let n = graph.node_count();
        if n != self.n {
            // A different-sized graph can only mean a new topology.
            self.invalidate();
            self.n = n;
        }
        let mut visited = 0u64;
        let mut trees_built = 0u64;
        let mut scratch_reuses = 0u64;
        let mut extractions = 0u64;
        let paths: Vec<Option<T>> = requests
            .iter()
            .map(|&(src, dst)| {
                assert!(src.0 < n, "src out of range");
                assert!(dst.0 < n, "dst out of range");
                let idx = match self.trees.iter().position(|t| t.src == src) {
                    Some(idx) => idx,
                    None => {
                        let buffers = match self.pool.pop() {
                            Some(b) => {
                                scratch_reuses += 1;
                                b
                            }
                            None => Tree::empty(),
                        };
                        trees_built += 1;
                        self.trees.push(Tree::start(buffers, n, src));
                        self.trees.len() - 1
                    }
                };
                let tree = &mut self.trees[idx];
                visited += tree.settle(graph, dst, &weight);
                let path = tree.extract(dst);
                if path.is_some() {
                    extractions += 1;
                }
                path.and_then(&mut map)
            })
            .collect();
        // `routing.recomputes` keeps its historical meaning — one per
        // route request — so dashboards and tests stay comparable; the
        // planner's win shows up in `routing.nodes_visited` shrinking.
        rec.add("routing.recomputes", requests.len() as u64);
        rec.add("routing.nodes_visited", visited);
        rec.add("routing.planner.trees", trees_built);
        rec.add("routing.planner.path_extractions", extractions);
        rec.add("routing.planner.scratch_reuses", scratch_reuses);
        paths
    }

    /// Single-request convenience over [`plan_recorded`](Self::plan_recorded):
    /// the form [`shortest_path`](crate::routing::shortest_path) and
    /// [`qos_route`](crate::routing::qos_route) wrap.
    pub fn route_recorded(
        &mut self,
        graph: &Graph,
        src: impl Into<NodeId>,
        dst: impl Into<NodeId>,
        weight: impl Fn(&Edge) -> f64,
        rec: &mut dyn Recorder,
    ) -> Option<Path> {
        self.plan_recorded(graph, &[(src.into(), dst.into())], weight, rec)
            .pop()
            .flatten()
    }

    /// Batched QoS routing: the planner analogue of
    /// [`qos_route`](crate::routing::qos_route). Links whose residual
    /// bandwidth misses the requirement's floor are filtered, paths are
    /// costed by [`congestion_weight`], and answers that violate the
    /// latency bound come back as `None`.
    pub fn plan_qos_recorded(
        &mut self,
        graph: &Graph,
        requests: &[(NodeId, NodeId)],
        requirement: &QosRequirement,
        packet_bits: f64,
        rec: &mut dyn Recorder,
    ) -> Vec<Option<Path>> {
        self.plan_qos_mapped_recorded(graph, requests, requirement, packet_bits, Some, rec)
    }

    /// [`plan_qos_recorded`](Self::plan_qos_recorded) with a
    /// caller-supplied extraction map (see
    /// [`plan_mapped_recorded`](Self::plan_mapped_recorded)). The QoS
    /// latency bound is applied *before* `map`, so `map` only ever sees
    /// admissible paths.
    pub fn plan_qos_mapped_recorded<T>(
        &mut self,
        graph: &Graph,
        requests: &[(NodeId, NodeId)],
        requirement: &QosRequirement,
        packet_bits: f64,
        mut map: impl FnMut(Path) -> Option<T>,
        rec: &mut dyn Recorder,
    ) -> Vec<Option<T>> {
        let min_bw = requirement.min_bandwidth_bps;
        let max_latency = requirement.max_latency_s;
        self.plan_mapped_recorded(
            graph,
            requests,
            |e| {
                if residual_bps(e) < min_bw {
                    f64::INFINITY
                } else {
                    congestion_weight(e, packet_bits)
                }
            },
            |p| {
                if p.total_cost <= max_latency {
                    map(p)
                } else {
                    None
                }
            },
            rec,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{latency_weight, qos_route, shortest_path};
    use crate::topology::LinkTech;
    use openspace_telemetry::MemoryRecorder;

    /// 0 —1ms— 1 —1ms— 2  plus a 5 ms direct 0 — 2, and a stub 3.
    fn diamond() -> Graph {
        let mut g = Graph::new(4, 0);
        g.add_bidirectional(0, 1, 0.001, 1e6, 0u32, 0u32, LinkTech::Rf);
        g.add_bidirectional(1, 2, 0.001, 1e6, 0u32, 0u32, LinkTech::Rf);
        g.add_bidirectional(0, 2, 0.005, 1e9, 0u32, 0u32, LinkTech::Rf);
        g
    }

    #[test]
    fn batch_matches_per_flow_search_bitwise() {
        let g = diamond();
        let reqs = [
            (NodeId(0), NodeId(2)),
            (NodeId(0), NodeId(1)),
            (NodeId(1), NodeId(2)),
            (NodeId(0), NodeId(2)),
        ];
        let mut planner = RoutePlanner::new();
        let batched = planner.plan(&g, &reqs, latency_weight);
        for (req, got) in reqs.iter().zip(&batched) {
            let solo = shortest_path(&g, req.0, req.1, latency_weight);
            let (got, solo) = (got.as_ref().unwrap(), solo.unwrap());
            assert_eq!(got.nodes, solo.nodes);
            assert_eq!(got.total_cost.to_bits(), solo.total_cost.to_bits());
        }
    }

    #[test]
    fn shared_source_grows_one_tree() {
        let g = diamond();
        let reqs: Vec<(NodeId, NodeId)> = (1..4).map(|d| (NodeId(0), NodeId(d))).collect();
        let mut planner = RoutePlanner::new();
        let mut rec = MemoryRecorder::new();
        planner.plan_recorded(&g, &reqs, latency_weight, &mut rec);
        assert_eq!(rec.counter("routing.planner.trees"), 1);
        assert_eq!(rec.counter("routing.recomputes"), 3);
        assert_eq!(planner.cached_trees(), 1);
    }

    #[test]
    fn unreachable_destination_is_none() {
        let g = diamond(); // node 3 is isolated
        let mut planner = RoutePlanner::new();
        let out = planner.plan(
            &g,
            &[(NodeId(0), NodeId(3)), (NodeId(0), NodeId(2))],
            latency_weight,
        );
        assert!(out[0].is_none());
        // The exhausted tree still answers reachable destinations.
        assert!(out[1].is_some());
    }

    #[test]
    fn source_equals_destination() {
        let g = diamond();
        let mut planner = RoutePlanner::new();
        let p = planner
            .route_recorded(&g, 1, 1, latency_weight, &mut NullRecorder)
            .unwrap();
        assert_eq!(p.nodes, vec![NodeId(1)]);
        assert_eq!(p.total_cost, 0.0);
    }

    #[test]
    fn cache_survives_calls_and_invalidate_resets_it() {
        let g = diamond();
        let mut planner = RoutePlanner::new();
        let mut rec = MemoryRecorder::new();
        planner.plan_recorded(&g, &[(NodeId(0), NodeId(2))], latency_weight, &mut rec);
        planner.plan_recorded(&g, &[(NodeId(0), NodeId(1))], latency_weight, &mut rec);
        assert_eq!(rec.counter("routing.planner.trees"), 1, "cache hit");
        planner.invalidate();
        planner.plan_recorded(&g, &[(NodeId(0), NodeId(2))], latency_weight, &mut rec);
        assert_eq!(rec.counter("routing.planner.trees"), 2);
        assert_eq!(
            rec.counter("routing.planner.scratch_reuses"),
            1,
            "the invalidated tree's buffers were recycled"
        );
    }

    #[test]
    fn qos_batch_matches_qos_route() {
        let mut g = diamond();
        g.set_load(0, 1, 0.9).unwrap();
        g.set_load(1, 2, 0.9).unwrap();
        let req = QosRequirement {
            min_bandwidth_bps: 2e5,
            max_latency_s: f64::INFINITY,
        };
        let mut planner = RoutePlanner::new();
        let batched = planner.plan_qos_recorded(
            &g,
            &[(NodeId(0), NodeId(2))],
            &req,
            12_000.0,
            &mut NullRecorder,
        );
        let solo = qos_route(&g, 0, 2, &req, 12_000.0).unwrap();
        let got = batched[0].as_ref().unwrap();
        assert_eq!(got.nodes, solo.nodes);
        assert_eq!(got.total_cost.to_bits(), solo.total_cost.to_bits());
    }

    #[test]
    fn qos_latency_bound_filters_answers() {
        let g = diamond();
        let req = QosRequirement {
            min_bandwidth_bps: 0.0,
            max_latency_s: 1e-9, // unmeetable
        };
        let mut planner = RoutePlanner::new();
        let out = planner.plan_qos_recorded(
            &g,
            &[(NodeId(0), NodeId(2))],
            &req,
            12_000.0,
            &mut NullRecorder,
        );
        assert!(out[0].is_none());
    }

    #[test]
    fn node_count_change_invalidates_automatically() {
        let small = diamond();
        let mut planner = RoutePlanner::new();
        planner.plan(&small, &[(NodeId(0), NodeId(2))], latency_weight);
        let mut big = Graph::new(6, 0);
        big.add_bidirectional(0, 5, 0.001, 1e6, 0u32, 0u32, LinkTech::Rf);
        let out = planner.plan(&big, &[(NodeId(0), NodeId(5))], latency_weight);
        assert_eq!(out[0].as_ref().unwrap().nodes, vec![NodeId(0), NodeId(5)]);
    }

    #[test]
    fn retain_keeps_only_provably_unaffected_trees() {
        let g = diamond(); // node 3 isolated
        let mut planner = RoutePlanner::new();
        // Exhaust the tree rooted at 0 by asking for the isolated node.
        planner.plan(&g, &[(NodeId(0), NodeId(3))], latency_weight);
        assert_eq!(planner.cached_trees(), 1);

        // A change confined to the unreachable node's row keeps the tree.
        let mut rec = MemoryRecorder::new();
        let kept = planner.retain_for_changed_rows(&[NodeId(3)], &mut rec);
        assert_eq!(kept, 1);
        assert_eq!(rec.counter("routing.planner.trees_reused"), 1);
        assert_eq!(planner.cached_trees(), 1);

        // A change touching a reachable node drops it.
        let kept = planner.retain_for_changed_rows(&[NodeId(3), NodeId(1)], &mut rec);
        assert_eq!(kept, 0);
        assert_eq!(planner.cached_trees(), 0);

        // A non-exhausted tree is dropped even for unreachable rows:
        // a later plan() call could resume its frontier.
        planner.plan(&g, &[(NodeId(0), NodeId(1))], latency_weight);
        let kept = planner.retain_for_changed_rows(&[NodeId(3)], &mut rec);
        assert_eq!(kept, 0, "frontier not exhausted");
    }

    #[test]
    fn retained_tree_answers_match_fresh_planner_bitwise() {
        let g = diamond();
        let mut planner = RoutePlanner::new();
        planner.plan(&g, &[(NodeId(0), NodeId(3))], latency_weight); // exhausted
        let mut patched = g.clone();
        // Give the isolated node an out-edge (a one-directional row
        // change: only node 3's row differs).
        patched.add_edge(
            3,
            Edge {
                to: NodeId(0),
                latency_s: 0.002,
                capacity_bps: 1e6,
                operator: crate::topology::OperatorId(0),
                technology: LinkTech::Rf,
                load_fraction: 0.0,
            },
        );
        let kept = planner.retain_for_changed_rows(&[NodeId(3)], &mut NullRecorder);
        assert_eq!(kept, 1);
        let cached = planner.plan(&patched, &[(NodeId(0), NodeId(2))], latency_weight);
        let fresh = RoutePlanner::new().plan(&patched, &[(NodeId(0), NodeId(2))], latency_weight);
        let (c, f) = (cached[0].as_ref().unwrap(), fresh[0].as_ref().unwrap());
        assert_eq!(c.nodes, f.nodes);
        assert_eq!(c.total_cost.to_bits(), f.total_cost.to_bits());
    }

    #[test]
    fn visited_work_shrinks_for_shared_sources() {
        // A line graph: every per-flow search from node 0 re-walks the
        // prefix; the tree walks it once.
        let n = 64;
        let mut g = Graph::new(n, 0);
        for i in 0..n - 1 {
            g.add_bidirectional(i, i + 1, 0.001, 1e6, 0u32, 0u32, LinkTech::Rf);
        }
        let reqs: Vec<(NodeId, NodeId)> = (1..n).map(|d| (NodeId(0), NodeId(d))).collect();
        let mut solo_visited = 0;
        for &(s, d) in &reqs {
            let mut rec = MemoryRecorder::new();
            crate::routing::shortest_path_recorded(&g, s, d, latency_weight, &mut rec);
            solo_visited += rec.counter("routing.nodes_visited");
        }
        let mut rec = MemoryRecorder::new();
        RoutePlanner::new().plan_recorded(&g, &reqs, latency_weight, &mut rec);
        let batched_visited = rec.counter("routing.nodes_visited");
        assert!(
            batched_visited * 2 <= solo_visited,
            "batched {batched_visited} vs per-flow {solo_visited}"
        );
    }
}
