//! Applying fault-plan events to a live topology.
//!
//! [`OutageTracker`] consumes the [`TopologyEvent`] stream a
//! [`FaultPlan`](openspace_sim::fault::FaultPlan) compiles to and keeps
//! the bookkeeping needed to (a) undo each outage exactly when its
//! recovery event arrives and (b) undo *everything* at end of run
//! ([`OutageTracker::revert_all`]), restoring the pre-fault graph
//! bit-for-bit. Each application returns a [`TopologyDelta`] naming the
//! directed links that vanished or reappeared, which the network
//! simulator uses to drop in-flight packets and re-create link state.

use crate::topology::{Edge, Graph, LinkOutage, NodeId, NodeOutage, TopologyError};
use openspace_sim::fault::{TopologyEvent, TopologyEventKind};

/// The observable effect of applying one topology event.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TopologyDelta {
    /// Directed links removed from the graph by this event.
    pub removed_links: Vec<(NodeId, NodeId)>,
    /// Directed links re-added to the graph, with their edge data.
    pub restored_links: Vec<(NodeId, Edge)>,
}

impl TopologyDelta {
    /// Whether the event changed the graph at all.
    pub fn is_empty(&self) -> bool {
        self.removed_links.is_empty() && self.restored_links.is_empty()
    }
}

/// Identity of an open outage, for matching recovery events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutageKey {
    Node(NodeId),
    Link(NodeId, NodeId),
}

#[derive(Debug, Clone, PartialEq)]
enum OpenOutage {
    Node(NodeOutage),
    Link(LinkOutage),
}

/// Stateful applier of [`TopologyEvent`]s to a [`Graph`].
///
/// Semantics are idempotent in the directions faults compose: downing
/// an already-down entity is a no-op (the later recovery still restores
/// it once), and a recovery with no matching outage is a no-op. Link
/// faults on a link whose endpoint already failed are no-ops too — the
/// node outage already owns those edges and will restore them.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct OutageTracker {
    /// Open outages in application order (LIFO restores exactly).
    open: Vec<(OutageKey, OpenOutage)>,
}

impl OutageTracker {
    /// A tracker with no open outages.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `node` is currently failed.
    pub fn is_node_down(&self, node: impl Into<NodeId>) -> bool {
        let node = node.into();
        self.open
            .iter()
            .any(|(key, _)| matches!(key, OutageKey::Node(n) if *n == node))
    }

    /// Number of outages currently open.
    pub fn open_outages(&self) -> usize {
        self.open.len()
    }

    /// Apply one event to `graph`, returning what changed.
    ///
    /// Errs only on out-of-range nodes (a plan compiled against a
    /// different topology); all legitimate runtime races — duplicate
    /// downs, recoveries of never-failed entities, faults on links whose
    /// endpoints already died — resolve to empty deltas.
    pub fn apply(
        &mut self,
        graph: &mut Graph,
        event: &TopologyEvent,
    ) -> Result<TopologyDelta, TopologyError> {
        match event.kind {
            TopologyEventKind::NodeDown(node) => {
                if self.is_node_down(node) {
                    return Ok(TopologyDelta::default());
                }
                let outage = graph.fail_node(node)?;
                let delta = TopologyDelta {
                    removed_links: outage.removed_links(),
                    restored_links: Vec::new(),
                };
                self.open
                    .push((OutageKey::Node(node), OpenOutage::Node(outage)));
                Ok(delta)
            }
            TopologyEventKind::NodeUp(node) => {
                let Some(pos) = self
                    .open
                    .iter()
                    .rposition(|(key, _)| *key == OutageKey::Node(node))
                else {
                    return Ok(TopologyDelta::default());
                };
                self.close_at(graph, pos)?;
                // Net effect: every edge touching `node` that survived the
                // re-application of the remaining outages reappeared.
                let restored_links = edges_touching(graph, node);
                Ok(TopologyDelta {
                    removed_links: Vec::new(),
                    restored_links,
                })
            }
            TopologyEventKind::LinkDown(a, b) => {
                let key = OutageKey::Link(a.min(b), a.max(b));
                let already_down = self.open.iter().any(|(k, _)| *k == key);
                if already_down || self.is_node_down(a) || self.is_node_down(b) {
                    return Ok(TopologyDelta::default());
                }
                match graph.fail_link(a, b) {
                    Ok(outage) => {
                        let delta = TopologyDelta {
                            removed_links: outage.removed_links(),
                            restored_links: Vec::new(),
                        };
                        self.open.push((key, OpenOutage::Link(outage)));
                        Ok(delta)
                    }
                    // No such edge in this snapshot: nothing to fail.
                    Err(TopologyError::NoSuchEdge(_)) => Ok(TopologyDelta::default()),
                    Err(e) => Err(e),
                }
            }
            TopologyEventKind::LinkUp(a, b) => {
                let key = OutageKey::Link(a.min(b), a.max(b));
                let Some(pos) = self.open.iter().rposition(|(k, _)| *k == key) else {
                    return Ok(TopologyDelta::default());
                };
                self.close_at(graph, pos)?;
                let mut restored_links = Vec::new();
                for (from, to) in [(a, b), (b, a)] {
                    if let Some(e) = graph.find_edge(from, to) {
                        restored_links.push((from, *e));
                    }
                }
                Ok(TopologyDelta {
                    removed_links: Vec::new(),
                    restored_links,
                })
            }
            // Membership bookkeeping, not a graph change: the compiler
            // emits explicit NodeDown events for the operator's assets.
            TopologyEventKind::OperatorWithdrawn(_) => Ok(TopologyDelta::default()),
        }
    }

    /// Undo every still-open outage (most recent first), restoring the
    /// graph to its pre-fault state exactly.
    pub fn revert_all(&mut self, graph: &mut Graph) {
        while let Some((_, open)) = self.open.pop() {
            revert_one(graph, open);
        }
    }

    /// Close the outage at stack position `pos`, possibly mid-stack.
    ///
    /// Outage records are positional, so they only replay exactly in LIFO
    /// order. Recoveries arrive in arbitrary order, though; to keep the
    /// stack LIFO-consistent we revert every outage above the target,
    /// revert the target, then re-apply the survivors in their original
    /// order against the now-current graph, giving them fresh records.
    /// This is O(open outages × degree) per recovery — outage counts are
    /// tiny next to topology sizes.
    fn close_at(&mut self, graph: &mut Graph, pos: usize) -> Result<(), TopologyError> {
        let mut reapply: Vec<OutageKey> = Vec::new();
        while self.open.len() > pos + 1 {
            let Some((key, open)) = self.open.pop() else {
                break; // unreachable: len > pos + 1 >= 1
            };
            revert_one(graph, open);
            reapply.push(key);
        }
        if let Some((_, target)) = self.open.pop() {
            revert_one(graph, target);
        }
        for key in reapply.into_iter().rev() {
            let open = match key {
                OutageKey::Node(n) => OpenOutage::Node(graph.fail_node(n)?),
                OutageKey::Link(a, b) => match graph.fail_link(a, b) {
                    Ok(o) => OpenOutage::Link(o),
                    // The link existed when this outage opened and closing
                    // the target only adds edges, so this cannot happen;
                    // degrade to dropping the (already-removed) outage.
                    Err(TopologyError::NoSuchEdge(_)) => continue,
                    Err(e) => return Err(e),
                },
            };
            self.open.push((key, open));
        }
        Ok(())
    }
}

fn revert_one(graph: &mut Graph, open: OpenOutage) {
    match open {
        OpenOutage::Node(outage) => graph.restore_node(outage),
        OpenOutage::Link(outage) => graph.restore_link(outage),
    }
}

/// Every directed edge currently in `graph` with `node` as an endpoint.
fn edges_touching(graph: &Graph, node: NodeId) -> Vec<(NodeId, Edge)> {
    let mut out: Vec<(NodeId, Edge)> = graph.edges(node).iter().map(|e| (node, *e)).collect();
    for m in 0..graph.node_count() {
        if m == node.0 {
            continue;
        }
        for e in graph.edges(m) {
            if e.to == node {
                out.push((NodeId(m), *e));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkTech;
    use openspace_sim::fault::{FaultPlan, FaultTopology};
    use openspace_sim::ids::OperatorId;

    fn ring(n: usize) -> Graph {
        let mut g = Graph::new(n, 0);
        for i in 0..n {
            g.add_bidirectional(i, (i + 1) % n, 0.004, 1e9, 0u32, 0u32, LinkTech::Rf);
        }
        g
    }

    fn ev(kind: TopologyEventKind) -> TopologyEvent {
        TopologyEvent {
            at_s: 0.0,
            seq: 0,
            kind,
        }
    }

    #[test]
    fn node_down_then_up_restores_graph() {
        let original = ring(5);
        let mut g = original.clone();
        let mut tracker = OutageTracker::new();
        let down = tracker
            .apply(&mut g, &ev(TopologyEventKind::NodeDown(NodeId(2))))
            .unwrap();
        assert_eq!(down.removed_links.len(), 4);
        assert!(tracker.is_node_down(2usize));
        let up = tracker
            .apply(&mut g, &ev(TopologyEventKind::NodeUp(NodeId(2))))
            .unwrap();
        assert_eq!(up.restored_links.len(), 4);
        assert_eq!(g, original);
        assert_eq!(tracker.open_outages(), 0);
    }

    #[test]
    fn duplicate_down_is_idempotent() {
        let original = ring(4);
        let mut g = original.clone();
        let mut tracker = OutageTracker::new();
        tracker
            .apply(&mut g, &ev(TopologyEventKind::NodeDown(NodeId(1))))
            .unwrap();
        let dup = tracker
            .apply(&mut g, &ev(TopologyEventKind::NodeDown(NodeId(1))))
            .unwrap();
        assert!(dup.is_empty());
        tracker
            .apply(&mut g, &ev(TopologyEventKind::NodeUp(NodeId(1))))
            .unwrap();
        assert_eq!(g, original);
    }

    #[test]
    fn up_without_down_is_a_no_op() {
        let mut g = ring(4);
        let mut tracker = OutageTracker::new();
        let delta = tracker
            .apply(&mut g, &ev(TopologyEventKind::NodeUp(NodeId(0))))
            .unwrap();
        assert!(delta.is_empty());
        assert_eq!(g, ring(4));
    }

    #[test]
    fn link_fault_on_dead_node_is_a_no_op() {
        let original = ring(4);
        let mut g = original.clone();
        let mut tracker = OutageTracker::new();
        tracker
            .apply(&mut g, &ev(TopologyEventKind::NodeDown(NodeId(0))))
            .unwrap();
        let flap = tracker
            .apply(
                &mut g,
                &ev(TopologyEventKind::LinkDown(NodeId(0), NodeId(1))),
            )
            .unwrap();
        assert!(flap.is_empty(), "node outage already owns those edges");
        // The matching LinkUp must not resurrect edges the node outage owns.
        let up = tracker
            .apply(&mut g, &ev(TopologyEventKind::LinkUp(NodeId(0), NodeId(1))))
            .unwrap();
        assert!(up.is_empty());
        tracker
            .apply(&mut g, &ev(TopologyEventKind::NodeUp(NodeId(0))))
            .unwrap();
        assert_eq!(g, original);
    }

    #[test]
    fn link_keys_are_direction_insensitive() {
        let original = ring(4);
        let mut g = original.clone();
        let mut tracker = OutageTracker::new();
        tracker
            .apply(
                &mut g,
                &ev(TopologyEventKind::LinkDown(NodeId(2), NodeId(1))),
            )
            .unwrap();
        let up = tracker
            .apply(&mut g, &ev(TopologyEventKind::LinkUp(NodeId(1), NodeId(2))))
            .unwrap();
        assert_eq!(up.restored_links.len(), 2);
        assert_eq!(g, original);
    }

    #[test]
    fn revert_all_after_compiled_plan_restores_graph() {
        let original = ring(6);
        let mut g = original.clone();
        let topo = FaultTopology::homogeneous(6, 0, OperatorId(0));
        let plan = FaultPlan::builder()
            .seed(11)
            .sat_failure(0usize, 1.0)
            .link_flap(2usize, 3usize, 2.0, 5.0, 5.0, 3)
            .random_sat_outages(30.0, 40.0, 0.0, 600.0)
            .build()
            .unwrap();
        let events = plan.compile(&topo).unwrap();
        assert!(!events.is_empty());
        let mut tracker = OutageTracker::new();
        for ev in &events {
            tracker.apply(&mut g, ev).unwrap();
        }
        assert_ne!(g, original, "permanent failure leaves the graph degraded");
        tracker.revert_all(&mut g);
        assert_eq!(g, original);
        assert_eq!(tracker.open_outages(), 0);
    }

    #[test]
    fn out_of_range_event_is_an_error() {
        let mut g = ring(3);
        let mut tracker = OutageTracker::new();
        assert!(tracker
            .apply(&mut g, &ev(TopologyEventKind::NodeDown(NodeId(99))))
            .is_err());
    }
}
