//! Handover successor prediction.
//!
//! §2.2: "the satellite uses advance knowledge of orbital trajectories to
//! pick a successor, i.e., the satellite that it will hand over its
//! connection to the ground user to, once the satellite is out of the
//! ground user's line-of-sight."
//!
//! [`service_schedule`] turns a contact plan into the sequence of serving
//! satellites a user experiences; experiment E4 measures its handover
//! cadence against constellation density (the Starlink-every-15-s claim).
//! [`service_schedule_with_outages`] additionally consumes satellite
//! outage windows from a fault plan: a user whose access satellite dies
//! mid-pass is *forcibly* re-associated to the best surviving satellite,
//! and the schedule counts those unplanned handovers separately.

use crate::contact::ContactWindow;
use openspace_sim::config::ConfigError;
use openspace_sim::ids::SatId;

/// One serving interval in a user's schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceInterval {
    /// Serving satellite index.
    pub sat_index: SatId,
    /// Service start (s).
    pub start_s: f64,
    /// Service end (s) — a handover or an outage boundary.
    pub end_s: f64,
}

/// A user's serving schedule plus outage accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSchedule {
    /// Serving intervals in time order (gaps between them are outages).
    pub intervals: Vec<ServiceInterval>,
    /// Number of satellite-to-satellite handovers (transitions without an
    /// intervening outage).
    pub handovers: usize,
    /// Of those, handovers forced by the serving satellite failing
    /// mid-pass rather than setting on schedule. Zero without faults.
    pub forced_reassociations: usize,
    /// Total time with no serving satellite (s).
    pub outage_s: f64,
}

impl ServiceSchedule {
    /// Mean time between handovers (s); `None` with fewer than one
    /// handover.
    pub fn mean_time_between_handovers_s(&self) -> Option<f64> {
        if self.handovers == 0 {
            return None;
        }
        let served: f64 = self.intervals.iter().map(|i| i.end_s - i.start_s).sum();
        Some(served / self.handovers as f64)
    }
}

/// A time span during which one satellite is failed (from a compiled
/// fault plan).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SatOutageWindow {
    /// The failed satellite.
    pub sat: SatId,
    /// Outage start (s).
    pub start_s: f64,
    /// Outage end (s); `f64::INFINITY` for a permanent failure.
    pub end_s: f64,
}

impl SatOutageWindow {
    fn covers(&self, sat: SatId, t_s: f64) -> bool {
        self.sat == sat && (self.start_s..self.end_s).contains(&t_s)
    }
}

/// Build the serving schedule over `[t_start, t_end)` from a contact
/// plan, using the paper's policy: stay on the current satellite until it
/// sets, then switch to the predicted successor — the visible satellite
/// whose window extends furthest (maximizing time to the next handover,
/// which the serving satellite can compute from public orbits).
///
/// Errs on an inverted interval.
pub fn service_schedule(
    windows: &[ContactWindow],
    t_start_s: f64,
    t_end_s: f64,
) -> Result<ServiceSchedule, ConfigError> {
    service_schedule_with_outages(windows, &[], t_start_s, t_end_s)
}

/// [`service_schedule`] under satellite outages: a satellite is only
/// eligible to serve while alive, and the serving interval of a user
/// whose satellite fails mid-pass is cut short — the user re-associates
/// immediately to the best surviving visible satellite (a *forced*
/// re-association), or falls into outage when none exists.
pub fn service_schedule_with_outages(
    windows: &[ContactWindow],
    outages: &[SatOutageWindow],
    t_start_s: f64,
    t_end_s: f64,
) -> Result<ServiceSchedule, ConfigError> {
    service_schedule_with_outages_recorded(
        windows,
        outages,
        t_start_s,
        t_end_s,
        &mut openspace_telemetry::NullRecorder,
    )
}

/// [`service_schedule_with_outages`] with telemetry: on success, records
/// the schedule's successor switches (`handover.switches`), the subset
/// forced by mid-pass failures (`handover.forced_reassociations`), and
/// the accumulated dead air (`handover.outage_s` gauge, plus the
/// `handover.outage_s` histogram sample so multi-user experiments get a
/// distribution).
pub fn service_schedule_with_outages_recorded(
    windows: &[ContactWindow],
    outages: &[SatOutageWindow],
    t_start_s: f64,
    t_end_s: f64,
    rec: &mut dyn openspace_telemetry::Recorder,
) -> Result<ServiceSchedule, ConfigError> {
    let schedule = service_schedule_with_outages_inner(windows, outages, t_start_s, t_end_s)?;
    rec.add("handover.schedules", 1);
    rec.add("handover.switches", schedule.handovers as u64);
    rec.add(
        "handover.forced_reassociations",
        schedule.forced_reassociations as u64,
    );
    rec.observe("handover.outage_s", schedule.outage_s);
    Ok(schedule)
}

fn service_schedule_with_outages_inner(
    windows: &[ContactWindow],
    outages: &[SatOutageWindow],
    t_start_s: f64,
    t_end_s: f64,
) -> Result<ServiceSchedule, ConfigError> {
    if t_end_s < t_start_s {
        return Err(ConfigError::InvertedInterval {
            field: "service_schedule.interval",
            start: t_start_s,
            end: t_end_s,
        });
    }
    let alive = |sat: SatId, t: f64| !outages.iter().any(|o| o.covers(sat, t));
    // The satellite serving at `t` keeps serving until its window ends —
    // or until its next outage begins, whichever is first.
    let serve_end = |w: &ContactWindow, t: f64| {
        let death = outages
            .iter()
            .filter(|o| o.sat == w.sat_index && o.start_s > t)
            .map(|o| o.start_s)
            .fold(f64::INFINITY, f64::min);
        w.end_s.min(death)
    };

    let mut intervals: Vec<ServiceInterval> = Vec::new();
    let mut handovers = 0usize;
    let mut forced = 0usize;
    let mut outage = 0.0f64;
    let mut t = t_start_s;
    // Whether the previous interval ended because its satellite failed.
    let mut last_end_was_fault = false;

    while t < t_end_s {
        // Visible, alive windows at t; pick the one whose *contact
        // window* lasts longest. Orbits are public, faults are not: the
        // predictor ranks successors by visibility alone, and an outage
        // merely cuts the chosen interval short when it strikes.
        let best = windows
            .iter()
            .filter(|w| w.contains(t) && alive(w.sat_index, t))
            .max_by(|a, b| {
                a.end_s
                    .total_cmp(&b.end_s)
                    .then(b.sat_index.cmp(&a.sat_index))
            });
        match best {
            Some(w) => {
                let natural_end = serve_end(w, t);
                let end = natural_end.min(t_end_s);
                let came_from_service = intervals
                    .last()
                    .is_some_and(|last: &ServiceInterval| last.end_s == t);
                if came_from_service {
                    handovers += 1;
                    if last_end_was_fault {
                        forced += 1;
                    }
                }
                last_end_was_fault = natural_end < w.end_s.min(t_end_s);
                intervals.push(ServiceInterval {
                    sat_index: w.sat_index,
                    start_s: t,
                    end_s: end,
                });
                t = end;
            }
            None => {
                // Outage until a window opens or a failed satellite that
                // is inside a current window recovers.
                let next_window = windows
                    .iter()
                    .map(|w| w.start_s)
                    .filter(|&s| s > t)
                    .fold(f64::INFINITY, f64::min);
                let next_recovery = outages
                    .iter()
                    .filter(|o| o.end_s > t && o.end_s < f64::INFINITY)
                    .filter(|o| {
                        windows
                            .iter()
                            .any(|w| w.sat_index == o.sat && w.contains(o.end_s))
                    })
                    .map(|o| o.end_s)
                    .fold(f64::INFINITY, f64::min);
                let until = next_window.min(next_recovery).min(t_end_s);
                outage += until - t;
                t = until;
                last_end_was_fault = false;
            }
        }
    }

    Ok(ServiceSchedule {
        intervals,
        handovers,
        forced_reassociations: forced,
        outage_s: outage,
    })
}

/// Interruption time per handover under two protocols:
///
/// * **OpenSpace successor prediction**: the user receives the successor
///   in advance and commits with a session token — one round trip to the
///   successor, no re-authentication.
/// * **Re-authentication baseline**: association + RADIUS round trip to
///   the home AAA over ISLs.
///
/// Both are expressed in terms of the constituent delays so experiments
/// can parameterize them.
#[derive(Debug, Clone, Copy)]
pub struct HandoverCost {
    /// One-way user↔satellite propagation + processing (s).
    pub access_rtt_s: f64,
    /// Round-trip to the home AAA over ISLs (s) — only paid on re-auth.
    pub home_auth_rtt_s: f64,
}

impl HandoverCost {
    /// Interruption with successor prediction: one access round trip.
    pub fn predicted_interruption_s(&self) -> f64 {
        self.access_rtt_s
    }

    /// Interruption with full re-authentication: association plus the
    /// home-AAA round trip.
    pub fn reauth_interruption_s(&self) -> f64 {
        2.0 * self.access_rtt_s + self.home_auth_rtt_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(sat: usize, start: f64, end: f64) -> ContactWindow {
        ContactWindow {
            sat_index: SatId(sat),
            start_s: start,
            end_s: end,
        }
    }

    fn dead(sat: usize, start: f64, end: f64) -> SatOutageWindow {
        SatOutageWindow {
            sat: SatId(sat),
            start_s: start,
            end_s: end,
        }
    }

    #[test]
    fn seamless_two_sat_schedule() {
        // Sat 0 visible [0,100), sat 1 visible [80,200): one handover at 100.
        let windows = [w(0, 0.0, 100.0), w(1, 80.0, 200.0)];
        let s = service_schedule(&windows, 0.0, 200.0).unwrap();
        assert_eq!(s.intervals.len(), 2);
        assert_eq!(s.intervals[0].sat_index, SatId(0));
        assert_eq!(s.intervals[1].sat_index, SatId(1));
        assert_eq!(s.intervals[1].start_s, 100.0);
        assert_eq!(s.handovers, 1);
        assert_eq!(s.forced_reassociations, 0);
        assert_eq!(s.outage_s, 0.0);
    }

    #[test]
    fn gap_counts_as_outage_not_handover() {
        let windows = [w(0, 0.0, 50.0), w(1, 80.0, 150.0)];
        let s = service_schedule(&windows, 0.0, 150.0).unwrap();
        assert_eq!(s.handovers, 0, "outage breaks the handover chain");
        assert_eq!(s.outage_s, 30.0);
        assert_eq!(s.intervals.len(), 2);
    }

    #[test]
    fn picks_longest_lasting_visible_sat() {
        // At t=0 both are visible; sat 1 lasts longer and must be chosen.
        let windows = [w(0, 0.0, 50.0), w(1, 0.0, 300.0)];
        let s = service_schedule(&windows, 0.0, 300.0).unwrap();
        assert_eq!(s.intervals.len(), 1);
        assert_eq!(s.intervals[0].sat_index, SatId(1));
        assert_eq!(s.handovers, 0);
    }

    #[test]
    fn dense_windows_mean_frequent_handovers() {
        // Staggered 30-s windows with 15-s overlap. The longest-lasting
        // successor policy rides each chosen satellite for its full 30 s
        // window (skipping every other candidate), so the cadence is the
        // window length — still Starlink-order tens of seconds.
        let mut windows = Vec::new();
        for k in 0..20 {
            let start = 15.0 * k as f64;
            windows.push(w(k, start, start + 30.0));
        }
        let s = service_schedule(&windows, 0.0, 250.0).unwrap();
        assert!(s.handovers >= 7, "handovers {}", s.handovers);
        assert_eq!(s.outage_s, 0.0);
        let mtbh = s.mean_time_between_handovers_s().unwrap();
        assert!(
            (mtbh - 30.0).abs() < 5.0,
            "mean time between handovers {mtbh}"
        );
    }

    #[test]
    fn no_windows_is_all_outage() {
        let s = service_schedule(&[], 0.0, 100.0).unwrap();
        assert!(s.intervals.is_empty());
        assert_eq!(s.outage_s, 100.0);
        assert_eq!(s.mean_time_between_handovers_s(), None);
    }

    #[test]
    fn horizon_clamps_final_interval() {
        let windows = [w(0, 0.0, 1_000.0)];
        let s = service_schedule(&windows, 0.0, 100.0).unwrap();
        assert_eq!(s.intervals[0].end_s, 100.0);
    }

    #[test]
    fn inverted_interval_is_an_error_not_a_panic() {
        assert!(matches!(
            service_schedule(&[], 100.0, 0.0),
            Err(ConfigError::InvertedInterval { .. })
        ));
    }

    #[test]
    fn predicted_handover_is_cheaper() {
        let c = HandoverCost {
            access_rtt_s: 0.01,
            home_auth_rtt_s: 0.08,
        };
        assert!(c.predicted_interruption_s() < c.reauth_interruption_s() / 5.0);
    }

    #[test]
    fn schedule_is_deterministic() {
        let windows = [w(0, 0.0, 60.0), w(1, 30.0, 90.0), w(2, 60.0, 120.0)];
        let a = service_schedule(&windows, 0.0, 120.0).unwrap();
        let b = service_schedule(&windows, 0.0, 120.0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn dying_access_sat_forces_reassociation() {
        // Both sats visible the whole time; sat 1 (longer window) serves
        // first, dies at t=50, and the user must jump to sat 0.
        let windows = [w(0, 0.0, 200.0), w(1, 0.0, 300.0)];
        let outages = [dead(1, 50.0, f64::INFINITY)];
        let s = service_schedule_with_outages(&windows, &outages, 0.0, 200.0).unwrap();
        assert_eq!(s.intervals.len(), 2);
        assert_eq!(s.intervals[0].sat_index, SatId(1));
        assert_eq!(s.intervals[0].end_s, 50.0);
        assert_eq!(s.intervals[1].sat_index, SatId(0));
        assert_eq!(s.handovers, 1);
        assert_eq!(s.forced_reassociations, 1);
        assert_eq!(s.outage_s, 0.0);
    }

    #[test]
    fn failure_with_no_survivor_is_an_outage() {
        let windows = [w(0, 0.0, 100.0)];
        let outages = [dead(0, 40.0, 60.0)];
        let s = service_schedule_with_outages(&windows, &outages, 0.0, 100.0).unwrap();
        // Serve [0,40), outage [40,60) while the sat is down, resume at 60.
        assert_eq!(s.intervals.len(), 2);
        assert_eq!(s.outage_s, 20.0);
        assert_eq!(s.forced_reassociations, 0, "no survivor to re-associate to");
        assert_eq!(s.intervals[1].start_s, 60.0);
    }

    #[test]
    fn dead_sat_is_never_selected() {
        // Sat 1's window is longer but it is dead the whole time.
        let windows = [w(0, 0.0, 100.0), w(1, 0.0, 300.0)];
        let outages = [dead(1, 0.0, f64::INFINITY)];
        let s = service_schedule_with_outages(&windows, &outages, 0.0, 100.0).unwrap();
        assert_eq!(s.intervals.len(), 1);
        assert_eq!(s.intervals[0].sat_index, SatId(0));
    }

    #[test]
    fn recorded_schedule_reports_switches_and_outage() {
        use openspace_telemetry::MemoryRecorder;
        let windows = [w(0, 0.0, 200.0), w(1, 0.0, 300.0)];
        let outages = [dead(1, 50.0, f64::INFINITY)];
        let mut rec = MemoryRecorder::new();
        let recorded =
            service_schedule_with_outages_recorded(&windows, &outages, 0.0, 200.0, &mut rec)
                .unwrap();
        let plain = service_schedule_with_outages(&windows, &outages, 0.0, 200.0).unwrap();
        assert_eq!(recorded, plain, "telemetry must not perturb the schedule");
        assert_eq!(rec.counter("handover.schedules"), 1);
        assert_eq!(rec.counter("handover.switches"), 1);
        assert_eq!(rec.counter("handover.forced_reassociations"), 1);
        assert_eq!(rec.histogram("handover.outage_s").unwrap().mean(), 0.0);
    }

    #[test]
    fn empty_outage_list_matches_plain_schedule() {
        let windows = [w(0, 0.0, 60.0), w(1, 30.0, 90.0), w(2, 60.0, 120.0)];
        let plain = service_schedule(&windows, 0.0, 120.0).unwrap();
        let faulted = service_schedule_with_outages(&windows, &[], 0.0, 120.0).unwrap();
        assert_eq!(plain, faulted);
    }
}
