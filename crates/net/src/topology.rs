//! The time-varying network graph.
//!
//! §2.2's central observation: "the topology of the satellite network is
//! both known and public, allowing for pre-computation of static routes".
//! A [`Graph`] is one snapshot of that topology at an instant; the
//! [`SnapshotBuilder`](crate::isl::build_snapshot) derives it from orbital
//! state, and the routing modules consume it.
//!
//! Node indexing convention: satellites occupy indices `0..n_sats`,
//! ground stations `n_sats..n_sats+n_stations`. [`Graph::node_kind`]
//! recovers the kind.

/// Error addressing an edge that is not in the graph — on dynamic
/// topologies a contact can expire between snapshot and update, so this
/// is a recoverable condition, not a programming bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoSuchEdge {
    /// Source node of the missing edge.
    pub from: usize,
    /// Destination node of the missing edge.
    pub to: usize,
}

impl std::fmt::Display for NoSuchEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no edge {} -> {}", self.from, self.to)
    }
}

impl std::error::Error for NoSuchEdge {}

/// Link technology of an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkTech {
    /// RF inter-satellite or ground link.
    Rf,
    /// Optical inter-satellite link.
    Optical,
}

/// What a node index refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Satellite with the given satellite-array index.
    Satellite(usize),
    /// Ground station with the given station-array index.
    GroundStation(usize),
}

/// A directed edge of the snapshot graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Destination node index.
    pub to: usize,
    /// One-way propagation latency (s).
    pub latency_s: f64,
    /// Achievable capacity (bit/s).
    pub capacity_bps: f64,
    /// Operator owning the *transmitting* node (the carrier that bills
    /// for this hop in the §3 cost model).
    pub operator: u32,
    /// Link technology.
    pub technology: LinkTech,
    /// Current utilization in `[0, 1)`; 0 in a fresh snapshot, set by the
    /// traffic simulation for QoS-aware routing.
    pub load_fraction: f64,
}

/// A snapshot of the network at one instant.
#[derive(Debug, Clone)]
pub struct Graph {
    n_sats: usize,
    n_stations: usize,
    adj: Vec<Vec<Edge>>,
}

impl Graph {
    /// An edgeless graph with the given node counts.
    pub fn new(n_sats: usize, n_stations: usize) -> Self {
        Self {
            n_sats,
            n_stations,
            adj: vec![Vec::new(); n_sats + n_stations],
        }
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Satellite count.
    pub fn satellite_count(&self) -> usize {
        self.n_sats
    }

    /// Ground-station count.
    pub fn station_count(&self) -> usize {
        self.n_stations
    }

    /// What `node` refers to.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn node_kind(&self, node: usize) -> NodeKind {
        assert!(node < self.node_count(), "node {node} out of range");
        if node < self.n_sats {
            NodeKind::Satellite(node)
        } else {
            NodeKind::GroundStation(node - self.n_sats)
        }
    }

    /// Node index of satellite `i`.
    pub fn sat_node(&self, i: usize) -> usize {
        assert!(i < self.n_sats, "satellite {i} out of range");
        i
    }

    /// Node index of ground station `i`.
    pub fn station_node(&self, i: usize) -> usize {
        assert!(i < self.n_stations, "station {i} out of range");
        self.n_sats + i
    }

    /// Add a directed edge.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints, self-loops, or non-positive
    /// capacity/latency.
    pub fn add_edge(&mut self, from: usize, edge: Edge) {
        assert!(from < self.node_count(), "from {from} out of range");
        assert!(edge.to < self.node_count(), "to {} out of range", edge.to);
        assert!(from != edge.to, "self-loop at {from}");
        assert!(edge.latency_s > 0.0, "latency must be positive");
        assert!(edge.capacity_bps > 0.0, "capacity must be positive");
        assert!(
            (0.0..1.0).contains(&edge.load_fraction),
            "load fraction must be in [0,1)"
        );
        self.adj[from].push(edge);
    }

    /// Add the same link in both directions (symmetric ISLs/ground links),
    /// with per-direction operators taken from the transmitting side.
    #[allow(clippy::too_many_arguments)] // a link is genuinely 7 facts
    pub fn add_bidirectional(
        &mut self,
        a: usize,
        b: usize,
        latency_s: f64,
        capacity_bps: f64,
        operator_a: u32,
        operator_b: u32,
        technology: LinkTech,
    ) {
        self.add_edge(
            a,
            Edge {
                to: b,
                latency_s,
                capacity_bps,
                operator: operator_a,
                technology,
                load_fraction: 0.0,
            },
        );
        self.add_edge(
            b,
            Edge {
                to: a,
                latency_s,
                capacity_bps,
                operator: operator_b,
                technology,
                load_fraction: 0.0,
            },
        );
    }

    /// Out-edges of `node`.
    pub fn edges(&self, node: usize) -> &[Edge] {
        &self.adj[node]
    }

    /// Mutable out-edges (the traffic simulation updates loads in place).
    pub fn edges_mut(&mut self, node: usize) -> &mut [Edge] {
        &mut self.adj[node]
    }

    /// Total directed edge count.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Out-degree of `node`.
    pub fn degree(&self, node: usize) -> usize {
        self.adj[node].len()
    }

    /// Find the edge `from → to`, if present.
    pub fn find_edge(&self, from: usize, to: usize) -> Option<&Edge> {
        self.adj[from].iter().find(|e| e.to == to)
    }

    /// Set the utilization of the edge `from → to`. Returns
    /// [`NoSuchEdge`] when the edge is absent (e.g. the contact expired
    /// since the caller last looked at the topology).
    ///
    /// # Panics
    /// Panics if the load is out of range (a caller bug, unlike a
    /// missing edge, which is a property of the evolving topology).
    pub fn set_load(
        &mut self,
        from: usize,
        to: usize,
        load_fraction: f64,
    ) -> Result<(), NoSuchEdge> {
        assert!(
            (0.0..1.0).contains(&load_fraction),
            "load fraction must be in [0,1)"
        );
        let e = self.adj[from]
            .iter_mut()
            .find(|e| e.to == to)
            .ok_or(NoSuchEdge { from, to })?;
        e.load_fraction = load_fraction;
        Ok(())
    }

    /// Nodes reachable from `start` (BFS over directed edges).
    pub fn reachable_from(&self, start: usize) -> Vec<bool> {
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(u) = stack.pop() {
            for e in &self.adj[u] {
                if !seen[e.to] {
                    seen[e.to] = true;
                    stack.push(e.to);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph() -> Graph {
        // sat0 - sat1 - gs0
        let mut g = Graph::new(2, 1);
        g.add_bidirectional(0, 1, 0.005, 1e6, 1, 2, LinkTech::Rf);
        g.add_bidirectional(1, 2, 0.003, 1e7, 2, 9, LinkTech::Rf);
        g
    }

    #[test]
    fn indexing_convention() {
        let g = line_graph();
        assert_eq!(g.node_kind(0), NodeKind::Satellite(0));
        assert_eq!(g.node_kind(2), NodeKind::GroundStation(0));
        assert_eq!(g.station_node(0), 2);
        assert_eq!(g.sat_node(1), 1);
    }

    #[test]
    fn bidirectional_adds_two_edges() {
        let g = line_graph();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(1), 2);
        assert!(g.find_edge(0, 1).is_some());
        assert!(g.find_edge(1, 0).is_some());
        assert!(g.find_edge(0, 2).is_none());
    }

    #[test]
    fn per_direction_operators() {
        let g = line_graph();
        assert_eq!(g.find_edge(0, 1).unwrap().operator, 1);
        assert_eq!(g.find_edge(1, 0).unwrap().operator, 2);
    }

    #[test]
    fn reachability() {
        let mut g = Graph::new(3, 0);
        g.add_bidirectional(0, 1, 0.001, 1e6, 0, 0, LinkTech::Rf);
        let r = g.reachable_from(0);
        assert_eq!(r, vec![true, true, false]);
    }

    #[test]
    fn set_load_updates_edge() {
        let mut g = line_graph();
        g.set_load(0, 1, 0.75).unwrap();
        assert_eq!(g.find_edge(0, 1).unwrap().load_fraction, 0.75);
        assert_eq!(g.find_edge(1, 0).unwrap().load_fraction, 0.0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut g = Graph::new(2, 0);
        g.add_edge(
            0,
            Edge {
                to: 0,
                latency_s: 1.0,
                capacity_bps: 1.0,
                operator: 0,
                technology: LinkTech::Rf,
                load_fraction: 0.0,
            },
        );
    }

    #[test]
    fn set_load_missing_edge_is_an_error_not_a_panic() {
        let mut g = line_graph();
        let err = g.set_load(0, 2, 0.5).unwrap_err();
        assert_eq!(err, NoSuchEdge { from: 0, to: 2 });
        assert_eq!(err.to_string(), "no edge 0 -> 2");
        // The graph is untouched by the failed update.
        assert_eq!(g.find_edge(0, 1).unwrap().load_fraction, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_kind_panics() {
        line_graph().node_kind(99);
    }
}
